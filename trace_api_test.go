package lightnuca_test

// End-to-end tests of the trace subsystem's public surface: Record →
// Local replay (in process), Record → Client upload → service-side
// replay (over HTTP), and the validation the Runner entry paths share.

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	lightnuca "repro"
	"repro/internal/orchestrator"
)

func traceRecordRequest() lightnuca.Request {
	return lightnuca.Request{
		Hierarchy: "ln+l3",
		Levels:    3,
		Benchmark: "400.perlbench",
		Warmup:    500,
		Measure:   2500,
		Seed:      2,
	}
}

// TestRecordThenLocalReplay: the walkthrough path — record a run, import
// the trace into a Local runner, replay by content hash, and get back
// bit-identical statistics.
func TestRecordThenLocalReplay(t *testing.T) {
	ctx := context.Background()
	live, tr, err := lightnuca.Record(ctx, traceRecordRequest())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Benchmark != "400.perlbench" || tr.Header.Seed != 2 {
		t.Fatalf("trace provenance wrong: %+v", tr.Header)
	}
	if live.LoadLatency == nil || live.LoadLatency.Count() == 0 {
		t.Error("recorded result misses the load-latency histogram")
	}

	runner := &lightnuca.Local{}
	id, err := runner.ImportTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if id != tr.ID() {
		t.Fatalf("import id %s != trace id %s", id, tr.ID())
	}
	replay, err := runner.Run(ctx, lightnuca.Request{Hierarchy: "ln+l3", Levels: 3, Trace: id})
	if err != nil {
		t.Fatal(err)
	}
	if replay.IPC != live.IPC || replay.Cycles != live.Cycles {
		t.Errorf("replay diverged: IPC %v/%v cycles %d/%d", replay.IPC, live.IPC, replay.Cycles, live.Cycles)
	}
	if replay.Stats.String() != live.Stats.String() {
		t.Error("replay statistics diverged from the live run")
	}
	if !reflect.DeepEqual(replay.LoadLatency, live.LoadLatency) {
		t.Error("replay load-latency histogram diverged")
	}
	if replay.Benchmark != "400.perlbench" {
		t.Errorf("replay lost provenance: %q", replay.Benchmark)
	}

	// The same trace sweeps across a different hierarchy too.
	other, err := runner.Run(ctx, lightnuca.Request{Hierarchy: "conventional", Trace: id})
	if err != nil {
		t.Fatal(err)
	}
	if other.Key == replay.Key {
		t.Error("different hierarchies share a trace-run key")
	}

	// Identical resubmission is a cache hit.
	again, err := runner.Run(ctx, lightnuca.Request{Hierarchy: "ln+l3", Levels: 3, Trace: id})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("trace-run resubmission did not hit the cache")
	}
}

// TestRecordThenClientReplay: upload the encoded trace over HTTP, list
// it, and have lnucad replay it server-side.
func TestRecordThenClientReplay(t *testing.T) {
	ctx := context.Background()
	live, tr, err := lightnuca.Record(ctx, traceRecordRequest())
	if err != nil {
		t.Fatal(err)
	}
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}

	ts, _ := stubServer(t, orchestrator.Config{Workers: 1}) // real run path
	client := lightnuca.NewClient(ts.URL)
	client.PollInterval = time.Millisecond

	hdr, err := client.UploadTrace(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.ID != tr.ID() {
		t.Fatalf("upload id %s != trace id %s", hdr.ID, tr.ID())
	}
	list, err := client.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != tr.ID() {
		t.Fatalf("Traces = %+v", list)
	}
	info, err := client.TraceInfo(ctx, tr.ID())
	if err != nil {
		t.Fatal(err)
	}
	if info != tr.Header {
		t.Fatalf("TraceInfo %+v != header %+v", info, tr.Header)
	}

	res, err := client.Run(ctx, lightnuca.Request{Hierarchy: "ln+l3", Levels: 3, Trace: tr.ID()})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC != live.IPC || res.Cycles != live.Cycles {
		t.Errorf("service replay diverged: IPC %v/%v", res.IPC, live.IPC)
	}
	if res.LoadLatency == nil || res.LoadLatency.Count() != live.LoadLatency.Count() {
		t.Error("service replay lost the load-latency histogram")
	}
}

// TestTraceRequestValidationLibraryPath: the Runner entry path rejects
// conflicting trace requests before any store or queue is touched.
func TestTraceRequestValidationLibraryPath(t *testing.T) {
	runner := &lightnuca.Local{}
	ctx := context.Background()
	id := strings.Repeat("ab", 32)
	for name, req := range map[string]lightnuca.Request{
		"trace+benchmark": {Hierarchy: "ln+l3", Trace: id, Benchmark: "403.gcc"},
		"trace+mix":       {Hierarchy: "ln+l3", Trace: id, Cores: 4, Mix: "mixed"},
		"trace+mode":      {Hierarchy: "ln+l3", Trace: id, Mode: "full"},
		"trace+seed":      {Hierarchy: "ln+l3", Trace: id, Seed: 9},
		"bad-id":          {Hierarchy: "ln+l3", Trace: "nope"},
	} {
		if _, err := runner.Run(ctx, req); err == nil {
			t.Errorf("%s: expected a validation error", name)
		}
	}
	// A well-formed but unknown trace fails with a store miss.
	if _, err := runner.Run(ctx, lightnuca.Request{Hierarchy: "ln+l3", Trace: id}); err == nil ||
		!strings.Contains(err.Error(), "unknown trace") {
		t.Errorf("unknown trace: got %v", err)
	}
}

// TestRecordRejectsNonBenchmarkRequests: Record is for single-core
// benchmark runs only.
func TestRecordRejectsNonBenchmarkRequests(t *testing.T) {
	ctx := context.Background()
	for name, req := range map[string]lightnuca.Request{
		"mix":   {Hierarchy: "ln+l3", Cores: 2, Mix: "mixed"},
		"trace": {Hierarchy: "ln+l3", Trace: strings.Repeat("ab", 32)},
	} {
		if _, _, err := lightnuca.Record(ctx, req); err == nil {
			t.Errorf("%s: Record should reject this request", name)
		}
	}
}
