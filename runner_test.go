package lightnuca_test

import (
	"context"
	"sync"
	"testing"

	lightnuca "repro"
)

// TestLocalResultDetachedFromCache: a caller mutating the Stats or
// PerCore of a returned Result must not corrupt what the runner's cache
// serves on the next hit.
func TestLocalResultDetachedFromCache(t *testing.T) {
	local := &lightnuca.Local{}
	req := lightnuca.Request{
		Hierarchy: "conventional", Benchmark: "456.hmmer",
		Warmup: 500, Measure: 2000, Seed: 1,
	}
	ctx := context.Background()

	res1, err := local.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	orig := res1.Stats.Counter("core.committed")
	if orig == 0 {
		t.Fatal("no committed instructions recorded")
	}
	res1.Stats.Add("core.committed", 1_000_000)

	res2, err := local.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Fatal("second run missed the cache")
	}
	if got := res2.Stats.Counter("core.committed"); got != orig {
		t.Fatalf("cache served mutated stats: %d, want %d", got, orig)
	}
}

// TestLocalRunReportsPhases: a fresh run carries its execution
// breakdown, while a cache hit — which did not execute — carries none.
func TestLocalRunReportsPhases(t *testing.T) {
	local := &lightnuca.Local{}
	req := lightnuca.Request{
		Hierarchy: "ln+l3", Benchmark: "470.lbm",
		Warmup: 500, Measure: 2000, Seed: 1,
	}
	ctx := context.Background()

	res, err := local.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases == nil {
		t.Fatal("fresh run reported no Phases")
	}
	if res.Phases.MIPS <= 0 || res.Phases.MeasureSeconds <= 0 || res.Phases.SteppedCycles == 0 {
		t.Errorf("phases = %+v, want positive throughput and stepped cycles", res.Phases)
	}

	hit, err := local.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Fatal("second run missed the cache")
	}
	if hit.Phases != nil {
		t.Errorf("cache hit carries Phases %+v; execution detail must not be memoized", hit.Phases)
	}
}

// TestLocalCoalescesConcurrentRuns: identical concurrent Requests must
// collapse onto one simulation — exactly one Result comes back
// freshly simulated, the rest are served from the published entry.
func TestLocalCoalescesConcurrentRuns(t *testing.T) {
	local := &lightnuca.Local{}
	req := lightnuca.Request{
		Hierarchy: "conventional", Benchmark: "403.gcc",
		Warmup: 500, Measure: 3000, Seed: 2,
	}
	const n = 4
	results := make([]lightnuca.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = local.Run(context.Background(), req)
		}(i)
	}
	wg.Wait()

	simulated := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if results[i].Key != results[0].Key {
			t.Fatalf("run %d keyed %s, run 0 keyed %s", i, results[i].Key, results[0].Key)
		}
		if results[i].IPC != results[0].IPC {
			t.Fatalf("run %d IPC %v != run 0 IPC %v", i, results[i].IPC, results[0].IPC)
		}
		if !results[i].Cached {
			simulated++
		}
	}
	if simulated != 1 {
		t.Fatalf("%d of %d concurrent identical runs simulated, want exactly 1", simulated, n)
	}
}
