package lightnuca

import (
	"context"
	"runtime"
	"sync"
)

// RunAll executes every request through r with at most parallel
// concurrent runs (parallel <= 0 defaults to GOMAXPROCS), returning the
// results in request order. It is the bounded-parallel sweep primitive
// behind `lnucasweep -j`: each run is internally deterministic, so
// executing independent sweep points concurrently changes nothing but
// wall-clock.
//
// All requests should flow through one shared Runner: a Local runner
// coalesces concurrent identical content keys onto a single simulation
// and serves every later duplicate from its cache, so a sweep whose
// points overlap (or repeat) still simulates each distinct
// configuration exactly once.
//
// The first error cancels the remaining work and is returned alongside
// the partial results (entries for failed or canceled requests are zero
// Results).
func RunAll(ctx context.Context, r Runner, reqs []Request, parallel int) ([]Result, error) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(reqs) {
		parallel = len(reqs)
	}
	out := make([]Result, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     = make(chan int)
	)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res, err := r.Run(ctx, reqs[i])
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel() // stop handing out work
					})
					continue
				}
				out[i] = res
			}
		}()
	}
feed:
	for i := range reqs {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	return out, firstErr
}
