package lightnuca

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// The client retry suite runs on the deterministic fault injector: a
// faultinject.Transport at the client_http point synthesizes the
// failures (connection refusals, 5xx/429 bursts, dropped bodies) in
// front of a healthy httptest server, so each test controls exactly
// which attempt fails, how, and what the real server ever sees.

func okJSON(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(body))
	})
}

// countingServer is okJSON plus a counter of requests that actually
// reached it (injected failures never do, except AfterSend/DropBody).
func countingServer(body string) (*httptest.Server, *atomic.Int64) {
	var hits atomic.Int64
	h := okJSON(body)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		h.ServeHTTP(w, r)
	}))
	return srv, &hits
}

// faultyClient wires a client to url through an injector armed at the
// client_http point with plan.
func faultyClient(url string, seed int64, plan faultinject.Plan) (*Client, *faultinject.Injector) {
	in := faultinject.New(seed)
	in.Enable(faultinject.PointClientHTTP, plan)
	c := NewClient(url)
	c.HTTPClient = &http.Client{Transport: &faultinject.Transport{
		Injector: in,
		Point:    faultinject.PointClientHTTP,
	}}
	c.RetryBaseDelay = time.Millisecond
	c.RetryMaxDelay = 5 * time.Millisecond
	return c, in
}

func TestClientRetriesTransient5xx(t *testing.T) {
	// Two injected 500s, then a clean pass-through: the GET survives
	// without the caller noticing, and the server is hit exactly once.
	srv, hits := countingServer(`{}`)
	defer srv.Close()
	c, in := faultyClient(srv.URL, 1, faultinject.Plan{Rate: 1, MaxFires: 2, Status: http.StatusInternalServerError})

	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health after transient 500s: %v", err)
	}
	if n := in.Calls(faultinject.PointClientHTTP); n != 3 {
		t.Fatalf("client made %d attempts, want 3 (2 injected failures + 1 success)", n)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server saw %d requests, want 1 (injected 500s never reach it)", n)
	}
}

func TestClientRetries429HonoringRetryAfter(t *testing.T) {
	// An injected 429 carrying Retry-After: 7. The backoff sleep is
	// intercepted, so the test asserts — without spending a single
	// wall-clock second — that the client holds for exactly the
	// server-demanded 7s rather than its own millisecond backoff.
	srv, hits := countingServer(`{}`)
	defer srv.Close()
	c, in := faultyClient(srv.URL, 2, faultinject.Plan{
		Rate: 1, MaxFires: 1,
		Status: http.StatusTooManyRequests, RetryAfter: 7,
	})
	var slept []time.Duration
	c.sleepFn = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}

	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health after 429: %v", err)
	}
	if len(slept) != 1 || slept[0] != 7*time.Second {
		t.Fatalf("backoff slept %v, want exactly [7s] (Retry-After must override the computed backoff)", slept)
	}
	if n := in.Calls(faultinject.PointClientHTTP); n != 2 {
		t.Fatalf("client made %d attempts, want 2", n)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server saw %d requests, want 1", n)
	}
}

func TestClientRetriesConnectionRefused(t *testing.T) {
	// Two injected connection refusals, then recovery: the retry budget
	// rides out a briefly-dead service.
	srv, hits := countingServer(`{}`)
	defer srv.Close()
	c, _ := faultyClient(srv.URL, 3, faultinject.Plan{Rate: 1, MaxFires: 2})

	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health after transient refusals: %v", err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server saw %d requests, want 1", n)
	}
}

func TestClientRetriesDroppedResponseBody(t *testing.T) {
	// The response body is severed mid-read on the first attempt: a
	// decode failure on a GET is transient and the retry completes.
	srv, hits := countingServer(`{"benchmarks":["403.gcc"],"mixes":[]}`)
	defer srv.Close()
	c, _ := faultyClient(srv.URL, 4, faultinject.Plan{Rate: 1, MaxFires: 1, DropBody: true})

	benches, _, err := c.Benchmarks(context.Background())
	if err != nil {
		t.Fatalf("benchmarks after dropped body: %v", err)
	}
	if len(benches) != 1 || benches[0] != "403.gcc" {
		t.Fatalf("benchmarks = %v, want [403.gcc]", benches)
	}
	if n := hits.Load(); n != 2 {
		t.Fatalf("server saw %d requests, want 2 (the dropped-body attempt did reach it)", n)
	}
}

func TestClientRetryGivesUpAfterBudget(t *testing.T) {
	// A persistently failing endpoint: the caller gets the APIError
	// after exactly 1 + MaxRetries attempts, and the real server is
	// never reached.
	srv, hits := countingServer(`{}`)
	defer srv.Close()
	c, in := faultyClient(srv.URL, 5, faultinject.Plan{Rate: 1, Status: http.StatusServiceUnavailable})
	c.MaxRetries = 2

	err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want APIError 503", err)
	}
	if n := in.Calls(faultinject.PointClientHTTP); n != 3 {
		t.Fatalf("client made %d attempts, want 3 (1 + 2 retries)", n)
	}
	if n := hits.Load(); n != 0 {
		t.Fatalf("server saw %d requests, want 0", n)
	}
}

func TestClientDoesNotRetryMutations(t *testing.T) {
	// POST /v1/jobs is not idempotent from the client's view: an
	// injected 500 surfaces immediately, after exactly one attempt.
	srv, hits := countingServer(`{}`)
	defer srv.Close()
	c, in := faultyClient(srv.URL, 6, faultinject.Plan{Rate: 1, Status: http.StatusInternalServerError})

	_, err := c.Submit(context.Background(), Request{Hierarchy: "L2", Benchmark: "403.gcc", Mode: "quick", Seed: 1})
	if err == nil {
		t.Fatal("submit against a failing service must fail")
	}
	if n := in.Calls(faultinject.PointClientHTTP); n != 1 {
		t.Fatalf("client made %d attempts, want 1 (mutations never retry)", n)
	}
	if n := hits.Load(); n != 0 {
		t.Fatalf("server saw %d requests, want 0", n)
	}
}

func TestClientDoesNotRetryTerminalStatuses(t *testing.T) {
	// A 404 is an answer, not an outage.
	srv, _ := countingServer(`{}`)
	defer srv.Close()
	c, in := faultyClient(srv.URL, 7, faultinject.Plan{Rate: 1, Status: http.StatusNotFound})

	_, err := c.Job(context.Background(), "job-000001")
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("err = %v, want 404", err)
	}
	if n := in.Calls(faultinject.PointClientHTTP); n != 1 {
		t.Fatalf("client made %d attempts, want 1 (4xx answers never retry)", n)
	}
}

func TestClientRetryStopsOnContextCancel(t *testing.T) {
	// Cancellation mid-backoff returns promptly instead of burning the
	// whole retry budget.
	srv, _ := countingServer(`{}`)
	defer srv.Close()
	c, _ := faultyClient(srv.URL, 8, faultinject.Plan{Rate: 1, Status: http.StatusServiceUnavailable})
	c.MaxRetries = 50
	c.RetryBaseDelay = 10 * time.Second // would block for minutes without cancel

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := c.Health(ctx); err == nil {
		t.Fatal("health must fail when the context expires")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v to take effect", elapsed)
	}
}

func TestClientInjectedLatencyHonorsContext(t *testing.T) {
	// Injected transport latency respects the request context: a
	// deadline shorter than the delay surfaces promptly as a context
	// error, not as a hung call.
	srv, hits := countingServer(`{}`)
	defer srv.Close()
	c, _ := faultyClient(srv.URL, 9, faultinject.Plan{Rate: 1, Delay: 30 * time.Second})
	c.MaxRetries = -1 // isolate the latency path

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Health(ctx)
	if err == nil {
		t.Fatal("health must fail when injected latency outlives the deadline")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to take effect", elapsed)
	}
	if n := hits.Load(); n != 0 {
		t.Fatalf("server saw %d requests, want 0", n)
	}
}
