package lightnuca

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler fails the first n requests with status, then delegates.
func flakyHandler(n int64, status int, hdr map[string]string, next http.Handler) (http.Handler, *atomic.Int64) {
	var calls atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			for k, v := range hdr {
				w.Header().Set(k, v)
			}
			w.WriteHeader(status)
			w.Write([]byte(`{"error":"induced failure"}`))
			return
		}
		next.ServeHTTP(w, r)
	}), &calls
}

func okJSON(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(body))
	})
}

func retryClient(url string) *Client {
	c := NewClient(url)
	c.RetryBaseDelay = time.Millisecond
	c.RetryMaxDelay = 5 * time.Millisecond
	return c
}

func TestClientRetriesTransient5xx(t *testing.T) {
	// Two 500s, then success: the GET survives without the caller
	// noticing.
	h, calls := flakyHandler(2, http.StatusInternalServerError, nil, okJSON(`{}`))
	srv := httptest.NewServer(h)
	defer srv.Close()

	if err := retryClient(srv.URL).Health(context.Background()); err != nil {
		t.Fatalf("health after transient 500s: %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + 1 success)", n)
	}
}

func TestClientRetries429HonoringRetryAfter(t *testing.T) {
	// A 429 with Retry-After: the client must hold at least that long
	// before the next attempt.
	h, calls := flakyHandler(1, http.StatusTooManyRequests,
		map[string]string{"Retry-After": "1"}, okJSON(`{}`))
	srv := httptest.NewServer(h)
	defer srv.Close()

	start := time.Now()
	if err := retryClient(srv.URL).Health(context.Background()); err != nil {
		t.Fatalf("health after 429: %v", err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("client retried after %v, Retry-After demanded >= 1s", elapsed)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("server saw %d requests, want 2", n)
	}
}

func TestClientRetriesConnectionRefused(t *testing.T) {
	// A dead service: connection errors are transient, so every retry
	// is spent before the error surfaces.
	srv := httptest.NewServer(okJSON(`{}`))
	url := srv.URL
	srv.Close() // nothing listens here any more

	c := retryClient(url)
	c.MaxRetries = 2
	start := time.Now()
	err := c.Health(context.Background())
	if err == nil {
		t.Fatal("health against a dead service must fail")
	}
	// Two backoff waits happened (1 initial + 2 retries).
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("error came back in %v — no backoff happened", elapsed)
	}
}

func TestClientRetryGivesUpAfterBudget(t *testing.T) {
	// A persistently failing endpoint: the caller gets the APIError
	// after exactly 1 + MaxRetries attempts.
	h, calls := flakyHandler(1<<30, http.StatusServiceUnavailable, nil, okJSON(`{}`))
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := retryClient(srv.URL)
	c.MaxRetries = 2
	err := c.Health(context.Background())
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want APIError 503", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (1 + 2 retries)", n)
	}
}

func TestClientDoesNotRetryMutations(t *testing.T) {
	// POST /v1/jobs is not idempotent from the client's view: a 500
	// surfaces immediately, after exactly one request.
	h, calls := flakyHandler(1<<30, http.StatusInternalServerError, nil, okJSON(`{}`))
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := retryClient(srv.URL)
	_, err := c.Submit(context.Background(), Request{Hierarchy: "L2", Benchmark: "403.gcc", Mode: "quick", Seed: 1})
	if err == nil {
		t.Fatal("submit against a failing service must fail")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d requests, want 1 (mutations never retry)", n)
	}
}

func TestClientDoesNotRetryTerminalStatuses(t *testing.T) {
	// A 404 is an answer, not an outage.
	h, calls := flakyHandler(1<<30, http.StatusNotFound, nil, okJSON(`{}`))
	srv := httptest.NewServer(h)
	defer srv.Close()

	_, err := retryClient(srv.URL).Job(context.Background(), "job-000001")
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("err = %v, want 404", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d requests, want 1 (4xx answers never retry)", n)
	}
}

func TestClientRetryStopsOnContextCancel(t *testing.T) {
	// Cancellation mid-backoff returns promptly instead of burning the
	// whole retry budget.
	h, _ := flakyHandler(1<<30, http.StatusServiceUnavailable, nil, okJSON(`{}`))
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := retryClient(srv.URL)
	c.MaxRetries = 50
	c.RetryBaseDelay = 10 * time.Second // would block forever without cancel
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := c.Health(ctx); err == nil {
		t.Fatal("health must fail when the context expires")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v to take effect", elapsed)
	}
}
