package lightnuca

import (
	"context"
	"sync"

	"repro/internal/orchestrator"
	"repro/internal/trace"
)

// Local is the in-process Runner: it normalizes a Request, consults the
// content-addressed result cache, and simulates on a miss. The zero
// value is ready to use (memory-only cache); CacheDir points it at the
// same on-disk store lnucad and lnucasweep share, so a Local runner, the
// CLIs and the service never recompute each other's runs.
//
// CMP mix requests resolve their weighted-speedup baselines through the
// same cache — one single-core run per distinct benchmark in the mix,
// memoized under its own key.
//
// Local is safe for concurrent use once configured (identical
// concurrent Requests coalesce onto a single simulation); the
// configuration fields must not be changed after the first Run.
type Local struct {
	// CacheDir optionally backs the runner with a directory of
	// <key>.json results (empty = in-memory only).
	CacheDir string
	// CacheEntries bounds the in-memory LRU (0 = the orchestrator
	// default).
	CacheEntries int
	// TraceDir optionally backs the runner's trace store with a
	// directory of <id>.lntrace files — point it at lnucad's -traces
	// directory and a trace uploaded to the service replays locally too
	// (empty = in-memory only).
	TraceDir string
	// OnProgress, when set, receives (committed, total) instruction
	// counts as runs advance.
	OnProgress func(done, total uint64)

	once   sync.Once
	cache  *orchestrator.Cache
	traces *TraceStore
	run    orchestrator.RunFunc

	mu       sync.Mutex
	inflight map[string]chan struct{}
}

func (l *Local) init() {
	l.once.Do(func() {
		l.cache = orchestrator.NewCache(l.CacheEntries, l.CacheDir)
		l.traces = trace.NewStore(l.TraceDir)
		l.run = orchestrator.SimRunWithTraces(l.cache, l.traces)
		l.inflight = make(map[string]chan struct{})
	})
}

// ImportTrace adds a recorded trace to the runner's store and returns
// its content hash — the value a Request.Trace replay names.
func (l *Local) ImportTrace(tr *Trace) (string, error) {
	l.init()
	hdr, err := l.traces.Put(tr)
	if err != nil {
		return "", err
	}
	return hdr.ID, nil
}

// Traces exposes the runner's trace store.
func (l *Local) Traces() *TraceStore {
	l.init()
	return l.traces
}

// Run implements Runner: normalize, look up, simulate on a miss, store.
// Concurrent Runs of the same content key coalesce — one simulates, the
// rest wait and read its published result. The context is polled
// between simulation chunks, so cancellation lands mid-run.
func (l *Local) Run(ctx context.Context, req Request) (Result, error) {
	l.init()
	job, err := req.Job()
	if err != nil {
		return Result{}, err
	}
	key := job.Key()
	for {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if res, ok := l.cache.Get(key); ok {
			return resultFrom(key, res, true), nil
		}
		l.mu.Lock()
		if done, busy := l.inflight[key]; busy {
			l.mu.Unlock()
			// Another Run is simulating this content; wait for it to
			// publish (or fail), then reconsult the cache.
			select {
			case <-done:
				continue
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
		}
		done := make(chan struct{})
		l.inflight[key] = done
		l.mu.Unlock()

		res, err := l.run(ctx, job, l.OnProgress)
		if err == nil {
			l.cache.Put(key, res)
		}
		l.mu.Lock()
		delete(l.inflight, key)
		l.mu.Unlock()
		close(done)
		if err != nil {
			return Result{}, err
		}
		return resultFrom(key, res, false), nil
	}
}

// CacheStats reports the runner's result-cache hit/miss counters.
func (l *Local) CacheStats() (hits, misses uint64) {
	l.init()
	return l.cache.Hits(), l.cache.Misses()
}
