// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each benchmark runs the
// same code path the lnucasim CLI uses to regenerate its artifact; the
// -bench metrics report the headline quantities so regressions in the
// reproduced shape are visible from `go test -bench`.
//
// The simulation benchmarks use the quick windows and a class-balanced
// benchmark subset to keep iterations affordable; `lnucasim -mode full`
// regenerates the full-suite numbers recorded in EXPERIMENTS.md.
package lightnuca_test

import (
	"testing"

	"repro/internal/area"
	"repro/internal/exp"
	"repro/internal/lnuca"
	"repro/internal/sram"
	"repro/internal/tech"
	"repro/internal/timing"
	"repro/internal/workload"
)

// benchSubset is a small class-balanced suite for benchmark iterations.
func benchSubset() []workload.Profile {
	var out []workload.Profile
	for _, n := range []string{"403.gcc", "429.mcf", "434.zeusmp", "482.sphinx3"} {
		p, ok := workload.ByName(n)
		if !ok {
			panic("missing " + n)
		}
		out = append(out, p)
	}
	return out
}

// BenchmarkTable2Area regenerates the Table II area roll-up.
func BenchmarkTable2Area(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		r := area.LNUCA(3)
		last = r.TotalMM2
	}
	b.ReportMetric(last, "LN3_mm2")
	b.ReportMetric(area.Conventional(), "conv_mm2")
	b.ReportMetric(area.LNUCA(3).NetworkPct, "LN3_network_%")
}

// BenchmarkFig2Topologies regenerates the three network topologies.
func BenchmarkFig2Topologies(b *testing.B) {
	var links int
	for i := 0; i < b.N; i++ {
		g := lnuca.MustGeometry(3)
		links = g.SearchLinks() + g.TransportLinks() + g.ReplacementLinks()
		_ = g.RenderDOT(lnuca.SearchNet)
		_ = g.RenderDOT(lnuca.TransportNet)
		_ = g.RenderDOT(lnuca.ReplacementNet)
	}
	b.ReportMetric(float64(links), "total_links")
}

// BenchmarkFig3CriticalPath regenerates the single-cycle tile analysis.
func BenchmarkFig3CriticalPath(b *testing.B) {
	tile := sram.Config{SizeBytes: 8 << 10, Ways: 2, BlockBytes: 32, Ports: 1, Device: tech.HP}
	var slack float64
	for i := 0; i < b.N; i++ {
		r := timing.Analyze(tile)
		slack = r.HitTransport.Slack()
	}
	b.ReportMetric(slack, "slack_FO4")
	best := timing.LargestOneCycleTile()
	b.ReportMetric(float64(best.SizeBytes)/1024, "largest_tile_KB")
}

// runConvMatrix shares one conventional-hierarchy matrix per benchmark
// iteration; Fig 4(a), Fig 4(b) and Table III all derive from it.
func runConvMatrix(b *testing.B) []exp.Result {
	b.Helper()
	results := exp.Matrix(exp.ConventionalSpecs(), benchSubset(), exp.Quick, 1)
	if err := exp.FirstError(results); err != nil {
		b.Fatal(err)
	}
	return results
}

// BenchmarkFig4aIPCConventional regenerates the Fig. 4(a) IPC comparison.
func BenchmarkFig4aIPCConventional(b *testing.B) {
	var gainInt, gainFP float64
	for i := 0; i < b.N; i++ {
		results := runConvMatrix(b)
		specs := exp.ConventionalSpecs()
		bi, bf := exp.HarmonicIPC(results, specs[0])
		li, lf := exp.HarmonicIPC(results, specs[2]) // LN3
		gainInt = 100 * (li - bi) / bi
		gainFP = 100 * (lf - bf) / bf
	}
	b.ReportMetric(gainInt, "LN3_int_gain_%")
	b.ReportMetric(gainFP, "LN3_fp_gain_%")
}

// BenchmarkFig4bEnergyConventional regenerates the Fig. 4(b) energy bars.
func BenchmarkFig4bEnergyConventional(b *testing.B) {
	var savings float64
	for i := 0; i < b.N; i++ {
		results := runConvMatrix(b)
		specs := exp.ConventionalSpecs()
		base := exp.SumEnergy(results, specs[0])
		savings = exp.SumEnergy(results, specs[2]).SavingsPercentVs(base)
	}
	b.ReportMetric(savings, "LN3_energy_saving_%")
}

// BenchmarkTable3HitProfile regenerates the Table III hit distribution.
func BenchmarkTable3HitProfile(b *testing.B) {
	var le2int, ratio float64
	for i := 0; i < b.N; i++ {
		rows := exp.Table3(runConvMatrix(b))
		for _, r := range rows {
			if r.Levels == 3 {
				le2int = r.PctByLevel[2][0]
				ratio = r.AvgMinIntFP[0]
			}
		}
	}
	b.ReportMetric(le2int, "LN3_Le2_int_%_of_L2_hits")
	b.ReportMetric(ratio, "transport_avg_min_ratio")
}

// runDNMatrix shares one D-NUCA matrix; Fig 5(a) and 5(b) derive from it.
func runDNMatrix(b *testing.B) []exp.Result {
	b.Helper()
	results := exp.Matrix(exp.DNUCASpecs(), benchSubset(), exp.Quick, 1)
	if err := exp.FirstError(results); err != nil {
		b.Fatal(err)
	}
	return results
}

// BenchmarkFig5aIPCDNUCA regenerates the Fig. 5(a) IPC comparison.
func BenchmarkFig5aIPCDNUCA(b *testing.B) {
	var gainInt, gainFP float64
	for i := 0; i < b.N; i++ {
		results := runDNMatrix(b)
		specs := exp.DNUCASpecs()
		bi, bf := exp.HarmonicIPC(results, specs[0])
		li, lf := exp.HarmonicIPC(results, specs[1]) // LN2+DN
		gainInt = 100 * (li - bi) / bi
		gainFP = 100 * (lf - bf) / bf
	}
	b.ReportMetric(gainInt, "LN2DN_int_gain_%")
	b.ReportMetric(gainFP, "LN2DN_fp_gain_%")
}

// BenchmarkFig5bEnergyDNUCA regenerates the Fig. 5(b) energy bars.
func BenchmarkFig5bEnergyDNUCA(b *testing.B) {
	var savings float64
	for i := 0; i < b.N; i++ {
		results := runDNMatrix(b)
		specs := exp.DNUCASpecs()
		base := exp.SumEnergy(results, specs[0])
		savings = exp.SumEnergy(results, specs[1]).SavingsPercentVs(base)
	}
	b.ReportMetric(savings, "LN2DN_energy_saving_%")
}

// BenchmarkFabricCycleThroughput measures raw simulation speed of the
// L-NUCA fabric (cycles simulated per second), the quantity that bounds
// full-mode experiment turnaround.
func BenchmarkFabricCycleThroughput(b *testing.B) {
	prof, _ := workload.ByName("403.gcc")
	r := exp.RunOne(exp.Spec{Kind: exp.ConventionalSpecs()[2].Kind, Levels: 3}, prof,
		exp.Mode{Name: "bench", Warmup: 100, Measure: 2000}, 1)
	if r.Err != nil {
		b.Fatal(r.Err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := exp.RunOne(exp.Spec{Kind: exp.ConventionalSpecs()[2].Kind, Levels: 3}, prof,
			exp.Mode{Name: "bench", Warmup: 1000, Measure: 10000}, uint64(i+1))
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		b.SetBytes(int64(r.Cycles)) // cycles/s shows as MB/s-style rate
	}
}
