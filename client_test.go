package lightnuca_test

import (
	"context"
	"strings"
	"testing"
	"time"

	lightnuca "repro"
	"repro/internal/obs/tracez"
	"repro/internal/orchestrator"
)

// TestClientLifecycle drives submit → streamed wait → result against a
// stub-backed service, then exercises cancellation of a run that would
// otherwise never finish.
func TestClientLifecycle(t *testing.T) {
	block := make(chan struct{})
	ts, _ := stubServer(t, orchestrator.Config{
		Workers: 1,
		Run: func(ctx context.Context, j orchestrator.Job, progress func(done, total uint64)) (*orchestrator.JobResult, error) {
			if j.Benchmark == "429.mcf" { // the cancellation victim
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-block:
				}
			}
			if progress != nil {
				progress(1, 2)
			}
			return instantRun(ctx, j, progress)
		},
	})
	defer close(block)
	client := lightnuca.NewClient(ts.URL)
	client.PollInterval = time.Millisecond
	ctx := context.Background()

	// Submit + Wait with streaming updates.
	rec, err := client.Submit(ctx, lightnuca.Request{Hierarchy: "ln+l3", Benchmark: "403.gcc"})
	if err != nil {
		t.Fatal(err)
	}
	updates := 0
	final, err := client.Wait(ctx, rec.ID, func(lightnuca.JobRecord) { updates++ })
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != lightnuca.StatusDone || updates == 0 {
		t.Fatalf("wait: status %s after %d updates", final.Status, updates)
	}

	// Run() end to end converts the record.
	res, err := client.Run(ctx, lightnuca.Request{Hierarchy: "ln+l3", Benchmark: "403.gcc"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("second identical Run was not served from the service cache")
	}

	// Lookup hits for cached content, clean-misses for new content.
	if _, ok, err := client.Lookup(ctx, lightnuca.Request{Hierarchy: "ln+l3", Benchmark: "403.gcc"}); err != nil || !ok {
		t.Fatalf("lookup of cached run: ok=%v err=%v", ok, err)
	}
	if _, ok, err := client.Lookup(ctx, lightnuca.Request{Hierarchy: "ln+l3", Benchmark: "470.lbm"}); err != nil || ok {
		t.Fatalf("lookup of never-run content: ok=%v err=%v", ok, err)
	}

	// Cancel a blocked run.
	blocked, err := client.Submit(ctx, lightnuca.Request{Hierarchy: "ln+l3", Benchmark: "429.mcf"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Cancel(ctx, blocked.ID); err != nil {
		t.Fatal(err)
	}
	final, err = client.Wait(ctx, blocked.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != lightnuca.StatusCanceled {
		t.Fatalf("canceled job ended as %s", final.Status)
	}
	if _, err := client.Run(ctx, lightnuca.Request{Hierarchy: "bogus", Benchmark: "403.gcc"}); err == nil {
		t.Fatal("bad hierarchy accepted by the service")
	}
}

// TestClientSweepFanOut submits a declarative Sweep, waits it out with
// streamed aggregate snapshots, and checks the identical resubmission
// is served entirely from cache.
func TestClientSweepFanOut(t *testing.T) {
	ts, orch := stubServer(t, orchestrator.Config{Workers: 2, Run: instantRun})
	client := lightnuca.NewClient(ts.URL)
	client.PollInterval = time.Millisecond
	ctx := context.Background()

	sweep := lightnuca.Sweep{
		Hierarchies: []string{"conventional", "ln+l3"},
		Levels:      []int{2, 3},
		Benchmarks:  []string{"403.gcc", "470.lbm"},
		Seed:        1,
	}
	snapshots := 0
	st, err := client.RunSweep(ctx, sweep, func(lightnuca.SweepStatus) { snapshots++ })
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 6 || !st.Done || snapshots == 0 {
		t.Fatalf("sweep: %+v after %d snapshots", st, snapshots)
	}
	executed := orch.Metrics().Executed

	st2, err := client.RunSweep(ctx, sweep, nil)
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for _, j := range st2.Jobs {
		if j.Cached {
			cached++
		}
	}
	if cached != st2.Total {
		t.Fatalf("resubmitted sweep: %d/%d cached", cached, st2.Total)
	}
	if got := orch.Metrics().Executed; got != executed {
		t.Fatalf("resubmission executed %d new runs", got-executed)
	}

	// Client-side fan-out agrees with the service-side expansion cell
	// for cell: every expanded Request's key is among the sweep's jobs.
	reqs, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, j := range st.Jobs {
		keys[j.Key] = true
	}
	for i, r := range reqs {
		k, err := r.Key()
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if !keys[k] {
			t.Fatalf("cell %d: client-side key %s not among service jobs", i, k)
		}
	}
}

// TestClientErrorEnvelope: service-side errors surface as *APIError with
// the decoded message, not as opaque status text.
func TestClientErrorEnvelope(t *testing.T) {
	ts, _ := stubServer(t, orchestrator.Config{Workers: 1, Run: instantRun})
	client := lightnuca.NewClient(strings.TrimPrefix(ts.URL, "http://")) // bare host:port form
	_, err := client.Submit(context.Background(), lightnuca.Request{Hierarchy: "nope", Benchmark: "403.gcc"})
	apiErr, ok := err.(*lightnuca.APIError)
	if !ok {
		t.Fatalf("got %T (%v), want *APIError", err, err)
	}
	if apiErr.Status != 400 || !strings.Contains(apiErr.Message, "unknown hierarchy") {
		t.Fatalf("unexpected API error: %+v", apiErr)
	}
	if _, err := client.Job(context.Background(), "job-999999"); err == nil {
		t.Fatal("unknown job id accepted")
	}
}

// TestClientTracingPropagates pins client-side tracing end to end over
// HTTP: EnableTracing makes Submit open lnuca.client.submit, propagate
// its context in the traceparent header, and ship the finished span to
// POST /v1/spans — so the service's flight recorder ends up holding one
// tree rooted at the client span, with the orchestrator's submit span
// parented under it.
func TestClientTracingPropagates(t *testing.T) {
	flight := tracez.NewFlightRecorder(0, 0, 0)
	ts, _ := stubServer(t, orchestrator.Config{
		Workers: 1,
		Run:     instantRun,
		Tracer:  tracez.New(flight),
		Flight:  flight,
	})
	client := lightnuca.NewClient(ts.URL).EnableTracing()
	client.PollInterval = time.Millisecond
	ctx := context.Background()

	rec, err := client.Submit(ctx, lightnuca.Request{Hierarchy: "ln+l3", Benchmark: "403.gcc"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TraceID == "" {
		t.Fatal("traced submission returned no trace ID")
	}
	if _, err := client.Wait(ctx, rec.ID, nil); err != nil {
		t.Fatal(err)
	}

	// Submit ships its span before returning, but the orchestrator's own
	// spans finish on its goroutines; poll for both sides of the tree.
	var spans []tracez.Span
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		spans = flight.Spans(rec.TraceID)
		var haveClient, haveOrch bool
		for _, s := range spans {
			haveClient = haveClient || s.Name == "lnuca.client.submit"
			haveOrch = haveOrch || s.Name == "lnuca.orch.submit"
		}
		if haveClient && haveOrch {
			break
		}
		time.Sleep(time.Millisecond)
	}
	var rootID string
	for _, s := range spans {
		if s.Name == "lnuca.client.submit" {
			if s.Parent != "" {
				t.Fatalf("client span has parent %s, want root", s.Parent)
			}
			rootID = s.SpanID
		}
	}
	if rootID == "" {
		t.Fatalf("client span never reached the service recorder (spans: %d)", len(spans))
	}
	for _, s := range spans {
		if s.Name == "lnuca.orch.submit" && s.Parent != rootID {
			t.Fatalf("orch.submit parent = %s, want the client span %s — the traceparent header did not propagate", s.Parent, rootID)
		}
	}
}
