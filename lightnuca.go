// Package lightnuca is the public API of the Light NUCA reproduction: a
// cycle-accurate Go model of the cache organization proposed by Suárez et
// al., "Light NUCA: a proposal for bridging the inter-cache latency gap"
// (DATE 2009), together with the paper's complete evaluation environment —
// conventional and D-NUCA baselines, an out-of-order core model, synthetic
// SPEC CPU2006-like workloads, CMP workload mixes over a shared LLC, and
// area/energy/timing models.
//
// # One schema, many entry paths
//
// Every run is described by the same declarative, versioned Request
// (schema lnuca-run-v1): hierarchy, L-NUCA levels, benchmark or
// cores+mix, window, seed. The CLIs build a Request from flags, the
// lnucad service decodes it from JSON, and library callers hand it to a
// Runner. All paths normalize into the same canonical job and the same
// lnuca-job-v2 content key, so a result computed through any front-end
// is a cache hit for every other.
//
// Two Runner implementations ship:
//
//   - Local simulates in process, optionally backed by the same on-disk
//     content-addressed result store lnucad and lnucasweep share;
//   - Client submits to a running lnucad over HTTP, with polling,
//     cancellation, sweep fan-out and streaming progress.
//
// A minimal session:
//
//	runner := &lightnuca.Local{}
//	res, err := runner.Run(ctx, lightnuca.Request{
//		Hierarchy: "ln+l3",
//		Benchmark: "482.sphinx3",
//	})
//	fmt.Printf("IPC %.3f over %d cycles\n", res.IPC, res.Cycles)
//
// A 4-core CMP mix against a running service:
//
//	client := lightnuca.NewClient("localhost:8347")
//	res, err := client.Run(ctx, lightnuca.Request{
//		Hierarchy: "ln+l3", Cores: 4, Mix: "memory", Seed: 3,
//	})
//
// The cmd/ directory regenerates every table and figure of the paper;
// DESIGN.md maps each to its implementation.
package lightnuca

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/exp"
	"repro/internal/hier"
	"repro/internal/lnuca"
	"repro/internal/obs"
	"repro/internal/orchestrator"
	"repro/internal/power"
	"repro/internal/sram"
	"repro/internal/stats"
	"repro/internal/tech"
	"repro/internal/timing"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Request is the declarative description of one run — the lnuca-run-v1
// schema shared verbatim by the library, the CLIs and the lnucad HTTP
// API. See the field docs on the underlying type for defaults; only
// Hierarchy plus either Benchmark or Cores+Mix are required.
type Request = orchestrator.Request

// Sweep declares a hierarchy x levels x benchmark matrix of runs: the
// POST /v1/sweeps body and the unit of client-side fan-out. Expand turns
// it into one Request per cell.
type Sweep = orchestrator.SweepRequest

// RequestSchema is the current declarative run schema version.
const RequestSchema = orchestrator.RequestSchema

// Trace is a recorded instruction stream: provenance header plus ops,
// replayable bit-for-bit against any single-core hierarchy. Record
// captures one; Request.Trace (set to the trace's content hash) replays
// one through any Runner.
type Trace = trace.Trace

// TraceInfo is a trace's self-describing provenance: benchmark, seed,
// windows, op count, and the content hash that identifies it.
type TraceInfo = trace.Header

// TraceStore is a content-addressed trace store (directory-backed or
// in-memory), shared between Local runners, the CLIs and lnucad.
type TraceStore = trace.Store

// TraceSchema is the trace format version (lnuca-trace-v1).
const TraceSchema = trace.Schema

// DecodeTrace parses framed lnuca-trace-v1 bytes, verifying the format
// version and the content hash.
func DecodeTrace(data []byte) (*Trace, error) { return trace.Decode(data) }

// Runner executes Requests. Implementations: Local (in process) and
// Client (HTTP against lnucad). Both resolve a Request to the same
// content key, so they share cached results transparently.
type Runner interface {
	Run(ctx context.Context, req Request) (Result, error)
}

// CoreResult is one core's measured share of a CMP mix run.
type CoreResult = exp.CoreResult

// JobRecord is the service-side snapshot of a submitted run: identity
// (ID and content key), lifecycle status, progress, and the inlined
// result once done.
type JobRecord = orchestrator.JobRecord

// SweepStatus aggregates the records of one submitted sweep.
type SweepStatus = orchestrator.SweepStatus

// Metrics is the lnucad operational counter snapshot (GET /metrics).
type Metrics = orchestrator.Metrics

// Phases is a run's execution breakdown: per-phase wall time
// (build/warmup/measure), measured throughput in MIPS, and the gated
// kernel's activity counters (stepped vs fast-forwarded cycles, skip
// ratio, average active components). It describes one execution, not the
// run's content, so it is never part of the cached result.
type Phases = exp.Phases

// Timeline is a submitted job's lifecycle history: when it was
// submitted, started and finished, with queue and run durations.
type Timeline = orchestrator.Timeline

// BuildInfo identifies a binary: module version, VCS commit and Go
// toolchain, as served by lnucad's GET /healthz and the CLIs' -version.
type BuildInfo = obs.BuildInfo

// Status is a submitted run's lifecycle state.
type Status = orchestrator.Status

// The run lifecycle: queued -> running -> done | failed | canceled.
const (
	StatusQueued   = orchestrator.StatusQueued
	StatusRunning  = orchestrator.StatusRunning
	StatusDone     = orchestrator.StatusDone
	StatusFailed   = orchestrator.StatusFailed
	StatusCanceled = orchestrator.StatusCanceled
)

// Hierarchy selects one of the four organizations of Fig. 1.
type Hierarchy = hier.Kind

// The four evaluated hierarchies.
const (
	// Conventional is L1 32KB / L2 256KB / L3 8MB.
	Conventional = hier.Conventional
	// LNUCAPlusL3 replaces the L2 with an L-NUCA.
	LNUCAPlusL3 = hier.LNUCAL3
	// DNUCA is L1 / 8MB D-NUCA (the DN-4x8 baseline).
	DNUCA = hier.DNUCAOnly
	// LNUCAPlusDNUCA inserts an L-NUCA between L1 and the D-NUCA.
	LNUCAPlusDNUCA = hier.LNUCADNUCA
)

// HierarchyName renders a Hierarchy as the canonical Request.Hierarchy
// spelling ("conventional", "ln+l3", "dn-4x8", "ln+dn-4x8").
func HierarchyName(h Hierarchy) string { return orchestrator.KindName(h) }

// Result summarizes one measured window. Key is the run's lnuca-job-v2
// content address — identical for the same logical run regardless of
// which Runner (or CLI, or HTTP call) produced it — and Cached reports
// whether it was served from the result store without simulating.
type Result struct {
	// Key is the content address of the run.
	Key string
	// Cached reports a result served without simulating.
	Cached bool
	// Config is the paper-style configuration label (e.g. "LN3-144KB",
	// or "4x LN3-144KB" for a mix).
	Config string
	// Benchmark is the synthetic workload name (single-core runs).
	Benchmark string
	// IPC is committed instructions per cycle over the measured window
	// (single-core runs).
	IPC float64
	// Cycles is the measured window length.
	Cycles uint64
	// Energy is the Fig. 4(b)/5(b)-style breakdown for the window.
	Energy power.Breakdown

	// CMP mode (Cores > 1): per-core measurements over the shared LLC,
	// aggregate throughput (sum of per-core IPCs), and the
	// Snavely-Tullsen weighted speedup against single-core baselines.
	Cores           int
	PerCore         []CoreResult
	ThroughputIPC   float64
	WeightedSpeedup float64

	// LoadLatency is the measured window's load-latency histogram:
	// dispatch-to-complete cycles of every load that went to memory
	// (single-core runs).
	LoadLatency *stats.Histogram

	// Stats exposes every counter the simulator collected.
	Stats *stats.Set

	// Phases breaks down how this execution spent its time; nil for
	// cached results, which did not execute.
	Phases *Phases
}

// resultFrom converts the orchestrator's servable result into the public
// Result shape. Stats and PerCore are deep-copied: jr may be (or become)
// a live cache entry shared by every later hit on the same key, and a
// caller mutating its Result must not corrupt what the cache serves
// next.
func resultFrom(key string, jr *orchestrator.JobResult, cached bool) Result {
	out := Result{
		Key:             key,
		Cached:          cached,
		Config:          jr.Config,
		Benchmark:       jr.Benchmark,
		IPC:             jr.IPC,
		Cycles:          jr.Cycles,
		Cores:           jr.Cores,
		PerCore:         append([]CoreResult(nil), jr.PerCore...),
		ThroughputIPC:   jr.ThroughputIPC,
		WeightedSpeedup: jr.WeightedSpeedup,
		LoadLatency:     jr.LoadLatency.Clone(),
		Stats:           jr.Stats.Clone(),
	}
	if jr.Phases != nil {
		ph := *jr.Phases
		out.Phases = &ph
	}
	for b := power.Bucket(0); b < 4; b++ {
		out.Energy.Add(b, jr.EnergyPJ[b])
	}
	return out
}

// Options tune a run submitted through the deprecated Run entry point.
//
// Deprecated: build a Request instead; it carries the same fields plus
// the CMP mode, and flows unchanged through every front-end.
type Options struct {
	// Levels selects the L-NUCA depth (2..6; default 3).
	Levels int
	// Seed makes runs reproducible (default 1).
	Seed uint64
	// WarmupInstructions and MeasureInstructions size the run (defaults:
	// the harness "quick" mode; the paper uses 200M + 100M). Setting a
	// warmup without a measured window is rejected.
	WarmupInstructions, MeasureInstructions uint64
}

// defaultRunner backs the deprecated Run shim; repeated identical runs
// memoize in process.
var defaultRunner Local

// Run simulates one benchmark on one hierarchy and reports the measured
// window.
//
// Deprecated: use a Runner with a Request — Run(h, b, opt) is exactly
//
//	(&lightnuca.Local{}).Run(ctx, lightnuca.Request{
//		Hierarchy: lightnuca.HierarchyName(h), Benchmark: b,
//		Levels: opt.Levels, Seed: opt.Seed,
//		Warmup: opt.WarmupInstructions, Measure: opt.MeasureInstructions,
//	})
func Run(h Hierarchy, benchmark string, opt Options) (Result, error) {
	return defaultRunner.Run(context.Background(), Request{
		Hierarchy: HierarchyName(h),
		Levels:    opt.Levels,
		Benchmark: benchmark,
		Warmup:    opt.WarmupInstructions,
		Measure:   opt.MeasureInstructions,
		Seed:      opt.Seed,
	})
}

// Record executes one single-core Request in process — exactly the run
// any Runner would perform, bit-identical statistics included — while
// capturing the op stream the core consumed into a replayable Trace.
// The request must name a benchmark (not a mix or another trace).
// Replaying the returned trace on the same hierarchy reproduces this
// run's Result exactly; replaying it on any other hierarchy re-runs the
// identical workload there. Recording always simulates (the capture is
// the point), so no cache is consulted, and the result is not stored.
func Record(ctx context.Context, req Request) (Result, *Trace, error) {
	job, err := req.Job()
	if err != nil {
		return Result{}, nil, err
	}
	if job.IsMix() || job.Trace != "" || job.Benchmark == "" {
		return Result{}, nil, errors.New("lightnuca: Record needs a single-core benchmark request")
	}
	prof, ok := workload.ByName(job.Benchmark)
	if !ok {
		return Result{}, nil, fmt.Errorf("lightnuca: unknown benchmark %q", job.Benchmark)
	}
	res, tr := exp.RecordOneCtx(ctx, job.Spec(), prof, job.Mode, job.Seed, nil)
	if res.Err != nil {
		return Result{}, nil, res.Err
	}
	return resultFrom(job.Key(), orchestrator.ResultOf(res), false), tr, nil
}

// Benchmarks lists the 28 synthetic SPEC CPU2006 workload names. The
// returned slice is a copy; mutating it cannot corrupt the catalog.
func Benchmarks() []string { return workload.Names() }

// Mixes lists the named CMP workload mixes, plus the seeded-draw
// pseudo-mix "random".
func Mixes() []string {
	return append(workload.MixNames(), workload.RandomMixName)
}

// Topology returns the Fig. 2(c)-style latency grid plus the link
// accounting for an n-level L-NUCA.
func Topology(levels int) (string, error) {
	g, err := lnuca.NewGeometry(levels)
	if err != nil {
		return "", err
	}
	return g.RenderSummary() + g.RenderLatencyGrid(), nil
}

// TileTimingReport returns the Fig. 3(d) single-cycle feasibility
// analysis for the paper's 8KB 2-way tile.
func TileTimingReport() string {
	return timing.Analyze(sram.Config{
		SizeBytes:  8 << 10,
		Ways:       2,
		BlockBytes: 32,
		Ports:      1,
		Device:     tech.HP,
	}).String()
}

// AreaTable returns the Table II area comparison.
func AreaTable() string { return exp.Table2().String() }
