// Package lightnuca is the public API of the Light NUCA reproduction: a
// cycle-accurate Go model of the cache organization proposed by Suárez et
// al., "Light NUCA: a proposal for bridging the inter-cache latency gap"
// (DATE 2009), together with the paper's complete evaluation environment —
// conventional and D-NUCA baselines, an out-of-order core model, synthetic
// SPEC CPU2006-like workloads, and area/energy/timing models.
//
// A minimal session:
//
//	res, err := lightnuca.Run(lightnuca.LNUCAPlusL3, "482.sphinx3", lightnuca.Options{})
//	fmt.Printf("IPC %.3f over %d cycles\n", res.IPC, res.Cycles)
//
// The cmd/ directory regenerates every table and figure of the paper;
// DESIGN.md maps each to its implementation.
package lightnuca

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/hier"
	"repro/internal/lnuca"
	"repro/internal/power"
	"repro/internal/sram"
	"repro/internal/stats"
	"repro/internal/tech"
	"repro/internal/timing"
	"repro/internal/workload"
)

// Hierarchy selects one of the four organizations of Fig. 1.
type Hierarchy = hier.Kind

// The four evaluated hierarchies.
const (
	// Conventional is L1 32KB / L2 256KB / L3 8MB.
	Conventional = hier.Conventional
	// LNUCAPlusL3 replaces the L2 with an L-NUCA.
	LNUCAPlusL3 = hier.LNUCAL3
	// DNUCA is L1 / 8MB D-NUCA (the DN-4x8 baseline).
	DNUCA = hier.DNUCAOnly
	// LNUCAPlusDNUCA inserts an L-NUCA between L1 and the D-NUCA.
	LNUCAPlusDNUCA = hier.LNUCADNUCA
)

// Options tune a run; the zero value reproduces the paper's Table I
// machine with a 3-level L-NUCA at test scale.
type Options struct {
	// Levels selects the L-NUCA depth (2..6; default 3).
	Levels int
	// Seed makes runs reproducible (default 1).
	Seed uint64
	// WarmupInstructions and MeasureInstructions size the run (defaults:
	// the harness "quick" mode; the paper uses 200M + 100M).
	WarmupInstructions, MeasureInstructions uint64
}

// Result summarizes one measured window.
type Result struct {
	// Config is the paper-style configuration label (e.g. "LN3-144KB").
	Config string
	// Benchmark is the synthetic workload name.
	Benchmark string
	// IPC is committed instructions per cycle over the measured window.
	IPC float64
	// Cycles is the measured window length.
	Cycles uint64
	// Energy is the Fig. 4(b)/5(b)-style breakdown for the window.
	Energy power.Breakdown
	// Stats exposes every counter the simulator collected.
	Stats *stats.Set
}

// Benchmarks lists the 28 synthetic SPEC CPU2006 workload names.
func Benchmarks() []string { return workload.Names() }

// Run simulates one benchmark on one hierarchy and reports the measured
// window.
func Run(h Hierarchy, benchmark string, opt Options) (Result, error) {
	prof, ok := workload.ByName(benchmark)
	if !ok {
		return Result{}, fmt.Errorf("lightnuca: unknown benchmark %q (see Benchmarks())", benchmark)
	}
	mode := exp.Quick
	if opt.MeasureInstructions > 0 {
		mode = exp.Mode{Name: "custom", Warmup: opt.WarmupInstructions, Measure: opt.MeasureInstructions}
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	levels := opt.Levels
	if levels == 0 {
		levels = 3
	}
	spec := exp.Spec{Kind: h, Levels: levels}
	r := exp.RunOne(spec, prof, mode, seed)
	if r.Err != nil {
		return Result{}, r.Err
	}
	return Result{
		Config:    spec.Label(),
		Benchmark: benchmark,
		IPC:       r.IPC,
		Cycles:    r.Cycles,
		Energy:    r.Energy,
		Stats:     r.Stats,
	}, nil
}

// Topology returns the Fig. 2(c)-style latency grid plus the link
// accounting for an n-level L-NUCA.
func Topology(levels int) (string, error) {
	g, err := lnuca.NewGeometry(levels)
	if err != nil {
		return "", err
	}
	return g.RenderSummary() + g.RenderLatencyGrid(), nil
}

// TileTimingReport returns the Fig. 3(d) single-cycle feasibility
// analysis for the paper's 8KB 2-way tile.
func TileTimingReport() string {
	return timing.Analyze(sram.Config{
		SizeBytes:  8 << 10,
		Ways:       2,
		BlockBytes: 32,
		Ports:      1,
		Device:     tech.HP,
	}).String()
}

// AreaTable returns the Table II area comparison.
func AreaTable() string { return exp.Table2().String() }
