package lightnuca_test

import (
	"context"
	"fmt"
	"testing"

	lightnuca "repro"
)

// TestRunAllParallelSweepSharesOneRunner: a bounded-parallel sweep over
// one shared Local must (a) return results in request order, (b)
// simulate each distinct content key exactly once even when the sweep
// repeats points, and (c) agree exactly with a serial execution of the
// same requests.
func TestRunAllParallelSweepSharesOneRunner(t *testing.T) {
	newReqs := func() []lightnuca.Request {
		var reqs []lightnuca.Request
		for _, bench := range []string{"403.gcc", "429.mcf"} {
			for levels := 2; levels <= 4; levels++ {
				reqs = append(reqs, lightnuca.Request{
					Hierarchy: "ln+l3", Levels: levels, Benchmark: bench,
					Warmup: 500, Measure: 2000, Seed: 3,
				})
			}
		}
		// Duplicate the whole matrix: the shared runner must coalesce or
		// serve these from cache, never simulate them again.
		return append(reqs, reqs...)
	}

	ctx := context.Background()
	serial := &lightnuca.Local{}
	want, err := lightnuca.RunAll(ctx, serial, newReqs(), 1)
	if err != nil {
		t.Fatal(err)
	}

	parallel := &lightnuca.Local{}
	got, err := lightnuca.RunAll(ctx, parallel, newReqs(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || got[i].IPC != want[i].IPC || got[i].Cycles != want[i].Cycles {
			t.Errorf("result %d diverged: key %s ipc %v cycles %d, want key %s ipc %v cycles %d",
				i, got[i].Key, got[i].IPC, got[i].Cycles, want[i].Key, want[i].IPC, want[i].Cycles)
		}
	}
	fresh := 0
	for _, r := range got {
		if !r.Cached {
			fresh++
		}
	}
	if fresh != 6 {
		t.Errorf("parallel sweep freshly simulated %d points, want 6 (duplicates must coalesce or hit the shared cache)", fresh)
	}
}

// TestRunAllFirstErrorCancels: a failing request aborts the sweep and
// surfaces its error.
func TestRunAllFirstErrorCancels(t *testing.T) {
	reqs := []lightnuca.Request{
		{Hierarchy: "ln+l3", Benchmark: "403.gcc", Warmup: 500, Measure: 2000},
		{Hierarchy: "ln+l3", Benchmark: "no-such-benchmark", Warmup: 500, Measure: 2000},
	}
	_, err := lightnuca.RunAll(context.Background(), &lightnuca.Local{}, reqs, 2)
	if err == nil {
		t.Fatal("want an error for the unknown benchmark")
	}
	if got := fmt.Sprint(err); got == "" {
		t.Fatal("empty error")
	}
}
