package lightnuca_test

// Key-parity tests for the unified RunRequest schema: the same logical
// run, entered through the library (Local), the service (Client over
// HTTP), or the CLI flag shapes (lnucasim/lnucasweep), must resolve to
// the identical lnuca-job-v2 content key — that identity is what lets
// every front-end share one result cache.

import (
	"context"
	"net/http/httptest"
	"testing"

	lightnuca "repro"
	"repro/internal/exp"
	"repro/internal/hier"
	"repro/internal/orchestrator"
)

// stubServer wires an httptest lnucad around an orchestrator; run may be
// nil for the real simulation path.
func stubServer(t *testing.T, cfg orchestrator.Config) (*httptest.Server, *orchestrator.Orchestrator) {
	t.Helper()
	orch := orchestrator.New(cfg)
	ts := httptest.NewServer(orchestrator.NewServer(orch))
	t.Cleanup(func() {
		ts.Close()
		orch.Close()
	})
	return ts, orch
}

// instantRun is a stub RunFunc: submission, normalization and keying are
// exercised for real, only the simulation is skipped.
func instantRun(ctx context.Context, j orchestrator.Job, progress func(done, total uint64)) (*orchestrator.JobResult, error) {
	res := &orchestrator.JobResult{Config: j.Hierarchy, Benchmark: j.Benchmark, IPC: 1, Cycles: 1}
	if j.IsMix() {
		res.Benchmark = ""
		res.Cores = j.Cores
		for _, b := range j.MixBenchmarks {
			res.PerCore = append(res.PerCore, lightnuca.CoreResult{Benchmark: b, IPC: 1})
		}
	}
	return res, nil
}

// TestKeyParityGolden pins the cross-entry-path contract: the library
// Request, an HTTP submission of the same JSON, and the CLI flag shapes
// all land on the pinned lnuca-job-v2 golden keys — single-core and
// 4-core mix.
func TestKeyParityGolden(t *testing.T) {
	cases := []struct {
		name string
		req  lightnuca.Request
		key  string
	}{
		{"single-core", lightnuca.Request{Hierarchy: "conventional", Benchmark: "403.gcc", Mode: "quick", Seed: 1},
			"48935bf1d1b2baf8decb6842d930296ce3b75bd66e1341a12844b8f3805b5c92"},
		{"4-core-mix", lightnuca.Request{Hierarchy: "ln+l3", Cores: 4, Mix: "mixed", Mode: "quick", Seed: 1},
			"3c575e1a9e0f56338d13e47b6e52fa88cf3b1b12dbb4fa34665349dea87e052f"},
	}

	ts, _ := stubServer(t, orchestrator.Config{Workers: 2, Run: instantRun})
	client := lightnuca.NewClient(ts.URL)
	ctx := context.Background()

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Library path: the declarative request keys itself.
			libKey, err := c.req.Key()
			if err != nil {
				t.Fatal(err)
			}
			if libKey != c.key {
				t.Fatalf("library key %s, want golden %s", libKey, c.key)
			}

			// HTTP path: the service's record carries the key it filed
			// the run under.
			rec, err := client.Submit(ctx, c.req)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Key != c.key {
				t.Fatalf("HTTP-submitted key %s, want golden %s", rec.Key, c.key)
			}

			// CLI path (lnucasim -cores/-mix/-hier and the old sweep
			// construction): the orchestrator Job the flags used to build
			// directly keys identically to the Request they now build.
			var job orchestrator.Job
			if c.req.Cores > 1 {
				job = orchestrator.Job{Kind: hier.LNUCAL3, Levels: c.req.Levels,
					Cores: c.req.Cores, Mix: c.req.Mix, Mode: exp.Quick, Seed: c.req.Seed}
			} else {
				job = orchestrator.Job{Kind: hier.Conventional,
					Benchmark: c.req.Benchmark, Mode: exp.Quick, Seed: c.req.Seed}
			}
			nj, err := job.Normalize()
			if err != nil {
				t.Fatal(err)
			}
			if nj.Key() != c.key {
				t.Fatalf("CLI-shape key %s, want golden %s", nj.Key(), c.key)
			}
		})
	}
}

// TestKeyParityExecuted runs the same tiny logical run for real through
// Local and through Client/HTTP and checks both report the same key and
// the same measurement, with the lnucasweep flag shape (bare -instr,
// i.e. a measure-only custom window) agreeing on the key.
func TestKeyParityExecuted(t *testing.T) {
	req := lightnuca.Request{
		Hierarchy: "ln+l3",
		Benchmark: "453.povray",
		Warmup:    500,
		Measure:   2500,
		Seed:      1,
	}
	ctx := context.Background()

	local := &lightnuca.Local{}
	viaLocal, err := local.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	ts, _ := stubServer(t, orchestrator.Config{Workers: 1}) // real simulation path
	viaHTTP, err := lightnuca.NewClient(ts.URL).Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	if viaLocal.Key != viaHTTP.Key {
		t.Fatalf("Local key %s != HTTP key %s", viaLocal.Key, viaHTTP.Key)
	}
	if viaLocal.IPC != viaHTTP.IPC || viaLocal.Cycles != viaHTTP.Cycles {
		t.Fatalf("Local (IPC %v, %d cycles) != HTTP (IPC %v, %d cycles)",
			viaLocal.IPC, viaLocal.Cycles, viaHTTP.IPC, viaHTTP.Cycles)
	}

	// lnucasweep's flag shape: measure-only window, named internal mode.
	sweepJob, err := orchestrator.Job{
		Kind: hier.LNUCAL3, Levels: 3, Benchmark: req.Benchmark,
		Mode: exp.Mode{Name: "sweep", Warmup: req.Warmup, Measure: req.Measure},
		Seed: req.Seed,
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if sweepJob.Key() != viaLocal.Key {
		t.Fatalf("sweep-flag key %s != executed key %s", sweepJob.Key(), viaLocal.Key)
	}

	// The executed result round-trips the shared cache: rerunning via
	// Local is a hit, not a simulation.
	again, err := local.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("identical rerun missed the Local cache")
	}
	if again.IPC != viaLocal.IPC {
		t.Fatalf("cached IPC %v != simulated %v", again.IPC, viaLocal.IPC)
	}
}

// TestKeyParityExecutedMix runs a tiny 2-core mix through Local and the
// HTTP path and checks key and weighted-speedup parity.
func TestKeyParityExecutedMix(t *testing.T) {
	req := lightnuca.Request{
		Hierarchy: "conventional",
		Cores:     2,
		Mix:       "403.gcc,456.hmmer",
		Warmup:    500,
		Measure:   2000,
		Seed:      1,
	}
	ctx := context.Background()

	local := &lightnuca.Local{}
	viaLocal, err := local.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if viaLocal.Cores != 2 || len(viaLocal.PerCore) != 2 {
		t.Fatalf("mix result shape: %+v", viaLocal)
	}

	ts, _ := stubServer(t, orchestrator.Config{Workers: 1})
	viaHTTP, err := lightnuca.NewClient(ts.URL).Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if viaLocal.Key != viaHTTP.Key {
		t.Fatalf("Local mix key %s != HTTP mix key %s", viaLocal.Key, viaHTTP.Key)
	}
	if viaLocal.WeightedSpeedup != viaHTTP.WeightedSpeedup {
		t.Fatalf("weighted speedup diverged: %v vs %v",
			viaLocal.WeightedSpeedup, viaHTTP.WeightedSpeedup)
	}
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	if key != viaLocal.Key {
		t.Fatalf("declarative key %s != executed key %s", key, viaLocal.Key)
	}
}
