// Command lnucad is the long-running experiment orchestration service: a
// bounded simulation worker pool, a content-addressed result cache, and
// the HTTP JSON API (POST /v1/jobs, POST /v1/sweeps, GET /metrics, ...)
// that front-ends submit Light NUCA experiments through. POST bodies are
// the declarative lnuca-run-v1 Request schema — exactly what
// lightnuca.Client marshals and the CLIs build from flags — so a run
// submitted over HTTP has the same content key as the same run executed
// in process.
//
//	lnucad -addr :8347 -workers 8 -cache /var/lib/lnuca/results
//
// With -cache, results persist across restarts and are shared with the
// -cache flags of lnucasweep/lnucasim and with lightnuca.Local: any run
// computed once is never recomputed.
//
// The content-addressed trace store (POST/GET /v1/traces; trace-replay
// jobs name entries by hash) lives next to the result cache: -traces
// names its directory explicitly, and defaults to <cache>/traces when
// -cache is set (in-memory otherwise).
//
// Observability: every request is access-logged (structured, -log-format
// text|json at -log-level), GET /metrics serves Prometheus text to
// scrapers (JSON snapshot stays the default representation), GET
// /healthz reports build info and uptime, and -debug-addr starts a
// second, normally-off listener exposing net/http/pprof — keep it bound
// to localhost.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/orchestrator"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation workers")
	cacheDir := flag.String("cache", "", "result cache directory (empty = in-memory only)")
	cacheCap := flag.Int("cache-entries", 4096, "in-memory result cache capacity")
	traceDir := flag.String("traces", "", "trace store directory (default: <cache>/traces when -cache is set, else in-memory)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	debugAddr := flag.String("debug-addr", "", "listen address for the pprof debug server (empty = disabled)")
	version := flag.Bool("version", false, "print version information and exit")
	flag.Parse()

	build := obs.Build()
	if *version {
		fmt.Println("lnucad", build)
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lnucad:", err)
		os.Exit(2)
	}
	log, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lnucad:", err)
		os.Exit(2)
	}

	if *traceDir == "" && *cacheDir != "" {
		*traceDir = filepath.Join(*cacheDir, "traces")
	}
	registry := obs.NewRegistry()
	orch := orchestrator.New(orchestrator.Config{
		Workers:  *workers,
		Cache:    orchestrator.NewCache(*cacheCap, *cacheDir),
		Traces:   trace.NewStore(*traceDir),
		Logger:   log,
		Registry: registry,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: obs.Middleware(orchestrator.NewServer(orch), log, registry, orchestrator.RouteLabel),
	}

	errc := make(chan error, 2)
	go func() { errc <- srv.ListenAndServe() }()
	var debug *http.Server
	if *debugAddr != "" {
		// The pprof listener gets its own mux (the handlers register
		// endpoints like /debug/pprof/heap that must never ride on the
		// public API address) and is only started on explicit request.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debug = &http.Server{Addr: *debugAddr, Handler: mux}
		go func() { errc <- debug.ListenAndServe() }()
		log.Info("pprof debug server enabled", "addr", *debugAddr)
	}
	log.Info("lnucad serving",
		"addr", *addr,
		"workers", *workers,
		"cache", cacheLabel(*cacheDir),
		"traces", cacheLabel(*traceDir),
		"schema", orchestrator.RequestSchema,
		"version", build.Version,
		"commit", build.Commit,
	)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Error("listener failed", "error", err)
		orch.Close()
		os.Exit(1)
	case s := <-sigc:
		log.Info("signal received, draining", "signal", s.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if debug != nil {
		_ = debug.Shutdown(ctx)
	}
	orch.Close()
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}
