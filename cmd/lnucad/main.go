// Command lnucad is the long-running experiment orchestration service: a
// bounded simulation worker pool, a content-addressed result cache, and
// the HTTP JSON API (POST /v1/jobs, POST /v1/sweeps, GET /metrics, ...)
// that front-ends submit Light NUCA experiments through. POST bodies are
// the declarative lnuca-run-v1 Request schema — exactly what
// lightnuca.Client marshals and the CLIs build from flags — so a run
// submitted over HTTP has the same content key as the same run executed
// in process.
//
//	lnucad -addr :8347 -workers 8 -cache /var/lib/lnuca/results
//
// With -cache, results persist across restarts and are shared with the
// -cache flags of lnucasweep/lnucasim and with lightnuca.Local: any run
// computed once is never recomputed.
//
// The content-addressed trace store (POST/GET /v1/traces; trace-replay
// jobs name entries by hash) lives next to the result cache: -traces
// names its directory explicitly, and defaults to <cache>/traces when
// -cache is set (in-memory otherwise).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/orchestrator"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation workers")
	cacheDir := flag.String("cache", "", "result cache directory (empty = in-memory only)")
	cacheCap := flag.Int("cache-entries", 4096, "in-memory result cache capacity")
	traceDir := flag.String("traces", "", "trace store directory (default: <cache>/traces when -cache is set, else in-memory)")
	flag.Parse()

	if *traceDir == "" && *cacheDir != "" {
		*traceDir = filepath.Join(*cacheDir, "traces")
	}
	orch := orchestrator.New(orchestrator.Config{
		Workers: *workers,
		Cache:   orchestrator.NewCache(*cacheCap, *cacheDir),
		Traces:  trace.NewStore(*traceDir),
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: orchestrator.NewServer(orch),
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("lnucad: serving on %s (%d workers, cache %s, traces %s, request schema %s)\n",
		*addr, *workers, cacheLabel(*cacheDir), cacheLabel(*traceDir), orchestrator.RequestSchema)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "lnucad:", err)
		orch.Close()
		os.Exit(1)
	case s := <-sigc:
		fmt.Printf("lnucad: %s, draining\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	orch.Close()
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}
