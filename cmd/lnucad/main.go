// Command lnucad is the long-running experiment orchestration service: a
// bounded simulation worker pool, a content-addressed result cache, and
// the HTTP JSON API (POST /v1/jobs, POST /v1/sweeps, GET /metrics, ...)
// that front-ends submit Light NUCA experiments through. POST bodies are
// the declarative lnuca-run-v1 Request schema — exactly what
// lightnuca.Client marshals and the CLIs build from flags — so a run
// submitted over HTTP has the same content key as the same run executed
// in process.
//
//	lnucad -addr :8347 -workers 8 -cache /var/lib/lnuca/results
//
// With -cache, results persist across restarts and are shared with the
// -cache flags of lnucasweep/lnucasim and with lightnuca.Local: any run
// computed once is never recomputed.
//
// The content-addressed trace store (POST/GET /v1/traces; trace-replay
// jobs name entries by hash) lives next to the result cache: -traces
// names its directory explicitly, and defaults to <cache>/traces when
// -cache is set (in-memory otherwise).
//
// Distributed execution: -fleet turns the daemon into a fleet
// coordinator — jobs are dispatched over the /fleet/v1 lease protocol to
// pull-based workers instead of simulated in-process, while every API,
// cache and content-key behaviour stays identical. A worker is the same
// binary in -worker mode:
//
//	lnucad -fleet -addr :8347 -cache /var/lib/lnuca/results   # coordinator
//	lnucad -worker -coordinator http://coord:8347             # each worker
//
// The queue journal (-journal, defaulting to <cache>/journal.jsonl when
// -cache is set) records every submission and terminal transition; a
// restarted daemon replays the still-pending jobs, and the shared store
// makes already-computed points cache hits rather than re-simulations.
// -queue-cap bounds the queue (excess submissions are answered 429 +
// Retry-After) and -submit-rps/-submit-burst rate-limit submissions per
// client address.
//
// Robustness rehearsal: -chaos-seed arms the deterministic fault
// injector (DESIGN.md, "Failure model") on a daemon or worker — every
// fire is counted in lnuca_fault_injected_total{point}, and the seed
// alone reproduces the schedule. -drain-grace bounds how long a
// SIGTERMed worker lets its in-flight job finish before the lease is
// explicitly released back to the coordinator.
//
// Observability: every request is access-logged (structured, -log-format
// text|json at -log-level), GET /metrics serves Prometheus text to
// scrapers (JSON snapshot stays the default representation; fleet mode
// adds the lnuca_fleet_* series), GET /healthz reports build info and
// uptime, and -debug-addr starts a second, normally-off listener exposing
// net/http/pprof — keep it bound to localhost.
// -mutex-profile-fraction and -block-profile-rate turn on runtime
// contention sampling for that listener's mutex/block profiles.
//
// Distributed tracing is always on in daemon mode: every job grows a
// span tree (client submit → orchestrator queue/run → fleet dispatch →
// worker execution → simulation phases) held in a bounded in-memory
// flight recorder. GET /v1/traces/{jobid}/spans returns one job's tree
// with its correlated lease/fault events, GET /debug/tracez renders an
// HTML summary, GET /v1/sweeps/{id}/progress aggregates a sweep
// (per-point states, throughput, ETA, stragglers, per-worker load), and
// -span-log appends every finished span as JSONL for offline analysis.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/obs/tracez"
	"repro/internal/orchestrator"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation workers (fleet mode: concurrent dispatches)")
	cacheDir := flag.String("cache", "", "result cache directory (empty = in-memory only)")
	cacheCap := flag.Int("cache-entries", 4096, "in-memory result cache capacity")
	traceDir := flag.String("traces", "", "trace store directory (default: <cache>/traces when -cache is set, else in-memory)")
	journalPath := flag.String("journal", "", "queue journal file for restart resumability (default: <cache>/journal.jsonl when -cache is set; empty = no journal)")
	queueCap := flag.Int("queue-cap", 0, "bound on queued jobs; past it submissions get 429 + Retry-After (0 = unbounded)")
	submitRPS := flag.Float64("submit-rps", 0, "per-client submit rate limit, requests/second (0 = unlimited)")
	submitBurst := flag.Int("submit-burst", 8, "per-client submit burst on top of -submit-rps")
	fleetMode := flag.Bool("fleet", false, "coordinate a worker fleet: dispatch jobs over /fleet/v1 instead of simulating in-process")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "fleet mode: how long a silent worker holds a lease before its job is requeued")
	maxAttempts := flag.Int("max-attempts", 3, "fleet mode: lease attempts per job before it fails terminally")
	workerMode := flag.Bool("worker", false, "run as a fleet worker: pull jobs from -coordinator instead of serving the API")
	coordinatorURL := flag.String("coordinator", "", "coordinator base URL for -worker mode, e.g. http://host:8347")
	workerName := flag.String("worker-name", "", "worker name reported to the coordinator (default: hostname)")
	drainGrace := flag.Duration("drain-grace", 10*time.Second, "worker mode: how long SIGTERM lets an in-flight job finish before its lease is released back to the coordinator")
	chaosSeed := flag.Int64("chaos-seed", 0, "DEV ONLY: arm deterministic fault injection from this seed — injected HTTP/store/worker faults, counted in lnuca_fault_injected_total (0 = off)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	debugAddr := flag.String("debug-addr", "", "listen address for the pprof debug server (empty = disabled)")
	spanLog := flag.String("span-log", "", "append every finished span as one JSON line to this file (empty = disabled)")
	mutexFraction := flag.Int("mutex-profile-fraction", 0, "sample 1/n of mutex contention events for the -debug-addr mutex profile (0 = off)")
	blockRate := flag.Int("block-profile-rate", 0, "sample blocking events lasting >= n nanoseconds for the -debug-addr block profile (0 = off)")
	version := flag.Bool("version", false, "print version information and exit")
	flag.Parse()

	build := obs.Build()
	if *version {
		fmt.Println("lnucad", build)
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lnucad:", err)
		os.Exit(2)
	}
	log, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lnucad:", err)
		os.Exit(2)
	}

	if *traceDir == "" && *cacheDir != "" {
		*traceDir = filepath.Join(*cacheDir, "traces")
	}

	// Contention sampling feeds the pprof mutex/block profiles; the
	// fractions apply process-wide, so a worker can be sampled too.
	if *mutexFraction > 0 {
		runtime.SetMutexProfileFraction(*mutexFraction)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}

	if *workerMode {
		if *coordinatorURL == "" {
			fmt.Fprintln(os.Stderr, "lnucad: -worker requires -coordinator")
			os.Exit(2)
		}
		os.Exit(runWorker(log, *coordinatorURL, *workerName, *cacheDir, *cacheCap, *traceDir, *drainGrace, *chaosSeed))
	}

	if *journalPath == "" && *cacheDir != "" {
		*journalPath = filepath.Join(*cacheDir, "journal.jsonl")
	}
	var journal *orchestrator.Journal
	if *journalPath != "" {
		journal, err = orchestrator.OpenJournal(*journalPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lnucad:", err)
			os.Exit(1)
		}
	}

	registry := obs.NewRegistry()

	// The flight recorder (bounded ring of recent traces + lease/fault
	// events) is always on: its memory is capped and spans cost nothing
	// on the simulation hot path. -span-log adds a durable JSONL feed.
	flight := tracez.NewFlightRecorder(0, 0, 0)
	var spanSink tracez.Recorder = flight
	var spanLogFile *os.File
	if *spanLog != "" {
		f, ferr := os.OpenFile(*spanLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "lnucad: -span-log:", ferr)
			os.Exit(1)
		}
		spanLogFile = f
		spanSink = tracez.Tee(flight, tracez.NewJSONLRecorder(f))
	}
	spanCounts := registry.CounterVec("lnuca_spans_recorded_total",
		"Finished spans landed in the daemon's recorder, by span name.", "name")
	spanRec := tracez.RecorderFunc(func(s tracez.Span) {
		spanCounts.With(s.Name).Inc()
		spanSink.Record(s)
	})
	registry.CounterFunc("lnuca_spans_dropped_total",
		"Spans the flight recorder dropped at its per-trace bound (the JSONL log still sees them).",
		func() uint64 { return uint64(flight.DroppedSpans()) })
	registry.GaugeFunc("lnuca_trace_buffer_traces",
		"Traces currently retained in the flight recorder's ring.",
		flight.RetainedTraces)
	tracer := tracez.New(spanRec)

	traces := trace.NewStore(*traceDir)
	cache := orchestrator.NewCache(*cacheCap, *cacheDir)
	var faults *faultinject.Injector
	if *chaosSeed != 0 {
		faults = armChaos(*chaosSeed, false, registry, flight)
		cache.SetFaults(faults)
		traces.SetFaults(faults)
		if journal != nil {
			journal.SetFaults(faults)
		}
		log.Warn("CHAOS MODE armed: deterministic fault injection is live on this daemon",
			"seed", *chaosSeed, "schedule", faults.Describe())
	}
	ocfg := orchestrator.Config{
		Workers:  *workers,
		Cache:    cache,
		Traces:   traces,
		Logger:   log,
		Registry: registry,
		QueueCap: *queueCap,
		Journal:  journal,
		Tracer:   tracer,
		Flight:   flight,
	}
	var coord *fleet.Coordinator
	routeLabel := orchestrator.RouteLabel
	if *fleetMode {
		coord = fleet.NewCoordinator(fleet.Config{
			LeaseTTL:    *leaseTTL,
			MaxAttempts: *maxAttempts,
			Traces:      traces,
			Logger:      log,
			Registry:    registry,
			Events:      flight,
			Spans:       tracer.Recorder(),
		})
		ocfg.Run = coord.Dispatch
		routeLabel = fleet.RouteLabel
	}
	orch := orchestrator.New(ocfg)

	// A restarted daemon owes its clients the queue it died with:
	// resubmit every journaled job that never reached a terminal state.
	// Points the previous incarnation finished are cache hits here —
	// nothing stored is ever re-simulated.
	if journal != nil {
		pending := journal.Pending()
		for _, req := range pending {
			job, jerr := req.Job()
			if jerr != nil {
				log.Warn("journal holds an unparseable request; dropping", "error", jerr)
				continue
			}
			if _, serr := orch.Submit(job); serr != nil {
				log.Warn("journal replay submission rejected", "error", serr)
			}
		}
		if len(pending) > 0 {
			log.Info("journal replayed", "pending_jobs", len(pending), "journal", journal.Path())
		}
	}

	api := orchestrator.NewServer(orch)
	if *submitRPS > 0 {
		api.SetSubmitLimit(*submitRPS, *submitBurst)
	}
	var handler http.Handler = api
	if coord != nil {
		mux := http.NewServeMux()
		mux.Handle("/fleet/v1/", coord.Handler())
		mux.Handle("/", api)
		handler = mux
	}
	if faults != nil {
		handler = faultinject.Middleware(handler, faults, faultinject.PointCoordHTTP)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: obs.Middleware(handler, log, registry, routeLabel),
	}

	errc := make(chan error, 2)
	go func() { errc <- srv.ListenAndServe() }()
	var debug *http.Server
	if *debugAddr != "" {
		// The pprof listener gets its own mux (the handlers register
		// endpoints like /debug/pprof/heap that must never ride on the
		// public API address) and is only started on explicit request.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debug = &http.Server{Addr: *debugAddr, Handler: mux}
		go func() { errc <- debug.ListenAndServe() }()
		log.Info("pprof debug server enabled", "addr", *debugAddr)
	}
	log.Info("lnucad serving",
		"addr", *addr,
		"workers", *workers,
		"mode", modeLabel(*fleetMode),
		"cache", cacheLabel(*cacheDir),
		"traces", cacheLabel(*traceDir),
		"journal", cacheLabel(*journalPath),
		"span_log", cacheLabel(*spanLog),
		"schema", orchestrator.RequestSchema,
		"version", build.Version,
		"commit", build.Commit,
	)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	exitCode := 0
	select {
	case err := <-errc:
		log.Error("listener failed", "error", err)
		exitCode = 1
	case s := <-sigc:
		log.Info("signal received, draining", "signal", s.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if debug != nil {
		_ = debug.Shutdown(ctx)
	}
	// Orchestrator first — its shutdown unwinds every blocked fleet
	// dispatch — then the coordinator's reaper, then the journal (whose
	// still-pending entries are exactly what the next start replays).
	orch.Close()
	if coord != nil {
		coord.Close()
	}
	if journal != nil {
		_ = journal.Close()
	}
	if spanLogFile != nil {
		_ = spanLogFile.Close()
	}
	os.Exit(exitCode)
}

// runWorker is -worker mode: a pull-based fleet execution node. It holds
// no API listener and no durable state the fleet depends on — killing a
// worker mid-job only costs the coordinator a lease timeout and a retry
// elsewhere. Its cache and trace store (worker-local, optionally
// disk-backed via -cache / -traces) only save it work: results flow back
// over the lease protocol, and the coordinator's store is the one that
// counts.
func runWorker(log *slog.Logger, coordinator, name, cacheDir string, cacheCap int, traceDir string, drainGrace time.Duration, chaosSeed int64) int {
	if name == "" {
		if host, err := os.Hostname(); err == nil {
			name = host
		} else {
			name = "worker"
		}
	}
	var faults *faultinject.Injector
	var client *http.Client
	if chaosSeed != 0 {
		faults = armChaos(chaosSeed, true, nil, nil)
		client = &http.Client{
			Timeout:   30 * time.Second,
			Transport: &faultinject.Transport{Injector: faults, Point: faultinject.PointWorkerHTTP},
		}
		log.Warn("CHAOS MODE armed: deterministic fault injection is live on this worker",
			"seed", chaosSeed, "schedule", faults.Describe())
	}
	w := fleet.NewWorker(fleet.WorkerConfig{
		Coordinator: coordinator,
		Name:        name,
		Client:      client,
		Cache:       orchestrator.NewCache(cacheCap, cacheDir),
		Traces:      trace.NewStore(traceDir),
		DrainGrace:  drainGrace,
		Logger:      log,
		Faults:      faults,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil && err != context.Canceled {
		log.Warn("worker stopped", "error", err)
		return 1
	}
	log.Info("worker drained", "worker", name)
	return 0
}

// armChaos builds the -chaos-seed injector: documented moderate-rate
// plans for either the daemon (store + server-side HTTP faults) or a
// worker (execution + transport faults). Every fire is counted in
// lnuca_fault_injected_total{point} when a registry is given, and
// recorded as a "fault" event — carrying the affected trace ID when the
// faulted operation had one — when a flight recorder is given. The seed
// alone reproduces the schedule.
func armChaos(seed int64, worker bool, reg *obs.Registry, flight *tracez.FlightRecorder) *faultinject.Injector {
	in := faultinject.New(seed)
	if worker {
		in.Enable(faultinject.PointWorkerCrash, faultinject.Plan{Rate: 0.05})
		in.Enable(faultinject.PointWorkerStall, faultinject.Plan{Rate: 0.02})
		in.Enable(faultinject.PointWorkerHTTP, faultinject.Plan{Rate: 0.05})
	} else {
		in.Enable(faultinject.PointCacheWrite, faultinject.Plan{Rate: 0.05, Tear: 0.5})
		in.Enable(faultinject.PointTraceWrite, faultinject.Plan{Rate: 0.05, Tear: 0.5})
		in.Enable(faultinject.PointJournalAppend, faultinject.Plan{Rate: 0.02})
		in.Enable(faultinject.PointCoordHTTP, faultinject.Plan{Rate: 0.03, Status: http.StatusServiceUnavailable})
	}
	if reg != nil {
		vec := reg.CounterVec("lnuca_fault_injected_total",
			"Faults fired by the -chaos-seed injector, by injection point.", "point")
		in.OnFire(func(p faultinject.Point) { vec.With(string(p)).Inc() })
	}
	if flight != nil {
		in.OnEvent(func(e faultinject.Event) { flight.Event("fault", e.TraceID, string(e.Point)) })
	}
	return in
}

func modeLabel(fleetMode bool) string {
	if fleetMode {
		return "fleet-coordinator"
	}
	return "local"
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}
