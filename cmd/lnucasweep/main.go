// Command lnucasweep runs the design-space ablations DESIGN.md calls out:
// the L-NUCA choices the paper motivates but does not always quantify.
//
//	lnucasweep -ablate routing    random vs deterministic transport routing
//	lnucasweep -ablate buffers    link buffer depth 1/2/4
//	lnucasweep -ablate tilesize   2/4/8/16 KB tiles
//	lnucasweep -ablate levels     L-NUCA depth 2..6
//
// -cache DIR memoizes the full-system runs of -ablate levels in the same
// content-addressed store lnucad serves from, so repeated sweeps (and the
// service) never recompute a configuration already measured. One Local
// runner is shared across the whole invocation (whatever mix of ablations
// it runs), so its end-of-run cache statistics describe the sweep end to
// end. -j bounds how many independent sweep points simulate concurrently
// (default GOMAXPROCS); duplicate points still simulate once, coalesced
// by the shared runner.
//
// -cpuprofile / -memprofile write standard runtime/pprof profiles, so
// kernel performance work is measured rather than guessed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	lightnuca "repro"
	"repro/internal/lnuca"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/sim"
	"repro/internal/stats"
)

var benchNames = []string{"403.gcc", "429.mcf", "482.sphinx3", "434.zeusmp"}

func main() {
	ablate := flag.String("ablate", "levels", "routing|buffers|tilesize|levels")
	instr := flag.Uint64("instr", 30000, "instructions per run")
	server := flag.String("server", "", "lnucad address: run the levels sweep through the service (and its worker fleet) instead of in-process")
	cacheDir := flag.String("cache", "", "result cache directory shared with lnucad (levels sweep only)")
	jobs := flag.Int("j", 0, "max concurrent sweep points (levels sweep; 0 = GOMAXPROCS)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	version := flag.Bool("version", false, "print version information and exit")
	flag.Parse()

	if *version {
		fmt.Println("lnucasweep", obs.Build())
		return
	}

	prof, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	// One runner for the whole invocation: every runner-backed sweep
	// shares its cache and coalescing, so nothing simulates twice and
	// the final cache statistics are meaningful end to end. With
	// -server the runner is the lnucad client — same lnuca-run-v1
	// requests, same content keys, execution on the service (or its
	// worker fleet) instead of in this process.
	var runner lightnuca.Runner
	if *server != "" {
		runner = lightnuca.NewClient(*server)
	} else {
		runner = &lightnuca.Local{CacheDir: *cacheDir}
	}

	err = runSweep(*ablate, *instr, *cacheDir, *jobs, runner)
	if perr := prof.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "lnucasweep: %v\n", err)
	os.Exit(1)
}

func runSweep(ablate string, instr uint64, cacheDir string, jobs int, runner lightnuca.Runner) error {
	switch ablate {
	case "routing":
		return sweepFabric("transport routing", []fabricVariant{
			{"random (paper)", func(c *lnuca.Config) {}},
			{"deterministic", func(c *lnuca.Config) { c.DeterministicRouting = true }},
		}, instr)
	case "buffers":
		return sweepFabric("link buffer depth", []fabricVariant{
			{"1 entry", func(c *lnuca.Config) { c.LinkBufEntries = 1 }},
			{"2 entries (paper)", func(c *lnuca.Config) { c.LinkBufEntries = 2 }},
			{"4 entries", func(c *lnuca.Config) { c.LinkBufEntries = 4 }},
		}, instr)
	case "tilesize":
		if err := sweepFabric("tile size", []fabricVariant{
			{"2KB tiles", func(c *lnuca.Config) { c.TileBank.SizeBytes = 2 << 10 }},
			{"4KB tiles", func(c *lnuca.Config) { c.TileBank.SizeBytes = 4 << 10 }},
			{"8KB tiles (paper)", func(c *lnuca.Config) {}},
			{"16KB tiles*", func(c *lnuca.Config) { c.TileBank.SizeBytes = 16 << 10 }},
		}, instr); err != nil {
			return err
		}
		fmt.Println("* a 16KB tile does not meet the single-cycle constraint (lnucatopo -timing);")
		fmt.Println("  the sweep shows the capacity effect alone.")
		return nil
	case "levels":
		return sweepLevels(instr, cacheDir, jobs, runner)
	default:
		return fmt.Errorf("unknown -ablate %q", ablate)
	}
}

type fabricVariant struct {
	name  string
	tweak func(*lnuca.Config)
}

// sweepFabric compares fabric variants on raw fabric throughput: a
// synthetic requester drives the fabric directly so the ablation isolates
// the network, not the core.
func sweepFabric(title string, variants []fabricVariant, instr uint64) error {
	t := stats.NewTable("ablation: "+title,
		"variant", "avg hit latency", "transport ratio", "marked restarts", "hits served")
	for _, v := range variants {
		lat, ratio, restarts, hits, err := driveFabric(v.tweak, instr)
		if err != nil {
			return err
		}
		t.AddRowf(v.name, lat, ratio, fmt.Sprint(restarts), fmt.Sprint(hits))
	}
	fmt.Println(t)
	return nil
}

// driveFabric hammers a 3-level fabric with a hot tile working set to
// expose contention behaviour.
func driveFabric(tweak func(*lnuca.Config), ops uint64) (avgLat, ratio float64, restarts, hits uint64, err error) {
	cfg := lnuca.DefaultConfig(3)
	tweak(&cfg)
	up := mem.NewPort(16, 16)
	down := mem.NewPort(16, 16)
	var ids mem.IDSource
	f, err := lnuca.NewFabric(cfg, up, down, &ids)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	k := sim.NewKernel()
	k.MustRegister(f)
	drv := &driver{up: up, down: down, total: ops, rng: sim.NewRand(7), blockBytes: cfg.TileBank.BlockBytes}
	k.MustRegister(drv)

	// Pre-place a working set across the tiles.
	g := f.Geometry()
	for i := 0; i < g.NumTiles(); i++ {
		for j := 0; j < 64; j++ {
			f.TileBank(i).Fill(mem.Addr(0x100000+(i*64+j)*cfg.TileBank.BlockBytes), false)
		}
	}
	k.Run(uint64(ops) * 50)
	s := stats.NewSet()
	f.Collect("ln", s)
	var latSum uint64
	for _, c := range drv.lat {
		latSum += c
	}
	if drv.done > 0 {
		avgLat = float64(latSum) / float64(drv.done)
	}
	return avgLat, s.Scalar("ln.transport_ratio"), s.Counter("ln.marked_restarts"), drv.done, nil
}

// driver issues reads over the pre-placed working set and answers fabric
// misses instantly (a perfect next level), isolating fabric behaviour.
type driver struct {
	up, down   *mem.Port
	total      uint64
	rng        *sim.Rand
	blockBytes int

	issued, done uint64
	inflight     map[uint64]sim.Cycle
	lat          []uint64
}

func (d *driver) Name() string { return "driver" }

//lnuca:allow(hotalloc) synthetic ablation load driver; not part of a measured simulation
func (d *driver) Eval(k *sim.Kernel) {
	if d.inflight == nil {
		d.inflight = map[uint64]sim.Cycle{}
	}
	for {
		r, ok := d.up.Up.Pop()
		if !ok {
			break
		}
		if t0, ok := d.inflight[r.ID]; ok {
			d.lat = append(d.lat, uint64(k.Cycle()-t0))
			delete(d.inflight, r.ID)
			d.done++
		}
	}
	// Perfect next level: answer fabric fetches immediately.
	for {
		req, ok := d.down.Down.Pop()
		if !ok {
			break
		}
		if req.Kind == mem.Read && d.down.Up.CanPush() {
			d.down.Up.Push(&mem.Resp{ID: req.ID, Addr: req.Addr})
		}
	}
	// Moderate, bursty demand: enough to expose contention without
	// drowning the fabric in retries.
	if len(d.inflight) < 8 && d.issued < d.total && d.up.Down.CanPush() && d.rng.Bool(0.6) {
		d.issued++
		addr := mem.Addr(0x100000 + (d.rng.Intn(27*64))*d.blockBytes)
		d.inflight[d.issued] = k.Cycle()
		d.up.Down.Push(&mem.Req{ID: d.issued, Addr: addr, Kind: mem.Read, Issued: k.Cycle()})
	}
	if d.done >= d.total {
		k.Stop()
	}
}
func (d *driver) Commit(k *sim.Kernel) {
	d.up.Down.Tick()
	d.down.Up.Tick()
}

// sweepLevels runs full systems over 2..6 levels, reproducing the
// diminishing-returns claim ("performance increments do not pay off
// beyond 4 levels"). Each cell is a declarative lnuca-run-v1 Request
// built from the flags — the same schema the library and lnucad accept,
// keyed identically — and the whole matrix executes through RunAll over
// the one shared Local runner, up to -j points at a time; with -cache
// the content-addressed store persists on disk and is shared with
// lnucad.
func sweepLevels(instr uint64, cacheDir string, jobs int, runner lightnuca.Runner) error {
	var reqs []lightnuca.Request
	for levels := 2; levels <= 6; levels++ {
		for _, name := range benchNames {
			reqs = append(reqs, lightnuca.Request{
				Hierarchy: "ln+l3",
				Levels:    levels,
				Benchmark: name,
				Measure:   instr,
				Seed:      1,
			})
		}
	}
	results, err := lightnuca.RunAll(context.Background(), runner, reqs, jobs)
	if err != nil {
		return err
	}

	t := stats.NewTable("ablation: L-NUCA levels (full system, subset of benchmarks)",
		"levels", "capacity KB", "IPC hmean", "gain % vs 2 levels")
	base := 0.0
	for i, levels := 0, 2; levels <= 6; levels++ {
		var ipcs []float64
		for range benchNames {
			ipcs = append(ipcs, results[i].IPC)
			i++
		}
		hm := stats.HarmonicMean(ipcs)
		if levels == 2 {
			base = hm
		}
		t.AddRowf(fmt.Sprint(levels), fmt.Sprint(32+8*lnuca.NumTilesForLevels(levels)),
			hm, stats.SpeedupPercent(hm, base))
	}
	fmt.Println(t)
	if local, ok := runner.(*lightnuca.Local); ok {
		hits, misses := local.CacheStats()
		where := "in memory"
		if cacheDir != "" {
			where = cacheDir
		}
		fmt.Printf("result cache: %d hits, %d misses (%s)\n", hits, misses, where)
	}
	return nil
}
