package main

import (
	"strings"
	"testing"
)

// TestValidateTraceFlags covers the lnucasim flag path of the trace
// validation satellite: contradictory -record/-trace combinations are
// rejected at parse time with errors naming the conflict.
func TestValidateTraceFlags(t *testing.T) {
	cases := []struct {
		name           string
		record, replay string
		cores          int
		benches        string
		set            []string
		wantErr        bool
		wantMention    string
	}{
		{name: "plain-experiments", wantErr: false},
		{name: "cmp-mode", cores: 4, wantErr: false},
		{name: "record-ok", record: "out.lntrace", benches: "400.perlbench", wantErr: false},
		{name: "record-with-seed", record: "out.lntrace", benches: "400.perlbench", set: []string{"seed", "mode"}, wantErr: false},
		{name: "replay-ok", replay: "in.lntrace", wantErr: false},
		{name: "record-and-replay", record: "a", replay: "b", wantErr: true, wantMention: "exclusive"},
		{name: "record-with-cores", record: "a", benches: "403.gcc", cores: 2, wantErr: true, wantMention: "single-core"},
		{name: "replay-with-cores", replay: "a", cores: 2, wantErr: true, wantMention: "single-core"},
		{name: "replay-with-benches", replay: "a", benches: "403.gcc", wantErr: true, wantMention: "-benches"},
		{name: "replay-with-seed", replay: "a", set: []string{"seed"}, wantErr: true, wantMention: "recorded seed"},
		{name: "replay-with-mode", replay: "a", set: []string{"mode"}, wantErr: true, wantMention: "recorded seed"},
		{name: "replay-with-exp", replay: "a", set: []string{"exp"}, wantErr: true, wantMention: "-exp"},
		{name: "record-with-exp", record: "a", benches: "403.gcc", set: []string{"exp"}, wantErr: true, wantMention: "-exp"},
		{name: "record-without-bench", record: "a", wantErr: true, wantMention: "exactly one"},
		{name: "record-with-bench-list", record: "a", benches: "403.gcc,429.mcf", wantErr: true, wantMention: "exactly one"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			set := map[string]bool{}
			for _, f := range c.set {
				set[f] = true
			}
			err := validateTraceFlags(c.record, c.replay, c.cores, c.benches, set)
			if c.wantErr && err == nil {
				t.Fatal("expected an error")
			}
			if !c.wantErr && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if err != nil && !strings.Contains(err.Error(), c.wantMention) {
				t.Errorf("error %q should mention %q", err, c.wantMention)
			}
		})
	}
}
