// Command lnucasim regenerates the paper's evaluation: Tables I-III and
// Figures 4-5. Experiments are selected with -exp; -mode full uses the
// larger simulation windows.
//
// With -cores N (N > 1) it instead runs one multi-programmed CMP mix: N
// cores with private first levels (-hier selects which of the four
// Fig. 1 organizations) over the shared 8MB LLC, reporting per-core IPC,
// aggregate throughput, and weighted speedup against the single-core
// baselines.
//
// With -record FILE it records one benchmark's run (named by -benches)
// into a replayable lnuca-trace-v1 file while the normal measurement
// proceeds; with -trace FILE it replays a recorded trace against -hier
// instead of generating a workload (see also the dedicated lnucatrace
// CLI).
//
// Examples:
//
//	lnucasim -exp table2
//	lnucasim -exp fig4a,fig4b -mode full
//	lnucasim -exp all -benches 403.gcc,482.sphinx3
//	lnucasim -cores 4 -mix mixed -hier ln+l3
//	lnucasim -cores 2 -mix 429.mcf,470.lbm -hier conventional -seed 3
//	lnucasim -record perl.lntrace -benches 400.perlbench -hier ln+l3
//	lnucasim -trace perl.lntrace -hier conventional
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	lightnuca "repro"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/orchestrator"
	"repro/internal/profiling"
	"repro/internal/workload"
)

func main() {
	var (
		expFlag    = flag.String("exp", "all", "comma list of: table1,table2,table3,fig4a,fig4b,fig5a,fig5b,all")
		modeFlag   = flag.String("mode", "quick", "quick or full simulation windows")
		benchFlag  = flag.String("benches", "", "comma list of benchmarks (default: the full 28-benchmark suite)")
		seedFlag   = flag.Uint64("seed", 1, "simulation seed")
		coresFlag  = flag.Int("cores", 0, "CMP mode: number of cores (2..8; 0 = single-core paper experiments)")
		mixFlag    = flag.String("mix", "mixed", "CMP workload mix: a named mix ("+strings.Join(workload.MixNames(), "|")+"), 'random', or a comma list of benchmarks")
		hierFlag   = flag.String("hier", "ln+l3", "CMP hierarchy: conventional, ln+l3, dn-4x8, or ln+dn-4x8")
		levelsFlag = flag.Int("levels", 3, "L-NUCA levels for CMP L-NUCA hierarchies (2..6)")
		cacheFlag  = flag.String("cache", "", "result cache directory shared with lnucad/lnucasweep (CMP and trace modes)")
		recordFlag = flag.String("record", "", "record the run of the single -benches benchmark into this .lntrace file")
		traceFlag  = flag.String("trace", "", "replay this .lntrace file against -hier instead of generating a workload")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		version    = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("lnucasim", obs.Build())
		return
	}

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateTraceFlags(*recordFlag, *traceFlag, *coresFlag, *benchFlag, set); err != nil {
		fatalf("%v", err)
	}

	prof, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatalf("%v", err)
	}
	// Stop collectors on the happy path; fatalf exits forfeit the
	// profiles, which is fine for flag-validation failures.
	defer func() {
		if err := prof.Stop(); err != nil {
			fatalf("%v", err)
		}
	}()

	mode := exp.Quick
	if *modeFlag == "full" {
		mode = exp.Full
	} else if *modeFlag != "quick" {
		fatalf("unknown -mode %q (quick|full)", *modeFlag)
	}

	if *traceFlag != "" {
		runTraceReplay(*traceFlag, *hierFlag, *levelsFlag, *cacheFlag)
		return
	}
	if *recordFlag != "" {
		runRecord(*recordFlag, lightnuca.Request{
			Hierarchy: *hierFlag,
			Levels:    *levelsFlag,
			Benchmark: strings.TrimSpace(*benchFlag),
			Mode:      *modeFlag,
			Seed:      *seedFlag,
		})
		return
	}

	if *coresFlag > 0 {
		// CMP mode: the flags assemble the one declarative run schema
		// (lnuca-run-v1) shared with the library and the lnucad HTTP
		// API, so this run's content key — and cached result — is the
		// same whichever front-end computes it.
		runCMPMix(lightnuca.Request{
			Hierarchy: *hierFlag,
			Levels:    *levelsFlag,
			Cores:     *coresFlag,
			Mix:       *mixFlag,
			Mode:      *modeFlag,
			Seed:      *seedFlag,
		}, *cacheFlag)
		return
	}

	benches := workload.Suite()
	if *benchFlag != "" {
		benches = benches[:0]
		for _, name := range strings.Split(*benchFlag, ",") {
			p, ok := workload.ByName(strings.TrimSpace(name))
			if !ok {
				fatalf("unknown benchmark %q; known: %s", name, strings.Join(workload.Names(), ", "))
			}
			benches = append(benches, p)
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	if all || want["table1"] {
		fmt.Println(exp.Table1())
	}
	if all || want["table2"] {
		fmt.Println(exp.Table2())
		fmt.Println("paper: L2-256KB 0.91 mm2; LN2 0.46 / LN3 0.86 / LN4 1.59 mm2; network 14.0/18.8/19.0%")
		fmt.Println()
	}

	needConv := all || want["fig4a"] || want["fig4b"] || want["table3"]
	needDN := all || want["fig5a"] || want["fig5b"]

	if needConv {
		fmt.Printf("running conventional matrix (%d benchmarks x 4 configs, %s mode)...\n",
			len(benches), mode.Name)
		results := exp.Matrix(exp.ConventionalSpecs(), benches, mode, *seedFlag)
		if err := exp.FirstError(results); err != nil {
			fatalf("simulation failed: %v", err)
		}
		if all || want["fig4a"] {
			fmt.Println(exp.FigIPC("Fig 4(a): IPC harmonic mean, conventional hierarchies", exp.ConventionalSpecs(), results))
			fmt.Println("paper: LN2..LN4 gain 5.4-6.2% (int), 14.3-15.4% (fp) over L2-256KB")
			fmt.Println()
		}
		if all || want["fig4b"] {
			fmt.Println(exp.FigEnergy("Fig 4(b): total energy normalized to L2-256KB", exp.ConventionalSpecs(), results))
			fmt.Println("paper: savings 16.5% (LN2) .. 10.5% (LN4); L3 static dominates")
			fmt.Println()
		}
		if all || want["table3"] {
			fmt.Println(exp.Table3Render(exp.Table3(results)))
			fmt.Println("paper: Le2 58.7/40.9% (int/fp), all-levels up to 88.6/87.7%; ratio <= 1.014")
			fmt.Println()
		}
	}
	if needDN {
		fmt.Printf("running D-NUCA matrix (%d benchmarks x 4 configs, %s mode)...\n",
			len(benches), mode.Name)
		results := exp.Matrix(exp.DNUCASpecs(), benches, mode, *seedFlag)
		if err := exp.FirstError(results); err != nil {
			fatalf("simulation failed: %v", err)
		}
		if all || want["fig5a"] {
			fmt.Println(exp.FigIPC("Fig 5(a): IPC harmonic mean, D-NUCA hierarchies", exp.DNUCASpecs(), results))
			fmt.Println("paper: LN2+DN gains 4.2% (int) / 6.8% (fp), roughly flat in levels")
			fmt.Println()
		}
		if all || want["fig5b"] {
			fmt.Println(exp.FigEnergy("Fig 5(b): total energy normalized to DN-4x8", exp.DNUCASpecs(), results))
			fmt.Println("paper: savings 4.25% (LN2+DN) .. 0.2% (LN4+DN)")
			fmt.Println()
		}
	}
}

// runCMPMix executes one multi-programmed run described by the
// declarative request and prints the per-core report plus the
// multi-programmed aggregates. The runner memoizes in the same
// content-addressed store the service uses, so the single-core
// baselines the mix run computes internally are read back as cache
// hits for the "alone IPC" column.
func runCMPMix(req lightnuca.Request, cacheDir string) {
	ctx := context.Background()
	runner := &lightnuca.Local{CacheDir: cacheDir}
	nreq, err := req.Normalize()
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("running %d-core %s mix %q (%s mode, seed %d)...\n",
		nreq.Cores, nreq.Hierarchy, nreq.Mix, nreq.Mode, nreq.Seed)
	res, err := runner.Run(ctx, req)
	if err != nil {
		fatalf("mix failed: %v", err)
	}

	// The mix run resolved its weighted-speedup baselines through the
	// runner's cache; re-request them for the per-core table.
	baseline := make(map[string]float64, res.Cores)
	for _, c := range res.PerCore {
		if _, done := baseline[c.Benchmark]; done {
			continue
		}
		single := req
		single.Cores, single.Mix, single.Benchmark = 0, "", c.Benchmark
		b, err := runner.Run(ctx, single)
		if err != nil {
			fatalf("baseline %s: %v", c.Benchmark, err)
		}
		baseline[c.Benchmark] = b.IPC
	}

	kind, err := orchestrator.ParseKind(nreq.Hierarchy)
	if err != nil {
		fatalf("%v", err)
	}
	benchmarks := make([]string, len(res.PerCore))
	for i, c := range res.PerCore {
		benchmarks[i] = c.Benchmark
	}
	fmt.Println(exp.MixTable(exp.MixResult{
		Spec:       exp.MixSpec{Kind: kind, Levels: nreq.Levels, Benchmarks: benchmarks},
		Cycles:     res.Cycles,
		PerCore:    res.PerCore,
		Throughput: res.ThroughputIPC,
	}, baseline))
	fmt.Printf("aggregate throughput: %.3f IPC over %d cycles\n", res.ThroughputIPC, res.Cycles)
	fmt.Printf("weighted speedup:     %.3f (of %d ideal)\n", res.WeightedSpeedup, res.Cores)
	var grants, conflicts uint64
	for i := 0; i < res.Cores; i++ {
		grants += res.Stats.Counter(fmt.Sprintf("arb.grants.c%d", i))
		conflicts += res.Stats.Counter(fmt.Sprintf("arb.conflicts.c%d", i))
	}
	fmt.Printf("shared-LLC arbiter:   %d grants, %d conflict cycles\n", grants, conflicts)
	fmt.Printf("content key:          %s\n", res.Key)
}

// validateTraceFlags rejects contradictory trace-mode flag combinations
// at parse time, before any file or simulator is touched: recording and
// replaying are exclusive, both are single-core, a replay's workload,
// seed and windows come from the trace (not -benches/-seed/-mode), and
// a recording needs exactly one benchmark to name the trace's
// provenance. set holds the flags the user passed explicitly — a
// pinned-by-the-trace flag is only a conflict when actually given, not
// at its default.
func validateTraceFlags(record, replay string, cores int, benches string, set map[string]bool) error {
	switch {
	case record != "" && replay != "":
		return fmt.Errorf("-record and -trace are exclusive: a run either captures a stream or replays one")
	case record != "" && cores > 0:
		return fmt.Errorf("-record is single-core: drop -cores %d", cores)
	case replay != "" && cores > 0:
		return fmt.Errorf("-trace replays are single-core: drop -cores %d", cores)
	case replay != "" && benches != "":
		return fmt.Errorf("-trace pins the workload to the recorded benchmark: drop -benches %q", benches)
	case replay != "" && (set["seed"] || set["mode"]):
		return fmt.Errorf("-trace replays the recorded seed and windows: drop -seed/-mode")
	case (record != "" || replay != "") && set["exp"]:
		return fmt.Errorf("-record/-trace runs one benchmark stream, not -exp experiments: drop -exp")
	case record != "" && (benches == "" || strings.Contains(benches, ",")):
		return fmt.Errorf("-record needs exactly one benchmark in -benches, got %q", benches)
	}
	return nil
}

// runRecord records one live single-core run into a trace file.
func runRecord(path string, req lightnuca.Request) {
	res, tr, err := lightnuca.Record(context.Background(), req)
	if err != nil {
		fatalf("record: %v", err)
	}
	data, err := tr.Encode()
	if err != nil {
		fatalf("encode: %v", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Printf("recorded %s on %s: IPC %.3f over %d cycles\n", req.Benchmark, res.Config, res.IPC, res.Cycles)
	fmt.Printf("trace %s: id %s (%d ops, %d bytes)\n", path, tr.ID(), tr.Header.Ops, len(data))
}

// runTraceReplay replays a trace file against a hierarchy through the
// shared Local runner (and, with -cache, the shared result store).
func runTraceReplay(path, hier string, levels int, cacheDir string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	tr, err := lightnuca.DecodeTrace(data)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	runner := &lightnuca.Local{CacheDir: cacheDir}
	id, err := runner.ImportTrace(tr)
	if err != nil {
		fatalf("import: %v", err)
	}
	res, err := runner.Run(context.Background(), lightnuca.Request{Hierarchy: hier, Levels: levels, Trace: id})
	if err != nil {
		fatalf("replay: %v", err)
	}
	fmt.Printf("replayed %s (trace %s, seed %d) on %s: IPC %.3f over %d cycles\n",
		tr.Header.Benchmark, id[:12], tr.Header.Seed, res.Config, res.IPC, res.Cycles)
	fmt.Printf("content key: %s\n", res.Key)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lnucasim: "+format+"\n", args...)
	os.Exit(1)
}
