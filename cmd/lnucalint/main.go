// Command lnucalint runs the repository's static-analysis suite
// (internal/lint): hotalloc, determinism, schemastable, and obsnames —
// the machine-checked versions of the invariants the benchmarks and
// golden tests pin at runtime.
//
// Standalone, over import patterns (the CI entry point):
//
//	go run ./cmd/lnucalint ./...
//
// As a vet tool (one package per invocation, driven by the go command):
//
//	go vet -vettool=$(which lnucalint) ./...
//
// Regenerating the schema manifest after a deliberate, version-bumped
// schema change (the go:generate target of internal/lint):
//
//	go run ./cmd/lnucalint -write-schemas internal/lint/schemas.json
//
// Exit status: 0 clean, 1 usage or internal failure, 2 findings.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	writeSchemas := flag.String("write-schemas", "", "recompute the schema manifest and write it to `path` instead of linting")
	quiet := flag.Bool("q", false, "suppress the suppression-count summary")
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON (go vet -vettool protocol)")
	version := flag.String("V", "", "if 'full', print version and exit (go vet -vettool protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lnucalint [-write-schemas path] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()

	// The go command's -vettool driver probes the tool before use:
	// `-V=full` for a cache-keying version line, `-flags` for the JSON
	// list of tool flags it may forward (none beyond the protocol's own).
	if *version == "full" {
		return printVersion()
	}
	if *printFlags {
		fmt.Println("[]")
		return 0
	}

	// go vet -vettool invokes the tool with a single *.cfg argument
	// describing one package; everything else is the standalone path.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVet(args[0])
	}

	analyzers, err := lint.RepoAnalyzers()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if *writeSchemas != "" {
		return runWriteSchemas(*writeSchemas)
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags, suppressed, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if !*quiet && suppressed > 0 {
		fmt.Fprintf(os.Stderr, "lnucalint: %d finding(s) suppressed by //lnuca:allow directives\n", suppressed)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lnucalint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 2
	}
	return 0
}

// printVersion answers the -V=full probe with the line cmd/go expects:
// the executable path, the word "version", and a content hash it can
// use as a build cache key.
func printVersion() int {
	prog := os.Args[0]
	h := sha256.New()
	if f, err := os.Open(prog); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%x\n", prog, h.Sum(nil))
	return 0
}

func runWriteSchemas(path string) int {
	// Load by module-path pattern so the generator sees every schema
	// package no matter which directory `go generate` runs it from.
	pkgs, err := lint.Load(".", "repro/...")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	manifest, err := lint.BuildManifest(pkgs, lint.RepoSchemaSpecs())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	data, err := lint.WriteManifest(manifest)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "lnucalint: wrote %s (%d schemas)\n", path, len(manifest))
	return 0
}

// vetConfig is the subset of the go vet unitchecker protocol the tool
// consumes: cmd/go writes a JSON config per package and expects the
// tool to analyze exactly those files, write the (for us, empty) facts
// file, and exit non-zero on findings.
type vetConfig struct {
	ImportPath                string
	Dir                       string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, []byte{}, 0o644)
		}
	}
	// Dependency passes only collect facts; the suite keeps none, so an
	// empty vetx file is the complete answer.
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}
	// Export files are keyed by resolved path; the type-checker asks by
	// source-level import path, so route lookups through ImportMap.
	exports := make(map[string]string, len(cfg.PackageFile)+len(cfg.ImportMap))
	for p, f := range cfg.PackageFile {
		exports[p] = f
	}
	for src, real := range cfg.ImportMap {
		if f, ok := cfg.PackageFile[real]; ok {
			exports[src] = f
		}
	}
	pkg, err := lint.LoadVetPackage(cfg.ImportPath, cfg.GoFiles, exports)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	analyzers, err := lint.RepoAnalyzers()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	all, _, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// The vet driver also runs the tool over test variants; test files
	// (fakes, drivers) are exempt from the hot-path and determinism
	// contracts, matching the standalone mode, which never loads them.
	var diags []lint.Diagnostic
	for _, d := range all {
		if !strings.HasSuffix(d.Pos.Filename, "_test.go") {
			diags = append(diags, d)
		}
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	writeVetx()
	return 0
}
