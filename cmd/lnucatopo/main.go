// Command lnucatopo prints the L-NUCA structures of Figures 1-3: the
// network topologies (ASCII latency grid and Graphviz DOT), the hierarchy
// organizations, and the single-cycle tile timing analysis.
//
// Examples:
//
//	lnucatopo -levels 3
//	lnucatopo -levels 4 -net replacement -dot
//	lnucatopo -timing
//	lnucatopo -hier
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lnuca"
	"repro/internal/sram"
	"repro/internal/tech"
	"repro/internal/timing"
)

func main() {
	var (
		levels  = flag.Int("levels", 3, "L-NUCA levels (2..6)")
		netFlag = flag.String("net", "", "render one network as edges: search|transport|replacement")
		dotFlag = flag.Bool("dot", false, "emit Graphviz DOT instead of text")
		timingF = flag.Bool("timing", false, "print the Fig. 3(d) tile timing analysis")
		hierF   = flag.Bool("hier", false, "print the Fig. 1 hierarchy organizations")
	)
	flag.Parse()

	if *timingF {
		printTiming()
		return
	}
	if *hierF {
		printHierarchies()
		return
	}

	g, err := lnuca.NewGeometry(*levels)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lnucatopo:", err)
		os.Exit(1)
	}
	if *netFlag != "" {
		n, ok := lnuca.NetworkByName(*netFlag)
		if !ok {
			fmt.Fprintf(os.Stderr, "lnucatopo: unknown network %q\n", *netFlag)
			os.Exit(1)
		}
		if *dotFlag {
			fmt.Print(g.RenderDOT(n))
			return
		}
		fmt.Printf("%s network of a %d-level L-NUCA (see -dot for Graphviz)\n", *netFlag, *levels)
		fmt.Print(g.RenderSummary())
		return
	}
	fmt.Print(g.RenderSummary())
	fmt.Println()
	fmt.Print(g.RenderLatencyGrid())
}

func printTiming() {
	fmt.Println("Fig. 3(d): cache access + one-hop routing in a single 19 FO4 cycle")
	fmt.Println()
	for _, kb := range []int{4, 8, 16} {
		r := timing.Analyze(sram.Config{
			SizeBytes:  kb << 10,
			Ways:       2,
			BlockBytes: 32,
			Ports:      1,
			Device:     tech.HP,
		})
		fmt.Print(r)
		fmt.Println()
	}
	best := timing.LargestOneCycleTile()
	fmt.Printf("largest one-cycle tile found: %dKB %d-way %dB (paper: 8KB-2Way-32B)\n",
		best.SizeBytes/1024, best.Ways, best.BlockBytes)
}

func printHierarchies() {
	fmt.Print(`Fig. 1: the four evaluated cache hierarchies

(a) Conventional             (b) L-NUCA + L3
    L1 32KB                      L-NUCA (r-tile 32KB + 8KB tiles)
    L2 256KB                       72KB / 144KB / 248KB for 2/3/4 levels
    L3 8MB                       L3 8MB

(c) D-NUCA                   (d) L-NUCA + D-NUCA
    L1 32KB                      L-NUCA (as above)
    D-NUCA 8MB (4x8 banks)       D-NUCA 8MB (4x8 banks)

All backed by main memory: 200-cycle first chunk + 4 cycles per 16B chunk.
`)
}
