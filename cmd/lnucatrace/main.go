// Command lnucatrace records, inspects and replays lnuca-trace-v1
// instruction traces: record any workload once, re-run it against every
// hierarchy.
//
//	lnucatrace record -bench 400.perlbench -hier ln+l3 -o perl.lntrace
//	lnucatrace record -bench 429.mcf -hier conventional -mode full -seed 3 -o mcf.lntrace -selfcheck
//	lnucatrace info perl.lntrace
//	lnucatrace replay -hier dn-4x8 perl.lntrace
//	lnucatrace replay -hier ln+dn-4x8 -levels 4 -cache /var/lib/lnuca/results perl.lntrace
//
// record runs the benchmark live (printing the same measurement lnucasim
// would) while capturing the core's op stream; -selfcheck immediately
// replays the capture on the same hierarchy and fails unless every
// statistic is bit-identical to the live run. info prints a trace's
// provenance header and per-class op profile without simulating. replay
// imports the trace into a local runner and re-runs it against any
// hierarchy; with -cache (and -traces) the result and the trace land in
// the same content-addressed stores lnucad serves.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"reflect"

	lightnuca "repro"
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		cmdRecord(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	case "-version", "--version", "version":
		fmt.Println("lnucatrace", obs.Build())
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fatalf("unknown subcommand %q (want record, info or replay)", os.Args[1])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  lnucatrace record -bench <name> [-hier H] [-levels N] [-mode quick|full] [-warmup N -measure N] [-seed N] -o <file.lntrace> [-selfcheck]
  lnucatrace info <file.lntrace>
  lnucatrace replay [-hier H] [-levels N] [-cache dir] [-traces dir] <file.lntrace>`)
	os.Exit(2)
}

func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		bench   = fs.String("bench", "", "catalog benchmark to record (required)")
		hier    = fs.String("hier", "ln+l3", "hierarchy to record on: conventional, ln+l3, dn-4x8, ln+dn-4x8")
		levels  = fs.Int("levels", 3, "L-NUCA levels where applicable (2..6)")
		mode    = fs.String("mode", "quick", "simulation window: quick or full")
		warmup  = fs.Uint64("warmup", 0, "explicit warmup instructions (overrides -mode with -measure)")
		measure = fs.Uint64("measure", 0, "explicit measured instructions (overrides -mode with -warmup)")
		seed    = fs.Uint64("seed", 1, "simulation seed")
		out     = fs.String("o", "", "output trace file (required)")
		check   = fs.Bool("selfcheck", false, "replay the capture on the same hierarchy and fail unless bit-identical to the live run")
	)
	fs.Parse(args)
	if *bench == "" || *out == "" {
		fatalf("record needs -bench and -o")
	}
	req := lightnuca.Request{
		Hierarchy: *hier,
		Levels:    *levels,
		Benchmark: *bench,
		Seed:      *seed,
	}
	if *warmup != 0 || *measure != 0 {
		req.Warmup, req.Measure = *warmup, *measure
	} else {
		req.Mode = *mode
	}

	ctx := context.Background()
	live, tr, err := lightnuca.Record(ctx, req)
	if err != nil {
		fatalf("record: %v", err)
	}
	data, err := tr.Encode()
	if err != nil {
		fatalf("encode: %v", err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("recorded %s on %s: IPC %.3f over %d cycles\n", *bench, live.Config, live.IPC, live.Cycles)
	fmt.Printf("trace:    %s (%d ops, %d bytes)\n", *out, tr.Header.Ops, len(data))
	fmt.Printf("id:       %s\n", tr.ID())

	if *check {
		runner := &lightnuca.Local{}
		id, err := runner.ImportTrace(tr)
		if err != nil {
			fatalf("selfcheck import: %v", err)
		}
		replay, err := runner.Run(ctx, lightnuca.Request{Hierarchy: *hier, Levels: *levels, Trace: id})
		if err != nil {
			fatalf("selfcheck replay: %v", err)
		}
		if err := compareRuns(live, replay); err != nil {
			fatalf("selfcheck FAILED: %v", err)
		}
		fmt.Println("selfcheck: replay is bit-identical to the live run")
	}
}

// compareRuns asserts two results carry identical measurements: IPC,
// cycles, every counter and scalar, energy, and the load-latency
// histogram.
func compareRuns(live, replay lightnuca.Result) error {
	switch {
	case live.IPC != replay.IPC:
		return fmt.Errorf("IPC diverged: live %v, replay %v", live.IPC, replay.IPC)
	case live.Cycles != replay.Cycles:
		return fmt.Errorf("cycles diverged: live %d, replay %d", live.Cycles, replay.Cycles)
	case live.Stats.String() != replay.Stats.String():
		return fmt.Errorf("statistics diverged:\nlive:\n%sreplay:\n%s", live.Stats, replay.Stats)
	case live.Energy != replay.Energy:
		return fmt.Errorf("energy diverged: live %+v, replay %+v", live.Energy, replay.Energy)
	case !reflect.DeepEqual(live.LoadLatency, replay.LoadLatency):
		return fmt.Errorf("load-latency histogram diverged")
	}
	return nil
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("info needs exactly one trace file")
	}
	tr := readTrace(fs.Arg(0))
	h := tr.Header
	fmt.Printf("schema:    %s\n", h.Schema)
	fmt.Printf("id:        %s\n", h.ID)
	fmt.Printf("benchmark: %s\n", h.Benchmark)
	fmt.Printf("seed:      %d\n", h.Seed)
	fmt.Printf("windows:   %d warmup + %d measured instructions\n", h.Warmup, h.Measure)
	fmt.Printf("ops:       %d (%d replay slack beyond the windows)\n", h.Ops, h.Ops-min(h.Ops, h.Warmup+h.Measure))
	if len(tr.Ops) == 0 {
		return
	}
	var byClass [5]uint64
	for _, op := range tr.Ops {
		if int(op.Class) < len(byClass) {
			byClass[op.Class]++
		}
	}
	fmt.Printf("op mix:   ")
	for c := cpu.ClassInt; c <= cpu.ClassBranch; c++ {
		fmt.Printf(" %s %.1f%%", c, 100*float64(byClass[c])/float64(len(tr.Ops)))
	}
	fmt.Println()
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		hier     = fs.String("hier", "ln+l3", "hierarchy to replay against: conventional, ln+l3, dn-4x8, ln+dn-4x8")
		levels   = fs.Int("levels", 3, "L-NUCA levels where applicable (2..6)")
		cacheDir = fs.String("cache", "", "result cache directory shared with lnucad/lnucasweep")
		traceDir = fs.String("traces", "", "trace store directory shared with lnucad -traces")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("replay needs exactly one trace file")
	}
	tr := readTrace(fs.Arg(0))
	runner := &lightnuca.Local{CacheDir: *cacheDir, TraceDir: *traceDir}
	id, err := runner.ImportTrace(tr)
	if err != nil {
		fatalf("import: %v", err)
	}
	res, err := runner.Run(context.Background(), lightnuca.Request{Hierarchy: *hier, Levels: *levels, Trace: id})
	if err != nil {
		fatalf("replay: %v", err)
	}
	src := "simulated"
	if res.Cached {
		src = "cache hit"
	}
	fmt.Printf("replayed %s (%s, seed %d) on %s: IPC %.3f over %d cycles [%s]\n",
		tr.Header.Benchmark, fs.Arg(0), tr.Header.Seed, res.Config, res.IPC, res.Cycles, src)
	if res.LoadLatency != nil && res.LoadLatency.Count() > 0 {
		fmt.Printf("load latency: mean %.1f cycles, min %d, max %d over %d loads\n",
			res.LoadLatency.Mean(), res.LoadLatency.Min(), res.LoadLatency.Max(), res.LoadLatency.Count())
	}
	fmt.Printf("content key: %s\n", res.Key)
}

func readTrace(path string) *trace.Trace {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	tr, err := lightnuca.DecodeTrace(data)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	return tr
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lnucatrace: "+format+"\n", args...)
	os.Exit(1)
}
