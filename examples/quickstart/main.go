// Quickstart: build an L-NUCA hierarchy, run one synthetic SPEC-like
// workload, and print the headline statistics.
package main

import (
	"fmt"
	"log"

	lightnuca "repro"
)

func main() {
	res, err := lightnuca.Run(lightnuca.LNUCAPlusL3, "482.sphinx3", lightnuca.Options{
		Levels: 3,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s running %s\n", res.Config, res.Benchmark)
	fmt.Printf("  IPC:               %.3f over %d cycles\n", res.IPC, res.Cycles)
	fmt.Printf("  r-tile read hits:  %d (misses %d)\n",
		res.Stats.Counter("ln.rt_read_hits"), res.Stats.Counter("ln.rt_read_misses"))
	fmt.Printf("  tile hits Le2/Le3: %d / %d\n",
		res.Stats.Counter("ln.hits_le2"), res.Stats.Counter("ln.hits_le3"))
	fmt.Printf("  global misses:     %d (to the L3)\n", res.Stats.Counter("ln.global_misses"))
	fmt.Printf("  transport ratio:   %.4f (1.0 = never contended)\n",
		res.Stats.Scalar("ln.transport_ratio"))
	fmt.Printf("  energy:            %s\n", res.Energy)

	fmt.Println()
	topo, err := lightnuca.Topology(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(topo)
}
