// Quickstart: declare one run as a lightnuca.Request, execute it with
// the in-process Local runner, and print the headline statistics. The
// same Request, unchanged, could be submitted to a lnucad service via
// lightnuca.NewClient(addr).Run — identical content key, shared cache.
package main

import (
	"context"
	"fmt"
	"log"

	lightnuca "repro"
)

func main() {
	runner := &lightnuca.Local{}
	res, err := runner.Run(context.Background(), lightnuca.Request{
		Hierarchy: "ln+l3",
		Benchmark: "482.sphinx3",
		Levels:    3,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s running %s (key %.12s...)\n", res.Config, res.Benchmark, res.Key)
	fmt.Printf("  IPC:               %.3f over %d cycles\n", res.IPC, res.Cycles)
	fmt.Printf("  r-tile read hits:  %d (misses %d)\n",
		res.Stats.Counter("ln.rt_read_hits"), res.Stats.Counter("ln.rt_read_misses"))
	fmt.Printf("  tile hits Le2/Le3: %d / %d\n",
		res.Stats.Counter("ln.hits_le2"), res.Stats.Counter("ln.hits_le3"))
	fmt.Printf("  global misses:     %d (to the L3)\n", res.Stats.Counter("ln.global_misses"))
	fmt.Printf("  transport ratio:   %.4f (1.0 = never contended)\n",
		res.Stats.Scalar("ln.transport_ratio"))
	fmt.Printf("  energy:            %s\n", res.Energy)

	fmt.Println()
	topo, err := lightnuca.Topology(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(topo)
}
