// Example service_client drives the lnucad orchestration service
// end-to-end through the public lightnuca.Client: it submits a sweep
// over three hierarchies x four benchmarks as one declarative Sweep,
// streams its progress to completion, then resubmits the identical
// sweep and asserts the second pass is served 100% from the
// content-addressed result cache — zero additional simulations.
//
// By default it spins up an in-process server on a loopback port, so it
// is self-contained; point -addr at a running lnucad to exercise a real
// deployment:
//
//	go run ./examples/service_client [-addr host:port]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	lightnuca "repro"
	"repro/internal/orchestrator"
)

func main() {
	addr := flag.String("addr", "", "lnucad address (empty = start an in-process server)")
	flag.Parse()
	ctx := context.Background()

	target := *addr
	if target == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail("listen: %v", err)
		}
		orch := orchestrator.New(orchestrator.Config{Workers: 4})
		defer orch.Close()
		go func() { _ = http.Serve(ln, orchestrator.NewServer(orch)) }()
		target = ln.Addr().String()
		fmt.Printf("started in-process lnucad on %s\n", target)
	}

	client := lightnuca.NewClient(target)
	if err := client.Health(ctx); err != nil {
		fail("healthz: %v", err)
	}
	fmt.Println("healthz: ok")

	// One cell submitted as a single declarative request first: the
	// same schema the sweep fans out, so the sweep below reuses it.
	res, err := client.Run(ctx, lightnuca.Request{
		Hierarchy: "ln+l3", Benchmark: "403.gcc", Mode: "quick", Seed: 1,
	})
	if err != nil {
		fail("single run: %v", err)
	}
	fmt.Printf("\nsingle request: %s %s IPC %.3f (key %.12s...)\n\n",
		res.Config, res.Benchmark, res.IPC, res.Key)

	sweep := lightnuca.Sweep{
		Hierarchies: []string{"conventional", "ln+l3", "dn-4x8"},
		Levels:      []int{3},
		Benchmarks:  []string{"403.gcc", "429.mcf", "434.zeusmp", "482.sphinx3"},
		Mode:        "quick",
		Seed:        1,
	}

	fmt.Println("pass 1: submitting 3 hierarchies x 4 benchmarks (cold cache)")
	t0 := time.Now()
	runSweep(ctx, client, sweep, false)
	cold := time.Since(t0)

	fmt.Println("\npass 2: resubmitting the identical sweep (must be 100% cache)")
	t1 := time.Now()
	runSweep(ctx, client, sweep, true)
	warm := time.Since(t1)

	m, err := client.Metrics(ctx)
	if err != nil {
		fail("metrics: %v", err)
	}
	fmt.Printf("\n/metrics after both passes:\n")
	fmt.Printf("  runs executed     %d (12 cells, simulated once each)\n", m.Executed)
	fmt.Printf("  cache hits        %d\n", m.CacheHits)
	fmt.Printf("  cache misses      %d\n", m.CacheMisses)
	fmt.Printf("  cache hit rate    %.1f%%\n", 100*m.CacheHitRate)
	fmt.Printf("  runs per second   %.2f\n", m.RunsPerSecond)
	fmt.Printf("  cold pass %.2fs, warm pass %.2fs\n", cold.Seconds(), warm.Seconds())
	if m.Executed > 12 {
		fail("expected at most 12 simulations, the cache did not absorb the resubmission")
	}
}

// runSweep submits one sweep through the client, streams progress until
// every cell is terminal, and prints the per-cell IPC table. With
// requireCached it asserts every cell was served from the result cache.
func runSweep(ctx context.Context, client *lightnuca.Client, sweep lightnuca.Sweep, requireCached bool) {
	lastDone := -1
	st, err := client.RunSweep(ctx, sweep, func(st lightnuca.SweepStatus) {
		done := st.ByState[lightnuca.StatusDone]
		if done != lastDone {
			fmt.Printf("  progress: %d/%d cells done\n", done, st.Total)
			lastDone = done
		}
	})
	if err != nil {
		fail("sweep: %v", err)
	}
	cached := 0
	for _, j := range st.Jobs {
		if j.Status != lightnuca.StatusDone {
			fail("job %s: %s %s", j.ID, j.Status, j.Error)
		}
		if j.Cached {
			cached++
		}
		fmt.Printf("  %-12s %-14s IPC %.3f  %s\n",
			j.Result.Config, j.Result.Benchmark, j.Result.IPC, tag(j.Cached))
	}
	fmt.Printf("  done: %d/%d cells served from cache\n", cached, st.Total)
	if requireCached && cached != st.Total {
		fail("resubmitted sweep only %d/%d cached — the content keys diverged", cached, st.Total)
	}
}

func tag(cached bool) string {
	if cached {
		return "[cache hit]"
	}
	return "[simulated]"
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "service_client: "+format+"\n", args...)
	os.Exit(1)
}
