// Example service_client drives the lnucad orchestration service
// end-to-end: it submits a sweep over three hierarchies x four
// benchmarks through the HTTP API, polls it to completion, then
// resubmits the identical sweep and shows — via the /metrics cache
// hit-rate — that the second pass is served entirely from the
// content-addressed result cache without re-simulating.
//
// By default it spins up an in-process server on a loopback port, so it
// is self-contained; point -addr at a running lnucad to exercise a real
// deployment:
//
//	go run ./examples/service_client [-addr host:port]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/orchestrator"
)

func main() {
	addr := flag.String("addr", "", "lnucad address (empty = start an in-process server)")
	flag.Parse()

	base := "http://" + *addr
	if *addr == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail("listen: %v", err)
		}
		orch := orchestrator.New(orchestrator.Config{Workers: 4})
		defer orch.Close()
		go func() { _ = http.Serve(ln, orchestrator.NewServer(orch)) }()
		base = "http://" + ln.Addr().String()
		fmt.Printf("started in-process lnucad on %s\n", ln.Addr())
	}

	var health map[string]string
	mustGet(base+"/healthz", &health)
	fmt.Printf("healthz: %s\n\n", health["status"])

	sweep := map[string]interface{}{
		"hierarchies": []string{"conventional", "ln+l3", "dn-4x8"},
		"levels":      []int{3},
		"benchmarks":  []string{"403.gcc", "429.mcf", "434.zeusmp", "482.sphinx3"},
		"mode":        "quick",
		"seed":        1,
	}

	fmt.Println("pass 1: submitting 3 hierarchies x 4 benchmarks (cold cache)")
	t0 := time.Now()
	runSweep(base, sweep)
	cold := time.Since(t0)

	fmt.Println("\npass 2: resubmitting the identical sweep (warm cache)")
	t1 := time.Now()
	runSweep(base, sweep)
	warm := time.Since(t1)

	var m orchestrator.Metrics
	mustGet(base+"/metrics", &m)
	fmt.Printf("\n/metrics after both passes:\n")
	fmt.Printf("  runs executed     %d (12 cells, simulated once each)\n", m.Executed)
	fmt.Printf("  cache hits        %d\n", m.CacheHits)
	fmt.Printf("  cache misses      %d\n", m.CacheMisses)
	fmt.Printf("  cache hit rate    %.1f%%\n", 100*m.CacheHitRate)
	fmt.Printf("  runs per second   %.2f\n", m.RunsPerSecond)
	fmt.Printf("  cold pass %.2fs, warm pass %.2fs\n", cold.Seconds(), warm.Seconds())
	if m.Executed > 12 {
		fail("expected at most 12 simulations, the cache did not absorb the resubmission")
	}
}

// runSweep posts one sweep, polls until every job is terminal, and
// prints the per-cell IPC table.
func runSweep(base string, sweep map[string]interface{}) {
	body, _ := json.Marshal(sweep)
	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		fail("POST /v1/sweeps: %v", err)
	}
	var submitted struct {
		ID   string                   `json:"id"`
		Jobs []orchestrator.JobRecord `json:"jobs"`
	}
	decode(resp, &submitted)
	fmt.Printf("  sweep %s: %d jobs\n", submitted.ID, len(submitted.Jobs))

	var st orchestrator.SweepStatus
	for {
		mustGet(base+"/v1/sweeps/"+submitted.ID, &st)
		if st.Done {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	cached := 0
	for _, j := range st.Jobs {
		if j.Status != orchestrator.StatusDone {
			fail("job %s: %s %s", j.ID, j.Status, j.Error)
		}
		if j.Cached {
			cached++
		}
		fmt.Printf("  %-12s %-14s IPC %.3f  %s\n",
			j.Result.Config, j.Result.Benchmark, j.Result.IPC, tag(j.Cached))
	}
	fmt.Printf("  done: %d/%d cells served from cache\n", cached, st.Total)
}

func tag(cached bool) string {
	if cached {
		return "[cache hit]"
	}
	return "[simulated]"
}

func mustGet(url string, dst interface{}) {
	resp, err := http.Get(url)
	if err != nil {
		fail("GET %s: %v", url, err)
	}
	decode(resp, dst)
}

func decode(resp *http.Response, dst interface{}) {
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		fail("%s: %s", resp.Status, e["error"])
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		fail("decode: %v", err)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "service_client: "+format+"\n", args...)
	os.Exit(1)
}
