// hierarchy_compare reproduces the Fig. 4 scenario on a handful of
// benchmarks: the conventional L2-256KB baseline against L-NUCAs of 2..4
// levels, reporting per-benchmark IPC, load latency and energy savings.
package main

import (
	"fmt"
	"log"

	lightnuca "repro"
	"repro/internal/power"
)

var benchmarks = []string{"403.gcc", "429.mcf", "434.zeusmp", "482.sphinx3"}

func main() {
	type cell struct {
		ipc    float64
		energy power.Breakdown
	}
	configs := []struct {
		name   string
		h      lightnuca.Hierarchy
		levels int
	}{
		{"L2-256KB", lightnuca.Conventional, 0},
		{"LN2-72KB", lightnuca.LNUCAPlusL3, 2},
		{"LN3-144KB", lightnuca.LNUCAPlusL3, 3},
		{"LN4-248KB", lightnuca.LNUCAPlusL3, 4},
	}

	results := map[string]map[string]cell{}
	for _, b := range benchmarks {
		results[b] = map[string]cell{}
		for _, c := range configs {
			res, err := lightnuca.Run(c.h, b, lightnuca.Options{Levels: c.levels, Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			results[b][c.name] = cell{ipc: res.IPC, energy: res.Energy}
		}
	}

	fmt.Printf("%-14s", "benchmark")
	for _, c := range configs {
		fmt.Printf("  %-10s", c.name)
	}
	fmt.Println(" (IPC, gain vs baseline)")
	for _, b := range benchmarks {
		fmt.Printf("%-14s", b)
		base := results[b][configs[0].name].ipc
		for _, c := range configs {
			ipc := results[b][c.name].ipc
			fmt.Printf("  %.3f %+4.1f%%", ipc, 100*(ipc-base)/base)
		}
		fmt.Println()
	}

	fmt.Println("\nenergy savings vs baseline (total, %):")
	for _, b := range benchmarks {
		fmt.Printf("%-14s", b)
		base := results[b][configs[0].name].energy
		for _, c := range configs[1:] {
			fmt.Printf("  %-10s %+5.1f%%", c.name, results[b][c.name].energy.SavingsPercentVs(base))
		}
		fmt.Println()
	}
	fmt.Println("\npaper (suite means): IPC +5.4..6.2% int / +14.3..15.4% fp; energy savings 10.5..16.5%")
}
