// dnuca_integration reproduces the Fig. 5 scenario: the DN-4x8 D-NUCA
// baseline against the same D-NUCA with a small L-NUCA in front,
// demonstrating that the two organizations compose (Section V.B).
package main

import (
	"fmt"
	"log"

	lightnuca "repro"
)

var benchmarks = []string{"403.gcc", "434.zeusmp", "482.sphinx3"}

func main() {
	for _, b := range benchmarks {
		base, err := lightnuca.Run(lightnuca.DNUCA, b, lightnuca.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		front, err := lightnuca.Run(lightnuca.LNUCAPlusDNUCA, b, lightnuca.Options{Levels: 2, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", b)
		fmt.Printf("  DN-4x8:      IPC %.3f, D-NUCA bank accesses %d, net flit-hops %d\n",
			base.IPC, base.Stats.Counter("dn.bank_accesses"), base.Stats.Counter("dn.net_flit_hops"))
		fmt.Printf("  LN2+DN-4x8:  IPC %.3f (%+.1f%%), D-NUCA bank accesses %d (filtered by the L-NUCA), net flit-hops %d\n",
			front.IPC, 100*(front.IPC-base.IPC)/base.IPC,
			front.Stats.Counter("dn.bank_accesses"), front.Stats.Counter("dn.net_flit_hops"))
		fmt.Printf("  L-NUCA absorbed: Le2 hits %d, global misses passed on %d\n",
			front.Stats.Counter("ln.hits_le2"), front.Stats.Counter("ln.global_misses"))
		fmt.Printf("  energy: DN %.3g pJ -> LN2+DN %.3g pJ (%+.1f%% saving)\n\n",
			base.Energy.Total(), front.Energy.Total(),
			front.Energy.SavingsPercentVs(base.Energy))
	}
	fmt.Println("paper (suite means): LN2+DN-4x8 gains 4.2% int / 6.8% fp IPC and saves 4.25% energy;")
	fmt.Println("the added L-NUCA activity costs less than the D-NUCA bank+VC-router activity it removes.")
}
