// Example cmp_mix walks through the multi-programmed CMP mode end to
// end:
//
//  1. resolve a 4-core workload mix from the 28-benchmark catalog;
//  2. run it directly through exp.RunMix — twice — to show the
//     simulation is deterministic (identical per-core stats);
//  3. compute the single-core baselines and report per-core slowdown,
//     aggregate throughput and weighted speedup;
//  4. run the identical mix as one declarative lightnuca.Request
//     through the public Local runner — twice — and show the rerun (and
//     the baselines inside the mix run) are served 100% from the
//     content-addressed result cache.
//
// Run it with:
//
//	go run ./examples/cmp_mix [-cores 4] [-mix mixed] [-hier ln+l3]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"reflect"
	"strings"

	lightnuca "repro"
	"repro/internal/exp"
	"repro/internal/orchestrator"
	"repro/internal/workload"
)

func main() {
	cores := flag.Int("cores", 4, "number of cores (2..8)")
	mix := flag.String("mix", "mixed", "mix name, 'random', or comma list of benchmarks")
	hier := flag.String("hier", "ln+l3", "per-core hierarchy: conventional, ln+l3, dn-4x8, ln+dn-4x8")
	seed := flag.Uint64("seed", 1, "simulation seed (also fixes 'random' draws)")
	flag.Parse()

	kind, err := orchestrator.ParseKind(*hier)
	if err != nil {
		fail("%v", err)
	}

	// 1. A mix spec resolves to one benchmark per core; "random" draws
	// are a pure function of (cores, seed), so they are reproducible and
	// cacheable.
	benchmarks, err := workload.ResolveMix(*mix, *cores, *seed)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("mix %q on %d cores resolves to: %s\n\n", *mix, *cores, strings.Join(benchmarks, ", "))

	// 2. Run the mix twice: per-core results must be bit-identical.
	spec := exp.MixSpec{Kind: kind, Levels: 3, Benchmarks: benchmarks}
	fmt.Printf("running %s twice (quick windows)...\n", spec.Label())
	r1 := exp.RunMix(spec, exp.Quick, *seed)
	if r1.Err != nil {
		fail("mix run: %v", r1.Err)
	}
	r2 := exp.RunMix(spec, exp.Quick, *seed)
	if r2.Err != nil {
		fail("mix rerun: %v", r2.Err)
	}
	if r1.Cycles != r2.Cycles || !reflect.DeepEqual(r1.PerCore, r2.PerCore) {
		fail("nondeterministic mix: %d/%d cycles", r1.Cycles, r2.Cycles)
	}
	fmt.Printf("deterministic: both runs took %d cycles with identical per-core stats\n\n", r1.Cycles)

	// 3. Single-core baselines give the contention picture.
	baseline, err := exp.Baselines(context.Background(), exp.Spec{Kind: kind, Levels: 3}, benchmarks, exp.Quick, *seed)
	if err != nil {
		fail("%v", err)
	}
	fmt.Println(exp.MixTable(r1, baseline))
	ws, err := exp.WeightedSpeedup(r1.PerCore, baseline)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("aggregate throughput: %.3f IPC\n", r1.Throughput)
	fmt.Printf("weighted speedup:     %.3f of %d ideal — the gap is LLC + memory-channel contention\n\n", ws, *cores)

	// 4. The same mix as one declarative lnuca-run-v1 Request through
	// the public Runner API: the first run simulates (mix + baselines,
	// each baseline memoized under its own single-core content key);
	// the identical rerun is served from the content-addressed cache
	// without touching the simulator. Submitting this Request to a
	// lnucad service instead (lightnuca.NewClient) yields the very same
	// key, so the two share results.
	runner := &lightnuca.Local{}
	req := lightnuca.Request{Hierarchy: *hier, Cores: *cores, Mix: *mix, Mode: "quick", Seed: *seed}
	res1, err := runner.Run(context.Background(), req)
	if err != nil {
		fail("runner: %v", err)
	}
	fmt.Printf("runner result: weighted speedup %.3f, throughput %.3f IPC (key %.12s...)\n",
		res1.WeightedSpeedup, res1.ThroughputIPC, res1.Key)

	res2, err := runner.Run(context.Background(), req)
	if err != nil {
		fail("rerun: %v", err)
	}
	if !res2.Cached {
		fail("resubmission was not served from the cache")
	}
	hits, _ := runner.CacheStats()
	fmt.Printf("identical resubmission: served from cache (no new simulation; %d cache hits)\n", hits)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cmp_mix: "+format+"\n", args...)
	os.Exit(1)
}
