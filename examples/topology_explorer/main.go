// topology_explorer walks the L-NUCA structures of Figures 2 and 3:
// latency grids for growing fabrics, the three specialized networks, and
// the single-cycle tile timing budget.
package main

import (
	"fmt"
	"log"

	lightnuca "repro"
	"repro/internal/lnuca"
)

func main() {
	for levels := 2; levels <= 4; levels++ {
		topo, err := lightnuca.Topology(levels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(topo)
		fmt.Println()
	}

	g := lnuca.MustGeometry(3)
	fmt.Println("Graphviz output for the three networks of Fig. 2 (pipe into `dot -Tsvg`):")
	for _, name := range []string{"search", "transport", "replacement"} {
		n, _ := lnuca.NetworkByName(name)
		dot := g.RenderDOT(n)
		fmt.Printf("--- %s network: %d bytes of DOT (first line: %.40s...)\n",
			name, len(dot), dot)
	}

	fmt.Println()
	fmt.Println(lightnuca.TileTimingReport())
}
