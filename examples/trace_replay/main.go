// Example trace_replay walks the trace capture & replay subsystem end
// to end:
//
//  1. record one benchmark's run — a normal measurement that also
//     captures the core's dynamic op stream as a lnuca-trace-v1 trace;
//  2. replay the trace on the recording hierarchy and verify the
//     statistics are bit-identical to the live run (the subsystem's
//     determinism contract);
//  3. sweep the same trace across all four Fig. 1 hierarchies through
//     the public Local runner — one recorded workload, four
//     organizations, directly comparable because every run consumed the
//     identical instruction stream;
//  4. round-trip the trace through its binary encoding (what a .lntrace
//     file or a POST /v1/traces upload carries) and show the decoded
//     copy replays to the same result, then rerun one cell to show
//     trace runs memoize in the content-addressed result cache.
//
// Run it with:
//
//	go run ./examples/trace_replay [-bench 400.perlbench] [-seed 1]
//
// The example exits non-zero if replay determinism is violated.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"reflect"

	lightnuca "repro"
)

func main() {
	bench := flag.String("bench", "400.perlbench", "catalog benchmark to record")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()
	ctx := context.Background()

	// 1. Record: a live run on LN3 that captures its op stream.
	recReq := lightnuca.Request{
		Hierarchy: "ln+l3",
		Levels:    3,
		Benchmark: *bench,
		Mode:      "quick",
		Seed:      *seed,
	}
	live, tr, err := lightnuca.Record(ctx, recReq)
	if err != nil {
		fail("record: %v", err)
	}
	fmt.Printf("recorded %s on %s: IPC %.3f over %d cycles\n", *bench, live.Config, live.IPC, live.Cycles)
	fmt.Printf("trace id %s: %d ops (windows %d+%d, seed %d)\n\n",
		tr.ID()[:16], tr.Header.Ops, tr.Header.Warmup, tr.Header.Measure, tr.Header.Seed)

	// 2. Replay on the recording hierarchy: bit-identical or bust.
	runner := &lightnuca.Local{}
	id, err := runner.ImportTrace(tr)
	if err != nil {
		fail("import: %v", err)
	}
	replay, err := runner.Run(ctx, lightnuca.Request{Hierarchy: "ln+l3", Levels: 3, Trace: id})
	if err != nil {
		fail("replay: %v", err)
	}
	switch {
	case replay.IPC != live.IPC || replay.Cycles != live.Cycles:
		fail("determinism violated: IPC %v vs %v, cycles %d vs %d", replay.IPC, live.IPC, replay.Cycles, live.Cycles)
	case replay.Stats.String() != live.Stats.String():
		fail("determinism violated: statistics diverged")
	case !reflect.DeepEqual(replay.LoadLatency, live.LoadLatency):
		fail("determinism violated: load-latency histograms diverged")
	}
	fmt.Println("replay on the recording hierarchy is bit-identical to the live run ✓")

	// 3. Sweep the one recorded stream across every hierarchy.
	fmt.Printf("\nreplaying trace %s against all four hierarchies:\n", tr.ID()[:16])
	fmt.Printf("%-14s %-12s %8s %10s %12s\n", "hierarchy", "config", "IPC", "cycles", "mean ld lat")
	for _, h := range []lightnuca.Request{
		{Hierarchy: "conventional", Trace: id},
		{Hierarchy: "ln+l3", Levels: 3, Trace: id},
		{Hierarchy: "dn-4x8", Trace: id},
		{Hierarchy: "ln+dn-4x8", Levels: 3, Trace: id},
	} {
		res, err := runner.Run(ctx, h)
		if err != nil {
			fail("replay on %s: %v", h.Hierarchy, err)
		}
		lat := 0.0
		if res.LoadLatency != nil {
			lat = res.LoadLatency.Mean()
		}
		fmt.Printf("%-14s %-12s %8.3f %10d %12.1f\n", h.Hierarchy, res.Config, res.IPC, res.Cycles, lat)
	}

	// 4. The binary round trip (what a .lntrace file or an upload
	// carries) preserves the replay, and trace runs memoize.
	data, err := tr.Encode()
	if err != nil {
		fail("encode: %v", err)
	}
	decoded, err := lightnuca.DecodeTrace(data)
	if err != nil {
		fail("decode: %v", err)
	}
	runner2 := &lightnuca.Local{}
	id2, err := runner2.ImportTrace(decoded)
	if err != nil {
		fail("import decoded: %v", err)
	}
	if id2 != id {
		fail("codec round trip changed the content hash: %s vs %s", id2, id)
	}
	fromDisk, err := runner2.Run(ctx, lightnuca.Request{Hierarchy: "ln+l3", Levels: 3, Trace: id2})
	if err != nil {
		fail("replay decoded: %v", err)
	}
	if fromDisk.IPC != live.IPC || fromDisk.Cycles != live.Cycles {
		fail("decoded trace replays differently")
	}
	rerun, err := runner2.Run(ctx, lightnuca.Request{Hierarchy: "ln+l3", Levels: 3, Trace: id2})
	if err != nil {
		fail("rerun: %v", err)
	}
	if !rerun.Cached {
		fail("trace rerun was not served from the result cache")
	}
	fmt.Printf("\n%d-byte encoded trace round-trips (id %s…) and replays identically;\n", len(data), id2[:16])
	fmt.Println("rerunning the same trace job is a content-addressed cache hit ✓")
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "trace_replay: "+format+"\n", args...)
	os.Exit(1)
}
