// Package nocpower is the event-based router/link energy and area model
// standing in for Orion (paper Section IV). Network energy is counted as
// events (buffer writes/reads, crossbar traversals, link traversals) times
// per-event costs, which is exactly how the paper uses Orion.
package nocpower

// Per-bit energy coefficients at 32 nm (pJ/bit). Values are in the range
// published for Orion-class models at this node; the network term is a
// small additive contribution to total energy in every paper figure, so
// relative fidelity is what matters.
const (
	BufferWritePJPerBit = 0.0045
	BufferReadPJPerBit  = 0.0035
	CrossbarPJPerBit    = 0.0060
	LinkPJPerBitPerMM   = 0.0200
	// ArbiterPJPerEvent covers switch-allocation logic per traversal.
	ArbiterPJPerEvent = 0.08
)

// Area coefficients.
const (
	// BufferAreaUM2PerBit is flip-flop register area per stored bit,
	// including the surrounding control (standard-cell DFFs at 32 nm).
	BufferAreaUM2PerBit = 4.2
	// CrossbarAreaUM2PerCrosspointBit is matrix crossbar area per
	// crosspoint per bit, including drivers.
	CrossbarAreaUM2PerCrosspointBit = 1.4
	// LinkAreaUM2PerBitPerMM accounts for repeaters; wires themselves
	// ride above the arrays on upper metal (the on-chip wire density
	// argument of Section III.A).
	LinkAreaUM2PerBitPerMM = 0.18
)

// LinkSpec describes one unidirectional link for energy purposes.
type LinkSpec struct {
	Bits     int
	LengthMM float64
}

// TraversalPJ returns the energy of moving one message across the link:
// upstream buffer read, wire traversal, downstream buffer write, and the
// arbiter.
func (l LinkSpec) TraversalPJ() float64 {
	b := float64(l.Bits)
	return b*(BufferReadPJPerBit+BufferWritePJPerBit) +
		b*LinkPJPerBitPerMM*l.LengthMM +
		ArbiterPJPerEvent
}

// CrossbarPJ returns the energy of one message through a crossbar of the
// given width.
func CrossbarPJ(bits int) float64 {
	return float64(bits) * CrossbarPJPerBit
}

// RouterSpec describes one router/tile-switch for area purposes.
type RouterSpec struct {
	// InLinks and OutLinks count unidirectional connections.
	InLinks, OutLinks int
	// BufferEntries is the total number of message buffer slots.
	BufferEntries int
	// Bits is the message width.
	Bits int
	// CrossbarIn and CrossbarOut size the switch.
	CrossbarIn, CrossbarOut int
	// AvgLinkMM is the per-link repeater span charged to this router.
	AvgLinkMM float64
}

// AreaMM2 returns the router's silicon area.
func (r RouterSpec) AreaMM2() float64 {
	buf := float64(r.BufferEntries*r.Bits) * BufferAreaUM2PerBit
	xbar := float64(r.CrossbarIn*r.CrossbarOut*r.Bits) * CrossbarAreaUM2PerCrosspointBit
	links := float64((r.InLinks+r.OutLinks)*r.Bits) * LinkAreaUM2PerBitPerMM * r.AvgLinkMM
	return (buf + xbar + links) * 1e-6
}

// LeakageMW returns the router's static power, dominated by its buffers.
func (r RouterSpec) LeakageMW() float64 {
	// Register leakage ~ 0.9 uW per stored byte at 32 nm HP.
	return 0.0009 * float64(r.BufferEntries*r.Bits) / 8
}

// Tally accumulates network events and converts them to energy.
type Tally struct {
	BufferWrites, BufferReads uint64
	LinkTraversals            uint64
	CrossbarTraversals        uint64

	// Per-event sizes for the conversion.
	Bits   int
	LinkMM float64
}

// NewTally creates an event tally for messages of the given width crossing
// links of the given length.
func NewTally(bits int, linkMM float64) *Tally {
	return &Tally{Bits: bits, LinkMM: linkMM}
}

// AddHop records one message moving one hop (buffer read, crossbar, link,
// buffer write).
func (t *Tally) AddHop() {
	t.BufferReads++
	t.CrossbarTraversals++
	t.LinkTraversals++
	t.BufferWrites++
}

// AddHops records n hops at once.
func (t *Tally) AddHops(n uint64) {
	t.BufferReads += n
	t.CrossbarTraversals += n
	t.LinkTraversals += n
	t.BufferWrites += n
}

// EnergyPJ converts the tally to picojoules.
func (t *Tally) EnergyPJ() float64 {
	b := float64(t.Bits)
	return float64(t.BufferWrites)*b*BufferWritePJPerBit +
		float64(t.BufferReads)*b*BufferReadPJPerBit +
		float64(t.CrossbarTraversals)*(b*CrossbarPJPerBit+ArbiterPJPerEvent) +
		float64(t.LinkTraversals)*b*LinkPJPerBitPerMM*t.LinkMM
}

// Merge adds other's events into t.
func (t *Tally) Merge(other *Tally) {
	t.BufferWrites += other.BufferWrites
	t.BufferReads += other.BufferReads
	t.LinkTraversals += other.LinkTraversals
	t.CrossbarTraversals += other.CrossbarTraversals
}
