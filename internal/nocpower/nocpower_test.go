package nocpower

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinkTraversalEnergy(t *testing.T) {
	// A 32B transport message over a short inter-tile link should cost a
	// small fraction of a tile read (14 pJ): the paper's premise that
	// inter-tile migration is cheap.
	l := LinkSpec{Bits: 32*8 + 40, LengthMM: 0.25}
	e := l.TraversalPJ()
	if e <= 0 || e > 14 {
		t.Fatalf("transport hop = %.2f pJ, want (0, 14)", e)
	}
}

func TestLinkEnergyScalesWithWidthAndLength(t *testing.T) {
	narrow := LinkSpec{Bits: 64, LengthMM: 0.25}
	wide := LinkSpec{Bits: 256, LengthMM: 0.25}
	long := LinkSpec{Bits: 64, LengthMM: 2.0}
	if wide.TraversalPJ() <= narrow.TraversalPJ() {
		t.Error("wider link must cost more")
	}
	if long.TraversalPJ() <= narrow.TraversalPJ() {
		t.Error("longer link must cost more")
	}
}

func TestCrossbarEnergy(t *testing.T) {
	if CrossbarPJ(256) <= CrossbarPJ(64) {
		t.Error("crossbar energy must scale with width")
	}
	if CrossbarPJ(0) != 0 {
		t.Error("zero-width crossbar should cost nothing")
	}
}

func TestRouterAreaComposition(t *testing.T) {
	// An L-NUCA tile switch: ~6 buffer entries, 3x2 crossbar, short links.
	r := RouterSpec{
		InLinks: 4, OutLinks: 4,
		BufferEntries: 6,
		Bits:          296,
		CrossbarIn:    3, CrossbarOut: 2,
		AvgLinkMM: 0.25,
	}
	a := r.AreaMM2()
	if a <= 0 {
		t.Fatal("router area must be positive")
	}
	// Must be well below an 8KB tile array (~0.04 mm^2): network overhead
	// is 14-19% of the total in Table II.
	if a > 0.04 {
		t.Fatalf("router area = %.4f mm^2, implausibly large", a)
	}
	bigger := r
	bigger.BufferEntries = 12
	if bigger.AreaMM2() <= a {
		t.Error("more buffering must cost area")
	}
}

func TestRouterLeakagePositiveAndSmall(t *testing.T) {
	r := RouterSpec{BufferEntries: 6, Bits: 296}
	l := r.LeakageMW()
	if l <= 0 || l > 2.2 {
		t.Fatalf("router leakage = %.3f mW, want (0, 2.2) — below a tile array", l)
	}
}

func TestTallyEnergyMatchesManualSum(t *testing.T) {
	tl := NewTally(256, 0.5)
	tl.AddHop()
	tl.AddHop()
	want := 2 * (256*(BufferWritePJPerBit+BufferReadPJPerBit) +
		256*CrossbarPJPerBit + ArbiterPJPerEvent +
		256*LinkPJPerBitPerMM*0.5)
	if math.Abs(tl.EnergyPJ()-want) > 1e-9 {
		t.Fatalf("EnergyPJ = %v, want %v", tl.EnergyPJ(), want)
	}
}

func TestTallyAddHopsEquivalence(t *testing.T) {
	f := func(n uint8) bool {
		a := NewTally(128, 0.3)
		b := NewTally(128, 0.3)
		for i := 0; i < int(n); i++ {
			a.AddHop()
		}
		b.AddHops(uint64(n))
		return math.Abs(a.EnergyPJ()-b.EnergyPJ()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTallyMerge(t *testing.T) {
	a := NewTally(128, 0.3)
	b := NewTally(128, 0.3)
	a.AddHops(3)
	b.AddHops(4)
	a.Merge(b)
	c := NewTally(128, 0.3)
	c.AddHops(7)
	if math.Abs(a.EnergyPJ()-c.EnergyPJ()) > 1e-9 {
		t.Fatal("Merge must be additive")
	}
}
