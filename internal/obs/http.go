package obs

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// RequestSecondsBuckets are the latency buckets of the HTTP middleware
// histogram: sub-millisecond cache hits through multi-second
// simulations submitted synchronously.
var RequestSecondsBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// statusWriter captures the response status code and byte count.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// Flush forwards to the underlying writer when it supports streaming.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware wraps next with access logging and per-request metrics:
// every request gets a process-unique request_id (also echoed in the
// X-Request-Id response header), a structured access-log line with
// method/route/status/latency, and increments on
// lnuca_http_requests_total{method,route,code} plus an observation on
// lnuca_http_request_seconds{method,route}.
//
// route maps a request onto a bounded label value (e.g. collapsing
// /v1/jobs/<id> to /v1/jobs/{id}) so job IDs never explode the metric
// cardinality; nil uses the raw URL path.
func Middleware(next http.Handler, log *slog.Logger, reg *Registry, route func(*http.Request) string) http.Handler {
	if log == nil {
		log = Discard()
	}
	var requests *CounterVec
	var seconds *HistogramVec
	if reg != nil {
		requests = reg.CounterVec("lnuca_http_requests_total",
			"HTTP requests served, by method, normalized route and status code.",
			"method", "route", "code")
		seconds = reg.HistogramVec("lnuca_http_request_seconds",
			"HTTP request latency in seconds, by method and normalized route.",
			RequestSecondsBuckets, "method", "route")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := nextRequestID()
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		label := r.URL.Path
		if route != nil {
			label = route(r)
		}
		if requests != nil {
			requests.With(r.Method, label, strconv.Itoa(sw.status)).Inc()
			seconds.With(r.Method, label).Observe(elapsed.Seconds())
		}
		log.Info("http request",
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"route", label,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration_ms", float64(elapsed.Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}
