// Package tracez is the repository's dependency-free distributed
// tracing model: spans with trace/span/parent identity, wall-clock
// bounds, bounded attributes and an error status, propagated across
// process hops with a W3C-traceparent-style header. It exists so a
// fleet-executed job reads as ONE story — client submit, coordinator
// queue and dispatch, worker lease/fetch/build/warmup/measure — instead
// of three process-local logs stitched by eyeball.
//
// Design constraints, in order:
//
//   - Zero cost when off. Every entry point is nil-safe: a nil *Tracer,
//     a nil *Span and a context without a tracer all no-op, so
//     instrumentation sites are unconditional and never branch on
//     configuration.
//   - Out of the kernel. Spans bound phases (build/warmup/measure) from
//     the outside using exp.Phases durations after the fact; nothing in
//     this package is ever called from the simulator hot loop, and
//     nothing here lands in content-addressed cache payloads.
//   - Dependency-free. Standard library only; the package does not even
//     import the repo's own obs registry — metrics wrapping is the
//     caller's recorder decision.
//
// Span names are compile-time string literals in the `lnuca.` dotted
// namespace (lnuca.orch.run, lnuca.worker.execute, ...), enforced by
// lnucalint's obsnames analyzer exactly like metric names, and attr
// keys follow the same low-cardinality denylist. That is what keeps
// the lnuca_spans_recorded_total{name} metric bounded.
package tracez

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// HeaderName is the propagation header carried on every traced HTTP
// request, client → coordinator and coordinator → worker (the latter
// rides the lease response body rather than a header, since workers
// pull). The value is W3C-traceparent-STYLE:
//
//	00-<32 hex trace id>-<16 hex span id>-01
//
// with one deliberate divergence: an all-zero span id is legal and
// means "trace identity only, no parent span". A client that wants
// correlation without running a tracer can mint just a trace id; the
// server then roots the trace itself instead of parenting under a span
// that will never arrive (which is how orphan parents are avoided by
// construction).
const HeaderName = "traceparent"

const (
	traceIDHexLen = 32
	spanIDHexLen  = 16
	zeroSpanID    = "0000000000000000"
	zeroTraceID   = "00000000000000000000000000000000"
)

// SpanContext is the propagated identity: which trace, and which span
// (if any) new work should parent under.
type SpanContext struct {
	TraceID string // 32 lowercase hex chars
	SpanID  string // 16 lowercase hex chars; "" or all-zero = no parent
}

// Valid reports whether the context carries a usable trace identity.
func (sc SpanContext) Valid() bool {
	return isHex(sc.TraceID, traceIDHexLen) && sc.TraceID != zeroTraceID
}

// HasParent reports whether the context names a parent span (and not
// just a bare trace identity).
func (sc SpanContext) HasParent() bool {
	return sc.Valid() && isHex(sc.SpanID, spanIDHexLen) && sc.SpanID != zeroSpanID
}

// Header renders the traceparent value, or "" for an invalid context.
func (sc SpanContext) Header() string {
	if !sc.Valid() {
		return ""
	}
	span := sc.SpanID
	if !isHex(span, spanIDHexLen) {
		span = zeroSpanID
	}
	return "00-" + sc.TraceID + "-" + span + "-01"
}

// ParseHeader decodes a traceparent value. It accepts any version byte
// (per W3C forward-compatibility) but requires our field shape.
func ParseHeader(s string) (SpanContext, bool) {
	// "vv-" + 32 + "-" + 16 + "-" + "ff"
	if len(s) != 2+1+traceIDHexLen+1+spanIDHexLen+1+2 {
		return SpanContext{}, false
	}
	if s[2] != '-' || s[2+1+traceIDHexLen] != '-' || s[len(s)-3] != '-' {
		return SpanContext{}, false
	}
	if !isHex(s[:2], 2) || !isHex(s[len(s)-2:], 2) {
		return SpanContext{}, false
	}
	sc := SpanContext{
		TraceID: s[3 : 3+traceIDHexLen],
		SpanID:  s[4+traceIDHexLen : 4+traceIDHexLen+spanIDHexLen],
	}
	if !sc.Valid() || !isHex(sc.SpanID, spanIDHexLen) {
		return SpanContext{}, false
	}
	return sc, true
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < n; i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Attr is one span attribute. Keys are compile-time literals vetted by
// lnucalint (snake_case, not on the high-cardinality denylist); values
// should come from bounded sets (benchmark names, worker names, status
// words) — never raw job IDs, keys or URLs.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation. Exported fields are the wire/JSONL
// shape; a Span is built through a Tracer and finished exactly once
// with Finish/FinishAt, after which it is an inert value safe to copy,
// marshal and ship. Spans are not goroutine-safe: one span belongs to
// one goroutine until finished.
type Span struct {
	TraceID string    `json:"trace_id"`
	SpanID  string    `json:"span_id"`
	Parent  string    `json:"parent_id,omitempty"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	Attrs   []Attr    `json:"attrs,omitempty"`
	// Status is "" for ok, "error" for failed operations.
	Status string `json:"status,omitempty"`
	// Note carries the error message when Status is "error".
	Note string `json:"note,omitempty"`

	tracer   *spanSink
	finished bool
}

// spanSink pairs the recorder a finished span reports to with nothing
// else; it exists so Span stays marshal-clean (one unexported pointer,
// no locks).
type spanSink struct{ rec Recorder }

// Context returns the span's propagation identity, for parenting
// children or rendering a header. Safe on nil (zero context).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.TraceID, SpanID: s.SpanID}
}

// SetAttr attaches one attribute. The key must be a compile-time
// literal (enforced by lnucalint). No-op on nil or finished spans.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.finished {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetError marks the span failed. No-op on nil spans or nil errors.
func (s *Span) SetError(err error) {
	if s == nil || err == nil || s.finished {
		return
	}
	s.Status = "error"
	s.Note = err.Error()
}

// Finish ends the span now and hands it to the tracer's recorder.
// Safe on nil; finishing twice records once.
func (s *Span) Finish() {
	//lnuca:allow(determinism) span end timestamp; telemetry only, never in result content or keys
	s.FinishAt(time.Now())
}

// FinishAt ends the span at an explicit instant — used when span
// boundaries are reconstructed from measured phase durations rather
// than observed live.
func (s *Span) FinishAt(t time.Time) {
	if s == nil || s.finished {
		return
	}
	s.finished = true
	s.End = t
	if s.tracer != nil && s.tracer.rec != nil {
		s.tracer.rec.Record(*s)
	}
}

// Recorder receives finished spans. Implementations must be
// goroutine-safe; Record must never call back into a Tracer (recorders
// are leaf components).
type Recorder interface {
	Record(Span)
}

// Tracer mints span identities and parents spans off the ambient
// context. A nil *Tracer is a valid, inert tracer.
type Tracer struct {
	sink *spanSink

	mu  sync.Mutex
	rng *rand.Rand
}

// New returns a Tracer recording finished spans to rec, with IDs drawn
// from a crypto-seeded PRNG.
func New(rec Recorder) *Tracer {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// Fall back to the wall clock; uniqueness, not secrecy, is the bar.
		//lnuca:allow(determinism) tracer ID seed fallback; telemetry only, never in result content or keys
		binary.LittleEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	}
	return NewSeeded(rec, int64(binary.LittleEndian.Uint64(b[:])))
}

// NewSeeded returns a Tracer with a deterministic ID stream — for tests
// that assert on stable span identities.
func NewSeeded(rec Recorder, seed int64) *Tracer {
	return &Tracer{sink: &spanSink{rec: rec}, rng: rand.New(rand.NewSource(seed))}
}

// Recorder returns the tracer's recorder (nil for a nil tracer), so
// span ingestion endpoints can land remote spans in the same sink local
// spans use.
func (t *Tracer) Recorder() Recorder {
	if t == nil || t.sink == nil {
		return nil
	}
	return t.sink.rec
}

func (t *Tracer) newID(nbytes int) string {
	b := make([]byte, nbytes)
	t.mu.Lock()
	for i := range b {
		b[i] = byte(t.rng.Intn(256))
	}
	t.mu.Unlock()
	s := hex.EncodeToString(b)
	// An all-zero ID is reserved; the chance is negligible but the
	// contract ("zero means absent") must hold unconditionally.
	for _, c := range s {
		if c != '0' {
			return s
		}
	}
	b[0] = 1
	return hex.EncodeToString(b)
}

// Start opens a span named name, parented under ctx's span context when
// one is present (or adopting just its trace ID when the context is
// parentless), and returns the span plus a derived context carrying the
// new span's identity and this tracer. On a nil tracer it returns
// (nil, ctx) — the nil span absorbs all use.
func (t *Tracer) Start(ctx context.Context, name string) (*Span, context.Context) {
	//lnuca:allow(determinism) span start timestamp; telemetry only, never in result content or keys
	return t.StartAt(ctx, name, time.Now())
}

// StartAt is Start with an explicit start instant, for spans whose
// beginning was observed before the tracer got involved (lease idle
// waits, reconstructed phases).
func (t *Tracer) StartAt(ctx context.Context, name string, at time.Time) (*Span, context.Context) {
	if t == nil {
		return nil, ctx
	}
	parent := FromContext(ctx)
	s := &Span{
		Name:   name,
		Start:  at,
		tracer: t.sink,
		SpanID: t.newID(spanIDHexLen / 2),
	}
	if parent.Valid() {
		s.TraceID = parent.TraceID
		if parent.HasParent() {
			s.Parent = parent.SpanID
		}
	} else {
		s.TraceID = t.newID(traceIDHexLen / 2)
	}
	ctx = WithTracer(ctx, t)
	ctx = WithSpanContext(ctx, s.Context())
	return s, ctx
}

type tracerKey struct{}
type spanCtxKey struct{}

// WithTracer attaches a tracer to ctx so downstream code can open spans
// without holding a Tracer reference. Attaching nil is a no-op.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns ctx's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// WithSpanContext attaches a propagated span context. Attaching an
// invalid context is a no-op.
func WithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// FromContext returns ctx's span context (zero when absent).
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}

// TraceIDFrom returns ctx's trace ID, or "".
func TraceIDFrom(ctx context.Context) string {
	if sc := FromContext(ctx); sc.Valid() {
		return sc.TraceID
	}
	return ""
}

// StartSpan opens a span through ctx's ambient tracer; with no tracer
// in ctx it returns (nil, ctx) and the nil span absorbs all use. This
// is the instrumentation entry point for code that is handed only a
// context (RunFuncs, coordinator dispatch).
func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	return TracerFrom(ctx).Start(ctx, name)
}

// StartSpanAt is StartSpan with an explicit start instant.
func StartSpanAt(ctx context.Context, name string, at time.Time) (*Span, context.Context) {
	return TracerFrom(ctx).StartAt(ctx, name, at)
}

// Inject renders ctx's span context as a traceparent value ("" when
// there is nothing to propagate).
func Inject(ctx context.Context) string {
	return FromContext(ctx).Header()
}

// Extract parses a traceparent value into ctx. Malformed or empty
// headers leave ctx unchanged — propagation is best-effort by design.
func Extract(ctx context.Context, header string) context.Context {
	if sc, ok := ParseHeader(header); ok {
		return WithSpanContext(ctx, sc)
	}
	return ctx
}

// ValidSpan reports whether a remotely ingested span carries a
// well-formed identity and a plausible name; ingestion endpoints use it
// to refuse garbage before it lands in the flight recorder.
func ValidSpan(s Span) error {
	if !isHex(s.TraceID, traceIDHexLen) || s.TraceID == zeroTraceID {
		return fmt.Errorf("tracez: bad trace id %q", s.TraceID)
	}
	if !isHex(s.SpanID, spanIDHexLen) || s.SpanID == zeroSpanID {
		return fmt.Errorf("tracez: bad span id %q", s.SpanID)
	}
	if s.Parent != "" && (!isHex(s.Parent, spanIDHexLen) || s.Parent == zeroSpanID) {
		return fmt.Errorf("tracez: bad parent id %q", s.Parent)
	}
	if s.Name == "" || len(s.Name) > 128 {
		return fmt.Errorf("tracez: bad span name %q", s.Name)
	}
	if len(s.Attrs) > 32 {
		return fmt.Errorf("tracez: too many attrs (%d)", len(s.Attrs))
	}
	return nil
}
