package tracez

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHeaderRoundTrip(t *testing.T) {
	tr := NewSeeded(nil, 1)
	s, ctx := tr.Start(context.Background(), "lnuca.test.root")
	h := Inject(ctx)
	if h == "" {
		t.Fatal("no header for live span context")
	}
	sc, ok := ParseHeader(h)
	if !ok {
		t.Fatalf("ParseHeader(%q) failed", h)
	}
	if sc.TraceID != s.TraceID || sc.SpanID != s.SpanID {
		t.Fatalf("round trip mismatch: %+v vs span %s/%s", sc, s.TraceID, s.SpanID)
	}
	if !sc.HasParent() {
		t.Fatal("live span context should carry a parent span id")
	}
}

func TestHeaderZeroSpanIDMeansNoParent(t *testing.T) {
	sc := SpanContext{TraceID: strings.Repeat("ab", 16)}
	h := sc.Header()
	if h == "" {
		t.Fatal("trace-only context must still render a header")
	}
	got, ok := ParseHeader(h)
	if !ok {
		t.Fatalf("ParseHeader(%q) failed", h)
	}
	if !got.Valid() || got.HasParent() {
		t.Fatalf("zero span id must mean valid-but-parentless, got %+v", got)
	}
	// A span started under a parentless context adopts the trace ID but
	// records no parent — this is how orphans are avoided by design.
	tr := NewSeeded(nil, 2)
	s, _ := tr.Start(WithSpanContext(context.Background(), got), "lnuca.test.child")
	if s.TraceID != sc.TraceID {
		t.Fatalf("trace id not adopted: %s", s.TraceID)
	}
	if s.Parent != "" {
		t.Fatalf("parent must be empty, got %q", s.Parent)
	}
}

func TestParseHeaderRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"00-zz-00-01",
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("a", 16) + "-01", // zero trace id
		"00-" + strings.Repeat("a", 31) + "-" + strings.Repeat("a", 16) + "-01",
		"00_" + strings.Repeat("a", 32) + "-" + strings.Repeat("a", 16) + "-01",
		"00-" + strings.Repeat("A", 32) + "-" + strings.Repeat("a", 16) + "-01", // uppercase
	}
	for _, s := range bad {
		if _, ok := ParseHeader(s); ok {
			t.Errorf("ParseHeader(%q) accepted garbage", s)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s, ctx := tr.Start(context.Background(), "lnuca.test.noop")
	if s != nil {
		t.Fatal("nil tracer must return nil span")
	}
	s.SetAttr("status", "ok")
	s.SetError(errors.New("boom"))
	s.Finish()
	if Inject(ctx) != "" {
		t.Fatal("nil tracer must not inject a context")
	}
	s2, _ := StartSpan(ctx, "lnuca.test.noop")
	if s2 != nil {
		t.Fatal("StartSpan without ambient tracer must be a no-op")
	}
	var fr *FlightRecorder
	fr.Record(Span{})
	fr.Event("fault", "", "")
	if fr.Spans("x") != nil || fr.Events("") != nil {
		t.Fatal("nil flight recorder must answer empty")
	}
}

func TestParentage(t *testing.T) {
	var col Collector
	tr := NewSeeded(&col, 3)
	root, ctx := tr.Start(context.Background(), "lnuca.test.root")
	child, cctx := StartSpan(ctx, "lnuca.test.child")
	grand, _ := StartSpan(cctx, "lnuca.test.grandchild")
	grand.Finish()
	child.Finish()
	root.SetError(errors.New("boom"))
	root.Finish()
	spans := col.Drain()
	if len(spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.TraceID != root.TraceID {
			t.Errorf("span %s escaped the trace: %s", s.Name, s.TraceID)
		}
		if err := ValidSpan(s); err != nil {
			t.Errorf("ValidSpan(%s): %v", s.Name, err)
		}
	}
	if byName["lnuca.test.child"].Parent != root.SpanID {
		t.Error("child not parented under root")
	}
	if byName["lnuca.test.grandchild"].Parent != byName["lnuca.test.child"].SpanID {
		t.Error("grandchild not parented under child")
	}
	if byName["lnuca.test.root"].Status != "error" || byName["lnuca.test.root"].Note != "boom" {
		t.Errorf("root status not recorded: %+v", byName["lnuca.test.root"])
	}
	if col.Drain() != nil {
		t.Error("Drain must clear the collector")
	}
}

func TestDoubleFinishRecordsOnce(t *testing.T) {
	var col Collector
	tr := NewSeeded(&col, 4)
	s, _ := tr.Start(context.Background(), "lnuca.test.once")
	s.Finish()
	s.Finish()
	if n := len(col.Drain()); n != 1 {
		t.Fatalf("double Finish recorded %d spans", n)
	}
}

func TestFlightRecorderBounds(t *testing.T) {
	fr := NewFlightRecorder(2, 3, 4)
	tr := NewSeeded(fr, 5)
	mk := func(n int) string {
		s, ctx := tr.Start(context.Background(), "lnuca.test.root")
		for i := 0; i < n-1; i++ {
			c, _ := StartSpan(ctx, "lnuca.test.child")
			c.Finish()
		}
		s.Finish()
		return s.TraceID
	}
	t1 := mk(5) // 5 spans: 2 dropped past the per-trace cap
	if got := len(fr.Spans(t1)); got != 3 {
		t.Fatalf("per-trace cap: want 3 retained, got %d", got)
	}
	if fr.DroppedSpans() != 2 {
		t.Fatalf("want 2 dropped spans, got %v", fr.DroppedSpans())
	}
	t2 := mk(1)
	t3 := mk(1) // evicts t1 (maxTraces=2)
	if fr.Spans(t1) != nil {
		t.Fatal("oldest trace must be evicted")
	}
	if len(fr.Spans(t2)) != 1 || len(fr.Spans(t3)) != 1 {
		t.Fatal("young traces must survive eviction")
	}
	if fr.EvictedTraces() != 1 {
		t.Fatalf("want 1 evicted trace, got %v", fr.EvictedTraces())
	}
	if fr.RetainedTraces() != 2 {
		t.Fatalf("want 2 retained traces, got %v", fr.RetainedTraces())
	}
	for i := 0; i < 6; i++ { // ring holds 4
		fr.Event("fault", t2, "cache_write")
	}
	if got := len(fr.Events(t2)); got != 4 {
		t.Fatalf("event ring: want 4, got %d", got)
	}
	if got := len(fr.Events("nope")); got != 0 {
		t.Fatalf("filtered events: want 0, got %d", got)
	}
}

func TestJSONLRecorder(t *testing.T) {
	var buf bytes.Buffer
	rec := NewJSONLRecorder(&buf)
	tr := NewSeeded(rec, 6)
	s, _ := tr.Start(context.Background(), "lnuca.test.jsonl")
	s.SetAttr("status", "ok")
	s.Finish()
	var got Span
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("span log line is not JSON: %v\n%s", err, buf.String())
	}
	if got.Name != "lnuca.test.jsonl" || got.TraceID != s.TraceID {
		t.Fatalf("bad span line: %+v", got)
	}
	if rec.Err() != nil {
		t.Fatalf("unexpected recorder error: %v", rec.Err())
	}
}

func TestTeeAndRecorderFunc(t *testing.T) {
	var a, b Collector
	var n int
	tee := Tee(&a, nil, &b, RecorderFunc(func(Span) { n++ }))
	tr := NewSeeded(tee, 7)
	s, _ := tr.Start(context.Background(), "lnuca.test.tee")
	s.Finish()
	if len(a.Drain()) != 1 || len(b.Drain()) != 1 || n != 1 {
		t.Fatal("tee must fan out to every non-nil recorder")
	}
}

func TestStartAtAndFinishAt(t *testing.T) {
	var col Collector
	tr := NewSeeded(&col, 8)
	start := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	end := start.Add(3 * time.Second)
	s, _ := tr.StartAt(context.Background(), "lnuca.run.measure", start)
	s.FinishAt(end)
	got := col.Drain()[0]
	if !got.Start.Equal(start) || !got.End.Equal(end) {
		t.Fatalf("explicit bounds not honored: %v..%v", got.Start, got.End)
	}
}

func TestValidSpanRejects(t *testing.T) {
	good := Span{TraceID: strings.Repeat("a", 32), SpanID: strings.Repeat("b", 16), Name: "lnuca.x.y"}
	if err := ValidSpan(good); err != nil {
		t.Fatalf("good span rejected: %v", err)
	}
	cases := []Span{
		{TraceID: "short", SpanID: good.SpanID, Name: "n"},
		{TraceID: good.TraceID, SpanID: "0000000000000000", Name: "n"},
		{TraceID: good.TraceID, SpanID: good.SpanID, Name: ""},
		{TraceID: good.TraceID, SpanID: good.SpanID, Name: "n", Parent: "xyz"},
	}
	for i, c := range cases {
		if err := ValidSpan(c); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestTracezHandler(t *testing.T) {
	fr := NewFlightRecorder(0, 0, 0)
	tr := NewSeeded(fr, 9)
	root, ctx := tr.Start(context.Background(), "lnuca.orch.job")
	child, _ := StartSpan(ctx, "lnuca.orch.run")
	child.Finish()
	root.Finish()
	fr.Event("lease_granted", root.TraceID, "lease-000001 worker=w1")

	h := fr.Handler()
	idx := httptest.NewRecorder()
	h.ServeHTTP(idx, httptest.NewRequest("GET", "/debug/tracez", nil))
	if !strings.Contains(idx.Body.String(), root.TraceID) {
		t.Fatal("index must list the trace")
	}
	det := httptest.NewRecorder()
	h.ServeHTTP(det, httptest.NewRequest("GET", "/debug/tracez?trace="+root.TraceID, nil))
	body := det.Body.String()
	for _, want := range []string{"lnuca.orch.job", "lnuca.orch.run", "lease_granted"} {
		if !strings.Contains(body, want) {
			t.Errorf("trace page missing %q", want)
		}
	}
}
