package tracez

import (
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Handler serves the /debug/tracez HTML summary: an index of retained
// traces, and — with ?trace=<id> — one trace rendered as an indented
// span tree with durations, statuses and correlated events. It is a
// debugging surface in the /debug/pprof spirit: plain, dependency-free
// HTML meant for a human mid-incident, not an API (the JSON span
// endpoint is the API).
func (fr *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if id := r.URL.Query().Get("trace"); id != "" {
			fr.writeTraceHTML(w, id)
			return
		}
		fr.writeIndexHTML(w)
	})
}

func (fr *FlightRecorder) writeIndexHTML(w http.ResponseWriter) {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>tracez</title>")
	b.WriteString("<style>body{font-family:monospace}table{border-collapse:collapse}td,th{border:1px solid #ccc;padding:2px 8px;text-align:left}</style>")
	b.WriteString("</head><body><h1>tracez — recent traces</h1>")
	sums := fr.Traces()
	fmt.Fprintf(&b, "<p>%d traces retained · %.0f spans dropped · %.0f traces evicted</p>",
		len(sums), fr.DroppedSpans(), fr.EvictedTraces())
	b.WriteString("<table><tr><th>trace</th><th>root</th><th>spans</th><th>errors</th><th>last seen</th></tr>")
	for _, ts := range sums {
		fmt.Fprintf(&b, "<tr><td><a href=\"?trace=%s\">%s</a></td><td>%s</td><td>%d</td><td>%d</td><td>%s</td></tr>",
			html.EscapeString(ts.TraceID), html.EscapeString(ts.TraceID),
			html.EscapeString(ts.Root), ts.Spans, ts.Errors,
			html.EscapeString(ts.LastSeen.Format(time.RFC3339)))
	}
	b.WriteString("</table></body></html>")
	w.Write([]byte(b.String()))
}

func (fr *FlightRecorder) writeTraceHTML(w http.ResponseWriter, traceID string) {
	spans := fr.Spans(traceID)
	events := fr.Events(traceID)
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>tracez</title>")
	b.WriteString("<style>body{font-family:monospace}.err{color:#b00}.attrs{color:#666}</style>")
	b.WriteString("</head><body>")
	fmt.Fprintf(&b, "<h1>trace %s</h1><p><a href=\"?\">&larr; all traces</a></p>", html.EscapeString(traceID))
	if len(spans) == 0 {
		b.WriteString("<p>no spans retained for this trace (unknown, or evicted from the flight recorder)</p>")
	}
	// Indent children under parents; orphans (parent not retained) list
	// at top level so nothing is hidden.
	children := make(map[string][]int)
	byID := make(map[string]bool, len(spans))
	for i := range spans {
		byID[spans[i].SpanID] = true
	}
	var roots []int
	for i := range spans {
		if spans[i].Parent != "" && byID[spans[i].Parent] {
			children[spans[i].Parent] = append(children[spans[i].Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	b.WriteString("<pre>")
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		s := &spans[idx]
		cls := ""
		if s.Status == "error" {
			cls = " class=\"err\""
		}
		dur := s.End.Sub(s.Start)
		fmt.Fprintf(&b, "%s<span%s>%-28s</span> %12s", strings.Repeat("  ", depth), cls,
			html.EscapeString(s.Name), dur.Round(time.Microsecond))
		if len(s.Attrs) > 0 {
			parts := make([]string, 0, len(s.Attrs))
			for _, a := range s.Attrs {
				parts = append(parts, a.Key+"="+a.Value)
			}
			fmt.Fprintf(&b, "  <span class=\"attrs\">%s</span>", html.EscapeString(strings.Join(parts, " ")))
		}
		if s.Note != "" {
			fmt.Fprintf(&b, "  <span class=\"err\">%s</span>", html.EscapeString(s.Note))
		}
		b.WriteString("\n")
		kids := children[s.SpanID]
		sort.Slice(kids, func(a, c int) bool { return spans[kids[a]].Start.Before(spans[kids[c]].Start) })
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	b.WriteString("</pre>")
	if len(events) > 0 {
		b.WriteString("<h2>events</h2><pre>")
		for _, e := range events {
			fmt.Fprintf(&b, "%s  %-14s %s\n", html.EscapeString(e.Time.Format(time.RFC3339Nano)),
				html.EscapeString(e.Kind), html.EscapeString(e.Detail))
		}
		b.WriteString("</pre>")
	}
	b.WriteString("</body></html>")
	w.Write([]byte(b.String()))
}
