package tracez

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one trace-correlated occurrence that is not a span: a fault
// injection firing, a lease granted/expired/requeued. Events are how
// the flight recorder answers "what ELSE happened to this trace" —
// chaos debugging reads the span tree and the event strip side by side.
type Event struct {
	Time time.Time `json:"time"`
	// Kind is a bounded word: "fault", "lease_granted", "lease_expired",
	// "lease_released", "requeued", "completed", "failed", "coalesced".
	Kind string `json:"kind"`
	// TraceID correlates the event to a trace; "" when the site had no
	// trace context (e.g. a background store probe).
	TraceID string `json:"trace_id,omitempty"`
	// Detail is free-form but short: the fault point, the lease ID and
	// worker, the attempt number.
	Detail string `json:"detail,omitempty"`
}

// FlightRecorder is the coordinator's bounded in-memory view of recent
// traces: a ring of the last maxTraces traces (each capped at
// maxSpansPerTrace spans) plus a ring of recent events. Everything is
// fixed-size; a busy fleet overwrites its own history instead of
// growing, which is exactly what a flight recorder is.
type FlightRecorder struct {
	mu       sync.Mutex
	traces   map[string]*traceBuf
	order    []string // trace IDs, oldest first, for eviction
	events   []Event  // ring
	eventPos int
	nEvents  int

	maxTraces   int
	maxPerTrace int
	maxEvents   int

	droppedSpans  uint64
	evictedTraces uint64
}

type traceBuf struct {
	spans    []Span
	lastSeen time.Time
}

// Flight-recorder defaults: sized so a 1k-point sweep's recent tail and
// a chaos run's full event strip both fit in a few MB.
const (
	DefaultMaxTraces        = 512
	DefaultMaxSpansPerTrace = 128
	DefaultMaxEvents        = 2048
)

// NewFlightRecorder builds a recorder with the given bounds; zero or
// negative values take the defaults.
func NewFlightRecorder(maxTraces, maxSpansPerTrace, maxEvents int) *FlightRecorder {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if maxSpansPerTrace <= 0 {
		maxSpansPerTrace = DefaultMaxSpansPerTrace
	}
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &FlightRecorder{
		traces:      make(map[string]*traceBuf),
		events:      make([]Event, maxEvents),
		maxTraces:   maxTraces,
		maxPerTrace: maxSpansPerTrace,
		maxEvents:   maxEvents,
	}
}

// Record lands one finished span. Spans of a brand-new trace may evict
// the oldest retained trace; spans past a trace's cap are counted and
// dropped (the trace keeps its earliest spans — roots arrive early, and
// a rooted partial tree beats a rootless complete one).
func (fr *FlightRecorder) Record(s Span) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	tb, ok := fr.traces[s.TraceID]
	if !ok {
		for len(fr.order) >= fr.maxTraces {
			oldest := fr.order[0]
			fr.order = fr.order[1:]
			delete(fr.traces, oldest)
			fr.evictedTraces++
		}
		tb = &traceBuf{}
		fr.traces[s.TraceID] = tb
		fr.order = append(fr.order, s.TraceID)
	}
	if len(tb.spans) >= fr.maxPerTrace {
		fr.droppedSpans++
		return
	}
	tb.spans = append(tb.spans, s)
	if s.End.After(tb.lastSeen) {
		tb.lastSeen = s.End
	}
}

// Event appends one correlated event to the ring.
func (fr *FlightRecorder) Event(kind, traceID, detail string) {
	if fr == nil {
		return
	}
	//lnuca:allow(determinism) event timestamp; telemetry only, never in result content or keys
	now := time.Now()
	fr.mu.Lock()
	fr.events[fr.eventPos] = Event{Time: now, Kind: kind, TraceID: traceID, Detail: detail}
	fr.eventPos = (fr.eventPos + 1) % fr.maxEvents
	if fr.nEvents < fr.maxEvents {
		fr.nEvents++
	}
	fr.mu.Unlock()
}

// Spans returns the retained spans of one trace, sorted by start time
// (nil when the trace is unknown or evicted).
func (fr *FlightRecorder) Spans(traceID string) []Span {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	tb := fr.traces[traceID]
	var out []Span
	if tb != nil {
		out = append([]Span(nil), tb.spans...)
	}
	fr.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Events returns the retained events for one trace ID, oldest first.
// An empty traceID returns every retained event.
func (fr *FlightRecorder) Events(traceID string) []Event {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]Event, 0, fr.nEvents)
	start := fr.eventPos - fr.nEvents
	for i := 0; i < fr.nEvents; i++ {
		e := fr.events[((start+i)%fr.maxEvents+fr.maxEvents)%fr.maxEvents]
		if traceID == "" || e.TraceID == traceID {
			out = append(out, e)
		}
	}
	return out
}

// TraceSummary is one row of the /debug/tracez index.
type TraceSummary struct {
	TraceID  string    `json:"trace_id"`
	Spans    int       `json:"spans"`
	Root     string    `json:"root,omitempty"` // root span name, when retained
	Errors   int       `json:"errors"`
	Start    time.Time `json:"start"`
	LastSeen time.Time `json:"last_seen"`
}

// Traces summarizes every retained trace, most recently active first.
func (fr *FlightRecorder) Traces() []TraceSummary {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	out := make([]TraceSummary, 0, len(fr.order))
	for _, id := range fr.order {
		tb := fr.traces[id]
		ts := TraceSummary{TraceID: id, Spans: len(tb.spans), LastSeen: tb.lastSeen}
		var rootStart time.Time
		for i := range tb.spans {
			s := &tb.spans[i]
			if ts.Start.IsZero() || s.Start.Before(ts.Start) {
				ts.Start = s.Start
			}
			if s.Parent == "" && (ts.Root == "" || s.Start.Before(rootStart)) {
				ts.Root = s.Name
				rootStart = s.Start
			}
			if s.Status == "error" {
				ts.Errors++
			}
		}
		out = append(out, ts)
	}
	fr.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].LastSeen.After(out[j].LastSeen) })
	return out
}

// DroppedSpans counts spans refused by a full per-trace buffer — the
// feed for lnuca_spans_dropped_total.
func (fr *FlightRecorder) DroppedSpans() float64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return float64(fr.droppedSpans)
}

// EvictedTraces counts whole traces overwritten by newer ones.
func (fr *FlightRecorder) EvictedTraces() float64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return float64(fr.evictedTraces)
}

// RetainedTraces reports the current trace count — the feed for the
// lnuca_trace_buffer_traces gauge.
func (fr *FlightRecorder) RetainedTraces() float64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return float64(len(fr.traces))
}

// Collector buffers finished spans in memory — the worker-side
// recorder. A worker collects the spans of one lease execution and
// drains them into the CompleteRequest, so spans cross the fleet
// boundary exactly once, piggybacked on a message that already exists.
type Collector struct {
	mu    sync.Mutex
	spans []Span
}

// Record appends one span.
func (c *Collector) Record(s Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

// Drain returns and clears the buffered spans.
func (c *Collector) Drain() []Span {
	c.mu.Lock()
	out := c.spans
	c.spans = nil
	c.mu.Unlock()
	return out
}

// JSONLRecorder appends one JSON object per finished span to w — the
// -span-log sink. Write errors disable the recorder (a broken span log
// must never take the service down) and are reported via Err.
type JSONLRecorder struct {
	mu   sync.Mutex
	w    io.Writer
	enc  *json.Encoder
	err  error
	dead bool
}

// NewJSONLRecorder wraps w. The caller owns closing w.
func NewJSONLRecorder(w io.Writer) *JSONLRecorder {
	return &JSONLRecorder{w: w, enc: json.NewEncoder(w)}
}

// Record writes one span as a JSON line.
func (j *JSONLRecorder) Record(s Span) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return
	}
	if err := j.enc.Encode(s); err != nil {
		j.err = err
		j.dead = true
	}
}

// Err returns the write error that disabled the recorder, if any.
func (j *JSONLRecorder) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Tee fans finished spans out to several recorders (nil entries are
// skipped) — flight recorder + span log + metrics wrapper compose here.
func Tee(recs ...Recorder) Recorder {
	kept := make([]Recorder, 0, len(recs))
	for _, r := range recs {
		if r != nil {
			kept = append(kept, r)
		}
	}
	return teeRecorder(kept)
}

type teeRecorder []Recorder

func (t teeRecorder) Record(s Span) {
	for _, r := range t {
		r.Record(s)
	}
}

// RecorderFunc adapts a function to the Recorder interface.
type RecorderFunc func(Span)

// Record calls f(s).
func (f RecorderFunc) Record(s Span) { f(s) }
