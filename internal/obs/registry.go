// Package obs is the repository's dependency-free observability layer:
// a concurrency-safe metrics registry with Prometheus text exposition,
// slog-based structured logging helpers, HTTP instrumentation
// middleware, and build-info reporting.
//
// The registry holds three instrument kinds — monotonic counters,
// set/add gauges, and histograms with declared bucket bounds — either
// as scalars or as label vectors. All instruments are lock-free on the
// update path (atomic adds and CAS loops); the registry mutex is taken
// only at registration and scrape time. That makes an instrument cheap
// enough to update from the simulator's per-job bookkeeping and the
// HTTP hot path without contention.
//
// Exposition follows the Prometheus text format, version 0.0.4: one
// HELP and one TYPE line per family, families sorted by name, label
// values escaped, histograms rendered as cumulative le-bucket series
// plus _sum and _count. WritePrometheus never emits a family name
// twice, which the format forbids and the scrape-format tests pin.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Instrument kinds, in TYPE-line spelling.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric: a kind, a HELP string, an optional label
// schema, and the set of instruments (one per distinct label-value
// tuple; scalars use the empty tuple).
type family struct {
	name    string
	help    string
	kind    string
	labels  []string  // label names, fixed at registration
	buckets []float64 // histogram upper bounds (without +Inf)

	mu       sync.Mutex
	children map[string]sample // key: label values joined with 0xff
}

// sample is anything that can render itself as exposition lines.
type sample interface {
	write(w io.Writer, fam *family, labelValues []string) error
}

// Registry is a set of metric families. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	hooks    []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnScrape registers fn to run at the start of every WritePrometheus
// call, before any family is rendered. Components use it to refresh a
// mutually-consistent snapshot that their Func instruments then read,
// so one scrape never mixes counter values from different instants.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// lookup returns the family for name, creating it on first use. A
// second registration with the same name must agree on kind, label
// schema and buckets — a conflicting redefinition is a programming
// error and panics immediately rather than corrupting the scrape.
func (r *Registry) lookup(name, help, kind string, labels []string, buckets []float64) *family {
	if err := checkName(name); err != nil {
		panic("obs: " + err.Error())
	}
	for _, l := range labels {
		if err := checkLabel(l); err != nil {
			panic("obs: " + err.Error())
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q redefined as %s (was %s)", name, kind, f.kind))
		}
		if !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q redefined with labels %v (was %v)", name, labels, f.labels))
		}
		if !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %q redefined with different buckets", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]sample),
	}
	r.families[name] = f
	return f
}

// child returns the instrument for one label-value tuple, creating it
// with mk on first use.
func (f *family) child(values []string, mk func() sample) sample {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.children[key]; ok {
		return s
	}
	s := mk()
	f.children[key] = s
	return s
}

// Counter returns the registered counter, creating it on first use.
// Calling Counter twice with the same name returns the same instrument,
// so independent subsystems can share a metric without coordination.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, kindCounter, nil, nil)
	return f.child(nil, func() sample { return &Counter{} }).(*Counter)
}

// Gauge returns the registered gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, kindGauge, nil, nil)
	return f.child(nil, func() sample { return &Gauge{} }).(*Gauge)
}

// Histogram returns the registered histogram, creating it on first use.
// buckets are the upper bounds of the non-+Inf buckets and must be
// strictly increasing; the +Inf overflow bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	checkBuckets(name, buckets)
	f := r.lookup(name, help, kindHistogram, nil, buckets)
	return f.child(nil, func() sample { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterFunc registers a counter whose value is read by calling fn at
// scrape time — for totals another subsystem already maintains. fn must
// be safe to call concurrently and should be monotonic.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	f := r.lookup(name, help, kindCounter, nil, nil)
	f.child(nil, func() sample { return counterFunc(fn) })
}

// GaugeFunc registers a gauge read by calling fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, kindGauge, nil, nil)
	f.child(nil, func() sample { return gaugeFunc(fn) })
}

// CounterVec is a counter family partitioned by a fixed label schema.
type CounterVec struct{ fam *family }

// CounterVec returns the registered labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label; use Counter")
	}
	return &CounterVec{fam: r.lookup(name, help, kindCounter, labels, nil)}
}

// With returns the counter for one label-value tuple, creating it on
// first use. The tuple length must match the registered label schema.
func (v *CounterVec) With(values ...string) *Counter {
	return v.fam.child(values, func() sample { return &Counter{} }).(*Counter)
}

// HistogramVec is a histogram family partitioned by a fixed label schema.
type HistogramVec struct{ fam *family }

// HistogramVec returns the registered labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec needs at least one label; use Histogram")
	}
	checkBuckets(name, buckets)
	return &HistogramVec{fam: r.lookup(name, help, kindHistogram, labels, buckets)}
}

// With returns the histogram for one label-value tuple, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.fam.child(values, func() sample { return newHistogram(v.fam.buckets) }).(*Histogram)
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): families sorted by name, one HELP
// and one TYPE line each, children sorted by label values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	hooks := make([]func(), len(r.hooks))
	copy(hooks, r.hooks)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	children := make([]sample, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return nil // a vec with no children yet renders nothing
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	for i, k := range keys {
		var values []string
		if len(f.labels) > 0 {
			values = strings.Split(k, "\xff")
		}
		if err := children[i].write(w, f, values); err != nil {
			return err
		}
	}
	return nil
}

// ContentType is the Content-Type of WritePrometheus output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// labelPairs renders {a="x",b="y"} for the family's schema plus any
// extra pairs (used for histogram le labels). Empty schema and no
// extras renders the empty string.
func labelPairs(fam *family, values []string, extraName, extraValue string) string {
	if len(fam.labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range fam.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(fam.labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double-quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// checkName validates a metric name: [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

// checkLabel validates a label name: [a-zA-Z_][a-zA-Z0-9_]*, with the
// __ prefix reserved by Prometheus.
func checkLabel(name string) error {
	if name == "" {
		return fmt.Errorf("empty label name")
	}
	if strings.HasPrefix(name, "__") {
		return fmt.Errorf("reserved label name %q", name)
	}
	for i, c := range name {
		ok := c == '_' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return fmt.Errorf("invalid label name %q", name)
		}
	}
	return nil
}

func checkBuckets(name string, buckets []float64) {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets must be strictly increasing", name))
		}
	}
	if math.IsInf(buckets[len(buckets)-1], 1) {
		panic(fmt.Sprintf("obs: histogram %q must not declare +Inf; the overflow bucket is implicit", name))
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
