package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The update path is one
// atomic add; scrapes read the value atomically. The zero value is
// usable, but counters should come from Registry.Counter so they are
// exported.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, fam *family, values []string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", fam.name, labelPairs(fam, values, "", ""), c.Value())
	return err
}

// Gauge is a value that can go up and down, stored as float64 bits in
// one atomic word. Set is a plain store; Add is a CAS loop.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, fam *family, values []string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, labelPairs(fam, values, "", ""), formatFloat(g.Value()))
	return err
}

// Histogram counts observations into declared buckets. Each bucket is
// an independent atomic counter; the exposition cumulates them, and
// _count is computed as the cumulative total of all buckets, so the
// le="+Inf" sample always equals _count even when a scrape races
// concurrent Observe calls. _sum is a CAS-added float64 and may trail
// the bucket counts by in-flight observations — the standard, harmless
// slack of lock-free histograms.
type Histogram struct {
	upper   []float64 // strictly increasing bounds, no +Inf
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{
		upper:  upper,
		counts: make([]atomic.Uint64, len(upper)+1), // +1: overflow (+Inf)
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) write(w io.Writer, fam *family, values []string) error {
	var cum uint64
	for i, bound := range h.upper {
		cum += h.counts[i].Load()
		le := formatFloat(bound)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, labelPairs(fam, values, "le", le), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.upper)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, labelPairs(fam, values, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, labelPairs(fam, values, "", ""), formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam.name, labelPairs(fam, values, "", ""), cum)
	return err
}

// counterFunc adapts a read function into a scrape-time counter sample.
type counterFunc func() uint64

func (f counterFunc) write(w io.Writer, fam *family, values []string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", fam.name, labelPairs(fam, values, "", ""), f())
	return err
}

// gaugeFunc adapts a read function into a scrape-time gauge sample.
type gaugeFunc func() float64

func (f gaugeFunc) write(w io.Writer, fam *family, values []string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, labelPairs(fam, values, "", ""), formatFloat(f()))
	return err
}

// ExpBuckets returns n strictly increasing bucket bounds starting at
// start and growing by factor — the usual shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
