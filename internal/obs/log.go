package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// ParseLevel maps a -log-level flag value onto a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds the structured logger behind lnucad's
// -log-format/-log-level flags: format is "text" (the default,
// human-oriented) or "json" (one object per line, machine-oriented).
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// Discard returns a logger that drops every record — the default when
// a component is constructed without one, so call sites never need a
// nil check before logging.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

// discardHandler is a no-op slog.Handler. (slog gained a stock discard
// handler only in later Go releases; this module targets go 1.21.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// reqSeq numbers HTTP requests process-wide for the request_id field.
var reqSeq atomic.Uint64

// nextRequestID returns a short process-unique request identifier.
func nextRequestID() string { return fmt.Sprintf("r%06d", reqSeq.Add(1)) }
