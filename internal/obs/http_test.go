package obs

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareMetricsAndAccessLog(t *testing.T) {
	reg := NewRegistry()
	var logBuf strings.Builder
	logger, err := NewLogger(&logBuf, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("ok"))
	})
	route := func(r *http.Request) string {
		if strings.HasPrefix(r.URL.Path, "/v1/jobs/") {
			return "/v1/jobs/{id}"
		}
		return r.URL.Path
	}
	h := Middleware(inner, logger, reg, route)

	srv := httptest.NewServer(h)
	defer srv.Close()
	paths := []string{"/v1/jobs/abc123", "/v1/jobs/def456", "/missing"}
	for _, p := range paths {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.Get("X-Request-Id") == "" {
			t.Errorf("%s: missing X-Request-Id header", p)
		}
		resp.Body.Close()
	}

	_, samples := scrape(t, reg)
	if got := samples[`lnuca_http_requests_total{method="GET",route="/v1/jobs/{id}",code="200"}`]; got != 2 {
		t.Errorf("normalized-route counter = %v, want 2 (samples: %v)", got, samples)
	}
	if got := samples[`lnuca_http_requests_total{method="GET",route="/missing",code="404"}`]; got != 1 {
		t.Errorf("404 counter = %v, want 1", got)
	}
	if got := samples[`lnuca_http_request_seconds_count{method="GET",route="/v1/jobs/{id}"}`]; got != 2 {
		t.Errorf("latency histogram count = %v, want 2", got)
	}

	// Access log: one JSON object per request with the expected fields.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != len(paths) {
		t.Fatalf("access log has %d lines, want %d:\n%s", len(lines), len(paths), logBuf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("access log line is not JSON: %v", err)
	}
	for _, field := range []string{"request_id", "method", "path", "route", "status", "duration_ms"} {
		if _, ok := rec[field]; !ok {
			t.Errorf("access log line missing %q: %v", field, rec)
		}
	}
	if rec["route"] != "/v1/jobs/{id}" || rec["status"] != float64(200) {
		t.Errorf("access log fields wrong: %v", rec)
	}
}

func TestMiddlewareNilCollaborators(t *testing.T) {
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}), nil, nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusTeapot {
		t.Errorf("status = %d, want %d", rec.Code, http.StatusTeapot)
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf strings.Builder
	logger, err := NewLogger(&buf, "text", slog.LevelWarn)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("dropped")
	logger.Warn("kept", "k", "v")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Errorf("level filtering wrong: %q", out)
	}
	if _, err := NewLogger(&buf, "yaml", slog.LevelInfo); err == nil {
		t.Error("NewLogger accepted an unknown format")
	}
	Discard().Info("goes nowhere") // must not panic
}

func TestBuildInfo(t *testing.T) {
	bi := Build()
	if bi.GoVersion == "" {
		t.Error("BuildInfo.GoVersion empty")
	}
	s := bi.String()
	for _, want := range []string{"version", "commit", bi.GoVersion} {
		if !strings.Contains(s, want) {
			t.Errorf("BuildInfo.String() = %q, missing %q", s, want)
		}
	}
}
