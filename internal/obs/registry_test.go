package obs

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// --- scrape-format parser -------------------------------------------------
//
// parseScrape validates Prometheus text exposition line-by-line: every
// family has exactly one HELP and one TYPE line (duplicates rejected),
// sample names are well-formed and belong to the most recent TYPE'd
// family, label syntax is checked with unescaped quotes rejected, and
// values parse as Go floats. It returns sample name+labels -> value.

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\["\\n])*)"$`)
)

// parseSampleLine splits `name{labels} value` respecting quoting: a
// label value may legally contain '{', '}' or ','. Returns ok=false on
// any malformation.
func parseSampleLine(line string) (name, labels, value string, ok bool) {
	i := 0
	for i < len(line) {
		c := line[i]
		if c == '_' || c == ':' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || (i > 0 && '0' <= c && c <= '9') {
			i++
			continue
		}
		break
	}
	if i == 0 {
		return "", "", "", false
	}
	name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		inQuotes, escaped := false, false
		j := 1
		for ; j < len(rest); j++ {
			switch {
			case escaped:
				escaped = false
			case rest[j] == '\\':
				escaped = true
			case rest[j] == '"':
				inQuotes = !inQuotes
			case rest[j] == '}' && !inQuotes:
				goto closed
			}
		}
		return "", "", "", false // unterminated label block
	closed:
		labels = rest[1:j]
		rest = rest[j+1:]
	}
	if !strings.HasPrefix(rest, " ") {
		return "", "", "", false
	}
	value = rest[1:]
	if value == "" || strings.ContainsAny(value, " \t") {
		return "", "", "", false
	}
	return name, labels, value, true
}

func parseScrape(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string) // family -> kind
	helped := make(map[string]bool)
	family, kind := "", ""
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !nameRe.MatchString(name) {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			if helped[name] {
				t.Fatalf("line %d: duplicate HELP for %q", ln+1, name)
			}
			helped[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !nameRe.MatchString(fields[0]) {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if _, dup := typed[fields[0]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", ln+1, fields[0])
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, fields[1])
			}
			typed[fields[0]] = fields[1]
			family, kind = fields[0], fields[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		default:
			name, labels, value, ok := parseSampleLine(line)
			if !ok {
				t.Fatalf("line %d: malformed sample %q", ln+1, line)
			}
			base := name
			if kind == "histogram" {
				base = strings.TrimSuffix(base, "_bucket")
				base = strings.TrimSuffix(base, "_sum")
				base = strings.TrimSuffix(base, "_count")
			}
			if base != family {
				t.Fatalf("line %d: sample %q outside its TYPE'd family %q", ln+1, name, family)
			}
			if labels != "" {
				for _, pair := range splitLabelPairs(t, ln+1, labels) {
					if !labelRe.MatchString(pair) {
						t.Fatalf("line %d: malformed label pair %q", ln+1, pair)
					}
				}
			}
			v, err := strconv.ParseFloat(strings.TrimPrefix(value, "+"), 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, value, err)
			}
			key := name
			if labels != "" {
				key += "{" + labels + "}"
			}
			if _, dup := samples[key]; dup {
				t.Fatalf("line %d: duplicate sample %q", ln+1, key)
			}
			samples[key] = v
		}
	}
	for fam := range typed {
		if !helped[fam] {
			t.Fatalf("family %q has TYPE but no HELP", fam)
		}
	}
	return samples
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quotes.
func splitLabelPairs(t *testing.T, ln int, s string) []string {
	t.Helper()
	var out []string
	var b strings.Builder
	inQuotes, escaped := false, false
	for _, c := range s {
		switch {
		case escaped:
			escaped = false
			b.WriteRune(c)
		case c == '\\':
			escaped = true
			b.WriteRune(c)
		case c == '"':
			inQuotes = !inQuotes
			b.WriteRune(c)
		case c == ',' && !inQuotes:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteRune(c)
		}
	}
	if inQuotes || escaped {
		t.Fatalf("line %d: unterminated label quoting in %q", ln, s)
	}
	out = append(out, b.String())
	return out
}

func scrape(t *testing.T, r *Registry) (string, map[string]float64) {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String(), parseScrape(t, sb.String())
}

// --- tests ----------------------------------------------------------------

func TestScrapeFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs.").Add(7)
	r.Gauge("queue_depth", "Depth.").Set(3.5)
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)
	v := r.CounterVec("http_requests_total", "Requests.", "method", "code")
	v.With("GET", "200").Add(2)
	v.With("POST", "500").Inc()

	text, samples := scrape(t, r)
	want := map[string]float64{
		`jobs_total`:                                    7,
		`queue_depth`:                                   3.5,
		`latency_seconds_bucket{le="0.1"}`:              1,
		`latency_seconds_bucket{le="1"}`:                2,
		`latency_seconds_bucket{le="10"}`:               2,
		`latency_seconds_bucket{le="+Inf"}`:             3,
		`latency_seconds_count`:                         3,
		`http_requests_total{method="GET",code="200"}`:  2,
		`http_requests_total{method="POST",code="500"}`: 1,
	}
	for k, v := range want {
		if got, ok := samples[k]; !ok || got != v {
			t.Errorf("sample %s = %v (present %v), want %v\nscrape:\n%s", k, got, ok, v, text)
		}
	}
	if sum := samples[`latency_seconds_sum`]; math.Abs(sum-100.55) > 1e-9 {
		t.Errorf("latency_seconds_sum = %v, want 100.55", sum)
	}
	// Families must come out sorted by name.
	iReq := strings.Index(text, "# TYPE http_requests_total")
	iJobs := strings.Index(text, "# TYPE jobs_total")
	iLat := strings.Index(text, "# TYPE latency_seconds")
	iQ := strings.Index(text, "# TYPE queue_depth")
	if !(iReq < iJobs && iJobs < iLat && iLat < iQ) {
		t.Errorf("families not sorted by name:\n%s", text)
	}
}

func TestScrapeEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("weird_total", "Help with \\ backslash\nand newline.", "path").
		With(`a"b\c` + "\nd").Inc()
	text, samples := scrape(t, r)
	if !strings.Contains(text, `# HELP weird_total Help with \\ backslash\nand newline.`) {
		t.Errorf("HELP not escaped:\n%s", text)
	}
	wantKey := `weird_total{path="a\"b\\c\nd"}`
	if samples[wantKey] != 1 {
		t.Errorf("escaped label sample missing; got %v\nscrape:\n%s", samples, text)
	}
}

// TestParserRejectsBadScrapes proves the format checker itself has
// teeth: hand-built outputs with duplicate families or unescaped label
// values must fail.
func TestParserRejectsBadScrapes(t *testing.T) {
	bad := []string{
		"# HELP a A.\n# TYPE a counter\na 1\n# HELP a A.\n# TYPE a counter\na 2\n",
		"# HELP a A.\n# TYPE a counter\na{l=\"x\"y\"} 1\n",
		"# HELP a A.\n# TYPE a counter\na 1\na 2\n",
		"# HELP 0bad B.\n# TYPE 0bad counter\n0bad 1\n",
	}
	for i, text := range bad {
		tt := &testing.T{}
		done := make(chan struct{})
		go func() { // Fatalf on tt runtime.Goexits, so give it its own goroutine
			defer close(done)
			parseScrape(tt, text)
		}()
		<-done
		if !tt.Failed() {
			t.Errorf("case %d: parser accepted malformed scrape:\n%s", i, text)
		}
	}
}

func TestConcurrentUpdatesAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "Ops.")
	g := r.Gauge("inflight", "In flight.")
	h := r.Histogram("dur_seconds", "Durations.", []float64{1, 2, 4, 8})
	v := r.CounterVec("by_kind_total", "By kind.", "kind")

	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() { // concurrent scraper: output must stay parseable mid-update
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, samples := scrape(t, r)
			// The le="+Inf" bucket must equal _count at every instant.
			if inf, cnt := samples[`dur_seconds_bucket{le="+Inf"}`], samples[`dur_seconds_count`]; inf != cnt {
				t.Errorf("+Inf bucket %v != count %v mid-scrape", inf, cnt)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := fmt.Sprintf("k%d", w%3)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i % 10))
				v.With(kind).Inc()
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() { // races get-or-create against updates
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("ops_total", "Ops.").Add(0)
				v.With("k0").Add(0)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-scraperDone

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	_, samples := scrape(t, r)
	var byKind float64
	for k, v := range samples {
		if strings.HasPrefix(k, "by_kind_total{") {
			byKind += v
		}
	}
	if byKind != workers*perWorker {
		t.Errorf("sum over by_kind_total children = %v, want %d", byKind, workers*perWorker)
	}
}

func TestGetOrCreateAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same", "Same.")
	b := r.Counter("same", "Same.")
	if a != b {
		t.Error("re-registering the same counter returned a different instrument")
	}
	mustPanic(t, "kind conflict", func() { r.Gauge("same", "Now a gauge.") })
	r.CounterVec("vec", "Vec.", "a", "b")
	mustPanic(t, "label conflict", func() { r.CounterVec("vec", "Vec.", "a") })
	r.Histogram("hist", "Hist.", []float64{1, 2})
	mustPanic(t, "bucket conflict", func() { r.Histogram("hist", "Hist.", []float64{1, 3}) })
	mustPanic(t, "bad name", func() { r.Counter("0bad", "Bad.") })
	mustPanic(t, "bad label", func() { r.CounterVec("ok_total", "OK.", "0bad") })
	mustPanic(t, "reserved label", func() { r.CounterVec("ok2_total", "OK.", "__name") })
	mustPanic(t, "unsorted buckets", func() { r.Histogram("h2", "H.", []float64{2, 1}) })
	mustPanic(t, "+Inf bucket", func() { r.Histogram("h3", "H.", []float64{1, math.Inf(1)}) })
	mustPanic(t, "label arity", func() { r.CounterVec("vec2", "V.", "a", "b").With("only-one") })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestFuncInstrumentsAndOnScrape(t *testing.T) {
	r := NewRegistry()
	var refreshed int
	var snap uint64
	r.OnScrape(func() { refreshed++; snap = 42 })
	r.CounterFunc("derived_total", "Derived.", func() uint64 { return snap })
	r.GaugeFunc("derived_gauge", "Derived gauge.", func() float64 { return float64(snap) / 2 })
	_, samples := scrape(t, r)
	if refreshed != 1 {
		t.Errorf("OnScrape hook ran %d times, want 1", refreshed)
	}
	if samples["derived_total"] != 42 || samples["derived_gauge"] != 21 {
		t.Errorf("func instruments = %v, want derived_total=42 derived_gauge=21", samples)
	}
}

func TestEmptyVecRendersNothing(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("unused_total", "Never incremented.", "kind")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("vec with no children rendered output:\n%s", sb.String())
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	mustPanic(t, "bad ExpBuckets", func() { ExpBuckets(0, 2, 3) })
}
