package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo is what /healthz and every CLI's -version flag report:
// module version, VCS revision, and the Go toolchain that built the
// binary.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for untagged builds).
	Version string `json:"version"`
	// Commit is the VCS revision the binary was built from, suffixed
	// with "+dirty" when the working tree was modified ("unknown" when
	// the build carried no VCS stamp, e.g. go test binaries).
	Commit string `json:"commit"`
	// GoVersion is the toolchain, e.g. "go1.22.1".
	GoVersion string `json:"go_version"`
}

// Build reads the binary's embedded build information.
func Build() BuildInfo {
	out := BuildInfo{Version: "(devel)", Commit: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.Main.Version != "" {
		out.Version = bi.Main.Version
	}
	var rev string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "+dirty"
		}
		out.Commit = rev
	}
	return out
}

// String renders the one-line -version output.
func (b BuildInfo) String() string {
	return fmt.Sprintf("version %s commit %s %s", b.Version, b.Commit, b.GoVersion)
}
