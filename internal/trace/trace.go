// Package trace implements the lnuca-trace-v1 capture/replay format: a
// versioned, compact binary encoding of the dynamic correct-path op
// stream a core consumed, so any workload can be recorded once and
// re-run bit-for-bit against every hierarchy.
//
// A trace file is a gzip stream framing
//
//	magic line          "LNUCATRACEv1\n"
//	header              one JSON object + '\n' (self-describing
//	                    provenance: benchmark, seed, windows, op count,
//	                    content hash)
//	records             one varint-encoded record per op
//
// Records are delta-encoded: memory addresses and branch PCs are stored
// as zigzag varint differences from the previous occurrence, dependence
// distances as zigzag varints, and per-op flags (branch outcome, latency
// override, optional fields) pack into a single control byte. The
// typical record is 2-6 bytes before gzip.
//
// A trace is identified by its content hash: SHA-256 over a canonical
// rendering of the header metadata followed by the raw record payload.
// The hash is stored in the header and re-verified on every decode, so a
// truncated or tampered trace can never silently replay as the original.
// The hash is also the job-key ingredient of a trace run: it pins the
// benchmark provenance, the seed and the simulation windows, which is
// what makes "replay this trace on hierarchy X" a well-defined, cacheable
// computation.
package trace

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// Schema is the trace format version. Decoders reject any other value so
// a future v2 consumer never silently misreads v1 producers or vice
// versa.
const Schema = "lnuca-trace-v1"

// magic is the first line of every trace file (inside the gzip frame).
const magic = "LNUCATRACEv1\n"

// ReplaySlack is how many ops past the live run's consumption a recording
// drains from the underlying stream. A core fetches at most
// ROB + decode-queue ops beyond its committed budget, so a trace with
// this much slack replays to completion on any hierarchy, not just the
// one it was recorded on.
const ReplaySlack = 4096

// maxOps and maxPayloadBytes bound what a decoder will believe: a
// crafted header must not be able to drive allocations. Both are far
// above any real trace (the full-mode window is 240k instructions,
// ~500KB of records) while capping the worst-case memory of decoding a
// hostile stream at roughly one decoded ops slice (2M ops × ~40B ≈
// 80MB) plus the payload itself.
const (
	maxOps          = 1 << 21
	maxPayloadBytes = 64 << 20
)

// Header is the self-describing provenance of a trace: which benchmark
// generated the stream, under which seed, over which simulation windows,
// and the content hash that identifies it.
type Header struct {
	// Schema is the trace format version (Schema; set by New).
	Schema string `json:"schema"`
	// Benchmark names the catalog workload the stream was generated
	// from. Replays use it to reproduce the recording run's functional
	// prewarm.
	Benchmark string `json:"benchmark"`
	// Seed is the recording run's seed; replays reuse it so seeded
	// hierarchy behaviour (fabric routing) matches the live run.
	Seed uint64 `json:"seed"`
	// Warmup and Measure are the recording run's window sizes; replays
	// inherit them, which is what guarantees the trace holds enough ops.
	Warmup  uint64 `json:"warmup"`
	Measure uint64 `json:"measure"`
	// Ops is the record count.
	Ops uint64 `json:"ops"`
	// ID is the content hash (hex SHA-256 over the canonical metadata
	// and the record payload): the trace's identity in the store, the
	// HTTP API and trace-run job keys.
	ID string `json:"id"`
}

// Meta is the caller-supplied part of a Header.
type Meta struct {
	Benchmark string
	Seed      uint64
	Warmup    uint64
	Measure   uint64
}

// Trace is a decoded trace: header plus the op stream.
type Trace struct {
	Header Header
	Ops    []cpu.Op
}

// New builds a trace over ops, computing its content hash. The ops slice
// is retained, not copied.
func New(m Meta, ops []cpu.Op) *Trace {
	h := Header{
		Schema:    Schema,
		Benchmark: m.Benchmark,
		Seed:      m.Seed,
		Warmup:    m.Warmup,
		Measure:   m.Measure,
		Ops:       uint64(len(ops)),
	}
	h.ID = contentHash(h, encodeRecords(ops))
	return &Trace{Header: h, Ops: ops}
}

// ID returns the trace's content hash.
func (t *Trace) ID() string { return t.Header.ID }

// ValidID reports whether id is shaped like a trace content hash
// (64 lowercase hex digits).
func ValidID(id string) bool {
	if len(id) != 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// contentHash derives the trace identity: a canonical rendering of the
// metadata (every field that pins the replay) followed by the raw record
// payload. Hashing the uncompressed payload keeps the identity stable
// across gzip implementations.
func contentHash(h Header, payload []byte) string {
	sum := sha256.New()
	fmt.Fprintf(sum, "%s|bench=%s|seed=%d|warmup=%d|measure=%d|ops=%d|",
		Schema, h.Benchmark, h.Seed, h.Warmup, h.Measure, h.Ops)
	sum.Write(payload)
	return hex.EncodeToString(sum.Sum(nil))
}

// Record control-byte layout: class in the low 3 bits, then presence
// flags for the optional fields. Absent fields decode as their zero
// value, so encode→decode is exact for arbitrary ops while the common
// record stays small.
const (
	ctlClassMask = 0x07
	ctlTaken     = 1 << 3
	ctlHasLat    = 1 << 4
	ctlHasDep2   = 1 << 5
	ctlHasAddr   = 1 << 6
	ctlHasPC     = 1 << 7
)

// encodeRecords renders ops as the delta/varint record payload.
func encodeRecords(ops []cpu.Op) []byte {
	buf := make([]byte, 0, 4*len(ops))
	var tmp [binary.MaxVarintLen64]byte
	putZig := func(v int64) {
		n := binary.PutUvarint(tmp[:], zigzag(v))
		buf = append(buf, tmp[:n]...)
	}
	var prevAddr, prevPC uint64
	for _, op := range ops {
		ctl := byte(op.Class) & ctlClassMask
		if op.Taken {
			ctl |= ctlTaken
		}
		if op.Lat != 0 {
			ctl |= ctlHasLat
		}
		if op.Dep2 != 0 {
			ctl |= ctlHasDep2
		}
		if op.Addr != 0 {
			ctl |= ctlHasAddr
		}
		if op.PC != 0 {
			ctl |= ctlHasPC
		}
		buf = append(buf, ctl)
		putZig(int64(op.Dep1))
		if ctl&ctlHasDep2 != 0 {
			putZig(int64(op.Dep2))
		}
		if ctl&ctlHasLat != 0 {
			buf = append(buf, op.Lat)
		}
		if ctl&ctlHasAddr != 0 {
			putZig(int64(uint64(op.Addr) - prevAddr))
			prevAddr = uint64(op.Addr)
		}
		if ctl&ctlHasPC != 0 {
			putZig(int64(op.PC - prevPC))
			prevPC = op.PC
		}
	}
	return buf
}

// decodeRecords parses exactly n records from payload, which must be
// fully consumed.
func decodeRecords(payload []byte, n uint64) ([]cpu.Op, error) {
	if n > maxOps {
		return nil, fmt.Errorf("trace: implausible op count %d", n)
	}
	if n*2 > uint64(len(payload)) {
		// Every record is at least two bytes (control byte + dep1), so a
		// header claiming more ops than the payload can hold is rejected
		// before any allocation scales with the claim.
		return nil, fmt.Errorf("trace: %d-byte payload cannot hold %d records", len(payload), n)
	}
	r := bytes.NewReader(payload)
	getZig := func() (int64, error) {
		u, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, err
		}
		return unzigzag(u), nil
	}
	ops := make([]cpu.Op, 0, min(n, 1<<20))
	var prevAddr, prevPC uint64
	for i := uint64(0); i < n; i++ {
		ctl, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: truncated record %d: %w", i, err)
		}
		var op cpu.Op
		op.Class = cpu.Class(ctl & ctlClassMask)
		if op.Class > cpu.ClassBranch {
			return nil, fmt.Errorf("trace: record %d: unknown op class %d", i, op.Class)
		}
		op.Taken = ctl&ctlTaken != 0
		d1, err := getZig()
		if err != nil {
			return nil, fmt.Errorf("trace: truncated record %d: %w", i, err)
		}
		op.Dep1 = int32(d1)
		if ctl&ctlHasDep2 != 0 {
			d2, err := getZig()
			if err != nil {
				return nil, fmt.Errorf("trace: truncated record %d: %w", i, err)
			}
			op.Dep2 = int32(d2)
		}
		if ctl&ctlHasLat != 0 {
			lat, err := r.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: truncated record %d: %w", i, err)
			}
			op.Lat = lat
		}
		if ctl&ctlHasAddr != 0 {
			d, err := getZig()
			if err != nil {
				return nil, fmt.Errorf("trace: truncated record %d: %w", i, err)
			}
			prevAddr += uint64(d)
			op.Addr = mem.Addr(prevAddr)
		}
		if ctl&ctlHasPC != 0 {
			d, err := getZig()
			if err != nil {
				return nil, fmt.Errorf("trace: truncated record %d: %w", i, err)
			}
			prevPC += uint64(d)
			op.PC = prevPC
		}
		ops = append(ops, op)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes after %d records", r.Len(), n)
	}
	return ops, nil
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// EncodeTo writes the framed trace to w.
func (t *Trace) EncodeTo(w io.Writer) error {
	if t.Header.Ops != uint64(len(t.Ops)) {
		return fmt.Errorf("trace: header claims %d ops, have %d", t.Header.Ops, len(t.Ops))
	}
	hdr, err := json.Marshal(t.Header)
	if err != nil {
		return err
	}
	gz := gzip.NewWriter(w)
	for _, chunk := range [][]byte{[]byte(magic), hdr, []byte("\n"), encodeRecords(t.Ops)} {
		if _, err := gz.Write(chunk); err != nil {
			return err
		}
	}
	return gz.Close()
}

// Encode returns the framed trace bytes.
func (t *Trace) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := t.EncodeTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeFrom reads one framed trace from r, verifying the magic, the
// schema version and the content hash. Malformed input returns an error;
// it never panics and never yields a partial trace.
func DecodeFrom(r io.Reader) (*Trace, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: not a trace file (gzip): %w", err)
	}
	defer gz.Close()

	hdr, rest, err := readHeader(gz)
	if err != nil {
		return nil, err
	}
	payload, err := readAllBounded(gz, rest, hdr.Ops)
	if err != nil {
		return nil, err
	}
	// Verify the identity before decoding: a corrupted payload is
	// rejected from the raw bytes, without building its op slice first.
	if got := contentHash(hdr, payload); got != hdr.ID {
		return nil, fmt.Errorf("trace: content hash mismatch: header says %s, payload hashes to %s", hdr.ID, got)
	}
	ops, err := decodeRecords(payload, hdr.Ops)
	if err != nil {
		return nil, err
	}
	return &Trace{Header: hdr, Ops: ops}, nil
}

// Decode parses framed trace bytes.
func Decode(data []byte) (*Trace, error) {
	return DecodeFrom(bytes.NewReader(data))
}

// readHeader consumes the magic line and the JSON header from the
// decompressed stream, returning any record bytes read past the header.
func readHeader(gz io.Reader) (Header, []byte, error) {
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(gz, head); err != nil {
		return Header{}, nil, fmt.Errorf("trace: truncated magic: %w", err)
	}
	if string(head) != magic {
		return Header{}, nil, errors.New("trace: bad magic: not a lnuca trace")
	}
	hdrLine, rest, err := readLine(gz)
	if err != nil {
		return Header{}, nil, fmt.Errorf("trace: reading header: %w", err)
	}
	var hdr Header
	if err := json.Unmarshal(hdrLine, &hdr); err != nil {
		return Header{}, nil, fmt.Errorf("trace: bad header: %w", err)
	}
	if hdr.Schema != Schema {
		return Header{}, nil, fmt.Errorf("trace: unsupported trace schema %q (want %q)", hdr.Schema, Schema)
	}
	if !ValidID(hdr.ID) {
		return Header{}, nil, fmt.Errorf("trace: malformed content hash %q", hdr.ID)
	}
	return hdr, rest, nil
}

// DecodeHeader parses only the provenance header of framed trace bytes:
// the cheap metadata path (listings, info endpoints) that skips building
// the op slice. The content hash is NOT re-verified — that requires the
// full payload — so callers serving untrusted files should Decode once
// at ingest (as the store does) and use DecodeHeader for reads after.
func DecodeHeader(data []byte) (Header, error) {
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return Header{}, fmt.Errorf("trace: not a trace file (gzip): %w", err)
	}
	defer gz.Close()
	hdr, _, err := readHeader(gz)
	return hdr, err
}

// readLine consumes bytes from r up to the first '\n', returning the
// line (newline excluded) and any bytes read past it.
func readLine(r io.Reader) (line, rest []byte, err error) {
	var buf []byte
	chunk := make([]byte, 512)
	for {
		n, err := r.Read(chunk)
		buf = append(buf, chunk[:n]...)
		if i := bytes.IndexByte(buf, '\n'); i >= 0 {
			return buf[:i], buf[i+1:], nil
		}
		if len(buf) > 1<<20 {
			return nil, nil, errors.New("header line exceeds 1MB")
		}
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, nil, err
		}
	}
}

// readAllBounded reads the remaining payload under two independent
// caps — one derived from the declared op count (each record is at
// least 2 bytes, at most ~60), one the absolute maxPayloadBytes — so a
// decompression bomb stops expanding at a fixed budget no matter what
// the header claims.
func readAllBounded(r io.Reader, prefix []byte, ops uint64) ([]byte, error) {
	if ops > maxOps {
		return nil, fmt.Errorf("trace: implausible op count %d", ops)
	}
	limit := min(int64(ops)*64+1, maxPayloadBytes)
	buf := bytes.NewBuffer(prefix)
	n, err := io.Copy(buf, io.LimitReader(r, limit-int64(len(prefix))+1))
	if err != nil {
		return nil, fmt.Errorf("trace: reading records: %w", err)
	}
	if int64(len(prefix))+n > limit {
		return nil, fmt.Errorf("trace: record payload exceeds the declared %d ops", ops)
	}
	return buf.Bytes(), nil
}
