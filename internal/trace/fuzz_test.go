package trace

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// genOps draws an arbitrary op sequence — any class, any field values,
// including ones no real generator emits (negative deps, addresses on
// non-memory ops) — so the codec's identity property is proven for the
// whole cpu.Op domain, not just well-formed streams.
func genOps(r *rand.Rand, n int) []cpu.Op {
	ops := make([]cpu.Op, n)
	for i := range ops {
		ops[i] = cpu.Op{
			Class: cpu.Class(r.Intn(5)),
			Dep1:  int32(r.Uint32()),
			Dep2:  int32(r.Uint32()),
			Addr:  mem.Addr(r.Uint64()),
			PC:    r.Uint64(),
			Taken: r.Intn(2) == 0,
			Lat:   uint8(r.Intn(256)),
		}
	}
	return ops
}

// TestQuickRecordRoundTrip: encode→decode is identity for arbitrary
// record sequences (testing/quick drives the RNG).
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		ops := genOps(r, int(nRaw)%512)
		payload := encodeRecords(ops)
		got, err := decodeRecords(payload, uint64(len(ops)))
		if err != nil {
			t.Logf("decode failed: %v", err)
			return false
		}
		if len(got) != len(ops) {
			return false
		}
		for i := range got {
			if got[i] != ops[i] {
				t.Logf("op %d: got %+v want %+v", i, got[i], ops[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickFramedRoundTrip proves the full file framing (gzip, header,
// hash) is identity-preserving too.
func TestQuickFramedRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8, s uint64, w, m uint32) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(Meta{Benchmark: "quick.bench", Seed: s, Warmup: uint64(w), Measure: uint64(m)},
			genOps(r, int(nRaw)))
		data, err := tr.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickTruncationAlwaysErrors: every proper prefix of a valid trace
// file must decode to an error, never to a silently shorter trace.
func TestQuickTruncationAlwaysErrors(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	tr := New(Meta{Benchmark: "quick.bench", Seed: 1, Warmup: 10, Measure: 20}, genOps(r, 64))
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	f := func(cutRaw uint16) bool {
		cut := int(cutRaw) % len(data)
		_, err := Decode(data[:cut])
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// FuzzDecode: arbitrary bytes must never panic the decoder, and anything
// that does decode must re-encode to the same identity (no partial
// silent reads).
func FuzzDecode(f *testing.F) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 17, 200} {
		tr := New(Meta{Benchmark: "fuzz.bench", Seed: 9, Warmup: 5, Measure: 15}, genOps(r, n))
		data, err := tr.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte("garbage that is not gzip"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		if uint64(len(tr.Ops)) != tr.Header.Ops {
			t.Fatalf("decoded %d ops but header claims %d", len(tr.Ops), tr.Header.Ops)
		}
		// Whatever decodes must hold the hash invariant: rebuilding from
		// the decoded ops and metadata yields the same identity.
		rebuilt := New(Meta{
			Benchmark: tr.Header.Benchmark,
			Seed:      tr.Header.Seed,
			Warmup:    tr.Header.Warmup,
			Measure:   tr.Header.Measure,
		}, tr.Ops)
		if rebuilt.ID() != tr.ID() {
			t.Fatalf("decoded trace %s rebuilds to %s", tr.ID(), rebuilt.ID())
		}
	})
}

// FuzzDecodeRecords drives the record decoder directly (no gzip frame in
// the way), the hot surface for malformed varints.
func FuzzDecodeRecords(f *testing.F) {
	r := rand.New(rand.NewSource(3))
	f.Add(encodeRecords(genOps(r, 50)), uint64(50))
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{0xff}, uint64(1))
	f.Fuzz(func(t *testing.T, payload []byte, n uint64) {
		ops, err := decodeRecords(payload, n%4096)
		if err != nil {
			return
		}
		// Success implies exactness: re-encoding reproduces the payload.
		if got := encodeRecords(ops); !reflect.DeepEqual(got, payload) && len(payload) != 0 {
			// Multiple varint spellings of the same value exist, so only
			// assert the stronger property when it must hold: canonical
			// encodings (what encodeRecords itself emits) round-trip; for
			// non-canonical-but-valid input we just require a second
			// decode of the re-encoding to agree.
			again, err := decodeRecords(got, uint64(len(ops)))
			if err != nil || !reflect.DeepEqual(again, ops) {
				t.Fatalf("re-encode of decoded ops does not round-trip: %v", err)
			}
		}
	})
}
