package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/cpu"
	"repro/internal/faultinject"
)

// Store is the content-addressed trace store that sits next to the
// orchestrator's result cache: traces are kept by their content hash, so
// uploading the same trace twice is idempotent and a trace-run job key
// always names exactly one recorded stream.
//
// With a directory the store persists each trace as <id>.lntrace
// (write-through, shared between lnucad and the CLIs the same way the
// result cache directory is); without one it is memory-only.
type Store struct {
	mu      sync.Mutex
	dir     string
	mem     map[string]*Trace // decoded traces (all of them when dir == "")
	headers map[string]Header // known headers, keyed by id

	// faults arms the persist path (trace_write injection point); nil
	// when chaos is off.
	faults atomic.Pointer[faultinject.Injector]
}

// ext is the trace file extension.
const ext = ".lntrace"

// maxMemTraces bounds a memory-only store. Unlike the result cache's
// LRU, entries are not silently evicted — a trace a job was validated
// against must stay resolvable — so a full store rejects new Puts with
// an explicit error instead of growing until OOM. Directory stores are
// operator-managed disk, like the result cache's file store, and are
// not capped.
const maxMemTraces = 256

// tmpOrphanGrace mirrors the result cache's sweep window: stray temp
// files older than this at open are debris from crashed writers,
// younger ones may still be renamed into place by a sibling process.
const tmpOrphanGrace = time.Hour

// NewStore returns a store over dir ("" = memory only). The directory is
// created on first Put; stale temp orphans from crashed writers are
// swept at open.
func NewStore(dir string) *Store {
	if dir != "" {
		if removed, err := atomicfile.SweepOrphans(dir, tmpOrphanGrace); err != nil {
			fmt.Fprintf(os.Stderr, "trace: orphan sweep: %v\n", err)
		} else if len(removed) > 0 {
			fmt.Fprintf(os.Stderr, "trace: store %s: swept %d stale tmp orphan(s)\n", dir, len(removed))
		}
	}
	return &Store{
		dir:     dir,
		mem:     make(map[string]*Trace),
		headers: make(map[string]Header),
	}
}

// SetFaults arms the store's persist path with a fault injector (nil
// disarms). Test and chaos-mode plumbing only.
func (s *Store) SetFaults(in *faultinject.Injector) { s.faults.Store(in) }

// Put stores a trace under its content hash and returns the header. The
// hash is recomputed from the ops, so a tampered Trace value cannot
// poison the store under a foreign identity.
func (s *Store) Put(t *Trace) (Header, error) {
	// The copy keeps the stored stream immune to a caller later
	// mutating the slice it handed in.
	canonical := New(Meta{
		Benchmark: t.Header.Benchmark,
		Seed:      t.Header.Seed,
		Warmup:    t.Header.Warmup,
		Measure:   t.Header.Measure,
	}, append([]cpu.Op(nil), t.Ops...))
	if t.Header.ID != "" && t.Header.ID != canonical.Header.ID {
		return Header{}, fmt.Errorf("trace: header id %s does not match content %s", t.Header.ID, canonical.Header.ID)
	}
	return s.putVerified(canonical, nil)
}

// PutBytes decodes framed trace bytes (verifying schema and content
// hash) and stores the result: the POST /v1/traces ingest path. The
// already-verified frame is persisted as-is, so an upload costs one
// decode, not a decode plus a re-encode.
func (s *Store) PutBytes(data []byte) (Header, error) {
	t, err := Decode(data)
	if err != nil {
		return Header{}, err
	}
	return s.putVerified(t, data)
}

// putVerified stores a trace whose header is known to match its ops;
// encoded, when non-nil, holds the exact verified frame to persist.
func (s *Store) putVerified(t *Trace, encoded []byte) (Header, error) {
	id := t.ID()
	if s.dir != "" {
		if encoded == nil {
			var err error
			if encoded, err = t.Encode(); err != nil {
				return Header{}, err
			}
		}
		if err := s.persist(id, encoded); err != nil {
			return Header{}, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir == "" {
		if _, exists := s.mem[id]; !exists && len(s.mem) >= maxMemTraces {
			return Header{}, fmt.Errorf("trace: in-memory store full (%d traces) — back it with a directory to hold more", maxMemTraces)
		}
		s.mem[id] = t
	}
	s.headers[id] = t.Header
	return t.Header, nil
}

func (s *Store) path(id string) string {
	return filepath.Join(s.dir, id+ext)
}

func (s *Store) persist(id string, data []byte) error {
	// Unique temp name per writer + atomic rename: concurrent processes
	// sharing the store (fleet workers pushing the same trace) must not
	// clobber each other's in-progress temp file. Content addressing
	// makes concurrent identical writes benign — last rename wins with
	// identical bytes.
	return atomicfile.Write(s.path(id), data, atomicfile.Options{
		Faults: s.faults.Load(),
		Point:  faultinject.PointTraceWrite,
	})
}

// Get returns the trace with the given content hash. A stored file whose
// content no longer matches its name is an error, never a wrong replay.
func (s *Store) Get(id string) (*Trace, error) {
	if !ValidID(id) {
		return nil, fmt.Errorf("trace: malformed trace id %q", id)
	}
	s.mu.Lock()
	t, ok := s.mem[id]
	s.mu.Unlock()
	if ok {
		return t, nil
	}
	if s.dir == "" {
		return nil, fmt.Errorf("trace: unknown trace %s", id)
	}
	data, err := os.ReadFile(s.path(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("trace: unknown trace %s", id)
		}
		return nil, err
	}
	t, err = Decode(data)
	if err != nil {
		return nil, fmt.Errorf("trace: stored trace %s: %w", id, err)
	}
	if t.ID() != id {
		return nil, fmt.Errorf("trace: stored trace %s actually hashes to %s", id, t.ID())
	}
	s.mu.Lock()
	s.headers[id] = t.Header
	s.mu.Unlock()
	return t, nil
}

// Header returns the provenance header of a stored trace without
// building its op slice: the cheap metadata path behind listings and
// the GET /v1/traces/{id} endpoint. Stored files were hash-verified at
// Put, so only the header is decoded here; Get still fully re-verifies
// before a replay.
func (s *Store) Header(id string) (Header, error) {
	if !ValidID(id) {
		return Header{}, fmt.Errorf("trace: malformed trace id %q", id)
	}
	s.mu.Lock()
	h, known := s.headers[id]
	s.mu.Unlock()
	if known && s.Has(id) {
		return h, nil
	}
	if s.dir == "" {
		return Header{}, fmt.Errorf("trace: unknown trace %s", id)
	}
	data, err := os.ReadFile(s.path(id))
	if err != nil {
		if os.IsNotExist(err) {
			return Header{}, fmt.Errorf("trace: unknown trace %s", id)
		}
		return Header{}, err
	}
	hdr, err := DecodeHeader(data)
	if err != nil {
		return Header{}, fmt.Errorf("trace: stored trace %s: %w", id, err)
	}
	if hdr.ID != id {
		return Header{}, fmt.Errorf("trace: stored trace %s actually claims id %s", id, hdr.ID)
	}
	s.mu.Lock()
	s.headers[id] = hdr
	s.mu.Unlock()
	return hdr, nil
}

// Has reports whether the store holds a trace with this id. For a
// directory store the file itself is consulted — never the header
// index, which could outlive an operator pruning the directory — so a
// positive answer means a Get would actually find the stream.
func (s *Store) Has(id string) bool {
	if !ValidID(id) {
		return false
	}
	s.mu.Lock()
	_, inMem := s.mem[id]
	s.mu.Unlock()
	if inMem {
		return true
	}
	if s.dir == "" {
		return false
	}
	_, err := os.Stat(s.path(id))
	return err == nil
}

// List returns the headers of every stored trace, sorted by id. For a
// directory store it scans the directory, so traces dropped in by other
// processes (or left by a previous daemon) are listed too; unreadable
// files are skipped rather than failing the listing.
func (s *Store) List() []Header {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir != "" {
		s.scanLocked()
	}
	out := make([]Header, 0, len(s.headers))
	for _, h := range s.headers {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// scanLocked rebuilds the header index from the directory: new files
// are decoded, already-indexed ones keep their header, and entries
// whose files were pruned drop out of the listing.
func (s *Store) scanLocked() {
	fresh := make(map[string]Header)
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		s.headers = fresh // directory missing: nothing stored
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ext) {
			continue
		}
		id := strings.TrimSuffix(name, ext)
		if !ValidID(id) {
			continue
		}
		if h, known := s.headers[id]; known {
			fresh[id] = h
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		hdr, err := DecodeHeader(data)
		if err != nil || hdr.ID != id {
			continue
		}
		fresh[id] = hdr
	}
	s.headers = fresh
}

// Len returns the number of known traces (List-visible entries).
func (s *Store) Len() int { return len(s.List()) }
