package trace

import "repro/internal/cpu"

// Recorder wraps any cpu.Stream and captures every op it hands out, so a
// normal simulation proceeds unchanged while the trace accumulates. It
// implements cpu.Stream itself: wire it where the generator would go.
type Recorder struct {
	inner cpu.Stream
	ops   []cpu.Op
}

// NewRecorder wraps s.
func NewRecorder(s cpu.Stream) *Recorder {
	return &Recorder{inner: s}
}

// Next implements cpu.Stream: a transparent pass-through that appends
// each op to the capture.
func (r *Recorder) Next() (cpu.Op, bool) {
	op, ok := r.inner.Next()
	if ok {
		r.ops = append(r.ops, op)
	}
	return op, ok
}

// Reserve drains up to n more ops from the underlying stream into the
// capture. Recordings call it after the live run stops: a core fetches a
// bounded number of ops beyond its committed budget, and that bound
// differs per hierarchy, so the slack is what lets one trace replay to
// completion on hierarchies the recording never ran.
func (r *Recorder) Reserve(n int) {
	for i := 0; i < n; i++ {
		op, ok := r.inner.Next()
		if !ok {
			return
		}
		r.ops = append(r.ops, op)
	}
}

// Len returns the number of ops captured so far.
func (r *Recorder) Len() int { return len(r.ops) }

// Trace snapshots the capture as an identified trace.
func (r *Recorder) Trace(m Meta) *Trace {
	return New(m, append([]cpu.Op(nil), r.ops...))
}

var _ cpu.Stream = (*Recorder)(nil)

// Replayer feeds a recorded trace back as a cpu.Stream, so cpu.Core
// consumes traces with zero kernel changes: the stream ends when the
// records run out.
type Replayer struct {
	ops  []cpu.Op
	next int
}

// NewReplayer returns a stream over t's ops.
func NewReplayer(t *Trace) *Replayer {
	return &Replayer{ops: t.Ops}
}

// Next implements cpu.Stream.
func (r *Replayer) Next() (cpu.Op, bool) {
	if r.next >= len(r.ops) {
		return cpu.Op{}, false
	}
	op := r.ops[r.next]
	r.next++
	return op, true
}

// Remaining returns the number of unread ops.
func (r *Replayer) Remaining() int { return len(r.ops) - r.next }

var _ cpu.Stream = (*Replayer)(nil)
