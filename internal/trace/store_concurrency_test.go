package trace

import (
	"os"
	"strings"
	"sync"
	"testing"
)

// TestStoreConcurrentIdenticalWrites hammers one directory with many
// writers persisting the same trace — the fleet shape, where several
// worker processes push an identical content-addressed blob at once.
// Every writer must succeed, the stored file must decode to the right
// content, and no temp litter may remain.
func TestStoreConcurrentIdenticalWrites(t *testing.T) {
	dir := t.TempDir()
	tr := New(sampleMeta(), sampleOps())
	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each writer gets its own Store over the shared directory,
			// standing in for a separate process.
			_, errs[i] = NewStore(dir).Put(tr)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}

	reader := NewStore(dir)
	got, err := reader.Get(tr.ID())
	if err != nil {
		t.Fatalf("Get after concurrent writes: %v", err)
	}
	if got.ID() != tr.ID() || len(got.Ops) != len(tr.Ops) {
		t.Fatalf("stored trace differs: id %s ops %d, want %s / %d",
			got.ID(), len(got.Ops), tr.ID(), len(tr.Ops))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
	if n := len(entries); n != 1 {
		t.Fatalf("directory holds %d entries, want exactly the one trace", n)
	}
}
