package trace

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/workload"
)

// sampleOps is a small mixed stream exercising every class and field.
func sampleOps() []cpu.Op {
	return []cpu.Op{
		{Class: cpu.ClassInt, Dep1: 3, Dep2: 7},
		{Class: cpu.ClassLoad, Addr: 0x1000_0040, Dep1: 1},
		{Class: cpu.ClassLoad, Addr: 0x1000_0060},
		{Class: cpu.ClassStore, Addr: 0x2000_0000, Dep1: 2},
		{Class: cpu.ClassBranch, PC: 16, Taken: true, Dep1: 4},
		{Class: cpu.ClassBranch, PC: 48, Taken: false},
		{Class: cpu.ClassFP, Dep1: 9, Dep2: 2, Lat: 6},
		{Class: cpu.ClassLoad, Addr: 0}, // address 0 is legitimate (hot base)
	}
}

func sampleMeta() Meta {
	return Meta{Benchmark: "400.perlbench", Seed: 7, Warmup: 100, Measure: 400}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := New(sampleMeta(), sampleOps())
	if tr.Header.Ops != uint64(len(sampleOps())) {
		t.Fatalf("header ops = %d, want %d", tr.Header.Ops, len(sampleOps()))
	}
	if !ValidID(tr.ID()) {
		t.Fatalf("malformed content hash %q", tr.ID())
	}
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip changed the trace:\n got %+v\nwant %+v", got, tr)
	}
}

// TestContentHashGolden pins the trace identity. The hash covers the
// record encoding, so it is part of the on-disk and job-key contract: if
// this test fails, stored traces and cached trace-run results written by
// other builds will not be found. Change the format only with a schema
// bump, and regenerate this constant deliberately.
func TestContentHashGolden(t *testing.T) {
	tr := New(sampleMeta(), sampleOps())
	const want = "fc104111218e1f4d4c550ede6235b191fcbdb17fcb318065a4bfc6847400d5ca"
	if tr.ID() != want {
		t.Errorf("content hash drifted:\n got %s\nwant %s", tr.ID(), want)
	}
}

func TestContentHashDistinguishesMeta(t *testing.T) {
	ops := sampleOps()
	a := New(Meta{Benchmark: "400.perlbench", Seed: 1, Warmup: 10, Measure: 20}, ops)
	ids := map[string]string{a.ID(): "base"}
	for name, m := range map[string]Meta{
		"seed":    {Benchmark: "400.perlbench", Seed: 2, Warmup: 10, Measure: 20},
		"warmup":  {Benchmark: "400.perlbench", Seed: 1, Warmup: 11, Measure: 20},
		"measure": {Benchmark: "400.perlbench", Seed: 1, Warmup: 10, Measure: 21},
		"bench":   {Benchmark: "401.bzip2", Seed: 1, Warmup: 10, Measure: 20},
	} {
		id := New(m, ops).ID()
		if prev, dup := ids[id]; dup {
			t.Errorf("meta variant %q collides with %q", name, prev)
		}
		ids[id] = name
	}
}

func TestDecodeRejectsCorruptInputs(t *testing.T) {
	tr := New(sampleMeta(), sampleOps())
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("empty", func(t *testing.T) {
		if _, err := Decode(nil); err == nil {
			t.Error("decoding nothing should fail")
		}
	})
	t.Run("not-gzip", func(t *testing.T) {
		if _, err := Decode([]byte("plain text")); err == nil {
			t.Error("non-gzip input should fail")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{1, 10, len(data) / 2, len(data) - 1} {
			if _, err := Decode(data[:n]); err == nil {
				t.Errorf("truncation to %d bytes should fail", n)
			}
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		var buf bytes.Buffer
		gz := gzip.NewWriter(&buf)
		gz.Write([]byte("NOTATRACE....\n{}\n"))
		gz.Close()
		if _, err := Decode(buf.Bytes()); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Errorf("bad magic should fail, got %v", err)
		}
	})
	t.Run("wrong-version", func(t *testing.T) {
		bad := *tr
		bad.Header.Schema = "lnuca-trace-v0"
		enc, err := bad.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(enc); err == nil || !strings.Contains(err.Error(), "schema") {
			t.Errorf("wrong schema should fail, got %v", err)
		}
	})
	t.Run("hash-mismatch", func(t *testing.T) {
		bad := *tr
		bad.Ops = append([]cpu.Op(nil), tr.Ops...)
		bad.Ops[0].Dep1++ // payload no longer matches the header hash
		enc, err := bad.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(enc); err == nil || !strings.Contains(err.Error(), "hash") {
			t.Errorf("tampered payload should fail, got %v", err)
		}
	})
	t.Run("overclaimed-ops", func(t *testing.T) {
		// A header claiming more records than the payload can hold (each
		// is ≥ 2 bytes) must be rejected before any allocation scales
		// with the claim. Forge the frame by hand: Encode refuses the
		// mismatch, and the content hash must cover the lie.
		forged := *tr
		forged.Header.Ops = maxOps
		forged.Header.ID = contentHash(forged.Header, encodeRecords(tr.Ops))
		hdrJSON, err := json.Marshal(forged.Header)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		gz := gzip.NewWriter(&buf)
		gz.Write([]byte(magic))
		gz.Write(hdrJSON)
		gz.Write([]byte("\n"))
		gz.Write(encodeRecords(tr.Ops))
		gz.Close()
		if _, err := Decode(buf.Bytes()); err == nil || !strings.Contains(err.Error(), "cannot hold") {
			t.Errorf("over-claimed op count should fail early, got %v", err)
		}
	})
	t.Run("implausible-ops", func(t *testing.T) {
		bad := *tr
		bad.Header.Ops = 1 << 40
		bad.Ops = nil
		if _, err := bad.Encode(); err == nil {
			t.Error("encode should reject an op-count mismatch")
		}
	})
}

func TestValidID(t *testing.T) {
	tr := New(sampleMeta(), nil)
	if !ValidID(tr.ID()) {
		t.Errorf("real id %q rejected", tr.ID())
	}
	for _, bad := range []string{"", "abc", strings.Repeat("g", 64), strings.Repeat("A", 64), strings.Repeat("0", 63)} {
		if ValidID(bad) {
			t.Errorf("ValidID(%q) = true", bad)
		}
	}
}

func TestRecorderPassThrough(t *testing.T) {
	p, ok := workload.ByName("403.gcc")
	if !ok {
		t.Fatal("missing catalog benchmark")
	}
	direct := workload.MustGenerator(p, 5)
	rec := NewRecorder(workload.MustGenerator(p, 5))
	const n = 500
	for i := 0; i < n; i++ {
		want, _ := direct.Next()
		got, ok := rec.Next()
		if !ok || got != want {
			t.Fatalf("op %d: recorder perturbed the stream: got %+v want %+v", i, got, want)
		}
	}
	if rec.Len() != n {
		t.Fatalf("recorded %d ops, want %d", rec.Len(), n)
	}
	rec.Reserve(100)
	if rec.Len() != n+100 {
		t.Fatalf("after Reserve: %d ops, want %d", rec.Len(), n+100)
	}
}

func TestReplayerReproducesStream(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	rec := NewRecorder(workload.MustGenerator(p, 3))
	for i := 0; i < 300; i++ {
		rec.Next()
	}
	tr := rec.Trace(Meta{Benchmark: p.Name, Seed: 3, Warmup: 100, Measure: 200})

	// The replayed stream matches a fresh generator op for op.
	fresh := workload.MustGenerator(p, 3)
	rep := NewReplayer(tr)
	for i := 0; i < 300; i++ {
		want, _ := fresh.Next()
		got, ok := rep.Next()
		if !ok || got != want {
			t.Fatalf("op %d: replay diverges: got %+v want %+v", i, got, want)
		}
	}
	if _, ok := rep.Next(); ok {
		t.Error("replayer should end after the recorded ops")
	}
	if rep.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", rep.Remaining())
	}
}

func TestGeneratorTraceRoundTrip(t *testing.T) {
	// A realistic stream (every op class, delta-friendly addresses)
	// encodes and decodes losslessly.
	p, _ := workload.ByName("470.lbm")
	rec := NewRecorder(workload.MustGenerator(p, 11))
	for i := 0; i < 5000; i++ {
		rec.Next()
	}
	tr := rec.Trace(Meta{Benchmark: p.Name, Seed: 11, Warmup: 1000, Measure: 4000})
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ops, tr.Ops) {
		t.Fatal("decoded ops differ from recorded ops")
	}
	t.Logf("5000 ops encode to %d bytes (%.2f B/op)", len(data), float64(len(data))/5000)
}

func TestStoreMemory(t *testing.T) {
	s := NewStore("")
	tr := New(sampleMeta(), sampleOps())
	hdr, err := s.Put(tr)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.ID != tr.ID() {
		t.Fatalf("store id %s, want %s", hdr.ID, tr.ID())
	}
	if !s.Has(hdr.ID) {
		t.Error("Has after Put = false")
	}
	got, err := s.Get(hdr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ops, tr.Ops) {
		t.Error("stored ops differ")
	}
	if _, err := s.Get(strings.Repeat("0", 64)); err == nil {
		t.Error("unknown id should fail")
	}
	if _, err := s.Get("not-an-id"); err == nil {
		t.Error("malformed id should fail")
	}
	if n := len(s.List()); n != 1 {
		t.Errorf("List len = %d, want 1", n)
	}
}

func TestStoreDir(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir)
	tr := New(sampleMeta(), sampleOps())
	hdr, err := s.Put(tr)
	if err != nil {
		t.Fatal(err)
	}
	// A second store over the same directory sees the trace: the
	// cross-process sharing lnucad and the CLIs rely on.
	s2 := NewStore(dir)
	if !s2.Has(hdr.ID) {
		t.Error("second store misses the persisted trace")
	}
	got, err := s2.Get(hdr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ops, tr.Ops) {
		t.Error("persisted ops differ")
	}
	list := s2.List()
	if len(list) != 1 || list[0].ID != hdr.ID {
		t.Errorf("List = %+v, want one entry %s", list, hdr.ID)
	}
}

func TestStorePrunedFileDropsOut(t *testing.T) {
	// An operator deleting a .lntrace file must make the store forget
	// it: Has answers from the file, and List drops the stale header —
	// otherwise submit-time existence checks pass for streams a worker
	// can no longer load.
	dir := t.TempDir()
	s := NewStore(dir)
	hdr, err := s.Put(New(sampleMeta(), sampleOps()))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.List()) != 1 || !s.Has(hdr.ID) {
		t.Fatal("trace not visible after Put")
	}
	if err := os.Remove(filepath.Join(dir, hdr.ID+ext)); err != nil {
		t.Fatal(err)
	}
	if s.Has(hdr.ID) {
		t.Error("Has = true for a pruned trace file")
	}
	if n := len(s.List()); n != 0 {
		t.Errorf("List still shows %d pruned entries", n)
	}
}

func TestStorePutBytesIdempotent(t *testing.T) {
	s := NewStore(t.TempDir())
	tr := New(sampleMeta(), sampleOps())
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	h1, err := s.PutBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s.PutBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("re-upload changed identity: %s vs %s", h1.ID, h2.ID)
	}
	if n := len(s.List()); n != 1 {
		t.Errorf("List len = %d, want 1", n)
	}
	if _, err := s.PutBytes([]byte("garbage")); err == nil {
		t.Error("garbage upload should fail")
	}
}

func TestStorePutCopiesOps(t *testing.T) {
	// Mutating the slice after Put must not corrupt what Get serves
	// under the original content hash.
	s := NewStore("")
	ops := sampleOps()
	tr := New(sampleMeta(), ops)
	hdr, err := s.Put(tr)
	if err != nil {
		t.Fatal(err)
	}
	ops[0].Dep1 = 999
	got, err := s.Get(hdr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ops[0].Dep1 == 999 {
		t.Error("stored trace aliases the caller's ops slice")
	}
}

func TestStoreMemoryCapRejectsLoudly(t *testing.T) {
	s := NewStore("")
	var lastID string
	for i := 0; i < maxMemTraces; i++ {
		m := sampleMeta()
		m.Seed = uint64(i + 1) // distinct content hash per entry
		hdr, err := s.Put(New(m, sampleOps()))
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		lastID = hdr.ID
	}
	m := sampleMeta()
	m.Seed = uint64(maxMemTraces + 1)
	if _, err := s.Put(New(m, sampleOps())); err == nil || !strings.Contains(err.Error(), "full") {
		t.Errorf("overflow Put should fail loudly, got %v", err)
	}
	// Re-putting an existing trace is still fine at capacity.
	m.Seed = uint64(maxMemTraces)
	if _, err := s.Put(New(m, sampleOps())); err != nil {
		t.Errorf("idempotent re-put at capacity failed: %v", err)
	}
	if !s.Has(lastID) {
		t.Error("capacity rejection must not evict existing traces")
	}
}

func TestStoreHeaderWithoutFullDecode(t *testing.T) {
	dir := t.TempDir()
	hdr, err := NewStore(dir).Put(New(sampleMeta(), sampleOps()))
	if err != nil {
		t.Fatal(err)
	}
	// A fresh store over the directory resolves the header (metadata
	// path) and still rejects unknown or malformed ids.
	s2 := NewStore(dir)
	got, err := s2.Header(hdr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != hdr {
		t.Errorf("Header = %+v, want %+v", got, hdr)
	}
	if _, err := s2.Header(strings.Repeat("0", 64)); err == nil {
		t.Error("unknown id should fail")
	}
	if _, err := s2.Header("junk"); err == nil {
		t.Error("malformed id should fail")
	}
}

func TestStorePutRejectsForgedID(t *testing.T) {
	s := NewStore("")
	tr := New(sampleMeta(), sampleOps())
	tr.Header.ID = strings.Repeat("0", 64)
	if _, err := s.Put(tr); err == nil {
		t.Error("forged header id should be rejected")
	}
}

func TestStoreGetDetectsRenamedFile(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir)
	tr := New(sampleMeta(), sampleOps())
	hdr, err := s.Put(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Rename the file to a different (valid-shaped) id: the content no
	// longer matches its address, and Get must refuse to replay it.
	other := strings.Repeat("0", 64)
	if err := os.Rename(filepath.Join(dir, hdr.ID+ext), filepath.Join(dir, other+ext)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(dir).Get(other); err == nil {
		t.Error("mis-addressed trace should be rejected")
	}
}

// Zigzag must round-trip the full int64 range.
func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag(%d) round-trips to %d", v, got)
		}
	}
	for _, addr := range []mem.Addr{0, 1, 0xffff_ffff_ffff_ffff, 0x3000_0000} {
		delta := int64(uint64(addr) - uint64(0x1000))
		if got := uint64(0x1000) + uint64(unzigzag(zigzag(delta))); got != uint64(addr) {
			t.Errorf("addr delta round trip failed for %#x", uint64(addr))
		}
	}
}
