package trace

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestStoreSweepsTmpOrphansAtOpen: debris from a writer killed between
// create and rename is deleted when the store opens — but only past the
// grace window, so a live sibling writer's temp survives. Real trace
// files are never touched.
func TestStoreSweepsTmpOrphansAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir)
	tr := New(sampleMeta(), sampleOps())
	hdr, err := s.Put(tr)
	if err != nil {
		t.Fatal(err)
	}

	stale := filepath.Join(dir, "."+hdr.ID+".tmp-1234")
	fresh := filepath.Join(dir, "."+hdr.ID+".tmp-5678")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("half a trace"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpOrphanGrace)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore(dir)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale orphan survived the open-time sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp (possibly a live writer) was swept")
	}
	if !s2.Has(hdr.ID) {
		t.Error("real trace lost to the sweep")
	}
	if got, err := s2.Get(hdr.ID); err != nil || got.ID() != hdr.ID {
		t.Errorf("Get after sweep: %v", err)
	}
}

// TestStorePersistFaultLeavesDebrisNotGarbage: an injected torn write
// fails the Put loudly, leaves only temp debris (never a half-written
// .lntrace that a reader could trip over), and the next attempt
// succeeds.
func TestStorePersistFaultLeavesDebrisNotGarbage(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir)
	in := faultinject.New(21)
	in.Enable(faultinject.PointTraceWrite, faultinject.Plan{Rate: 1, MaxFires: 1, Tear: 0.5})
	s.SetFaults(in)

	tr := New(sampleMeta(), sampleOps())
	if _, err := s.Put(tr); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Put under torn write = %v, want wrapped ErrInjected", err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ext) {
			t.Fatalf("torn write left a visible trace file %s", e.Name())
		}
	}
	hdr, err := s.Put(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get(hdr.ID); err != nil || got.ID() != hdr.ID {
		t.Fatalf("Get after retried Put: %v", err)
	}
}
