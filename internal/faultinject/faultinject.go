// Package faultinject is a dependency-free, deterministically seeded
// fault injector. Code under test declares named injection points
// (Point constants below); a test or the `lnucad -chaos-seed` dev flag
// arms a subset of them with Plans; the instrumented code asks
// At(point) what — if anything — should go wrong right now.
//
// Determinism is the whole design: every point draws its fire/no-fire
// decisions from its own RNG stream derived from (seed, point name), so
// a schedule is fully reproduced by its seed alone, independent of how
// many other points are armed or in what order goroutines interleave
// their calls to *different* points. (Concurrent calls to the *same*
// point serialize on the injector's mutex, so a point's decision
// sequence is a deterministic function of its call count.)
//
// A nil *Injector is valid and never fires, so production code can
// thread one through unconditionally and pay a single nil check when
// chaos is off.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs/tracez"
)

// Point names one injection site. The catalog is small and closed on
// purpose: chaos schedules, metrics labels
// (lnuca_fault_injected_total{point}) and DESIGN.md's failure-model
// table all key off these exact strings.
type Point string

// The injection-point catalog. Layer 1: HTTP transports. Layer 2: disk
// stores. Layer 3: worker execution.
const (
	// PointClientHTTP sits in lightnuca.Client's transport: connection
	// refused, 5xx/429 bursts, mid-body drops, induced latency.
	PointClientHTTP Point = "client_http"
	// PointWorkerHTTP sits in the fleet worker's transport to the
	// coordinator (lease/heartbeat/complete/trace-fetch).
	PointWorkerHTTP Point = "worker_http"
	// PointCoordHTTP is server-side middleware on the coordinator /
	// lnucad mux: injected 5xx before the real handler runs.
	PointCoordHTTP Point = "coord_http"

	// PointCacheWrite fires inside the result cache's atomic persist:
	// torn temp file, failed fsync, failed rename — debris left behind.
	PointCacheWrite Point = "cache_write"
	// PointCacheRead fires on result-cache disk loads: short reads and
	// read errors.
	PointCacheRead Point = "cache_read"
	// PointTraceWrite fires inside the trace store's atomic persist.
	PointTraceWrite Point = "trace_write"
	// PointJournalAppend fires on queue-journal appends: the write
	// errors out, as a full or failing disk would.
	PointJournalAppend Point = "journal_append"

	// PointWorkerCrash crashes a worker after the simulation ran but
	// before /fleet/v1/complete is attempted: the lease zombies until
	// the reaper requeues it.
	PointWorkerCrash Point = "worker_crash"
	// PointWorkerStall stalls a worker past its lease TTL (heartbeats
	// stopped) and then lets it attempt completion — the coordinator
	// must answer 410 and the requeued attempt must win.
	PointWorkerStall Point = "worker_stall"
)

// ErrInjected is the default error carried by a fired Outcome whose
// Plan did not specify one. Instrumented code wraps it, so tests can
// errors.Is their way to "this failure was mine".
var ErrInjected = errors.New("faultinject: injected fault")

// Plan arms one injection point. Zero-valued fields mean "no such
// effect"; a Plan with no effect fields at all injects a bare
// ErrInjected when it fires.
type Plan struct {
	// Rate is the per-call fire probability in [0,1]. Rate >= 1 fires
	// on every eligible call.
	Rate float64
	// After skips the first After calls before any can fire — lets a
	// schedule poison steady state rather than startup.
	After int
	// MaxFires caps total fires; 0 means unlimited. Bounded schedules
	// keep chaos runs convergent (MaxAttempts budgets, degraded-mode
	// thresholds).
	MaxFires int

	// Err is the injected error; nil defaults to ErrInjected where an
	// error is the effect.
	Err error
	// Tear, in (0,1], makes disk-write points persist only the first
	// Tear fraction of the payload to the temp file and then fail —
	// a crash between write and rename, debris included.
	Tear float64
	// Delay is injected latency, applied before any other effect.
	Delay time.Duration
	// Status, for HTTP points, synthesizes a response with this status
	// code instead of performing the request.
	Status int
	// RetryAfter, in seconds, sets a Retry-After header on a
	// synthesized Status response (e.g. 429 backpressure).
	RetryAfter int
	// DropBody, for HTTP points, performs the request but severs the
	// response body mid-read — a connection cut after headers.
	DropBody bool
	// AfterSend, for HTTP points, performs the request server-side but
	// reports a transport error to the caller — the ambiguous "did my
	// POST land?" failure that drives duplicate-completion paths.
	AfterSend bool
}

// Outcome is one injection decision. The zero Outcome (Fired false) is
// what unarmed or nil injectors return.
type Outcome struct {
	Point Point
	Fired bool

	Err        error
	Tear       float64
	Delay      time.Duration
	Status     int
	RetryAfter int
	DropBody   bool
	AfterSend  bool
}

// ErrOrDefault returns the planned error, or ErrInjected when the plan
// left it nil.
func (o Outcome) ErrOrDefault() error {
	if o.Err != nil {
		return o.Err
	}
	return ErrInjected
}

// Sleep applies the outcome's injected latency, honoring ctx. Returns
// early with the context error if the caller is canceled mid-delay.
func (o Outcome) Sleep(ctx context.Context) error {
	if o.Delay <= 0 {
		return nil
	}
	//lnuca:allow(determinism) injected latency is the fault being simulated, never result content
	t := time.NewTimer(o.Delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// pointState is one armed point's plan plus its private RNG stream and
// call/fire counters.
type pointState struct {
	plan  Plan
	rng   *rand.Rand
	calls uint64
	fires uint64
}

// Event is one fault firing, correlated to the distributed trace whose
// request tripped it. TraceID is "" when the site had no trace context
// (background probes, untraced submissions) — the firing is still
// recorded, just unattributed.
type Event struct {
	Point   Point
	TraceID string
}

// Injector owns the armed points. Safe for concurrent use; a nil
// *Injector is inert.
type Injector struct {
	seed    int64
	mu      sync.Mutex
	points  map[Point]*pointState
	onFire  func(Point)
	onEvent func(Event)
}

// New returns an injector whose every decision derives from seed.
func New(seed int64) *Injector {
	return &Injector{seed: seed, points: make(map[Point]*pointState)}
}

// Seed returns the seed the injector was built from — log it loudly;
// it is the whole reproduction recipe.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Enable arms point with plan, replacing any previous plan and
// resetting the point's RNG stream and counters. The stream depends
// only on (seed, point), so two injectors built from the same seed and
// armed with the same plans make identical decision sequences.
func (in *Injector) Enable(p Point, plan Plan) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.points[p] = &pointState{
		plan: plan,
		rng:  rand.New(rand.NewSource(in.seed ^ int64(hashPoint(p)))),
	}
}

// Disable disarms point.
func (in *Injector) Disable(p Point) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.points, p)
}

// OnFire registers fn to be called (outside the injector's lock) each
// time any point fires — the hook the obs layer uses to count
// lnuca_fault_injected_total{point} without faultinject importing obs.
func (in *Injector) OnFire(fn func(Point)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.onFire = fn
}

// OnEvent registers fn to be called (outside the injector's lock) each
// time any point fires, carrying the trace ID of the request that
// tripped it when the call site knew one — the hook the flight recorder
// uses to correlate chaos with span trees. Both hooks fire on every
// event; OnFire remains for counters that only need the point.
func (in *Injector) OnEvent(fn func(Event)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.onEvent = fn
}

// At asks whether point should fail right now. Nil-safe: a nil
// injector, or an unarmed point, returns the zero (unfired) Outcome.
func (in *Injector) At(p Point) Outcome {
	return in.AtE(p, "")
}

// AtE is At with the trace ID of the operation being injected into,
// forwarded to the OnEvent hook. Instrumented sites that hold a trace
// context (HTTP transports and middlewares, the result cache's persist
// path) call this; sites with none call At.
func (in *Injector) AtE(p Point, traceID string) Outcome {
	if in == nil {
		return Outcome{Point: p}
	}
	in.mu.Lock()
	st := in.points[p]
	if st == nil {
		in.mu.Unlock()
		return Outcome{Point: p}
	}
	st.calls++
	fire := st.calls > uint64(st.plan.After) &&
		(st.plan.MaxFires == 0 || st.fires < uint64(st.plan.MaxFires)) &&
		(st.plan.Rate >= 1 || st.rng.Float64() < st.plan.Rate)
	var hook func(Point)
	var eventHook func(Event)
	if fire {
		st.fires++
		hook = in.onFire
		eventHook = in.onEvent
	}
	plan := st.plan
	in.mu.Unlock()
	if !fire {
		return Outcome{Point: p}
	}
	if hook != nil {
		hook(p)
	}
	if eventHook != nil {
		eventHook(Event{Point: p, TraceID: traceID})
	}
	return Outcome{
		Point:      p,
		Fired:      true,
		Err:        plan.Err,
		Tear:       plan.Tear,
		Delay:      plan.Delay,
		Status:     plan.Status,
		RetryAfter: plan.RetryAfter,
		DropBody:   plan.DropBody,
		AfterSend:  plan.AfterSend,
	}
}

// Calls returns how many times point has been consulted.
func (in *Injector) Calls(p Point) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st := in.points[p]; st != nil {
		return st.calls
	}
	return 0
}

// Fires returns how many times point has fired.
func (in *Injector) Fires(p Point) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st := in.points[p]; st != nil {
		return st.fires
	}
	return 0
}

// TotalFires sums fires across all points.
func (in *Injector) TotalFires() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, st := range in.points {
		n += st.fires
	}
	return n
}

// Describe renders the armed plans, sorted by point, for logs and
// failure artifacts. Two injectors with equal Describe() and equal
// seeds run identical schedules.
func (in *Injector) Describe() string {
	if in == nil {
		return "faultinject: off"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	names := make([]string, 0, len(in.points))
	for p := range in.points {
		names = append(names, string(p))
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", in.seed)
	for _, name := range names {
		st := in.points[Point(name)]
		fmt.Fprintf(&b, " %s{rate=%g", name, st.plan.Rate)
		if st.plan.After > 0 {
			fmt.Fprintf(&b, " after=%d", st.plan.After)
		}
		if st.plan.MaxFires > 0 {
			fmt.Fprintf(&b, " max=%d", st.plan.MaxFires)
		}
		if st.plan.Tear > 0 {
			fmt.Fprintf(&b, " tear=%g", st.plan.Tear)
		}
		if st.plan.Delay > 0 {
			fmt.Fprintf(&b, " delay=%s", st.plan.Delay)
		}
		if st.plan.Status != 0 {
			fmt.Fprintf(&b, " status=%d", st.plan.Status)
		}
		if st.plan.RetryAfter != 0 {
			fmt.Fprintf(&b, " retry_after=%ds", st.plan.RetryAfter)
		}
		if st.plan.DropBody {
			b.WriteString(" drop_body")
		}
		if st.plan.AfterSend {
			b.WriteString(" after_send")
		}
		b.WriteString("}")
	}
	return b.String()
}

// Points returns the armed points, sorted — the label set a metrics
// exporter should expect.
func (in *Injector) Points() []Point {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Point, 0, len(in.points))
	for p := range in.points {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// hashPoint folds a point name into the seed-stream offset. FNV-1a:
// stable across runs, platforms and Go versions, unlike maphash.
func hashPoint(p Point) uint64 {
	h := fnv.New64a()
	h.Write([]byte(p))
	return h.Sum64()
}

// Middleware wraps next with server-side HTTP fault injection: when
// point fires, the request is answered with the planned status (503 if
// the plan named none) and the real handler never runs. Firings are
// attributed to the incoming request's traceparent trace ID, so a
// chaos-injected 503 shows up as an event on the trace it failed.
func Middleware(next http.Handler, in *Injector, p Point) http.Handler {
	if in == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var traceID string
		if sc, ok := tracez.ParseHeader(r.Header.Get(tracez.HeaderName)); ok {
			traceID = sc.TraceID
		}
		out := in.AtE(p, traceID)
		out.Sleep(r.Context())
		if !out.Fired {
			next.ServeHTTP(w, r)
			return
		}
		status := out.Status
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		if out.RetryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", out.RetryAfter))
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		fmt.Fprintf(w, `{"error":"injected fault at %s"}`+"\n", p)
	})
}
