package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDeterministicSchedules: two injectors built from the same seed
// and armed with the same plans make byte-identical decision sequences,
// per point, regardless of which other points are armed — the property
// that makes a chaos schedule reproducible from its seed alone.
func TestDeterministicSchedules(t *testing.T) {
	record := func(arm func(*Injector)) []bool {
		in := New(42)
		arm(in)
		var seq []bool
		for i := 0; i < 200; i++ {
			seq = append(seq, in.At(PointCacheWrite).Fired)
		}
		return seq
	}
	baseline := record(func(in *Injector) {
		in.Enable(PointCacheWrite, Plan{Rate: 0.3})
	})
	// Same seed, extra unrelated points armed and exercised: the
	// cache_write stream must not shift.
	perturbed := func() []bool {
		in := New(42)
		in.Enable(PointCacheWrite, Plan{Rate: 0.3})
		in.Enable(PointWorkerCrash, Plan{Rate: 0.9})
		in.Enable(PointJournalAppend, Plan{Rate: 0.5})
		var seq []bool
		for i := 0; i < 200; i++ {
			in.At(PointWorkerCrash)
			seq = append(seq, in.At(PointCacheWrite).Fired)
			in.At(PointJournalAppend)
		}
		return seq
	}()
	if len(baseline) != len(perturbed) {
		t.Fatal("sequence lengths differ")
	}
	for i := range baseline {
		if baseline[i] != perturbed[i] {
			t.Fatalf("decision %d diverged with unrelated points armed: %v vs %v", i, baseline[i], perturbed[i])
		}
	}
	// A different seed must actually produce a different schedule.
	other := func() []bool {
		in := New(43)
		in.Enable(PointCacheWrite, Plan{Rate: 0.3})
		var seq []bool
		for i := 0; i < 200; i++ {
			seq = append(seq, in.At(PointCacheWrite).Fired)
		}
		return seq
	}()
	same := true
	for i := range baseline {
		if baseline[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 200-call schedules")
	}
}

// TestPlanGates pins After / MaxFires / Rate>=1 semantics and the
// call/fire counters.
func TestPlanGates(t *testing.T) {
	in := New(7)
	in.Enable(PointJournalAppend, Plan{Rate: 1, After: 3, MaxFires: 2})
	var fired int
	for i := 0; i < 10; i++ {
		if in.At(PointJournalAppend).Fired {
			fired++
			if i < 3 {
				t.Fatalf("fired on call %d, inside After=3 warmup", i)
			}
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want MaxFires=2", fired)
	}
	if in.Calls(PointJournalAppend) != 10 || in.Fires(PointJournalAppend) != 2 {
		t.Fatalf("calls=%d fires=%d, want 10/2", in.Calls(PointJournalAppend), in.Fires(PointJournalAppend))
	}
	if in.TotalFires() != 2 {
		t.Fatalf("TotalFires=%d, want 2", in.TotalFires())
	}
}

// TestNilAndUnarmed: a nil injector and an unarmed point are both
// inert and never fire.
func TestNilAndUnarmed(t *testing.T) {
	var nilIn *Injector
	if out := nilIn.At(PointCacheWrite); out.Fired {
		t.Fatal("nil injector fired")
	}
	if nilIn.Seed() != 0 || nilIn.TotalFires() != 0 || nilIn.Describe() != "faultinject: off" {
		t.Fatal("nil injector accessors not inert")
	}
	in := New(1)
	in.Enable(PointCacheWrite, Plan{Rate: 1})
	if out := in.At(PointTraceWrite); out.Fired {
		t.Fatal("unarmed point fired")
	}
}

// TestOnFireHook: the hook sees every fire with its point — the
// contract the lnuca_fault_injected_total{point} exporter relies on.
func TestOnFireHook(t *testing.T) {
	in := New(9)
	counts := map[Point]int{}
	in.OnFire(func(p Point) { counts[p]++ })
	in.Enable(PointWorkerCrash, Plan{Rate: 1, MaxFires: 3})
	for i := 0; i < 5; i++ {
		in.At(PointWorkerCrash)
	}
	if counts[PointWorkerCrash] != 3 {
		t.Fatalf("hook saw %d fires, want 3", counts[PointWorkerCrash])
	}
}

// TestOnEventHook: every fire produces exactly one event, carrying the
// trace ID the call site supplied — the contract the flight recorder's
// chaos correlation relies on.
func TestOnEventHook(t *testing.T) {
	in := New(9)
	var fires, events int
	var lastTrace string
	in.OnFire(func(Point) { fires++ })
	in.OnEvent(func(e Event) {
		events++
		lastTrace = e.TraceID
		if e.Point != PointCacheWrite {
			t.Errorf("event point = %s", e.Point)
		}
	})
	in.Enable(PointCacheWrite, Plan{Rate: 1, MaxFires: 3})
	in.At(PointCacheWrite)
	in.AtE(PointCacheWrite, "deadbeefdeadbeefdeadbeefdeadbeef")
	in.AtE(PointCacheWrite, "cafe0000cafe0000cafe0000cafe0000")
	in.At(PointCacheWrite) // past MaxFires: no event
	if fires != 3 || events != 3 {
		t.Fatalf("fires=%d events=%d, want 3/3 — every counted fire must have an event", fires, events)
	}
	if lastTrace != "cafe0000cafe0000cafe0000cafe0000" {
		t.Fatalf("event trace id = %q", lastTrace)
	}
}

// TestMiddlewareTraceAttribution: a server-side firing is attributed to
// the incoming request's traceparent trace ID.
func TestMiddlewareTraceAttribution(t *testing.T) {
	in := New(11)
	in.Enable(PointCoordHTTP, Plan{Rate: 1, MaxFires: 1})
	var got Event
	in.OnEvent(func(e Event) { got = e })
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}), in, PointCoordHTTP)
	traceID := "0123456789abcdef0123456789abcdef"
	req := httptest.NewRequest("POST", "/v1/jobs", nil)
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("injected status = %d", rr.Code)
	}
	if got.Point != PointCoordHTTP || got.TraceID != traceID {
		t.Fatalf("event = %+v, want coord_http on trace %s", got, traceID)
	}
}

// TestTransportTraceAttribution: a client-side firing is attributed to
// the outgoing request's traceparent trace ID.
func TestTransportTraceAttribution(t *testing.T) {
	in := New(12)
	in.Enable(PointWorkerHTTP, Plan{Rate: 1, MaxFires: 1})
	var got Event
	in.OnEvent(func(e Event) { got = e })
	client := &http.Client{Transport: &Transport{Injector: in, Point: PointWorkerHTTP}}
	traceID := "fedcba9876543210fedcba9876543210"
	req, _ := http.NewRequest("GET", "http://127.0.0.1:0/fleet/v1/lease", nil)
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	if _, err := client.Do(req); err == nil {
		t.Fatal("injected connection refusal did not error")
	}
	if got.Point != PointWorkerHTTP || got.TraceID != traceID {
		t.Fatalf("event = %+v, want worker_http on trace %s", got, traceID)
	}
}

// TestOutcomeDefaults: a bare plan injects ErrInjected; a planned error
// is passed through.
func TestOutcomeDefaults(t *testing.T) {
	in := New(2)
	in.Enable(PointCacheWrite, Plan{Rate: 1})
	if err := in.At(PointCacheWrite).ErrOrDefault(); !errors.Is(err, ErrInjected) {
		t.Fatalf("bare plan error = %v, want ErrInjected", err)
	}
	custom := errors.New("disk full")
	in.Enable(PointCacheWrite, Plan{Rate: 1, Err: custom})
	if err := in.At(PointCacheWrite).ErrOrDefault(); !errors.Is(err, custom) {
		t.Fatalf("planned error = %v, want %v", err, custom)
	}
}

// TestTransportStatus: a Status plan synthesizes the response without
// touching the server, including Retry-After.
func TestTransportStatus(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { hits++ }))
	defer srv.Close()

	in := New(3)
	in.Enable(PointClientHTTP, Plan{Rate: 1, MaxFires: 1, Status: 429, RetryAfter: 7})
	client := &http.Client{Transport: &Transport{Injector: in, Point: PointClientHTTP}}

	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 429 || resp.Header.Get("Retry-After") != "7" {
		t.Fatalf("synthesized response = %d retry-after=%q, want 429/7", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if hits != 0 {
		t.Fatalf("server saw %d requests during synthesized 429, want 0", hits)
	}
	// MaxFires exhausted: passes through.
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || hits != 1 {
		t.Fatalf("pass-through = %d hits=%d, want 200/1", resp.StatusCode, hits)
	}
}

// TestTransportAfterSend: the server processes the request but the
// client sees a transport error — the ambiguous-failure case.
func TestTransportAfterSend(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	in := New(4)
	in.Enable(PointWorkerHTTP, Plan{Rate: 1, MaxFires: 1, AfterSend: true})
	client := &http.Client{Transport: &Transport{Injector: in, Point: PointWorkerHTTP}}
	_, err := client.Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("after-send error = %v, want wrapped ErrInjected", err)
	}
	if hits != 1 {
		t.Fatalf("server saw %d requests, want 1 (request must land before the response is lost)", hits)
	}
}

// TestTransportDropBody: headers arrive, the body read fails partway.
func TestTransportDropBody(t *testing.T) {
	payload := strings.Repeat("x", 4096)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer srv.Close()

	in := New(5)
	in.Enable(PointClientHTTP, Plan{Rate: 1, DropBody: true})
	client := &http.Client{Transport: &Transport{Injector: in, Point: PointClientHTTP}}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("full body read through a DropBody fault")
	}
	if len(body) >= len(payload) {
		t.Fatalf("read %d bytes of %d before the drop, want a strict prefix", len(body), len(payload))
	}
}

// TestTransportConnectionRefused: a bare plan is a transport error; the
// server never sees it.
func TestTransportConnectionRefused(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { hits++ }))
	defer srv.Close()

	in := New(6)
	in.Enable(PointClientHTTP, Plan{Rate: 1})
	client := &http.Client{Transport: &Transport{Injector: in, Point: PointClientHTTP}}
	if _, err := client.Get(srv.URL); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("refused error = %v, want wrapped ErrInjected", err)
	}
	if hits != 0 {
		t.Fatalf("server saw %d requests through a refused connection", hits)
	}
}

// TestMiddleware: server-side injection answers before the handler and
// disarms cleanly.
func TestMiddleware(t *testing.T) {
	var hits int
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { hits++ })
	in := New(8)
	in.Enable(PointCoordHTTP, Plan{Rate: 1, MaxFires: 1, Status: 503})
	srv := httptest.NewServer(Middleware(inner, in, PointCoordHTTP))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || hits != 0 {
		t.Fatalf("injected middleware response = %d hits=%d, want 503/0", resp.StatusCode, hits)
	}
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || hits != 1 {
		t.Fatalf("pass-through = %d hits=%d, want 200/1", resp.StatusCode, hits)
	}
}

// TestDescribeStable: Describe is deterministic and sorted, so failure
// artifacts comparing two runs of one seed compare equal.
func TestDescribeStable(t *testing.T) {
	mk := func() *Injector {
		in := New(11)
		in.Enable(PointWorkerStall, Plan{Rate: 0.5, Delay: 200 * time.Millisecond})
		in.Enable(PointCacheWrite, Plan{Rate: 0.1, Tear: 0.5, MaxFires: 2})
		return in
	}
	a, b := mk().Describe(), mk().Describe()
	if a != b {
		t.Fatalf("Describe unstable:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "seed=11") || !strings.Contains(a, "cache_write{") {
		t.Fatalf("Describe missing fields: %s", a)
	}
}
