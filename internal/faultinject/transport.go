package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"

	"repro/internal/obs/tracez"
)

// Transport is an http.RoundTripper that consults one injection point
// before (and, for AfterSend/DropBody plans, after) delegating to Base.
// It models the client-visible failure taxonomy:
//
//   - plain Err (or a bare plan): connection refused — the request
//     never reaches the server;
//   - Status: the server answers with a synthesized 5xx/429 (plus
//     Retry-After when planned) and the request never reaches the real
//     server;
//   - AfterSend: the request DOES reach the server, whose response is
//     then lost — the ambiguous failure that forces idempotency;
//   - DropBody: headers arrive, then the body is severed mid-read;
//   - Delay: injected latency before any of the above, or before a
//     clean pass-through.
type Transport struct {
	Base     http.RoundTripper
	Injector *Injector
	Point    Point
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper. Firings are attributed to
// the outgoing request's traceparent trace ID when one is set.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	var traceID string
	if sc, ok := tracez.ParseHeader(req.Header.Get(tracez.HeaderName)); ok {
		traceID = sc.TraceID
	}
	out := t.Injector.AtE(t.Point, traceID)
	if err := out.Sleep(req.Context()); err != nil {
		return nil, err
	}
	if !out.Fired {
		return t.base().RoundTrip(req)
	}
	switch {
	case out.Status != 0:
		// The request never reaches the server; close its body as a
		// real transport would.
		if req.Body != nil {
			req.Body.Close()
		}
		hdr := http.Header{"Content-Type": []string{"application/json"}}
		if out.RetryAfter > 0 {
			hdr.Set("Retry-After", fmt.Sprintf("%d", out.RetryAfter))
		}
		body := fmt.Sprintf(`{"error":"injected %d at %s"}`+"\n", out.Status, t.Point)
		return &http.Response{
			Status:        fmt.Sprintf("%d %s", out.Status, http.StatusText(out.Status)),
			StatusCode:    out.Status,
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        hdr,
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case out.AfterSend:
		// Deliver the request, then lose the response.
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("faultinject: %s: response lost after send: %w", t.Point, out.ErrOrDefault())
	case out.DropBody:
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &droppedBody{rc: resp.Body, point: t.Point, remain: resp.ContentLength / 2}
		return resp, nil
	default:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("faultinject: %s: connection refused: %w", t.Point, out.ErrOrDefault())
	}
}

// droppedBody yields roughly half the response body, then fails the
// read — a connection severed after headers.
type droppedBody struct {
	rc     io.ReadCloser
	point  Point
	remain int64
}

func (d *droppedBody) Read(p []byte) (int, error) {
	if d.remain <= 0 {
		return 0, fmt.Errorf("faultinject: %s: body dropped mid-read: %w", d.point, ErrInjected)
	}
	if int64(len(p)) > d.remain {
		p = p[:d.remain]
	}
	n, err := d.rc.Read(p)
	d.remain -= int64(n)
	if err == io.EOF {
		return n, err
	}
	if d.remain <= 0 && err == nil {
		err = fmt.Errorf("faultinject: %s: body dropped mid-read: %w", d.point, ErrInjected)
	}
	return n, err
}

func (d *droppedBody) Close() error { return d.rc.Close() }
