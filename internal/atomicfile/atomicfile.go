// Package atomicfile is the one implementation of the repo's atomic
// persist idiom — write to a uniquely named dot-temp in the target
// directory, optionally fsync, rename over the destination — shared by
// the result cache, the trace store and the queue journal's compaction.
// Centralizing it buys two things: a single place to thread
// deterministic fault injection through every durable write (torn temp
// files, failed fsync, failed rename), and a single definition of what
// a temp file looks like, so the crash-orphan sweep below can never
// disagree with the writer about what is safe to delete.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/faultinject"
)

// tmpInfix marks our temp files: ".<base>.tmp-<random>". The leading
// dot keeps them out of naive directory globs; the infix is what
// SweepOrphans keys on.
const tmpInfix = ".tmp-"

// Options tunes one atomic write.
type Options struct {
	// Sync fsyncs the temp file before the rename, for files whose loss
	// after a positive acknowledgement is unacceptable.
	Sync bool
	// Faults, when armed at Point, makes this write fail the way a
	// crashed or sick writer would: a torn temp file, a write error, a
	// failed rename — always leaving the debris a real crash leaves.
	// A nil injector is inert.
	Faults *faultinject.Injector
	Point  faultinject.Point
	// TraceID, when the write happens on behalf of a traced request,
	// attributes an injected failure to that trace in the fault-event
	// stream. Empty is fine: the firing is recorded unattributed.
	TraceID string
}

// Write atomically replaces path with data: temp file in the same
// directory (unique per writer, so concurrent writers of one key never
// clobber each other's half-written file), optional fsync, rename.
// On injected failure the temp debris is deliberately left behind —
// that is the crash being simulated, and what SweepOrphans exists to
// clean; on real failure the temp is best-effort removed as before.
func Write(path string, data []byte, opts Options) error {
	dir := filepath.Dir(path)
	base := filepath.Base(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+base+tmpInfix+"*")
	if err != nil {
		return err
	}
	if out := opts.Faults.AtE(opts.Point, opts.TraceID); out.Fired {
		payload := data
		if out.Tear > 0 {
			n := int(out.Tear * float64(len(data)))
			if n >= len(data) {
				n = len(data) - 1
			}
			if n < 0 {
				n = 0
			}
			payload = data[:n]
		}
		tmp.Write(payload)
		tmp.Close()
		// Debris stays: a writer that died between create and rename.
		return fmt.Errorf("atomicfile: %s: %w", path, out.ErrOrDefault())
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if opts.Sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// IsTemp reports whether a directory-entry name looks like one of our
// in-progress temp files.
func IsTemp(name string) bool {
	return strings.HasPrefix(name, ".") && strings.Contains(name, tmpInfix)
}

// SweepOrphans removes temp files in dir older than grace — debris from
// writers killed between create and rename. The grace window keeps the
// sweep safe against live writers in other processes: anything younger
// might still be renamed into place. A missing directory is an empty
// one. Returns the removed names, sorted, for logging.
func SweepOrphans(dir string, grace time.Duration) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	//lnuca:allow(determinism) orphan age is an operational disk-hygiene cutoff, never result content
	now := time.Now()
	var removed []string
	for _, e := range entries {
		if e.IsDir() || !IsTemp(e.Name()) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if now.Sub(info.ModTime()) < grace {
			continue // possibly a live writer in another process
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err == nil {
			removed = append(removed, e.Name())
		}
	}
	sort.Strings(removed)
	return removed, nil
}
