package atomicfile

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func readDirNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

// TestWriteAtomic: a plain write lands the exact bytes and leaves no
// temp debris; a rewrite replaces them.
func TestWriteAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.json")
	if err := Write(path, []byte("v1"), Options{Sync: true}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("content = %q, want v1", got)
	}
	if err := Write(path, []byte("v2"), Options{}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2" {
		t.Fatalf("content after rewrite = %q, want v2", got)
	}
	if names := readDirNames(t, dir); len(names) != 1 {
		t.Fatalf("directory holds %v, want only the entry", names)
	}
}

// TestWriteCreatesDirectory: the target directory is made on demand,
// like the stores' previous inline writers did.
func TestWriteCreatesDirectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deep", "nested", "f.json")
	if err := Write(path, []byte("x"), Options{}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "x" {
		t.Fatalf("content = %q", got)
	}
}

// TestInjectedTornWrite: a Tear fault persists a strict prefix to the
// temp file, fails the write, never touches the destination — and
// leaves the debris a crashed writer leaves.
func TestInjectedTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.json")
	in := faultinject.New(1)
	in.Enable(faultinject.PointCacheWrite, faultinject.Plan{Rate: 1, Tear: 0.5})

	data := []byte(strings.Repeat("payload!", 64))
	err := Write(path, data, Options{Faults: in, Point: faultinject.PointCacheWrite})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatal("destination exists after torn write")
	}
	names := readDirNames(t, dir)
	if len(names) != 1 || !IsTemp(names[0]) {
		t.Fatalf("debris = %v, want exactly one temp file", names)
	}
	debris, _ := os.ReadFile(filepath.Join(dir, names[0]))
	if len(debris) >= len(data) || len(debris) == 0 {
		t.Fatalf("debris holds %d of %d bytes, want a strict non-empty prefix", len(debris), len(data))
	}
}

// TestInjectedRenameFailure: a bare fault (no Tear) writes the full
// temp then fails before the rename — complete debris, no destination.
func TestInjectedRenameFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.json")
	in := faultinject.New(2)
	in.Enable(faultinject.PointTraceWrite, faultinject.Plan{Rate: 1, MaxFires: 1})

	if err := Write(path, []byte("abc"), Options{Faults: in, Point: faultinject.PointTraceWrite}); err == nil {
		t.Fatal("injected rename failure returned nil")
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatal("destination exists after failed rename")
	}
	// The fault budget is spent: the retry succeeds and the orphan from
	// the failed attempt is still there for the sweep to find.
	if err := Write(path, []byte("abc"), Options{Faults: in, Point: faultinject.PointTraceWrite}); err != nil {
		t.Fatal(err)
	}
	var orphans int
	for _, name := range readDirNames(t, dir) {
		if IsTemp(name) {
			orphans++
		}
	}
	if orphans != 1 {
		t.Fatalf("orphans = %d, want 1", orphans)
	}
}

// TestSweepOrphans: only temp files past the grace window go; fresh
// temps (a live writer) and real entries stay; missing dir is fine.
func TestSweepOrphans(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	write("entry.json", "real")
	stale := write(".entry.json.tmp-123", "half")
	write(".other.json.tmp-456", "fresh")
	write(".hidden", "not ours") // dotfile without the temp infix
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	removed, err := SweepOrphans(dir, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != ".entry.json.tmp-123" {
		t.Fatalf("removed = %v, want the one stale orphan", removed)
	}
	names := readDirNames(t, dir)
	if len(names) != 3 {
		t.Fatalf("survivors = %v, want entry + fresh temp + dotfile", names)
	}

	if removed, err := SweepOrphans(filepath.Join(dir, "missing"), time.Hour); err != nil || removed != nil {
		t.Fatalf("missing dir sweep = %v, %v; want nil, nil", removed, err)
	}
}
