package pqueue

import (
	"math/rand"
	"sort"
	"testing"
)

type item struct {
	prio int
	seq  int
	idx  int
}

func newIntQueue() *Queue[*item] {
	return New(func(a, b *item) bool {
		if a.prio != b.prio {
			return a.prio > b.prio // higher priority pops first
		}
		return a.seq < b.seq
	}, func(it *item, idx int) { it.idx = idx })
}

func TestOrdering(t *testing.T) {
	q := newIntQueue()
	in := []*item{
		{prio: 1, seq: 0}, {prio: 3, seq: 1}, {prio: 2, seq: 2},
		{prio: 3, seq: 3}, {prio: 1, seq: 4},
	}
	for _, it := range in {
		q.Push(it)
	}
	want := []int{1, 3, 2, 0, 4} // by (prio desc, seq asc)
	for i, wseq := range want {
		got, ok := q.Pop()
		if !ok || got.seq != wseq {
			t.Fatalf("pop %d: got seq %d ok=%v, want %d", i, got.seq, ok, wseq)
		}
		if got.idx != -1 {
			t.Fatalf("popped item still has heap index %d", got.idx)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
}

func TestPeek(t *testing.T) {
	q := newIntQueue()
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue reported ok")
	}
	q.Push(&item{prio: 1, seq: 0})
	q.Push(&item{prio: 5, seq: 1})
	top, ok := q.Peek()
	if !ok || top.seq != 1 {
		t.Fatalf("Peek = seq %d ok=%v, want seq 1", top.seq, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("Peek consumed an item: len %d", q.Len())
	}
}

func TestRemoveAt(t *testing.T) {
	q := newIntQueue()
	items := make([]*item, 10)
	for i := range items {
		items[i] = &item{prio: i % 3, seq: i}
		q.Push(items[i])
	}
	// Remove one from the middle via its tracked index.
	victim := items[4]
	removed := q.RemoveAt(victim.idx)
	if removed != victim {
		t.Fatalf("RemoveAt returned seq %d, want %d", removed.seq, victim.seq)
	}
	if victim.idx != -1 {
		t.Fatalf("removed item keeps index %d", victim.idx)
	}
	var got []int
	for {
		it, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, it.seq)
	}
	if len(got) != 9 {
		t.Fatalf("expected 9 remaining items, got %d", len(got))
	}
	for _, seq := range got {
		if seq == victim.seq {
			t.Fatalf("removed item seq %d still popped", victim.seq)
		}
	}
}

// TestRandomizedAgainstSort pushes and pops in random interleavings and
// checks every pop returns the current minimum of a mirrored slice.
func TestRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	q := newIntQueue()
	var mirror []*item
	seq := 0
	popMin := func() *item {
		sort.SliceStable(mirror, func(i, j int) bool {
			if mirror[i].prio != mirror[j].prio {
				return mirror[i].prio > mirror[j].prio
			}
			return mirror[i].seq < mirror[j].seq
		})
		m := mirror[0]
		mirror = mirror[1:]
		return m
	}
	for step := 0; step < 2000; step++ {
		if len(mirror) == 0 || rng.Intn(2) == 0 {
			it := &item{prio: rng.Intn(5), seq: seq}
			seq++
			q.Push(it)
			mirror = append(mirror, it)
			continue
		}
		want := popMin()
		got, ok := q.Pop()
		if !ok || got != want {
			t.Fatalf("step %d: pop = seq %d (ok=%v), want seq %d", step, got.seq, ok, want.seq)
		}
	}
	for len(mirror) > 0 {
		want := popMin()
		got, ok := q.Pop()
		if !ok || got != want {
			t.Fatalf("drain: pop = seq %d (ok=%v), want seq %d", got.seq, ok, want.seq)
		}
	}
}

// TestIndexTrackingUnderChurn verifies the setIndex callback keeps
// every live item's index accurate through pushes, pops and removals.
func TestIndexTrackingUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := newIntQueue()
	live := map[*item]bool{}
	seq := 0
	check := func() {
		n := 0
		for it := range live {
			if it.idx < 0 || it.idx >= q.Len() {
				t.Fatalf("live item seq %d has out-of-range index %d (len %d)", it.seq, it.idx, q.Len())
			}
			n++
		}
		if n != q.Len() {
			t.Fatalf("live set %d != queue len %d", n, q.Len())
		}
	}
	for step := 0; step < 1000; step++ {
		switch {
		case len(live) == 0 || rng.Intn(3) == 0:
			it := &item{prio: rng.Intn(4), seq: seq}
			seq++
			q.Push(it)
			live[it] = true
		case rng.Intn(2) == 0:
			it, ok := q.Pop()
			if !ok {
				t.Fatal("pop on non-empty queue failed")
			}
			delete(live, it)
		default:
			// Remove a random live item through its tracked index.
			for it := range live {
				q.RemoveAt(it.idx)
				delete(live, it)
				break
			}
		}
		check()
	}
}
