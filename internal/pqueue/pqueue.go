// Package pqueue is a small generic binary-heap priority queue with
// index tracking, extracted from the orchestrator's task heap so the
// fleet coordinator's pending queue and the orchestrator's job queue
// share one implementation.
//
// The queue is not safe for concurrent use; callers guard it with their
// own mutex (both the orchestrator and the fleet coordinator already
// hold one across every queue operation).
package pqueue

// Queue is a binary heap ordered by less (true when a must pop before
// b). When setIndex is non-nil it is called with every item's current
// heap position (or -1 on removal), which lets callers remove an
// arbitrary item in O(log n) without searching.
type Queue[T any] struct {
	less     func(a, b T) bool
	setIndex func(item T, idx int)
	items    []T
}

// New returns an empty queue. less must be a strict ordering; setIndex
// may be nil when callers never remove from the middle.
func New[T any](less func(a, b T) bool, setIndex func(item T, idx int)) *Queue[T] {
	return &Queue[T]{less: less, setIndex: setIndex}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push adds an item.
func (q *Queue[T]) Push(item T) {
	q.items = append(q.items, item)
	i := len(q.items) - 1
	q.notify(item, i)
	q.up(i)
}

// Peek returns the item that Pop would return, without removing it.
// ok is false on an empty queue.
func (q *Queue[T]) Peek() (item T, ok bool) {
	if len(q.items) == 0 {
		return item, false
	}
	return q.items[0], true
}

// Pop removes and returns the least item (per less). ok is false on an
// empty queue.
func (q *Queue[T]) Pop() (item T, ok bool) {
	if len(q.items) == 0 {
		return item, false
	}
	return q.RemoveAt(0), true
}

// RemoveAt removes and returns the item at heap index i (as reported
// through setIndex). It panics when i is out of range, mirroring slice
// indexing.
func (q *Queue[T]) RemoveAt(i int) T {
	n := len(q.items) - 1
	item := q.items[i]
	if i != n {
		q.items[i] = q.items[n]
		q.notify(q.items[i], i)
	}
	var zero T
	q.items[n] = zero
	q.items = q.items[:n]
	if i != n {
		if !q.up(i) {
			q.down(i)
		}
	}
	q.notify(item, -1)
	return item
}

func (q *Queue[T]) notify(item T, idx int) {
	if q.setIndex != nil {
		q.setIndex(item, idx)
	}
}

// up sifts the item at i toward the root; it reports whether the item
// moved.
func (q *Queue[T]) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.items[i], q.items[parent]) {
			break
		}
		q.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

// down sifts the item at i toward the leaves.
func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && q.less(q.items[right], q.items[left]) {
			least = right
		}
		if !q.less(q.items[least], q.items[i]) {
			return
		}
		q.swap(i, least)
		i = least
	}
}

func (q *Queue[T]) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.notify(q.items[i], i)
	q.notify(q.items[j], j)
}
