package sim

import "testing"

// tickComp is a Quiescent test component: it "acts" at scheduled
// cycles, counts Evals and skipped cycles, and is idle in between.
type tickComp struct {
	name     string
	events   []Cycle // sorted cycles at which the component is active
	evals    uint64
	idleSeen uint64 // cycles covered by SkipTo
}

func (c *tickComp) Name() string     { return c.name }
func (c *tickComp) Commit(k *Kernel) {}
func (c *tickComp) Eval(k *Kernel) {
	c.evals++
	for len(c.events) > 0 && c.events[0] <= k.Cycle() {
		c.events = c.events[1:]
	}
}
func (c *tickComp) NextEvent(now Cycle) (Cycle, bool) {
	if len(c.events) == 0 {
		return Never, true
	}
	if c.events[0] <= now {
		return 0, false
	}
	return c.events[0], true
}
func (c *tickComp) SkipTo(now, target Cycle) { c.idleSeen += target - now }

// plainComp does not implement Quiescent.
type plainComp struct{ evals uint64 }

func (c *plainComp) Name() string     { return "plain" }
func (c *plainComp) Eval(k *Kernel)   { c.evals++ }
func (c *plainComp) Commit(k *Kernel) {}

// TestFastForwardSkipsToEarliestWake: with every component quiescent,
// Run jumps straight between event cycles and accounts the skipped
// cycles via SkipTo.
func TestFastForwardSkipsToEarliestWake(t *testing.T) {
	a := &tickComp{name: "a", events: []Cycle{10, 500}}
	b := &tickComp{name: "b", events: []Cycle{300}}
	k := NewKernel()
	k.MustRegister(a)
	k.MustRegister(b)
	ran := k.Run(1000)
	if ran != 1000 {
		t.Fatalf("ran %d cycles, want 1000", ran)
	}
	if k.SkippedCycles == 0 || k.FastForwards == 0 {
		t.Fatalf("no fast-forwarding happened: skipped=%d jumps=%d", k.SkippedCycles, k.FastForwards)
	}
	// Each component's view of time must be complete: evaluated cycles
	// plus skipped cycles cover the whole window.
	for _, c := range []*tickComp{a, b} {
		if got := c.evals + c.idleSeen; got != 1000 {
			t.Errorf("%s: evals(%d) + skipped(%d) = %d, want 1000", c.name, c.evals, c.idleSeen, got)
		}
	}
	// b is active only around cycle 300; the bulk of its cycles must
	// have been skipped, not evaluated.
	if b.evals > 10 {
		t.Errorf("b evaluated %d cycles; expected almost all to be skipped or Eval-skipped", b.evals)
	}
}

// TestFastForwardClampsToBudget: a wake beyond the Run budget must not
// overshoot the requested cycle count.
func TestFastForwardClampsToBudget(t *testing.T) {
	a := &tickComp{name: "a", events: []Cycle{5000}}
	k := NewKernel()
	k.MustRegister(a)
	if ran := k.Run(100); ran != 100 {
		t.Fatalf("ran %d cycles, want exactly the 100-cycle budget", ran)
	}
	if k.Cycle() != 100 {
		t.Fatalf("clock at %d, want 100", k.Cycle())
	}
	if a.idleSeen != 100 {
		t.Fatalf("component skipped %d cycles, want 100", a.idleSeen)
	}
}

// TestActiveSetSkipsIdleEvals: while one component is active every
// cycle, an idle peer must advance arithmetically instead of being
// evaluated.
func TestActiveSetSkipsIdleEvals(t *testing.T) {
	busy := &tickComp{name: "busy"}
	for c := Cycle(0); c < 200; c++ {
		busy.events = append(busy.events, c)
	}
	idle := &tickComp{name: "idle"}
	k := NewKernel()
	k.MustRegister(busy)
	k.MustRegister(idle)
	if ran := k.Run(200); ran != 200 {
		t.Fatalf("ran %d, want 200", ran)
	}
	if busy.evals != 200 {
		t.Errorf("busy evaluated %d cycles, want 200", busy.evals)
	}
	if idle.evals != 0 || idle.idleSeen != 200 {
		t.Errorf("idle: evals=%d skipped=%d, want 0/200", idle.evals, idle.idleSeen)
	}
	if k.EvalsSkipped != 200 {
		t.Errorf("kernel recorded %d skipped Evals, want 200", k.EvalsSkipped)
	}
}

// TestGatingDisabledFallsBackToLockstep: SetGating(false) and mixed
// component sets must take the plain Step path.
func TestGatingDisabledFallsBackToLockstep(t *testing.T) {
	a := &tickComp{name: "a", events: []Cycle{900}}
	k := NewKernel()
	k.SetGating(false)
	k.MustRegister(a)
	k.Run(100)
	if a.evals != 100 || k.SkippedCycles != 0 {
		t.Errorf("gating disabled: evals=%d skipped=%d, want 100/0", a.evals, k.SkippedCycles)
	}

	b := &tickComp{name: "b", events: nil}
	k2 := NewKernel()
	k2.MustRegister(b)
	k2.MustRegister(&plainComp{}) // not Quiescent: machine can never gate
	k2.Run(100)
	if b.evals != 100 || k2.SkippedCycles != 0 {
		t.Errorf("mixed set: evals=%d skipped=%d, want 100/0", b.evals, k2.SkippedCycles)
	}
}

// TestQueueRingSemantics pins FIFO order, wraparound reuse and At
// indexing of the ring queue the hot loops rely on.
func TestQueueRingSemantics(t *testing.T) {
	var q Queue[int]
	if _, ok := q.Pop(); ok {
		t.Fatal("empty queue popped a value")
	}
	// Interleave pushes and pops across several wraps.
	next, expect := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < q.Len(); i++ {
			if got := q.At(i); got != expect+i {
				t.Fatalf("At(%d) = %d, want %d", i, got, expect+i)
			}
		}
		for i := 0; i < 2; i++ {
			v, ok := q.Pop()
			if !ok || v != expect {
				t.Fatalf("Pop = %d,%v want %d", v, ok, expect)
			}
			expect++
		}
	}
	for q.Len() > 0 {
		v, _ := q.Pop()
		if v != expect {
			t.Fatalf("drain got %d want %d", v, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained to %d, want %d", expect, next)
	}
}
