// Package sim implements the deterministic cycle-driven simulation kernel.
//
// The kernel advances all registered components in lockstep using a
// two-phase clock, the standard discipline of RTL simulators: during Eval a
// component reads only the *current* (latched) state of the system and
// computes its next state; during Commit every component atomically latches
// next state into current state. Because Eval never observes another
// component's next state, results are independent of registration order and
// the simulation is exactly reproducible.
package sim

import (
	"fmt"
	"sync/atomic"
)

// Cycle is a simulation timestamp in processor clock cycles.
type Cycle = uint64

// Never is the sentinel wake cycle of a component that is idle until
// external input arrives: no timed event of its own will ever wake it.
const Never = ^Cycle(0)

// Component is a clocked hardware block.
type Component interface {
	// Name identifies the component in traces and error messages.
	Name() string
	// Eval computes the component's next state for the current cycle. It
	// must only read latched state (its own and other components').
	Eval(k *Kernel)
	// Commit latches next state computed by Eval into current state.
	Commit(k *Kernel)
}

// Quiescent is the optional activity-gating protocol. A component that
// implements it lets the kernel skip cycles in which the whole machine
// is provably doing nothing (e.g. every level stalled on a DRAM access)
// by bulk-advancing the clock instead of spinning no-op Steps.
//
// The contract (see DESIGN.md, "Quiescence and fast-forward"):
//
//   - NextEvent(now) returns idle=true only if, absent any new input on
//     the component's inbound channels, Eval at every cycle in
//     [now, wake) would change NOTHING except the purely arithmetic
//     per-cycle bookkeeping that SkipTo replicates (cycle counters,
//     stall counters). wake may be conservatively early — Eval at wake
//     runs normally — but never late. Never means "only external input
//     wakes me".
//   - NextEvent must not mutate any state that affects simulation
//     results (in particular it must not draw from seeded RNGs).
//   - SkipTo(now, target) applies exactly the bookkeeping that
//     target-now idle Evals would have applied. The kernel calls it
//     only immediately after a NextEvent poll in which this component
//     reported idle: for multi-cycle skips every component was idle
//     (nothing pushes, so nothing new becomes visible); for a
//     single-cycle Eval skip on a partially-active cycle, the premise
//     holds because pushes stage until Commit — no input becomes
//     visible mid-cycle.
//
// Because two-phase channels publish pushes only at Commit, a component
// that is idle at the start of a cycle cannot receive mid-cycle input;
// all-idle rounds are therefore sound to skip, and gated and ungated
// runs produce bit-identical statistics.
type Quiescent interface {
	Component
	NextEvent(now Cycle) (wake Cycle, idle bool)
	SkipTo(now, target Cycle)
}

// Probe observes kernel progress for metrics and telemetry. The hot
// loop nil-checks it before every call, so an unprobed kernel pays one
// predictable branch per cycle and nothing else; a probed kernel pays
// one interface call with scalar arguments — no allocation either way
// (hier.BenchmarkStepAllocs pins 0 allocs/cycle with a probe attached).
//
// Implementations must not block and must not mutate simulation state;
// they see activity, they do not steer it.
type Probe interface {
	// OnCycle fires once per executed (non-skipped) cycle with the
	// number of components that evaluated and the total registered.
	// Fully-stepped cycles report active == total.
	OnCycle(active, total int)
	// OnFastForward fires on each bulk clock advance covering [from, to).
	OnFastForward(from, to Cycle)
}

// Kernel owns the clock and the component list.
type Kernel struct {
	cycle      Cycle
	components []Component
	quiescent  []Quiescent
	names      map[string]bool
	stopped    bool
	gating     bool
	probe      Probe

	// idle is the per-poll active-set scratch, reused across cycles.
	idle []bool

	// FastForwards counts bulk clock advances; SkippedCycles counts the
	// cycles they covered (cycles never Stepped); EvalsSkipped counts
	// single-component Eval skips on partially-active cycles. Exposed
	// for tests and the MIPS benchmarks.
	FastForwards, SkippedCycles, EvalsSkipped uint64

	// SteppedCycles counts cycles actually executed (full or partial
	// steps — everything except fast-forwarded cycles); ActiveEvals
	// counts component Evals that ran, so ActiveEvals/SteppedCycles is
	// the mean active-set occupancy.
	SteppedCycles, ActiveEvals uint64
}

// NewKernel returns an empty kernel at cycle 0 with activity gating
// enabled (gating only ever engages when every registered component
// implements Quiescent).
func NewKernel() *Kernel {
	return &Kernel{names: make(map[string]bool), gating: true}
}

// SetGating enables or disables the quiescence fast-forward. Disabling
// it forces plain lockstep stepping; results are bit-identical either
// way (the equivalence tests pin this).
func (k *Kernel) SetGating(enabled bool) { k.gating = enabled }

// Gating reports whether fast-forwarding is enabled.
func (k *Kernel) Gating() bool { return k.gating }

// Register adds a component to the kernel. Registering two components with
// the same name is an error, caught immediately to keep traces unambiguous.
func (k *Kernel) Register(c Component) error {
	if c == nil {
		return fmt.Errorf("sim: cannot register nil component")
	}
	if k.names[c.Name()] {
		return fmt.Errorf("sim: duplicate component name %q", c.Name())
	}
	k.names[c.Name()] = true
	k.components = append(k.components, c)
	if q, ok := c.(Quiescent); ok {
		k.quiescent = append(k.quiescent, q)
	}
	return nil
}

// MustRegister is Register that panics on error, for wiring code where a
// duplicate name is a programming bug.
func (k *Kernel) MustRegister(c Component) {
	if err := k.Register(c); err != nil {
		panic(err)
	}
}

// SetProbe attaches (or, with nil, detaches) an activity probe. Call
// before Run; the kernel is not safe for concurrent mutation.
func (k *Kernel) SetProbe(p Probe) { k.probe = p }

// Cycle returns the current cycle number.
func (k *Kernel) Cycle() Cycle { return k.cycle }

// Stop requests that Run return after the current cycle completes.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Step advances the simulation by exactly one cycle.
func (k *Kernel) Step() {
	for _, c := range k.components {
		c.Eval(k)
	}
	for _, c := range k.components {
		c.Commit(k)
	}
	k.cycle++
	k.SteppedCycles++
	k.ActiveEvals += uint64(len(k.components))
	if k.probe != nil {
		k.probe.OnCycle(len(k.components), len(k.components))
	}
}

// Run steps the simulation until Stop is called or maxCycles elapse.
// It returns the number of cycles executed (stepped or fast-forwarded).
//
// When gating is enabled and every registered component implements
// Quiescent, Run polls the machine before each cycle and keeps an
// active set:
//
//   - all idle with a known earliest wake → the clock bulk-advances to
//     that wake (clamped to the cycle budget) instead of spinning no-op
//     Steps;
//   - some active → only the active components Eval; idle ones apply
//     their one-cycle arithmetic bookkeeping (SkipTo) and skip the
//     no-op Eval. Every component still Commits, which keeps the
//     two-phase channel state (startLen refresh after consumer pops)
//     exactly as a full Step would.
//
// An idle component's Eval is a no-op this cycle even while others are
// active: pushes stage until Commit, so no input becomes visible
// mid-cycle. Gated and ungated runs are therefore bit-identical.
func (k *Kernel) Run(maxCycles uint64) uint64 {
	start := k.cycle
	limit := start + maxCycles
	if limit < start { // budget overflow: run to the end of time
		limit = Never
	}
	if !k.gating || len(k.quiescent) != len(k.components) || len(k.components) == 0 {
		for !k.stopped && k.cycle < limit {
			k.Step()
		}
		return k.cycle - start
	}
	if cap(k.idle) < len(k.quiescent) {
		//lnuca:allow(hotalloc) one-time lazy scratch allocation; reused by every subsequent Run
		k.idle = make([]bool, len(k.quiescent))
	}
	idle := k.idle[:len(k.quiescent)]
	for !k.stopped && k.cycle < limit {
		now := k.cycle
		allIdle := true
		wake := Never
		for i, q := range k.quiescent {
			w, ok := q.NextEvent(now)
			idle[i] = ok
			if !ok {
				allIdle = false
			} else if w < wake {
				wake = w
			}
		}
		if allIdle && wake > now && wake != Never {
			// Fast-forward: skip [now, wake) entirely.
			if wake > limit {
				wake = limit
			}
			for _, q := range k.quiescent {
				q.SkipTo(now, wake)
			}
			k.cycle = wake
			k.FastForwards++
			k.SkippedCycles += wake - now
			if k.probe != nil {
				k.probe.OnFastForward(now, wake)
			}
			continue
		}
		// Partial step: Eval the active set, advance the rest by one
		// arithmetic cycle, Commit everyone.
		active := 0
		for i, q := range k.quiescent {
			if idle[i] {
				q.SkipTo(now, now+1)
				k.EvalsSkipped++
			} else {
				q.Eval(k)
				active++
			}
		}
		for _, c := range k.components {
			c.Commit(k)
		}
		k.cycle++
		k.SteppedCycles++
		k.ActiveEvals += uint64(active)
		if k.probe != nil {
			k.probe.OnCycle(active, len(k.components))
		}
	}
	return k.cycle - start
}

// NumComponents returns how many components are registered.
func (k *Kernel) NumComponents() int { return len(k.components) }

// KernelStats is a snapshot of the kernel's activity counters — the
// raw material for the skip-ratio and occupancy numbers the
// observability layer publishes.
type KernelStats struct {
	// Cycle is the clock at snapshot time (cycles elapsed, in a Delta).
	Cycle Cycle
	// Components is the number of registered components.
	Components int
	// Stepped counts cycles actually executed; SkippedCycles counts
	// cycles covered by fast-forwards, so Stepped+SkippedCycles is the
	// simulated-time total.
	Stepped uint64
	// FastForwards counts bulk clock advances.
	FastForwards uint64
	// SkippedCycles counts cycles never stepped.
	SkippedCycles uint64
	// EvalsSkipped counts single-component Eval skips on
	// partially-active cycles.
	EvalsSkipped uint64
	// ActiveEvals counts component Evals that ran.
	ActiveEvals uint64
}

// Stats snapshots the kernel's activity counters.
func (k *Kernel) Stats() KernelStats {
	return KernelStats{
		Cycle:         k.cycle,
		Components:    len(k.components),
		Stepped:       k.SteppedCycles,
		FastForwards:  k.FastForwards,
		SkippedCycles: k.SkippedCycles,
		EvalsSkipped:  k.EvalsSkipped,
		ActiveEvals:   k.ActiveEvals,
	}
}

// Delta returns the activity between an earlier snapshot and this one:
// counter differences, with Cycle holding the cycles elapsed.
func (s KernelStats) Delta(prev KernelStats) KernelStats {
	return KernelStats{
		Cycle:         s.Cycle - prev.Cycle,
		Components:    s.Components,
		Stepped:       s.Stepped - prev.Stepped,
		FastForwards:  s.FastForwards - prev.FastForwards,
		SkippedCycles: s.SkippedCycles - prev.SkippedCycles,
		EvalsSkipped:  s.EvalsSkipped - prev.EvalsSkipped,
		ActiveEvals:   s.ActiveEvals - prev.ActiveEvals,
	}
}

// SkipRatio is the fraction of simulated cycles that were
// fast-forwarded rather than executed: SkippedCycles over
// Stepped+SkippedCycles. 0 when nothing has run.
func (s KernelStats) SkipRatio() float64 {
	total := s.Stepped + s.SkippedCycles
	if total == 0 {
		return 0
	}
	return float64(s.SkippedCycles) / float64(total)
}

// AvgActive is the mean number of components evaluated per executed
// cycle. 0 when nothing has stepped.
func (s KernelStats) AvgActive() float64 {
	if s.Stepped == 0 {
		return 0
	}
	return float64(s.ActiveEvals) / float64(s.Stepped)
}

// CountingProbe is a ready-made Probe that accumulates activity into
// atomic counters, safe to read while the simulation runs (e.g. from a
// metrics scrape on another goroutine).
type CountingProbe struct {
	// Cycles counts OnCycle firings (executed cycles); ActiveEvals sums
	// their active-component counts.
	Cycles, ActiveEvals atomic.Uint64
	// FastForwards counts OnFastForward firings; SkippedCycles sums the
	// cycles they covered.
	FastForwards, SkippedCycles atomic.Uint64
}

// OnCycle implements Probe.
func (p *CountingProbe) OnCycle(active, total int) {
	p.Cycles.Add(1)
	p.ActiveEvals.Add(uint64(active))
}

// OnFastForward implements Probe.
func (p *CountingProbe) OnFastForward(from, to Cycle) {
	p.FastForwards.Add(1)
	p.SkippedCycles.Add(to - from)
}

// Reg is a single-entry register with two-phase semantics: writers set the
// next value during Eval; readers observe the value latched at the last
// Commit. Tick must be called from the owner's Commit.
type Reg[T any] struct {
	cur, next   T
	curV, nextV bool
}

// Valid reports whether the register currently holds a value.
func (r *Reg[T]) Valid() bool { return r.curV }

// Get returns the latched value (zero value when invalid).
func (r *Reg[T]) Get() (T, bool) { return r.cur, r.curV }

// Set schedules v to be latched at the next Commit.
func (r *Reg[T]) Set(v T) {
	r.next = v
	r.nextV = true
}

// Clear schedules the register to become invalid at the next Commit.
func (r *Reg[T]) Clear() {
	var zero T
	r.next = zero
	r.nextV = false
}

// NextValid reports whether a value has been scheduled this cycle. Useful
// for writers that must not double-write a register within one Eval.
func (r *Reg[T]) NextValid() bool { return r.nextV }

// Hold re-schedules the current value so a Commit keeps it. Writers use
// this when the register is stalled.
func (r *Reg[T]) Hold() {
	r.next = r.cur
	r.nextV = r.curV
}

// Tick latches the scheduled value. Call exactly once per cycle, from the
// owning component's Commit.
func (r *Reg[T]) Tick() {
	r.cur, r.curV = r.next, r.nextV
	var zero T
	r.next, r.nextV = zero, false
}

// Rand is a small, fast, deterministic xorshift64* PRNG. The L-NUCA
// transport and replacement networks pick output links "randomly"
// (Section III.B); a seeded generator keeps runs reproducible.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed (0 is remapped so the
// xorshift state never sticks at zero).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Fork derives an independent generator whose stream is a deterministic
// function of the parent state and the label.
func (r *Rand) Fork(label uint64) *Rand {
	return NewRand(r.Uint64() ^ (label * 0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03)
}

// Perm fills dst with a random permutation of [0, len(dst)).
func (r *Rand) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}
