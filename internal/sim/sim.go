// Package sim implements the deterministic cycle-driven simulation kernel.
//
// The kernel advances all registered components in lockstep using a
// two-phase clock, the standard discipline of RTL simulators: during Eval a
// component reads only the *current* (latched) state of the system and
// computes its next state; during Commit every component atomically latches
// next state into current state. Because Eval never observes another
// component's next state, results are independent of registration order and
// the simulation is exactly reproducible.
package sim

import "fmt"

// Cycle is a simulation timestamp in processor clock cycles.
type Cycle = uint64

// Component is a clocked hardware block.
type Component interface {
	// Name identifies the component in traces and error messages.
	Name() string
	// Eval computes the component's next state for the current cycle. It
	// must only read latched state (its own and other components').
	Eval(k *Kernel)
	// Commit latches next state computed by Eval into current state.
	Commit(k *Kernel)
}

// Kernel owns the clock and the component list.
type Kernel struct {
	cycle      Cycle
	components []Component
	names      map[string]bool
	stopped    bool
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{names: make(map[string]bool)}
}

// Register adds a component to the kernel. Registering two components with
// the same name is an error, caught immediately to keep traces unambiguous.
func (k *Kernel) Register(c Component) error {
	if c == nil {
		return fmt.Errorf("sim: cannot register nil component")
	}
	if k.names[c.Name()] {
		return fmt.Errorf("sim: duplicate component name %q", c.Name())
	}
	k.names[c.Name()] = true
	k.components = append(k.components, c)
	return nil
}

// MustRegister is Register that panics on error, for wiring code where a
// duplicate name is a programming bug.
func (k *Kernel) MustRegister(c Component) {
	if err := k.Register(c); err != nil {
		panic(err)
	}
}

// Cycle returns the current cycle number.
func (k *Kernel) Cycle() Cycle { return k.cycle }

// Stop requests that Run return after the current cycle completes.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Step advances the simulation by exactly one cycle.
func (k *Kernel) Step() {
	for _, c := range k.components {
		c.Eval(k)
	}
	for _, c := range k.components {
		c.Commit(k)
	}
	k.cycle++
}

// Run steps the simulation until Stop is called or maxCycles elapse.
// It returns the number of cycles executed.
func (k *Kernel) Run(maxCycles uint64) uint64 {
	start := k.cycle
	for !k.stopped && k.cycle-start < maxCycles {
		k.Step()
	}
	return k.cycle - start
}

// NumComponents returns how many components are registered.
func (k *Kernel) NumComponents() int { return len(k.components) }

// Reg is a single-entry register with two-phase semantics: writers set the
// next value during Eval; readers observe the value latched at the last
// Commit. Tick must be called from the owner's Commit.
type Reg[T any] struct {
	cur, next   T
	curV, nextV bool
}

// Valid reports whether the register currently holds a value.
func (r *Reg[T]) Valid() bool { return r.curV }

// Get returns the latched value (zero value when invalid).
func (r *Reg[T]) Get() (T, bool) { return r.cur, r.curV }

// Set schedules v to be latched at the next Commit.
func (r *Reg[T]) Set(v T) {
	r.next = v
	r.nextV = true
}

// Clear schedules the register to become invalid at the next Commit.
func (r *Reg[T]) Clear() {
	var zero T
	r.next = zero
	r.nextV = false
}

// NextValid reports whether a value has been scheduled this cycle. Useful
// for writers that must not double-write a register within one Eval.
func (r *Reg[T]) NextValid() bool { return r.nextV }

// Hold re-schedules the current value so a Commit keeps it. Writers use
// this when the register is stalled.
func (r *Reg[T]) Hold() {
	r.next = r.cur
	r.nextV = r.curV
}

// Tick latches the scheduled value. Call exactly once per cycle, from the
// owning component's Commit.
func (r *Reg[T]) Tick() {
	r.cur, r.curV = r.next, r.nextV
	var zero T
	r.next, r.nextV = zero, false
}

// Rand is a small, fast, deterministic xorshift64* PRNG. The L-NUCA
// transport and replacement networks pick output links "randomly"
// (Section III.B); a seeded generator keeps runs reproducible.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed (0 is remapped so the
// xorshift state never sticks at zero).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Fork derives an independent generator whose stream is a deterministic
// function of the parent state and the label.
func (r *Rand) Fork(label uint64) *Rand {
	return NewRand(r.Uint64() ^ (label * 0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03)
}

// Perm fills dst with a random permutation of [0, len(dst)).
func (r *Rand) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}
