package sim

// Queue is a growable ring-buffer FIFO. The hot simulation loops pop
// from the front of small queues every cycle; re-slicing (`q = q[1:]`)
// leaks front capacity and forces periodic reallocation, while a ring
// reuses one backing array forever — after warmup the steady-state
// allocation rate is zero. Semantics are exactly those of the slice
// queues it replaces: FIFO order, Peek/Pop from the front, Push to the
// back.
type Queue[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return q.n }

// Push appends v at the back, growing the ring when full.
func (q *Queue[T]) Push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
}

// Peek returns the front item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	return q.buf[q.head], true
}

// Front returns a pointer to the front item; it panics on an empty
// queue. The pointer is valid until the next Push or Pop.
func (q *Queue[T]) Front() *T {
	if q.n == 0 {
		panic("sim: Front of empty Queue")
	}
	return &q.buf[q.head]
}

// Pop removes and returns the front item.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // drop references for GC
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v, true
}

// At returns the item at position i from the front (0 = front); it
// panics when i is out of range.
func (q *Queue[T]) At(i int) T {
	if i < 0 || i >= q.n {
		panic("sim: Queue index out of range")
	}
	return q.buf[(q.head+i)%len(q.buf)]
}

// grow doubles the ring, linearizing the contents.
func (q *Queue[T]) grow() {
	capacity := len(q.buf) * 2
	if capacity == 0 {
		capacity = 8
	}
	buf := make([]T, capacity)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}
