package sim

import "testing"

// TestProbeObservesGatedRun: with a probe attached, executed cycles,
// fast-forwards and skipped-cycle totals seen through the probe match
// the kernel's own counters, and the KernelStats accounting closes:
// stepped + skipped cycles cover the whole window.
func TestProbeObservesGatedRun(t *testing.T) {
	a := &tickComp{name: "a", events: []Cycle{10, 500}}
	b := &tickComp{name: "b", events: []Cycle{300}}
	k := NewKernel()
	k.MustRegister(a)
	k.MustRegister(b)
	var p CountingProbe
	k.SetProbe(&p)
	k.Run(1000)

	st := k.Stats()
	if st.Stepped+st.SkippedCycles != 1000 {
		t.Fatalf("stepped(%d) + skipped(%d) != 1000", st.Stepped, st.SkippedCycles)
	}
	if got := p.Cycles.Load(); got != st.Stepped {
		t.Errorf("probe cycles = %d, kernel stepped = %d", got, st.Stepped)
	}
	if got := p.FastForwards.Load(); got != st.FastForwards {
		t.Errorf("probe fast-forwards = %d, kernel = %d", got, st.FastForwards)
	}
	if got := p.SkippedCycles.Load(); got != st.SkippedCycles {
		t.Errorf("probe skipped = %d, kernel = %d", got, st.SkippedCycles)
	}
	if got := p.ActiveEvals.Load(); got != st.ActiveEvals {
		t.Errorf("probe active evals = %d, kernel = %d", got, st.ActiveEvals)
	}
	if st.SkipRatio() <= 0 || st.SkipRatio() >= 1 {
		t.Errorf("skip ratio = %v, want in (0, 1) for this sparse schedule", st.SkipRatio())
	}
	if avg := st.AvgActive(); avg <= 0 || avg > float64(st.Components) {
		t.Errorf("avg active = %v, want in (0, %d]", avg, st.Components)
	}
}

// TestProbeOnPlainSteps: Step() fires OnCycle with active == total, and
// an ungated kernel never fast-forwards.
func TestProbeOnPlainSteps(t *testing.T) {
	k := NewKernel()
	k.MustRegister(&plainComp{})
	var p CountingProbe
	k.SetProbe(&p)
	for i := 0; i < 25; i++ {
		k.Step()
	}
	if got := p.Cycles.Load(); got != 25 {
		t.Errorf("probe cycles = %d, want 25", got)
	}
	if got := p.ActiveEvals.Load(); got != 25 {
		t.Errorf("probe active evals = %d, want 25 (1 component x 25 cycles)", got)
	}
	if p.FastForwards.Load() != 0 {
		t.Error("plain stepping fired OnFastForward")
	}
	if avg := k.Stats().AvgActive(); avg != 1 {
		t.Errorf("avg active = %v, want exactly 1", avg)
	}
}

// TestProbeDoesNotPerturbResults: attaching a probe must not change a
// gated run's statistics — same clock, same per-component eval counts.
func TestProbeDoesNotPerturbResults(t *testing.T) {
	run := func(probe Probe) (Cycle, uint64, uint64) {
		a := &tickComp{name: "a", events: []Cycle{7, 40, 41, 900}}
		b := &tickComp{name: "b", events: []Cycle{40, 600}}
		k := NewKernel()
		k.MustRegister(a)
		k.MustRegister(b)
		k.SetProbe(probe)
		k.Run(1000)
		return k.Cycle(), a.evals, b.evals
	}
	c1, a1, b1 := run(nil)
	c2, a2, b2 := run(&CountingProbe{})
	if c1 != c2 || a1 != a2 || b1 != b2 {
		t.Errorf("probe perturbed the run: (%d,%d,%d) vs (%d,%d,%d)", c1, a1, b1, c2, a2, b2)
	}
}

// TestStatsDelta: Delta isolates the activity of one window.
func TestStatsDelta(t *testing.T) {
	a := &tickComp{name: "a", events: []Cycle{10, 500, 1500}}
	k := NewKernel()
	k.MustRegister(a)
	k.Run(1000)
	before := k.Stats()
	k.Run(1000)
	d := k.Stats().Delta(before)
	if d.Cycle != 1000 {
		t.Errorf("delta cycles = %d, want 1000", d.Cycle)
	}
	if d.Stepped+d.SkippedCycles != 1000 {
		t.Errorf("delta stepped(%d) + skipped(%d) != 1000", d.Stepped, d.SkippedCycles)
	}
}
