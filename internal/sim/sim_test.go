package sim

import (
	"testing"
	"testing/quick"
)

// counter is a trivial component: it increments on every cycle.
type counter struct {
	name   string
	evals  int
	commit int
}

func (c *counter) Name() string     { return c.name }
func (c *counter) Eval(k *Kernel)   { c.evals++ }
func (c *counter) Commit(k *Kernel) { c.commit++ }

func TestKernelStepAndRun(t *testing.T) {
	k := NewKernel()
	c := &counter{name: "c"}
	k.MustRegister(c)
	k.Step()
	if k.Cycle() != 1 || c.evals != 1 || c.commit != 1 {
		t.Fatalf("after Step: cycle=%d evals=%d commits=%d", k.Cycle(), c.evals, c.commit)
	}
	n := k.Run(9)
	if n != 9 || k.Cycle() != 10 {
		t.Fatalf("Run returned %d, cycle=%d; want 9, 10", n, k.Cycle())
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	stopAt := uint64(5)
	k.MustRegister(&stopper{k: k, at: stopAt})
	n := k.Run(100)
	if n != stopAt+1 { // the stopping cycle itself completes
		t.Fatalf("Run executed %d cycles, want %d", n, stopAt+1)
	}
	if !k.Stopped() {
		t.Fatal("kernel should report stopped")
	}
}

type stopper struct {
	k  *Kernel
	at uint64
}

func (s *stopper) Name() string { return "stopper" }
func (s *stopper) Eval(k *Kernel) {
	if k.Cycle() == s.at {
		k.Stop()
	}
}
func (s *stopper) Commit(k *Kernel) {}

func TestDuplicateNameRejected(t *testing.T) {
	k := NewKernel()
	if err := k.Register(&counter{name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := k.Register(&counter{name: "x"}); err == nil {
		t.Fatal("duplicate name should be rejected")
	}
	if err := k.Register(nil); err == nil {
		t.Fatal("nil component should be rejected")
	}
	if k.NumComponents() != 1 {
		t.Fatalf("NumComponents = %d, want 1", k.NumComponents())
	}
}

// pipe demonstrates two-phase register semantics: a writer sets the
// register and a reader must not see the value until after Commit.
type pipe struct {
	reg      Reg[int]
	sent     bool
	observed []int
}

func (p *pipe) Name() string { return "pipe" }
func (p *pipe) Eval(k *Kernel) {
	if v, ok := p.reg.Get(); ok {
		p.observed = append(p.observed, v)
	}
	if !p.sent {
		p.reg.Set(42)
		p.sent = true
	}
}
func (p *pipe) Commit(k *Kernel) { p.reg.Tick() }

func TestRegTwoPhase(t *testing.T) {
	k := NewKernel()
	p := &pipe{}
	k.MustRegister(p)
	k.Step() // writes 42; not yet visible
	if len(p.observed) != 0 {
		t.Fatalf("value visible in the same cycle it was written")
	}
	k.Step() // now visible
	if len(p.observed) != 1 || p.observed[0] != 42 {
		t.Fatalf("observed = %v, want [42]", p.observed)
	}
	k.Step() // register was not re-set, so it must have cleared
	if len(p.observed) != 1 {
		t.Fatalf("register did not clear: observed %v", p.observed)
	}
}

func TestRegHold(t *testing.T) {
	var r Reg[string]
	r.Set("a")
	r.Tick()
	r.Hold()
	r.Tick()
	if v, ok := r.Get(); !ok || v != "a" {
		t.Fatalf("Hold did not preserve value: %q %v", v, ok)
	}
	r.Tick() // no Hold: clears
	if r.Valid() {
		t.Fatal("register should clear when neither Set nor Hold was called")
	}
}

func TestRegClearAndNextValid(t *testing.T) {
	var r Reg[int]
	r.Set(7)
	if !r.NextValid() {
		t.Fatal("NextValid should be true after Set")
	}
	r.Tick()
	r.Clear()
	r.Tick()
	if r.Valid() {
		t.Fatal("register should be invalid after Clear+Tick")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	c := NewRand(124)
	same := 0
	a = NewRand(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must not produce a stuck stream")
	}
}

func TestRandIntnRange(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%31) + 1
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandIntnPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestRandBoolProbability(t *testing.T) {
	r := NewRand(99)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) frequency = %v, want ~0.3", frac)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n % 16)
		dst := make([]int, m)
		NewRand(seed).Perm(dst)
		seen := make(map[int]bool, m)
		for _, v := range dst {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRand(5)
	a := parent.Fork(1)
	b := parent.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams overlap: %d/100 identical", same)
	}
}
