package mem

import (
	"testing"

	"repro/internal/sim"
)

// streamer pushes a read request every cycle its port has space and
// records the responses routed back to it. It owns up.Down and up.Up-pops.
type streamer struct {
	name string
	port *Port
	ids  *IDSource

	sent     map[uint64]bool
	received int
	foreign  int // responses that were never ours — routing errors
}

func newStreamer(name string, port *Port, ids *IDSource) *streamer {
	return &streamer{name: name, port: port, ids: ids, sent: make(map[uint64]bool)}
}

func (s *streamer) Name() string { return s.name }

func (s *streamer) Eval(k *sim.Kernel) {
	for {
		resp, ok := s.port.Up.Pop()
		if !ok {
			break
		}
		if !s.sent[resp.ID] {
			s.foreign++
		}
		delete(s.sent, resp.ID)
		s.received++
	}
	if s.port.Down.CanPush() {
		id := s.ids.Next()
		s.sent[id] = true
		s.port.Down.Push(&Req{ID: id, Addr: Addr(id * 64), Kind: Read, Issued: k.Cycle()})
	}
}

func (s *streamer) Commit(k *sim.Kernel) { s.port.Down.Tick() }

// sink services the shared port with a fixed latency: it answers every
// request the cycle after it arrives, channel space permitting. It owns
// down.Up and down.Down-pops.
type sink struct {
	port     *Port
	perCycle int
	served   int
}

func (s *sink) Name() string { return "sink" }

func (s *sink) Eval(k *sim.Kernel) {
	for n := 0; n < s.perCycle; n++ {
		req, ok := s.port.Down.Peek()
		if !ok || !s.port.Up.CanPush() {
			return
		}
		s.port.Down.Pop()
		s.port.Up.Push(&Resp{ID: req.ID, Addr: req.Addr, Done: k.Cycle()})
		s.served++
	}
}

func (s *sink) Commit(k *sim.Kernel) { s.port.Up.Tick() }

// arbScenario wires n streamers through an arbiter into a sink and runs
// cycles, registering components in the given order (a permutation of
// 0..n+1 over [streamers..., arbiter, sink]).
func arbScenario(t *testing.T, n int, cycles uint64, order []int) ([]*streamer, *Arbiter, *sink) {
	t.Helper()
	var ids IDSource
	up := make([]*Port, n)
	streamers := make([]*streamer, n)
	for i := range up {
		up[i] = NewPort(4, 4)
	}
	down := NewPort(4, 4)
	arb, err := NewArbiter(ArbiterConfig{Name: "arb"}, up, down)
	if err != nil {
		t.Fatal(err)
	}
	sk := &sink{port: down, perCycle: 2}
	comps := make([]sim.Component, 0, n+2)
	for i := range streamers {
		streamers[i] = newStreamer("s"+string(rune('0'+i)), up[i], &ids)
		comps = append(comps, streamers[i])
	}
	comps = append(comps, arb, sk)
	k := sim.NewKernel()
	for _, idx := range order {
		k.MustRegister(comps[idx])
	}
	k.Run(cycles)
	return streamers, arb, sk
}

func naturalOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestArbiterFairnessUnderSaturation: with every source streaming as fast
// as its port allows, round-robin must split the shared bandwidth evenly.
func TestArbiterFairnessUnderSaturation(t *testing.T) {
	const n, cycles = 4, 10_000
	streamers, arb, sk := arbScenario(t, n, cycles, naturalOrder(n+2))

	var min, max uint64 = ^uint64(0), 0
	for i, g := range arb.Granted {
		t.Logf("source %d: %d grants, %d conflicts", i, g, arb.Conflicts[i])
		if g < min {
			min = g
		}
		if g > max {
			max = g
		}
		if g == 0 {
			t.Fatalf("source %d starved", i)
		}
	}
	if max-min > 1 {
		t.Fatalf("unfair grant split: min %d max %d", min, max)
	}
	if arb.TotalGrants() < cycles/2 {
		t.Fatalf("arbiter underutilized: %d grants in %d cycles", arb.TotalGrants(), cycles)
	}
	if sk.served == 0 {
		t.Fatal("sink served nothing")
	}
	for i, s := range streamers {
		if s.foreign != 0 {
			t.Fatalf("source %d received %d foreign responses", i, s.foreign)
		}
		if s.received == 0 {
			t.Fatalf("source %d received no responses", i)
		}
	}
	// Saturated sources must observe contention.
	for i, c := range arb.Conflicts {
		if c == 0 {
			t.Fatalf("source %d reports no conflicts under saturation", i)
		}
	}
}

// TestArbiterDeterministicAcrossRegistrationOrder: the two-phase kernel
// discipline means grant schedules cannot depend on the order components
// were registered in.
func TestArbiterDeterministicAcrossRegistrationOrder(t *testing.T) {
	const n, cycles = 4, 5_000
	orders := [][]int{
		naturalOrder(n + 2),
		{5, 4, 3, 2, 1, 0}, // sink and arbiter first, streamers reversed
		{4, 0, 5, 1, 3, 2}, // interleaved
		{2, 3, 0, 1, 5, 4}, // streamers shuffled
	}
	type outcome struct {
		granted  []uint64
		received []int
		served   int
	}
	var ref *outcome
	for oi, order := range orders {
		streamers, arb, sk := arbScenario(t, n, cycles, order)
		got := &outcome{granted: arb.Granted, served: sk.served}
		for _, s := range streamers {
			got.received = append(got.received, s.received)
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref.granted {
			if ref.granted[i] != got.granted[i] {
				t.Fatalf("order %d: grants[%d] = %d, want %d", oi, i, got.granted[i], ref.granted[i])
			}
			if ref.received[i] != got.received[i] {
				t.Fatalf("order %d: received[%d] = %d, want %d", oi, i, got.received[i], ref.received[i])
			}
		}
		if ref.served != got.served {
			t.Fatalf("order %d: served = %d, want %d", oi, got.served, ref.served)
		}
	}
}

// TestArbiterRoutesWritebacksWithoutTracking: writebacks get no response,
// so they must not leak owner-table entries.
func TestArbiterRoutesWritebacksWithoutTracking(t *testing.T) {
	var ids IDSource
	up := []*Port{NewPort(4, 4)}
	down := NewPort(4, 4)
	arb, err := NewArbiter(ArbiterConfig{}, up, down)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	k.MustRegister(arb)

	up[0].Down.Push(&Req{ID: ids.Next(), Addr: 0x40, Kind: Writeback})
	up[0].Down.Tick()
	k.Step()
	k.Step()
	if arb.InFlight() != 0 {
		t.Fatalf("writeback tracked: %d in flight", arb.InFlight())
	}
	if got, ok := down.Down.Peek(); !ok || got.Kind != Writeback {
		t.Fatalf("writeback not forwarded (ok=%v)", ok)
	}

	// Writes are absorbed downstream too (controllers respond only to
	// reads): tracking them would leak an owner entry per store for the
	// whole run.
	down.Down.Pop()
	up[0].Down.Push(&Req{ID: ids.Next(), Addr: 0x80, Kind: Write})
	up[0].Down.Tick()
	k.Step()
	k.Step()
	if arb.InFlight() != 0 {
		t.Fatalf("write tracked: %d in flight", arb.InFlight())
	}
	if got, ok := down.Down.Peek(); !ok || got.Kind != Write {
		t.Fatalf("write not forwarded (ok=%v)", ok)
	}
}

// TestArbiterBandwidthBound: GrantsPerCycle is a hard per-cycle cap.
func TestArbiterBandwidthBound(t *testing.T) {
	const n, cycles = 3, 1_000
	var ids IDSource
	up := make([]*Port, n)
	for i := range up {
		up[i] = NewPort(8, 8)
	}
	down := NewPort(16, 16)
	arb, err := NewArbiter(ArbiterConfig{GrantsPerCycle: 2, RespPerCycle: 2}, up, down)
	if err != nil {
		t.Fatal(err)
	}
	sk := &sink{port: down, perCycle: 4}
	k := sim.NewKernel()
	for i := range up {
		k.MustRegister(newStreamer("s"+string(rune('0'+i)), up[i], &ids))
	}
	k.MustRegister(arb)
	k.MustRegister(sk)
	k.Run(cycles)
	if got := arb.TotalGrants(); got > 2*cycles {
		t.Fatalf("granted %d > bandwidth bound %d", got, 2*cycles)
	}
	if got := arb.TotalGrants(); got < cycles {
		t.Fatalf("granted %d, expected near-saturation with 3 streamers", got)
	}
}
