package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestAddrLine(t *testing.T) {
	cases := []struct {
		addr  Addr
		block int
		want  Addr
	}{
		{0x1234, 32, 0x1220},
		{0x1234, 64, 0x1200},
		{0x1234, 128, 0x1200},
		{0x0, 32, 0x0},
		{0x1F, 32, 0x0},
		{0x20, 32, 0x20},
	}
	for _, c := range cases {
		if got := c.addr.Line(c.block); got != c.want {
			t.Errorf("%#x.Line(%d) = %#x, want %#x", uint64(c.addr), c.block, uint64(got), uint64(c.want))
		}
	}
}

func TestAddrLineProperty(t *testing.T) {
	f := func(a uint64, shift uint8) bool {
		block := 1 << (3 + shift%6) // 8..256 bytes
		line := Addr(a).Line(block)
		// The line must be aligned and must contain the address.
		return uint64(line)%uint64(block) == 0 &&
			uint64(line) <= a && a < uint64(line)+uint64(block)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || Writeback.String() != "writeback" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should not render empty")
	}
}

func TestIDSourceUnique(t *testing.T) {
	var s IDSource
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := s.Next()
		if id == 0 || seen[id] {
			t.Fatalf("duplicate or zero id %d", id)
		}
		seen[id] = true
	}
}

func TestChanTwoPhaseVisibility(t *testing.T) {
	c := NewChan[int](4)
	if !c.CanPush() {
		t.Fatal("fresh channel should accept")
	}
	c.Push(1)
	if c.Len() != 0 {
		t.Fatal("push visible before Tick")
	}
	c.Tick()
	if c.Len() != 1 {
		t.Fatal("push not visible after Tick")
	}
	v, ok := c.Pop()
	if !ok || v != 1 {
		t.Fatalf("Pop = %v,%v want 1,true", v, ok)
	}
}

func TestChanBackpressure(t *testing.T) {
	c := NewChan[int](2)
	c.Push(1)
	c.Push(2)
	if c.CanPush() {
		t.Fatal("channel should be full within a cycle")
	}
	c.Tick()
	if c.CanPush() {
		t.Fatal("channel should still be full (nothing popped)")
	}
	c.Pop()
	// Space freed by a pop is not available until next Tick (registered
	// FIFO semantics).
	if c.CanPush() {
		t.Fatal("pop must not free space within the same cycle")
	}
	c.Tick()
	if !c.CanPush() {
		t.Fatal("space should be free after Tick")
	}
}

func TestChanOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overflow should panic")
		}
	}()
	c := NewChan[int](1)
	c.Push(1)
	c.Push(2)
}

func TestChanFIFOOrder(t *testing.T) {
	f := func(vals []int16) bool {
		c := NewChan[int16](len(vals) + 1)
		for _, v := range vals {
			c.Push(v)
		}
		c.Tick()
		for _, want := range vals {
			got, ok := c.Pop()
			if !ok || got != want {
				return false
			}
		}
		_, ok := c.Pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChanPeek(t *testing.T) {
	c := NewChan[string](2)
	if _, ok := c.Peek(); ok {
		t.Fatal("Peek on empty should fail")
	}
	c.Push("a")
	c.Tick()
	v, ok := c.Peek()
	if !ok || v != "a" {
		t.Fatalf("Peek = %q,%v", v, ok)
	}
	if c.Len() != 1 {
		t.Fatal("Peek must not remove")
	}
}

func TestChanDegenerateCapacity(t *testing.T) {
	c := NewChan[int](0)
	if c.Capacity() != 1 {
		t.Fatalf("Capacity = %d, want clamp to 1", c.Capacity())
	}
}

func TestMainMemoryConfigMath(t *testing.T) {
	cfg := DefaultMainMemoryConfig()
	// 128B block on 16B wires: 8 chunks -> 200 + 7*4 = 228 cycles.
	if got := cfg.TransferCycles(); got != 228 {
		t.Errorf("TransferCycles = %d, want 228", got)
	}
	if got := cfg.BusOccupancyCycles(); got != 32 {
		t.Errorf("BusOccupancyCycles = %d, want 32", got)
	}
}

// harness drives a MainMemory with a scripted requester.
type memHarness struct {
	port *Port
	mm   *MainMemory
	k    *sim.Kernel

	got []*Resp
}

func newMemHarness() *memHarness {
	h := &memHarness{port: NewPort(8, 8)}
	h.mm = NewMainMemory("mem", DefaultMainMemoryConfig(), h.port)
	h.k = sim.NewKernel()
	h.k.MustRegister(h.mm)
	h.k.MustRegister(h) // requester side ticks Down and drains Up
	return h
}

func (h *memHarness) Name() string { return "driver" }
func (h *memHarness) Eval(k *sim.Kernel) {
	for {
		r, ok := h.port.Up.Pop()
		if !ok {
			break
		}
		h.got = append(h.got, r)
	}
}
func (h *memHarness) Commit(k *sim.Kernel) { h.port.Down.Tick() }

func (h *memHarness) send(req *Req) {
	req.Issued = h.k.Cycle()
	h.port.Down.Push(req)
}

func TestMainMemoryReadLatency(t *testing.T) {
	h := newMemHarness()
	h.send(&Req{ID: 1, Addr: 0x1000, Kind: Read})
	for i := 0; i < 400 && len(h.got) == 0; i++ {
		h.k.Step()
	}
	if len(h.got) != 1 {
		t.Fatal("no response")
	}
	// Request pushed at cycle 0, visible to memory at cycle 1, response
	// matures 228 cycles later and crosses the Up channel (1 more cycle).
	lat := h.got[0].Done
	if lat < 228 || lat > 232 {
		t.Errorf("read latency = %d, want ~229", lat)
	}
	if h.mm.Reads != 1 {
		t.Errorf("Reads = %d, want 1", h.mm.Reads)
	}
}

func TestMainMemoryWritebackNoResponse(t *testing.T) {
	h := newMemHarness()
	h.send(&Req{ID: 1, Addr: 0x2000, Kind: Writeback})
	for i := 0; i < 300; i++ {
		h.k.Step()
	}
	if len(h.got) != 0 {
		t.Fatal("writeback must not produce a response")
	}
	if h.mm.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", h.mm.Writebacks)
	}
}

func TestMainMemoryBandwidthSerialization(t *testing.T) {
	h := newMemHarness()
	h.send(&Req{ID: 1, Addr: 0x1000, Kind: Read})
	h.send(&Req{ID: 2, Addr: 0x2000, Kind: Read})
	for i := 0; i < 600 && len(h.got) < 2; i++ {
		h.k.Step()
	}
	if len(h.got) != 2 {
		t.Fatal("missing responses")
	}
	gap := h.got[1].Done - h.got[0].Done
	// Second transfer cannot start until the wires are free: 32 cycles.
	if gap < 32 {
		t.Errorf("responses only %d cycles apart, want >= 32 (bus occupancy)", gap)
	}
	if h.got[0].ID != 1 || h.got[1].ID != 2 {
		t.Errorf("responses out of order: %d then %d", h.got[0].ID, h.got[1].ID)
	}
}

func TestMainMemoryManyRequestsAllServed(t *testing.T) {
	h := newMemHarness()
	const n = 6
	for i := 0; i < n; i++ {
		h.send(&Req{ID: uint64(i + 1), Addr: Addr(0x1000 * (i + 1)), Kind: Read})
		h.k.Step()
	}
	for i := 0; i < 3000 && len(h.got) < n; i++ {
		h.k.Step()
	}
	if len(h.got) != n {
		t.Fatalf("served %d of %d", len(h.got), n)
	}
	if h.mm.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", h.mm.Pending())
	}
}
