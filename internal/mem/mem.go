// Package mem defines the memory-system vocabulary shared by every level
// of the simulated hierarchy: physical addresses, requests and responses,
// bounded two-phase channels used as inter-level ports, and the main-memory
// model of Table I (200-cycle first chunk, 4 cycles per further 16-byte
// chunk).
package mem

import (
	"fmt"

	"repro/internal/sim"
)

// Addr is a physical byte address.
type Addr uint64

// Line returns the block-frame address of a for blockBytes-sized blocks
// (the address with the offset bits cleared).
func (a Addr) Line(blockBytes int) Addr {
	return a &^ Addr(blockBytes-1)
}

// Kind discriminates memory request types.
type Kind uint8

const (
	// Read is a demand load (or an instruction fetch; the paper's memory
	// figures are dominated by the data side, and the modeled front end
	// uses a perfect instruction cache as SimpleScalar's sim-outorder
	// commonly configures for data-hierarchy studies).
	Read Kind = iota
	// Write is a demand store.
	Write
	// Writeback carries an evicted dirty block downwards.
	Writeback
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Writeback:
		return "writeback"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Req is a request traveling down the hierarchy.
type Req struct {
	ID     uint64
	Addr   Addr
	Kind   Kind
	Issued sim.Cycle
}

// Resp is a completion traveling up the hierarchy. Done is the cycle at
// which the data became available to the requester.
type Resp struct {
	ID   uint64
	Addr Addr
	Done sim.Cycle
}

// IDSource hands out unique request IDs.
type IDSource struct{ next uint64 }

// Next returns a fresh non-zero ID.
func (s *IDSource) Next() uint64 {
	s.next++
	return s.next
}

// Chan is a bounded single-producer/single-consumer queue with two-phase
// semantics: values pushed during a cycle become visible to the consumer
// only after Tick (i.e. the next cycle), and the producer's CanPush view is
// based on the occupancy latched at the start of the cycle, so behaviour
// never depends on component evaluation order.
type Chan[T any] struct {
	capacity int
	items    []T
	staged   []T
	startLen int
}

// NewChan returns a channel holding at most capacity items.
func NewChan[T any](capacity int) *Chan[T] {
	if capacity <= 0 {
		capacity = 1
	}
	return &Chan[T]{capacity: capacity}
}

// CanPush reports whether a push this cycle is guaranteed to fit. It is
// deliberately conservative: items popped this cycle do not free space
// until the next cycle, mirroring registered-FIFO hardware.
func (c *Chan[T]) CanPush() bool {
	return c.startLen+len(c.staged) < c.capacity
}

// Push stages v for delivery next cycle. It panics when called without a
// successful CanPush, which would model a dropped message.
func (c *Chan[T]) Push(v T) {
	if !c.CanPush() {
		panic("mem: Chan overflow — caller must check CanPush")
	}
	c.staged = append(c.staged, v)
}

// Len returns the number of items currently visible to the consumer.
func (c *Chan[T]) Len() int { return len(c.items) }

// Peek returns the oldest visible item without removing it.
func (c *Chan[T]) Peek() (T, bool) {
	var zero T
	if len(c.items) == 0 {
		return zero, false
	}
	return c.items[0], true
}

// Pop removes and returns the oldest visible item.
func (c *Chan[T]) Pop() (T, bool) {
	var zero T
	if len(c.items) == 0 {
		return zero, false
	}
	v := c.items[0]
	// Shift; channels are short (tens of entries), so O(n) is fine and
	// keeps memory stable.
	copy(c.items, c.items[1:])
	c.items = c.items[:len(c.items)-1]
	return v, true
}

// Tick publishes staged pushes. Call exactly once per cycle from the
// owning component's Commit.
func (c *Chan[T]) Tick() {
	c.items = append(c.items, c.staged...)
	c.staged = c.staged[:0]
	c.startLen = len(c.items)
}

// Capacity returns the channel bound.
func (c *Chan[T]) Capacity() int { return c.capacity }

// Snapshot returns copies of every item in the channel, visible and
// staged. Intended for invariant-checking tests.
func (c *Chan[T]) Snapshot() []T {
	out := make([]T, 0, len(c.items)+len(c.staged))
	out = append(out, c.items...)
	out = append(out, c.staged...)
	return out
}

// Port bundles the two directions of a hierarchy link: requests flow down,
// responses flow up. The component on each side Ticks its outbound channel.
type Port struct {
	// Down carries requests from the upper level to the lower level.
	Down *Chan[*Req]
	// Up carries responses from the lower level to the upper level.
	Up *Chan[*Resp]
}

// NewPort creates a port with the given queue depths.
func NewPort(downCap, upCap int) *Port {
	return &Port{Down: NewChan[*Req](downCap), Up: NewChan[*Resp](upCap)}
}

// MainMemoryConfig parameterizes the DRAM model (Table I).
type MainMemoryConfig struct {
	// FirstChunkCycles is the latency until the first 16-byte chunk
	// arrives (200 in Table I).
	FirstChunkCycles uint64
	// InterChunkCycles separates subsequent chunks (4 in Table I).
	InterChunkCycles uint64
	// ChunkBytes is the width of the memory wires (16 B in Table I).
	ChunkBytes int
	// BlockBytes is the size of the block the LLC requests (128 B).
	BlockBytes int
}

// DefaultMainMemoryConfig returns the Table I memory parameters.
func DefaultMainMemoryConfig() MainMemoryConfig {
	return MainMemoryConfig{
		FirstChunkCycles: 200,
		InterChunkCycles: 4,
		ChunkBytes:       16,
		BlockBytes:       128,
	}
}

// TransferCycles returns the total cycles needed to deliver a full block
// after the access starts.
func (c MainMemoryConfig) TransferCycles() uint64 {
	chunks := uint64((c.BlockBytes + c.ChunkBytes - 1) / c.ChunkBytes)
	if chunks == 0 {
		chunks = 1
	}
	return c.FirstChunkCycles + (chunks-1)*c.InterChunkCycles
}

// BusOccupancyCycles returns how long the memory wires are busy per block,
// which limits back-to-back block transfers.
func (c MainMemoryConfig) BusOccupancyCycles() uint64 {
	chunks := uint64((c.BlockBytes + c.ChunkBytes - 1) / c.ChunkBytes)
	if chunks == 0 {
		chunks = 1
	}
	return chunks * c.InterChunkCycles
}

// MainMemory services block fetches from the last-level cache. It is the
// bottom of every hierarchy. Writebacks are absorbed (they consume bus
// occupancy but produce no response).
type MainMemory struct {
	name string
	cfg  MainMemoryConfig
	port *Port

	busFreeAt sim.Cycle
	inFlight  sim.Queue[pendingResp]

	// Stats
	Reads, Writebacks uint64
	TotalLatency      uint64
}

type pendingResp struct {
	req  *Req
	done sim.Cycle
}

// NewMainMemory creates the DRAM model attached to port (the model owns
// Down-pops and Up-pushes; the LLC owns the opposite directions).
func NewMainMemory(name string, cfg MainMemoryConfig, port *Port) *MainMemory {
	return &MainMemory{name: name, cfg: cfg, port: port}
}

// Name implements sim.Component.
func (m *MainMemory) Name() string { return m.name }

// Eval implements sim.Component.
func (m *MainMemory) Eval(k *sim.Kernel) {
	now := k.Cycle()
	// Accept at most one new transfer per cycle, gated by wire occupancy.
	if m.busFreeAt <= now {
		if req, ok := m.port.Down.Peek(); ok {
			m.port.Down.Pop()
			m.busFreeAt = now + m.cfg.BusOccupancyCycles()
			switch req.Kind {
			case Writeback:
				m.Writebacks++
				// No response for writebacks.
			default:
				m.Reads++
				m.inFlight.Push(pendingResp{
					req:  req,
					done: now + m.cfg.TransferCycles(),
				})
			}
		}
	}
	// Deliver matured responses in arrival order, as channel space allows.
	for m.inFlight.Len() > 0 && m.inFlight.Front().done <= now && m.port.Up.CanPush() {
		p, _ := m.inFlight.Pop()
		m.TotalLatency += uint64(now - p.req.Issued)
		//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
		m.port.Up.Push(&Resp{ID: p.req.ID, Addr: p.req.Addr, Done: now})
	}
}

// Commit implements sim.Component.
func (m *MainMemory) Commit(k *sim.Kernel) {
	m.port.Up.Tick()
}

// NextEvent implements sim.Quiescent. The memory is idle when no
// transfer can start (no request, or the wires are busy) and no matured
// response can be delivered; its timed wakes are the bus release and
// the oldest in-flight completion.
func (m *MainMemory) NextEvent(now sim.Cycle) (sim.Cycle, bool) {
	wake := sim.Never
	if m.port.Down.Len() > 0 {
		if m.busFreeAt <= now {
			return 0, false
		}
		wake = m.busFreeAt
	}
	if m.inFlight.Len() > 0 {
		done := m.inFlight.Front().done
		if done <= now {
			if m.port.Up.CanPush() {
				return 0, false
			}
			// Blocked on channel space: only the consumer popping
			// (external activity) unblocks delivery.
		} else if done < wake {
			wake = done
		}
	}
	return wake, true
}

// SkipTo implements sim.Quiescent: idle memory cycles touch no counters.
func (m *MainMemory) SkipTo(now, target sim.Cycle) {}

// Pending returns the number of fetches in flight (for tests).
func (m *MainMemory) Pending() int { return m.inFlight.Len() }
