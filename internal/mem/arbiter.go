package mem

import (
	"fmt"

	"repro/internal/sim"
)

// ArbiterConfig parameterizes a shared-port Arbiter.
type ArbiterConfig struct {
	// Name identifies the arbiter component.
	Name string
	// GrantsPerCycle bounds how many requests cross the shared port per
	// cycle (the bandwidth of the bus into the shared structure).
	// Default 1: one request slot per cycle, the Table I single-port LLC.
	GrantsPerCycle int
	// RespPerCycle bounds how many responses are routed back up per
	// cycle. Default 1.
	RespPerCycle int
}

// Arbiter multiplexes N upstream ports onto one downstream port: the
// shared-resource entry point of a chip-multiprocessor, where per-core
// private hierarchies contend for the single port of the shared LLC (and,
// behind it, the main-memory channel). Requests are granted round-robin
// with a rotating priority pointer, so under saturation every source gets
// the same bandwidth regardless of index or registration order; responses
// are routed back to the requesting source by request ID.
//
// Like every component, the arbiter observes only latched channel state
// during Eval and publishes during Commit, so simulation results are
// independent of the order components were registered in.
type Arbiter struct {
	cfg  ArbiterConfig
	up   []*Port
	down *Port

	next  int            // round-robin priority pointer
	owner map[uint64]int // request ID -> upstream index, for response routing

	// skipConflicts, set by NextEvent, records that blocked sources must
	// accrue conflict cycles if the idle round is skipped.
	skipConflicts bool

	// Stats.
	Granted []uint64 // requests forwarded, per source
	// Conflicts counts cycles a source ended with requests still queued
	// — it wanted more bandwidth than it got this cycle, whether or not
	// one of its requests was granted. The saturation signal.
	Conflicts   []uint64
	RespRouted  uint64
	RespOrphans uint64 // responses whose ID matched no tracked read
}

// NewArbiter wires upstream ports onto the shared downstream port. The
// arbiter owns pushes to every up[i].Up and to down.Down (and Ticks them);
// the component behind down owns down.Up, the per-core sides own up[i].Down.
func NewArbiter(cfg ArbiterConfig, up []*Port, down *Port) (*Arbiter, error) {
	if len(up) == 0 {
		return nil, fmt.Errorf("mem: arbiter %q needs at least one upstream port", cfg.Name)
	}
	if cfg.Name == "" {
		cfg.Name = "arbiter"
	}
	if cfg.GrantsPerCycle <= 0 {
		cfg.GrantsPerCycle = 1
	}
	if cfg.RespPerCycle <= 0 {
		cfg.RespPerCycle = 1
	}
	return &Arbiter{
		cfg:       cfg,
		up:        up,
		down:      down,
		owner:     make(map[uint64]int),
		Granted:   make([]uint64, len(up)),
		Conflicts: make([]uint64, len(up)),
	}, nil
}

// Name implements sim.Component.
func (a *Arbiter) Name() string { return a.cfg.Name }

// Eval implements sim.Component: route matured responses up, then grant
// pending requests down round-robin within the cycle's bandwidth.
func (a *Arbiter) Eval(k *sim.Kernel) {
	// Responses: in-order per the downstream channel. A response whose
	// destination queue is full blocks the ones behind it (head-of-line),
	// which models the single return bus.
	for n := 0; n < a.cfg.RespPerCycle; n++ {
		resp, ok := a.down.Up.Peek()
		if !ok {
			break
		}
		src, known := a.owner[resp.ID]
		if !known {
			// No requester to deliver to; drop (e.g. an unexpected ack).
			a.down.Up.Pop()
			a.RespOrphans++
			continue
		}
		if !a.up[src].Up.CanPush() {
			break
		}
		a.down.Up.Pop()
		delete(a.owner, resp.ID)
		a.up[src].Up.Push(resp)
		a.RespRouted++
	}

	// Requests: scan sources starting at the priority pointer; after each
	// grant the pointer moves past the granted source, which is what makes
	// the schedule round-robin rather than fixed-priority.
	granted := 0
	for granted < a.cfg.GrantsPerCycle && a.down.Down.CanPush() {
		gi := -1
		for o := 0; o < len(a.up); o++ {
			i := (a.next + o) % len(a.up)
			if a.up[i].Down.Len() > 0 {
				gi = i
				break
			}
		}
		if gi < 0 {
			break
		}
		req, _ := a.up[gi].Down.Pop()
		// Only reads produce responses in this hierarchy (writes and
		// writebacks are absorbed downstream); tracking anything else
		// would leak owner entries for the whole run.
		if req.Kind == Read {
			a.owner[req.ID] = gi
		}
		a.down.Down.Push(req)
		a.Granted[gi]++
		a.next = (gi + 1) % len(a.up)
		granted++
	}
	// A source with work that got no grant this cycle experienced
	// contention; the counter is the saturation signal /metrics exposes.
	for i := range a.up {
		if a.up[i].Down.Len() > 0 {
			a.Conflicts[i]++
		}
	}
}

// Commit implements sim.Component.
func (a *Arbiter) Commit(k *sim.Kernel) {
	a.down.Down.Tick()
	for _, p := range a.up {
		p.Up.Tick()
	}
}

// NextEvent implements sim.Quiescent. The arbiter has no timed events of
// its own: it is idle exactly when the head response (if any) cannot be
// routed and no pending request can be granted. A source left waiting
// accrues its per-cycle conflict count arithmetically via SkipTo.
func (a *Arbiter) NextEvent(now sim.Cycle) (sim.Cycle, bool) {
	if resp, ok := a.down.Up.Peek(); ok {
		src, known := a.owner[resp.ID]
		if !known || a.up[src].Up.CanPush() {
			return 0, false // orphan pop or routable response
		}
	}
	a.skipConflicts = false
	for i := range a.up {
		if a.up[i].Down.Len() > 0 {
			if a.down.Down.CanPush() {
				return 0, false // a grant would happen
			}
			a.skipConflicts = true
		}
	}
	return sim.Never, true
}

// SkipTo implements sim.Quiescent: sources that sat on queued work
// through the skipped cycles collect one conflict per cycle, exactly as
// the per-cycle Eval would have counted.
func (a *Arbiter) SkipTo(now, target sim.Cycle) {
	if !a.skipConflicts {
		return
	}
	delta := uint64(target - now)
	for i := range a.up {
		if a.up[i].Down.Len() > 0 {
			a.Conflicts[i] += delta
		}
	}
}

// InFlight returns the number of requests forwarded down whose responses
// have not yet been routed back.
func (a *Arbiter) InFlight() int { return len(a.owner) }

// TotalGrants sums grants over all sources.
func (a *Arbiter) TotalGrants() uint64 {
	var t uint64
	for _, g := range a.Granted {
		t += g
	}
	return t
}
