package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tech"
)

func TestStaticPJ(t *testing.T) {
	// 1 mW over 1e9 cycles of ~0.3 ns = 0.3002 s -> ~3e8 pJ... compute
	// exactly from tech constants.
	cycles := uint64(1_000_000)
	want := 1.0 * 1e9 * tech.Seconds(cycles)
	if got := StaticPJ(1.0, cycles); math.Abs(got-want) > 1e-6 {
		t.Fatalf("StaticPJ = %v, want %v", got, want)
	}
	if StaticPJ(0, 100) != 0 {
		t.Fatal("zero leakage should cost nothing")
	}
}

func TestBreakdownTotalAndGet(t *testing.T) {
	var b Breakdown
	b.Add(Dynamic, 10)
	b.Add(StaticL1RT, 5)
	b.Add(StaticMid, 3)
	b.Add(StaticLLC, 2)
	if b.Total() != 20 {
		t.Fatalf("Total = %v, want 20", b.Total())
	}
	if b.Get(StaticMid) != 3 {
		t.Fatalf("Get(StaticMid) = %v", b.Get(StaticMid))
	}
}

func TestNormalizedTo(t *testing.T) {
	var base, other Breakdown
	base.Add(Dynamic, 50)
	base.Add(StaticLLC, 50)
	other.Add(Dynamic, 25)
	other.Add(StaticLLC, 50)
	frac := other.NormalizedTo(base)
	if math.Abs(frac[0]-0.25) > 1e-12 || math.Abs(frac[3]-0.5) > 1e-12 {
		t.Fatalf("NormalizedTo = %v", frac)
	}
	// The normalized total of the base against itself is 1.
	self := base.NormalizedTo(base)
	sum := self[0] + self[1] + self[2] + self[3]
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("self-normalized sum = %v, want 1", sum)
	}
}

func TestSavingsPercent(t *testing.T) {
	var base, b Breakdown
	base.Add(Dynamic, 100)
	b.Add(Dynamic, 90)
	if got := b.SavingsPercentVs(base); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Savings = %v, want 10", got)
	}
	if got := base.SavingsPercentVs(b); got >= 0 {
		t.Fatalf("negative savings expected, got %v", got)
	}
}

func TestAccountantFinish(t *testing.T) {
	var a Accountant
	a.AddLeakage(StaticLLC, 600)
	a.AddLeakage(StaticL1RT, 12.8)
	a.AddDynamicPJ(1234)
	b := a.Finish(1000)
	if b.Get(Dynamic) != 1234 {
		t.Fatalf("dynamic = %v", b.Get(Dynamic))
	}
	if math.Abs(b.Get(StaticLLC)-StaticPJ(600, 1000)) > 1e-9 {
		t.Fatalf("LLC static wrong: %v", b.Get(StaticLLC))
	}
	if b.Get(StaticMid) != 0 {
		t.Fatal("untouched bucket should be zero")
	}
}

func TestAccountantRejectsDynamicLeakage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("leakage into Dynamic should panic")
		}
	}()
	var a Accountant
	a.AddLeakage(Dynamic, 1)
}

func TestStaticDominatesLongRuns(t *testing.T) {
	// The paper notes cache energy is dominated by static consumption;
	// verify the model reproduces that for Table I magnitudes.
	var a Accountant
	a.AddLeakage(StaticLLC, 600) // 8MB L3
	perAccess := 20.9
	accesses := 100_000.0
	a.AddDynamicPJ(perAccess * accesses)
	b := a.Finish(100_000_000) // 100M cycles = 30 ms
	if b.Get(StaticLLC) < 10*b.Get(Dynamic) {
		t.Fatalf("static %.3g pJ should dwarf dynamic %.3g pJ",
			b.Get(StaticLLC), b.Get(Dynamic))
	}
}

func TestBucketStrings(t *testing.T) {
	names := map[Bucket]string{
		Dynamic: "dyn.", StaticL1RT: "sta. L1-RT",
		StaticMid: "sta. L2-RESTT", StaticLLC: "sta. LLC",
	}
	for b, want := range names {
		if b.String() != want {
			t.Errorf("Bucket(%d) = %q, want %q", b, b.String(), want)
		}
	}
}

func TestBreakdownAdditivityProperty(t *testing.T) {
	f := func(d1, d2 uint16) bool {
		var a, b, c Breakdown
		a.Add(Dynamic, float64(d1))
		b.Add(Dynamic, float64(d2))
		c.Add(Dynamic, float64(d1)+float64(d2))
		return math.Abs(a.Total()+b.Total()-c.Total()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBreakdownString(t *testing.T) {
	var b Breakdown
	b.Add(Dynamic, 1)
	if s := b.String(); s == "" {
		t.Fatal("empty string rendering")
	}
}
