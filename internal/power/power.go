// Package power performs the whole-run energy accounting behind the
// paper's Figures 4(b) and 5(b): dynamic energy from per-event counts and
// static energy from leakage power times execution time, broken into the
// same buckets the figures plot — dynamic, static L1/r-tile, static
// L2-or-rest-of-tiles, and static L3-or-D-NUCA.
package power

import (
	"fmt"
	"strings"

	"repro/internal/tech"
)

// Bucket labels one stacked-bar component of Fig. 4(b)/5(b).
type Bucket uint8

const (
	// Dynamic is all switching energy (arrays plus networks).
	Dynamic Bucket = iota
	// StaticL1RT is the L1 / r-tile leakage.
	StaticL1RT
	// StaticMid is the L2 leakage (conventional) or the leakage of the
	// rest of the tiles (L-NUCA): the paper's "L2-RESTT" bucket.
	StaticMid
	// StaticLLC is the L3 or D-NUCA leakage.
	StaticLLC
	numBuckets
)

func (b Bucket) String() string {
	switch b {
	case Dynamic:
		return "dyn."
	case StaticL1RT:
		return "sta. L1-RT"
	case StaticMid:
		return "sta. L2-RESTT"
	case StaticLLC:
		return "sta. LLC"
	default:
		return "bucket?"
	}
}

// StaticPJ converts leakage power over a cycle count into picojoules:
// 1 mW for 1 s is 1e9 pJ.
func StaticPJ(leakMW float64, cycles uint64) float64 {
	return leakMW * 1e9 * tech.Seconds(cycles)
}

// Breakdown is the per-bucket energy of one run, in picojoules.
type Breakdown struct {
	PJ [numBuckets]float64
}

// Add accumulates energy into a bucket.
func (b *Breakdown) Add(bucket Bucket, pj float64) {
	b.PJ[bucket] += pj
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 {
	t := 0.0
	for _, v := range b.PJ {
		t += v
	}
	return t
}

// Get returns one bucket's energy.
func (b Breakdown) Get(bucket Bucket) float64 { return b.PJ[bucket] }

// NormalizedTo expresses each bucket as a fraction of base's total, the
// way Figures 4(b) and 5(b) plot stacked bars.
func (b Breakdown) NormalizedTo(base Breakdown) [4]float64 {
	var out [4]float64
	t := base.Total()
	if t == 0 {
		return out
	}
	for i := range b.PJ {
		out[i] = b.PJ[i] / t
	}
	return out
}

// SavingsPercentVs returns the total-energy saving of b relative to base
// in percent (positive = b uses less energy).
func (b Breakdown) SavingsPercentVs(base Breakdown) float64 {
	t := base.Total()
	if t == 0 {
		return 0
	}
	return 100 * (t - b.Total()) / t
}

// String renders the breakdown.
func (b Breakdown) String() string {
	var s strings.Builder
	for i := Bucket(0); i < numBuckets; i++ {
		fmt.Fprintf(&s, "%s=%.3g pJ ", i, b.PJ[i])
	}
	fmt.Fprintf(&s, "total=%.3g pJ", b.Total())
	return s.String()
}

// Accountant accumulates a run's energy: leakage sources registered once,
// dynamic events added as they are counted, and a final Finish that
// converts leakage to energy using the elapsed cycles.
type Accountant struct {
	leaks [numBuckets]float64 // mW per bucket
	dyn   float64             // pJ
}

// AddLeakage registers a static power source.
func (a *Accountant) AddLeakage(bucket Bucket, mw float64) {
	if bucket == Dynamic {
		panic("power: leakage cannot go to the dynamic bucket")
	}
	a.leaks[bucket] += mw
}

// AddDynamicPJ accumulates switching energy.
func (a *Accountant) AddDynamicPJ(pj float64) { a.dyn += pj }

// LeakageMW returns the registered leakage of a bucket (tests).
func (a *Accountant) LeakageMW(bucket Bucket) float64 { return a.leaks[bucket] }

// Finish converts the account into a Breakdown for a run of the given
// length.
func (a *Accountant) Finish(cycles uint64) Breakdown {
	var b Breakdown
	b.Add(Dynamic, a.dyn)
	for bucket := StaticL1RT; bucket < numBuckets; bucket++ {
		b.Add(bucket, StaticPJ(a.leaks[bucket], cycles))
	}
	return b
}
