package area

import (
	"math"
	"testing"
)

// Table II published values.
var published = map[int]struct {
	totalMM2 float64
	netPct   float64
}{
	2: {0.46, 14.01},
	3: {0.86, 18.8},
	4: {1.59, 19.02},
}

func TestConventionalMatchesTableII(t *testing.T) {
	got := Conventional()
	if math.Abs(got-0.91)/0.91 > 0.20 {
		t.Fatalf("L1+L2 area = %.3f mm^2, published 0.91 (tolerance 20%%)", got)
	}
}

func TestLNUCATotalsMatchTableII(t *testing.T) {
	for levels, pub := range published {
		r := LNUCA(levels)
		if math.Abs(r.TotalMM2-pub.totalMM2)/pub.totalMM2 > 0.20 {
			t.Errorf("LN%d total = %.3f mm^2, published %.2f (tolerance 20%%)",
				levels, r.TotalMM2, pub.totalMM2)
		}
		if r.NetworkPct < 8 || r.NetworkPct > 28 {
			t.Errorf("LN%d network share = %.1f%%, published %.1f%% (want same regime)",
				levels, r.NetworkPct, pub.netPct)
		}
	}
}

func TestLN3SavesAreaVsConventional(t *testing.T) {
	// The paper's headline: LN3-144KB saves ~5.3% versus L2-256KB while
	// beating its performance. Require a saving in (0, 20%).
	r := LNUCA(3)
	if r.SavingsVsConventionalPct <= 0 {
		t.Fatalf("LN3 does not save area: %+.1f%% (total %.3f vs conv %.3f)",
			r.SavingsVsConventionalPct, r.TotalMM2, Conventional())
	}
	if r.SavingsVsConventionalPct > 20 {
		t.Fatalf("LN3 saving implausibly large: %.1f%%", r.SavingsVsConventionalPct)
	}
}

func TestOrderingAcrossLevels(t *testing.T) {
	r2, r3, r4 := LNUCA(2), LNUCA(3), LNUCA(4)
	if !(r2.TotalMM2 < r3.TotalMM2 && r3.TotalMM2 < r4.TotalMM2) {
		t.Fatalf("areas not increasing: %.3f %.3f %.3f",
			r2.TotalMM2, r3.TotalMM2, r4.TotalMM2)
	}
	// LN2 smaller than baseline, LN4 bigger (Table II).
	if r2.TotalMM2 >= Conventional() {
		t.Error("LN2 should be well below the conventional pair")
	}
	if r4.TotalMM2 <= Conventional() {
		t.Error("LN4 should exceed the conventional pair")
	}
	// Network share grows then roughly saturates (14 -> ~19%).
	if r2.NetworkPct >= r3.NetworkPct {
		t.Errorf("network share should grow from LN2 (%.1f%%) to LN3 (%.1f%%)",
			r2.NetworkPct, r3.NetworkPct)
	}
}

func TestReportInternalConsistency(t *testing.T) {
	r := LNUCA(3)
	sum := r.RTileMM2 + r.TilesMM2 + r.NetworkMM2
	if math.Abs(sum-r.TotalMM2) > 1e-9 {
		t.Fatalf("total %.4f != parts %.4f", r.TotalMM2, sum)
	}
	if r.TilesMM2 <= 0 || r.RTileMM2 <= 0 || r.NetworkMM2 <= 0 {
		t.Fatal("non-positive component")
	}
	if got := 14 * TileMM2(); math.Abs(got-r.TilesMM2) > 1e-9 {
		t.Fatalf("LN3 tile area %.4f != 14 x tile %.4f", r.TilesMM2, got)
	}
	if RTileMM2() != r.RTileMM2 {
		t.Fatal("r-tile area mismatch")
	}
}
