// Package area rolls up silicon area for Table II: the conventional
// L1+L2 pair versus L-NUCA organizations of 2..4 levels, splitting each
// L-NUCA total into SRAM and network (buffers, crossbars, link repeaters)
// shares, which the paper reports as 14–19% of the total.
package area

import (
	"repro/internal/lnuca"
	"repro/internal/nocpower"
	"repro/internal/sram"
	"repro/internal/tech"
)

// Table I geometries used by the roll-up.
var (
	l1Cfg = sram.Config{SizeBytes: 32 << 10, Ways: 4, BlockBytes: 32, Ports: 2, Device: tech.HP}
	l2Cfg = sram.Config{SizeBytes: 256 << 10, Ways: 8, BlockBytes: 64, Ports: 1, Device: tech.HP, Serial: true}
	tile  = sram.Config{SizeBytes: 8 << 10, Ways: 2, BlockBytes: 32, Ports: 1, Device: tech.HP}
)

// transportBits is the Transport/Replacement message width: a 32-byte
// block plus address/status (Section III.B: links are message-wide).
const transportBits = 32*8 + 40

// searchBits is the Search message width (block address plus status).
const searchBits = 48

// tilePitchMM approximates the inter-tile link length from the tile
// footprint.
const tilePitchMM = 0.25

// Conventional returns the baseline L1+L2 area (Table II row 1).
func Conventional() float64 {
	return sram.AreaMM2(l1Cfg) + sram.AreaMM2(l2Cfg)
}

// Report describes one L-NUCA area roll-up.
type Report struct {
	Levels     int
	RTileMM2   float64
	TilesMM2   float64
	NetworkMM2 float64
	TotalMM2   float64
	NetworkPct float64
	// SavingsVsConventionalPct is positive when the L-NUCA is smaller
	// than the 256KB-L2 baseline.
	SavingsVsConventionalPct float64
}

// LNUCA computes the Table II roll-up for an n-level L-NUCA.
func LNUCA(levels int) Report {
	g := lnuca.MustGeometry(levels)
	rt := sram.AreaMM2(l1Cfg)
	tiles := float64(g.NumTiles()) * sram.AreaMM2(tile)

	network := 0.0
	for i := range g.Sites {
		s := &g.Sites[i]
		// Per-tile switch: MA register + two-entry buffers per link, the
		// cut-through transport crossbar (Section III.C: 3 inputs reduce
		// to the 2 D buffers + cache; up to 2 outputs), and the U path.
		r := nocpower.RouterSpec{
			InLinks:       len(s.TransportIn) + len(s.ReplaceIn) + 1, // +1 search
			OutLinks:      len(s.TransportOut) + len(s.ReplaceOut) + len(s.SearchChildren),
			BufferEntries: 2*(len(s.TransportIn)+len(s.ReplaceIn)) + 1, // +MA
			Bits:          transportBits,
			CrossbarIn:    3,
			CrossbarOut:   max(len(s.TransportOut), 1),
			AvgLinkMM:     tilePitchMM,
		}
		network += r.AreaMM2()
		// The search MA path is narrow; charge it separately.
		network += nocpower.RouterSpec{
			BufferEntries: 1,
			Bits:          searchBits,
			CrossbarIn:    1, CrossbarOut: len(s.SearchChildren),
			AvgLinkMM: tilePitchMM,
		}.AreaMM2()
	}
	// R-tile flow-control extension: input D buffers and victim U path.
	network += nocpower.RouterSpec{
		InLinks:       len(g.RTileTransportIn),
		OutLinks:      len(g.RTileReplaceOut) + len(g.RTileSearchChildren),
		BufferEntries: 2*len(g.RTileTransportIn) + 2,
		Bits:          transportBits,
		CrossbarIn:    len(g.RTileTransportIn),
		CrossbarOut:   2,
		AvgLinkMM:     tilePitchMM,
	}.AreaMM2()

	total := rt + tiles + network
	conv := Conventional()
	return Report{
		Levels:                   levels,
		RTileMM2:                 rt,
		TilesMM2:                 tiles,
		NetworkMM2:               network,
		TotalMM2:                 total,
		NetworkPct:               100 * network / total,
		SavingsVsConventionalPct: 100 * (conv - total) / conv,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TileMM2 exposes the single-tile SRAM area (used by cmd tooling).
func TileMM2() float64 { return sram.AreaMM2(tile) }

// RTileMM2 exposes the r-tile SRAM area.
func RTileMM2() float64 { return sram.AreaMM2(l1Cfg) }
