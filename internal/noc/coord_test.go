package noc

import (
	"testing"
	"testing/quick"
)

func TestManhattan(t *testing.T) {
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{3, 4}, 7},
		{Coord{-2, 1}, Coord{2, -1}, 6},
	}
	for _, c := range cases {
		if got := Manhattan(c.a, c.b); got != c.want {
			t.Errorf("Manhattan(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Manhattan(c.b, c.a); got != c.want {
			t.Errorf("Manhattan not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestChebyshev(t *testing.T) {
	if got := Chebyshev(Coord{0, 0}, Coord{3, 4}); got != 4 {
		t.Errorf("Chebyshev = %d, want 4", got)
	}
	if got := Chebyshev(Coord{-1, 0}, Coord{1, 1}); got != 2 {
		t.Errorf("Chebyshev = %d, want 2", got)
	}
}

func TestManhattanTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Coord{int(ax), int(ay)}
		b := Coord{int(bx), int(by)}
		c := Coord{int(cx), int(cy)}
		return Manhattan(a, c) <= Manhattan(a, b)+Manhattan(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDirStepAndOpposite(t *testing.T) {
	origin := Coord{5, 5}
	for _, d := range []Dir{North, East, South, West} {
		moved := origin.Step(d)
		if moved == origin {
			t.Errorf("Step(%v) did not move", d)
		}
		back := moved.Step(d.Opposite())
		if back != origin {
			t.Errorf("Step(%v) then Step(opposite) = %v, want %v", d, back, origin)
		}
	}
	if origin.Step(Local) != origin {
		t.Error("Step(Local) must not move")
	}
	if Local.Opposite() != Local {
		t.Error("Local.Opposite should be Local")
	}
}

func TestDirString(t *testing.T) {
	want := map[Dir]string{North: "N", East: "E", South: "S", West: "W", Local: "L", Dir(9): "?"}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("Dir(%d).String() = %q, want %q", d, d.String(), s)
		}
	}
}

func TestXYRouteReachesDestination(t *testing.T) {
	f := func(sx, sy, dx, dy uint8) bool {
		cur := Coord{int(sx % 8), int(sy % 8)}
		dst := Coord{int(dx % 8), int(dy % 8)}
		for steps := 0; steps < 20; steps++ {
			d := XYRoute(cur, dst)
			if d == Local {
				return cur == dst
			}
			cur = cur.Step(d)
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXYRouteXFirst(t *testing.T) {
	// Dimension order: X must be corrected before Y.
	if d := XYRoute(Coord{0, 0}, Coord{3, 3}); d != East {
		t.Errorf("XYRoute = %v, want East (X first)", d)
	}
	if d := XYRoute(Coord{3, 0}, Coord{3, 3}); d != North {
		t.Errorf("XYRoute = %v, want North once X aligned", d)
	}
}
