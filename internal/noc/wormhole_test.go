package noc

import (
	"testing"

	"repro/internal/sim"
)

func dnucaMesh() *Mesh {
	// Table I: 4 VCs, 4-flit buffers; an 8x4 mesh like DN-4x8.
	return NewMesh(MeshConfig{Width: 8, Height: 4, VCs: 4, VCDepth: 4})
}

func TestMeshConfigValidate(t *testing.T) {
	bad := []MeshConfig{
		{Width: 0, Height: 4, VCs: 4, VCDepth: 4},
		{Width: 8, Height: 0, VCs: 4, VCDepth: 4},
		{Width: 8, Height: 4, VCs: 0, VCDepth: 4},
		{Width: 8, Height: 4, VCs: 4, VCDepth: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
	if err := (MeshConfig{Width: 2, Height: 2, VCs: 1, VCDepth: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMeshSingleMessageLatency(t *testing.T) {
	m := dnucaMesh()
	msg := &Message{ID: 1, Src: Coord{0, 0}, Dst: Coord{3, 2}, Flits: 1}
	if !m.Inject(msg, 0) {
		t.Fatal("inject failed")
	}
	var now sim.Cycle
	for now = 0; now < 100; now++ {
		m.Step(now)
		if got, ok := m.EjectOne(Coord{3, 2}); ok {
			if got.ID != 1 {
				t.Fatalf("wrong message ejected: %d", got.ID)
			}
			// 5 hops + injection/ejection pipeline: roughly hops+2.
			hops := Manhattan(msg.Src, msg.Dst)
			if int(got.Delivered-got.Injected) < hops {
				t.Fatalf("latency %d below hop count %d", got.Delivered-got.Injected, hops)
			}
			if int(got.Delivered-got.Injected) > hops+6 {
				t.Fatalf("uncontended latency %d way above hop count %d",
					got.Delivered-got.Injected, hops)
			}
			return
		}
	}
	t.Fatal("message never delivered")
}

func TestMeshMultiFlitWormhole(t *testing.T) {
	m := dnucaMesh()
	// A 5-flit message (Table I: 1-5 flits per message).
	msg := &Message{ID: 1, Src: Coord{0, 0}, Dst: Coord{7, 3}, Flits: 5}
	m.Inject(msg, 0)
	for now := sim.Cycle(0); now < 200; now++ {
		m.Step(now)
		if got, ok := m.EjectOne(Coord{7, 3}); ok {
			hops := Manhattan(msg.Src, msg.Dst)
			// Tail trails the head by Flits-1 cycles under wormhole.
			if int(got.Delivered-got.Injected) < hops+msg.Flits-1 {
				t.Fatalf("latency %d too small for %d-flit wormhole over %d hops",
					got.Delivered-got.Injected, msg.Flits, hops)
			}
			return
		}
	}
	t.Fatal("message never delivered")
}

func TestMeshAllMessagesDelivered(t *testing.T) {
	m := dnucaMesh()
	rng := sim.NewRand(7)
	want := 0
	delivered := 0
	var pendingInject []*Message
	for i := 0; i < 200; i++ {
		pendingInject = append(pendingInject, &Message{
			ID:    uint64(i + 1),
			Src:   Coord{rng.Intn(8), rng.Intn(4)},
			Dst:   Coord{rng.Intn(8), rng.Intn(4)},
			Flits: 1 + rng.Intn(5),
		})
		want++
	}
	for now := sim.Cycle(0); now < 20000 && delivered < want; now++ {
		// Trickle injections as staging space allows.
		for len(pendingInject) > 0 && m.Inject(pendingInject[0], now) {
			pendingInject = pendingInject[1:]
		}
		m.Step(now)
		for x := 0; x < 8; x++ {
			for y := 0; y < 4; y++ {
				delivered += len(m.Eject(Coord{x, y}))
			}
		}
	}
	if delivered != want {
		t.Fatalf("delivered %d of %d messages (in flight: %d)", delivered, want, m.InFlight())
	}
	if m.MsgsDelivered != uint64(want) {
		t.Fatalf("stats mismatch: MsgsDelivered=%d want %d", m.MsgsDelivered, want)
	}
}

func TestMeshHeavyContentionSingleSink(t *testing.T) {
	// All nodes hammer one sink: the network must not deadlock or drop.
	m := NewMesh(MeshConfig{Width: 4, Height: 4, VCs: 2, VCDepth: 2})
	sink := Coord{0, 0}
	var queued []*Message
	id := uint64(0)
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			if (Coord{x, y}) == sink {
				continue
			}
			for k := 0; k < 6; k++ {
				id++
				queued = append(queued, &Message{ID: id, Src: Coord{x, y}, Dst: sink, Flits: 3})
			}
		}
	}
	want := len(queued)
	got := 0
	for now := sim.Cycle(0); now < 50000 && got < want; now++ {
		for len(queued) > 0 && m.Inject(queued[0], now) {
			queued = queued[1:]
		}
		m.Step(now)
		got += len(m.Eject(sink))
	}
	if got != want {
		t.Fatalf("delivered %d of %d under contention", got, want)
	}
}

func TestMeshContentionIncreasesLatency(t *testing.T) {
	// One message alone vs the same message with background traffic.
	solo := dnucaMesh()
	msg := &Message{ID: 1, Src: Coord{0, 0}, Dst: Coord{7, 0}, Flits: 3}
	solo.Inject(msg, 0)
	for now := sim.Cycle(0); now < 200 && solo.MsgsDelivered == 0; now++ {
		solo.Step(now)
		solo.Eject(Coord{7, 0})
	}
	soloLat := solo.TotalLatency

	busy := dnucaMesh()
	// Background: many same-row messages fighting for the same links.
	for i := 0; i < 12; i++ {
		busy.Inject(&Message{ID: uint64(100 + i), Src: Coord{i % 4, 0}, Dst: Coord{7, 0}, Flits: 5}, 0)
	}
	probe := &Message{ID: 1, Src: Coord{0, 0}, Dst: Coord{7, 0}, Flits: 3}
	busy.Inject(probe, 0)
	for now := sim.Cycle(0); now < 5000 && probe.Delivered == 0; now++ {
		busy.Step(now)
		busy.Eject(Coord{7, 0})
	}
	if probe.Delivered == 0 {
		t.Fatal("probe never delivered under load")
	}
	if uint64(probe.Delivered-probe.Injected) <= soloLat {
		t.Fatalf("contention did not increase latency: solo=%d busy=%d",
			soloLat, probe.Delivered-probe.Injected)
	}
}

func TestMeshNumLinks(t *testing.T) {
	m := dnucaMesh() // 8x4
	// Unidirectional: 2*(8*3 + 4*7) = 2*52 = 104.
	if got := m.NumLinks(); got != 104 {
		t.Fatalf("NumLinks = %d, want 104", got)
	}
}

func TestMeshInjectBounds(t *testing.T) {
	m := dnucaMesh()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds inject should panic")
		}
	}()
	m.Inject(&Message{Src: Coord{99, 0}, Dst: Coord{0, 0}, Flits: 1}, 0)
}

func TestMeshZeroFlitClamped(t *testing.T) {
	m := dnucaMesh()
	msg := &Message{ID: 1, Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 0}
	m.Inject(msg, 0)
	if msg.Flits != 1 {
		t.Fatal("zero-flit message should clamp to 1")
	}
}

func TestMeshLocalDelivery(t *testing.T) {
	// Src == Dst must still work (loopback through the local port).
	m := dnucaMesh()
	msg := &Message{ID: 1, Src: Coord{2, 2}, Dst: Coord{2, 2}, Flits: 2}
	m.Inject(msg, 0)
	for now := sim.Cycle(0); now < 50; now++ {
		m.Step(now)
		if got, ok := m.EjectOne(Coord{2, 2}); ok {
			if got.ID != 1 {
				t.Fatal("wrong message")
			}
			return
		}
	}
	t.Fatal("loopback message never delivered")
}

func TestMeshAvgLatencyStat(t *testing.T) {
	m := dnucaMesh()
	if m.AvgLatency() != 0 {
		t.Fatal("AvgLatency of idle mesh should be 0")
	}
	m.Inject(&Message{ID: 1, Src: Coord{0, 0}, Dst: Coord{1, 0}, Flits: 1}, 0)
	for now := sim.Cycle(0); now < 50 && m.MsgsDelivered == 0; now++ {
		m.Step(now)
	}
	if m.AvgLatency() <= 0 {
		t.Fatalf("AvgLatency = %v, want positive", m.AvgLatency())
	}
}
