// Package noc provides the generic network-on-chip machinery the simulated
// hierarchies are built from: grid coordinates, and a flit-level wormhole
// mesh with virtual channels and dimension-order routing — the network
// style the paper's D-NUCA baseline uses (Table I: 4 virtual channels,
// 4-flit buffers, 1-cycle routing, 1–5 flits per message) and the style
// L-NUCA's three specialized networks are designed to beat.
package noc

import "fmt"

// Coord is a position on a 2-D grid.
type Coord struct {
	X, Y int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Manhattan returns the L1 grid distance between two coordinates.
func Manhattan(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

// Chebyshev returns the L-infinity grid distance between two coordinates.
func Chebyshev(a, b Coord) int {
	dx, dy := abs(a.X-b.X), abs(a.Y-b.Y)
	if dx > dy {
		return dx
	}
	return dy
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Dir is a mesh port direction.
type Dir uint8

const (
	// North increases Y.
	North Dir = iota
	// East increases X.
	East
	// South decreases Y.
	South
	// West decreases X.
	West
	// Local is the node's injection/ejection port.
	Local
	// NumDirs counts the port directions.
	NumDirs = 5
)

func (d Dir) String() string {
	switch d {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	case Local:
		return "L"
	default:
		return "?"
	}
}

// Opposite returns the port on the far side of a link.
func (d Dir) Opposite() Dir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		return Local
	}
}

// Step returns the coordinate one hop in direction d.
func (c Coord) Step(d Dir) Coord {
	switch d {
	case North:
		return Coord{c.X, c.Y + 1}
	case South:
		return Coord{c.X, c.Y - 1}
	case East:
		return Coord{c.X + 1, c.Y}
	case West:
		return Coord{c.X - 1, c.Y}
	default:
		return c
	}
}

// XYRoute returns the dimension-order (X first, then Y) output direction
// for a packet at cur heading to dst; Local when cur == dst.
func XYRoute(cur, dst Coord) Dir {
	switch {
	case dst.X > cur.X:
		return East
	case dst.X < cur.X:
		return West
	case dst.Y > cur.Y:
		return North
	case dst.Y < cur.Y:
		return South
	default:
		return Local
	}
}
