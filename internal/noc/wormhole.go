package noc

import (
	"fmt"

	"repro/internal/sim"
)

// Message is a multi-flit packet traveling through a wormhole mesh.
type Message struct {
	ID      uint64
	Src     Coord
	Dst     Coord
	Flits   int
	Payload interface{}
	// Injected is stamped by the mesh when the head flit enters the
	// network; Delivered when the tail flit ejects.
	Injected, Delivered sim.Cycle
}

// flit is the wormhole flow-control unit.
type flit struct {
	msg  *Message
	head bool
	tail bool
}

// vcState tracks an input virtual channel's wormhole reservation.
type vcState struct {
	buf []flit
	// routed is set once the head flit has picked an output.
	routed  bool
	outDir  Dir
	outVC   int
	credits int // unused on Local ejection
}

// outOwner records which input VC currently owns an output VC (from head
// until tail, the wormhole invariant).
type outOwner struct {
	active bool
	inDir  Dir
	inVC   int
}

type router struct {
	pos Coord
	// in[dir][vc] input-buffered virtual channels.
	in [NumDirs][]vcState
	// owner[dir][vc] output VC reservations.
	owner [NumDirs][]outOwner
	// ejected messages awaiting pickup by the local node.
	ejectQ sim.Queue[*Message]
	// rrNext rotates switch-allocation priority for fairness.
	rrNext int
}

// MeshConfig parameterizes a wormhole mesh.
type MeshConfig struct {
	Width, Height int
	VCs           int // virtual channels per physical link (Table I: 4)
	VCDepth       int // flit buffer depth per VC (Table I: 4)
}

// Validate reports configuration errors.
func (c MeshConfig) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("noc: mesh %dx%d has non-positive dimension", c.Width, c.Height)
	}
	if c.VCs <= 0 || c.VCDepth <= 0 {
		return fmt.Errorf("noc: VCs=%d depth=%d must be positive", c.VCs, c.VCDepth)
	}
	return nil
}

// Mesh is a cycle-stepped 2-D wormhole mesh with input-buffered virtual
// channels, XY routing, and round-robin switch allocation. It is driven by
// a single owning component via Step, which keeps it deterministic.
//
// XY routing plus guaranteed ejection (unbounded eject queues drained by
// the owner) makes the network provably deadlock-free, the same argument
// the paper invokes for L-NUCA's acyclic networks.
type Mesh struct {
	cfg     MeshConfig
	routers []*router

	// injectQ holds messages not yet converted to flits, per node.
	injectQ [][]*Message

	// Per-Step scratch, hoisted out of the cycle loop so steady-state
	// stepping allocates nothing.
	moves    []move
	takenAll []outTaken

	// ejected counts messages delivered but not yet picked up, so Quiet
	// is O(1).
	ejected int

	// Stats
	MsgsInjected, MsgsDelivered uint64
	FlitHops                    uint64
	TotalLatency                uint64
	TotalHops                   uint64
}

// outTaken tracks which output ports a router granted this cycle.
type outTaken struct{ taken [NumDirs]bool }

// NewMesh builds a mesh; it panics on invalid configuration (wiring bug).
func NewMesh(cfg MeshConfig) *Mesh {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Mesh{cfg: cfg}
	n := cfg.Width * cfg.Height
	m.routers = make([]*router, n)
	m.injectQ = make([][]*Message, n)
	m.takenAll = make([]outTaken, n)
	for i := range m.routers {
		r := &router{pos: Coord{i % cfg.Width, i / cfg.Width}}
		for d := 0; d < NumDirs; d++ {
			r.in[d] = make([]vcState, cfg.VCs)
			r.owner[d] = make([]outOwner, cfg.VCs)
		}
		m.routers[i] = r
	}
	return m
}

// Config returns the mesh configuration.
func (m *Mesh) Config() MeshConfig { return m.cfg }

func (m *Mesh) at(c Coord) *router {
	return m.routers[c.Y*m.cfg.Width+c.X]
}

// InBounds reports whether c is a valid node.
func (m *Mesh) InBounds(c Coord) bool {
	return c.X >= 0 && c.X < m.cfg.Width && c.Y >= 0 && c.Y < m.cfg.Height
}

// Inject queues msg for injection at its source node. It returns false
// when the source-local injection staging is saturated (more than VCDepth
// messages waiting), modeling finite injection bandwidth.
func (m *Mesh) Inject(msg *Message, now sim.Cycle) bool {
	if !m.InBounds(msg.Src) || !m.InBounds(msg.Dst) {
		panic(fmt.Sprintf("noc: inject out of bounds: %v -> %v", msg.Src, msg.Dst))
	}
	if msg.Flits <= 0 {
		msg.Flits = 1
	}
	idx := msg.Src.Y*m.cfg.Width + msg.Src.X
	if len(m.injectQ[idx]) >= m.cfg.VCDepth {
		return false
	}
	msg.Injected = now
	m.injectQ[idx] = append(m.injectQ[idx], msg)
	m.MsgsInjected++
	return true
}

// Eject drains delivered messages at node c. It allocates a fresh
// slice; cycle-loop callers should drain with EjectOne instead.
func (m *Mesh) Eject(c Coord) []*Message {
	r := m.at(c)
	if r.ejectQ.Len() == 0 {
		return nil
	}
	out := make([]*Message, 0, r.ejectQ.Len())
	for {
		msg, ok := r.ejectQ.Pop()
		if !ok {
			return out
		}
		m.ejected--
		out = append(out, msg)
	}
}

// EjectOne pops a single delivered message at node c, if any. The
// queue's ring storage is reused, so draining allocates nothing.
func (m *Mesh) EjectOne(c Coord) (*Message, bool) {
	msg, ok := m.at(c).ejectQ.Pop()
	if ok {
		m.ejected--
	}
	return msg, ok
}

// move is a staged flit transfer computed during the allocation pass and
// applied afterwards, giving single-cycle-per-hop semantics without
// order dependence between routers.
type move struct {
	from     *router
	fromDir  Dir
	fromVC   int
	to       *router // nil for ejection
	toDir    Dir
	toVC     int
	f        flit
	lastFlit bool
}

// Step advances the mesh by one cycle.
func (m *Mesh) Step(now sim.Cycle) {
	// Stage injections: convert one message per node per cycle into flits
	// on a free Local input VC.
	for idx, q := range m.injectQ {
		if len(q) == 0 {
			continue
		}
		r := m.routers[idx]
		for vc := 0; vc < m.cfg.VCs; vc++ {
			st := &r.in[Local][vc]
			if len(st.buf) == 0 && !st.routed {
				msg := q[0]
				m.injectQ[idx] = q[1:]
				for i := 0; i < msg.Flits; i++ {
					st.buf = append(st.buf, flit{
						msg:  msg,
						head: i == 0,
						tail: i == msg.Flits-1,
					})
				}
				break
			}
		}
	}

	// Allocation pass: each router picks at most one flit per output
	// direction, reading only current buffer state. The staging slices
	// live on the Mesh and are reset here, not reallocated.
	moves := m.moves[:0]
	takenAll := m.takenAll
	for i := range takenAll {
		takenAll[i] = outTaken{}
	}

	for ri, r := range m.routers {
		// Round-robin over input (dir, vc) pairs for fairness.
		total := NumDirs * m.cfg.VCs
		for k := 0; k < total; k++ {
			slot := (r.rrNext + k) % total
			inDir := Dir(slot / m.cfg.VCs)
			inVC := slot % m.cfg.VCs
			st := &r.in[inDir][inVC]
			if len(st.buf) == 0 {
				continue
			}
			f := st.buf[0]
			// Route computation on head flit.
			if f.head && !st.routed {
				st.outDir = XYRoute(r.pos, f.msg.Dst)
				st.outVC = -1
				st.routed = true
			}
			if !st.routed {
				continue // body flit of a stream whose head is gone: impossible, but safe
			}
			out := st.outDir
			if takenAll[ri].taken[out] {
				continue // output port already granted this cycle
			}
			if out == Local {
				// Ejection consumes the flit immediately (guaranteed
				// consumption keeps the network deadlock-free).
				moves = append(moves, move{
					from: r, fromDir: inDir, fromVC: inVC,
					to: nil, f: f, lastFlit: f.tail,
				})
				takenAll[ri].taken[out] = true
				continue
			}
			next := m.at(r.pos.Step(out))
			inPortAtNext := out.Opposite()
			// Virtual-channel allocation on head flits.
			if st.outVC < 0 {
				for vc := 0; vc < m.cfg.VCs; vc++ {
					own := &next.in[inPortAtNext][vc]
					owner := &r.owner[out][vc]
					if !owner.active && len(own.buf) == 0 && !own.routed {
						st.outVC = vc
						owner.active = true
						owner.inDir = inDir
						owner.inVC = inVC
						break
					}
				}
				if st.outVC < 0 {
					continue // no VC available this cycle
				}
			}
			// Buffer space check (credit-equivalent, conservative: flits
			// leaving downstream this cycle do not free space until next).
			dstBuf := &next.in[inPortAtNext][st.outVC]
			if len(dstBuf.buf) >= m.cfg.VCDepth {
				continue
			}
			moves = append(moves, move{
				from: r, fromDir: inDir, fromVC: inVC,
				to: next, toDir: inPortAtNext, toVC: st.outVC,
				f: f, lastFlit: f.tail,
			})
			takenAll[ri].taken[out] = true
		}
		r.rrNext = (r.rrNext + 1) % total
	}

	// Apply pass.
	for _, mv := range moves {
		src := &mv.from.in[mv.fromDir][mv.fromVC]
		copy(src.buf, src.buf[1:])
		src.buf = src.buf[:len(src.buf)-1]
		m.FlitHops++
		if mv.to == nil {
			// Ejection.
			if mv.f.tail {
				mv.f.msg.Delivered = now
				m.MsgsDelivered++
				lat := uint64(now - mv.f.msg.Injected)
				m.TotalLatency += lat
				m.TotalHops += uint64(Manhattan(mv.f.msg.Src, mv.f.msg.Dst))
				m.at(mv.f.msg.Dst).ejectQ.Push(mv.f.msg)
				m.ejected++
			}
		} else {
			dst := &mv.to.in[mv.toDir][mv.toVC]
			dst.buf = append(dst.buf, mv.f)
		}
		if mv.lastFlit {
			// Tail passed: release the wormhole reservations.
			if src.routed && src.outDir != Local && src.outVC >= 0 {
				mv.from.owner[src.outDir][src.outVC] = outOwner{}
			}
			src.routed = false
			src.outVC = 0
			src.outDir = 0
		}
	}
	m.moves = moves[:0]
}

// Quiet reports whether the mesh holds no traffic at all: nothing
// staged for injection, no flit buffered in any router, and no ejected
// message awaiting pickup. A Quiet mesh's Step is a no-op except for
// the round-robin pointer rotation, which SkipIdle replays.
func (m *Mesh) Quiet() bool {
	return m.InFlight() == 0 && m.ejected == 0
}

// SkipIdle advances every router's round-robin pointer by delta cycles,
// exactly what delta no-op Steps of a Quiet mesh would have done. The
// owner of the mesh calls it when it fast-forwards the clock.
func (m *Mesh) SkipIdle(delta uint64) {
	total := NumDirs * m.cfg.VCs
	for _, r := range m.routers {
		r.rrNext = (r.rrNext + int(delta%uint64(total))) % total
	}
}

// InFlight returns the number of injected-but-undelivered messages.
func (m *Mesh) InFlight() int {
	return int(m.MsgsInjected - m.MsgsDelivered)
}

// AvgLatency returns the mean injection-to-delivery latency in cycles.
func (m *Mesh) AvgLatency() float64 {
	if m.MsgsDelivered == 0 {
		return 0
	}
	return float64(m.TotalLatency) / float64(m.MsgsDelivered)
}

// NumLinks returns the number of unidirectional inter-router links, the
// quantity the paper compares against its specialized topologies.
func (m *Mesh) NumLinks() int {
	w, h := m.cfg.Width, m.cfg.Height
	return 2 * (w*(h-1) + h*(w-1))
}
