// Package stats provides the statistics plumbing used by the simulator:
// named counters, histograms, aggregate means (the paper reports harmonic
// means of IPC), and plain-text table rendering for regenerating the
// paper's tables and figures.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Set is a collection of named counters and scalar values produced by one
// simulation run. The zero value is not usable; call NewSet.
type Set struct {
	counters map[string]uint64
	scalars  map[string]float64
}

// NewSet returns an empty statistics set.
func NewSet() *Set {
	return &Set{
		counters: make(map[string]uint64),
		scalars:  make(map[string]float64),
	}
}

// Add increments the named counter by n.
func (s *Set) Add(name string, n uint64) {
	s.counters[name] += n
}

// Inc increments the named counter by one.
func (s *Set) Inc(name string) {
	s.counters[name]++
}

// Counter returns the current value of a counter (zero if never touched).
func (s *Set) Counter(name string) uint64 {
	return s.counters[name]
}

// SetScalar records a named floating-point result.
func (s *Set) SetScalar(name string, v float64) {
	s.scalars[name] = v
}

// AddScalar accumulates into a named floating-point result.
func (s *Set) AddScalar(name string, v float64) {
	s.scalars[name] += v
}

// Scalar returns a named floating-point result (zero if never set).
func (s *Set) Scalar(name string) float64 {
	return s.scalars[name]
}

// Names returns all counter names in sorted order.
func (s *Set) Names() []string {
	out := make([]string, 0, len(s.counters))
	for k := range s.counters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ScalarNames returns all scalar names in sorted order.
func (s *Set) ScalarNames() []string {
	out := make([]string, 0, len(s.scalars))
	for k := range s.scalars {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Clone returns an independent deep copy of the set (nil stays nil), so
// callers handed a cached set cannot corrupt it for later readers.
func (s *Set) Clone() *Set {
	if s == nil {
		return nil
	}
	out := NewSet()
	for k, v := range s.counters {
		out.counters[k] = v
	}
	for k, v := range s.scalars {
		out.scalars[k] = v
	}
	return out
}

// Merge adds every counter and scalar of other into s.
func (s *Set) Merge(other *Set) {
	for k, v := range other.counters {
		s.counters[k] += v
	}
	for k, v := range other.scalars {
		s.scalars[k] += v
	}
}

// MergePrefixed adds every counter and scalar of other into s with
// prefix+"." prepended: the namespacing a CMP run uses to keep N cores'
// statistics apart in one set ("c0.core.committed", "c1.l1.misses", ...).
func (s *Set) MergePrefixed(prefix string, other *Set) {
	for k, v := range other.counters {
		s.counters[prefix+"."+k] += v
	}
	for k, v := range other.scalars {
		s.scalars[prefix+"."+k] += v
	}
}

// Sub extracts the entries under prefix+"." into a new set with the
// prefix stripped: the inverse of MergePrefixed, used to slice one
// core's view out of a CMP run.
func (s *Set) Sub(prefix string) *Set {
	out := NewSet()
	p := prefix + "."
	for k, v := range s.counters {
		if strings.HasPrefix(k, p) {
			out.counters[k[len(p):]] = v
		}
	}
	for k, v := range s.scalars {
		if strings.HasPrefix(k, p) {
			out.scalars[k[len(p):]] = v
		}
	}
	return out
}

// Delta returns end minus start for every counter (clamped at zero), the
// standard way to measure a window after warmup. Scalars are copied from
// end, since most are end-of-run summaries.
func Delta(end, start *Set) *Set {
	out := NewSet()
	for k, v := range end.counters {
		sv := start.counters[k]
		if v >= sv {
			out.counters[k] = v - sv
		}
	}
	for k, v := range end.scalars {
		out.scalars[k] = v
	}
	return out
}

// Ratio returns counter(num)/counter(den), or 0 when the denominator is 0.
func (s *Set) Ratio(num, den string) float64 {
	d := s.counters[den]
	if d == 0 {
		return 0
	}
	return float64(s.counters[num]) / float64(d)
}

// String renders the set as "name=value" lines, counters first.
func (s *Set) String() string {
	var b strings.Builder
	for _, k := range s.Names() {
		fmt.Fprintf(&b, "%s=%d\n", k, s.counters[k])
	}
	for _, k := range s.ScalarNames() {
		fmt.Fprintf(&b, "%s=%g\n", k, s.scalars[k])
	}
	return b.String()
}

// setJSON is the wire form of a Set: two plain maps, so results are
// servable over HTTP and storable in the orchestrator's file cache.
type setJSON struct {
	Counters map[string]uint64  `json:"counters"`
	Scalars  map[string]float64 `json:"scalars,omitempty"`
}

// MarshalJSON renders the set as {"counters": {...}, "scalars": {...}}.
func (s *Set) MarshalJSON() ([]byte, error) {
	return json.Marshal(setJSON{Counters: s.counters, Scalars: s.scalars})
}

// UnmarshalJSON restores a set written by MarshalJSON. The receiver is
// reset; a zero-value Set becomes usable.
func (s *Set) UnmarshalJSON(data []byte) error {
	var w setJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	s.counters = w.Counters
	s.scalars = w.Scalars
	if s.counters == nil {
		s.counters = make(map[string]uint64)
	}
	if s.scalars == nil {
		s.scalars = make(map[string]float64)
	}
	return nil
}

// HarmonicMean returns the harmonic mean of xs. The paper's Figures 4(a)
// and 5(a) report harmonic-mean IPC. Non-positive entries are rejected by
// returning NaN, since a harmonic mean is undefined for them.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// ArithmeticMean returns the arithmetic mean of xs (NaN when empty).
func ArithmeticMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeometricMean returns the geometric mean of xs (NaN when empty or when
// any entry is non-positive).
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// SpeedupPercent returns the relative improvement of v over base in
// percent: 100*(v-base)/base.
func SpeedupPercent(v, base float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return 100 * (v - base) / base
}

// Histogram is a fixed-bucket histogram of integer samples. Samples beyond
// the last bucket are accumulated in an overflow bucket.
type Histogram struct {
	buckets  []uint64
	overflow uint64
	count    uint64
	sum      uint64
	min, max int
	any      bool
}

// NewHistogram creates a histogram with buckets [0, n).
func NewHistogram(n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	return &Histogram{buckets: make([]uint64, n)}
}

// Observe records one sample.
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	if v < len(h.buckets) {
		h.buckets[v]++
	} else {
		h.overflow++
	}
	h.count++
	h.sum += uint64(v)
	if !h.any || v < h.min {
		h.min = v
	}
	if !h.any || v > h.max {
		h.max = v
	}
	h.any = true
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// NumBuckets returns the in-range bucket count (the [0, n) of
// NewHistogram); samples at or beyond it land in the overflow bucket.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Clone returns an independent deep copy (nil stays nil), so a snapshot
// taken at a window boundary is immune to later Observes.
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	out := *h
	out.buckets = append([]uint64(nil), h.buckets...)
	return &out
}

// Delta returns the histogram of samples observed after start: bucket
// counts, overflow, count and sum subtract pairwise (clamped at zero,
// like Set deltas). start is expected to be an earlier Clone of h (same
// bucket range); a nil start yields a copy of h. Min/Max are recomputed
// from the surviving in-range buckets — for overflow samples the exact
// window extremes are not recoverable, so Max falls back to the run-wide
// maximum when the window saw overflow.
func (h *Histogram) Delta(start *Histogram) *Histogram {
	if h == nil {
		return nil
	}
	if start == nil {
		return h.Clone()
	}
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	out := NewHistogram(len(h.buckets))
	for i, v := range h.buckets {
		var sv uint64
		if i < len(start.buckets) {
			sv = start.buckets[i]
		}
		out.buckets[i] = sub(v, sv)
	}
	out.overflow = sub(h.overflow, start.overflow)
	out.count = sub(h.count, start.count)
	out.sum = sub(h.sum, start.sum)
	for i, v := range out.buckets {
		if v == 0 {
			continue
		}
		if !out.any {
			out.min = i
		}
		out.max = i
		out.any = true
	}
	if out.overflow > 0 {
		if !out.any {
			out.min = len(out.buckets)
		}
		out.max = h.Max()
		out.any = true
	}
	return out
}

// histogramJSON is the wire form of a Histogram. Buckets are serialized
// in full (index = sample value), so an unmarshaled histogram keeps the
// exact bucket range and counts of the original.
type histogramJSON struct {
	Buckets  []uint64 `json:"buckets"`
	Overflow uint64   `json:"overflow,omitempty"`
	Count    uint64   `json:"count"`
	Sum      uint64   `json:"sum"`
	Min      int      `json:"min,omitempty"`
	Max      int      `json:"max,omitempty"`
}

// MarshalJSON renders the histogram so results carrying one are servable
// over HTTP and storable in the orchestrator's file cache.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{
		Buckets:  h.buckets,
		Overflow: h.overflow,
		Count:    h.count,
		Sum:      h.sum,
		Min:      h.Min(),
		Max:      h.Max(),
	})
}

// UnmarshalJSON restores a histogram written by MarshalJSON. The receiver
// is reset; a zero-value Histogram becomes usable.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Buckets == nil {
		w.Buckets = make([]uint64, 1)
	}
	*h = Histogram{
		buckets:  w.Buckets,
		overflow: w.Overflow,
		count:    w.Count,
		sum:      w.Sum,
		min:      w.Min,
		max:      w.Max,
		any:      w.Count > 0,
	}
	return nil
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the average sample (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest sample observed (0 when empty).
func (h *Histogram) Min() int {
	if !h.any {
		return 0
	}
	return h.min
}

// Max returns the largest sample observed (0 when empty).
func (h *Histogram) Max() int {
	if !h.any {
		return 0
	}
	return h.max
}

// Bucket returns the count in bucket v (overflow excluded).
func (h *Histogram) Bucket(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// Overflow returns the number of samples that exceeded the bucket range.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Table renders rows of labeled values as fixed-width text: the tool used
// to regenerate the paper's tables.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row of cells. Rows shorter than the header are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row where each cell is built with fmt.Sprint on the
// corresponding value; float64 values are rendered with %.3f.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
