package stats

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounters(t *testing.T) {
	s := NewSet()
	s.Inc("hits")
	s.Add("hits", 4)
	s.Add("misses", 2)
	if got := s.Counter("hits"); got != 5 {
		t.Errorf("hits = %d, want 5", got)
	}
	if got := s.Counter("misses"); got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
	if got := s.Counter("absent"); got != 0 {
		t.Errorf("absent = %d, want 0", got)
	}
}

func TestScalars(t *testing.T) {
	s := NewSet()
	s.SetScalar("ipc", 1.25)
	s.AddScalar("ipc", 0.25)
	if got := s.Scalar("ipc"); got != 1.5 {
		t.Errorf("ipc = %v, want 1.5", got)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewSet(), NewSet()
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	b.SetScalar("e", 1.5)
	a.Merge(b)
	if a.Counter("x") != 3 || a.Counter("y") != 3 {
		t.Errorf("merge counters wrong: x=%d y=%d", a.Counter("x"), a.Counter("y"))
	}
	if a.Scalar("e") != 1.5 {
		t.Errorf("merge scalar wrong: e=%v", a.Scalar("e"))
	}
}

func TestRatio(t *testing.T) {
	s := NewSet()
	s.Add("num", 3)
	s.Add("den", 4)
	if got := s.Ratio("num", "den"); got != 0.75 {
		t.Errorf("Ratio = %v, want 0.75", got)
	}
	if got := s.Ratio("num", "zero"); got != 0 {
		t.Errorf("Ratio with zero denominator = %v, want 0", got)
	}
}

func TestNamesSorted(t *testing.T) {
	s := NewSet()
	s.Inc("b")
	s.Inc("a")
	s.Inc("c")
	names := s.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Errorf("Names = %v, want [a b c]", names)
	}
}

func TestHarmonicMeanKnownValues(t *testing.T) {
	got := HarmonicMean([]float64{1, 1, 1})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("HM(1,1,1) = %v, want 1", got)
	}
	// HM(1,2) = 2/(1+0.5) = 4/3.
	got = HarmonicMean([]float64{1, 2})
	if math.Abs(got-4.0/3.0) > 1e-12 {
		t.Errorf("HM(1,2) = %v, want 4/3", got)
	}
	if !math.IsNaN(HarmonicMean(nil)) {
		t.Error("HM(empty) should be NaN")
	}
	if !math.IsNaN(HarmonicMean([]float64{1, 0})) {
		t.Error("HM with zero should be NaN")
	}
}

func TestMeanOrderingProperty(t *testing.T) {
	// For positive inputs: harmonic <= geometric <= arithmetic.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			v := math.Abs(r)
			if v > 1e-6 && v < 1e6 && !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		h, g, a := HarmonicMean(xs), GeometricMean(xs), ArithmeticMean(xs)
		const eps = 1e-9
		return h <= g*(1+eps) && g <= a*(1+eps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHarmonicMeanScaleInvariance(t *testing.T) {
	f := func(a, b, c float64) bool {
		bound := func(v float64) float64 {
			v = math.Abs(v)
			if math.IsNaN(v) || math.IsInf(v, 0) || v > 1e6 {
				v = math.Mod(v, 1e6)
				if math.IsNaN(v) {
					v = 1
				}
			}
			return v + 1
		}
		xs := []float64{bound(a), bound(b), bound(c)}
		scaled := []float64{xs[0] * 3, xs[1] * 3, xs[2] * 3}
		return math.Abs(HarmonicMean(scaled)-3*HarmonicMean(xs)) < 1e-6*HarmonicMean(scaled)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedupPercent(t *testing.T) {
	if got := SpeedupPercent(1.1, 1.0); math.Abs(got-10) > 1e-9 {
		t.Errorf("SpeedupPercent(1.1,1.0) = %v, want 10", got)
	}
	if got := SpeedupPercent(0.9, 1.0); math.Abs(got+10) > 1e-9 {
		t.Errorf("SpeedupPercent(0.9,1.0) = %v, want -10", got)
	}
	if !math.IsNaN(SpeedupPercent(1, 0)) {
		t.Error("SpeedupPercent with zero base should be NaN")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{0, 1, 1, 3, 7} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Bucket(1) != 2 {
		t.Errorf("Bucket(1) = %d, want 2", h.Bucket(1))
	}
	if h.Overflow() != 1 {
		t.Errorf("Overflow = %d, want 1", h.Overflow())
	}
	if h.Min() != 0 || h.Max() != 7 {
		t.Errorf("Min/Max = %d/%d, want 0/7", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-12.0/5.0) > 1e-12 {
		t.Errorf("Mean = %v, want 2.4", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(2)
	h.Observe(-5)
	if h.Bucket(0) != 1 {
		t.Errorf("negative sample not clamped to bucket 0")
	}
}

func TestHistogramMeanProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHistogram(64)
		sum := 0
		for _, v := range vals {
			h.Observe(int(v))
			sum += int(v)
		}
		if len(vals) == 0 {
			return h.Mean() == 0
		}
		want := float64(sum) / float64(len(vals))
		return math.Abs(h.Mean()-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram(0) // degenerate size must not panic
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Observe(0)
	if h.Count() != 1 {
		t.Error("degenerate histogram should still count")
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(8)
	for _, v := range []int{0, 2, 2, 5, 7, 31} {
		h.Observe(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Histogram
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(h, &got) {
		t.Errorf("round trip changed the histogram:\n got %+v\nwant %+v", got, *h)
	}
	// An unmarshaled histogram keeps observing with the original range.
	got.Observe(100)
	if got.Overflow() != h.Overflow()+1 {
		t.Errorf("overflow after re-observe = %d, want %d", got.Overflow(), h.Overflow()+1)
	}
}

func TestHistogramJSONEmptyRoundTrip(t *testing.T) {
	h := NewHistogram(4)
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Histogram
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(h, &got) {
		t.Errorf("empty round trip changed the histogram:\n got %+v\nwant %+v", got, *h)
	}
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram(4)
	h.Observe(1)
	c := h.Clone()
	h.Observe(1)
	h.Observe(9)
	if c.Count() != 1 || c.Bucket(1) != 1 || c.Overflow() != 0 {
		t.Errorf("clone mutated by later observes: %+v", *c)
	}
	if (*Histogram)(nil).Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
}

func TestHistogramDelta(t *testing.T) {
	h := NewHistogram(8)
	h.Observe(1)
	h.Observe(20) // pre-window overflow
	start := h.Clone()
	h.Observe(3)
	h.Observe(3)
	h.Observe(30)
	d := h.Delta(start)
	if d.Count() != 3 || d.Bucket(3) != 2 || d.Bucket(1) != 0 || d.Overflow() != 1 {
		t.Errorf("delta wrong: %+v", *d)
	}
	if d.Sum() != 36 {
		t.Errorf("delta sum = %d, want 36", d.Sum())
	}
	if d.Min() != 3 {
		t.Errorf("delta min = %d, want 3", d.Min())
	}
	// Window saw overflow, so Max falls back to the run-wide maximum.
	if d.Max() != 30 {
		t.Errorf("delta max = %d, want 30", d.Max())
	}
	if got := h.Delta(nil); !reflect.DeepEqual(got, h) {
		t.Errorf("Delta(nil) should copy: %+v", *got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "config", "ipc")
	tb.AddRowf("L2-256KB", 1.0)
	tb.AddRowf("LN3-144KB", 1.061)
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "L2-256KB") || !strings.Contains(out, "1.061") {
		t.Errorf("missing cells in output:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tb.NumRows())
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Errorf("row missing:\n%s", out)
	}
}

func TestSetString(t *testing.T) {
	s := NewSet()
	s.Add("n", 2)
	s.SetScalar("x", 0.5)
	out := s.String()
	if !strings.Contains(out, "n=2") || !strings.Contains(out, "x=0.5") {
		t.Errorf("String output wrong:\n%s", out)
	}
}

func TestSetJSONRoundTrip(t *testing.T) {
	s := NewSet()
	s.Add("l1.hits", 1234)
	s.Add("l1.misses", 56)
	s.SetScalar("ln.transport_ratio", 1.013)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Set
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("l1.hits") != 1234 || back.Counter("l1.misses") != 56 {
		t.Errorf("counters lost: %s", back.String())
	}
	if back.Scalar("ln.transport_ratio") != 1.013 {
		t.Errorf("scalar lost: %s", back.String())
	}
	// The restored set must be fully usable, not just readable.
	back.Inc("l1.hits")
	back.SetScalar("new", 2)
	if back.Counter("l1.hits") != 1235 || back.Scalar("new") != 2 {
		t.Error("restored set not mutable")
	}
}

func TestSetJSONEmpty(t *testing.T) {
	// A set restored from minimal JSON (e.g. a hand-written cache file)
	// must become usable even when maps are absent.
	var s Set
	if err := json.Unmarshal([]byte(`{}`), &s); err != nil {
		t.Fatal(err)
	}
	s.Inc("x")
	s.AddScalar("y", 1)
	if s.Counter("x") != 1 || s.Scalar("y") != 1 {
		t.Error("empty-restored set unusable")
	}
}

func TestMergePrefixedAndSub(t *testing.T) {
	core := NewSet()
	core.Add("core.committed", 100)
	core.Add("l1.misses", 7)
	core.SetScalar("core.ipc", 1.5)

	all := NewSet()
	all.MergePrefixed("c0", core)
	all.MergePrefixed("c1", core)
	all.Add("l3.bank_accesses", 9)

	if got := all.Counter("c0.core.committed"); got != 100 {
		t.Fatalf("c0.core.committed = %d", got)
	}
	if got := all.Counter("c1.l1.misses"); got != 7 {
		t.Fatalf("c1.l1.misses = %d", got)
	}
	if got := all.Scalar("c1.core.ipc"); got != 1.5 {
		t.Fatalf("c1.core.ipc = %v", got)
	}

	c0 := all.Sub("c0")
	if got := c0.Counter("core.committed"); got != 100 {
		t.Fatalf("Sub counter = %d", got)
	}
	if got := c0.Scalar("core.ipc"); got != 1.5 {
		t.Fatalf("Sub scalar = %v", got)
	}
	// Shared counters and other cores' entries stay out.
	if got := len(c0.Names()); got != 2 {
		t.Fatalf("Sub leaked entries: %v", c0.Names())
	}
	// Prefix matching is segment-aware: "c0x.foo" must not land in "c0".
	all.Add("c0x.foo", 1)
	if got := all.Sub("c0").Counter("x.foo"); got != 0 {
		t.Fatal("Sub matched a non-segment prefix")
	}
}
