// Package tech holds the technology assumptions shared by the delay, area
// and energy models: a 32 nm process clocked at 19 FO4 per cycle, matching
// the Intel Core2 Duo E8600 class chip assumed by the paper (Section IV).
package tech

// DeviceClass selects the transistor flavor used by an SRAM array.
// The paper uses Low Operating Power devices for the L3 and High
// Performance devices everywhere else.
type DeviceClass int

const (
	// HP is the high-performance, high-leakage device class.
	HP DeviceClass = iota
	// LOP is the low-operating-power, low-leakage device class.
	LOP
)

func (d DeviceClass) String() string {
	switch d {
	case HP:
		return "HP"
	case LOP:
		return "LOP"
	default:
		return "unknown-device-class"
	}
}

const (
	// FO4PerCycle is the clock period expressed in fanout-of-4 inverter
	// delays (Section IV: "a cycle time of 19 FO4s").
	FO4PerCycle = 19.0

	// FO4Picoseconds is the delay of one FO4 inverter at 32 nm.
	// 19 FO4 x 15.8 ps = 300 ps, i.e. a 3.33 GHz clock, the frequency of
	// the Core2 Duo E8600 the paper references.
	FO4Picoseconds = 15.8

	// CyclePicoseconds is the clock period in picoseconds.
	CyclePicoseconds = FO4PerCycle * FO4Picoseconds

	// CycleSeconds is the clock period in seconds.
	CycleSeconds = CyclePicoseconds * 1e-12

	// ClockHz is the resulting clock frequency in hertz.
	ClockHz = 1.0 / CycleSeconds

	// ProcessNm is the feature size in nanometers.
	ProcessNm = 32
)

// Seconds converts a cycle count into wall-clock seconds at the modeled
// frequency.
func Seconds(cycles uint64) float64 {
	return float64(cycles) * CycleSeconds
}

// CyclesPerNanosecond reports how many clock cycles fit in one nanosecond.
func CyclesPerNanosecond() float64 {
	return 1e3 / CyclePicoseconds
}
