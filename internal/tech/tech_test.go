package tech

import (
	"math"
	"testing"
)

func TestCycleTimeMatchesCore2Class(t *testing.T) {
	// 19 FO4 at 32 nm should land very close to a 3.33 GHz clock.
	ghz := ClockHz / 1e9
	if ghz < 3.0 || ghz > 3.7 {
		t.Fatalf("clock = %.3f GHz, want Core2 E8600 class (~3.33 GHz)", ghz)
	}
}

func TestSecondsScalesLinearly(t *testing.T) {
	one := Seconds(1)
	million := Seconds(1_000_000)
	if math.Abs(million-one*1e6) > 1e-18 {
		t.Fatalf("Seconds not linear: Seconds(1e6)=%g, 1e6*Seconds(1)=%g", million, one*1e6)
	}
	if one <= 0 {
		t.Fatalf("Seconds(1) = %g, want positive", one)
	}
}

func TestCyclePicoseconds(t *testing.T) {
	want := FO4PerCycle * FO4Picoseconds
	if CyclePicoseconds != want {
		t.Fatalf("CyclePicoseconds = %v, want %v", CyclePicoseconds, want)
	}
	// Sanity: a cycle must be longer than a single FO4.
	if CyclePicoseconds <= FO4Picoseconds {
		t.Fatal("cycle shorter than one FO4")
	}
}

func TestCyclesPerNanosecond(t *testing.T) {
	got := CyclesPerNanosecond()
	// 300 ps cycle -> 3.33 cycles per ns.
	if got < 3.0 || got > 3.7 {
		t.Fatalf("CyclesPerNanosecond = %v, want ~3.33", got)
	}
}

func TestDeviceClassString(t *testing.T) {
	cases := []struct {
		d    DeviceClass
		want string
	}{
		{HP, "HP"},
		{LOP, "LOP"},
		{DeviceClass(99), "unknown-device-class"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("DeviceClass(%d).String() = %q, want %q", c.d, got, c.want)
		}
	}
}
