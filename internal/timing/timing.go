// Package timing models the L-NUCA tile critical path of Fig. 3(d): a
// cache access plus one-hop transport routing must fit in a single
// 19 FO4 processor cycle. It stands in for the paper's HSPICE check of the
// transport crossbar and reproduces the design-space conclusion of
// Section IV: the largest one-cycle tile is an 8KB 2-way 32B cache.
package timing

import (
	"fmt"
	"strings"

	"repro/internal/sram"
	"repro/internal/tech"
)

// Stage delays in FO4, for the simplified structures Section III.C argues
// for (headerless messages, no VC allocation, cut-through 3-input
// crossbar).
const (
	// MissAddressLatchFO4 is the MA register clock-to-q plus setup.
	MissAddressLatchFO4 = 1.2
	// SwitchTraversalFO4 is the cut-through transport crossbar.
	SwitchTraversalFO4 = 3.2
	// DBufferSetupFO4 is the downstream Transport buffer write setup.
	DBufferSetupFO4 = 1.6
)

// Path is one timing path through a tile.
type Path struct {
	Name   string
	Stages []Stage
}

// Stage is one named delay contribution.
type Stage struct {
	Name string
	FO4  float64
}

// Total returns the path delay in FO4.
func (p Path) Total() float64 {
	sum := 0.0
	for _, s := range p.Stages {
		sum += s.FO4
	}
	return sum
}

// Slack returns the remaining budget against the cycle time (negative
// when the path does not fit).
func (p Path) Slack() float64 { return tech.FO4PerCycle - p.Total() }

// Fits reports whether the path meets the single-cycle constraint.
func (p Path) Fits() bool { return p.Slack() >= 0 }

// Report is the full tile timing analysis.
type Report struct {
	Tile sram.Config
	// HitTransport is the critical path: full cache access followed by
	// switch traversal into a neighbour's D buffer (Fig. 3(d)). Switch
	// allocation overlaps the data-array access, so it does not appear.
	HitTransport Path
	// MissPropagate is the search path: the hit/miss outcome (tag
	// compare, ~80% of the access) followed by the MA latch of the leaf
	// tile.
	MissPropagate Path
	// CycleFO4 is the budget.
	CycleFO4 float64
}

// Analyze computes the tile timing report for a tile geometry.
func Analyze(tile sram.Config) Report {
	access := sram.AccessFO4(tile)
	tag := sram.TagCompareFO4(tile)
	return Report{
		Tile:     tile,
		CycleFO4: tech.FO4PerCycle,
		HitTransport: Path{
			Name: "hit + one-hop transport",
			Stages: []Stage{
				{"MA latch", MissAddressLatchFO4},
				{"tag+data access", access},
				{"switch traversal", SwitchTraversalFO4},
				{"D buffer setup", DBufferSetupFO4},
			},
		},
		MissPropagate: Path{
			Name: "miss determination + propagation",
			Stages: []Stage{
				{"MA latch", MissAddressLatchFO4},
				{"tag compare", tag},
				{"U-buffer comparators (overlapped)", 0},
				{"leaf MA latch", MissAddressLatchFO4},
			},
		},
	}
}

// SingleCycle reports whether both tile paths fit in one cycle.
func (r Report) SingleCycle() bool {
	return r.HitTransport.Fits() && r.MissPropagate.Fits()
}

// String renders the report in the style of Fig. 3(d).
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tile %dKB %d-way %dB — cycle budget %.1f FO4\n",
		r.Tile.SizeBytes/1024, r.Tile.Ways, r.Tile.BlockBytes, r.CycleFO4)
	for _, p := range []Path{r.HitTransport, r.MissPropagate} {
		fmt.Fprintf(&b, "  path: %s\n", p.Name)
		for _, s := range p.Stages {
			fmt.Fprintf(&b, "    %-36s %5.1f FO4\n", s.Name, s.FO4)
		}
		verdict := "FITS"
		if !p.Fits() {
			verdict = "TOO SLOW"
		}
		fmt.Fprintf(&b, "    total %.1f FO4, slack %+.1f FO4 -> %s\n", p.Total(), p.Slack(), verdict)
	}
	return b.String()
}

// LargestOneCycleTile sweeps tile geometries (powers of two, 32B blocks,
// 1 port, HP) and returns the largest size whose 2-way organization still
// meets the single-cycle constraint — the paper's design-space result.
func LargestOneCycleTile() sram.Config {
	best := sram.Config{}
	for size := 1 << 10; size <= 64<<10; size <<= 1 {
		c := sram.Config{
			SizeBytes:  size,
			Ways:       2,
			BlockBytes: 32,
			Ports:      1,
			Device:     tech.HP,
		}
		if Analyze(c).SingleCycle() && size > best.SizeBytes {
			best = c
		}
	}
	return best
}
