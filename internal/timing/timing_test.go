package timing

import (
	"strings"
	"testing"

	"repro/internal/sram"
	"repro/internal/tech"
)

func tile(sizeKB, ways int) sram.Config {
	return sram.Config{
		SizeBytes:  sizeKB << 10,
		Ways:       ways,
		BlockBytes: 32,
		Ports:      1,
		Device:     tech.HP,
	}
}

func TestPaperTileFitsSingleCycle(t *testing.T) {
	// Section IV: "the largest configuration found for the one-cycle
	// L-NUCA tile was an 8KB-2Way-32B cache".
	r := Analyze(tile(8, 2))
	if !r.SingleCycle() {
		t.Fatalf("8KB 2-way tile must fit in one cycle:\n%s", r)
	}
	if !r.HitTransport.Fits() {
		t.Errorf("hit+transport path does not fit: %.1f FO4", r.HitTransport.Total())
	}
	if !r.MissPropagate.Fits() {
		t.Errorf("miss propagation path does not fit: %.1f FO4", r.MissPropagate.Total())
	}
}

func TestBiggerTileMissesBudget(t *testing.T) {
	r := Analyze(tile(16, 2))
	if r.SingleCycle() {
		t.Fatalf("16KB tile should not fit in one cycle (paper found 8KB max):\n%s", r)
	}
}

func TestLargestOneCycleTileIs8KB2Way(t *testing.T) {
	best := LargestOneCycleTile()
	if best.SizeBytes != 8<<10 || best.Ways != 2 {
		t.Fatalf("LargestOneCycleTile = %dKB %d-way, want 8KB 2-way",
			best.SizeBytes/1024, best.Ways)
	}
}

func TestMissPathFasterThanHitPath(t *testing.T) {
	// Miss determination uses only the tag path (~80% of access), so it
	// must be faster than the hit+transport path; this is what lets the
	// search propagate in the same cycle (Section III.C).
	r := Analyze(tile(8, 2))
	if r.MissPropagate.Total() >= r.HitTransport.Total() {
		t.Errorf("miss path (%.1f) should be shorter than hit path (%.1f)",
			r.MissPropagate.Total(), r.HitTransport.Total())
	}
}

func TestSlackArithmetic(t *testing.T) {
	p := Path{Name: "x", Stages: []Stage{{"a", 10}, {"b", 5}}}
	if p.Total() != 15 {
		t.Errorf("Total = %v, want 15", p.Total())
	}
	if p.Slack() != tech.FO4PerCycle-15 {
		t.Errorf("Slack = %v", p.Slack())
	}
	if !p.Fits() {
		t.Error("path with positive slack should fit")
	}
	huge := Path{Stages: []Stage{{"z", 100}}}
	if huge.Fits() {
		t.Error("100 FO4 path cannot fit a 19 FO4 cycle")
	}
}

func TestReportRendering(t *testing.T) {
	out := Analyze(tile(8, 2)).String()
	for _, want := range []string{"8KB 2-way", "tag+data access", "switch traversal", "FITS"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	out16 := Analyze(tile(16, 2)).String()
	if !strings.Contains(out16, "TOO SLOW") {
		t.Errorf("16KB report should flag the failing path:\n%s", out16)
	}
}
