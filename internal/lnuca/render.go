package lnuca

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/noc"
)

// RenderLatencyGrid draws the Fig. 2(c)-style latency map: the fabric
// grid with each tile's service latency, the r-tile marked "1".
func (g *Geometry) RenderLatencyGrid() string {
	r := g.Levels - 1
	var b strings.Builder
	fmt.Fprintf(&b, "L-NUCA %d levels — tile service latencies (Fig. 2(c))\n", g.Levels)
	for y := r; y >= 0; y-- {
		for x := -r; x <= r; x++ {
			switch id, ok := g.byPos[noc.Coord{X: x, Y: y}]; {
			case ok:
				fmt.Fprintf(&b, "%3d", g.Sites[id].Latency)
			case x == 0 && y == 0:
				b.WriteString("  1") // the r-tile
			default:
				b.WriteString("  .")
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("processor cache ports below the bottom row; '1' is the r-tile\n")
	return b.String()
}

// network selects which Fig. 2 topology to render.
type network int

// Network selectors for rendering.
const (
	// SearchNet is the broadcast tree of Fig. 2(a).
	SearchNet network = iota
	// TransportNet is the inward 2-D mesh of Fig. 2(b).
	TransportNet
	// ReplacementNet is the latency-ordered topology of Fig. 2(c).
	ReplacementNet
)

func (n network) String() string {
	switch n {
	case SearchNet:
		return "search"
	case TransportNet:
		return "transport"
	case ReplacementNet:
		return "replacement"
	default:
		return "net?"
	}
}

// NetworkByName maps a CLI name to a selector.
func NetworkByName(s string) (network, bool) {
	switch s {
	case "search":
		return SearchNet, true
	case "transport":
		return TransportNet, true
	case "replacement", "replace":
		return ReplacementNet, true
	default:
		return 0, false
	}
}

// edges lists one network's unidirectional links as (from, to) site IDs
// with RTileID for the root tile; exit links use the sentinel -2.
const exitID = -2

func (g *Geometry) edges(n network) [][2]int {
	var out [][2]int
	switch n {
	case SearchNet:
		for _, id := range g.RTileSearchChildren {
			out = append(out, [2]int{RTileID, id})
		}
		for i := range g.Sites {
			for _, c := range g.Sites[i].SearchChildren {
				out = append(out, [2]int{i, c})
			}
		}
	case TransportNet:
		for i := range g.Sites {
			for _, dst := range g.Sites[i].TransportOut {
				out = append(out, [2]int{i, dst})
			}
		}
	case ReplacementNet:
		for _, dst := range g.RTileReplaceOut {
			out = append(out, [2]int{RTileID, dst})
		}
		for i := range g.Sites {
			for _, dst := range g.Sites[i].ReplaceOut {
				out = append(out, [2]int{i, dst})
			}
			if g.Sites[i].ExitsToNextLevel {
				out = append(out, [2]int{i, exitID})
			}
		}
	}
	return out
}

func (g *Geometry) nodeName(id int) string {
	switch id {
	case RTileID:
		return "rtile"
	case exitID:
		return "next_level"
	default:
		p := g.Sites[id].Pos
		return fmt.Sprintf("t_%d_%d", p.X+16, p.Y) // offset keeps names DOT-safe
	}
}

func (g *Geometry) nodeLabel(id int) string {
	switch id {
	case RTileID:
		return "r-tile (1)"
	case exitID:
		return "to next cache level"
	default:
		s := g.Sites[id]
		return fmt.Sprintf("(%d,%d) lat %d", s.Pos.X, s.Pos.Y, s.Latency)
	}
}

// RenderDOT emits a Graphviz description of one network (Fig. 2(a)-(c)).
func (g *Geometry) RenderDOT(n network) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph lnuca_%s {\n", n)
	b.WriteString("  rankdir=BT;\n  node [shape=box];\n")
	seen := map[int]bool{}
	edges := g.edges(n)
	for _, e := range edges {
		for _, id := range e[:] {
			if !seen[id] {
				seen[id] = true
				fmt.Fprintf(&b, "  %s [label=%q", g.nodeName(id), g.nodeLabel(id))
				if id == RTileID {
					b.WriteString(", style=bold")
				}
				b.WriteString("];\n")
			}
		}
	}
	for _, e := range edges {
		fmt.Fprintf(&b, "  %s -> %s;\n", g.nodeName(e[0]), g.nodeName(e[1]))
	}
	b.WriteString("}\n")
	return b.String()
}

// RenderSummary prints the per-network link accounting the paper argues
// with in Section III.A.
func (g *Geometry) RenderSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "L-NUCA %d levels: %d tiles + r-tile (%d KB with 8KB tiles and a 32KB r-tile)\n",
		g.Levels, g.NumTiles(), 32+8*g.NumTiles())
	fmt.Fprintf(&b, "  search network:      %3d links (broadcast tree, one per tile — the minimum)\n", g.SearchLinks())
	fmt.Fprintf(&b, "  transport network:   %3d links (inward 2-D mesh, path diversity)\n", g.TransportLinks())
	fmt.Fprintf(&b, "  replacement network: %3d links (latency-ordered domino chains)\n", g.ReplacementLinks())
	fmt.Fprintf(&b, "  max service latency: %d cycles; replacement depth to exit corners: %d hops\n",
		g.MaxLatency(), g.ReplacementDepth())
	byLat := map[int]int{}
	for i := range g.Sites {
		byLat[g.Sites[i].Latency]++
	}
	var lats []int
	for l := range byLat {
		lats = append(lats, l)
	}
	sort.Ints(lats)
	b.WriteString("  tiles by latency:")
	for _, l := range lats {
		fmt.Fprintf(&b, " %d:%d", l, byLat[l])
	}
	b.WriteByte('\n')
	return b.String()
}
