package lnuca

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config parameterizes an L-NUCA fabric (Table I values by default).
type Config struct {
	Name   string
	Levels int
	// TileBank is the per-tile geometry (8KB, 2-way, 32B).
	TileBank cache.BankConfig
	// RTileBank is the root tile / L1 geometry (32KB, 4-way, 32B).
	RTileBank cache.BankConfig
	// RTilePorts bounds CPU requests accepted per cycle (Table I: 2).
	RTilePorts int
	// MSHREntries / MSHRSecondary size the r-tile miss file (16 / 4).
	MSHREntries   int
	MSHRSecondary int
	// WriteBufEntries sizes the fabric write buffer draining write misses
	// and dirty corner evictions to the next level (32).
	WriteBufEntries int
	// LinkBufEntries is the per-link buffer depth (Table I: 2 physical).
	LinkBufEntries int
	// DeterministicRouting replaces the paper's random output-link choice
	// with first-available (dimension-order-like) selection; an ablation
	// knob for the Section III.B claim that random routing reduces
	// contention.
	DeterministicRouting bool
	// Seed drives the distributed random routing.
	Seed uint64
}

// DefaultConfig returns the Table I L-NUCA configuration with the given
// number of levels.
func DefaultConfig(levels int) Config {
	return Config{
		Name:            fmt.Sprintf("LN%d", levels),
		Levels:          levels,
		TileBank:        cache.BankConfig{SizeBytes: 8 << 10, Ways: 2, BlockBytes: 32},
		RTileBank:       cache.BankConfig{SizeBytes: 32 << 10, Ways: 4, BlockBytes: 32},
		RTilePorts:      2,
		MSHREntries:     16,
		MSHRSecondary:   4,
		WriteBufEntries: 32,
		LinkBufEntries:  2,
		Seed:            1,
	}
}

// tile is the runtime state of one fabric site.
type tile struct {
	site *Site
	bank *cache.Bank
	ma   sim.Reg[searchMsg]

	dOut []*dlink // indexed like site.TransportOut
	dIn  []*dlink
	uOut []*ulink // indexed like site.ReplaceOut
	uIn  []*ulink

	// rrIn rotates the replacement input served first.
	rrIn int

	// Stats.
	Hits, UHits uint64
}

// Counters aggregates the fabric-wide event counts used by the statistics
// and energy models.
type Counters struct {
	RTileReads, RTileReadHits, RTileReadMisses uint64
	RTileWrites, RTileWriteHits                uint64
	RTileFills, RTileEvictions                 uint64
	WBufForwards                               uint64

	SearchesLaunched, SearchLookups, SearchTraversals uint64
	UCompares, UHitsTotal                             uint64

	TileHitsByLevel                               []uint64 // indexed by level (0..Levels)
	TileReadHitsByLevel                           []uint64
	TileDataReads, TileFillWrites, TileEvictReads uint64

	TransportDelivered    uint64
	TransportActualCycles uint64
	TransportMinCycles    uint64
	TransportHops         uint64
	ReplacementHops       uint64

	GlobalMisses, MarkedRestarts     uint64
	ExitWritebacks, ExitDrops        uint64
	L3Fills                          uint64
	StallMSHRFull, StallNoVictimSlot uint64
}

type retryEntry struct {
	at  sim.Cycle
	msg searchMsg
}

type gmEntry struct {
	readyAt sim.Cycle
	msg     searchMsg
}

type voteRec struct {
	reqID  uint64
	msg    searchMsg
	count  int
	marked bool
}

// Fabric is the complete L-NUCA: the r-tile plus all tile levels and the
// three networks. It is one sim.Component; everything inside communicates
// through two-phase registers and buffers, so per-cycle behaviour is
// deterministic and matches the lockstep hardware of Section III.
type Fabric struct {
	cfg  Config
	geom *Geometry
	rng  *sim.Rand
	up   *mem.Port
	down *mem.Port
	ids  *mem.IDSource

	rtile *cache.Bank
	mshr  *cache.MSHRFile
	wbuf  *cache.WriteBuffer
	tiles []*tile

	rtDIn  []*dlink // transport links ending at the r-tile
	rtUOut []*ulink // r-tile victim links to the latency-3 tiles

	allD []*dlink
	allU []*ulink

	searchQ     sim.Queue[searchMsg]
	launchedNow bool
	retryQ      []retryEntry
	gmQ         sim.Queue[gmEntry]
	votes       []voteRec
	lastLevelN  int

	pendingResp sim.Queue[*mem.Resp]
	toL3Q       sim.Queue[*mem.Req]
	// storeQ absorbs CPU stores like a conventional L1 write queue, so
	// loads never wait behind store bursts at the port.
	storeQ sim.Queue[*mem.Req]

	// Quiescence bookkeeping: per-cycle counter increments of blocked
	// idle states, recorded by NextEvent and applied by SkipTo.
	skipNoVictim, skipMSHRFull, skipMergeRejects, skipBlockedReads uint64

	C Counters
}

// NewFabric builds the fabric between the CPU-facing port up and the
// next-cache-level port down.
func NewFabric(cfg Config, up, down *mem.Port, ids *mem.IDSource) (*Fabric, error) {
	geom, err := NewGeometry(cfg.Levels)
	if err != nil {
		return nil, err
	}
	if err := cfg.TileBank.Validate(); err != nil {
		return nil, fmt.Errorf("lnuca: tile bank: %w", err)
	}
	if err := cfg.RTileBank.Validate(); err != nil {
		return nil, fmt.Errorf("lnuca: r-tile bank: %w", err)
	}
	if cfg.TileBank.BlockBytes != cfg.RTileBank.BlockBytes {
		// Section II: "to simplify block migration, all the tiles share
		// the same block size".
		return nil, fmt.Errorf("lnuca: tile block %dB != r-tile block %dB",
			cfg.TileBank.BlockBytes, cfg.RTileBank.BlockBytes)
	}
	if cfg.RTilePorts <= 0 {
		cfg.RTilePorts = 1
	}
	if cfg.LinkBufEntries <= 0 {
		cfg.LinkBufEntries = 2
	}
	f := &Fabric{
		cfg:   cfg,
		geom:  geom,
		rng:   sim.NewRand(cfg.Seed),
		up:    up,
		down:  down,
		ids:   ids,
		rtile: cache.NewBank(cfg.RTileBank),
		mshr:  cache.NewMSHRFile(cfg.MSHREntries, cfg.MSHRSecondary),
		wbuf:  cache.NewWriteBuffer(cfg.WriteBufEntries),
	}
	f.C.TileHitsByLevel = make([]uint64, cfg.Levels+1)
	f.C.TileReadHitsByLevel = make([]uint64, cfg.Levels+1)
	f.lastLevelN = RingSize(cfg.Levels)

	// Instantiate tiles.
	f.tiles = make([]*tile, geom.NumTiles())
	for i := range geom.Sites {
		f.tiles[i] = &tile{site: &geom.Sites[i], bank: cache.NewBank(cfg.TileBank)}
	}
	// Wire transport links.
	for i := range geom.Sites {
		s := &geom.Sites[i]
		for _, dst := range s.TransportOut {
			l := newDLink(cfg.LinkBufEntries)
			f.allD = append(f.allD, l)
			f.tiles[i].dOut = append(f.tiles[i].dOut, l)
			if dst == RTileID {
				f.rtDIn = append(f.rtDIn, l)
			} else {
				f.tiles[dst].dIn = append(f.tiles[dst].dIn, l)
			}
		}
	}
	// Wire replacement links.
	for i := range geom.Sites {
		s := &geom.Sites[i]
		for _, dst := range s.ReplaceOut {
			l := newULink(cfg.LinkBufEntries)
			f.allU = append(f.allU, l)
			f.tiles[i].uOut = append(f.tiles[i].uOut, l)
			f.tiles[dst].uIn = append(f.tiles[dst].uIn, l)
		}
	}
	for _, dst := range geom.RTileReplaceOut {
		l := newULink(cfg.LinkBufEntries)
		f.allU = append(f.allU, l)
		f.rtUOut = append(f.rtUOut, l)
		f.tiles[dst].uIn = append(f.tiles[dst].uIn, l)
	}
	return f, nil
}

// Name implements sim.Component.
func (f *Fabric) Name() string { return f.cfg.Name }

// Geometry exposes the static structure.
func (f *Fabric) Geometry() *Geometry { return f.geom }

// Eval implements sim.Component.
func (f *Fabric) Eval(k *sim.Kernel) {
	now := k.Cycle()
	f.launchedNow = false
	f.votes = f.votes[:0]

	f.evalSearch(now)
	f.evalGlobalMiss(now)
	f.evalTransportForward(now)
	f.evalReplacement(now)
	f.evalRTile(now)
	f.evalRetries(now)
	f.drainOutputs(now)
}

// Commit implements sim.Component.
func (f *Fabric) Commit(k *sim.Kernel) {
	for _, t := range f.tiles {
		t.ma.Tick()
	}
	for _, l := range f.allD {
		l.tick()
	}
	for _, l := range f.allU {
		l.tick()
	}
	f.up.Up.Tick()
	f.down.Down.Tick()
}

// evalSearch runs the Search operation on every tile whose MA register
// holds a request: tag lookup in parallel with the U-buffer comparators,
// hit extraction into the Transport network, miss propagation to the leaf
// tiles, and miss voting at the last level (Sections II, III).
func (f *Fabric) evalSearch(now sim.Cycle) {
	for _, t := range f.tiles {
		msg, ok := t.ma.Get()
		if !ok {
			continue
		}
		f.C.SearchLookups++
		line := msg.line

		// Tag array and U-buffer comparators look up in parallel.
		inBank := t.bank.Probe(line)
		var inU *ulink
		for _, l := range t.uIn {
			f.C.UCompares += uint64(l.len())
			if l.contains(line) {
				inU = l
			}
		}

		if inBank || inU != nil {
			// Choose a Transport output among the On links (random,
			// distributed routing, Section III.B).
			out := f.pickDLink(t.dOut)
			if out == nil {
				// All output D channels Off: contention-marked search
				// continues so the global-miss logic bounces the request
				// back to the r-tile (Section III.C). The block stays.
				f.C.MarkedRestarts++
				msg.marked = true
				f.propagate(t, msg)
				continue
			}
			var blk blockMsg
			if inU != nil {
				blk, _ = inU.remove(line)
				t.UHits++
				f.C.UHitsTotal++
			} else {
				dirty, _ := t.bank.Invalidate(line)
				blk = blockMsg{line: line, dirty: dirty}
				f.C.TileDataReads++
			}
			t.Hits++
			f.C.TileHitsByLevel[t.site.Level]++
			if msg.isRead {
				f.C.TileReadHitsByLevel[t.site.Level]++
			}
			out.send(transMsg{
				blk:      blk,
				hitCycle: now,
				minHops:  noc.Manhattan(t.site.Pos, noc.Coord{}),
				level:    t.site.Level,
			})
			continue
		}
		// Miss: propagate outwards, or vote at the last level.
		f.propagate(t, msg)
	}
}

// propagate forwards a search message to the leaf tiles, or casts a
// last-level miss vote.
func (f *Fabric) propagate(t *tile, msg searchMsg) {
	if len(t.site.SearchChildren) == 0 {
		f.vote(msg)
		return
	}
	for _, c := range t.site.SearchChildren {
		f.tiles[c].ma.Set(msg)
		f.C.SearchTraversals++
	}
}

// vote records one last-level miss report; when every last-level tile has
// reported, the global miss is determined (segmented miss-line).
func (f *Fabric) vote(msg searchMsg) {
	for i := range f.votes {
		if f.votes[i].reqID == msg.reqID {
			f.votes[i].count++
			f.votes[i].marked = f.votes[i].marked || msg.marked
			return
		}
	}
	//lnuca:allow(hotalloc) votes reach a per-search high-water mark, then reuse capacity
	f.votes = append(f.votes, voteRec{reqID: msg.reqID, msg: msg, count: 1, marked: msg.marked})
}

// evalGlobalMiss turns complete miss votes into next-level fetches (one
// cycle after the last-level search, Section III.A) or into search
// restarts for contention-marked requests.
func (f *Fabric) evalGlobalMiss(now sim.Cycle) {
	for _, v := range f.votes {
		if v.count < f.lastLevelN {
			continue // a hit somewhere pruned part of the tree
		}
		if v.marked {
			// Bounce back to the r-tile: restart the search after the
			// return trip.
			//lnuca:allow(hotalloc) retryQ grows to an in-flight high-water mark, then reuses
			f.retryQ = append(f.retryQ, retryEntry{at: now + 2, msg: searchMsg{
				line: v.msg.line, reqID: v.msg.reqID, isRead: v.msg.isRead,
			}})
			continue
		}
		f.gmQ.Push(gmEntry{readyAt: now + 1, msg: v.msg})
	}
	f.votes = f.votes[:0]

	// Mature global misses: decide fetch vs forwarded write miss.
	for f.gmQ.Len() > 0 && f.gmQ.Front().readyAt <= now {
		g, _ := f.gmQ.Pop()
		f.C.GlobalMisses++
		m := f.mshr.Lookup(g.msg.line)
		if m == nil {
			continue // already satisfied (stale retry)
		}
		readTargets := false
		for _, tg := range m.Targets {
			if tg.Kind == mem.Read {
				readTargets = true
			}
		}
		if !readTargets {
			// Pure write miss: forward to the next level through the
			// write buffer (Fig. 2(c): "write misses to L3 cache").
			if f.wbuf.Add(g.msg.line, mem.Write) {
				f.mshr.Free(g.msg.line)
			} else {
				// Retry when the write buffer has drained.
				f.gmQ.Push(gmEntry{readyAt: now + 1, msg: g.msg})
			}
			continue
		}
		//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
		f.toL3Q.Push(&mem.Req{
			ID: f.ids.Next(), Addr: g.msg.line, Kind: mem.Read, Issued: now,
		})
	}
}

// pickDLink returns a random On output link, or nil when all are Off.
func (f *Fabric) pickDLink(links []*dlink) *dlink {
	n := 0
	var last *dlink
	for _, l := range links {
		if l.on() {
			n++
			last = l
		}
	}
	if n == 0 {
		return nil
	}
	if n == 1 || f.cfg.DeterministicRouting {
		if f.cfg.DeterministicRouting {
			for _, l := range links {
				if l.on() {
					return l
				}
			}
		}
		return last
	}
	pick := f.rng.Intn(n)
	for _, l := range links {
		if l.on() {
			if pick == 0 {
				return l
			}
			pick--
		}
	}
	return last
}

// pickULink returns a random On replacement link, or nil.
func (f *Fabric) pickULink(links []*ulink) *ulink {
	n := 0
	var last *ulink
	for _, l := range links {
		if l.on() {
			n++
			last = l
		}
	}
	if n == 0 {
		return nil
	}
	if n == 1 {
		return last
	}
	pick := f.rng.Intn(n)
	for _, l := range links {
		if l.on() {
			if pick == 0 {
				return l
			}
			pick--
		}
	}
	return last
}

// evalTransportForward moves messages already in the Transport network one
// hop closer to the r-tile (store-and-forward, one message per output link
// per cycle; hit injections from evalSearch have already claimed theirs).
func (f *Fabric) evalTransportForward(now sim.Cycle) {
	for _, t := range f.tiles {
		for _, in := range t.dIn {
			m, ok := in.ch.Peek()
			if !ok {
				continue
			}
			out := f.pickDLink(t.dOut)
			if out == nil {
				continue // back-pressure: message waits in the buffer
			}
			in.ch.Pop()
			out.send(m)
			f.C.TransportHops++
		}
	}
}

// evalReplacement runs the domino eviction protocol on search-idle tiles:
// one array action per tile per cycle — either write the incoming block
// (when its set has room) or read out a victim into an On output channel
// to make room (Section III.C).
func (f *Fabric) evalReplacement(now sim.Cycle) {
	for _, t := range f.tiles {
		if t.ma.Valid() {
			continue // Replacement only uses Search-idle cycles.
		}
		// Round-robin the input links so neither starves.
		n := len(t.uIn)
		if n == 0 {
			continue
		}
		for k := 0; k < n; k++ {
			in := t.uIn[(t.rrIn+k)%n]
			blk, ok := in.peek()
			if !ok {
				continue
			}
			if t.bank.HasSpace(blk.line) {
				in.pop()
				t.bank.Fill(blk.line, blk.dirty)
				f.C.TileFillWrites++
			} else if !f.evictFrom(t, blk.line) {
				continue // no room and no On output: wait
			}
			t.rrIn = (t.rrIn + k + 1) % n
			break // one array action per cycle
		}
	}
}

// evictFrom reads a victim out of the set line maps to and sends it one
// step outwards (or to the next cache level from an exit corner). It
// reports whether the eviction happened.
func (f *Fabric) evictFrom(t *tile, line mem.Addr) bool {
	if t.site.ExitsToNextLevel {
		v, ok := t.bank.VictimFor(line)
		if !ok {
			return true // space appeared; nothing to do
		}
		if v.Dirty {
			if f.wbuf.Full() {
				return false
			}
			t.bank.Invalidate(v.Addr)
			f.wbuf.Add(v.Addr, mem.Writeback)
			f.C.ExitWritebacks++
		} else {
			// Clean blocks are simply dropped: the next level is
			// inclusive of the L-NUCA (Section III.D).
			t.bank.Invalidate(v.Addr)
			f.C.ExitDrops++
		}
		f.C.TileEvictReads++
		f.C.ReplacementHops++
		return true
	}
	out := f.pickULink(t.uOut)
	if out == nil {
		return false
	}
	v, ok := t.bank.ExtractVictim(line)
	if !ok {
		return true
	}
	out.send(blockMsg{line: v.Addr, dirty: v.Dirty})
	f.C.TileEvictReads++
	f.C.ReplacementHops++
	return true
}

// evalRTile runs the root tile: consume arriving blocks (Transport and L3
// fills), accept CPU requests, and launch at most one search per cycle.
func (f *Fabric) evalRTile(now sim.Cycle) {
	// Consume Transport arrivals.
	for _, in := range f.rtDIn {
		m, ok := in.ch.Peek()
		if !ok {
			continue
		}
		if !f.fillRTile(now, m.blk) {
			f.C.StallNoVictimSlot++
			continue // back-pressure: no victim slot this cycle
		}
		in.ch.Pop()
		f.C.TransportDelivered++
		f.C.TransportActualCycles += uint64(now - m.hitCycle)
		f.C.TransportMinCycles += uint64(m.minHops)
	}

	// Consume L3 fills ("incoming blocks from the L3 ... directly sent to
	// the r-tile", Section II).
	for {
		resp, ok := f.down.Up.Peek()
		if !ok {
			break
		}
		if !f.fillRTile(now, blockMsg{line: resp.Addr.Line(f.cfg.RTileBank.BlockBytes)}) {
			f.C.StallNoVictimSlot++
			break
		}
		f.down.Up.Pop()
		f.C.L3Fills++
	}

	// Accept CPU requests, bounded by the r-tile ports.
	for n := 0; n < f.cfg.RTilePorts; n++ {
		req, ok := f.up.Down.Peek()
		if !ok {
			break
		}
		if !f.acceptCPU(now, req) {
			break
		}
		f.up.Down.Pop()
	}

	f.drainStores(now)

	// Launch one search per cycle.
	if !f.launchedNow && f.searchQ.Len() > 0 {
		msg, _ := f.searchQ.Pop()
		f.launchSearch(msg)
	}

	// Deliver responses generated this cycle (and any backlog).
	for f.pendingResp.Len() > 0 && f.up.Up.CanPush() {
		r, _ := f.pendingResp.Pop()
		r.Done = now
		f.up.Up.Push(r)
	}
}

// fillRTile inserts a block into the r-tile, evicting a victim into the
// Replacement network when the set is full. It wakes every request merged
// in the MSHR. It reports false when no victim slot is available.
func (f *Fabric) fillRTile(now sim.Cycle, blk blockMsg) bool {
	line := blk.line
	if !f.rtile.HasSpace(line) {
		out := f.pickULink(f.rtUOut)
		if out == nil {
			return false
		}
		v, ok := f.rtile.ExtractVictim(line)
		if ok {
			out.send(blockMsg{line: v.Addr, dirty: v.Dirty})
			f.C.RTileEvictions++
			f.C.ReplacementHops++
		}
	}
	dirty := blk.dirty
	targets := f.mshr.Free(line)
	for _, tg := range targets {
		if tg.Kind == mem.Write {
			dirty = true
		}
	}
	f.rtile.Fill(line, dirty)
	f.C.RTileFills++
	for _, tg := range targets {
		if tg.Kind == mem.Read {
			//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
			f.pendingResp.Push(&mem.Resp{ID: tg.ReqID, Addr: line})
		}
	}
	return true
}

// acceptCPU handles one CPU request; false means stall (leave it queued).
func (f *Fabric) acceptCPU(now sim.Cycle, req *mem.Req) bool {
	line := req.Addr.Line(f.cfg.RTileBank.BlockBytes)
	switch req.Kind {
	case mem.Read:
		f.C.RTileReads++
		if f.rtile.Access(line, false) {
			f.C.RTileReadHits++
			//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
			f.pendingResp.Push(&mem.Resp{ID: req.ID, Addr: line})
			return true
		}
		if f.wbuf.Contains(line) {
			// Pending forwarded write: serve from the buffer.
			f.C.RTileReadHits++
			f.C.WBufForwards++
			//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
			f.pendingResp.Push(&mem.Resp{ID: req.ID, Addr: line})
			return true
		}
		f.C.RTileReadMisses++
		return f.missCPU(now, req, line, mem.Read)
	case mem.Write, mem.Writeback:
		// Absorb into the store queue (the r-tile is "a conventional L1
		// cache extended with flow control", Section II); the array is
		// updated as the queue drains.
		if f.storeQ.Len() >= 8 {
			return false
		}
		f.storeQ.Push(req)
		return true
	}
	return true
}

// drainStores applies one buffered store per cycle.
func (f *Fabric) drainStores(now sim.Cycle) {
	if f.storeQ.Len() == 0 {
		return
	}
	req := *f.storeQ.Front()
	line := req.Addr.Line(f.cfg.RTileBank.BlockBytes)
	f.C.RTileWrites++
	if f.rtile.Access(line, true) {
		// The L-NUCA ensemble is copy-back: the r-tile absorbs the
		// store; the dirty bit migrates outwards with the block.
		f.C.RTileWriteHits++
		f.storeQ.Pop()
		return
	}
	if f.missCPU(now, req, line, mem.Write) {
		f.storeQ.Pop()
	} else {
		f.C.RTileWrites-- // retried next cycle
	}
}

// missCPU merges or allocates an MSHR and queues the search launch.
func (f *Fabric) missCPU(now sim.Cycle, req *mem.Req, line mem.Addr, kind mem.Kind) bool {
	tg := cache.Target{ReqID: req.ID, Addr: line, Kind: kind, Issued: req.Issued}
	if m := f.mshr.Lookup(line); m != nil {
		return f.mshr.Merge(m, tg)
	}
	if f.mshr.Full() {
		f.C.StallMSHRFull++
		return false
	}
	m := f.mshr.Allocate(line, tg)
	m.SentDown = true
	f.searchQ.Push(searchMsg{
		line:   line,
		reqID:  req.ID,
		isRead: kind == mem.Read,
	})
	return true
}

// launchSearch broadcasts a miss to the level-2 tiles.
func (f *Fabric) launchSearch(msg searchMsg) {
	f.launchedNow = true
	f.C.SearchesLaunched++
	for _, c := range f.geom.RTileSearchChildren {
		f.tiles[c].ma.Set(msg)
		f.C.SearchTraversals++
	}
}

// evalRetries re-launches contention-bounced searches that are due.
func (f *Fabric) evalRetries(now sim.Cycle) {
	kept := f.retryQ[:0]
	for _, r := range f.retryQ {
		switch {
		case r.at > now:
			//lnuca:allow(hotalloc) in-place filter into the slice's own backing array; no growth
			kept = append(kept, r)
		case f.mshr.Lookup(r.msg.line) == nil:
			// Already satisfied; drop the stale retry.
		default:
			f.searchQ.Push(r.msg)
		}
	}
	f.retryQ = kept
}

// drainOutputs pushes next-level fetches and buffered writes downstream.
func (f *Fabric) drainOutputs(now sim.Cycle) {
	for f.toL3Q.Len() > 0 && f.down.Down.CanPush() {
		r, _ := f.toL3Q.Pop()
		f.down.Down.Push(r)
	}
	// One buffered write per cycle, after demand fetches.
	if e, ok := f.wbuf.Peek(); ok && f.down.Down.CanPush() {
		f.wbuf.Pop()
		//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
		f.down.Down.Push(&mem.Req{ID: f.ids.Next(), Addr: e.Line, Kind: e.Kind, Issued: now})
	}
}

// anyDLinkOn reports whether any Transport output link can accept a
// message, without drawing from the routing RNG (the pure existence
// check quiescence uses instead of pickDLink).
func anyDLinkOn(links []*dlink) bool {
	for _, l := range links {
		if l.on() {
			return true
		}
	}
	return false
}

// anyULinkOn is anyDLinkOn for Replacement links.
func anyULinkOn(links []*ulink) bool {
	for _, l := range links {
		if l.on() {
			return true
		}
	}
	return false
}

// canFillRTile reports whether a block for line could be inserted into
// the r-tile this cycle (set space, or a victim slot on an On link).
func (f *Fabric) canFillRTile(line mem.Addr) bool {
	return f.rtile.HasSpace(line) || anyULinkOn(f.rtUOut)
}

// missCPUIdle classifies a blocked r-tile miss for line: it returns
// false when missCPU would make progress (merge or allocate), true when
// the miss is stuck, recording the per-cycle counters the retry ticks.
func (f *Fabric) missCPUIdle(line mem.Addr) bool {
	if m := f.mshr.Lookup(line); m != nil {
		if f.mshr.CanMerge(m) {
			return false
		}
		f.skipMergeRejects++ // Merge retried (and rejected) every cycle
		return true
	}
	if f.mshr.Full() {
		f.skipMSHRFull++
		return true
	}
	return false // would allocate and queue a search
}

// NextEvent implements sim.Quiescent. The fabric is idle only when no
// search is in flight, no message on any of the three networks can move,
// no queued launch/retry/global miss is due, and the r-tile can make no
// progress on CPU requests, stores, fills or responses. Timed wakes come
// from the retry and global-miss queues; everything else waits on
// external input. Blocked states that tick counters every cycle (the
// no-victim-slot stall, MSHR-full stalls, merge rejects, and the blocked
// read head re-counting rt_reads/rt_read_misses) are recorded for SkipTo.
func (f *Fabric) NextEvent(now sim.Cycle) (sim.Cycle, bool) {
	wake := sim.Never
	f.skipNoVictim, f.skipMSHRFull, f.skipMergeRejects, f.skipBlockedReads = 0, 0, 0, 0

	// A pending search launch or an in-flight search always acts.
	if f.searchQ.Len() > 0 {
		return 0, false
	}
	for _, t := range f.tiles {
		if t.ma.Valid() {
			return 0, false
		}
	}
	// Timed queues.
	for i := range f.retryQ {
		switch at := f.retryQ[i].at; {
		case at <= now:
			return 0, false
		case at < wake:
			wake = at
		}
	}
	if f.gmQ.Len() > 0 {
		switch r := f.gmQ.Front().readyAt; {
		case r <= now:
			return 0, false
		case r < wake:
			wake = r
		}
	}
	// Transport forwarding: a buffered message moves when its tile has
	// any On output (blocked messages wait silently).
	for _, t := range f.tiles {
		for _, in := range t.dIn {
			if in.ch.Len() > 0 && anyDLinkOn(t.dOut) {
				return 0, false
			}
		}
	}
	// Replacement: a tile with an incoming block acts when its set has
	// room or a victim can leave (exit corners drop clean victims and
	// need write-buffer space for dirty ones).
	for _, t := range f.tiles {
		for _, in := range t.uIn {
			blk, ok := in.peek()
			if !ok {
				continue
			}
			if t.bank.HasSpace(blk.line) {
				return 0, false
			}
			if t.site.ExitsToNextLevel {
				v, full := t.bank.VictimFor(blk.line)
				if !full || !v.Dirty || !f.wbuf.Full() {
					return 0, false
				}
			} else if anyULinkOn(t.uOut) {
				return 0, false
			}
		}
	}
	// R-tile arrivals: Transport deliveries and L3 fills; each blocked
	// head ticks the no-victim-slot stall once per cycle.
	for _, in := range f.rtDIn {
		m, ok := in.ch.Peek()
		if !ok {
			continue
		}
		if f.canFillRTile(m.blk.line) {
			return 0, false
		}
		f.skipNoVictim++
	}
	if resp, ok := f.down.Up.Peek(); ok {
		if f.canFillRTile(resp.Addr.Line(f.cfg.RTileBank.BlockBytes)) {
			return 0, false
		}
		f.skipNoVictim++
	}
	// CPU request head.
	if req, ok := f.up.Down.Peek(); ok {
		line := req.Addr.Line(f.cfg.RTileBank.BlockBytes)
		switch req.Kind {
		case mem.Read:
			if f.rtile.Probe(line) || f.wbuf.Contains(line) || !f.missCPUIdle(line) {
				return 0, false
			}
			// The blocked read head re-runs its lookup every cycle,
			// re-counting a read and a read miss.
			f.skipBlockedReads++
		default:
			if f.storeQ.Len() < 8 {
				return 0, false
			}
		}
	}
	// Store-queue head.
	if f.storeQ.Len() > 0 {
		line := (*f.storeQ.Front()).Addr.Line(f.cfg.RTileBank.BlockBytes)
		if f.rtile.Probe(line) || !f.missCPUIdle(line) {
			return 0, false
		}
	}
	// Responses and downstream outputs.
	if f.pendingResp.Len() > 0 && f.up.Up.CanPush() {
		return 0, false
	}
	if f.down.Down.CanPush() && (f.toL3Q.Len() > 0 || f.wbuf.Len() > 0) {
		return 0, false
	}
	return wake, true
}

// SkipTo implements sim.Quiescent.
func (f *Fabric) SkipTo(now, target sim.Cycle) {
	delta := target - now
	f.C.StallNoVictimSlot += f.skipNoVictim * delta
	f.C.StallMSHRFull += f.skipMSHRFull * delta
	f.mshr.MergeRejects += f.skipMergeRejects * delta
	f.C.RTileReads += f.skipBlockedReads * delta
	f.C.RTileReadMisses += f.skipBlockedReads * delta
}

// MSHROccupancy returns live r-tile MSHR entries (tests).
func (f *Fabric) MSHROccupancy() int { return f.mshr.Len() }

// RTileBank exposes the root tile array (tests, warmup).
func (f *Fabric) RTileBank() *cache.Bank { return f.rtile }

// TileBank exposes one tile's array by site ID (tests).
func (f *Fabric) TileBank(id int) *cache.Bank { return f.tiles[id].bank }

// CheckExclusion verifies the content-exclusion invariant: every block
// address lives in at most one place (r-tile, one tile, or one in-transit
// buffer). Tests call it after every cycle.
func (f *Fabric) CheckExclusion() error {
	where := make(map[mem.Addr]string)
	place := func(a mem.Addr, loc string) error {
		if prev, dup := where[a]; dup {
			return fmt.Errorf("lnuca: block %#x in both %s and %s", uint64(a), prev, loc)
		}
		where[a] = loc
		return nil
	}
	for _, l := range f.rtile.Lines(nil) {
		if err := place(l, "r-tile"); err != nil {
			return err
		}
	}
	for i, t := range f.tiles {
		for _, l := range t.bank.Lines(nil) {
			if err := place(l, fmt.Sprintf("tile%d", i)); err != nil {
				return err
			}
		}
	}
	for i, l := range f.allU {
		for _, b := range l.items {
			if err := place(b.line, fmt.Sprintf("ulink%d", i)); err != nil {
				return err
			}
		}
		for _, b := range l.staged {
			if err := place(b.line, fmt.Sprintf("ulink%d(staged)", i)); err != nil {
				return err
			}
		}
	}
	for i, l := range f.allD {
		for _, m := range l.ch.Snapshot() {
			if err := place(m.blk.line, fmt.Sprintf("dlink%d", i)); err != nil {
				return err
			}
		}
	}
	return nil
}

// TotalBlocks counts blocks resident in the fabric arrays (tests).
func (f *Fabric) TotalBlocks() int {
	n := f.rtile.Occupancy()
	for _, t := range f.tiles {
		n += t.bank.Occupancy()
	}
	return n
}

// AvgTransportRatio returns the average-to-minimum transport latency
// ratio (Table III right columns).
func (f *Fabric) AvgTransportRatio() float64 {
	if f.C.TransportMinCycles == 0 {
		return 1
	}
	return float64(f.C.TransportActualCycles) / float64(f.C.TransportMinCycles)
}

// Collect adds the fabric counters to s under prefix.
func (f *Fabric) Collect(prefix string, s *stats.Set) {
	c := &f.C
	s.Add(prefix+".rt_reads", c.RTileReads)
	s.Add(prefix+".rt_read_hits", c.RTileReadHits)
	s.Add(prefix+".rt_read_misses", c.RTileReadMisses)
	s.Add(prefix+".rt_writes", c.RTileWrites)
	s.Add(prefix+".rt_write_hits", c.RTileWriteHits)
	s.Add(prefix+".rt_fills", c.RTileFills)
	s.Add(prefix+".rt_evictions", c.RTileEvictions)
	s.Add(prefix+".searches", c.SearchesLaunched)
	s.Add(prefix+".search_lookups", c.SearchLookups)
	s.Add(prefix+".search_traversals", c.SearchTraversals)
	s.Add(prefix+".u_compares", c.UCompares)
	s.Add(prefix+".u_hits", c.UHitsTotal)
	for lvl := 2; lvl <= f.cfg.Levels; lvl++ {
		s.Add(fmt.Sprintf("%s.hits_le%d", prefix, lvl), c.TileHitsByLevel[lvl])
		s.Add(fmt.Sprintf("%s.read_hits_le%d", prefix, lvl), c.TileReadHitsByLevel[lvl])
	}
	s.Add(prefix+".transport_delivered", c.TransportDelivered)
	s.Add(prefix+".transport_actual_cycles", c.TransportActualCycles)
	s.Add(prefix+".transport_min_cycles", c.TransportMinCycles)
	s.Add(prefix+".transport_hops", c.TransportHops)
	s.Add(prefix+".replacement_hops", c.ReplacementHops)
	s.Add(prefix+".global_misses", c.GlobalMisses)
	s.Add(prefix+".marked_restarts", c.MarkedRestarts)
	s.Add(prefix+".exit_writebacks", c.ExitWritebacks)
	s.Add(prefix+".exit_drops", c.ExitDrops)
	s.Add(prefix+".l3_fills", c.L3Fills)
	s.Add(prefix+".stall_mshr_full", c.StallMSHRFull)
	s.Add(prefix+".stall_no_victim_slot", c.StallNoVictimSlot)
	s.SetScalar(prefix+".transport_ratio", f.AvgTransportRatio())
}
