// Package lnuca implements the paper's contribution: the Light NUCA cache
// fabric. Small one-cycle tiles surround the root tile (r-tile, the L1)
// in growing half-ring levels, connected by three specialized
// unidirectional networks — Search (broadcast tree, outward), Transport
// (2-D mesh, inward) and Replacement (latency-ordered chains, outward) —
// with headerless messages, distributed random routing, store-and-forward
// On/Off flow control and two-entry link buffers (Sections II and III).
package lnuca

import (
	"fmt"

	"repro/internal/noc"
)

// RTileID is the sentinel site ID for the root tile.
const RTileID = -1

// Site is one tile position in the fabric with its network wiring.
type Site struct {
	ID    int
	Pos   noc.Coord
	Level int // 2..Levels (the r-tile alone is level 1)
	// Latency is the service latency in cycles assuming 1-cycle tiles:
	// level + Manhattan distance to the r-tile (reproduces Fig. 2(c)).
	Latency int

	// SearchParent feeds this tile's MA register (RTileID for level 2).
	SearchParent int
	// SearchChildren receive the miss when this tile misses.
	SearchChildren []int

	// TransportOut lists the inward 2-D mesh neighbours (RTileID when the
	// link ends at the root tile). Every link strictly decreases the
	// distance to the r-tile, so any random choice is a valid route.
	TransportOut []int
	// TransportIn lists tiles whose transport links end here.
	TransportIn []int

	// ReplaceOut lists the neighbours with latency exactly one larger
	// (empty only for the outermost upper-corner tiles, which evict to
	// the next cache level instead).
	ReplaceOut []int
	// ReplaceIn lists tiles (or the r-tile) that evict into this tile.
	ReplaceIn []int
	// ReplaceFromRTile marks the level-2 tiles that receive the r-tile's
	// victims (the paper's stated exception to the +1 rule).
	ReplaceFromRTile bool
	// ExitsToNextLevel marks the upper-corner tiles of the outermost
	// level — the only tiles that evict blocks out of the fabric.
	ExitsToNextLevel bool
}

// Geometry is the static structure of an L-NUCA with a given level count.
type Geometry struct {
	Levels int
	Sites  []Site
	byPos  map[noc.Coord]int
	// RTileReplaceOut lists the sites receiving r-tile victims.
	RTileReplaceOut []int
	// RTileTransportIn lists the sites whose transport links end at the
	// r-tile.
	RTileTransportIn []int
	// RTileSearchChildren lists the level-2 sites (the broadcast roots).
	RTileSearchChildren []int
}

// RingSize returns the number of tiles in level k (k >= 2): 4(k-1)+1.
func RingSize(k int) int { return 4*(k-1) + 1 }

// NumTilesForLevels returns the tile count (r-tile excluded) of an
// n-level L-NUCA: 5, 14, 27 for n = 2, 3, 4 as in the paper.
func NumTilesForLevels(n int) int {
	total := 0
	for k := 2; k <= n; k++ {
		total += RingSize(k)
	}
	return total
}

// NewGeometry constructs the fabric structure for the given number of
// levels (including the r-tile level, so levels >= 2).
func NewGeometry(levels int) (*Geometry, error) {
	if levels < 2 {
		return nil, fmt.Errorf("lnuca: need at least 2 levels, got %d", levels)
	}
	g := &Geometry{Levels: levels, byPos: make(map[noc.Coord]int)}

	// Lay out the rings: level k occupies { (x,y): max(|x|,y)=k-1, y>=0 },
	// enumerated left-bottom, up the left side, across the top, down the
	// right side, for a deterministic ID order.
	for k := 2; k <= levels; k++ {
		r := k - 1
		var ring []noc.Coord
		for y := 0; y <= r; y++ {
			ring = append(ring, noc.Coord{X: -r, Y: y})
		}
		for x := -r + 1; x <= r-1; x++ {
			ring = append(ring, noc.Coord{X: x, Y: r})
		}
		for y := r; y >= 0; y-- {
			ring = append(ring, noc.Coord{X: r, Y: y})
		}
		for _, pos := range ring {
			id := len(g.Sites)
			g.Sites = append(g.Sites, Site{
				ID:      id,
				Pos:     pos,
				Level:   k,
				Latency: k + noc.Manhattan(pos, noc.Coord{}),
			})
			g.byPos[pos] = id
		}
	}

	g.wireSearch()
	g.wireTransport()
	g.wireReplacement()
	return g, nil
}

// MustGeometry is NewGeometry that panics on error, for wiring code.
func MustGeometry(levels int) *Geometry {
	g, err := NewGeometry(levels)
	if err != nil {
		panic(err)
	}
	return g
}

// SiteAt returns the site ID at pos.
func (g *Geometry) SiteAt(pos noc.Coord) (int, bool) {
	id, ok := g.byPos[pos]
	return id, ok
}

// NumTiles returns the number of tiles (r-tile excluded).
func (g *Geometry) NumTiles() int { return len(g.Sites) }

// ring classifies a position within its ring.
func ringRole(pos noc.Coord, r int) (side, top, corner bool) {
	corner = abs(pos.X) == r && pos.Y == r
	side = abs(pos.X) == r && pos.Y < r
	top = pos.Y == r && abs(pos.X) < r
	return
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// wireSearch builds the broadcast tree: side tiles are fed horizontally,
// top tiles vertically, and corner tiles diagonally from the inner corner
// (which gives corner tiles their three children and keeps the maximum
// distance growth at one hop per level, Section III.A).
func (g *Geometry) wireSearch() {
	for i := range g.Sites {
		s := &g.Sites[i]
		r := s.Level - 1
		var parent noc.Coord
		side, top, corner := ringRole(s.Pos, r)
		switch {
		case corner:
			parent = noc.Coord{X: sign(s.Pos.X) * (r - 1), Y: r - 1}
		case side:
			parent = noc.Coord{X: sign(s.Pos.X) * (r - 1), Y: s.Pos.Y}
		case top:
			parent = noc.Coord{X: s.Pos.X, Y: r - 1}
		}
		if s.Level == 2 {
			s.SearchParent = RTileID
			g.RTileSearchChildren = append(g.RTileSearchChildren, s.ID)
			continue
		}
		pid, ok := g.byPos[parent]
		if !ok {
			panic(fmt.Sprintf("lnuca: search parent %v of %v missing", parent, s.Pos))
		}
		s.SearchParent = pid
		g.Sites[pid].SearchChildren = append(g.Sites[pid].SearchChildren, s.ID)
	}
}

// wireTransport builds the inward 2-D mesh: each tile links to the
// rectilinear neighbours that are strictly closer to the r-tile.
func (g *Geometry) wireTransport() {
	for i := range g.Sites {
		s := &g.Sites[i]
		var outs []noc.Coord
		if s.Pos.X > 0 {
			outs = append(outs, noc.Coord{X: s.Pos.X - 1, Y: s.Pos.Y})
		}
		if s.Pos.X < 0 {
			outs = append(outs, noc.Coord{X: s.Pos.X + 1, Y: s.Pos.Y})
		}
		if s.Pos.Y > 0 {
			outs = append(outs, noc.Coord{X: s.Pos.X, Y: s.Pos.Y - 1})
		}
		for _, o := range outs {
			if o == (noc.Coord{}) {
				s.TransportOut = append(s.TransportOut, RTileID)
				g.RTileTransportIn = append(g.RTileTransportIn, s.ID)
				continue
			}
			oid, ok := g.byPos[o]
			if !ok {
				panic(fmt.Sprintf("lnuca: transport neighbour %v of %v missing", o, s.Pos))
			}
			s.TransportOut = append(s.TransportOut, oid)
			g.Sites[oid].TransportIn = append(g.Sites[oid].TransportIn, s.ID)
		}
	}
}

// wireReplacement links every tile to its 8-neighbourhood tiles whose
// latency is exactly one cycle larger; the r-tile (exception) evicts into
// the latency-3 tiles, and the outermost upper corners exit to the next
// cache level (Fig. 2(c)).
func (g *Geometry) wireReplacement() {
	maxLat := 0
	for i := range g.Sites {
		if g.Sites[i].Latency > maxLat {
			maxLat = g.Sites[i].Latency
		}
	}
	for i := range g.Sites {
		s := &g.Sites[i]
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				if dx == 0 && dy == 0 {
					continue
				}
				n := noc.Coord{X: s.Pos.X + dx, Y: s.Pos.Y + dy}
				nid, ok := g.byPos[n]
				if !ok {
					continue
				}
				if g.Sites[nid].Latency == s.Latency+1 {
					s.ReplaceOut = append(s.ReplaceOut, nid)
					g.Sites[nid].ReplaceIn = append(g.Sites[nid].ReplaceIn, s.ID)
				}
			}
		}
		if s.Latency == maxLat {
			s.ExitsToNextLevel = true
		}
		// The r-tile exception: latency-3 tiles receive its victims.
		if s.Latency == 3 {
			s.ReplaceFromRTile = true
			s.ReplaceIn = append(s.ReplaceIn, RTileID)
			g.RTileReplaceOut = append(g.RTileReplaceOut, s.ID)
		}
	}
}

// SearchLinks counts the broadcast-tree links (one per tile: its parent
// link), the minimum possible, as Section III.A argues.
func (g *Geometry) SearchLinks() int { return len(g.Sites) }

// TransportLinks counts the unidirectional inward mesh links.
func (g *Geometry) TransportLinks() int {
	n := 0
	for i := range g.Sites {
		n += len(g.Sites[i].TransportOut)
	}
	return n
}

// ReplacementLinks counts the latency-ordered links, including the
// r-tile's and the two exits to the next cache level.
func (g *Geometry) ReplacementLinks() int {
	n := len(g.RTileReplaceOut)
	for i := range g.Sites {
		n += len(g.Sites[i].ReplaceOut)
		if g.Sites[i].ExitsToNextLevel {
			n++
		}
	}
	return n
}

// MaxLatency returns the service latency of the slowest tile.
func (g *Geometry) MaxLatency() int {
	m := 0
	for i := range g.Sites {
		if g.Sites[i].Latency > m {
			m = g.Sites[i].Latency
		}
	}
	return m
}

// LevelOfLatency returns which tiles to credit for Table III: the sites
// at the given level.
func (g *Geometry) SitesAtLevel(level int) []int {
	var out []int
	for i := range g.Sites {
		if g.Sites[i].Level == level {
			out = append(out, g.Sites[i].ID)
		}
	}
	return out
}

// ReplacementDepth returns the hop count from the r-tile to the exit
// corners along the latency chain: 1 (r-tile to latency 3) + (maxLat - 3)
// further hops. The paper notes this grows by 3 per added level.
func (g *Geometry) ReplacementDepth() int {
	return 1 + (g.MaxLatency() - 3)
}
