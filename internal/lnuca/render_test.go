package lnuca

import (
	"strings"
	"testing"
)

func TestRenderLatencyGridMatchesFig2c(t *testing.T) {
	out := MustGeometry(3).RenderLatencyGrid()
	// The bottom row of Fig. 2(c): 5 3 1 3 5.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	bottom := lines[len(lines)-2] // last grid row before the footer
	for _, want := range []string{"5", "3", "1"} {
		if !strings.Contains(bottom, want) {
			t.Fatalf("bottom row %q missing %s", bottom, want)
		}
	}
	if !strings.Contains(out, "7") {
		t.Error("corners (latency 7) missing from grid")
	}
}

func TestRenderDOTAllNetworks(t *testing.T) {
	g := MustGeometry(3)
	for _, n := range []network{SearchNet, TransportNet, ReplacementNet} {
		dot := g.RenderDOT(n)
		if !strings.HasPrefix(dot, "digraph") || !strings.Contains(dot, "rtile") {
			t.Errorf("%v DOT malformed:\n%s", n, dot[:80])
		}
		if !strings.Contains(dot, "->") {
			t.Errorf("%v DOT has no edges", n)
		}
	}
	// Replacement DOT must show the exit to the next level.
	if !strings.Contains(g.RenderDOT(ReplacementNet), "next_level") {
		t.Error("replacement DOT missing exit corners")
	}
}

func TestNetworkByName(t *testing.T) {
	for name, want := range map[string]network{
		"search": SearchNet, "transport": TransportNet,
		"replacement": ReplacementNet, "replace": ReplacementNet,
	} {
		got, ok := NetworkByName(name)
		if !ok || got != want {
			t.Errorf("NetworkByName(%q) = %v,%v", name, got, ok)
		}
	}
	if _, ok := NetworkByName("bogus"); ok {
		t.Error("bogus network accepted")
	}
}

func TestRenderSummary(t *testing.T) {
	out := MustGeometry(4).RenderSummary()
	for _, want := range []string{"27 tiles", "248 KB", "search network", "replacement depth"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
