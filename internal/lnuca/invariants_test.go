package lnuca

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestBlockConservation verifies that blocks are never duplicated or
// silently lost: every block that entered the fabric is either resident,
// in transit, evicted to the next level, or was dropped clean at an exit
// corner (which the counters record).
func TestBlockConservation(t *testing.T) {
	h := newFabHarness(t, 2)
	rng := sim.NewRand(321)
	var id uint64
	// Small footprint: heavy churn through the corners.
	for cyc := 0; cyc < 3000; cyc++ {
		if h.up.Down.CanPush() && rng.Bool(0.5) {
			id++
			h.read(id, mem.Addr(rng.Intn(1<<13))&^0x1F)
		}
		h.k.Step()
	}
	for i := 0; i < 2000 && uint64(len(h.got)) < id; i++ {
		h.k.Step()
	}
	if uint64(len(h.got)) != id {
		t.Fatalf("only %d of %d reads completed", len(h.got), id)
	}
	// Conservation: everything delivered into the fabric either stays or
	// leaves through a counted path.
	entered := h.f.C.L3Fills // every fabric block entered via an L3 fill
	left := h.f.C.ExitDrops + h.f.C.ExitWritebacks
	resident := uint64(h.f.TotalBlocks())
	inTransit := uint64(0)
	for _, l := range h.f.allU {
		inTransit += uint64(l.len())
	}
	for _, l := range h.f.allD {
		inTransit += uint64(len(l.ch.Snapshot()))
	}
	if entered != left+resident+inTransit {
		t.Fatalf("conservation violated: entered %d != left %d + resident %d + in-transit %d",
			entered, left, resident, inTransit)
	}
}

// TestExclusionPropertyRandomConfigs drives random small configurations
// with random traffic and checks the exclusion invariant throughout.
func TestExclusionPropertyRandomConfigs(t *testing.T) {
	f := func(seed uint64, levelSel, footSel uint8) bool {
		levels := 2 + int(levelSel%3)
		h := newFabHarness(t, levels)
		foot := 1 << (12 + footSel%4) // 4..32KB footprints
		rng := sim.NewRand(seed | 1)
		var id uint64
		for cyc := 0; cyc < 800; cyc++ {
			if h.up.Down.CanPush() && rng.Bool(0.5) {
				addr := mem.Addr(rng.Intn(foot)) &^ 0x1F
				if rng.Bool(0.3) {
					h.write(addr)
				} else {
					id++
					h.read(id, addr)
				}
			}
			h.k.Step()
			if err := h.f.CheckExclusion(); err != nil {
				t.Logf("levels=%d foot=%d: %v", levels, foot, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestSearchBandwidthMatchesRTile checks goal (iv) of Section III: the
// fabric accepts one search per cycle without collapsing under a burst of
// distinct misses.
func TestSearchBandwidthMatchesRTile(t *testing.T) {
	h := newFabHarness(t, 3)
	// 12 distinct cold misses as fast as the port allows.
	for i := 0; i < 12; i++ {
		h.read(uint64(i+1), mem.Addr(0x40000+i*0x2000))
		h.k.Step()
	}
	for i := 0; i < 500 && len(h.got) < 12; i++ {
		h.k.Step()
	}
	if len(h.got) != 12 {
		t.Fatalf("only %d of 12 burst misses completed", len(h.got))
	}
	if h.f.C.SearchesLaunched != 12 {
		t.Fatalf("searches launched = %d, want 12", h.f.C.SearchesLaunched)
	}
}

// TestReplacementStarvationFreedom: under continuous search traffic the
// replacement network still makes progress during idle cycles — victims
// eventually reach tiles rather than wedging the r-tile.
func TestReplacementStarvationFreedom(t *testing.T) {
	h := newFabHarness(t, 2)
	rng := sim.NewRand(5)
	var id uint64
	// Constant pressure on one r-tile set (stride = 8KB for the 32KB
	// 4-way r-tile) forces evictions while searches keep flowing.
	for cyc := 0; cyc < 4000; cyc++ {
		if h.up.Down.CanPush() {
			id++
			h.read(id, mem.Addr(0x20)+mem.Addr(rng.Intn(16))*0x2000)
		}
		h.k.Step()
	}
	if h.f.C.RTileEvictions == 0 {
		t.Fatal("no r-tile evictions despite set pressure")
	}
	if h.f.C.TileFillWrites == 0 {
		t.Fatal("victims never written into tiles: replacement starved")
	}
	if h.f.C.StallNoVictimSlot > h.f.C.RTileFills {
		t.Fatalf("victim-slot stalls (%d) exceed fills (%d): fabric wedged",
			h.f.C.StallNoVictimSlot, h.f.C.RTileFills)
	}
}

// TestDeterministicRoutingOption checks the ablation knob produces a
// valid (and different) execution.
func TestDeterministicRoutingOption(t *testing.T) {
	run := func(det bool) uint64 {
		up := mem.NewPort(16, 16)
		down := mem.NewPort(16, 16)
		var ids mem.IDSource
		cfg := DefaultConfig(3)
		cfg.DeterministicRouting = det
		f, err := NewFabric(cfg, up, down, &ids)
		if err != nil {
			t.Fatal(err)
		}
		k := sim.NewKernel()
		k.MustRegister(f)
		// Drive transport directly: plant blocks, search them.
		for i := range f.tiles {
			f.TileBank(i).Fill(mem.Addr(0x8000+i*0x20), false)
		}
		drv := &detDriver{up: up, down: down, n: len(f.tiles)}
		k.MustRegister(drv)
		k.Run(2000)
		if drv.done != uint64(len(f.tiles)) {
			t.Fatalf("det=%v: %d of %d hits delivered", det, drv.done, len(f.tiles))
		}
		return f.C.TransportHops
	}
	run(true)
	run(false)
}

type detDriver struct {
	up, down *mem.Port
	n        int
	issued   int
	done     uint64
}

func (d *detDriver) Name() string { return "driver" }
func (d *detDriver) Eval(k *sim.Kernel) {
	for {
		if _, ok := d.up.Up.Pop(); !ok {
			break
		}
		d.done++
	}
	for {
		req, ok := d.down.Down.Pop()
		if !ok {
			break
		}
		if req.Kind == mem.Read && d.down.Up.CanPush() {
			d.down.Up.Push(&mem.Resp{ID: req.ID, Addr: req.Addr})
		}
	}
	if d.issued < d.n && d.up.Down.CanPush() {
		d.up.Down.Push(&mem.Req{
			ID: uint64(d.issued + 1), Addr: mem.Addr(0x8000 + d.issued*0x20),
			Kind: mem.Read, Issued: k.Cycle(),
		})
		d.issued++
	}
	if d.done >= uint64(d.n) {
		k.Stop()
	}
}
func (d *detDriver) Commit(k *sim.Kernel) {
	d.up.Down.Tick()
	d.down.Up.Tick()
}
