package lnuca

import (
	"testing"

	"repro/internal/noc"
)

func TestRingSizes(t *testing.T) {
	// Section II: Le2 has 5 tiles, each level adds 4 more.
	want := map[int]int{2: 5, 3: 9, 4: 13, 5: 17}
	for k, n := range want {
		if got := RingSize(k); got != n {
			t.Errorf("RingSize(%d) = %d, want %d", k, got, n)
		}
	}
}

func TestCapacitiesMatchPaper(t *testing.T) {
	// LN2 = 72KB, LN3 = 144KB, LN4 = 248KB with 32KB r-tile + 8KB tiles.
	cases := []struct {
		levels, tiles, totalKB int
	}{
		{2, 5, 72},
		{3, 14, 144},
		{4, 27, 248},
	}
	for _, c := range cases {
		if got := NumTilesForLevels(c.levels); got != c.tiles {
			t.Errorf("NumTilesForLevels(%d) = %d, want %d", c.levels, got, c.tiles)
		}
		if got := 32 + 8*NumTilesForLevels(c.levels); got != c.totalKB {
			t.Errorf("capacity(%d levels) = %dKB, want %dKB", c.levels, got, c.totalKB)
		}
	}
}

func TestGeometryRejectsTooFewLevels(t *testing.T) {
	if _, err := NewGeometry(1); err == nil {
		t.Fatal("1-level geometry should be rejected")
	}
	if _, err := NewGeometry(0); err == nil {
		t.Fatal("0-level geometry should be rejected")
	}
}

// TestFig2cLatencies checks every tile latency of the 3-level L-NUCA
// against Fig. 2(c) of the paper.
func TestFig2cLatencies(t *testing.T) {
	g := MustGeometry(3)
	want := map[noc.Coord]int{
		// Level 2.
		{X: -1, Y: 0}: 3, {X: 1, Y: 0}: 3, {X: 0, Y: 1}: 3,
		{X: -1, Y: 1}: 4, {X: 1, Y: 1}: 4,
		// Level 3.
		{X: -2, Y: 0}: 5, {X: 2, Y: 0}: 5, {X: 0, Y: 2}: 5,
		{X: -2, Y: 1}: 6, {X: 2, Y: 1}: 6, {X: -1, Y: 2}: 6, {X: 1, Y: 2}: 6,
		{X: -2, Y: 2}: 7, {X: 2, Y: 2}: 7,
	}
	if g.NumTiles() != len(want) {
		t.Fatalf("NumTiles = %d, want %d", g.NumTiles(), len(want))
	}
	for pos, lat := range want {
		id, ok := g.SiteAt(pos)
		if !ok {
			t.Fatalf("missing site at %v", pos)
		}
		if got := g.Sites[id].Latency; got != lat {
			t.Errorf("latency(%v) = %d, want %d (Fig. 2(c))", pos, got, lat)
		}
	}
	if g.MaxLatency() != 7 {
		t.Errorf("MaxLatency = %d, want 7", g.MaxLatency())
	}
}

func TestSearchTreeIsSpanningTree(t *testing.T) {
	for _, levels := range []int{2, 3, 4, 5, 6} {
		g := MustGeometry(levels)
		// Every site has exactly one parent; children sets partition.
		seen := make(map[int]bool)
		var walk func(ids []int, depth int)
		walk = func(ids []int, depth int) {
			for _, id := range ids {
				if seen[id] {
					t.Fatalf("levels=%d: site %d reached twice", levels, id)
				}
				seen[id] = true
				s := g.Sites[id]
				if s.Level != depth {
					t.Fatalf("levels=%d: site %d at depth %d has level %d",
						levels, id, depth, s.Level)
				}
				walk(s.SearchChildren, depth+1)
			}
		}
		walk(g.RTileSearchChildren, 2)
		if len(seen) != g.NumTiles() {
			t.Fatalf("levels=%d: search tree covers %d of %d tiles",
				levels, len(seen), g.NumTiles())
		}
		// Minimum link count: exactly one inbound link per tile.
		if g.SearchLinks() != g.NumTiles() {
			t.Fatalf("levels=%d: SearchLinks = %d, want %d",
				levels, g.SearchLinks(), g.NumTiles())
		}
	}
}

func TestSearchDepthGrowsByOnePerLevel(t *testing.T) {
	// Section III.A: "the maximum distance is only increased by one hop
	// when adding an L-NUCA level": level k tiles are looked up at
	// search depth k.
	g := MustGeometry(5)
	for i := range g.Sites {
		s := g.Sites[i]
		depth := 1
		for p := s.ID; p != RTileID; p = g.Sites[p].SearchParent {
			depth++
		}
		if depth != s.Level {
			t.Fatalf("site %v: search depth %d != level %d", s.Pos, depth, s.Level)
		}
	}
}

func TestCornerTilesHaveThreeSearchChildren(t *testing.T) {
	g := MustGeometry(4)
	for i := range g.Sites {
		s := g.Sites[i]
		r := s.Level - 1
		_, _, corner := ringRole(s.Pos, r)
		if s.Level == g.Levels {
			if len(s.SearchChildren) != 0 {
				t.Errorf("outermost site %v has children", s.Pos)
			}
			continue
		}
		if corner && len(s.SearchChildren) != 3 {
			t.Errorf("corner %v has %d children, want 3", s.Pos, len(s.SearchChildren))
		}
		if !corner && len(s.SearchChildren) != 1 {
			t.Errorf("non-corner %v has %d children, want 1", s.Pos, len(s.SearchChildren))
		}
	}
}

func TestTransportLinksPointInward(t *testing.T) {
	for _, levels := range []int{2, 3, 4, 5} {
		g := MustGeometry(levels)
		origin := noc.Coord{}
		for i := range g.Sites {
			s := g.Sites[i]
			if len(s.TransportOut) == 0 {
				t.Fatalf("site %v has no transport output", s.Pos)
			}
			for _, o := range s.TransportOut {
				var dst noc.Coord
				if o != RTileID {
					dst = g.Sites[o].Pos
				}
				if noc.Manhattan(dst, origin) != noc.Manhattan(s.Pos, origin)-1 {
					t.Fatalf("transport link %v -> %v does not reduce distance", s.Pos, dst)
				}
			}
			// Tiles off the axes have two output choices (path diversity).
			if s.Pos.X != 0 && s.Pos.Y != 0 && len(s.TransportOut) != 2 {
				t.Errorf("site %v has %d transport outputs, want 2", s.Pos, len(s.TransportOut))
			}
		}
		// The r-tile is fed by exactly its three neighbours.
		if len(g.RTileTransportIn) != 3 {
			t.Errorf("levels=%d: r-tile has %d transport inputs, want 3",
				levels, len(g.RTileTransportIn))
		}
	}
}

func TestReplacementLatencyOrdered(t *testing.T) {
	for _, levels := range []int{2, 3, 4, 5} {
		g := MustGeometry(levels)
		for i := range g.Sites {
			s := g.Sites[i]
			for _, o := range s.ReplaceOut {
				if g.Sites[o].Latency != s.Latency+1 {
					t.Fatalf("replacement link %v(lat %d) -> %v(lat %d) breaks +1 rule",
						s.Pos, s.Latency, g.Sites[o].Pos, g.Sites[o].Latency)
				}
			}
			if !s.ExitsToNextLevel && len(s.ReplaceOut) == 0 {
				t.Fatalf("site %v (lat %d) has no replacement output and no exit",
					s.Pos, s.Latency)
			}
			if len(s.ReplaceIn) == 0 {
				t.Fatalf("site %v unreachable by replacement network", s.Pos)
			}
		}
	}
}

func TestOnlyUpperCornersExit(t *testing.T) {
	g := MustGeometry(3)
	var exits []noc.Coord
	for i := range g.Sites {
		if g.Sites[i].ExitsToNextLevel {
			exits = append(exits, g.Sites[i].Pos)
		}
	}
	if len(exits) != 2 {
		t.Fatalf("exit tiles = %v, want exactly the 2 upper corners", exits)
	}
	for _, p := range exits {
		if abs(p.X) != 2 || p.Y != 2 {
			t.Errorf("exit tile at %v is not an outermost upper corner", p)
		}
	}
}

func TestReplacementDepthGrowsByThree(t *testing.T) {
	// Section III.A: "when a level is added the distance from the r-tile
	// to the upper corner tiles ... increases by 3 hops".
	prev := 0
	for _, levels := range []int{2, 3, 4, 5} {
		g := MustGeometry(levels)
		d := g.ReplacementDepth()
		if levels > 2 && d != prev+3 {
			t.Errorf("ReplacementDepth(%d levels) = %d, want %d", levels, d, prev+3)
		}
		prev = d
	}
	// Anchor: 2 levels -> 1 + (4-3) = 2 hops (r-tile -> lat3 -> lat4).
	if got := MustGeometry(2).ReplacementDepth(); got != 2 {
		t.Errorf("ReplacementDepth(2) = %d, want 2", got)
	}
}

func TestRTileReplacementFanout(t *testing.T) {
	g := MustGeometry(3)
	if len(g.RTileReplaceOut) != 3 {
		t.Fatalf("r-tile evicts into %d tiles, want the 3 latency-3 tiles",
			len(g.RTileReplaceOut))
	}
	for _, id := range g.RTileReplaceOut {
		if g.Sites[id].Latency != 3 {
			t.Errorf("r-tile victim target %v has latency %d, want 3",
				g.Sites[id].Pos, g.Sites[id].Latency)
		}
	}
}

func TestUBufferComparatorBound(t *testing.T) {
	// Section III.C: up to 4 U-buffer address comparators per tile, i.e.
	// at most 2 inbound replacement links x 2 entries.
	for _, levels := range []int{2, 3, 4, 5, 6} {
		g := MustGeometry(levels)
		for i := range g.Sites {
			if n := len(g.Sites[i].ReplaceIn); n > 2 {
				t.Errorf("levels=%d: site %v has %d replacement inputs, want <= 2",
					levels, g.Sites[i].Pos, n)
			}
		}
	}
}

func TestSitesAtLevel(t *testing.T) {
	g := MustGeometry(4)
	if n := len(g.SitesAtLevel(2)); n != 5 {
		t.Errorf("level 2 has %d sites, want 5", n)
	}
	if n := len(g.SitesAtLevel(4)); n != 13 {
		t.Errorf("level 4 has %d sites, want 13", n)
	}
	if n := len(g.SitesAtLevel(9)); n != 0 {
		t.Errorf("level 9 has %d sites, want 0", n)
	}
}

func TestLinkCountsReasonable(t *testing.T) {
	g := MustGeometry(3)
	// Mesh transport: every tile has 1-2 inward links; the broadcast tree
	// uses exactly one per tile; replacement is sparse.
	if g.TransportLinks() <= g.SearchLinks() {
		t.Error("the transport mesh should have more links than the search tree")
	}
	// A full bidirectional 2D mesh of the same 15 nodes (incl. r-tile, 4
	// rows x 5 cols arrangement) would have far more unidirectional
	// links; the specialized networks must stay below that.
	full := noc.MeshConfig{Width: 5, Height: 3, VCs: 1, VCDepth: 1}
	fullLinks := noc.NewMesh(full).NumLinks()
	total := g.SearchLinks() + g.TransportLinks() + g.ReplacementLinks()
	if total > 2*fullLinks {
		t.Errorf("specialized networks use %d links vs %d for a mesh; too many", total, fullLinks)
	}
}
