package lnuca

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// blockMsg is a cache block traveling on the Replacement network.
type blockMsg struct {
	line  mem.Addr
	dirty bool
}

// transMsg is a hit block traveling on the Transport network toward the
// r-tile, carrying the bookkeeping the statistics need.
type transMsg struct {
	blk      blockMsg
	hitCycle sim.Cycle
	minHops  int
	level    int
}

// searchMsg is a miss request on the Search network. Messages are
// headerless in hardware (Section III.B); line and the launch cycle are
// what the model needs, isRead tags the request for Table III accounting.
type searchMsg struct {
	line   mem.Addr
	reqID  uint64
	isRead bool
	marked bool // contention-marked (Section III.C, transport back-pressure)
}

// dlink is one unidirectional Transport link with its two-entry
// store-and-forward buffer and On/Off back-pressure (Section III.B). The
// used flag enforces one message per link per cycle.
type dlink struct {
	ch   *mem.Chan[transMsg]
	used bool
	// Hops counts traversals for the energy model.
	Hops uint64
}

func newDLink(depth int) *dlink {
	return &dlink{ch: mem.NewChan[transMsg](depth)}
}

// on reports whether the link can accept a message this cycle (the On/Off
// back-pressure signal seen by the sender).
func (l *dlink) on() bool { return !l.used && l.ch.CanPush() }

func (l *dlink) send(m transMsg) {
	l.ch.Push(m)
	l.used = true
	l.Hops++
}

func (l *dlink) tick() {
	l.ch.Tick()
	l.used = false
}

// ulink is one unidirectional Replacement link. Its buffer entries carry
// address comparators (Section III.C): the Search operation can find and
// extract in-transit blocks, which is what prevents false misses.
type ulink struct {
	items    []blockMsg
	staged   []blockMsg
	startLen int
	depth    int
	used     bool
	// Hops counts traversals for the energy model.
	Hops uint64
}

func newULink(depth int) *ulink {
	if depth <= 0 {
		depth = 1
	}
	return &ulink{depth: depth}
}

// on reports whether the link can accept a block this cycle.
func (l *ulink) on() bool {
	return !l.used && l.startLen+len(l.staged) < l.depth
}

func (l *ulink) send(b blockMsg) {
	if !l.on() {
		panic("lnuca: ulink overflow — caller must check on()")
	}
	//lnuca:allow(hotalloc) staged grows to the link-width high-water mark, then reuses
	l.staged = append(l.staged, b)
	l.used = true
	l.Hops++
}

// peek returns the oldest visible block without removing it.
func (l *ulink) peek() (blockMsg, bool) {
	if len(l.items) == 0 {
		return blockMsg{}, false
	}
	return l.items[0], true
}

// pop removes the oldest visible block. The shift keeps the (tiny)
// backing array reusable instead of leaking front capacity.
func (l *ulink) pop() (blockMsg, bool) {
	if len(l.items) == 0 {
		return blockMsg{}, false
	}
	b := l.items[0]
	copy(l.items, l.items[1:])
	l.items = l.items[:len(l.items)-1]
	return b, true
}

// remove extracts the in-transit block for line, if present (the U-buffer
// comparator hit of the Search operation).
func (l *ulink) remove(line mem.Addr) (blockMsg, bool) {
	for i := range l.items {
		if l.items[i].line == line {
			b := l.items[i]
			//lnuca:allow(hotalloc) in-place filter into the slice's own backing array; no growth
			l.items = append(l.items[:i], l.items[i+1:]...)
			return b, true
		}
	}
	return blockMsg{}, false
}

// contains reports whether line is in transit on this link.
func (l *ulink) contains(line mem.Addr) bool {
	for i := range l.items {
		if l.items[i].line == line {
			return true
		}
	}
	return false
}

func (l *ulink) len() int { return len(l.items) }

func (l *ulink) tick() {
	//lnuca:allow(hotalloc) items grow to the link-occupancy high-water mark, then reuse
	l.items = append(l.items, l.staged...)
	l.staged = l.staged[:0]
	l.startLen = len(l.items)
	l.used = false
}
