package lnuca

import (
	"fmt"
	"testing"

	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/stats"
)

// fakeL3 answers reads after a fixed delay and absorbs writes.
type fakeL3 struct {
	port    *mem.Port
	delay   sim.Cycle
	pending []struct {
		resp *mem.Resp
		at   sim.Cycle
	}
	Reads, Writes uint64
}

func (l *fakeL3) Name() string { return "fakeL3" }
func (l *fakeL3) Eval(k *sim.Kernel) {
	now := k.Cycle()
	for {
		req, ok := l.port.Down.Peek()
		if !ok {
			break
		}
		l.port.Down.Pop()
		switch req.Kind {
		case mem.Read:
			l.Reads++
			l.pending = append(l.pending, struct {
				resp *mem.Resp
				at   sim.Cycle
			}{&mem.Resp{ID: req.ID, Addr: req.Addr}, now + l.delay})
		default:
			l.Writes++
		}
	}
	for len(l.pending) > 0 && l.pending[0].at <= now && l.port.Up.CanPush() {
		l.port.Up.Push(l.pending[0].resp)
		l.pending = l.pending[1:]
	}
}
func (l *fakeL3) Commit(k *sim.Kernel) { l.port.Up.Tick() }

// fabHarness wires driver -> Fabric -> fakeL3.
type fabHarness struct {
	k    *sim.Kernel
	up   *mem.Port
	down *mem.Port
	f    *Fabric
	l3   *fakeL3
	ids  mem.IDSource

	got       map[uint64]sim.Cycle
	exclusion bool
	excErr    error
}

func newFabHarness(t *testing.T, levels int) *fabHarness {
	t.Helper()
	h := &fabHarness{
		up:   mem.NewPort(16, 16),
		down: mem.NewPort(16, 16),
		got:  map[uint64]sim.Cycle{},
	}
	var err error
	h.f, err = NewFabric(DefaultConfig(levels), h.up, h.down, &h.ids)
	if err != nil {
		t.Fatal(err)
	}
	h.l3 = &fakeL3{port: h.down, delay: 25}
	h.k = sim.NewKernel()
	h.k.MustRegister(h)
	h.k.MustRegister(h.f)
	h.k.MustRegister(h.l3)
	return h
}

func (h *fabHarness) Name() string { return "driver" }
func (h *fabHarness) Eval(k *sim.Kernel) {
	for {
		r, ok := h.up.Up.Pop()
		if !ok {
			break
		}
		h.got[r.ID] = k.Cycle()
	}
	if h.exclusion && h.excErr == nil {
		h.excErr = h.f.CheckExclusion()
	}
}
func (h *fabHarness) Commit(k *sim.Kernel) { h.up.Down.Tick() }

func (h *fabHarness) read(id uint64, a mem.Addr) {
	h.up.Down.Push(&mem.Req{ID: id, Addr: a, Kind: mem.Read, Issued: h.k.Cycle()})
}

func (h *fabHarness) write(a mem.Addr) {
	h.up.Down.Push(&mem.Req{ID: 0, Addr: a, Kind: mem.Write, Issued: h.k.Cycle()})
}

func (h *fabHarness) runUntil(t *testing.T, id uint64, max int) sim.Cycle {
	t.Helper()
	for i := 0; i < max; i++ {
		if c, ok := h.got[id]; ok {
			return c
		}
		h.k.Step()
	}
	t.Fatalf("request %d never completed within %d cycles", id, max)
	return 0
}

func TestRTileHitLatency(t *testing.T) {
	h := newFabHarness(t, 3)
	h.f.RTileBank().Fill(0x1000, false)
	start := h.k.Cycle()
	h.read(1, 0x1000)
	done := h.runUntil(t, 1, 50)
	if done-start != 2 {
		t.Fatalf("r-tile hit load-to-use = %d, want 2 (Table I: 2-cycle completion)", done-start)
	}
}

// TestFig2cServiceLatencies is the core timing check: a block planted in
// the tile at each position must be serviced with exactly the latency of
// Fig. 2(c) relative to an r-tile hit.
func TestFig2cServiceLatencies(t *testing.T) {
	g := MustGeometry(3)
	for i := range g.Sites {
		site := g.Sites[i]
		t.Run(fmt.Sprintf("tile%v_lat%d", site.Pos, site.Latency), func(t *testing.T) {
			h := newFabHarness(t, 3)
			line := mem.Addr(0x8000)
			h.f.TileBank(site.ID).Fill(line, false)
			start := h.k.Cycle()
			h.read(1, line)
			done := h.runUntil(t, 1, 100)
			// r-tile hit = 2 cycles = fabric latency 1, so latency L
			// tiles complete in L+1 CPU cycles.
			want := sim.Cycle(site.Latency + 1)
			if done-start != want {
				t.Fatalf("load-to-use = %d, want %d (tile latency %d)",
					done-start, want, site.Latency)
			}
			// The block must have migrated to the r-tile (exclusion).
			if h.f.TileBank(site.ID).Probe(line) {
				t.Error("block still in tile after hit (exclusion violated)")
			}
			if !h.f.RTileBank().Probe(line) {
				t.Error("block not promoted to the r-tile")
			}
		})
	}
}

func TestGlobalMissFetchesFromL3(t *testing.T) {
	h := newFabHarness(t, 3)
	start := h.k.Cycle()
	h.read(1, 0x2000)
	done := h.runUntil(t, 1, 200)
	// Search: r-tile C+1, Le2 C+2, Le3 C+3, global miss C+4, L3 sees
	// C+5, responds after 25, fill + resp crossing: >= 31 total.
	if done-start < 28 {
		t.Fatalf("global miss completed in %d cycles, faster than L3 path", done-start)
	}
	if h.l3.Reads != 1 {
		t.Fatalf("L3 reads = %d, want 1", h.l3.Reads)
	}
	if h.f.C.GlobalMisses != 1 {
		t.Fatalf("GlobalMisses = %d, want 1", h.f.C.GlobalMisses)
	}
	if !h.f.RTileBank().Probe(0x2000) {
		t.Fatal("fill did not land in the r-tile")
	}
}

func TestSecondaryMissMergesIntoOneSearch(t *testing.T) {
	h := newFabHarness(t, 2)
	h.read(1, 0x3000)
	h.k.Step()
	h.read(2, 0x3000)
	h.read(3, 0x3010) // same 32B line
	h.runUntil(t, 1, 300)
	h.runUntil(t, 2, 300)
	h.runUntil(t, 3, 300)
	if h.f.C.SearchesLaunched != 1 {
		t.Fatalf("searches = %d, want 1 (merged)", h.f.C.SearchesLaunched)
	}
	if h.l3.Reads != 1 {
		t.Fatalf("L3 reads = %d, want 1", h.l3.Reads)
	}
}

func TestVictimMigratesToLevel2(t *testing.T) {
	h := newFabHarness(t, 3)
	// Fill one r-tile set (4 ways, set stride 32B*256sets = 8KB) plus one.
	stride := mem.Addr(8 << 10)
	base := mem.Addr(0x40)
	for i := 0; i < 5; i++ {
		h.read(uint64(i+1), base+mem.Addr(i)*stride)
		h.runUntil(t, uint64(i+1), 300)
	}
	// The first block was evicted from the r-tile; give the replacement
	// network a few idle cycles to write it into a Le2 tile.
	for i := 0; i < 20; i++ {
		h.k.Step()
	}
	if h.f.RTileBank().Probe(base) {
		t.Fatal("victim still in r-tile; test setup wrong")
	}
	found := false
	for _, id := range h.f.Geometry().SitesAtLevel(2) {
		if h.f.TileBank(id).Probe(base) {
			found = true
		}
	}
	if !found {
		t.Fatal("victim did not land in a level-2 tile (distributed victim cache)")
	}
	// Re-reading it must hit in the fabric, not go to L3.
	l3Before := h.l3.Reads
	h.read(99, base)
	h.runUntil(t, 99, 100)
	if h.l3.Reads != l3Before {
		t.Fatal("re-read of a victim went to L3 instead of hitting a tile")
	}
	if h.f.C.TileHitsByLevel[2] == 0 {
		t.Fatal("no level-2 hit recorded")
	}
}

func TestExclusionInvariantUnderRandomTraffic(t *testing.T) {
	h := newFabHarness(t, 3)
	h.exclusion = true
	rng := sim.NewRand(99)
	id := uint64(0)
	for cyc := 0; cyc < 4000; cyc++ {
		if h.up.Down.CanPush() && rng.Bool(0.6) {
			addr := mem.Addr(rng.Intn(1<<14)) &^ 0x1F // 16KB footprint: heavy eviction
			if rng.Bool(0.3) {
				h.write(addr)
			} else {
				id++
				h.read(id, addr)
			}
		}
		h.k.Step()
		if h.excErr != nil {
			t.Fatalf("cycle %d: %v", cyc, h.excErr)
		}
	}
	if h.excErr != nil {
		t.Fatal(h.excErr)
	}
	// All reads eventually complete.
	for i := 0; i < 3000 && uint64(len(h.got)) < id; i++ {
		h.k.Step()
	}
	if uint64(len(h.got)) != id {
		t.Fatalf("completed %d of %d reads (MSHR live: %d)",
			len(h.got), id, h.f.MSHROccupancy())
	}
	if h.f.MSHROccupancy() != 0 {
		t.Fatalf("leaked MSHRs: %d", h.f.MSHROccupancy())
	}
}

func TestStoreMissWriteAllocatesViaSearch(t *testing.T) {
	h := newFabHarness(t, 2)
	// Plant the block in a tile; a store miss must migrate it in.
	tileID := h.f.Geometry().SitesAtLevel(2)[0]
	h.f.TileBank(tileID).Fill(0x4000, false)
	h.write(0x4000)
	for i := 0; i < 50; i++ {
		h.k.Step()
	}
	if !h.f.RTileBank().Probe(0x4000) {
		t.Fatal("store miss did not migrate the block to the r-tile")
	}
	if !h.f.RTileBank().IsDirty(0x4000) {
		t.Fatal("migrated block not dirty after store")
	}
	if h.l3.Reads != 0 {
		t.Fatal("tile hit should not have fetched from L3")
	}
}

func TestPureWriteMissForwardsToL3(t *testing.T) {
	h := newFabHarness(t, 2)
	h.write(0x5000)
	for i := 0; i < 100; i++ {
		h.k.Step()
	}
	if h.l3.Writes != 1 {
		t.Fatalf("L3 writes = %d, want 1 (Fig. 2(c): write misses to L3)", h.l3.Writes)
	}
	if h.l3.Reads != 0 {
		t.Fatalf("pure write miss should not read from L3 (no-allocate), got %d", h.l3.Reads)
	}
	if h.f.MSHROccupancy() != 0 {
		t.Fatal("write-miss MSHR not freed")
	}
}

func TestDirtyCornerEvictionWritesBack(t *testing.T) {
	h := newFabHarness(t, 2)
	// Dirty many blocks in one r-tile set lineage and push them through
	// the whole fabric: r-tile set stride 8KB; tile set stride 4KB — use
	// a footprint that collides everywhere.
	stride := mem.Addr(8 << 10)
	var id uint64
	for i := 0; i < 60; i++ {
		a := mem.Addr(0x20) + mem.Addr(i)*stride
		h.write(a)
		id++
		h.read(id, a) // ensure allocation completes before moving on
		h.runUntil(t, id, 400)
	}
	for i := 0; i < 400; i++ {
		h.k.Step()
	}
	if h.f.C.ExitWritebacks == 0 {
		t.Fatal("no dirty corner evictions reached L3")
	}
	if h.l3.Writes == 0 {
		t.Fatal("L3 never saw writeback traffic")
	}
}

func TestTransportRatioNearOneUnderLightLoad(t *testing.T) {
	h := newFabHarness(t, 3)
	// Spread blocks across tiles and read them one at a time.
	g := h.f.Geometry()
	for i := range g.Sites {
		h.f.TileBank(i).Fill(mem.Addr(0x10000+i*0x20), false)
	}
	var id uint64
	for i := range g.Sites {
		id++
		h.read(id, mem.Addr(0x10000+i*0x20))
		h.runUntil(t, id, 100)
	}
	ratio := h.f.AvgTransportRatio()
	if ratio != 1.0 {
		t.Fatalf("uncontended transport ratio = %v, want exactly 1.0", ratio)
	}
}

func TestContentionMarkedRestart(t *testing.T) {
	h := newFabHarness(t, 2)
	// Plant the target block in the west tile.
	westID, _ := h.f.Geometry().SiteAt(noc.Coord{X: -1, Y: 0})
	line := mem.Addr(0x6000)
	h.f.TileBank(westID).Fill(line, false)
	// Keep the west tile's single output link saturated: the r-tile
	// drains one message per cycle, so refill one per cycle. The fakes
	// use distinct lines so they just fill the r-tile.
	out := h.f.tiles[westID].dOut[0]
	out.ch.Push(transMsg{blk: blockMsg{line: 0x7000}})
	out.ch.Push(transMsg{blk: blockMsg{line: 0x7020}})
	h.read(1, line)
	fake := mem.Addr(0x8000)
	for i := 0; i < 8; i++ {
		h.k.Step()
		if out.ch.CanPush() {
			out.ch.Push(transMsg{blk: blockMsg{line: fake}})
			fake += 0x20
		}
	}
	h.runUntil(t, 1, 300)
	if h.f.C.MarkedRestarts == 0 {
		t.Fatal("saturated transport link should have produced a marked restart")
	}
	if h.l3.Reads != 0 {
		t.Fatal("restart must not fall through to L3")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() *stats.Set {
		h := newFabHarness(t, 3)
		rng := sim.NewRand(7)
		var id uint64
		for cyc := 0; cyc < 1500; cyc++ {
			if h.up.Down.CanPush() && rng.Bool(0.5) {
				addr := mem.Addr(rng.Intn(1<<15)) &^ 0x1F
				if rng.Bool(0.25) {
					h.write(addr)
				} else {
					id++
					h.read(id, addr)
				}
			}
			h.k.Step()
		}
		s := stats.NewSet()
		h.f.Collect("ln", s)
		return s
	}
	a, b := run(), run()
	if a.String() != b.String() {
		t.Fatalf("two identical runs diverged:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}

func TestCollectExposesPerLevelHits(t *testing.T) {
	h := newFabHarness(t, 3)
	id, _ := h.f.Geometry().SiteAt(noc.Coord{X: 0, Y: 1})
	h.f.TileBank(id).Fill(0x9000, false)
	h.read(1, 0x9000)
	h.runUntil(t, 1, 100)
	s := stats.NewSet()
	h.f.Collect("ln", s)
	if s.Counter("ln.hits_le2") != 1 || s.Counter("ln.read_hits_le2") != 1 {
		t.Fatalf("per-level hit counters wrong:\n%s", s)
	}
	if s.Scalar("ln.transport_ratio") != 1.0 {
		t.Fatalf("transport ratio = %v", s.Scalar("ln.transport_ratio"))
	}
}

func TestConfigValidation(t *testing.T) {
	var ids mem.IDSource
	up, down := mem.NewPort(4, 4), mem.NewPort(4, 4)
	bad := DefaultConfig(3)
	bad.TileBank.BlockBytes = 64 // mismatched with r-tile
	if _, err := NewFabric(bad, up, down, &ids); err == nil {
		t.Fatal("mismatched block sizes must be rejected")
	}
	bad = DefaultConfig(1)
	if _, err := NewFabric(bad, up, down, &ids); err == nil {
		t.Fatal("1-level fabric must be rejected")
	}
}

func TestUBufferHitFindsInTransitBlock(t *testing.T) {
	h := newFabHarness(t, 2)
	// Put a block into a U link (in transit) and search for it: the U
	// comparators must find it (no false miss). To keep it in transit,
	// the destination tile's set is filled (it cannot absorb the block)
	// and its outgoing replacement links are saturated (it cannot make
	// room by evicting).
	northID, _ := h.f.Geometry().SiteAt(noc.Coord{X: 0, Y: 1})
	tl := h.f.tiles[northID]
	if len(tl.uIn) == 0 {
		t.Fatal("north tile should have replacement inputs")
	}
	line := mem.Addr(0xA000)
	// 8KB 2-way 32B tile: set stride 4KB. Fill both ways of line's set.
	tl.bank.Fill(line+0x1000, false)
	tl.bank.Fill(line+0x2000, false)
	// Each link carries one message per cycle, so alternate send/tick to
	// fill both entries of each two-entry buffer.
	fake := mem.Addr(0xF000)
	for _, out := range tl.uOut {
		for i := 0; i < 2; i++ {
			out.send(blockMsg{line: fake})
			out.tick()
			fake += 0x20
		}
	}
	tl.uIn[0].send(blockMsg{line: line, dirty: true})
	tl.uIn[0].tick()
	h.read(1, line)
	h.runUntil(t, 1, 100)
	if h.l3.Reads != 0 {
		t.Fatal("in-transit block missed: search went to L3 (false miss)")
	}
	if h.f.C.UHitsTotal != 1 {
		t.Fatalf("UHitsTotal = %d, want 1", h.f.C.UHitsTotal)
	}
	if !h.f.RTileBank().Probe(line) {
		t.Fatal("U-hit block not delivered to the r-tile")
	}
	if !h.f.RTileBank().IsDirty(line) {
		t.Fatal("dirty bit lost in U-hit transport")
	}
}

func TestManyLevelsStillCorrect(t *testing.T) {
	// 5 levels: 5+9+13+17 = 44 tiles; check the global miss path and a
	// deep tile hit.
	h := newFabHarness(t, 5)
	h.read(1, 0xB000)
	h.runUntil(t, 1, 300)
	if h.l3.Reads != 1 {
		t.Fatal("global miss broken at 5 levels")
	}
	deep := h.f.Geometry().SitesAtLevel(5)[0]
	line := mem.Addr(0xC000)
	h.f.TileBank(deep).Fill(line, false)
	start := h.k.Cycle()
	h.read(2, line)
	done := h.runUntil(t, 2, 300)
	want := sim.Cycle(h.f.Geometry().Sites[deep].Latency + 1)
	if done-start != want {
		t.Fatalf("deep tile load-to-use = %d, want %d", done-start, want)
	}
}
