// Package profiling wires the standard runtime/pprof collectors behind
// the -cpuprofile / -memprofile flags the simulation CLIs share, so perf
// work on the kernel is measured instead of guessed.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Session owns the active profile collectors of one CLI invocation.
type Session struct {
	cpuFile *os.File
	memPath string
}

// Start begins CPU profiling and/or arms a heap snapshot. Empty paths
// disable the corresponding profile.
func Start(cpuPath, memPath string) (*Session, error) {
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		s.cpuFile = f
	}
	return s, nil
}

// Stop ends CPU profiling and writes the heap profile, if armed. It is
// safe to call on a nil session and must run before the process exits
// for the profiles to be complete.
func (s *Session) Stop() error {
	if s == nil {
		return nil
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := s.cpuFile.Close(); err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		s.cpuFile = nil
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		defer f.Close()
		runtime.GC() // materialize a settled heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		s.memPath = ""
	}
	return nil
}
