package sram

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tech"
)

// Table I configurations with their published energy/leakage values; the
// analytical model must track each within calibration tolerance.
var tableI = []struct {
	name      string
	cfg       Config
	pubReadPJ float64
	pubLeakMW float64
	tolFactor float64
}{
	{"L1", Config{SizeBytes: 32 << 10, Ways: 4, BlockBytes: 32, Ports: 2, Device: tech.HP}, 21.2, 12.8, 2.5},
	{"L2", Config{SizeBytes: 256 << 10, Ways: 8, BlockBytes: 64, Ports: 1, Device: tech.HP, Serial: true}, 47.2, 66.9, 2.5},
	{"tile", Config{SizeBytes: 8 << 10, Ways: 2, BlockBytes: 32, Ports: 1, Device: tech.HP}, 14.0, 2.2, 1.3},
	{"L3", Config{SizeBytes: 8 << 20, Ways: 16, BlockBytes: 128, Ports: 1, Device: tech.LOP, Serial: true}, 20.9, 600, 1.3},
	{"DN-bank", Config{SizeBytes: 256 << 10, Ways: 2, BlockBytes: 128, Ports: 1, Device: tech.HP}, 131.2, 33.5, 2.5},
}

func within(got, want, factor float64) bool {
	if want == 0 {
		return false
	}
	r := got / want
	return r >= 1/factor && r <= factor
}

func TestCalibrationAgainstTableI(t *testing.T) {
	for _, c := range tableI {
		e := ReadEnergyPJ(c.cfg)
		if !within(e, c.pubReadPJ, c.tolFactor) {
			t.Errorf("%s: ReadEnergyPJ = %.1f, published %.1f (tolerance x%.1f)",
				c.name, e, c.pubReadPJ, c.tolFactor)
		}
		l := LeakageMW(c.cfg)
		if !within(l, c.pubLeakMW, c.tolFactor) {
			t.Errorf("%s: LeakageMW = %.2f, published %.1f (tolerance x%.1f)",
				c.name, l, c.pubLeakMW, c.tolFactor)
		}
	}
}

func TestTightCalibrationPoints(t *testing.T) {
	// The values the L-NUCA evaluation leans on hardest must be tight.
	tile := tableI[2].cfg
	if !within(ReadEnergyPJ(tile), 14.0, 1.15) {
		t.Errorf("tile read energy %.2f pJ, want within 15%% of 14 pJ", ReadEnergyPJ(tile))
	}
	if !within(LeakageMW(tile), 2.2, 1.15) {
		t.Errorf("tile leakage %.2f mW, want within 15%% of 2.2 mW", LeakageMW(tile))
	}
	l3 := tableI[3].cfg
	if !within(LeakageMW(l3), 600, 1.1) {
		t.Errorf("L3 leakage %.1f mW, want within 10%% of 600 mW", LeakageMW(l3))
	}
	l2 := tableI[1].cfg
	if !within(LeakageMW(l2), 66.9, 1.1) {
		t.Errorf("L2 leakage %.1f mW, want within 10%% of 66.9 mW", LeakageMW(l2))
	}
}

func TestTableIIAreas(t *testing.T) {
	// Table II: L1+L2 = 0.91 mm^2. Network excluded here (it is added by
	// the area roll-up package), so the SRAM-only totals must come out a
	// little under the published L-NUCA numbers.
	l1 := tableI[0].cfg
	l2 := tableI[1].cfg
	tile := tableI[2].cfg
	conv := AreaMM2(l1) + AreaMM2(l2)
	if !within(conv, 0.91, 1.25) {
		t.Errorf("L1+L2 area = %.3f, published 0.91 (tolerance 25%%)", conv)
	}
	tiles := map[int]float64{5: 0.46, 14: 0.86, 27: 1.59}
	netFrac := map[int]float64{5: 0.1401, 14: 0.188, 27: 0.1902}
	for n, pub := range tiles {
		sramOnly := AreaMM2(l1) + float64(n)*AreaMM2(tile)
		pubSRAM := pub * (1 - netFrac[n])
		if !within(sramOnly, pubSRAM, 1.3) {
			t.Errorf("r-tile+%d tiles = %.3f mm^2, published SRAM share %.3f",
				n, sramOnly, pubSRAM)
		}
	}
}

func TestMonotonicInSize(t *testing.T) {
	base := Config{SizeBytes: 8 << 10, Ways: 2, BlockBytes: 32, Ports: 1, Device: tech.HP}
	prev := Estimates(base)
	for size := 16 << 10; size <= 1<<20; size <<= 1 {
		c := base
		c.SizeBytes = size
		e := Estimates(c)
		if e.ReadPJ <= prev.ReadPJ || e.LeakMW <= prev.LeakMW ||
			e.AreaMM2 <= prev.AreaMM2 || e.AccessFO4 <= prev.AccessFO4 {
			t.Fatalf("model not monotonic in size at %dKB: %+v vs %+v", size/1024, e, prev)
		}
		prev = e
	}
}

func TestMonotonicInPorts(t *testing.T) {
	base := Config{SizeBytes: 32 << 10, Ways: 4, BlockBytes: 32, Ports: 1, Device: tech.HP}
	two := base
	two.Ports = 2
	if LeakageMW(two) <= LeakageMW(base) || AreaMM2(two) <= AreaMM2(base) ||
		ReadEnergyPJ(two) <= ReadEnergyPJ(base) {
		t.Error("extra port must cost leakage, area and energy")
	}
}

func TestSerialSavesEnergy(t *testing.T) {
	par := Config{SizeBytes: 256 << 10, Ways: 8, BlockBytes: 64, Ports: 1, Device: tech.HP}
	ser := par
	ser.Serial = true
	if ReadEnergyPJ(ser) >= ReadEnergyPJ(par) {
		t.Error("serial access should read fewer data bits and save energy")
	}
	if AccessFO4(ser) <= AccessFO4(par) {
		t.Error("serial access should be slower")
	}
}

func TestLOPTradeoff(t *testing.T) {
	hp := Config{SizeBytes: 1 << 20, Ways: 8, BlockBytes: 128, Ports: 1, Device: tech.HP, Serial: true}
	lop := hp
	lop.Device = tech.LOP
	if LeakageMW(lop) >= LeakageMW(hp) {
		t.Error("LOP must leak less than HP")
	}
	if AccessFO4(lop) <= AccessFO4(hp) {
		t.Error("LOP must be slower than HP")
	}
	if ReadEnergyPJ(lop) >= ReadEnergyPJ(hp) {
		t.Error("LOP dynamic energy should be below HP")
	}
}

func TestWriteEnergyIndependentOfAccessMode(t *testing.T) {
	par := Config{SizeBytes: 32 << 10, Ways: 4, BlockBytes: 32, Ports: 1, Device: tech.HP}
	ser := par
	ser.Serial = true
	if math.Abs(WriteEnergyPJ(par)-WriteEnergyPJ(ser)) > 1e-9 {
		t.Error("a write drives one way regardless of read access mode")
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 2, BlockBytes: 32},
		{SizeBytes: 8192, Ways: 0, BlockBytes: 32},
		{SizeBytes: 32, Ways: 2, BlockBytes: 32}, // smaller than ways*block
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
	good := Config{SizeBytes: 8192, Ways: 2, BlockBytes: 32, Ports: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestAccessCyclesAtLeastOne(t *testing.T) {
	f := func(sizeKB, ways, ports uint8) bool {
		c := Config{
			SizeBytes:  (1 + int(sizeKB%64)) << 10,
			Ways:       1 + int(ways%8),
			BlockBytes: 32,
			Ports:      1 + int(ports%3),
			Device:     tech.HP,
		}
		if c.SizeBytes < c.Ways*c.BlockBytes {
			return true
		}
		e := Estimates(c)
		return e.AccessCycles >= 1 && e.ReadPJ > 0 && e.LeakMW > 0 && e.AreaMM2 > 0 &&
			e.TagFO4 < e.AccessFO4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTagFractionMatchesPaper(t *testing.T) {
	// Section III.C: "the delay until the tag comparison represents
	// roughly 80% of the total delay" for small low-associativity tiles.
	tile := tableI[2].cfg
	frac := TagCompareFO4(tile) / AccessFO4(tile)
	if math.Abs(frac-0.80) > 0.01 {
		t.Errorf("tag fraction = %.2f, want 0.80", frac)
	}
}
