// Package sram is the analytical SRAM bank model standing in for Cacti 5.3
// (paper Section IV). It estimates access delay (in FO4), dynamic read
// energy, leakage power, and area from bank geometry.
//
// The model is calibrated against the per-configuration values the paper
// publishes in Table I (energies, leakage) and Table II (areas): the
// simulator's default configurations carry those exact published numbers,
// while this model supplies estimates for swept configurations and is
// verified by tests to (a) track every Table I/II point within a small
// factor and (b) scale monotonically with size, associativity and ports —
// which is all the paper uses Cacti for.
package sram

import (
	"fmt"
	"math"

	"repro/internal/tech"
)

// Config describes one SRAM bank for estimation purposes.
type Config struct {
	SizeBytes  int
	Ways       int
	BlockBytes int
	Ports      int
	Device     tech.DeviceClass
	// Serial selects tag-then-data sequencing: slower, but only one data
	// way is read (the paper's L2/L3 use it; L1, tiles and D-NUCA banks
	// read tag and data in parallel).
	Serial bool
}

// Validate reports whether the geometry is usable.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("sram: non-positive geometry %+v", c)
	}
	if c.SizeBytes < c.Ways*c.BlockBytes {
		return fmt.Errorf("sram: size %dB below one block per way", c.SizeBytes)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.BlockBytes) }

// bits returns total storage bits.
func (c Config) bits() float64 { return float64(c.SizeBytes) * 8 }

// activatedDataBits returns the data bits read per access.
func (c Config) activatedDataBits() float64 {
	ways := 1
	if !c.Serial {
		ways = c.Ways
	}
	return float64(ways*c.BlockBytes) * 8
}

// tagBits approximates the tag storage read per access (40-bit physical
// addresses).
func (c Config) tagBits() float64 {
	offset := math.Log2(float64(c.BlockBytes))
	index := math.Log2(float64(c.Sets()))
	t := 40 - offset - index
	if t < 8 {
		t = 8
	}
	return t * float64(c.Ways)
}

// Model constants, hand-calibrated at 32 nm against Table I / Table II.
const (
	// subarrayBits is the largest monolithic subarray; bigger banks are
	// tiled from subarrays reached through an H-tree (as Cacti does).
	subarrayBits = 512 * 1024

	// Dynamic energy coefficients (pJ).
	dynPerDataBit    = 0.012 // bitline+sense per activated data bit
	dynPerTagBit     = 0.030 // tag array per bit (comparators included)
	dynPerSqrtBit    = 0.020 // wordline/decoder ~ sqrt(subarray bits)
	dynWireCross     = 0.08  // bit x sqrt(subarray)/1e4 coupling term
	dynHTreePerLevel = 0.50  // per activated kilobit per doubling beyond a subarray
	dynPortFactor    = 0.25  // extra energy per extra port
	dynLOPFactor     = 0.45  // LOP arrays burn less dynamic energy

	// Leakage coefficients (mW per Kbit).
	leakHPPerKb  = 0.033
	leakLOPPerKb = 0.0094
	leakPortTax  = 0.55 // extra leakage fraction per extra port

	// Area coefficients.
	cellAreaUM2     = 0.200 // 6T SRAM cell at 32 nm, incl. in-array wiring
	areaPortFactor  = 0.85  // extra cell+wiring area per extra port
	areaOverheadC1  = 0.45  // fixed periphery fraction
	areaOverheadC2  = 3.4   // periphery fraction term / sqrt(KB)
	areaLOPFactor   = 0.95  // LOP arrays pack slightly denser
	areaSerialSaves = 0.97  // serial access needs fewer sense amps

	// Delay coefficients (FO4).
	delayDecodeBase   = 4.0
	delayPerLog2Rows  = 0.9
	delayPerSqrtKB    = 0.35
	delayPerWay       = 0.45
	delayHTreePerLvl  = 1.1
	delaySerialTagAdd = 0.85 // serial access serializes part of the tag path
	delayLOPFactor    = 1.25 // LOP transistors are slower
	// TagFraction is the share of the total access delay elapsed when the
	// tag comparison resolves; the paper measures "roughly 80%" with
	// Cacti 5.3 for small low-associativity arrays (Section III.C).
	TagFraction = 0.80
)

// htreeLevels returns the number of size doublings beyond one subarray.
func htreeLevels(bits float64) float64 {
	if bits <= subarrayBits {
		return 0
	}
	return math.Log2(bits / subarrayBits)
}

// ReadEnergyPJ estimates the dynamic energy of one read access.
func ReadEnergyPJ(c Config) float64 {
	sub := math.Min(c.bits(), subarrayBits)
	a := c.activatedDataBits()
	e := dynPerDataBit*a +
		dynPerTagBit*c.tagBits() +
		dynPerSqrtBit*math.Sqrt(sub) +
		dynWireCross*a*math.Sqrt(sub)/1e4 +
		dynHTreePerLevel*htreeLevels(c.bits())*(a/1024)
	e *= 1 + dynPortFactor*float64(c.Ports-1)
	if c.Device == tech.LOP {
		e *= dynLOPFactor
	}
	return e
}

// WriteEnergyPJ estimates the dynamic energy of one write access. Writes
// drive one way's bitlines plus the tag check.
func WriteEnergyPJ(c Config) float64 {
	one := c
	one.Serial = true // a write touches one way regardless of access mode
	return 1.1 * ReadEnergyPJ(one)
}

// LeakageMW estimates static power.
func LeakageMW(c Config) float64 {
	perKb := leakHPPerKb
	if c.Device == tech.LOP {
		perKb = leakLOPPerKb
	}
	kb := c.bits() / 1024
	return perKb * kb * (1 + leakPortTax*float64(c.Ports-1))
}

// AreaMM2 estimates the silicon area of the bank.
func AreaMM2(c Config) float64 {
	cells := c.bits() * cellAreaUM2 * 1e-6 // mm^2
	cells *= 1 + areaPortFactor*float64(c.Ports-1)
	kb := c.bits() / 1024 / 8 // KB
	overhead := 1 + areaOverheadC1 + areaOverheadC2/math.Sqrt(kb)
	a := cells * overhead
	if c.Device == tech.LOP {
		a *= areaLOPFactor
	}
	if c.Serial {
		a *= areaSerialSaves
	}
	return a
}

// AccessFO4 estimates the full read access delay in FO4 units.
func AccessFO4(c Config) float64 {
	rows := float64(c.Sets())
	if rows < 1 {
		rows = 1
	}
	kb := c.bits() / 1024 / 8
	d := delayDecodeBase +
		delayPerLog2Rows*math.Log2(math.Max(rows, 2)) +
		delayPerSqrtKB*math.Sqrt(kb) +
		delayPerWay*float64(c.Ways) +
		delayHTreePerLvl*htreeLevels(c.bits())
	if c.Serial {
		d += delaySerialTagAdd * d * TagFraction
	}
	if c.Device == tech.LOP {
		d *= delayLOPFactor
	}
	return d
}

// TagCompareFO4 estimates the delay until the hit/miss outcome is known:
// the quantity that lets an L-NUCA tile forward a miss within the same
// cycle it looks up (Section III.C).
func TagCompareFO4(c Config) float64 {
	return TagFraction * AccessFO4(c)
}

// AccessCycles returns the access time rounded up to whole processor
// cycles at the modeled 19 FO4 clock.
func AccessCycles(c Config) int {
	cyc := int(math.Ceil(AccessFO4(c) / tech.FO4PerCycle))
	if cyc < 1 {
		cyc = 1
	}
	return cyc
}

// Estimate bundles all model outputs for one configuration.
type Estimate struct {
	Config       Config
	ReadPJ       float64
	WritePJ      float64
	LeakMW       float64
	AreaMM2      float64
	AccessFO4    float64
	TagFO4       float64
	AccessCycles int
}

// Estimates computes the full report for c.
func Estimates(c Config) Estimate {
	return Estimate{
		Config:       c,
		ReadPJ:       ReadEnergyPJ(c),
		WritePJ:      WriteEnergyPJ(c),
		LeakMW:       LeakageMW(c),
		AreaMM2:      AreaMM2(c),
		AccessFO4:    AccessFO4(c),
		TagFO4:       TagCompareFO4(c),
		AccessCycles: AccessCycles(c),
	}
}
