package workload

import (
	"reflect"
	"strings"
	"testing"
)

func TestResolveNamedMixes(t *testing.T) {
	for _, name := range MixNames() {
		for _, cores := range []int{2, 4, 8} {
			got, err := ResolveMix(name, cores, 1)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, cores, err)
			}
			if len(got) != cores {
				t.Fatalf("%s/%d: %d entries", name, cores, len(got))
			}
			for _, b := range got {
				if _, ok := ByName(b); !ok {
					t.Fatalf("%s/%d: unknown benchmark %q", name, cores, b)
				}
			}
			// Named mixes ignore the seed entirely.
			again, _ := ResolveMix(name, cores, 999)
			if !reflect.DeepEqual(got, again) {
				t.Fatalf("%s/%d: seed-dependent named mix", name, cores)
			}
		}
	}
}

func TestResolveMixedAlternatesClasses(t *testing.T) {
	got, err := ResolveMix("mixed", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		p, _ := ByName(b)
		want := Int
		if i%2 == 1 {
			want = FP
		}
		if p.Class != want {
			t.Fatalf("mixed[%d] = %s (class %v), want class %v", i, b, p.Class, want)
		}
	}
}

func TestResolveRandomMix(t *testing.T) {
	a, err := ResolveMix(RandomMixName, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ResolveMix(RandomMixName, 8, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("random mix not a pure function of the seed: %v vs %v", a, b)
	}
	c, _ := ResolveMix(RandomMixName, 8, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("random mix ignores the seed: %v", a)
	}
	// Draws are without replacement while the catalog lasts.
	seen := map[string]bool{}
	for _, n := range a {
		if seen[n] {
			t.Fatalf("random mix repeated %q before exhausting the catalog: %v", n, a)
		}
		seen[n] = true
	}
}

func TestResolveExplicitMix(t *testing.T) {
	got, err := ResolveMix("403.gcc, 429.mcf", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"403.gcc", "429.mcf"}) {
		t.Fatalf("explicit mix = %v", got)
	}
	// Repetition within an explicit list is allowed.
	if _, err := ResolveMix("403.gcc,403.gcc", 2, 1); err != nil {
		t.Fatalf("repeated explicit mix rejected: %v", err)
	}
	// A single benchmark name works for one core.
	if _, err := ResolveMix("403.gcc", 1, 1); err != nil {
		t.Fatalf("single-entry mix rejected: %v", err)
	}
	if _, err := ResolveMix("403.gcc,429.mcf,470.lbm", 2, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ResolveMix("403.gcc,not-a-benchmark", 2, 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := ResolveMix("definitely-not-a-mix", 2, 1); err == nil {
		t.Fatal("unknown mix name accepted")
	}
}

func TestMixLabel(t *testing.T) {
	if got := MixLabel([]string{"a", "b"}); got != "a+b" {
		t.Fatalf("MixLabel = %q", got)
	}
}

func TestMixProfiles(t *testing.T) {
	profs, err := MixProfiles("memory", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 4 {
		t.Fatalf("%d profiles", len(profs))
	}
	if profs[0].Name != "429.mcf" {
		t.Fatalf("memory mix starts with %s", profs[0].Name)
	}
}

// TestGeneratorAddressSpaceOffset: a CMP core's generator must never
// produce addresses outside its own 4GB window, and the stream must be
// the same stream merely shifted.
func TestGeneratorAddressSpaceOffset(t *testing.T) {
	p, _ := ByName("429.mcf")
	const base = 3 << 32
	g0 := MustGenerator(p, 7)
	g1, err := NewGeneratorAt(p, 7, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50_000; i++ {
		op0, _ := g0.Next()
		op1, _ := g1.Next()
		if op0.Class != op1.Class || op0.Taken != op1.Taken {
			t.Fatalf("op %d: streams diverge", i)
		}
		if op0.Addr == 0 && op1.Addr == 0 {
			continue // non-memory op
		}
		if op1.Addr != op0.Addr+base {
			t.Fatalf("op %d: addr %#x, want %#x", i, op1.Addr, op0.Addr+base)
		}
		if op1.Addr < base || op1.Addr >= base+(1<<32) {
			t.Fatalf("op %d: addr %#x escapes the 4GB window at %#x", i, op1.Addr, base)
		}
	}
}

func TestMixNamesAreStable(t *testing.T) {
	want := []string{"compute", "fp", "int", "memory", "mixed"}
	if got := MixNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("MixNames = %v, want %v", got, want)
	}
	for _, n := range want {
		if strings.Contains(n, ",") {
			t.Fatalf("mix name %q would be ambiguous with explicit lists", n)
		}
	}
}
