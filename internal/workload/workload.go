// Package workload generates the synthetic instruction streams that stand
// in for the paper's SPEC CPU2006 traces (Section IV). Each of the 28
// benchmarks the paper uses (11 integer + 17 floating point; 483.xalancbmk
// is excluded there too) is represented by a named profile controlling:
//
//   - the op mix (loads, stores, branches, FP);
//   - instruction-level parallelism (dependency distances, pointer
//     chasing);
//   - branch predictability (biased sites vs learnable loop patterns);
//   - and, most importantly for this paper, the memory reuse profile: a
//     region mixture that places each access's reuse distance relative to
//     the capacities that separate the evaluated hierarchies (L1-resident
//     "hot", L2/L-NUCA-sized "warm", LLC-sized "cool", and DRAM-bound
//     "cold"/streaming regions).
//
// The substitution preserves what the evaluation measures: where in the
// hierarchy accesses hit, how much latency each hit level costs, and how
// much memory-level parallelism the core can extract.
package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// SuiteClass labels the SPEC sub-suite.
type SuiteClass uint8

const (
	// Int marks SPEC CPU2006 integer benchmarks.
	Int SuiteClass = iota
	// FP marks SPEC CPU2006 floating-point benchmarks.
	FP
)

func (c SuiteClass) String() string {
	if c == Int {
		return "int"
	}
	return "fp"
}

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name  string
	Class SuiteClass

	// Op mix (fractions of the dynamic stream; the rest are int ALU ops).
	LoadFrac, StoreFrac, BranchFrac, FPFrac float64

	// MeanDepDist is the mean backward dependency distance of ALU/FP ops
	// (geometric); small values serialize, large values expose ILP.
	MeanDepDist int
	// PointerChase is the fraction of loads whose address depends on the
	// previous load (kills memory-level parallelism, e.g. mcf).
	PointerChase float64

	// Memory region mixture (fractions over memory accesses; the rest is
	// cold/streaming). Sizes in KB select which hierarchy level can
	// capture the region.
	HotFrac, WarmFrac, CoolFrac float64
	HotKB, WarmKB, CoolKB       int
	// SeqFrac is the sequential-stream share within cold accesses.
	SeqFrac float64

	// Warm-region skew: real secondary working sets decay with reuse
	// distance, which is what lets the paper's 40KB of Le2 tiles capture
	// 41-59% of all former L2 hits (Table III). WarmFront is the share of
	// warm accesses landing in the hottest WarmFrontKB; WarmMid the share
	// in the next ~96KB; the rest spread over the whole region. Zeros
	// select class defaults (integer working sets are more front-heavy
	// than FP ones, matching Table III's Le2 columns); a literal zero
	// share is expressed with the SkewNone sentinel, since 0 is the
	// "use class default" marker.
	WarmFront, WarmMid float64
	WarmFrontKB        int

	// Branch behaviour: sites with a short learnable pattern vs randomly
	// biased sites.
	BranchSites int
	PatternFrac float64
	BranchBias  float64

	// FPLat overrides the FP latency (0 = core default).
	FPLat uint8
}

// SkewNone marks a warm-skew share as explicitly zero. A plain zero in
// WarmFront/WarmMid means "use the class default" (the common case for
// the catalog), so a profile that genuinely wants no front or mid skew
// sets the field to SkewNone instead.
const SkewNone = -1.0

// warmSkew resolves the effective warm-region shares: class defaults for
// zero fields, 0 for SkewNone, the explicit value otherwise. It is the
// single source of truth shared by Validate and the generator.
func (p Profile) warmSkew() (front, mid float64) {
	front, mid = p.WarmFront, p.WarmMid
	if front == 0 {
		if p.Class == Int {
			front = 0.78
		} else {
			front = 0.62
		}
	}
	if mid == 0 {
		if p.Class == Int {
			mid = 0.17
		} else {
			mid = 0.28
		}
	}
	if front == SkewNone {
		front = 0
	}
	if mid == SkewNone {
		mid = 0
	}
	return front, mid
}

// Validate reports profile inconsistencies.
func (p Profile) Validate() error {
	sumMix := p.LoadFrac + p.StoreFrac + p.BranchFrac + p.FPFrac
	if sumMix > 1.0001 {
		return fmt.Errorf("workload %s: op mix sums to %v > 1", p.Name, sumMix)
	}
	if p.HotFrac+p.WarmFrac+p.CoolFrac > 1.0001 {
		return fmt.Errorf("workload %s: region mix exceeds 1", p.Name)
	}
	if p.HotKB <= 0 || p.WarmKB <= 0 || p.CoolKB <= 0 {
		return fmt.Errorf("workload %s: non-positive region size", p.Name)
	}
	if p.BranchSites <= 0 {
		return fmt.Errorf("workload %s: no branch sites", p.Name)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"WarmFront", p.WarmFront}, {"WarmMid", p.WarmMid}} {
		if f.v != SkewNone && (f.v < 0 || f.v > 1) {
			return fmt.Errorf("workload %s: %s %v outside [0,1] (use SkewNone for an explicit zero)", p.Name, f.name, f.v)
		}
	}
	// An over-allocated skew would silently make the warm tail
	// unreachable: every warm access would land in the front/mid zones
	// and the region's nominal size would be a lie.
	if front, mid := p.warmSkew(); front+mid > 1.0001 {
		return fmt.Errorf("workload %s: warm skew front %v + mid %v exceeds 1", p.Name, front, mid)
	}
	return nil
}

// Region base addresses keep the four reuse classes disjoint.
const (
	hotBase  = mem.Addr(0x0000_0000)
	warmBase = mem.Addr(0x1000_0000)
	coolBase = mem.Addr(0x2000_0000)
	coldBase = mem.Addr(0x3000_0000)
	coldKB   = 64 << 10 // 64MB: far beyond the 8MB LLC
	lineB    = 32
)

// Generator produces the op stream for a profile. It implements
// cpu.Stream and is infinite; the core's instruction budget bounds runs.
type Generator struct {
	p    Profile
	base mem.Addr // address-space offset (CMP mode: disjoint per core)
	rng  *sim.Rand

	seq          uint64
	lastLoadDist int32 // ops since the previous load
	coldCursor   mem.Addr
	hotCursor    mem.Addr
	warmCursor   mem.Addr

	// branch site state
	patterns [][]bool
	biases   []float64
	siteIdx  []uint32
}

// NewGenerator builds a deterministic generator for p.
func NewGenerator(p Profile, seed uint64) (*Generator, error) {
	return NewGeneratorAt(p, seed, 0)
}

// NewGeneratorAt builds a generator whose whole address space is shifted
// by base: the multi-programmed CMP mode gives every core a disjoint
// address space (base = core index << 32) so private data never aliases
// in the shared LLC, exactly like distinct processes behind distinct page
// tables.
func NewGeneratorAt(p Profile, seed uint64, base mem.Addr) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Class defaults for warm-region skew (see the Profile fields).
	if p.WarmFrontKB == 0 {
		p.WarmFrontKB = 20
	}
	p.WarmFront, p.WarmMid = p.warmSkew()
	g := &Generator{p: p, base: base, rng: sim.NewRand(seed ^ hashName(p.Name))}
	g.patterns = make([][]bool, p.BranchSites)
	g.biases = make([]float64, p.BranchSites)
	g.siteIdx = make([]uint32, p.BranchSites)
	for i := range g.patterns {
		if g.rng.Float64() < p.PatternFrac {
			// Loop-like pattern: N-1 taken, then one not-taken.
			n := 3 + g.rng.Intn(6)
			pat := make([]bool, n)
			for j := 0; j < n-1; j++ {
				pat[j] = true
			}
			g.patterns[i] = pat
		} else {
			g.biases[i] = p.BranchBias
		}
	}
	return g, nil
}

// MustGenerator panics on profile errors (wiring code).
func MustGenerator(p Profile, seed uint64) *Generator {
	g, err := NewGenerator(p, seed)
	if err != nil {
		panic(err)
	}
	return g
}

func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// zone classifies where an address landed; far zones carry streaming
// semantics (independent, overlappable accesses).
type zone uint8

const (
	zHot zone = iota
	zWarmFront
	zWarmMid
	zWarmTail
	zCool
	zCold
)

// Next implements cpu.Stream.
func (g *Generator) Next() (cpu.Op, bool) {
	g.seq++
	g.lastLoadDist++
	r := g.rng.Float64()
	p := g.p
	switch {
	case r < p.LoadFrac:
		return g.loadOp(), true
	case r < p.LoadFrac+p.StoreFrac:
		addr, _ := g.address()
		return cpu.Op{Class: cpu.ClassStore, Addr: addr, Dep1: g.depDist()}, true
	case r < p.LoadFrac+p.StoreFrac+p.BranchFrac:
		return g.branchOp(), true
	case r < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac:
		return cpu.Op{Class: cpu.ClassFP, Dep1: g.consumerDep(0.6), Dep2: g.depDist(), Lat: p.FPLat}, true
	default:
		return cpu.Op{Class: cpu.ClassInt, Dep1: g.consumerDep(0.45), Dep2: g.depDist()}, true
	}
}

// consumerDep biases computation toward consuming the most recent load
// (load-use chains), which is what puts cache hit latency on the critical
// path of real code.
func (g *Generator) consumerDep(bias float64) int32 {
	if g.lastLoadDist > 0 && g.lastLoadDist < 90 && g.rng.Float64() < bias {
		return g.lastLoadDist
	}
	return g.depDist()
}

// loadOp builds a load. Dependency structure is coupled to locality:
// near-reuse loads (hot, warm front) sit on dependence chains and are
// latency-critical, while far accesses (warm tail, cool, cold) behave
// like loop-parallel streams the out-of-order window can overlap — the
// reuse/criticality correlation that makes small fast levels profitable
// (Section II: latencies inversely proportional to temporal locality).
func (g *Generator) loadOp() cpu.Op {
	addr, z := g.address()
	op := cpu.Op{Class: cpu.ClassLoad, Addr: addr}
	switch {
	case g.rng.Float64() < g.p.PointerChase && g.lastLoadDist < 120:
		op.Dep1 = g.lastLoadDist // address chained to the previous load
	case z >= zWarmTail && g.rng.Float64() < 0.95:
		op.Dep1 = 0 // independent streaming access
	default:
		op.Dep1 = g.depDist()
	}
	g.lastLoadDist = 0
	return op
}

// branchOp picks a site and resolves its direction.
func (g *Generator) branchOp() cpu.Op {
	site := g.rng.Intn(g.p.BranchSites)
	var taken bool
	if pat := g.patterns[site]; pat != nil {
		taken = pat[g.siteIdx[site]%uint32(len(pat))]
		g.siteIdx[site]++
	} else {
		taken = g.rng.Bool(g.biases[site])
	}
	return cpu.Op{
		Class: cpu.ClassBranch,
		PC:    uint64(site+1) * 16,
		Taken: taken,
		// Load-compare-branch idioms couple redirect resolution to cache
		// latency.
		Dep1: g.consumerDep(0.3),
	}
}

// depDist draws a geometric-ish dependency distance with the profile's
// mean; 0 (no dependency) when the mean allows full independence.
func (g *Generator) depDist() int32 {
	m := g.p.MeanDepDist
	if m <= 0 {
		return 0
	}
	// Geometric with success probability 1/m, capped to stay inside a
	// 128-entry ROB window.
	d := int32(1)
	for d < 96 && g.rng.Float64() > 1.0/float64(m) {
		d++
	}
	if g.rng.Float64() < 0.25 {
		return 0 // a quarter of ops start fresh chains
	}
	return d
}

// address draws a memory address from the region mixture, shifted into
// the generator's address space, and reports the zone it landed in.
func (g *Generator) address() (mem.Addr, zone) {
	a, z := g.rawAddress()
	return a + g.base, z
}

// rawAddress draws from the region mixture in the canonical (base-0)
// address space.
func (g *Generator) rawAddress() (mem.Addr, zone) {
	p := g.p
	r := g.rng.Float64()
	switch {
	case r < p.HotFrac:
		// Mostly sequential within a tiny region: L1-resident.
		if g.rng.Bool(0.7) {
			g.hotCursor = (g.hotCursor + lineB/2) % mem.Addr(p.HotKB<<10)
			return hotBase + g.hotCursor, zHot
		}
		return hotBase + mem.Addr(g.rng.Intn(p.HotKB<<10))&^mem.Addr(lineB-1), zHot
	case r < p.HotFrac+p.WarmFrac:
		// The contested region: bigger than L1, capturable by an L-NUCA
		// or an L2, with decaying reuse (front / mid / tail zones).
		warmBytes := p.WarmKB << 10
		frontB := p.WarmFrontKB << 10
		if frontB > warmBytes {
			frontB = warmBytes
		}
		midB := frontB + 96<<10
		if midB > warmBytes {
			midB = warmBytes
		}
		r2 := g.rng.Float64()
		var off int
		var z zone
		switch {
		case r2 < p.WarmFront:
			// Quadratic skew inside the front: reuse density decays with
			// distance, so the hottest lines bounce between the r-tile
			// and the innermost tiles (Table III's Le2 concentration).
			r3 := g.rng.Float64()
			off = int(float64(frontB) * r3 * r3)
			z = zWarmFront
		case r2 < p.WarmFront+p.WarmMid && midB > frontB:
			off = frontB + g.rng.Intn(midB-frontB)
			z = zWarmMid
		default:
			off = g.rng.Intn(warmBytes)
			z = zWarmTail
		}
		return warmBase + mem.Addr(off)&^mem.Addr(lineB-1), z
	case r < p.HotFrac+p.WarmFrac+p.CoolFrac:
		// LLC-sized: misses every L2-class structure, hits the 8MB level.
		return coolBase + mem.Addr(g.rng.Intn(p.CoolKB<<10))&^mem.Addr(lineB-1), zCool
	default:
		// Cold: streaming or DRAM-random.
		if g.rng.Float64() < p.SeqFrac {
			// Streams step sub-line: ~4 touches per 32B block, so most
			// stream accesses hit the line the previous one fetched.
			g.coldCursor = (g.coldCursor + lineB/4) % mem.Addr(coldKB<<10)
			return coldBase + g.coldCursor, zCold
		}
		return coldBase + mem.Addr(g.rng.Intn(coldKB<<10))&^mem.Addr(lineB-1), zCold
	}
}

var _ cpu.Stream = (*Generator)(nil)

// HotRange returns the base address and size (KB) of the profile's
// L1-resident region; used for functional cache warmup.
func HotRange(p Profile) (mem.Addr, int) { return hotBase, p.HotKB }

// WarmRange returns the contested L2/L-NUCA-sized region.
func WarmRange(p Profile) (mem.Addr, int) { return warmBase, p.WarmKB }

// CoolRange returns the LLC-sized region.
func CoolRange(p Profile) (mem.Addr, int) { return coolBase, p.CoolKB }
