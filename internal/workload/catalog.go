package workload

// The 28-benchmark synthetic catalog: one profile per SPEC CPU2006
// benchmark the paper simulates (all but 483.xalancbmk, which the authors
// exclude, Section IV). Parameters follow each benchmark's published
// character: mcf/omnetpp/astar are pointer chasers, libquantum/lbm/milc
// stream, povray/gamess/namd are cache resident, and the FP suite carries
// the larger secondary working sets that Table III reflects in its bigger
// Le3/Le4 hit shares.

import "sync"

// intSuite returns the 11 integer profiles.
func intSuite() []Profile {
	return []Profile{
		{
			Name: "400.perlbench", Class: Int,
			LoadFrac: 0.26, StoreFrac: 0.12, BranchFrac: 0.21,
			MeanDepDist: 5,
			HotFrac:     0.9165, WarmFrac: 0.0674, CoolFrac: 0.003,
			HotKB: 16, WarmKB: 112, CoolKB: 2048,
			SeqFrac:     0.2,
			BranchSites: 48, PatternFrac: 0.55, BranchBias: 0.82,
		},
		{
			Name: "401.bzip2", Class: Int,
			LoadFrac: 0.28, StoreFrac: 0.11, BranchFrac: 0.16,
			MeanDepDist: 6,
			HotFrac:     0.9017, WarmFrac: 0.0778, CoolFrac: 0.0036,
			HotKB: 20, WarmKB: 160, CoolKB: 3072,
			SeqFrac:     0.45,
			BranchSites: 24, PatternFrac: 0.5, BranchBias: 0.78,
		},
		{
			Name: "403.gcc", Class: Int,
			LoadFrac: 0.27, StoreFrac: 0.13, BranchFrac: 0.2,
			MeanDepDist: 5,
			HotFrac:     0.907, WarmFrac: 0.0726, CoolFrac: 0.0054,
			HotKB: 24, WarmKB: 176, CoolKB: 4096,
			SeqFrac:     0.25,
			BranchSites: 64, PatternFrac: 0.5, BranchBias: 0.8,
		},
		{
			Name: "429.mcf", Class: Int,
			LoadFrac: 0.31, StoreFrac: 0.09, BranchFrac: 0.19,
			MeanDepDist:  4,
			PointerChase: 0.5,
			HotFrac:      0.8911, WarmFrac: 0.057, CoolFrac: 0.0144,
			HotKB: 16, WarmKB: 128, CoolKB: 6144,
			SeqFrac:     0.1,
			BranchSites: 32, PatternFrac: 0.35, BranchBias: 0.72,
		},
		{
			Name: "445.gobmk", Class: Int,
			LoadFrac: 0.25, StoreFrac: 0.13, BranchFrac: 0.22,
			MeanDepDist: 5,
			HotFrac:     0.9147, WarmFrac: 0.0648, CoolFrac: 0.0036,
			HotKB: 20, WarmKB: 96, CoolKB: 2048,
			SeqFrac:     0.15,
			BranchSites: 96, PatternFrac: 0.3, BranchBias: 0.68,
		},
		{
			Name: "456.hmmer", Class: Int,
			LoadFrac: 0.3, StoreFrac: 0.12, BranchFrac: 0.12,
			MeanDepDist: 8,
			HotFrac:     0.9266, WarmFrac: 0.0622, CoolFrac: 0.0018,
			HotKB: 16, WarmKB: 80, CoolKB: 1024,
			SeqFrac:     0.6,
			BranchSites: 16, PatternFrac: 0.8, BranchBias: 0.9,
		},
		{
			Name: "458.sjeng", Class: Int,
			LoadFrac: 0.24, StoreFrac: 0.1, BranchFrac: 0.22,
			MeanDepDist: 5,
			HotFrac:     0.9167, WarmFrac: 0.0622, CoolFrac: 0.0042,
			HotKB: 24, WarmKB: 120, CoolKB: 2048,
			SeqFrac:     0.1,
			BranchSites: 80, PatternFrac: 0.3, BranchBias: 0.7,
		},
		{
			Name: "462.libquantum", Class: Int,
			LoadFrac: 0.29, StoreFrac: 0.14, BranchFrac: 0.17,
			MeanDepDist: 9,
			HotFrac:     0.8891, WarmFrac: 0.0311, CoolFrac: 0.0048,
			HotKB: 12, WarmKB: 96, CoolKB: 4096,
			SeqFrac:     0.85,
			BranchSites: 12, PatternFrac: 0.85, BranchBias: 0.92,
		},
		{
			Name: "464.h264ref", Class: Int,
			LoadFrac: 0.3, StoreFrac: 0.14, BranchFrac: 0.14,
			MeanDepDist: 7,
			HotFrac:     0.9234, WarmFrac: 0.0648, CoolFrac: 0.0024,
			HotKB: 24, WarmKB: 104, CoolKB: 1024,
			SeqFrac:     0.55,
			BranchSites: 40, PatternFrac: 0.6, BranchBias: 0.85,
		},
		{
			Name: "471.omnetpp", Class: Int,
			LoadFrac: 0.29, StoreFrac: 0.12, BranchFrac: 0.2,
			MeanDepDist:  4,
			PointerChase: 0.4,
			HotFrac:      0.8955, WarmFrac: 0.0674, CoolFrac: 0.0108,
			HotKB: 20, WarmKB: 144, CoolKB: 5120,
			SeqFrac:     0.1,
			BranchSites: 56, PatternFrac: 0.4, BranchBias: 0.75,
		},
		{
			Name: "473.astar", Class: Int,
			LoadFrac: 0.3, StoreFrac: 0.09, BranchFrac: 0.18,
			MeanDepDist:  4,
			PointerChase: 0.3,
			HotFrac:      0.9017, WarmFrac: 0.0674, CoolFrac: 0.0084,
			HotKB: 16, WarmKB: 136, CoolKB: 4096,
			SeqFrac:     0.15,
			BranchSites: 40, PatternFrac: 0.45, BranchBias: 0.74,
		},
	}
}

// fpSuite returns the 17 floating-point profiles.
func fpSuite() []Profile {
	return []Profile{
		{
			Name: "410.bwaves", Class: FP,
			LoadFrac: 0.36, StoreFrac: 0.1, BranchFrac: 0.06, FPFrac: 0.34,
			MeanDepDist: 12,
			HotFrac:     0.8481, WarmFrac: 0.1147, CoolFrac: 0.0072,
			HotKB: 16, WarmKB: 208, CoolKB: 6144,
			SeqFrac:     0.8,
			BranchSites: 10, PatternFrac: 0.9, BranchBias: 0.95,
			FPLat: 4,
		},
		{
			Name: "416.gamess", Class: FP,
			LoadFrac: 0.31, StoreFrac: 0.1, BranchFrac: 0.09, FPFrac: 0.33,
			MeanDepDist: 9,
			HotFrac:     0.9079, WarmFrac: 0.0809, CoolFrac: 0.0018,
			HotKB: 20, WarmKB: 88, CoolKB: 1024,
			SeqFrac:     0.5,
			BranchSites: 20, PatternFrac: 0.85, BranchBias: 0.92,
			FPLat: 4,
		},
		{
			Name: "433.milc", Class: FP,
			LoadFrac: 0.35, StoreFrac: 0.12, BranchFrac: 0.05, FPFrac: 0.3,
			MeanDepDist: 11,
			HotFrac:     0.8518, WarmFrac: 0.1011, CoolFrac: 0.0096,
			HotKB: 16, WarmKB: 192, CoolKB: 6144,
			SeqFrac:     0.7,
			BranchSites: 8, PatternFrac: 0.9, BranchBias: 0.95,
			FPLat: 5,
		},
		{
			Name: "434.zeusmp", Class: FP,
			LoadFrac: 0.33, StoreFrac: 0.12, BranchFrac: 0.06, FPFrac: 0.32,
			MeanDepDist: 10,
			HotFrac:     0.8518, WarmFrac: 0.1147, CoolFrac: 0.0072,
			HotKB: 20, WarmKB: 176, CoolKB: 4096,
			SeqFrac:     0.65,
			BranchSites: 12, PatternFrac: 0.9, BranchBias: 0.94,
			FPLat: 4,
		},
		{
			Name: "435.gromacs", Class: FP,
			LoadFrac: 0.3, StoreFrac: 0.11, BranchFrac: 0.08, FPFrac: 0.34,
			MeanDepDist: 9,
			HotFrac:     0.8828, WarmFrac: 0.1011, CoolFrac: 0.003,
			HotKB: 20, WarmKB: 120, CoolKB: 2048,
			SeqFrac:     0.5,
			BranchSites: 16, PatternFrac: 0.8, BranchBias: 0.9,
			FPLat: 4,
		},
		{
			Name: "436.cactusADM", Class: FP,
			LoadFrac: 0.35, StoreFrac: 0.11, BranchFrac: 0.04, FPFrac: 0.34,
			MeanDepDist: 12,
			HotFrac:     0.8415, WarmFrac: 0.1213, CoolFrac: 0.0072,
			HotKB: 16, WarmKB: 224, CoolKB: 5120,
			SeqFrac:     0.7,
			BranchSites: 8, PatternFrac: 0.95, BranchBias: 0.96,
			FPLat: 5,
		},
		{
			Name: "437.leslie3d", Class: FP,
			LoadFrac: 0.34, StoreFrac: 0.12, BranchFrac: 0.05, FPFrac: 0.33,
			MeanDepDist: 11,
			HotFrac:     0.8538, WarmFrac: 0.1078, CoolFrac: 0.0084,
			HotKB: 16, WarmKB: 200, CoolKB: 5120,
			SeqFrac:     0.75,
			BranchSites: 10, PatternFrac: 0.9, BranchBias: 0.95,
			FPLat: 4,
		},
		{
			Name: "444.namd", Class: FP,
			LoadFrac: 0.3, StoreFrac: 0.09, BranchFrac: 0.08, FPFrac: 0.38,
			MeanDepDist: 10,
			HotFrac:     0.8973, WarmFrac: 0.0909, CoolFrac: 0.0024,
			HotKB: 24, WarmKB: 104, CoolKB: 1024,
			SeqFrac:     0.4,
			BranchSites: 16, PatternFrac: 0.85, BranchBias: 0.93,
			FPLat: 4,
		},
		{
			Name: "447.dealII", Class: FP,
			LoadFrac: 0.32, StoreFrac: 0.11, BranchFrac: 0.1, FPFrac: 0.28,
			MeanDepDist:  8,
			PointerChase: 0.12,
			HotFrac:      0.8766, WarmFrac: 0.1011, CoolFrac: 0.0054,
			HotKB: 20, WarmKB: 152, CoolKB: 3072,
			SeqFrac:     0.3,
			BranchSites: 32, PatternFrac: 0.7, BranchBias: 0.88,
			FPLat: 4,
		},
		{
			Name: "450.soplex", Class: FP,
			LoadFrac: 0.34, StoreFrac: 0.08, BranchFrac: 0.12, FPFrac: 0.26,
			MeanDepDist:  7,
			PointerChase: 0.18,
			HotFrac:      0.8723, WarmFrac: 0.0944, CoolFrac: 0.0108,
			HotKB: 16, WarmKB: 168, CoolKB: 6144,
			SeqFrac:     0.25,
			BranchSites: 32, PatternFrac: 0.6, BranchBias: 0.84,
			FPLat: 4,
		},
		{
			Name: "453.povray", Class: FP,
			LoadFrac: 0.3, StoreFrac: 0.12, BranchFrac: 0.13, FPFrac: 0.3,
			MeanDepDist: 7,
			HotFrac:     0.924, WarmFrac: 0.0673, CoolFrac: 0.0012,
			HotKB: 24, WarmKB: 72, CoolKB: 512,
			SeqFrac:     0.3,
			BranchSites: 40, PatternFrac: 0.65, BranchBias: 0.88,
			FPLat: 4,
		},
		{
			Name: "454.calculix", Class: FP,
			LoadFrac: 0.31, StoreFrac: 0.11, BranchFrac: 0.09, FPFrac: 0.32,
			MeanDepDist: 9,
			HotFrac:     0.8778, WarmFrac: 0.1011, CoolFrac: 0.0042,
			HotKB: 20, WarmKB: 136, CoolKB: 2048,
			SeqFrac:     0.45,
			BranchSites: 24, PatternFrac: 0.8, BranchBias: 0.9,
			FPLat: 4,
		},
		{
			Name: "459.GemsFDTD", Class: FP,
			LoadFrac: 0.35, StoreFrac: 0.12, BranchFrac: 0.05, FPFrac: 0.32,
			MeanDepDist: 12,
			HotFrac:     0.8489, WarmFrac: 0.1078, CoolFrac: 0.0096,
			HotKB: 16, WarmKB: 216, CoolKB: 6144,
			SeqFrac:     0.75,
			BranchSites: 10, PatternFrac: 0.9, BranchBias: 0.95,
			FPLat: 5,
		},
		{
			Name: "465.tonto", Class: FP,
			LoadFrac: 0.31, StoreFrac: 0.11, BranchFrac: 0.1, FPFrac: 0.3,
			MeanDepDist: 8,
			HotFrac:     0.8803, WarmFrac: 0.1011, CoolFrac: 0.0036,
			HotKB: 20, WarmKB: 144, CoolKB: 2048,
			SeqFrac:     0.4,
			BranchSites: 28, PatternFrac: 0.75, BranchBias: 0.9,
			FPLat: 4,
		},
		{
			Name: "470.lbm", Class: FP,
			LoadFrac: 0.33, StoreFrac: 0.15, BranchFrac: 0.03, FPFrac: 0.33,
			MeanDepDist: 14,
			HotFrac:     0.8477, WarmFrac: 0.0876, CoolFrac: 0.0084,
			HotKB: 12, WarmKB: 192, CoolKB: 6144,
			SeqFrac:     0.9,
			BranchSites: 6, PatternFrac: 0.95, BranchBias: 0.97,
			FPLat: 4,
		},
		{
			Name: "481.wrf", Class: FP,
			LoadFrac: 0.32, StoreFrac: 0.12, BranchFrac: 0.08, FPFrac: 0.31,
			MeanDepDist: 10,
			HotFrac:     0.8675, WarmFrac: 0.1078, CoolFrac: 0.006,
			HotKB: 20, WarmKB: 184, CoolKB: 4096,
			SeqFrac:     0.55,
			BranchSites: 20, PatternFrac: 0.8, BranchBias: 0.92,
			FPLat: 4,
		},
		{
			Name: "482.sphinx3", Class: FP,
			LoadFrac: 0.36, StoreFrac: 0.08, BranchFrac: 0.1, FPFrac: 0.27,
			MeanDepDist: 9,
			HotFrac:     0.8593, WarmFrac: 0.1147, CoolFrac: 0.0072,
			HotKB: 16, WarmKB: 176, CoolKB: 4096,
			SeqFrac:     0.4,
			BranchSites: 24, PatternFrac: 0.7, BranchBias: 0.89,
			FPLat: 4,
		},
	}
}

// The catalog is immutable and hot (ByName sits on the normalization
// path of every job), so it is built once and served as defensive
// copies: Profile is a pure value type, so copying the slice is a deep
// copy, and no caller can mutate what another caller (or a mix pool
// validated against it) will read.
var (
	catalogOnce sync.Once
	catalog     []Profile // integer suite first, then FP
	catalogInt  int       // len(integer suite)
	catalogIdx  map[string]int
)

func initCatalog() {
	catalogOnce.Do(func() {
		ints, fps := intSuite(), fpSuite()
		catalogInt = len(ints)
		catalog = append(ints, fps...)
		catalogIdx = make(map[string]int, len(catalog))
		for i, p := range catalog {
			catalogIdx[p.Name] = i
		}
	})
}

func copyProfiles(src []Profile) []Profile {
	out := make([]Profile, len(src))
	copy(out, src)
	return out
}

// Suite returns all 28 profiles, integer first. The slice is the
// caller's to mutate.
func Suite() []Profile {
	initCatalog()
	return copyProfiles(catalog)
}

// IntSuite returns the integer profiles.
func IntSuite() []Profile {
	initCatalog()
	return copyProfiles(catalog[:catalogInt])
}

// FPSuite returns the floating-point profiles.
func FPSuite() []Profile {
	initCatalog()
	return copyProfiles(catalog[catalogInt:])
}

// ByName finds a profile.
func ByName(name string) (Profile, bool) {
	initCatalog()
	i, ok := catalogIdx[name]
	if !ok {
		return Profile{}, false
	}
	return catalog[i], true
}

// Names lists every profile name in suite order. The slice is the
// caller's to mutate.
func Names() []string {
	initCatalog()
	out := make([]string, len(catalog))
	for i, p := range catalog {
		out[i] = p.Name
	}
	return out
}
