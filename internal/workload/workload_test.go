package workload

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

func TestCatalogShape(t *testing.T) {
	// The paper uses all SPEC CPU2006 benchmarks except 483.xalancbmk:
	// 11 integer + 17 floating point.
	if n := len(IntSuite()); n != 11 {
		t.Errorf("integer suite has %d profiles, want 11", n)
	}
	if n := len(FPSuite()); n != 17 {
		t.Errorf("FP suite has %d profiles, want 17", n)
	}
	if n := len(Suite()); n != 28 {
		t.Errorf("full suite has %d profiles, want 28", n)
	}
	seen := map[string]bool{}
	for _, p := range Suite() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
	if seen["483.xalancbmk"] {
		t.Error("483.xalancbmk must be excluded (stack overflow in the paper's runs)")
	}
}

// TestCatalogDefensiveCopies: the memoized catalog must be immune to
// callers mutating what Suite/IntSuite/FPSuite/Names hand out — the
// returned slices are copies, and Profile is a value type.
func TestCatalogDefensiveCopies(t *testing.T) {
	s := Suite()
	origName, origLoad := s[0].Name, s[0].LoadFrac
	s[0].Name = "666.mutated"
	s[0].LoadFrac = 99

	if got := Suite()[0]; got.Name != origName || got.LoadFrac != origLoad {
		t.Fatalf("Suite() shares backing storage: %+v", got)
	}
	if _, ok := ByName(origName); !ok {
		t.Fatalf("ByName(%q) broken after Suite mutation", origName)
	}
	if _, ok := ByName("666.mutated"); ok {
		t.Fatal("mutated name leaked into the catalog index")
	}

	names := Names()
	names[0] = "mutated"
	if Names()[0] != origName {
		t.Fatal("Names() shares backing storage")
	}

	ints := IntSuite()
	ints[0].Class = FP
	if IntSuite()[0].Class != Int {
		t.Fatal("IntSuite() shares backing storage")
	}

	// ByName returns a value: mutating it is local to the caller.
	p, _ := ByName(origName)
	p.HotFrac = -1
	if q, _ := ByName(origName); q.HotFrac == -1 {
		t.Fatal("ByName() result aliases the catalog")
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("429.mcf")
	if !ok || p.Name != "429.mcf" {
		t.Fatal("ByName failed for mcf")
	}
	if _, ok := ByName("999.nope"); ok {
		t.Fatal("ByName found a ghost")
	}
	if len(Names()) != 28 {
		t.Fatal("Names wrong length")
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	good, _ := ByName("400.perlbench")
	bad := good
	bad.LoadFrac = 0.9
	bad.StoreFrac = 0.5
	if bad.Validate() == nil {
		t.Error("op mix > 1 accepted")
	}
	bad = good
	bad.HotKB = 0
	if bad.Validate() == nil {
		t.Error("zero region accepted")
	}
	bad = good
	bad.BranchSites = 0
	if bad.Validate() == nil {
		t.Error("no branch sites accepted")
	}
	bad = good
	bad.HotFrac, bad.WarmFrac, bad.CoolFrac = 0.5, 0.5, 0.5
	if bad.Validate() == nil {
		t.Error("region mix > 1 accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("403.gcc")
	a := MustGenerator(p, 7)
	b := MustGenerator(p, 7)
	for i := 0; i < 5000; i++ {
		oa, _ := a.Next()
		ob, _ := b.Next()
		if oa != ob {
			t.Fatalf("op %d diverged: %+v vs %+v", i, oa, ob)
		}
	}
	c := MustGenerator(p, 8)
	diff := 0
	for i := 0; i < 1000; i++ {
		oa, _ := a.Next()
		oc, _ := c.Next()
		if oa != oc {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestOpMixMatchesProfile(t *testing.T) {
	p, _ := ByName("429.mcf")
	g := MustGenerator(p, 1)
	const n = 200000
	counts := map[cpu.Class]int{}
	for i := 0; i < n; i++ {
		op, ok := g.Next()
		if !ok {
			t.Fatal("generator ended")
		}
		counts[op.Class]++
	}
	check := func(class cpu.Class, want float64) {
		got := float64(counts[class]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%v fraction = %.3f, want %.3f±0.02", class, got, want)
		}
	}
	check(cpu.ClassLoad, p.LoadFrac)
	check(cpu.ClassStore, p.StoreFrac)
	check(cpu.ClassBranch, p.BranchFrac)
}

func TestAddressesStayInRegions(t *testing.T) {
	for _, name := range []string{"429.mcf", "470.lbm", "453.povray"} {
		p, _ := ByName(name)
		g := MustGenerator(p, 3)
		for i := 0; i < 50000; i++ {
			op, _ := g.Next()
			if op.Class != cpu.ClassLoad && op.Class != cpu.ClassStore {
				continue
			}
			a := op.Addr
			inside := (a >= hotBase && a < hotBase+mem.Addr(p.HotKB<<10)) ||
				(a >= warmBase && a < warmBase+mem.Addr(p.WarmKB<<10)) ||
				(a >= coolBase && a < coolBase+mem.Addr(p.CoolKB<<10)) ||
				(a >= coldBase && a < coldBase+mem.Addr(coldKB<<10))
			if !inside {
				t.Fatalf("%s: address %#x outside every region", name, uint64(a))
			}
		}
	}
}

func TestPointerChaserHasLoadChains(t *testing.T) {
	mcf, _ := ByName("429.mcf")
	lbm, _ := ByName("470.lbm")
	chained := func(p Profile) float64 {
		g := MustGenerator(p, 1)
		var lastLoadGap int32
		loads, chains := 0, 0
		gap := int32(0)
		for i := 0; i < 100000; i++ {
			op, _ := g.Next()
			gap++
			if op.Class != cpu.ClassLoad {
				continue
			}
			loads++
			if op.Dep1 == gap && lastLoadGap >= 0 {
				chains++
			}
			lastLoadGap = gap
			gap = 0
		}
		return float64(chains) / float64(loads)
	}
	if cm, cl := chained(mcf), chained(lbm); cm < 3*cl+0.1 {
		t.Errorf("mcf load-chain fraction %.3f not clearly above lbm %.3f", cm, cl)
	}
}

func TestSuiteWorkingSetOrdering(t *testing.T) {
	// povray is cache resident; mcf is memory hungry. Measure the share
	// of accesses beyond the hot region.
	beyond := func(name string) float64 {
		p, _ := ByName(name)
		g := MustGenerator(p, 5)
		mem, far := 0, 0
		for i := 0; i < 100000; i++ {
			op, _ := g.Next()
			if op.Class != cpu.ClassLoad && op.Class != cpu.ClassStore {
				continue
			}
			mem++
			if op.Addr >= warmBase {
				far++
			}
		}
		return float64(far) / float64(mem)
	}
	if b1, b2 := beyond("453.povray"), beyond("429.mcf"); b1 >= b2 {
		t.Errorf("povray beyond-L1 share %.3f should be below mcf %.3f", b1, b2)
	}
}

func TestFPProfilesHaveFPOps(t *testing.T) {
	for _, p := range FPSuite() {
		g := MustGenerator(p, 2)
		fp := 0
		for i := 0; i < 20000; i++ {
			op, _ := g.Next()
			if op.Class == cpu.ClassFP {
				fp++
			}
		}
		if fp == 0 {
			t.Errorf("%s generated no FP ops", p.Name)
		}
	}
	for _, p := range IntSuite() {
		if p.FPFrac > 0.05 {
			t.Errorf("%s: integer benchmark with FPFrac %v", p.Name, p.FPFrac)
		}
	}
}

func TestDependencyDistancesBounded(t *testing.T) {
	p, _ := ByName("436.cactusADM")
	g := MustGenerator(p, 1)
	for i := 0; i < 50000; i++ {
		op, _ := g.Next()
		if op.Dep1 < 0 || op.Dep1 > 127 || op.Dep2 < 0 || op.Dep2 > 127 {
			t.Fatalf("dependency distance out of ROB range: %+v", op)
		}
	}
}

func TestBranchPCsStable(t *testing.T) {
	p, _ := ByName("445.gobmk")
	g := MustGenerator(p, 1)
	pcs := map[uint64]bool{}
	for i := 0; i < 50000; i++ {
		op, _ := g.Next()
		if op.Class == cpu.ClassBranch {
			pcs[op.PC] = true
		}
	}
	if len(pcs) != p.BranchSites {
		t.Errorf("observed %d branch sites, want %d", len(pcs), p.BranchSites)
	}
}

func TestGeneratorRejectsInvalidProfile(t *testing.T) {
	var p Profile
	if _, err := NewGenerator(p, 1); err == nil {
		t.Fatal("zero profile must be rejected")
	}
}

// TestValidateWarmSkewOverallocation: WarmFront + WarmMid must leave room
// for the warm tail, otherwise the region's nominal size is unreachable
// (the over-allocation used to pass silently).
func TestValidateWarmSkewOverallocation(t *testing.T) {
	base, _ := ByName("403.gcc")

	p := base
	p.WarmFront, p.WarmMid = 0.8, 0.3
	if err := p.Validate(); err == nil {
		t.Fatal("front 0.8 + mid 0.3 > 1 accepted")
	}
	if _, err := NewGenerator(p, 1); err == nil {
		t.Fatal("generator built from over-allocated skew")
	}

	// Explicit values that fit are fine.
	p.WarmFront, p.WarmMid = 0.6, 0.4
	if err := p.Validate(); err != nil {
		t.Fatalf("front 0.6 + mid 0.4 rejected: %v", err)
	}

	// Shares outside [0,1] are rejected outright.
	p.WarmFront, p.WarmMid = 1.5, 0
	if err := p.Validate(); err == nil {
		t.Fatal("front 1.5 accepted")
	}
	p.WarmFront, p.WarmMid = -0.5, 0
	if err := p.Validate(); err == nil {
		t.Fatal("front -0.5 accepted")
	}
}

// TestValidateSkewNoneSentinel: a zero field means "class default", so an
// explicit zero is spelled SkewNone — and the two produce different
// generators.
func TestValidateSkewNoneSentinel(t *testing.T) {
	base, _ := ByName("403.gcc")

	p := base
	p.WarmFront, p.WarmMid = SkewNone, SkewNone
	if err := p.Validate(); err != nil {
		t.Fatalf("SkewNone rejected: %v", err)
	}
	front, mid := p.warmSkew()
	if front != 0 || mid != 0 {
		t.Fatalf("SkewNone resolved to %v/%v, want 0/0", front, mid)
	}

	// Class default resolution is unchanged for zero fields.
	p = base
	front, mid = p.warmSkew()
	if front != 0.78 || mid != 0.17 {
		t.Fatalf("int class defaults = %v/%v, want 0.78/0.17", front, mid)
	}
	fp, _ := ByName("470.lbm")
	front, mid = fp.warmSkew()
	if front != 0.62 || mid != 0.28 {
		t.Fatalf("fp class defaults = %v/%v, want 0.62/0.28", front, mid)
	}

	// A SkewNone generator must actually reach the warm tail: with no
	// front/mid skew every warm access is tail-distributed.
	p = base
	p.WarmFront, p.WarmMid = SkewNone, SkewNone
	g, err := NewGenerator(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	warmB, warmKB := WarmRange(p)
	frontB := mem.Addr(20 << 10) // default WarmFrontKB
	var warm, deep uint64
	for i := 0; i < 200_000; i++ {
		op, _ := g.Next()
		if op.Class != cpu.ClassLoad && op.Class != cpu.ClassStore {
			continue
		}
		if op.Addr >= warmB && op.Addr < warmB+mem.Addr(warmKB<<10) {
			warm++
			if op.Addr >= warmB+frontB {
				deep++
			}
		}
	}
	if warm == 0 {
		t.Fatal("no warm accesses observed")
	}
	// Uniform tail: the share beyond the 20KB front should be roughly
	// (warmKB-20)/warmKB; with skew defaults it would be ~20%.
	if ratio := float64(deep) / float64(warm); ratio < 0.5 {
		t.Fatalf("tail share %.2f too small — SkewNone not honored", ratio)
	}
}
