package workload

// Multi-programmed workload mixes for the CMP mode: a mix assigns one
// catalog benchmark to each core. Mixes come in three forms:
//
//   - named mixes ("int", "fp", "mixed", "memory", "compute"): curated
//     rotations over characteristic benchmark pools, so "mixed" on 4
//     cores is the same four benchmarks on every machine;
//   - "random": a seeded draw without replacement from the full
//     28-benchmark catalog — the draw is a pure function of (cores, seed),
//     which is what lets the orchestrator key cached results on the
//     resolved benchmark list;
//   - an explicit comma-separated benchmark list, one entry per core.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// mixPools are the curated named-mix rotations. Pool order is part of
// the mix definition: core i runs pool[i mod len(pool)].
var mixPools = map[string][]string{
	// The class rotations walk their sub-suite in catalog order.
	"int": nil, // filled from the catalog below
	"fp":  nil,
	// mixed alternates the two classes, int first.
	"mixed": nil,
	// memory stresses the shared LLC and the memory channel: pointer
	// chasers and streamers with large secondary working sets.
	"memory": {"429.mcf", "462.libquantum", "470.lbm", "471.omnetpp",
		"433.milc", "473.astar", "437.leslie3d", "450.soplex"},
	// compute is cache-resident and branch-heavy: near-zero LLC demand,
	// the low-contention contrast case.
	"compute": {"453.povray", "416.gamess", "444.namd", "456.hmmer",
		"464.h264ref", "465.tonto", "445.gobmk", "454.calculix"},
}

func init() {
	var ints, fps, mixed []string
	for _, p := range intSuite() {
		ints = append(ints, p.Name)
	}
	for _, p := range fpSuite() {
		fps = append(fps, p.Name)
	}
	n := len(ints)
	if len(fps) > n {
		n = len(fps)
	}
	for i := 0; i < n; i++ {
		mixed = append(mixed, ints[i%len(ints)], fps[i%len(fps)])
	}
	mixPools["int"] = ints
	mixPools["fp"] = fps
	mixPools["mixed"] = mixed
	for _, name := range MixNames() {
		for _, b := range mixPools[name] {
			if _, ok := ByName(b); !ok {
				panic(fmt.Sprintf("workload: mix %q names unknown benchmark %q", name, b))
			}
		}
	}
}

// MixNames lists the named mixes (excluding "random" and explicit lists).
func MixNames() []string {
	out := make([]string, 0, len(mixPools))
	for name := range mixPools {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RandomMixName is the mix spec that draws benchmarks by seed.
const RandomMixName = "random"

// ResolveMix expands a mix spec into one benchmark name per core. The
// result is fully determined by (spec, cores, seed); for every spec but
// "random" the seed is ignored. Explicit lists must name exactly cores
// benchmarks (repetition is allowed — a list is already explicit).
func ResolveMix(spec string, cores int, seed uint64) ([]string, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("workload: mix needs a positive core count, got %d", cores)
	}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		spec = "mixed"
	}
	if pool, ok := mixPools[spec]; ok {
		out := make([]string, cores)
		for i := range out {
			out[i] = pool[i%len(pool)]
		}
		return out, nil
	}
	if spec == RandomMixName {
		names := Names()
		perm := make([]int, len(names))
		// A dedicated label keeps the draw independent of how the seed is
		// used elsewhere in the run.
		sim.NewRand(seed).Fork(0xC3B5).Perm(perm)
		out := make([]string, cores)
		for i := range out {
			// Without replacement until the catalog is exhausted.
			out[i] = names[perm[i%len(perm)]]
		}
		return out, nil
	}
	if strings.Contains(spec, ",") || func() bool { _, ok := ByName(spec); return ok }() {
		parts := strings.Split(spec, ",")
		if len(parts) != cores {
			return nil, fmt.Errorf("workload: explicit mix names %d benchmarks for %d cores", len(parts), cores)
		}
		out := make([]string, cores)
		for i, p := range parts {
			name := strings.TrimSpace(p)
			if _, ok := ByName(name); !ok {
				return nil, fmt.Errorf("workload: unknown benchmark %q in mix", name)
			}
			out[i] = name
		}
		return out, nil
	}
	return nil, fmt.Errorf("workload: unknown mix %q (want one of %s, %s, or a comma-separated benchmark list)",
		spec, strings.Join(MixNames(), ", "), RandomMixName)
}

// MixProfiles resolves a mix spec to full profiles.
func MixProfiles(spec string, cores int, seed uint64) ([]Profile, error) {
	names, err := ResolveMix(spec, cores, seed)
	if err != nil {
		return nil, err
	}
	out := make([]Profile, len(names))
	for i, n := range names {
		p, ok := ByName(n)
		if !ok {
			return nil, fmt.Errorf("workload: unknown benchmark %q", n)
		}
		out[i] = p
	}
	return out, nil
}

// MixLabel renders a resolved mix compactly for job records and tables.
func MixLabel(benchmarks []string) string {
	return strings.Join(benchmarks, "+")
}
