package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/obs/tracez"
	"repro/internal/orchestrator"
	"repro/internal/trace"
)

// WorkerConfig tunes a fleet worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Name identifies this worker in coordinator logs and the
	// active-worker gauge (default: "worker").
	Name string
	// Client performs the HTTP calls (default: a client with a 30s
	// timeout).
	Client *http.Client
	// Run executes one leased job (default: orchestrator.SimRunWithTraces
	// over Cache and Traces). Tests inject stubs here.
	Run orchestrator.RunFunc
	// Cache backs mix-job baseline resolution on this worker (default: a
	// fresh memory-only cache). Results still flow back to the
	// coordinator through the lease protocol, not this cache.
	Cache *orchestrator.Cache
	// Traces is the worker-local trace store; recorded streams a leased
	// job names are fetched from the coordinator on a local miss
	// (default: a fresh memory-only store).
	Traces *trace.Store
	// PollInterval is the idle delay between lease polls (default 100ms).
	PollInterval time.Duration
	// DrainGrace is how long a shutdown (Run's ctx canceled) lets an
	// in-flight job keep running — heartbeats included — before the run
	// is canceled and the lease explicitly released back to the
	// coordinator. 0 releases immediately; either way the coordinator
	// is told, instead of the lease zombieing until the reaper.
	DrainGrace time.Duration
	// Logger receives worker lifecycle events (default: discard).
	Logger *slog.Logger
	// Registry, when set, exports the lnuca_fleet_worker_* metrics.
	Registry *obs.Registry
	// Faults, when armed, drives the worker-execution injection points
	// (worker_crash, worker_stall). HTTP faults are injected by wrapping
	// Client.Transport with faultinject.Transport instead.
	Faults *faultinject.Injector
}

// Worker is a pull-based fleet execution node: it polls the coordinator
// for leased jobs, runs them through the same RunFunc machinery as a
// local daemon, heartbeats while running, and pushes the result back.
// Workers hold no durable state the fleet depends on — killing one
// mid-job only costs a lease timeout and a retry elsewhere.
type Worker struct {
	cfg WorkerConfig

	jobs         *obs.Counter
	failures     *obs.Counter
	pollErrors   *obs.Counter
	traceFetches *obs.Counter
	busy         *obs.Gauge

	// idleSince marks when this worker last went idle; the next lease's
	// lnuca.worker.leasewait span stretches from here to the grant.
	// Touched only by the single Run loop goroutine.
	idleSince time.Time
}

// NewWorker builds a worker; call Run to start the pull loop.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Cache == nil {
		cfg.Cache = orchestrator.NewCache(0, "")
	}
	if cfg.Traces == nil {
		cfg.Traces = trace.NewStore("")
	}
	if cfg.Run == nil {
		cfg.Run = orchestrator.SimRunWithTraces(cfg.Cache, cfg.Traces)
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 100 * time.Millisecond
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Discard()
	}
	cfg.Coordinator = strings.TrimRight(cfg.Coordinator, "/")
	w := &Worker{cfg: cfg}
	if reg := cfg.Registry; reg != nil {
		w.jobs = reg.Counter("lnuca_fleet_worker_jobs_total",
			"Leased jobs this worker finished (result or error pushed).")
		w.failures = reg.Counter("lnuca_fleet_worker_failures_total",
			"Leased jobs this worker completed with an error.")
		w.pollErrors = reg.Counter("lnuca_fleet_worker_poll_errors_total",
			"Lease polls that failed (coordinator unreachable or bad response).")
		w.traceFetches = reg.Counter("lnuca_fleet_worker_trace_fetches_total",
			"Traces fetched from the coordinator on a local store miss.")
		w.busy = reg.Gauge("lnuca_fleet_worker_busy",
			"1 while this worker is executing a leased job.")
	}
	return w
}

// Run pulls and executes jobs until ctx is canceled. A coordinator that
// is down is not fatal — the worker keeps polling, so fleet pieces can
// start in any order.
func (w *Worker) Run(ctx context.Context) error {
	w.cfg.Logger.Info("fleet worker started", "worker", w.cfg.Name,
		"coordinator", w.cfg.Coordinator, "poll_interval", w.cfg.PollInterval)
	//lnuca:allow(determinism) lease-wait span boundary; telemetry only, never result content
	w.idleSince = time.Now()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := w.poll(ctx)
		switch {
		case err != nil:
			if w.pollErrors != nil {
				w.pollErrors.Inc()
			}
			w.cfg.Logger.Warn("lease poll failed", "worker", w.cfg.Name, "error", err)
			w.sleep(ctx, w.cfg.PollInterval)
		case lease == nil:
			w.sleep(ctx, w.cfg.PollInterval)
		default:
			w.execute(ctx, lease)
			//lnuca:allow(determinism) lease-wait span boundary; telemetry only, never result content
			w.idleSince = time.Now()
		}
	}
}

// sleep waits d or until ctx cancels.
func (w *Worker) sleep(ctx context.Context, d time.Duration) {
	//lnuca:allow(determinism) idle poll pacing; never result content
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// poll asks the coordinator for a lease; (nil, nil) means no work.
func (w *Worker) poll(ctx context.Context) (*LeaseResponse, error) {
	var lease LeaseResponse
	status, err := w.post(ctx, PathLease, LeaseRequest{Worker: w.cfg.Name}, &lease)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK:
		return &lease, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, fmt.Errorf("lease: unexpected status %d", status)
	}
}

// execute runs one leased job end to end: reconstruct and verify the
// job from its lnuca-run-v1 request, resolve any trace it names, run it
// under a heartbeat, and push the outcome.
func (w *Worker) execute(ctx context.Context, lease *LeaseResponse) {
	if w.busy != nil {
		w.busy.Set(1)
		defer w.busy.Set(0)
	}
	log := w.cfg.Logger.With("worker", w.cfg.Name, "lease_id", lease.LeaseID,
		"fleet_id", lease.JobID, "key", lease.Key)
	log.Info("lease accepted", "attempt", lease.Attempt)

	// Per-lease tracer: the worker's spans join the dispatching job's
	// trace through the lease's traceparent, collect locally, and ship
	// back piggybacked on the completion. Without a traceparent the
	// tracer mints a fresh trace — the spans still reach the
	// coordinator, just unstitched from a dispatch. rctx derives from
	// context.Background(), so it carries trace values but no poll-loop
	// cancellation.
	col := &tracez.Collector{}
	tr := tracez.New(col)
	root, rctx := tr.Start(tracez.Extract(context.Background(), lease.Traceparent), "lnuca.worker.execute")
	root.SetAttr("worker", w.cfg.Name)
	root.SetAttr("attempt", strconv.Itoa(lease.Attempt))
	if !w.idleSince.IsZero() {
		wait, _ := tracez.StartSpanAt(rctx, "lnuca.worker.leasewait", w.idleSince)
		wait.Finish()
	}
	finish := func(req CompleteRequest) {
		if req.Error != "" {
			root.SetError(errors.New(req.Error))
		}
		root.Finish()
		req.Spans = col.Drain()
		w.complete(rctx, log, lease, req)
	}

	job, err := lease.Request.Job()
	if err != nil {
		// The coordinator's request schema no longer parses here:
		// deterministic, no point retrying on another worker.
		finish(CompleteRequest{
			LeaseID: lease.LeaseID,
			Error:   fmt.Sprintf("worker rejects request: %v", err),
		})
		return
	}
	if got := job.Key(); got != lease.Key {
		// A key mismatch means coordinator and worker normalize the same
		// request differently (version skew). Executing would publish
		// under the wrong identity — refuse, terminally.
		finish(CompleteRequest{
			LeaseID: lease.LeaseID,
			Error:   fmt.Sprintf("content key mismatch: coordinator %s, worker %s — version skew?", lease.Key, got),
		})
		return
	}
	if job.Trace != "" && !w.cfg.Traces.Has(job.Trace) {
		fs, fctx := tracez.StartSpan(rctx, "lnuca.worker.tracefetch")
		err := w.fetchTrace(tracez.WithSpanContext(ctx, tracez.FromContext(fctx)), job.Trace)
		fs.SetError(err)
		fs.Finish()
		if err != nil {
			// Infrastructure: the trace exists on the coordinator (it
			// validated the submission); the fetch failing here is
			// transient and worth another attempt.
			finish(CompleteRequest{
				LeaseID:   lease.LeaseID,
				Error:     fmt.Sprintf("trace fetch: %v", err),
				Retryable: true,
			})
			return
		}
	}

	// The run and its heartbeats live on a context detached from the
	// poll-loop ctx (rctx has no cancellation), so a worker shutdown
	// drains instead of severing the job mid-flight: the watcher below
	// gives the run DrainGrace to finish (heartbeats keep flowing), then
	// cancels it, and the lease is explicitly released back to the
	// coordinator either way. The run inherits the lease's tracer, so
	// the simulator's phase spans land in this trace too.
	runCtx, cancelRun := context.WithCancel(rctx)
	defer cancelRun()
	var draining bool
	execDone := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-execDone:
		case <-ctx.Done():
			draining = true
			if g := w.cfg.DrainGrace; g > 0 {
				log.Info("worker draining; letting job finish", "grace", g)
				//lnuca:allow(determinism) shutdown drain pacing; never result content
				t := time.NewTimer(g)
				select {
				case <-execDone:
				case <-t.C:
				}
				t.Stop()
			}
			cancelRun()
		}
	}()
	var done, total atomic.Uint64
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go w.heartbeatLoop(runCtx, cancelRun, lease, &done, &total, hbStop, hbDone)

	res, runErr := w.cfg.Run(runCtx, job, func(d, t uint64) {
		done.Store(d)
		total.Store(t)
	})
	close(execDone)
	<-watchDone
	close(hbStop)
	<-hbDone

	// Worker-execution injection points. A "crashed" worker abandons the
	// lease silently — the coordinator's reaper requeues it after the
	// TTL. A "stalled" one sleeps past the TTL and then completes
	// anyway, exercising the late-completion (410) path.
	if out := w.cfg.Faults.At(faultinject.PointWorkerCrash); out.Fired {
		log.Warn("fault injected: worker crash — abandoning lease", "point", string(out.Point))
		return
	}
	if out := w.cfg.Faults.At(faultinject.PointWorkerStall); out.Fired {
		d := out.Delay
		if d <= 0 {
			d = time.Duration(2 * lease.HeartbeatSeconds * float64(time.Second))
		}
		log.Warn("fault injected: worker stall past lease TTL", "point", string(out.Point), "stall", d)
		w.sleep(context.Background(), d)
	}

	req := CompleteRequest{LeaseID: lease.LeaseID}
	switch {
	case runErr == nil:
		req.Result = res
	case errors.Is(runErr, context.Canceled):
		req.Error = runErr.Error()
		req.Retryable = true
		// A drain-canceled run is a healthy hand-back: the coordinator
		// refunds the attempt and requeues immediately. When the
		// coordinator itself canceled or requeued the job, it drops this
		// completion (or answers 410) regardless, so the flag is inert.
		req.Released = draining
	default:
		// The simulator is deterministic: this error would reproduce on
		// any worker. Terminal.
		req.Error = runErr.Error()
	}
	finish(req)
}

// heartbeatLoop keeps the lease alive at a third of its TTL, forwarding
// progress, until stop closes. A cancel signal or a 410 (the lease was
// requeued away from us) aborts the run.
func (w *Worker) heartbeatLoop(ctx context.Context, cancelRun context.CancelFunc,
	lease *LeaseResponse, done, total *atomic.Uint64, stop <-chan struct{}, finished chan<- struct{}) {
	defer close(finished)
	interval := time.Duration(lease.HeartbeatSeconds / 3 * float64(time.Second))
	if interval <= 0 {
		interval = time.Second
	}
	//lnuca:allow(determinism) lease keepalive pacing; never result content
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-tick.C:
			var resp HeartbeatResponse
			status, err := w.post(ctx, PathHeartbeat, HeartbeatRequest{
				LeaseID: lease.LeaseID,
				Done:    done.Load(),
				Total:   total.Load(),
			}, &resp)
			switch {
			case err != nil:
				// Transient; the lease tolerates a few missed beats.
				w.cfg.Logger.Warn("heartbeat failed", "lease_id", lease.LeaseID, "error", err)
			case status == http.StatusGone:
				w.cfg.Logger.Warn("lease lost — aborting run", "lease_id", lease.LeaseID)
				cancelRun()
				return
			case resp.Cancel:
				w.cfg.Logger.Info("coordinator canceled job", "lease_id", lease.LeaseID)
				cancelRun()
				return
			}
		}
	}
}

// complete pushes the job outcome, retrying briefly: the result of a
// minutes-long simulation is worth more than one TCP handshake. A 410
// means the lease moved on without us — nothing left to do.
//
// Delivery is detached from the poll loop: ctx is the lease's trace
// context (values only, rooted in context.Background()), so a worker
// shutting down can still hand its lease back (or deliver a finished
// result) — a canceled ctx here is exactly how leases used to zombie
// until the reaper.
func (w *Worker) complete(ctx context.Context, log *slog.Logger, lease *LeaseResponse, req CompleteRequest) {
	ctx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	if w.jobs != nil {
		w.jobs.Inc()
	}
	if req.Error != "" && w.failures != nil {
		w.failures.Inc()
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			w.sleep(ctx, 500*time.Millisecond)
		}
		status, err := w.post(ctx, PathComplete, req, nil)
		if err != nil {
			lastErr = err
			continue
		}
		switch status {
		case http.StatusOK:
			log.Info("lease completed", "failed", req.Error != "")
			return
		case http.StatusGone:
			log.Warn("completion arrived late; job was requeued")
			return
		default:
			lastErr = fmt.Errorf("complete: unexpected status %d", status)
		}
	}
	log.Warn("could not deliver completion; lease will expire and requeue", "error", lastErr)
}

// fetchTrace pulls a recorded stream from the coordinator into the
// local store, verifying its content hash on ingest.
func (w *Worker) fetchTrace(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.cfg.Coordinator+PathTraces+id, nil)
	if err != nil {
		return err
	}
	if h := tracez.Inject(ctx); h != "" {
		req.Header.Set(tracez.HeaderName, h)
	}
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("trace %s: status %d: %s", id, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	hdr, err := w.cfg.Traces.PutBytes(data)
	if err != nil {
		return err
	}
	if hdr.ID != id {
		return fmt.Errorf("trace %s: coordinator served content %s", id, hdr.ID)
	}
	if w.traceFetches != nil {
		w.traceFetches.Inc()
	}
	w.cfg.Logger.Info("trace fetched", "trace", id, "worker", w.cfg.Name)
	return nil
}

// post sends one JSON request and decodes the response into out (when
// non-nil and the status carries a body worth decoding).
func (w *Worker) post(ctx context.Context, path string, body, out interface{}) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate the lease's trace on heartbeats and completions, so an
	// injected worker_http fault is attributed to the affected trace.
	if h := tracez.Inject(ctx); h != "" {
		req.Header.Set(tracez.HeaderName, h)
	}
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding %s response: %w", path, err)
		}
		return resp.StatusCode, nil
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode, nil
}
