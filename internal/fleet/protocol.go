// Package fleet distributes the orchestrator's job execution across
// worker processes: a coordinator owns the job queue, the result cache
// and the trace store, and stateless workers pull leased jobs over
// HTTP, execute them through the same Runner machinery as a local run,
// and push results back by content hash.
//
// The coordinator plugs into the orchestrator as its RunFunc
// (Coordinator.Dispatch), so every invariant the single-process daemon
// provides — singleflight coalescing, content-addressed caching,
// balanced lifecycle counters, byte-identical lnuca-job-v2 cache
// entries — holds unchanged when execution is remote. The orchestrator
// worker pool becomes the dispatch-concurrency bound; each in-process
// worker blocks while its job runs on a fleet worker somewhere else.
package fleet

import (
	"repro/internal/obs/tracez"
	"repro/internal/orchestrator"
)

// Lease-protocol routes, mounted next to the orchestrator API. Workers
// are clients of these three POST endpoints plus the trace fetch.
const (
	PathLease     = "/fleet/v1/lease"
	PathHeartbeat = "/fleet/v1/heartbeat"
	PathComplete  = "/fleet/v1/complete"
	PathTraces    = "/fleet/v1/traces/"
)

// LeaseRequest asks the coordinator for one job. Worker is a
// self-reported name used for logs and the active-worker gauge; it
// carries no trust.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse grants one job under a lease. The worker must
// heartbeat before HeartbeatSeconds elapses or the coordinator requeues
// the job for someone else; a late Complete is answered 410.
//
// The job travels as its declarative lnuca-run-v1 request — the same
// schema every other entry path uses — plus the coordinator's expected
// content key, which the worker verifies after normalizing.
type LeaseResponse struct {
	LeaseID          string               `json:"lease_id"`
	JobID            string               `json:"job_id"`
	Key              string               `json:"key"`
	Request          orchestrator.Request `json:"request"`
	Attempt          int                  `json:"attempt"`
	HeartbeatSeconds float64              `json:"heartbeat_seconds"`
	// Traceparent propagates the dispatching job's trace context to the
	// worker, so the spans it emits while executing join the same trace
	// as the coordinator's dispatch span. Empty when tracing is off.
	Traceparent string `json:"traceparent,omitempty"`
}

// HeartbeatRequest keeps a lease alive and forwards execution progress
// (committed instruction counts, surfaced verbatim in job polling).
type HeartbeatRequest struct {
	LeaseID string `json:"lease_id"`
	Done    uint64 `json:"done"`
	Total   uint64 `json:"total"`
}

// HeartbeatResponse carries the coordinator's cancellation signal: when
// Cancel is set the submitter gave up on the job and the worker should
// abort the run.
type HeartbeatResponse struct {
	Cancel bool `json:"cancel"`
}

// CompleteRequest finishes a lease, with either a result or an error.
// Retryable distinguishes infrastructure failures (a trace fetch that
// timed out — requeue with backoff) from deterministic simulation
// errors, which would fail identically on any worker and are terminal
// immediately.
//
// Released marks an explicit, healthy hand-back: a worker draining on
// SIGTERM could not finish the run and returns the lease instead of
// letting it zombie until the reaper. The coordinator refunds the
// attempt and requeues immediately (no backoff) — neither the worker
// nor the job did anything wrong.
type CompleteRequest struct {
	LeaseID   string                  `json:"lease_id"`
	Result    *orchestrator.JobResult `json:"result,omitempty"`
	Error     string                  `json:"error,omitempty"`
	Retryable bool                    `json:"retryable,omitempty"`
	Released  bool                    `json:"released,omitempty"`
	// Spans are the worker-side spans of this execution (lease wait,
	// trace fetch, run phases), shipped back piggybacked on the
	// completion so the coordinator's flight recorder holds the whole
	// distributed trace. The coordinator validates each span and drops
	// malformed ones; results are never rejected over telemetry.
	Spans []tracez.Span `json:"spans,omitempty"`
}
