package fleet

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracez"
	"repro/internal/orchestrator"
	"repro/internal/pqueue"
	"repro/internal/trace"
)

// Config tunes a Coordinator.
type Config struct {
	// LeaseTTL is how long a worker may go silent before its lease
	// expires and the job is requeued (default 10s). Workers heartbeat
	// at a third of this.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many leases one job may consume before it
	// fails terminally (default 3). Every lease grant counts — including
	// ones lost to a dead worker.
	MaxAttempts int
	// RetryBaseDelay and RetryMaxDelay shape the capped exponential
	// backoff between a requeue and the job's next lease (defaults
	// 500ms and 30s): delay = min(base << (attempt-1), max).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// Traces is the coordinator-side trace store workers fetch recorded
	// streams from on a local miss (default: a fresh memory-only store;
	// lnucad shares the orchestrator's).
	Traces *trace.Store
	// Logger receives lease-lifecycle events (default: discard).
	Logger *slog.Logger
	// Registry, when set, exports the lnuca_fleet_* metrics.
	Registry *obs.Registry
	// Events, when set, receives lease-lifecycle events (grants,
	// expiries, requeues, completions) correlated by trace ID in the
	// flight recorder, next to the spans of the same trace.
	Events *tracez.FlightRecorder
	// Spans, when set, ingests the worker-side spans piggybacked on
	// lease completions (after validation). lnucad points this at the
	// same recorder chain the orchestrator's tracer writes to.
	Spans tracez.Recorder
}

// dispatchResult is what a finished fleet job delivers back to its
// blocked Dispatch call.
type dispatchResult struct {
	res *orchestrator.JobResult
	err error
}

// fleetJob is one dispatched job's coordinator-side state. It is
// guarded by Coordinator.mu except for done (written exactly once by
// whoever terminates the job, read by the blocked Dispatch).
type fleetJob struct {
	id       string
	key      string
	priority int
	req      orchestrator.Request
	attempt  int // leases granted so far
	seq      uint64
	heapIdx  int
	readyAt  time.Time // backoff gate; zero = dispatchable now
	canceled bool
	leaseID  string // current lease, "" when queued
	progress func(done, total uint64)
	done     chan dispatchResult // buffered 1

	enqueuedAt time.Time

	// traceparent/traceID carry the dispatch span's context: the header
	// travels to workers on every lease grant, the ID correlates
	// lease-lifecycle events in the flight recorder. Empty when the
	// dispatching context carried no trace.
	traceparent string
	traceID     string
	// runStarted tells the orchestrator a worker picked the job up (the
	// Timeline's queue→run boundary). Called on every lease grant, so a
	// job requeued after a dead lease restarts its run clock — run
	// seconds never count a lease nobody executed.
	runStarted func(worker string)
}

// lease is one worker's claim on a job.
type lease struct {
	id       string
	job      *fleetJob
	worker   string
	deadline time.Time
}

// Coordinator owns the fleet's job queue and lease table. Its Dispatch
// method is an orchestrator.RunFunc: the orchestrator's worker pool
// becomes the dispatch-concurrency bound, and every job the fleet
// executes flows through the orchestrator's usual submit, coalesce,
// cache and counter paths.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	pending *pqueue.Queue[*fleetJob]
	delayed []*fleetJob // requeued jobs waiting out their backoff
	leases  map[string]*lease
	workers map[string]time.Time // worker name -> last poll
	seq     uint64
	closed  bool

	stopReaper context.CancelFunc
	reaperDone chan struct{}

	log *slog.Logger

	// lnuca_fleet_* instruments; nil without a Config.Registry.
	leasesGranted   *obs.Counter
	requeues        *obs.Counter
	workerErrors    *obs.Counter
	jobsFailed      *obs.Counter
	results         *obs.Counter
	lateCompletions *obs.Counter
	releases        *obs.Counter
	heartbeats      *obs.Counter
	dispatchSeconds *obs.Histogram
}

// NewCoordinator starts a coordinator and its lease reaper.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = 500 * time.Millisecond
	}
	if cfg.RetryMaxDelay <= 0 {
		cfg.RetryMaxDelay = 30 * time.Second
	}
	if cfg.Traces == nil {
		cfg.Traces = trace.NewStore("")
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Discard()
	}
	c := &Coordinator{
		cfg: cfg,
		pending: pqueue.New(
			func(a, b *fleetJob) bool {
				if a.priority != b.priority {
					return a.priority > b.priority
				}
				return a.seq < b.seq
			},
			func(j *fleetJob, idx int) { j.heapIdx = idx },
		),
		leases:     make(map[string]*lease),
		workers:    make(map[string]time.Time),
		reaperDone: make(chan struct{}),
		log:        cfg.Logger,
	}
	if cfg.Registry != nil {
		c.register(cfg.Registry)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.stopReaper = cancel
	go c.reaper(ctx)
	return c
}

// register exports the fleet's operational state on reg.
func (c *Coordinator) register(reg *obs.Registry) {
	c.leasesGranted = reg.Counter("lnuca_fleet_leases_granted_total",
		"Leases handed to workers (every attempt of every job).")
	c.requeues = reg.Counter("lnuca_fleet_requeues_total",
		"Jobs requeued after a lease expired or a worker reported a retryable failure.")
	c.workerErrors = reg.Counter("lnuca_fleet_worker_errors_total",
		"Lease completions that carried an error instead of a result.")
	c.jobsFailed = reg.Counter("lnuca_fleet_jobs_failed_total",
		"Fleet jobs that failed terminally (attempts exhausted or a deterministic error).")
	c.results = reg.Counter("lnuca_fleet_results_total",
		"Results accepted from workers.")
	c.lateCompletions = reg.Counter("lnuca_fleet_late_completions_total",
		"Completions for leases already expired or requeued (answered 410 Gone).")
	c.releases = reg.Counter("lnuca_fleet_releases_total",
		"Leases explicitly handed back by draining workers (attempt refunded, job requeued immediately).")
	c.heartbeats = reg.Counter("lnuca_fleet_heartbeats_total",
		"Worker heartbeats received.")
	c.dispatchSeconds = reg.Histogram("lnuca_fleet_dispatch_seconds",
		"Wall time from fleet dispatch to terminal outcome, retries included.",
		[]float64{0.05, 0.25, 1, 5, 30, 120, 600})
	reg.GaugeFunc("lnuca_fleet_jobs_pending",
		"Dispatched jobs waiting for a worker (backoff-delayed retries included).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.pending.Len() + len(c.delayed))
		})
	reg.GaugeFunc("lnuca_fleet_leases_active",
		"Jobs currently leased to a worker.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.leases))
		})
	reg.GaugeFunc("lnuca_fleet_workers_active",
		"Distinct workers that polled for work within three lease TTLs.",
		func() float64 {
			//lnuca:allow(determinism) operational telemetry; never result content
			cutoff := time.Now().Add(-3 * c.cfg.LeaseTTL)
			c.mu.Lock()
			seen := make([]time.Time, 0, len(c.workers))
			for _, at := range c.workers {
				seen = append(seen, at)
			}
			c.mu.Unlock()
			sort.Slice(seen, func(i, j int) bool { return seen[i].Before(seen[j]) })
			n := 0
			for _, at := range seen {
				if at.After(cutoff) {
					n++
				}
			}
			return float64(n)
		})
}

// Close stops the lease reaper. Close the orchestrator first: its
// shutdown cancels every blocked Dispatch, which is what unwinds
// in-flight fleet jobs.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.reaperDone
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.stopReaper()
	<-c.reaperDone
}

// Dispatch is the orchestrator.RunFunc of a fleet-backed daemon: it
// enqueues the job for the worker fleet and blocks until a worker
// delivers a result, the retry budget is exhausted, or ctx is canceled
// (the orchestrator's cancel path — the lease protocol then tells the
// executing worker to abort via its next heartbeat).
func (c *Coordinator) Dispatch(ctx context.Context, j orchestrator.Job, progress func(done, total uint64)) (*orchestrator.JobResult, error) {
	span, sctx := tracez.StartSpan(ctx, "lnuca.fleet.dispatch")
	fj := &fleetJob{
		key:      j.Key(),
		priority: j.Priority,
		req:      orchestrator.RequestOf(j),
		heapIdx:  -1,
		progress: progress,
		done:     make(chan dispatchResult, 1),
		//lnuca:allow(determinism) dispatch latency telemetry; never result content
		enqueuedAt:  time.Now(),
		traceparent: tracez.Inject(sctx),
		traceID:     tracez.TraceIDFrom(sctx),
		// The closure carries the orchestrator's run-started hook (a ctx
		// value) across the lease protocol without fleet depending on the
		// orchestrator's internals.
		runStarted: func(worker string) { orchestrator.RunStarted(sctx, worker) },
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		span.Finish()
		return nil, fmt.Errorf("fleet: coordinator closed")
	}
	c.seq++
	fj.id = fmt.Sprintf("fleet-%06d", c.seq)
	fj.seq = c.seq
	c.pending.Push(fj)
	c.mu.Unlock()
	c.log.Info("fleet dispatch", "fleet_id", fj.id, "key", fj.key)

	select {
	case r := <-fj.done:
		c.observeDispatch(fj)
		c.finishDispatchSpan(span, fj, r.err)
		return r.res, r.err
	case <-ctx.Done():
		c.mu.Lock()
		fj.canceled = true
		if fj.heapIdx >= 0 {
			c.pending.RemoveAt(fj.heapIdx)
		}
		c.removeDelayedLocked(fj)
		c.mu.Unlock()
		c.observeDispatch(fj)
		c.log.Info("fleet dispatch canceled", "fleet_id", fj.id, "key", fj.key)
		c.finishDispatchSpan(span, fj, ctx.Err())
		return nil, ctx.Err()
	}
}

// finishDispatchSpan closes the dispatch span with the attempts the job
// consumed and its outcome.
func (c *Coordinator) finishDispatchSpan(span *tracez.Span, fj *fleetJob, err error) {
	c.mu.Lock()
	attempts := fj.attempt
	c.mu.Unlock()
	span.SetAttr("attempts", fmt.Sprintf("%d", attempts))
	span.SetError(err)
	span.Finish()
}

// event records a lease-lifecycle event in the flight recorder, if one
// is configured. Safe under c.mu: the recorder is a leaf that never
// calls back into the coordinator.
func (c *Coordinator) event(kind, traceID, detail string) {
	if c.cfg.Events != nil {
		c.cfg.Events.Event(kind, traceID, detail)
	}
}

func (c *Coordinator) observeDispatch(fj *fleetJob) {
	if c.dispatchSeconds != nil {
		//lnuca:allow(determinism) dispatch latency telemetry; never result content
		c.dispatchSeconds.Observe(time.Since(fj.enqueuedAt).Seconds())
	}
}

// removeDelayedLocked drops fj from the backoff list, if present.
func (c *Coordinator) removeDelayedLocked(fj *fleetJob) {
	for i, d := range c.delayed {
		if d == fj {
			c.delayed = append(c.delayed[:i], c.delayed[i+1:]...)
			return
		}
	}
}

// promoteDueLocked moves backoff-delayed jobs whose time has come back
// into the dispatchable queue.
func (c *Coordinator) promoteDueLocked(now time.Time) {
	kept := c.delayed[:0]
	for _, fj := range c.delayed {
		if !fj.readyAt.After(now) {
			fj.readyAt = time.Time{}
			c.pending.Push(fj)
			continue
		}
		kept = append(kept, fj)
	}
	c.delayed = kept
}

// Lease grants the next dispatchable job to a polling worker, or nil
// when there is none. Implements the POST /fleet/v1/lease semantics.
func (c *Coordinator) Lease(worker string) *LeaseResponse {
	//lnuca:allow(determinism) lease deadlines are wall-clock by nature; never result content
	now := time.Now()
	c.mu.Lock()
	c.workers[worker] = now
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.promoteDueLocked(now)
	fj, ok := c.pending.Pop()
	if !ok {
		c.mu.Unlock()
		return nil
	}
	c.seq++
	l := &lease{
		id:       fmt.Sprintf("lease-%06d", c.seq),
		job:      fj,
		worker:   worker,
		deadline: now.Add(c.cfg.LeaseTTL),
	}
	fj.attempt++
	fj.leaseID = l.id
	c.leases[l.id] = l
	if c.leasesGranted != nil {
		c.leasesGranted.Inc()
	}
	c.log.Info("lease granted", "lease_id", l.id, "fleet_id", fj.id,
		"key", fj.key, "worker", worker, "attempt", fj.attempt)
	resp := &LeaseResponse{
		LeaseID:          l.id,
		JobID:            fj.id,
		Key:              fj.key,
		Request:          fj.req,
		Attempt:          fj.attempt,
		HeartbeatSeconds: c.cfg.LeaseTTL.Seconds(),
		Traceparent:      fj.traceparent,
	}
	runStarted := fj.runStarted
	traceID := fj.traceID
	c.mu.Unlock()
	c.event("lease_granted", traceID,
		fmt.Sprintf("lease %s worker %s attempt %d", resp.LeaseID, worker, resp.Attempt))
	// Outside c.mu: the hook takes the orchestrator's lock, and the
	// orchestrator may call back into the coordinator while holding it.
	if runStarted != nil {
		runStarted(worker)
	}
	return resp
}

// Heartbeat extends a lease and forwards progress; ok is false for an
// unknown or expired lease (the worker should abort — its job has been
// requeued). cancel tells the worker the submitter gave up.
func (c *Coordinator) Heartbeat(leaseID string, done, total uint64) (cancel, ok bool) {
	//lnuca:allow(determinism) lease deadlines are wall-clock by nature; never result content
	now := time.Now()
	c.mu.Lock()
	l, ok := c.leases[leaseID]
	if !ok {
		c.mu.Unlock()
		return false, false
	}
	l.deadline = now.Add(c.cfg.LeaseTTL)
	canceled := l.job.canceled
	progress := l.job.progress
	c.mu.Unlock()
	if c.heartbeats != nil {
		c.heartbeats.Inc()
	}
	if progress != nil && total > 0 {
		progress(done, total)
	}
	return canceled, true
}

// Complete finishes a lease with a result or an error; ok is false for
// an unknown or expired lease (late completion — answered 410, and the
// requeued attempt's outcome is the one that counts).
func (c *Coordinator) Complete(req CompleteRequest) (ok bool) {
	// Worker spans are ingested even for late or canceled leases: the
	// execution happened, and its trace is worth keeping regardless of
	// which attempt's outcome won.
	c.ingestSpans(req.Spans)
	c.mu.Lock()
	l, found := c.leases[req.LeaseID]
	if !found {
		c.mu.Unlock()
		if c.lateCompletions != nil {
			c.lateCompletions.Inc()
		}
		return false
	}
	delete(c.leases, req.LeaseID)
	fj := l.job
	fj.leaseID = ""
	if fj.canceled {
		// The submitter is gone; drop the outcome on the floor.
		c.mu.Unlock()
		return true
	}
	if req.Error == "" && req.Result != nil {
		c.mu.Unlock()
		if c.results != nil {
			c.results.Inc()
		}
		c.log.Info("fleet result", "lease_id", l.id, "fleet_id", fj.id,
			"key", fj.key, "worker", l.worker, "attempt", fj.attempt)
		c.event("completed", fj.traceID,
			fmt.Sprintf("lease %s worker %s delivered a result", l.id, l.worker))
		fj.done <- dispatchResult{res: req.Result}
		return true
	}
	if req.Released {
		// An explicit, healthy hand-back: the worker is draining and
		// could not finish. Refund the attempt and requeue immediately —
		// no backoff and no attempt burned, so a rolling restart of the
		// whole fleet can never exhaust a job's budget.
		if fj.attempt > 0 {
			fj.attempt--
		}
		c.pending.Push(fj)
		if c.releases != nil {
			c.releases.Inc()
		}
		c.log.Info("lease released by draining worker", "lease_id", l.id,
			"fleet_id", fj.id, "key", fj.key, "worker", l.worker)
		c.event("lease_released", fj.traceID,
			fmt.Sprintf("lease %s handed back by draining worker %s", l.id, l.worker))
		c.mu.Unlock()
		return true
	}
	// An error outcome. A result-less success is malformed and treated
	// as a retryable infrastructure failure.
	errMsg := req.Error
	retryable := req.Retryable
	if errMsg == "" {
		errMsg = "worker returned neither result nor error"
		retryable = true
	}
	if c.workerErrors != nil {
		c.workerErrors.Inc()
	}
	c.log.Warn("fleet worker error", "lease_id", l.id, "fleet_id", fj.id,
		"key", fj.key, "worker", l.worker, "attempt", fj.attempt,
		"retryable", retryable, "error", errMsg)
	if retryable {
		//lnuca:allow(determinism) retry backoff scheduling; never result content
		c.requeueLocked(fj, errMsg, time.Now())
		c.mu.Unlock()
		return true
	}
	c.mu.Unlock()
	c.failJob(fj, fmt.Errorf("fleet: worker %s: %s", l.worker, errMsg))
	return true
}

// requeueLocked schedules another attempt for a job whose lease ended
// without a usable result, or fails it once its attempt budget is
// spent. Callers hold c.mu.
func (c *Coordinator) requeueLocked(fj *fleetJob, reason string, now time.Time) {
	if fj.attempt >= c.cfg.MaxAttempts {
		// done is buffered, so completing under the lock cannot block.
		c.failJob(fj, fmt.Errorf("fleet: job failed after %d attempts: %s", fj.attempt, reason))
		return
	}
	delay := c.backoff(fj.attempt)
	fj.readyAt = now.Add(delay)
	c.delayed = append(c.delayed, fj)
	if c.requeues != nil {
		c.requeues.Inc()
	}
	c.log.Warn("fleet requeue", "fleet_id", fj.id, "key", fj.key,
		"attempt", fj.attempt, "backoff_seconds", delay.Seconds(), "reason", reason)
	c.event("requeued", fj.traceID,
		fmt.Sprintf("attempt %d: %s (backoff %.2fs)", fj.attempt, reason, delay.Seconds()))
}

// failJob delivers a terminal failure to the blocked Dispatch.
func (c *Coordinator) failJob(fj *fleetJob, err error) {
	if c.jobsFailed != nil {
		c.jobsFailed.Inc()
	}
	c.log.Warn("fleet job failed", "fleet_id", fj.id, "key", fj.key,
		"attempts", fj.attempt, "error", err)
	c.event("failed", fj.traceID, err.Error())
	fj.done <- dispatchResult{err: err}
}

// ingestSpans lands worker-shipped spans in the configured recorder,
// dropping malformed ones. Telemetry never fails a completion.
func (c *Coordinator) ingestSpans(spans []tracez.Span) {
	if c.cfg.Spans == nil {
		return
	}
	for _, s := range spans {
		if err := tracez.ValidSpan(s); err != nil {
			c.log.Warn("dropping invalid worker span", "name", s.Name, "error", err)
			continue
		}
		c.cfg.Spans.Record(s)
	}
}

// backoff is the capped exponential retry delay after the given number
// of completed attempts: base << (attempts-1), capped at RetryMaxDelay.
func (c *Coordinator) backoff(attempts int) time.Duration {
	d := c.cfg.RetryBaseDelay
	for i := 1; i < attempts; i++ {
		d *= 2
		if d >= c.cfg.RetryMaxDelay {
			return c.cfg.RetryMaxDelay
		}
	}
	if d > c.cfg.RetryMaxDelay {
		return c.cfg.RetryMaxDelay
	}
	return d
}

// reaper periodically requeues jobs whose leases expired — the dead-
// worker path: a worker that stops heartbeating loses its lease, and
// the job runs again elsewhere (its completed cache entry, if the dead
// worker got that far, makes the rerun a no-op at publish time).
func (c *Coordinator) reaper(ctx context.Context) {
	defer close(c.reaperDone)
	interval := c.cfg.LeaseTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	//lnuca:allow(determinism) lease expiry is wall-clock behavior by definition; never result content
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-tick.C:
			c.expireLeases(now)
		}
	}
}

// expireLeases requeues every job whose lease deadline has passed.
func (c *Coordinator) expireLeases(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	held := make([]*lease, 0, len(c.leases))
	for _, l := range c.leases {
		held = append(held, l)
	}
	sort.Slice(held, func(i, j int) bool { return held[i].id < held[j].id })
	for _, l := range held {
		if !l.deadline.Before(now) {
			continue
		}
		delete(c.leases, l.id)
		fj := l.job
		fj.leaseID = ""
		c.event("lease_expired", fj.traceID,
			fmt.Sprintf("lease %s on worker %s missed its heartbeat deadline", l.id, l.worker))
		if fj.canceled {
			continue
		}
		c.requeueLocked(fj, fmt.Sprintf("lease %s on worker %s expired", l.id, l.worker), now)
	}
	c.promoteDueLocked(now)
}
