package fleet

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/orchestrator"
)

// TestFleetWorkerDrainReleasesLease: a worker shut down mid-job must
// hand its lease back explicitly — attempt refunded, job requeued
// immediately — instead of letting the lease zombie until the reaper.
func TestFleetWorkerDrainReleasesLease(t *testing.T) {
	reg := obs.NewRegistry()
	// A TTL far longer than the test: if the job comes back at all, it
	// came back through the release path, not the reaper.
	coord := NewCoordinator(Config{
		LeaseTTL:       30 * time.Second,
		MaxAttempts:    3,
		RetryBaseDelay: time.Millisecond,
		Registry:       reg,
	})
	defer coord.Close()
	orch := orchestrator.New(orchestrator.Config{Workers: 1, Run: coord.Dispatch})
	defer orch.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	started := make(chan struct{}, 1)
	ctx, cancel := context.WithCancel(context.Background())
	w := NewWorker(WorkerConfig{
		Coordinator:  srv.URL,
		Name:         "drainer",
		PollInterval: time.Millisecond,
		DrainGrace:   0, // release immediately on shutdown
		Run: func(ctx context.Context, j orchestrator.Job, progress func(done, total uint64)) (*orchestrator.JobResult, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	var done sync.WaitGroup
	done.Add(1)
	go func() { defer done.Done(); _ = w.Run(ctx) }()

	rec, err := orch.Submit(quickJob("403.gcc"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started on the drainer")
	}

	// SIGTERM the worker. The drain path must deliver the release even
	// though every context derived from the poll loop is now canceled.
	t0 := time.Now()
	cancel()
	done.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for coord.releases.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := coord.releases.Value(); got != 1 {
		t.Fatalf("releases = %d, want 1 (drain must hand the lease back)", got)
	}
	if elapsed := time.Since(t0); elapsed > 15*time.Second {
		t.Fatalf("release took %v — that is reaper territory, not a drain", elapsed)
	}
	if got := coord.requeues.Value(); got != 0 {
		t.Fatalf("requeues = %d, want 0 (the reaper must not be involved)", got)
	}

	// The release refunded the attempt: the successor sees attempt 1,
	// exactly as if the drained worker had never touched the job.
	var l *LeaseResponse
	deadline = time.Now().Add(10 * time.Second)
	for l == nil && time.Now().Before(deadline) {
		if l = coord.Lease("successor"); l == nil {
			time.Sleep(time.Millisecond)
		}
	}
	if l == nil {
		t.Fatal("released job never requeued")
	}
	if l.Attempt != 1 {
		t.Fatalf("successor lease attempt = %d, want 1 (release refunds the attempt)", l.Attempt)
	}
	if !coord.Complete(CompleteRequest{LeaseID: l.LeaseID, Result: stubResult(quickJob("403.gcc"))}) {
		t.Fatal("successor completion rejected")
	}
	if got := waitDone(t, orch, rec.ID); got.Status != orchestrator.StatusDone {
		t.Fatalf("job status %s, error %q", got.Status, got.Error)
	}
	checkBalance(t, orch)
}

// TestFleetWorkerDrainGraceLetsJobFinish: with DrainGrace set, a
// shutdown mid-job lets the run finish and the finished result is
// delivered normally — no release, no retry, no lost work.
func TestFleetWorkerDrainGraceLetsJobFinish(t *testing.T) {
	reg := obs.NewRegistry()
	coord := NewCoordinator(Config{LeaseTTL: 30 * time.Second, Registry: reg})
	defer coord.Close()
	orch := orchestrator.New(orchestrator.Config{Workers: 1, Run: coord.Dispatch})
	defer orch.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	started := make(chan struct{}, 1)
	finish := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	w := NewWorker(WorkerConfig{
		Coordinator:  srv.URL,
		Name:         "graceful",
		PollInterval: time.Millisecond,
		DrainGrace:   20 * time.Second,
		Run: func(ctx context.Context, j orchestrator.Job, progress func(done, total uint64)) (*orchestrator.JobResult, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			// Ignore ctx: within the grace window the run context stays
			// live, so a well-behaved job simply keeps going.
			<-finish
			return stubResult(j), nil
		},
	})
	var done sync.WaitGroup
	done.Add(1)
	go func() { defer done.Done(); _ = w.Run(ctx) }()
	defer func() {
		cancel()
		done.Wait()
	}()

	rec, err := orch.Submit(quickJob("429.mcf"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}

	// Shutdown arrives mid-run; the job finishes inside the grace.
	cancel()
	close(finish)

	if got := waitDone(t, orch, rec.ID); got.Status != orchestrator.StatusDone {
		t.Fatalf("job status %s, error %q — drained worker must still deliver its result", got.Status, got.Error)
	}
	if got := coord.releases.Value(); got != 0 {
		t.Fatalf("releases = %d, want 0 (the run finished; nothing to release)", got)
	}
	if got := coord.requeues.Value(); got != 0 {
		t.Fatalf("requeues = %d, want 0", got)
	}
	checkBalance(t, orch)
}
