package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/orchestrator"
)

// Handler exposes the coordinator's lease protocol as an http.Handler.
// lnucad mounts it next to the orchestrator API on the same listener,
// so one address serves both the public job API and the worker fleet.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathLease, c.handleLease)
	mux.HandleFunc(PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc(PathComplete, c.handleComplete)
	mux.HandleFunc(PathTraces, c.handleTraceFetch)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad lease body: %v", err)
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, "lease request names no worker")
		return
	}
	resp := c.Lease(req.Worker)
	if resp == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad heartbeat body: %v", err)
		return
	}
	cancel, ok := c.Heartbeat(req.LeaseID, req.Done, req.Total)
	if !ok {
		writeError(w, http.StatusGone, "lease %s is no longer held — abort the run", req.LeaseID)
		return
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{Cancel: cancel})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad complete body: %v", err)
		return
	}
	if !c.Complete(req) {
		writeError(w, http.StatusGone, "lease %s is no longer held — the job was requeued", req.LeaseID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleTraceFetch serves a stored trace's raw lnuca-trace-v1 frame to
// a worker whose local store misses the hash a leased job names.
func (c *Coordinator) handleTraceFetch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, PathTraces)
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "bad trace path %q", r.URL.Path)
		return
	}
	tr, err := c.cfg.Traces.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	data, err := tr.Encode()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// RouteLabel normalizes fleet API paths for metric labels and falls
// back to the orchestrator's normalizer for everything else — the one
// route function a fleet-backed lnucad hands to obs.Middleware.
func RouteLabel(r *http.Request) string {
	switch p := r.URL.Path; p {
	case PathLease, PathHeartbeat, PathComplete:
		return p
	default:
		if strings.HasPrefix(p, PathTraces) {
			return PathTraces + "{id}"
		}
	}
	return orchestrator.RouteLabel(r)
}
