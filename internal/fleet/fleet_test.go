package fleet

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/exp"
	"repro/internal/hier"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/orchestrator"
	"repro/internal/trace"
)

// quickJob is a small valid single-core job.
func quickJob(bench string) orchestrator.Job {
	return orchestrator.Job{Kind: hier.Conventional, Benchmark: bench, Mode: exp.Quick, Seed: 1}
}

// stubResult fabricates a deterministic result without simulating.
func stubResult(j orchestrator.Job) *orchestrator.JobResult {
	return &orchestrator.JobResult{Config: j.Spec().Label(), Benchmark: j.Benchmark, IPC: 1.5, Cycles: 1000}
}

// sampleTrace is a small valid recorded stream with enough ops to
// cover its warmup+measure window plus replay slack.
func sampleTrace() *trace.Trace {
	ops := make([]cpu.Op, 0, 800)
	for i := 0; len(ops) < 800; i++ {
		switch i % 4 {
		case 0:
			ops = append(ops, cpu.Op{Class: cpu.ClassInt, Dep1: 1})
		case 1:
			ops = append(ops, cpu.Op{Class: cpu.ClassLoad, Addr: mem.Addr(0x1000_0000 + (i%64)*64), Dep1: 2})
		case 2:
			ops = append(ops, cpu.Op{Class: cpu.ClassStore, Addr: mem.Addr(0x2000_0000 + (i%32)*64)})
		default:
			ops = append(ops, cpu.Op{Class: cpu.ClassBranch, PC: uint64(16 + i%8*4), Taken: i%3 == 0})
		}
	}
	return trace.New(trace.Meta{Benchmark: "400.perlbench", Seed: 7, Warmup: 100, Measure: 400}, ops)
}

// stack is one in-process fleet: a coordinator plugged into an
// orchestrator as its RunFunc, served over a real HTTP listener, with
// N pull workers running against it.
type stack struct {
	coord *Coordinator
	orch  *orchestrator.Orchestrator
	srv   *httptest.Server

	stopWorkers context.CancelFunc
	workersDone sync.WaitGroup
}

// startStack wires coordinator, orchestrator and workers together. A
// nil workerRun leaves each worker on the production SimRunWithTraces
// default. Close order matters and close() encodes it.
func startStack(t *testing.T, ccfg Config, ocfg orchestrator.Config, workers int, workerRun orchestrator.RunFunc) *stack {
	t.Helper()
	coord := NewCoordinator(ccfg)
	ocfg.Run = coord.Dispatch
	orch := orchestrator.New(ocfg)
	srv := httptest.NewServer(coord.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	s := &stack{coord: coord, orch: orch, srv: srv, stopWorkers: cancel}
	for i := 0; i < workers; i++ {
		w := NewWorker(WorkerConfig{
			Coordinator:  srv.URL,
			Name:         fmt.Sprintf("w%d", i),
			Run:          workerRun,
			PollInterval: 5 * time.Millisecond,
		})
		s.workersDone.Add(1)
		go func() {
			defer s.workersDone.Done()
			_ = w.Run(ctx)
		}()
	}
	return s
}

// close tears the stack down: orchestrator first (unblocks every
// Dispatch), then workers, coordinator, listener.
func (s *stack) close() {
	s.orch.Close()
	s.stopWorkers()
	s.workersDone.Wait()
	s.coord.Close()
	s.srv.Close()
}

// waitDone polls a job to a terminal state.
func waitDone(t *testing.T, o *orchestrator.Orchestrator, id string) orchestrator.JobRecord {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		rec, ok := o.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if rec.Status.Terminal() {
			return rec
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return orchestrator.JobRecord{}
}

// checkBalance asserts the orchestrator's lifecycle counter invariant.
func checkBalance(t *testing.T, o *orchestrator.Orchestrator) {
	t.Helper()
	m := o.Metrics()
	sum := m.Coalesced + m.Cached + m.Executed + m.Failed + m.Canceled +
		uint64(m.QueueDepth) + uint64(m.Running)
	if m.Submitted != sum {
		t.Fatalf("counters unbalanced: submitted=%d, parts sum to %d (%+v)", m.Submitted, sum, m)
	}
}

func TestFleetEndToEnd(t *testing.T) {
	// Six jobs through two pull workers over real HTTP: every result
	// lands, the counters balance, and the results flowed through the
	// lease protocol rather than local execution.
	reg := obs.NewRegistry()
	s := startStack(t,
		Config{LeaseTTL: 500 * time.Millisecond, Registry: reg},
		orchestrator.Config{Workers: 4},
		2,
		func(ctx context.Context, j orchestrator.Job, progress func(done, total uint64)) (*orchestrator.JobResult, error) {
			progress(500, 1000)
			return stubResult(j), nil
		})
	defer s.close()

	benches := []string{"403.gcc", "429.mcf", "462.libquantum", "437.leslie3d", "400.perlbench", "471.omnetpp"}
	ids := make([]string, 0, len(benches))
	for _, b := range benches {
		rec, err := s.orch.Submit(quickJob(b))
		if err != nil {
			t.Fatalf("submit %s: %v", b, err)
		}
		ids = append(ids, rec.ID)
	}
	for i, id := range ids {
		rec := waitDone(t, s.orch, id)
		if rec.Status != orchestrator.StatusDone {
			t.Fatalf("job %s: status %s, error %q", id, rec.Status, rec.Error)
		}
		if rec.Result == nil || rec.Result.Benchmark != benches[i] {
			t.Fatalf("job %s: wrong result %+v", id, rec.Result)
		}
	}
	checkBalance(t, s.orch)
	if got := s.coord.results.Value(); got != uint64(len(benches)) {
		t.Fatalf("fleet results = %d, want %d", got, len(benches))
	}
	if s.coord.leasesGranted.Value() < uint64(len(benches)) {
		t.Fatalf("leases granted = %d, want >= %d", s.coord.leasesGranted.Value(), len(benches))
	}
	if s.coord.jobsFailed.Value() != 0 || s.coord.requeues.Value() != 0 {
		t.Fatalf("unexpected failures/requeues: %d/%d", s.coord.jobsFailed.Value(), s.coord.requeues.Value())
	}
}

func TestFleetRequeueExactlyOnce(t *testing.T) {
	// A worker takes a lease and dies (never heartbeats). The reaper
	// must expire the lease, requeue the job, and a live worker must
	// execute it exactly once — with balanced counters afterwards.
	reg := obs.NewRegistry()
	var mu sync.Mutex
	executions := 0

	coord := NewCoordinator(Config{
		LeaseTTL:       60 * time.Millisecond,
		MaxAttempts:    3,
		RetryBaseDelay: 5 * time.Millisecond,
		Registry:       reg,
	})
	defer coord.Close()
	orch := orchestrator.New(orchestrator.Config{Workers: 1, Run: coord.Dispatch})
	defer orch.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	rec, err := orch.Submit(quickJob("403.gcc"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// The dead worker grabs the lease directly and goes silent.
	var zombie *LeaseResponse
	deadline := time.Now().Add(5 * time.Second)
	for zombie == nil && time.Now().Before(deadline) {
		if zombie = coord.Lease("zombie"); zombie == nil {
			time.Sleep(time.Millisecond)
		}
	}
	if zombie == nil {
		t.Fatal("zombie worker never got the lease")
	}

	// Only now does a live worker join the fleet.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := NewWorker(WorkerConfig{
		Coordinator:  srv.URL,
		Name:         "live",
		PollInterval: 5 * time.Millisecond,
		Run: func(ctx context.Context, j orchestrator.Job, progress func(done, total uint64)) (*orchestrator.JobResult, error) {
			mu.Lock()
			executions++
			mu.Unlock()
			return stubResult(j), nil
		},
	})
	var done sync.WaitGroup
	done.Add(1)
	go func() { defer done.Done(); _ = w.Run(ctx) }()

	got := waitDone(t, orch, rec.ID)
	if got.Status != orchestrator.StatusDone {
		t.Fatalf("job status %s, error %q", got.Status, got.Error)
	}
	cancel()
	done.Wait()

	mu.Lock()
	n := executions
	mu.Unlock()
	if n != 1 {
		t.Fatalf("job executed %d times, want exactly 1", n)
	}
	if coord.requeues.Value() < 1 {
		t.Fatalf("requeues = %d, want >= 1 (dead worker's lease must expire)", coord.requeues.Value())
	}
	if coord.leasesGranted.Value() < 2 {
		t.Fatalf("leases granted = %d, want >= 2", coord.leasesGranted.Value())
	}
	// The zombie's late completion is answered 410 and dropped.
	if ok := coord.Complete(CompleteRequest{LeaseID: zombie.LeaseID, Result: stubResult(quickJob("403.gcc"))}); ok {
		t.Fatal("late completion on an expired lease must be rejected")
	}
	if coord.lateCompletions.Value() != 1 {
		t.Fatalf("late completions = %d, want 1", coord.lateCompletions.Value())
	}
	checkBalance(t, orch)
}

func TestFleetTerminalErrorNotRetried(t *testing.T) {
	// A deterministic simulation error is terminal on the first
	// attempt: no requeue, the submitter sees the failure.
	reg := obs.NewRegistry()
	s := startStack(t,
		Config{LeaseTTL: 500 * time.Millisecond, Registry: reg},
		orchestrator.Config{Workers: 1},
		1,
		func(ctx context.Context, j orchestrator.Job, progress func(done, total uint64)) (*orchestrator.JobResult, error) {
			return nil, fmt.Errorf("simulated divergence in %s", j.Benchmark)
		})
	defer s.close()

	rec, err := s.orch.Submit(quickJob("403.gcc"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got := waitDone(t, s.orch, rec.ID)
	if got.Status != orchestrator.StatusFailed {
		t.Fatalf("status = %s, want failed", got.Status)
	}
	if !strings.Contains(got.Error, "simulated divergence") {
		t.Fatalf("error %q does not surface the worker's message", got.Error)
	}
	if s.coord.requeues.Value() != 0 {
		t.Fatalf("requeues = %d, want 0 for a terminal error", s.coord.requeues.Value())
	}
	if s.coord.jobsFailed.Value() != 1 || s.coord.workerErrors.Value() != 1 {
		t.Fatalf("failed/workerErrors = %d/%d, want 1/1",
			s.coord.jobsFailed.Value(), s.coord.workerErrors.Value())
	}
	checkBalance(t, s.orch)
}

func TestFleetRetryExhaustion(t *testing.T) {
	// Retryable failures burn attempts; at MaxAttempts the job fails
	// terminally with the attempt count in the error.
	reg := obs.NewRegistry()
	coord := NewCoordinator(Config{
		LeaseTTL:       time.Second,
		MaxAttempts:    2,
		RetryBaseDelay: time.Millisecond,
		Registry:       reg,
	})
	defer coord.Close()

	job, err := quickJob("403.gcc").Normalize()
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := coord.Dispatch(context.Background(), job, nil)
		errCh <- err
	}()

	for attempt := 1; attempt <= 2; attempt++ {
		var l *LeaseResponse
		deadline := time.Now().Add(5 * time.Second)
		for l == nil && time.Now().Before(deadline) {
			if l = coord.Lease("w1"); l == nil {
				time.Sleep(time.Millisecond)
			}
		}
		if l == nil {
			t.Fatalf("attempt %d never leased", attempt)
		}
		if l.Attempt != attempt {
			t.Fatalf("lease attempt = %d, want %d", l.Attempt, attempt)
		}
		if !coord.Complete(CompleteRequest{LeaseID: l.LeaseID, Error: "coordinator unreachable", Retryable: true}) {
			t.Fatalf("attempt %d: completion rejected", attempt)
		}
	}

	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "after 2 attempts") {
			t.Fatalf("dispatch error = %v, want terminal failure after 2 attempts", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch never returned")
	}
	if coord.requeues.Value() != 1 {
		t.Fatalf("requeues = %d, want 1 (second failure is terminal, not requeued)", coord.requeues.Value())
	}
	if coord.jobsFailed.Value() != 1 {
		t.Fatalf("jobs failed = %d, want 1", coord.jobsFailed.Value())
	}
}

func TestFleetCancelPropagatesToWorker(t *testing.T) {
	// When the submitter gives up, the executing worker learns via its
	// next heartbeat, and whatever it delivers afterwards is dropped.
	coord := NewCoordinator(Config{LeaseTTL: time.Second})
	defer coord.Close()

	job, err := quickJob("403.gcc").Normalize()
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := coord.Dispatch(ctx, job, nil)
		errCh <- err
	}()

	var l *LeaseResponse
	deadline := time.Now().Add(5 * time.Second)
	for l == nil && time.Now().Before(deadline) {
		if l = coord.Lease("w1"); l == nil {
			time.Sleep(time.Millisecond)
		}
	}
	if l == nil {
		t.Fatal("job never leased")
	}
	if cancelFlag, ok := coord.Heartbeat(l.LeaseID, 0, 0); !ok || cancelFlag {
		t.Fatalf("pre-cancel heartbeat = (cancel=%v, ok=%v), want (false, true)", cancelFlag, ok)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != context.Canceled {
			t.Fatalf("dispatch error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch never returned after cancel")
	}
	if cancelFlag, ok := coord.Heartbeat(l.LeaseID, 0, 0); !ok || !cancelFlag {
		t.Fatalf("post-cancel heartbeat = (cancel=%v, ok=%v), want (true, true)", cancelFlag, ok)
	}
	// The worker aborts and reports; the outcome is dropped, not an error.
	if !coord.Complete(CompleteRequest{LeaseID: l.LeaseID, Error: context.Canceled.Error(), Retryable: true}) {
		t.Fatal("canceled job's completion should be accepted (and dropped)")
	}
	if coord.requeues != nil {
		t.Fatal("test bug: no registry, counters must be nil")
	}
}

func TestFleetWorkerFetchesTraceFromCoordinator(t *testing.T) {
	// A trace job leased to a worker whose local store misses the hash:
	// the worker pulls the frame from the coordinator, verifies the
	// content hash, and replays it — end to end over HTTP.
	tr := sampleTrace()
	traces := trace.NewStore("")
	if _, err := traces.Put(tr); err != nil {
		t.Fatalf("seed trace: %v", err)
	}

	reg := obs.NewRegistry()
	coord := NewCoordinator(Config{LeaseTTL: 2 * time.Second, Traces: traces})
	orch := orchestrator.New(orchestrator.Config{Workers: 1, Run: coord.Dispatch, Traces: traces})
	srv := httptest.NewServer(coord.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	w := NewWorker(WorkerConfig{
		Coordinator:  srv.URL,
		Name:         "fetcher",
		PollInterval: 5 * time.Millisecond,
		Registry:     reg,
		// Default Run: the real simulator replaying the fetched trace.
	})
	var done sync.WaitGroup
	done.Add(1)
	go func() { defer done.Done(); _ = w.Run(ctx) }()
	defer func() {
		orch.Close()
		cancel()
		done.Wait()
		coord.Close()
		srv.Close()
	}()

	rec, err := orch.Submit(orchestrator.Job{Kind: hier.Conventional, Trace: tr.ID()})
	if err != nil {
		t.Fatalf("submit trace job: %v", err)
	}
	got := waitDone(t, orch, rec.ID)
	if got.Status != orchestrator.StatusDone {
		t.Fatalf("trace job status %s, error %q", got.Status, got.Error)
	}
	if got.Result == nil || !got.Result.Valid() {
		t.Fatalf("trace job returned invalid result %+v", got.Result)
	}
	if n := w.traceFetches.Value(); n != 1 {
		t.Fatalf("trace fetches = %d, want 1", n)
	}
}

func TestFleetByteIdenticalToLocal(t *testing.T) {
	// The invariant the whole design hangs on: a sweep executed by the
	// fleet produces byte-identical lnuca-job-v2 cache entries to the
	// same sweep executed in-process.
	jobs := []orchestrator.Job{quickJob("403.gcc"), quickJob("429.mcf")}

	localDir := t.TempDir()
	local := orchestrator.New(orchestrator.Config{
		Workers: 2,
		Cache:   orchestrator.NewCache(0, localDir),
	})
	for _, j := range jobs {
		rec, err := local.Submit(j)
		if err != nil {
			t.Fatalf("local submit: %v", err)
		}
		if got := waitDone(t, local, rec.ID); got.Status != orchestrator.StatusDone {
			t.Fatalf("local job %s: %s %q", rec.ID, got.Status, got.Error)
		}
	}
	local.Close()

	fleetDir := t.TempDir()
	s := startStack(t,
		Config{LeaseTTL: 5 * time.Second},
		orchestrator.Config{Workers: 2, Cache: orchestrator.NewCache(0, fleetDir)},
		2,
		nil) // production SimRunWithTraces on each worker
	for _, j := range jobs {
		rec, err := s.orch.Submit(j)
		if err != nil {
			t.Fatalf("fleet submit: %v", err)
		}
		if got := waitDone(t, s.orch, rec.ID); got.Status != orchestrator.StatusDone {
			t.Fatalf("fleet job %s: %s %q", rec.ID, got.Status, got.Error)
		}
	}
	s.close()

	for _, j := range jobs {
		nj, err := j.Normalize()
		if err != nil {
			t.Fatalf("normalize: %v", err)
		}
		name := nj.Key() + ".json"
		lb, err := os.ReadFile(filepath.Join(localDir, name))
		if err != nil {
			t.Fatalf("local cache entry: %v", err)
		}
		fb, err := os.ReadFile(filepath.Join(fleetDir, name))
		if err != nil {
			t.Fatalf("fleet cache entry: %v", err)
		}
		if !bytes.Equal(lb, fb) {
			t.Fatalf("cache entry %s differs between local and fleet execution:\nlocal: %s\nfleet: %s", name, lb, fb)
		}
	}
}

func TestFleetCoordinatorRestartResumesSweep(t *testing.T) {
	// Kill the coordinator mid-sweep and bring up a fresh one over the
	// same cache dir and journal: the queued remainder completes, and
	// points already in the store are never re-simulated.
	dir := t.TempDir()
	cachePath := filepath.Join(dir, "cache")
	journalPath := filepath.Join(dir, "journal.jsonl")

	var mu sync.Mutex
	executions := map[string]int{} // benchmark -> runs, across both incarnations
	countingRun := func(ctx context.Context, j orchestrator.Job, progress func(done, total uint64)) (*orchestrator.JobResult, error) {
		mu.Lock()
		executions[j.Benchmark]++
		mu.Unlock()
		return stubResult(j), nil
	}

	// ---- First incarnation: finish A and B, leave C queued. ----
	j1, err := orchestrator.OpenJournal(journalPath)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	coord1 := NewCoordinator(Config{LeaseTTL: time.Second})
	orch1 := orchestrator.New(orchestrator.Config{
		Workers: 1,
		Cache:   orchestrator.NewCache(0, cachePath),
		Run:     coord1.Dispatch,
		Journal: j1,
	})
	srv1 := httptest.NewServer(coord1.Handler())
	ctx1, cancel1 := context.WithCancel(context.Background())
	w1 := NewWorker(WorkerConfig{Coordinator: srv1.URL, Name: "w1", PollInterval: 5 * time.Millisecond, Run: countingRun})
	var done1 sync.WaitGroup
	done1.Add(1)
	go func() { defer done1.Done(); _ = w1.Run(ctx1) }()

	for _, b := range []string{"403.gcc", "429.mcf"} {
		rec, err := orch1.Submit(quickJob(b))
		if err != nil {
			t.Fatalf("submit %s: %v", b, err)
		}
		if got := waitDone(t, orch1, rec.ID); got.Status != orchestrator.StatusDone {
			t.Fatalf("job %s: %s %q", b, got.Status, got.Error)
		}
	}
	// The worker dies before C can run...
	cancel1()
	done1.Wait()
	// ...and C is submitted into a fleet with no workers left.
	if _, err := orch1.Submit(quickJob("462.libquantum")); err != nil {
		t.Fatalf("submit stranded job: %v", err)
	}
	// Crash the first incarnation. Orchestrator.Close cancels the
	// stranded dispatch without journaling an end for it.
	orch1.Close()
	coord1.Close()
	srv1.Close()
	if err := j1.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}

	// ---- Second incarnation over the same cache dir and journal. ----
	j2, err := orchestrator.OpenJournal(journalPath)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	pending := j2.Pending()
	if len(pending) != 1 {
		t.Fatalf("pending after restart = %d entries, want 1 (only the stranded job)", len(pending))
	}
	coord2 := NewCoordinator(Config{LeaseTTL: time.Second})
	orch2 := orchestrator.New(orchestrator.Config{
		Workers: 1,
		Cache:   orchestrator.NewCache(0, cachePath),
		Run:     coord2.Dispatch,
		Journal: j2,
	})
	srv2 := httptest.NewServer(coord2.Handler())
	ctx2, cancel2 := context.WithCancel(context.Background())
	w2 := NewWorker(WorkerConfig{Coordinator: srv2.URL, Name: "w2", PollInterval: 5 * time.Millisecond, Run: countingRun})
	var done2 sync.WaitGroup
	done2.Add(1)
	go func() { defer done2.Done(); _ = w2.Run(ctx2) }()
	defer func() {
		orch2.Close()
		cancel2()
		done2.Wait()
		coord2.Close()
		srv2.Close()
		j2.Close()
	}()

	// Replay the journal, then re-run the full sweep the way a client
	// resuming would: completed points must come from the store.
	ids := make([]string, 0, 3)
	for _, req := range pending {
		job, err := req.Job()
		if err != nil {
			t.Fatalf("pending request: %v", err)
		}
		rec, err := orch2.Submit(job)
		if err != nil {
			t.Fatalf("resubmit pending: %v", err)
		}
		ids = append(ids, rec.ID)
	}
	for _, b := range []string{"403.gcc", "429.mcf", "462.libquantum"} {
		rec, err := orch2.Submit(quickJob(b))
		if err != nil {
			t.Fatalf("resubmit %s: %v", b, err)
		}
		ids = append(ids, rec.ID)
	}
	for _, id := range ids {
		if got := waitDone(t, orch2, id); got.Status != orchestrator.StatusDone {
			t.Fatalf("resumed job %s: %s %q", id, got.Status, got.Error)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	for b, want := range map[string]int{"403.gcc": 1, "429.mcf": 1, "462.libquantum": 1} {
		if executions[b] != want {
			t.Fatalf("%s executed %d times across restart, want %d (stored points must not re-simulate)",
				b, executions[b], want)
		}
	}
	m := orch2.Metrics()
	if m.Cached < 2 {
		t.Fatalf("second incarnation cached hits = %d, want >= 2 (A and B come from the store)", m.Cached)
	}
	checkBalance(t, orch2)
}

func TestFleetRouteLabel(t *testing.T) {
	cases := map[string]string{
		"/fleet/v1/lease":      PathLease,
		"/fleet/v1/heartbeat":  PathHeartbeat,
		"/fleet/v1/complete":   PathComplete,
		"/fleet/v1/traces/abc": PathTraces + "{id}",
		"/v1/jobs/job-00004":   "/v1/jobs/{id}",
	}
	for path, want := range cases {
		r := httptest.NewRequest("GET", path, nil)
		if got := RouteLabel(r); got != want {
			t.Fatalf("RouteLabel(%s) = %q, want %q", path, got, want)
		}
	}
}
