package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/obs/tracez"
	"repro/internal/orchestrator"
)

// The chaos harness: randomized-but-reproducible fault schedules run
// against a real coordinator and N pull workers over HTTP, with faults
// armed across all three layers (worker transport, coordinator mux,
// disk stores, worker execution). Every schedule is derived entirely
// from one int64 seed; a failing seed alone reproduces the failure:
//
//	CHAOS_SEED=17 go test -race -run TestChaosSeedFromEnv ./internal/fleet/
//
// After every schedule the harness asserts the crash-consistency
// contract: the sweep completes, leases granted balance submissions +
// requeues + releases (no job runs more often than its requeue count
// allows), surviving cache entries are byte-identical to a fault-free
// reference run, the orchestrator's lifecycle counters balance, and
// the journal reopens cleanly even with a torn tail.

// chaosCatalog is the bench pool schedules draw from.
var chaosCatalog = []string{
	"403.gcc", "429.mcf", "462.libquantum", "437.leslie3d",
	"400.perlbench", "471.omnetpp", "434.zeusmp", "482.sphinx3",
}

// chaosSchedule is everything a seed determines.
type chaosSchedule struct {
	seed    int64
	benches []string
	workers int
	journal bool
	plans   map[faultinject.Point]faultinject.Plan
}

// buildChaosSchedule derives a schedule from its seed and nothing else.
func buildChaosSchedule(seed int64) chaosSchedule {
	rng := rand.New(rand.NewSource(seed))
	catalog := append([]string(nil), chaosCatalog...)
	rng.Shuffle(len(catalog), func(i, j int) { catalog[i], catalog[j] = catalog[j], catalog[i] })
	s := chaosSchedule{
		seed:    seed,
		benches: catalog[:5+rng.Intn(4)],
		workers: 1 + rng.Intn(3),
		journal: rng.Intn(2) == 0,
		plans:   map[faultinject.Point]faultinject.Plan{},
	}
	// Fire caps are deliberately tight: journal/cache write failures stay
	// under the degraded-mode threshold (3 consecutive), and worst-case
	// total requeues stay under the coordinator's attempt budget even if
	// every fault lands on the same job.
	s.plans[faultinject.PointCacheWrite] = faultinject.Plan{Rate: 0.3, MaxFires: 1 + rng.Intn(2), Tear: 0.5}
	s.plans[faultinject.PointCacheRead] = faultinject.Plan{Rate: 0.2, MaxFires: 1, Tear: 0.6}
	s.plans[faultinject.PointJournalAppend] = faultinject.Plan{Rate: 0.3, MaxFires: 1 + rng.Intn(2)}
	s.plans[faultinject.PointCoordHTTP] = faultinject.Plan{Rate: 0.04, MaxFires: 2, Status: 503}
	s.plans[faultinject.PointWorkerCrash] = faultinject.Plan{Rate: 0.15, MaxFires: 1 + rng.Intn(2)}
	s.plans[faultinject.PointWorkerStall] = faultinject.Plan{Rate: 0.1, MaxFires: 1}
	whttp := faultinject.Plan{Rate: 0.05, MaxFires: 2}
	switch rng.Intn(3) {
	case 0:
		whttp.AfterSend = true // POST lands, response lost: the ambiguous failure
	case 1:
		whttp.DropBody = true // body severed mid-read
	default:
		whttp.Status = 503
	}
	s.plans[faultinject.PointWorkerHTTP] = whttp
	return s
}

// arm builds the schedule's injector: one shared instance so fire caps
// bound the whole run and one Describe() names the full experiment.
func (s chaosSchedule) arm() *faultinject.Injector {
	in := faultinject.New(s.seed)
	for p, plan := range s.plans {
		in.Enable(p, plan)
	}
	return in
}

// chaosClient is a worker HTTP client whose transport injects the
// schedule's worker_http faults.
func chaosClient(in *faultinject.Injector) *http.Client {
	return &http.Client{
		Timeout: 30 * time.Second,
		Transport: &faultinject.Transport{
			Base:     http.DefaultTransport,
			Injector: in,
			Point:    faultinject.PointWorkerHTTP,
		},
	}
}

// chaosReference runs the same sweep fault-free and in-process,
// producing the cache directory the fleet run must byte-match.
func chaosReference(t *testing.T, benches []string, dir string) {
	t.Helper()
	o := orchestrator.New(orchestrator.Config{
		Workers: 2,
		Cache:   orchestrator.NewCache(0, dir),
		Run: func(ctx context.Context, j orchestrator.Job, progress func(done, total uint64)) (*orchestrator.JobResult, error) {
			return stubResult(j), nil
		},
	})
	defer o.Close()
	for _, b := range benches {
		rec, err := o.Submit(quickJob(b))
		if err != nil {
			t.Fatalf("reference submit %s: %v", b, err)
		}
		if got := waitDone(t, o, rec.ID); got.Status != orchestrator.StatusDone {
			t.Fatalf("reference job %s: %s %q", b, got.Status, got.Error)
		}
	}
}

// saveChaosArtifacts copies the coordinator journal into
// CHAOS_ARTIFACT_DIR when the schedule failed, for CI upload.
func saveChaosArtifacts(t *testing.T, seed int64, journalPath string) {
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" || !t.Failed() || journalPath == "" {
		return
	}
	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Logf("chaos artifact: read journal: %v", err)
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos artifact: %v", err)
		return
	}
	out := filepath.Join(dir, fmt.Sprintf("chaos-journal-seed-%d.jsonl", seed))
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Logf("chaos artifact: %v", err)
		return
	}
	t.Logf("chaos artifact: journal saved to %s", out)
}

// runChaosSchedule executes one seeded schedule end to end and asserts
// every chaos invariant.
func runChaosSchedule(t *testing.T, seed int64) {
	t.Helper()
	s := buildChaosSchedule(seed)
	in := s.arm()
	// Every fire must surface as exactly one flight-recorder event, so a
	// post-mortem can correlate each lnuca_fault_injected_total increment
	// to the trace it hit (production wires this in cmd/lnucad the same
	// way).
	flight := tracez.NewFlightRecorder(0, 0, 0)
	in.OnEvent(func(e faultinject.Event) { flight.Event("fault", e.TraceID, string(e.Point)) })
	t.Logf("chaos %s jobs=%d workers=%d journal=%v (reproduce: CHAOS_SEED=%d)",
		in.Describe(), len(s.benches), s.workers, s.journal, seed)

	refDir := t.TempDir()
	chaosReference(t, s.benches, refDir)

	fleetDir := t.TempDir()
	var journalPath string
	var journal *orchestrator.Journal
	if s.journal {
		journalPath = filepath.Join(t.TempDir(), "journal.jsonl")
		j, err := orchestrator.OpenJournal(journalPath)
		if err != nil {
			t.Fatalf("open journal: %v", err)
		}
		j.SetFaults(in)
		journal = j
	}
	t.Cleanup(func() { saveChaosArtifacts(t, seed, journalPath) })

	var executions atomic.Uint64
	reg := obs.NewRegistry()
	coord := NewCoordinator(Config{
		LeaseTTL:       120 * time.Millisecond,
		MaxAttempts:    10,
		RetryBaseDelay: 2 * time.Millisecond,
		RetryMaxDelay:  50 * time.Millisecond,
		Registry:       reg,
	})
	cache := orchestrator.NewCache(0, fleetDir)
	cache.SetFaults(in)
	orch := orchestrator.New(orchestrator.Config{
		Workers: 4,
		Cache:   cache,
		Run:     coord.Dispatch,
		Journal: journal,
	})
	srv := httptest.NewServer(faultinject.Middleware(coord.Handler(), in, faultinject.PointCoordHTTP))

	wctx, stopWorkers := context.WithCancel(context.Background())
	var workersDone sync.WaitGroup
	for i := 0; i < s.workers; i++ {
		w := NewWorker(WorkerConfig{
			Coordinator:  srv.URL,
			Name:         fmt.Sprintf("chaos-w%d", i),
			PollInterval: 2 * time.Millisecond,
			DrainGrace:   time.Second,
			Faults:       in,
			Client:       chaosClient(in),
			Run: func(ctx context.Context, j orchestrator.Job, progress func(done, total uint64)) (*orchestrator.JobResult, error) {
				executions.Add(1)
				progress(500, 1000)
				return stubResult(j), nil
			},
		})
		workersDone.Add(1)
		go func() { defer workersDone.Done(); _ = w.Run(wctx) }()
	}
	closed := false
	closeAll := func() {
		if closed {
			return
		}
		closed = true
		orch.Close()
		stopWorkers()
		workersDone.Wait()
		coord.Close()
		srv.Close()
		if journal != nil {
			_ = journal.Close()
		}
	}
	defer closeAll()

	// ---- The sweep, under fire. ----
	submitted := map[string]bool{}
	ids := make([]string, 0, len(s.benches))
	for _, b := range s.benches {
		job, err := quickJob(b).Normalize()
		if err != nil {
			t.Fatalf("normalize %s: %v", b, err)
		}
		submitted[job.Key()] = true
		rec, err := orch.Submit(job)
		if err != nil {
			t.Fatalf("seed=%d: submit %s: %v", seed, b, err)
		}
		ids = append(ids, rec.ID)
	}
	for i, id := range ids {
		rec := waitDone(t, orch, id)
		if rec.Status != orchestrator.StatusDone {
			t.Fatalf("seed=%d: job %s (%s): status %s, error %q",
				seed, id, s.benches[i], rec.Status, rec.Error)
		}
	}

	// ---- Invariants. ----
	checkBalance(t, orch)
	requeues := coord.requeues.Value()
	releases := coord.releases.Value()
	granted := coord.leasesGranted.Value()
	if want := uint64(len(s.benches)) + requeues + releases; granted != want {
		t.Errorf("seed=%d: leases granted = %d, want %d (jobs %d + requeues %d + releases %d)",
			seed, granted, want, len(s.benches), requeues, releases)
	}
	if got := executions.Load(); got > granted {
		t.Errorf("seed=%d: executions = %d > leases granted %d — a job ran without a lease",
			seed, got, granted)
	}
	if m := orch.Metrics(); m.Degraded {
		t.Errorf("seed=%d: degraded mode tripped under a bounded schedule (fire caps are wrong)", seed)
	}
	var totalFires uint64
	for p := range s.plans {
		totalFires += in.Fires(p)
	}
	faultEvents := 0
	for _, e := range flight.Events("") {
		if e.Kind == "fault" {
			faultEvents++
		}
	}
	if uint64(faultEvents) != totalFires {
		t.Errorf("seed=%d: flight recorder holds %d fault events for %d fires — injections must be one-to-one correlatable",
			seed, faultEvents, totalFires)
	}

	// Surviving cache entries must be byte-identical to the fault-free
	// reference run. (A capped write fault may leave an entry missing —
	// that costs a recomputation, never a divergent byte.)
	entries, err := os.ReadDir(fleetDir)
	if err != nil {
		t.Fatalf("read fleet cache dir: %v", err)
	}
	compared := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		fb, err := os.ReadFile(filepath.Join(fleetDir, e.Name()))
		if err != nil {
			t.Fatalf("fleet cache entry %s: %v", e.Name(), err)
		}
		rb, err := os.ReadFile(filepath.Join(refDir, e.Name()))
		if err != nil {
			t.Fatalf("seed=%d: fleet cache has %s but the reference run does not: %v", seed, e.Name(), err)
		}
		if string(fb) != string(rb) {
			t.Errorf("seed=%d: cache entry %s differs from fault-free reference:\nfleet: %s\nref:   %s",
				seed, e.Name(), fb, rb)
		}
		compared++
	}
	if compared == 0 {
		t.Errorf("seed=%d: no cache entries survived at all — write faults are uncapped?", seed)
	}

	// The journal must reopen cleanly after the run — including with a
	// freshly torn tail, the simulated crash-mid-append.
	if journalPath != "" {
		closeAll()
		tear := make([]byte, 1+int(seed%61))
		for i := range tear {
			tear[i] = byte('a' + (int(seed)+i)%26)
		}
		f, err := os.OpenFile(journalPath, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatalf("tear journal: %v", err)
		}
		if _, err := f.Write(tear); err != nil {
			t.Fatalf("tear journal: %v", err)
		}
		f.Close()
		j2, err := orchestrator.OpenJournal(journalPath)
		if err != nil {
			t.Fatalf("seed=%d: journal did not reopen after torn tail: %v", seed, err)
		}
		for _, req := range j2.Pending() {
			job, err := req.Job()
			if err != nil {
				t.Errorf("seed=%d: recovered pending entry does not parse: %v", seed, err)
				continue
			}
			if !submitted[job.Key()] {
				t.Errorf("seed=%d: recovered pending key %s was never submitted", seed, job.Key())
			}
		}
		j2.Close()
	}
}

// TestChaosSchedules runs the fixed-seed regression battery. Each seed
// is a subtest so a failure names its reproduction seed directly.
func TestChaosSchedules(t *testing.T) {
	for seed := int64(1); seed <= 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSchedule(t, seed)
		})
	}
}

// TestChaosSeedFromEnv reruns one schedule named by CHAOS_SEED — the
// reproduction entry point CI failure output points at.
func TestChaosSeedFromEnv(t *testing.T) {
	v := os.Getenv("CHAOS_SEED")
	if v == "" {
		t.Skip("CHAOS_SEED not set")
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q: %v", v, err)
	}
	runChaosSchedule(t, seed)
}

// TestChaosScheduleDeterministicFromSeed pins the reproducibility
// contract: the same seed derives the same jobs, topology and armed
// plans, and a different seed does not.
func TestChaosScheduleDeterministicFromSeed(t *testing.T) {
	for _, seed := range []int64{3, 11, 1017} {
		a, b := buildChaosSchedule(seed), buildChaosSchedule(seed)
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("seed %d derived two different schedules:\n%+v\n%+v", seed, a, b)
		}
		if da, db := a.arm().Describe(), b.arm().Describe(); da != db {
			t.Fatalf("seed %d armed two different injectors:\n%s\n%s", seed, da, db)
		}
	}
	if fmt.Sprintf("%+v", buildChaosSchedule(3)) == fmt.Sprintf("%+v", buildChaosSchedule(4)) {
		t.Fatal("distinct seeds derived identical schedules")
	}
}
