package fleet

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/obs/tracez"
	"repro/internal/orchestrator"
)

// These tests pin the Timeline and tracing contracts for fleet-executed
// jobs: queue vs run time splits at the lease grant (not at dispatch),
// a requeued job never counts its dead lease as run time, every job
// yields one rooted span tree, and every fault injection is
// correlatable to a flight-recorder event by trace ID.

// leaseAs polls the coordinator until worker holds a lease.
func leaseAs(t *testing.T, coord *Coordinator, worker string) *LeaseResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if l := coord.Lease(worker); l != nil {
			return l
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("worker %s never got a lease", worker)
	return nil
}

func TestFleetTimelineSplitsQueueAndRun(t *testing.T) {
	// A dispatched job with no worker available is queued, not running:
	// QueueSeconds accrues until the lease grant, RunSeconds from the
	// grant to completion, and the record names the executing worker.
	coord := NewCoordinator(Config{LeaseTTL: 5 * time.Second})
	defer coord.Close()
	orch := orchestrator.New(orchestrator.Config{Workers: 1, Run: coord.Dispatch})
	defer orch.Close()

	rec, err := orch.Submit(quickJob("403.gcc"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// No worker exists yet: the dispatched job sits in the fleet queue.
	time.Sleep(150 * time.Millisecond)
	l := leaseAs(t, coord, "w1")
	leased := time.Now()
	time.Sleep(100 * time.Millisecond)
	if !coord.Complete(CompleteRequest{LeaseID: l.LeaseID, Result: stubResult(quickJob("403.gcc"))}) {
		t.Fatal("completion rejected")
	}
	got := waitDone(t, orch, rec.ID)
	wall := time.Since(leased).Seconds()
	if got.Status != orchestrator.StatusDone {
		t.Fatalf("status %s, error %q", got.Status, got.Error)
	}
	if got.Worker != "w1" {
		t.Fatalf("worker = %q, want w1", got.Worker)
	}
	tl := got.Timeline
	if tl.StartedAt == nil || tl.FinishedAt == nil {
		t.Fatalf("terminal job missing timestamps: %+v", tl)
	}
	if tl.QueueSeconds < 0.14 {
		t.Fatalf("queue = %.3fs, want >= 0.14 (the workerless wait is queue time, not run time)", tl.QueueSeconds)
	}
	if tl.RunSeconds < 0.09 || tl.RunSeconds > wall+0.05 {
		t.Fatalf("run = %.3fs, want ~0.1s (lease grant to completion; wall %.3fs)", tl.RunSeconds, wall)
	}
}

func TestFleetTimelineExcludesExpiredLease(t *testing.T) {
	// A job requeued after a lease expiry restarts its run clock at the
	// second grant: the dead first lease is queue time. Without the
	// reset, a straggler report would blame the healthy second worker
	// for the zombie's silence.
	reg := obs.NewRegistry()
	coord := NewCoordinator(Config{
		LeaseTTL:       60 * time.Millisecond,
		MaxAttempts:    3,
		RetryBaseDelay: 5 * time.Millisecond,
		Registry:       reg,
	})
	defer coord.Close()
	orch := orchestrator.New(orchestrator.Config{Workers: 1, Run: coord.Dispatch})
	defer orch.Close()

	rec, err := orch.Submit(quickJob("403.gcc"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	leaseAs(t, coord, "zombie") // takes the lease, never heartbeats
	firstLease := time.Now()
	// Let the dead lease rot well past its TTL before anyone re-polls.
	time.Sleep(250 * time.Millisecond)
	l2 := leaseAs(t, coord, "live")
	secondLease := time.Now()
	if l2.Attempt != 2 {
		t.Fatalf("second lease attempt = %d, want 2", l2.Attempt)
	}
	// "Run" for 100ms, heartbeating to keep the short-TTL lease alive
	// the way a live worker does.
	for i := 0; i < 5; i++ {
		time.Sleep(20 * time.Millisecond)
		if _, ok := coord.Heartbeat(l2.LeaseID, 500, 1000); !ok {
			t.Fatalf("heartbeat %d rejected — the live lease expired", i)
		}
	}
	if !coord.Complete(CompleteRequest{LeaseID: l2.LeaseID, Result: stubResult(quickJob("403.gcc"))}) {
		t.Fatal("completion rejected")
	}
	got := waitDone(t, orch, rec.ID)
	wall := time.Since(secondLease).Seconds()
	dead := secondLease.Sub(firstLease).Seconds()
	if got.Status != orchestrator.StatusDone {
		t.Fatalf("status %s, error %q", got.Status, got.Error)
	}
	if got.Worker != "live" {
		t.Fatalf("worker = %q, want live (the worker that actually executed)", got.Worker)
	}
	tl := got.Timeline
	if tl.RunSeconds >= dead {
		t.Fatalf("run = %.3fs >= %.3fs dead-lease window — the expired first lease was counted as run time", tl.RunSeconds, dead)
	}
	if tl.RunSeconds < 0.09 || tl.RunSeconds > wall+0.05 {
		t.Fatalf("run = %.3fs, want ~0.1s (second grant to completion; wall %.3fs)", tl.RunSeconds, wall)
	}
	if tl.QueueSeconds < 0.24 {
		t.Fatalf("queue = %.3fs, want >= 0.24 (the dead lease accrues as queue time)", tl.QueueSeconds)
	}
}

// spanNames lists span names for failure messages.
func spanNames(spans []tracez.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// checkSpanTree asserts the acceptance invariant on one trace: exactly
// one root (named rootName), unique span IDs, and every parent pointer
// resolving to a span in the same trace — zero orphans.
func checkSpanTree(t *testing.T, spans []tracez.Span, rootName string) {
	t.Helper()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	ids := make(map[string]bool, len(spans))
	for _, s := range spans {
		if s.TraceID != spans[0].TraceID {
			t.Errorf("span %q is in trace %s, want %s", s.Name, s.TraceID, spans[0].TraceID)
		}
		if ids[s.SpanID] {
			t.Errorf("duplicate span ID %s (%q)", s.SpanID, s.Name)
		}
		ids[s.SpanID] = true
	}
	roots := 0
	for _, s := range spans {
		if s.Parent == "" {
			roots++
			if s.Name != rootName {
				t.Errorf("root span is %q, want %q", s.Name, rootName)
			}
			continue
		}
		if !ids[s.Parent] {
			t.Errorf("span %q has orphan parent %s", s.Name, s.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("trace has %d roots, want 1 (%v)", roots, spanNames(spans))
	}
}

func TestFleetJobProducesRootedSpanTree(t *testing.T) {
	// A fleet-executed job yields one rooted span tree spanning client,
	// orchestrator, coordinator and worker in the flight recorder: the
	// worker's spans crossed the wire in its CompleteRequest and parent
	// under the coordinator's dispatch span.
	flight := tracez.NewFlightRecorder(0, 0, 0)
	tracer := tracez.New(flight)
	s := startStack(t,
		Config{LeaseTTL: 5 * time.Second, Events: flight, Spans: flight},
		orchestrator.Config{Workers: 2, Tracer: tracer, Flight: flight},
		2,
		func(ctx context.Context, j orchestrator.Job, progress func(done, total uint64)) (*orchestrator.JobResult, error) {
			progress(500, 1000)
			return stubResult(j), nil
		})
	defer s.close()

	// The "client" side: a root span around the submission, exactly what
	// Client.Submit opens on the other end of HTTP.
	root, ctx := tracer.Start(context.Background(), "lnuca.client.submit")
	rec, err := s.orch.SubmitCtx(ctx, quickJob("403.gcc"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got := waitDone(t, s.orch, rec.ID)
	root.Finish()
	if got.Status != orchestrator.StatusDone {
		t.Fatalf("status %s, error %q", got.Status, got.Error)
	}
	if got.TraceID == "" {
		t.Fatal("traced job record has no trace ID")
	}
	if got.TraceID != root.TraceID {
		t.Fatalf("job trace %s != client trace %s — propagation broke at submission", got.TraceID, root.TraceID)
	}

	want := []string{
		"lnuca.client.submit", "lnuca.orch.submit", "lnuca.orch.job",
		"lnuca.orch.queue", "lnuca.orch.run", "lnuca.fleet.dispatch",
		"lnuca.worker.execute",
	}
	// Spans land asynchronously (orchestrator goroutines finish theirs
	// after the terminal record); poll until the full tree is present.
	var spans []tracez.Span
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		spans = flight.Spans(got.TraceID)
		have := make(map[string]bool, len(spans))
		for _, sp := range spans {
			have[sp.Name] = true
		}
		missing := false
		for _, name := range want {
			if !have[name] {
				missing = true
				break
			}
		}
		if !missing {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	have := make(map[string]bool, len(spans))
	for _, sp := range spans {
		have[sp.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("trace is missing span %q (got %v)", name, spanNames(spans))
		}
	}
	if len(spans) < 5 {
		t.Fatalf("trace has %d spans, want >= 5: %v", len(spans), spanNames(spans))
	}
	checkSpanTree(t, spans, "lnuca.client.submit")
}

func TestFaultEventsCorrelateToTraces(t *testing.T) {
	// Every injector fire lands in the flight recorder as exactly one
	// "fault" event, and a fire at a trace-carrying site (here: the
	// cache write of a traced job's result) carries that job's trace ID
	// — the correlation the chaos post-mortem workflow depends on.
	in := faultinject.New(42)
	in.Enable(faultinject.PointCacheWrite, faultinject.Plan{Rate: 1, MaxFires: 1})
	var fires atomic.Uint64
	in.OnFire(func(faultinject.Point) { fires.Add(1) })
	flight := tracez.NewFlightRecorder(0, 0, 0)
	in.OnEvent(func(e faultinject.Event) { flight.Event("fault", e.TraceID, string(e.Point)) })

	cache := orchestrator.NewCache(0, t.TempDir())
	cache.SetFaults(in)
	orch := orchestrator.New(orchestrator.Config{
		Workers: 1,
		Cache:   cache,
		Tracer:  tracez.New(flight),
		Flight:  flight,
		Run: func(ctx context.Context, j orchestrator.Job, progress func(done, total uint64)) (*orchestrator.JobResult, error) {
			return stubResult(j), nil
		},
	})
	defer orch.Close()

	rec, err := orch.Submit(quickJob("403.gcc"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got := waitDone(t, orch, rec.ID)
	if got.Status != orchestrator.StatusDone {
		t.Fatalf("status %s, error %q (a capped cache-write fault loses the entry, never the job)", got.Status, got.Error)
	}
	if got.TraceID == "" {
		t.Fatal("traced job record has no trace ID")
	}

	var faults []tracez.Event
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		faults = faults[:0]
		for _, e := range flight.Events(got.TraceID) {
			if e.Kind == "fault" {
				faults = append(faults, e)
			}
		}
		if fires.Load() == 1 && len(faults) == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := fires.Load(); n != 1 {
		t.Fatalf("cache-write fault fired %d times, want 1", n)
	}
	if len(faults) != 1 {
		t.Fatalf("trace %s has %d fault events, want 1 — every lnuca_fault_injected_total increment must be correlatable", got.TraceID, len(faults))
	}
	if faults[0].Detail != string(faultinject.PointCacheWrite) {
		t.Fatalf("fault event detail = %q, want %q", faults[0].Detail, faultinject.PointCacheWrite)
	}
	// The event strip holds no unattributed fault: the write site had
	// the job's trace in hand.
	for _, e := range flight.Events("") {
		if e.Kind == "fault" && e.TraceID == "" {
			t.Errorf("unattributed fault event %+v — the cache write site carries the job's trace ID", e)
		}
	}
}
