package dnuca

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// blockedHead builds a D-NUCA whose upstream head read is permanently
// stalled: the MSHR is saturated by a miss that memory never answers.
// With secondary == 0 and the second read aimed at the same line, the
// head blocks on a merge reject; aimed at a different line, it blocks
// on a full MSHR. Both states re-run acceptRead — and count a read —
// every ungated cycle, which is exactly what SkipTo must replay.
func blockedHead(t *testing.T, sameLine bool) (*DNUCA, *sim.Kernel, *mem.Port) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MSHREntries = 1
	cfg.MSHRSecondary = 0
	up := mem.NewPort(8, 8)
	down := mem.NewPort(8, 8)
	var ids mem.IDSource
	d, err := New(cfg, up, down, &ids)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	k.SetGating(false)
	k.MustRegister(d)

	up.Down.Push(&mem.Req{ID: 1, Addr: 0x10000, Kind: mem.Read})
	up.Down.Tick()
	k.Run(300) // search multicasts, all banks nack, fetch leaves; DRAM never answers

	second := mem.Addr(0x50000)
	if sameLine {
		second = 0x10000
	}
	up.Down.Push(&mem.Req{ID: 2, Addr: second, Kind: mem.Read})
	up.Down.Tick()
	k.Run(20) // settle into the blocked-head steady state
	return d, k, up
}

// TestSkipToReplaysBlockedReadHead: N idle Evals of a blocked read head
// and one SkipTo over N cycles must move every counter identically —
// including the per-cycle Reads re-count of the retried acceptRead.
// (Regression: SkipTo used to drop those reads, so gated and ungated
// dn.reads diverged in exactly the DRAM-stall state gating targets.)
func TestSkipToReplaysBlockedReadHead(t *testing.T) {
	for _, tc := range []struct {
		name     string
		sameLine bool
	}{
		{"mshr-full", false},
		{"merge-reject", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 100
			stepped, sk, _ := blockedHead(t, tc.sameLine)
			skipped, kk, _ := blockedHead(t, tc.sameLine)
			if stepped.Reads != skipped.Reads || stepped.mshr.MergeRejects != skipped.mshr.MergeRejects {
				t.Fatalf("twins diverged before the experiment")
			}

			sk.Run(n) // ungated: n real Evals of the blocked head

			now := kk.Cycle()
			wake, idle := skipped.NextEvent(now)
			if !idle {
				t.Fatalf("blocked head not classified idle (wake %d)", wake)
			}
			skipped.SkipTo(now, now+n)

			if stepped.Reads != skipped.Reads {
				t.Errorf("Reads: %d stepped vs %d skipped over %d cycles", stepped.Reads, skipped.Reads, n)
			}
			if stepped.mshr.MergeRejects != skipped.mshr.MergeRejects {
				t.Errorf("MergeRejects: %d stepped vs %d skipped", stepped.mshr.MergeRejects, skipped.mshr.MergeRejects)
			}
			if stepped.ReadHits != skipped.ReadHits || stepped.ReadMisses != skipped.ReadMisses {
				t.Errorf("hit/miss counters diverged: %d/%d vs %d/%d",
					stepped.ReadHits, stepped.ReadMisses, skipped.ReadHits, skipped.ReadMisses)
			}
		})
	}
}
