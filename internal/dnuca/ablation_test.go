package dnuca

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestPromotionAblation: with gradual migration disabled, repeated hits
// to the same block stay in the tail row and stay slow — the mechanism
// D-NUCA's dynamic placement (and, transitively, the L-NUCA comparison)
// rests on.
func TestPromotionAblation(t *testing.T) {
	measure := func(promote bool) (lat sim.Cycle, promotions uint64) {
		cfg := DefaultConfig()
		cfg.Promote = promote
		h := newDNHarness(t, cfg)
		addr := mem.Addr(0x70000)
		h.read(1, addr)
		h.runUntil(t, 1, 2000)
		for i := 0; i < 300; i++ {
			h.k.Step()
		}
		// Several hits give migration a chance (or not).
		for n := 0; n < 4; n++ {
			h.read(uint64(10+n), addr)
			h.runUntil(t, uint64(10+n), 1500)
			for i := 0; i < 300; i++ {
				h.k.Step()
			}
		}
		start := h.k.Cycle()
		h.read(99, addr)
		done := h.runUntil(t, 99, 1500)
		return done - start, h.d.Promotions
	}
	latOn, promOn := measure(true)
	latOff, promOff := measure(false)
	if promOff != 0 {
		t.Fatalf("promotions happened with migration disabled: %d", promOff)
	}
	if promOn == 0 {
		t.Fatal("no promotions with migration enabled")
	}
	if latOn >= latOff {
		t.Fatalf("migration did not reduce hit latency: %d (on) vs %d (off)", latOn, latOff)
	}
}

// TestBankSetIsolation: traffic to one column must not access banks of
// other columns (simple mapping).
func TestBankSetIsolation(t *testing.T) {
	h := newDNHarness(t, DefaultConfig())
	// All addresses in column 0: line address multiples of 8*128.
	var id uint64
	for i := 0; i < 10; i++ {
		id++
		h.read(id, mem.Addr(i*8*128*1024))
		h.runUntil(t, id, 3000)
	}
	for i := 0; i < 500; i++ {
		h.k.Step()
	}
	for col := 1; col < 8; col++ {
		for row := 0; row < 4; row++ {
			if h.d.BankArray(col, row).Occupancy() != 0 {
				t.Fatalf("column-%d bank row %d holds blocks from column-0 traffic", col, row)
			}
		}
	}
}

// TestMulticastSearchTouchesWholeColumn: an SS-performance search probes
// all four banks of the bank set.
func TestMulticastSearchTouchesWholeColumn(t *testing.T) {
	h := newDNHarness(t, DefaultConfig())
	h.read(1, 0x12345&^0x7F)
	h.runUntil(t, 1, 3000)
	// Cold miss: all 4 banks of the column looked up (and nacked).
	if h.d.BankAccesses < 4 {
		t.Fatalf("bank accesses = %d, want >= 4 (multicast)", h.d.BankAccesses)
	}
}
