package dnuca

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// dnHarness wires driver -> DNUCA -> MainMemory.
type dnHarness struct {
	k    *sim.Kernel
	up   *mem.Port
	down *mem.Port
	d    *DNUCA
	mm   *mem.MainMemory
	ids  mem.IDSource

	got map[uint64]sim.Cycle
}

func newDNHarness(t *testing.T, cfg Config) *dnHarness {
	t.Helper()
	h := &dnHarness{
		up:   mem.NewPort(16, 16),
		down: mem.NewPort(16, 16),
		got:  map[uint64]sim.Cycle{},
	}
	var err error
	h.d, err = New(cfg, h.up, h.down, &h.ids)
	if err != nil {
		t.Fatal(err)
	}
	h.mm = mem.NewMainMemory("mem", mem.DefaultMainMemoryConfig(), h.down)
	h.k = sim.NewKernel()
	h.k.MustRegister(h)
	h.k.MustRegister(h.d)
	h.k.MustRegister(h.mm)
	return h
}

func (h *dnHarness) Name() string { return "driver" }
func (h *dnHarness) Eval(k *sim.Kernel) {
	for {
		r, ok := h.up.Up.Pop()
		if !ok {
			break
		}
		h.got[r.ID] = k.Cycle()
	}
}
func (h *dnHarness) Commit(k *sim.Kernel) { h.up.Down.Tick() }

func (h *dnHarness) read(id uint64, a mem.Addr) {
	h.up.Down.Push(&mem.Req{ID: id, Addr: a, Kind: mem.Read, Issued: h.k.Cycle()})
}

func (h *dnHarness) write(a mem.Addr) {
	h.up.Down.Push(&mem.Req{ID: 0, Addr: a, Kind: mem.Write, Issued: h.k.Cycle()})
}

func (h *dnHarness) runUntil(t *testing.T, id uint64, max int) sim.Cycle {
	t.Helper()
	for i := 0; i < max; i++ {
		if c, ok := h.got[id]; ok {
			return c
		}
		h.k.Step()
	}
	t.Fatalf("request %d never completed within %d cycles", id, max)
	return 0
}

func TestGlobalMissFetchesFromMemoryAndFillsTail(t *testing.T) {
	h := newDNHarness(t, DefaultConfig())
	start := h.k.Cycle()
	h.read(1, 0x10000)
	done := h.runUntil(t, 1, 2000)
	if done-start < 200 {
		t.Fatalf("cold miss took %d cycles, below DRAM latency", done-start)
	}
	if h.d.GlobalMisses != 1 || h.mm.Reads != 1 {
		t.Fatalf("GlobalMisses=%d mem.Reads=%d, want 1,1", h.d.GlobalMisses, h.mm.Reads)
	}
	// The block must land in the tail (farthest) row of its column.
	for i := 0; i < 200; i++ {
		h.k.Step()
	}
	col := h.d.column(0x10000)
	if !h.d.BankArray(col, h.d.cfg.Rows-1).Probe(0x10000) {
		t.Fatal("fill did not land in the tail bank")
	}
}

func TestHitIsFasterThanMiss(t *testing.T) {
	h := newDNHarness(t, DefaultConfig())
	h.read(1, 0x20000)
	h.runUntil(t, 1, 2000)
	for i := 0; i < 100; i++ {
		h.k.Step()
	}
	start := h.k.Cycle()
	h.read(2, 0x20000)
	done := h.runUntil(t, 2, 500)
	hitLat := done - start
	if hitLat >= 200 {
		t.Fatalf("hit latency %d not faster than memory", hitLat)
	}
	// Single injection point, 3-cycle banks, multi-hop wormhole: a hit
	// is necessarily noticeably slower than an L-NUCA Le2 hit (3).
	if hitLat < 8 {
		t.Fatalf("hit latency %d implausibly low for a NUCA traversal", hitLat)
	}
}

func TestPromotionMovesBlockCloser(t *testing.T) {
	h := newDNHarness(t, DefaultConfig())
	addr := mem.Addr(0x30000)
	h.read(1, addr)
	h.runUntil(t, 1, 2000)
	for i := 0; i < 300; i++ {
		h.k.Step()
	}
	col := h.d.column(addr)
	if !h.d.BankArray(col, 3).Probe(addr) {
		t.Fatal("setup: block not at tail")
	}
	// Each hit promotes one row: after 3 hits it reaches row 0.
	for n := 0; n < 3; n++ {
		h.read(uint64(10+n), addr)
		h.runUntil(t, uint64(10+n), 1000)
		for i := 0; i < 300; i++ {
			h.k.Step()
		}
	}
	if !h.d.BankArray(col, 0).Probe(addr) {
		rows := []bool{}
		for r := 0; r < 4; r++ {
			rows = append(rows, h.d.BankArray(col, r).Probe(addr))
		}
		t.Fatalf("block not promoted to row 0; residency by row: %v", rows)
	}
	if h.d.Promotions < 3 {
		t.Fatalf("Promotions = %d, want >= 3", h.d.Promotions)
	}
}

func TestPromotedHitsAreFaster(t *testing.T) {
	h := newDNHarness(t, DefaultConfig())
	addr := mem.Addr(0x40000)
	h.read(1, addr)
	h.runUntil(t, 1, 2000)
	for i := 0; i < 300; i++ {
		h.k.Step()
	}
	// First hit: tail row.
	s1 := h.k.Cycle()
	h.read(2, addr)
	lat1 := h.runUntil(t, 2, 1000) - s1
	// Promote to row 0 with several hits.
	for n := 0; n < 5; n++ {
		h.read(uint64(10+n), addr)
		h.runUntil(t, uint64(10+n), 1000)
		for i := 0; i < 300; i++ {
			h.k.Step()
		}
	}
	s2 := h.k.Cycle()
	h.read(3, addr)
	lat2 := h.runUntil(t, 3, 1000) - s2
	if lat2 >= lat1 {
		t.Fatalf("promoted hit (%d cycles) not faster than tail hit (%d cycles)", lat2, lat1)
	}
}

func TestSecondaryMissMerging(t *testing.T) {
	h := newDNHarness(t, DefaultConfig())
	h.read(1, 0x50000)
	h.k.Step()
	h.read(2, 0x50000)
	h.read(3, 0x50040) // same 128B block
	h.runUntil(t, 1, 2000)
	h.runUntil(t, 2, 2000)
	h.runUntil(t, 3, 2000)
	if h.mm.Reads != 1 {
		t.Fatalf("memory reads = %d, want 1 (merged)", h.mm.Reads)
	}
}

func TestWriteAllocateAndWriteback(t *testing.T) {
	cfg := DefaultConfig()
	h := newDNHarness(t, cfg)
	h.write(0x60000)
	for i := 0; i < 2000; i++ {
		h.k.Step()
	}
	col := h.d.column(0x60000)
	found := false
	for r := 0; r < cfg.Rows; r++ {
		if h.d.BankArray(col, r).IsDirty(0x60000) {
			found = true
		}
	}
	if !found {
		t.Fatal("write miss did not allocate a dirty block")
	}
	// Overflow the tail bank set to force a dirty writeback. Set stride:
	// 2-way 256KB banks of 128B blocks = 1024 sets; same column needs
	// addr steps of 8*128B per set index... use same set+column stride:
	// 1024 sets * 8 cols * 128B = 1MB.
	stride := mem.Addr(1 << 20)
	var id uint64 = 100
	for i := 1; i <= 12; i++ {
		a := 0x60000 + mem.Addr(i)*stride
		h.write(a)
		id++
		h.read(id, a)
		h.runUntil(t, id, 3000)
	}
	for i := 0; i < 3000 && h.mm.Writebacks == 0; i++ {
		h.k.Step()
	}
	if h.mm.Writebacks == 0 {
		t.Fatal("dirty evictions never reached memory")
	}
}

func TestAllRequestsCompleteUnderLoad(t *testing.T) {
	h := newDNHarness(t, DefaultConfig())
	rng := sim.NewRand(11)
	var id uint64
	for cyc := 0; cyc < 6000; cyc++ {
		if h.up.Down.CanPush() && rng.Bool(0.25) {
			addr := mem.Addr(rng.Intn(1<<22)) &^ 0x7F
			if rng.Bool(0.25) {
				h.write(addr)
			} else {
				id++
				h.read(id, addr)
			}
		}
		h.k.Step()
	}
	for i := 0; i < 20000 && uint64(len(h.got)) < id; i++ {
		h.k.Step()
	}
	if uint64(len(h.got)) != id {
		t.Fatalf("completed %d of %d reads (MSHR: %d, in-flight msgs: %d)",
			len(h.got), id, h.d.MSHROccupancy(), h.d.Mesh().InFlight())
	}
	if h.d.MSHROccupancy() != 0 {
		t.Fatalf("leaked MSHRs: %d", h.d.MSHROccupancy())
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() string {
		h := newDNHarness(t, DefaultConfig())
		rng := sim.NewRand(3)
		var id uint64
		for cyc := 0; cyc < 3000; cyc++ {
			if h.up.Down.CanPush() && rng.Bool(0.3) {
				id++
				h.read(id, mem.Addr(rng.Intn(1<<21))&^0x7F)
			}
			h.k.Step()
		}
		s := stats.NewSet()
		h.d.Collect("dn", s)
		return s.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("two identical runs diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestCollect(t *testing.T) {
	h := newDNHarness(t, DefaultConfig())
	h.read(1, 0x1000)
	h.runUntil(t, 1, 2000)
	s := stats.NewSet()
	h.d.Collect("dn", s)
	if s.Counter("dn.reads") != 1 || s.Counter("dn.global_misses") != 1 {
		t.Fatalf("Collect wrong:\n%s", s)
	}
	if s.Counter("dn.net_flit_hops") == 0 {
		t.Fatal("network hops not counted")
	}
}

func TestConfigValidation(t *testing.T) {
	var ids mem.IDSource
	up, down := mem.NewPort(4, 4), mem.NewPort(4, 4)
	bad := DefaultConfig()
	bad.Rows = 0
	if _, err := New(bad, up, down, &ids); err == nil {
		t.Fatal("zero rows must be rejected")
	}
	bad = DefaultConfig()
	bad.Bank.SizeBytes = 100
	if _, err := New(bad, up, down, &ids); err == nil {
		t.Fatal("invalid bank must be rejected")
	}
}

func TestColumnMapping(t *testing.T) {
	h := newDNHarness(t, DefaultConfig())
	// Consecutive 128B blocks map to consecutive columns (interleaving).
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		seen[h.d.column(mem.Addr(i*128))] = true
	}
	if len(seen) != 8 {
		t.Fatalf("consecutive blocks hit %d distinct columns, want 8", len(seen))
	}
}
