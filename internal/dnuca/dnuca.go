// Package dnuca implements the paper's D-NUCA baseline: an 8MB dynamic
// NUCA of 32 banks (4 rows x 8 columns, Table I) behind a wormhole mesh
// with virtual channels, modeled after the SS-performance configuration
// of Kim et al. [1]: simple (column) mapping, multicast search across the
// bank set, gradual one-hop promotion on hits, and tail insertion.
//
// The controller is a single injection point at the bottom edge of the
// mesh — exactly the property Section I of the paper criticizes and
// L-NUCA's three specialized networks are designed to avoid.
package dnuca

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config parameterizes the D-NUCA (Table I: DN-4x8).
type Config struct {
	Name string
	// Rows x Cols banks; column = bank set ("8 sparse sets, 4 rows").
	Rows, Cols int
	// Bank geometry: 256KB, 2-way, 128B blocks.
	Bank cache.BankConfig
	// BankCompletion / BankInitiation: 3-cycle completion and initiation.
	BankCompletion, BankInitiation int
	// VCs / VCDepth: 4 virtual channels, 4-flit buffers.
	VCs, VCDepth int
	// FlitBytes: 32B flits on 256-bit links.
	FlitBytes int
	// MSHREntries / MSHRSecondary: 16 / 4.
	MSHREntries, MSHRSecondary int
	// WriteBufEntries buffers stores and writebacks at the controller.
	WriteBufEntries int
	// Promote enables gradual migration toward the controller on hits.
	Promote bool
	Seed    uint64
}

// DefaultConfig returns the Table I DN-4x8 configuration.
func DefaultConfig() Config {
	return Config{
		Name: "DN-4x8",
		Rows: 4, Cols: 8,
		Bank:           cache.BankConfig{SizeBytes: 256 << 10, Ways: 2, BlockBytes: 128},
		BankCompletion: 3, BankInitiation: 3,
		VCs: 4, VCDepth: 4,
		FlitBytes:       32,
		MSHREntries:     16,
		MSHRSecondary:   4,
		WriteBufEntries: 32,
		Promote:         true,
		Seed:            1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("dnuca: %dx%d banks invalid", c.Rows, c.Cols)
	}
	if err := c.Bank.Validate(); err != nil {
		return fmt.Errorf("dnuca: bank: %w", err)
	}
	return nil
}

// msgKind discriminates D-NUCA network payloads.
type msgKind uint8

const (
	mSearch  msgKind = iota // controller -> bank: look up a line
	mHit                    // bank -> controller: data response
	mNack                   // bank -> controller: bank missed
	mFill                   // controller -> tail bank: insert block
	mPromote                // bank -> closer bank: migrate block
	mDemote                 // bank -> farther bank: displaced swap partner
	mWrite                  // controller -> bank: store update
	mWB                     // bank -> controller: dirty victim writeback
)

// payload rides noc.Message.Payload.
type payload struct {
	kind  msgKind
	line  mem.Addr
	dirty bool
	row   int // originating bank row (for stats/promotion)
}

// bank is one 256KB node with a busy-until occupancy model.
type bank struct {
	arr       *cache.Bank
	pos       noc.Coord
	busyUntil sim.Cycle
	jobs      sim.Queue[bankJob]
}

type bankJob struct {
	p       payload
	arrived sim.Cycle
}

// pendingSearch tracks a multicast in flight.
type pendingSearch struct {
	line  mem.Addr
	nacks int
	hit   bool
	write bool
}

// DNUCA is the banked cache component. Like the L-NUCA fabric it sits
// between an upstream port (the L1 or L-NUCA) and a downstream port (main
// memory).
type DNUCA struct {
	cfg  Config
	mesh *noc.Mesh
	rng  *sim.Rand
	up   *mem.Port
	down *mem.Port
	ids  *mem.IDSource

	banks    []*bank // index = row*Cols + col
	ctrl     noc.Coord
	mshr     *cache.MSHRFile
	wbuf     *cache.WriteBuffer
	searches map[mem.Addr]*pendingSearch
	injectQ  []*noc.Message
	memQ     sim.Queue[*mem.Req]
	msgID    uint64

	pendingResp sim.Queue[*mem.Resp]

	// Quiescence bookkeeping: per-cycle counter increments of blocked
	// idle states, recorded by NextEvent and applied by SkipTo.
	skipMergeRejects, skipWBufRejects, skipBlockedReads uint64

	// Counters.
	Reads, ReadHits, ReadMisses uint64
	Writes                      uint64
	HitsByRow                   []uint64
	Promotions, Demotions       uint64
	Fills, Writebacks           uint64
	BankAccesses                uint64
	GlobalMisses                uint64
	SearchLatencySum            uint64
	SearchesResolved            uint64
}

// New builds the D-NUCA between up (processor side) and down (memory).
func New(cfg Config, up, down *mem.Port, ids *mem.IDSource) (*DNUCA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &DNUCA{
		cfg: cfg,
		mesh: noc.NewMesh(noc.MeshConfig{
			Width:  cfg.Cols,
			Height: cfg.Rows + 1, // row 0 hosts the controller
			VCs:    cfg.VCs, VCDepth: cfg.VCDepth,
		}),
		rng:      sim.NewRand(cfg.Seed),
		up:       up,
		down:     down,
		ids:      ids,
		ctrl:     noc.Coord{X: 0, Y: 0},
		mshr:     cache.NewMSHRFile(cfg.MSHREntries, cfg.MSHRSecondary),
		wbuf:     cache.NewWriteBuffer(cfg.WriteBufEntries),
		searches: make(map[mem.Addr]*pendingSearch),
	}
	d.banks = make([]*bank, cfg.Rows*cfg.Cols)
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			d.banks[r*cfg.Cols+c] = &bank{
				arr: cache.NewBank(cfg.Bank),
				pos: noc.Coord{X: c, Y: r + 1},
			}
		}
	}
	d.HitsByRow = make([]uint64, cfg.Rows)
	return d, nil
}

// Name implements sim.Component.
func (d *DNUCA) Name() string { return d.cfg.Name }

// column returns the bank set of a line (simple mapping).
func (d *DNUCA) column(line mem.Addr) int {
	return int((uint64(line) / uint64(d.cfg.Bank.BlockBytes)) % uint64(d.cfg.Cols))
}

func (d *DNUCA) bankAt(col, row int) *bank { return d.banks[row*d.cfg.Cols+col] }

// send queues a message for mesh injection.
func (d *DNUCA) send(now sim.Cycle, src, dst noc.Coord, flits int, p payload) {
	d.msgID++
	//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
	d.injectQ = append(d.injectQ, &noc.Message{
		ID:      d.msgID,
		Src:     src,
		Dst:     dst,
		Flits:   flits,
		Payload: p,
	})
}

// dataFlits returns the flit count of a block-carrying message: the block
// plus a head flit, capped to the paper's 1-5 flit range.
func (d *DNUCA) dataFlits() int {
	n := d.cfg.Bank.BlockBytes/d.cfg.FlitBytes + 1
	if n < 1 {
		n = 1
	}
	if n > 5 {
		n = 5
	}
	return n
}

// Eval implements sim.Component.
func (d *DNUCA) Eval(k *sim.Kernel) {
	now := k.Cycle()
	// Drain injection queue into the mesh as staging allows.
	rest := d.injectQ[:0]
	for _, m := range d.injectQ {
		if !d.mesh.Inject(m, now) {
			//lnuca:allow(hotalloc) in-place filter into the slice's own backing array; no growth
			rest = append(rest, m)
		}
	}
	d.injectQ = rest

	d.mesh.Step(now)

	d.ejectController(now)
	d.ejectBanks(now)
	d.runBanks(now)
	d.acceptUpstream(now)
	d.consumeMemory(now)
	d.drainDown(now)
	d.deliverResponses(now)
}

// Commit implements sim.Component.
func (d *DNUCA) Commit(k *sim.Kernel) {
	d.up.Up.Tick()
	d.down.Down.Tick()
}

// ejectController handles messages arriving at the controller node.
func (d *DNUCA) ejectController(now sim.Cycle) {
	for {
		m, ok := d.mesh.EjectOne(d.ctrl)
		if !ok {
			break
		}
		p := m.Payload.(payload)
		switch p.kind {
		case mHit:
			s := d.searches[p.line]
			if s == nil || s.hit {
				break // duplicate or stale
			}
			s.hit = true
			d.HitsByRow[p.row]++
			d.SearchLatencySum += uint64(now) - uint64(m.Injected)
			d.SearchesResolved++
			d.finishLine(now, p.line)
		case mNack:
			s := d.searches[p.line]
			if s == nil || s.hit {
				break
			}
			s.nacks++
			if s.nacks >= d.cfg.Rows {
				// Global miss: fetch from memory.
				d.GlobalMisses++
				delete(d.searches, p.line)
				d.toMemory(now, p.line)
			}
		case mWB:
			// A tail-bank dirty victim leaves the cache entirely: it goes
			// straight to memory, not through the store path (which would
			// re-allocate it).
			//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
			d.memQ.Push(&mem.Req{
				ID: d.ids.Next(), Addr: p.line, Kind: mem.Writeback, Issued: now,
			})
			d.Writebacks++
		}
	}
}

// finishLine retires the MSHR for line and queues responses.
func (d *DNUCA) finishLine(now sim.Cycle, line mem.Addr) {
	delete(d.searches, line)
	for _, t := range d.mshr.Free(line) {
		if t.Kind == mem.Read {
			//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
			d.pendingResp.Push(&mem.Resp{ID: t.ReqID, Addr: t.Addr})
		}
	}
}

// toMemory issues a block fetch downstream (via a small queue in fetchQ
// semantics: the drainDown step pushes it).
func (d *DNUCA) toMemory(now sim.Cycle, line mem.Addr) {
	m := d.mshr.Lookup(line)
	if m != nil {
		m.SentDown = true
	}
	//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
	d.memQ.Push(&mem.Req{ID: d.ids.Next(), Addr: line, Kind: mem.Read, Issued: now})
}

// ejectBanks enqueues arriving work at each bank.
func (d *DNUCA) ejectBanks(now sim.Cycle) {
	for _, b := range d.banks {
		for {
			m, ok := d.mesh.EjectOne(b.pos)
			if !ok {
				break
			}
			b.jobs.Push(bankJob{p: m.Payload.(payload), arrived: now})
		}
	}
}

// runBanks starts one job per free bank and emits its outcome.
func (d *DNUCA) runBanks(now sim.Cycle) {
	for _, b := range d.banks {
		if b.jobs.Len() == 0 || b.busyUntil > now {
			continue
		}
		job, _ := b.jobs.Pop()
		b.busyUntil = now + sim.Cycle(d.cfg.BankInitiation)
		d.BankAccesses++
		row := b.pos.Y - 1
		p := job.p
		switch p.kind {
		case mSearch:
			if b.arr.Access(p.line, false) {
				d.send(now, b.pos, d.ctrl, d.dataFlits(),
					payload{kind: mHit, line: p.line, row: row})
				d.maybePromote(now, b, p.line, row)
			} else {
				d.send(now, b.pos, d.ctrl, 1, payload{kind: mNack, line: p.line, row: row})
			}
		case mWrite:
			if b.arr.Access(p.line, true) {
				d.send(now, b.pos, d.ctrl, 1, payload{kind: mHit, line: p.line, row: row})
				d.maybePromote(now, b, p.line, row)
			} else {
				d.send(now, b.pos, d.ctrl, 1, payload{kind: mNack, line: p.line, row: row})
			}
		case mFill, mDemote, mPromote:
			if p.kind == mPromote {
				d.Promotions++
			}
			victim, evicted := b.arr.Fill(p.line, p.dirty)
			if evicted {
				d.evictFrom(now, b, victim, row, p.kind)
			}
		}
	}
}

// maybePromote migrates a hit block one bank closer to the controller,
// swapping with that bank's victim (gradual migration).
func (d *DNUCA) maybePromote(now sim.Cycle, b *bank, line mem.Addr, row int) {
	if !d.cfg.Promote || row == 0 {
		return
	}
	dirty, present := b.arr.Invalidate(line)
	if !present {
		return
	}
	closer := d.bankAt(b.pos.X, row-1)
	d.send(now, b.pos, closer.pos, d.dataFlits(),
		payload{kind: mPromote, line: line, dirty: dirty, row: row - 1})
}

// evictFrom routes a displaced victim: swap partners move one bank away
// from the controller; victims of the farthest row write back or drop.
func (d *DNUCA) evictFrom(now sim.Cycle, b *bank, v cache.Victim, row int, cause msgKind) {
	if cause == mPromote && row < d.cfg.Rows-1 {
		// Swap: the displaced block moves to where the promoted one was.
		farther := d.bankAt(b.pos.X, row+1)
		d.Demotions++
		d.send(now, b.pos, farther.pos, d.dataFlits(),
			payload{kind: mDemote, line: v.Addr, dirty: v.Dirty, row: row + 1})
		return
	}
	if row < d.cfg.Rows-1 {
		// Non-promotion eviction pushes outward too (keeps hot rows free).
		farther := d.bankAt(b.pos.X, row+1)
		d.send(now, b.pos, farther.pos, d.dataFlits(),
			payload{kind: mDemote, line: v.Addr, dirty: v.Dirty, row: row + 1})
		return
	}
	if v.Dirty {
		d.send(now, b.pos, d.ctrl, d.dataFlits(), payload{kind: mWB, line: v.Addr})
	}
	// Clean victims of the tail row vanish (memory has them).
}

// acceptUpstream pops L1 requests.
func (d *DNUCA) acceptUpstream(now sim.Cycle) {
	for {
		req, ok := d.up.Down.Peek()
		if !ok {
			return
		}
		line := req.Addr.Line(d.cfg.Bank.BlockBytes)
		switch req.Kind {
		case mem.Read:
			if !d.acceptRead(now, req, line) {
				return
			}
		case mem.Write, mem.Writeback:
			if !d.wbuf.Add(line, req.Kind) {
				return
			}
			d.Writes++
		}
		d.up.Down.Pop()
	}
}

func (d *DNUCA) acceptRead(now sim.Cycle, req *mem.Req, line mem.Addr) bool {
	d.Reads++
	if d.wbuf.Contains(line) {
		//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
		d.pendingResp.Push(&mem.Resp{ID: req.ID, Addr: req.Addr})
		return true
	}
	tg := cache.Target{ReqID: req.ID, Addr: req.Addr, Kind: mem.Read, Issued: req.Issued}
	if m := d.mshr.Lookup(line); m != nil {
		return d.mshr.Merge(m, tg)
	}
	if d.mshr.Full() {
		return false
	}
	d.mshr.Allocate(line, tg)
	d.launchSearch(now, line, false)
	return true
}

// launchSearch multicasts a lookup to every bank of the line's column.
func (d *DNUCA) launchSearch(now sim.Cycle, line mem.Addr, write bool) {
	col := d.column(line)
	kind := mSearch
	if write {
		kind = mWrite
	}
	//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
	d.searches[line] = &pendingSearch{line: line, write: write}
	for r := 0; r < d.cfg.Rows; r++ {
		b := d.bankAt(col, r)
		d.send(now, d.ctrl, b.pos, 1, payload{kind: kind, line: line})
	}
}

// consumeMemory handles fills coming back from DRAM: respond, then insert
// at the tail bank of the column.
func (d *DNUCA) consumeMemory(now sim.Cycle) {
	for {
		resp, ok := d.down.Up.Peek()
		if !ok {
			return
		}
		d.down.Up.Pop()
		line := resp.Addr.Line(d.cfg.Bank.BlockBytes)
		d.Fills++
		dirty := false
		for _, t := range d.mshr.Free(line) {
			switch t.Kind {
			case mem.Read:
				//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
				d.pendingResp.Push(&mem.Resp{ID: t.ReqID, Addr: t.Addr})
			case mem.Write:
				dirty = true
			}
		}
		tail := d.bankAt(d.column(line), d.cfg.Rows-1)
		d.send(now, d.ctrl, tail.pos, d.dataFlits(),
			payload{kind: mFill, line: line, dirty: dirty, row: d.cfg.Rows - 1})
	}
}

// drainDown pushes memory fetches and buffered writes downstream.
func (d *DNUCA) drainDown(now sim.Cycle) {
	for d.memQ.Len() > 0 && d.down.Down.CanPush() {
		r, _ := d.memQ.Pop()
		d.down.Down.Push(r)
	}
	// One buffered write per cycle: write hits update the bank in place;
	// misses write-allocate via the search path.
	if e, ok := d.wbuf.Peek(); ok {
		switch {
		case d.mshr.Lookup(e.Line) != nil:
			m := d.mshr.Lookup(e.Line)
			if d.mshr.Merge(m, cache.Target{ReqID: 0, Addr: e.Line, Kind: mem.Write}) {
				d.wbuf.Pop()
			}
		case d.searches[e.Line] != nil:
			// A write search for this line is already out; wait.
		default:
			if !d.mshr.Full() {
				d.wbuf.Pop()
				d.mshr.Allocate(e.Line, cache.Target{ReqID: 0, Addr: e.Line, Kind: mem.Write})
				d.launchSearch(now, e.Line, true)
			}
		}
	}
}

// deliverResponses pushes matured responses upstream.
func (d *DNUCA) deliverResponses(now sim.Cycle) {
	for d.pendingResp.Len() > 0 && d.up.Up.CanPush() {
		r, _ := d.pendingResp.Pop()
		r.Done = now
		d.up.Up.Push(r)
	}
}

// NextEvent implements sim.Quiescent. The D-NUCA is idle when the mesh
// holds no traffic, no bank has runnable work, and the controller can
// move nothing (no fill, grantable request, drainable write, memory
// fetch or response). Its only timed wakes are busy banks finishing
// their initiation interval; everything else waits on external input.
func (d *DNUCA) NextEvent(now sim.Cycle) (sim.Cycle, bool) {
	d.skipMergeRejects, d.skipWBufRejects, d.skipBlockedReads = 0, 0, 0
	// Any queued injection or in-network flit: the mesh (or the inject
	// drain) acts. A blocked injection implies in-flight traffic, so
	// treating any pending injection as active is exact.
	if len(d.injectQ) > 0 || !d.mesh.Quiet() {
		return 0, false
	}
	wake := sim.Never
	for _, b := range d.banks {
		if b.jobs.Len() == 0 {
			continue
		}
		if b.busyUntil <= now {
			return 0, false
		}
		if b.busyUntil < wake {
			wake = b.busyUntil
		}
	}
	if d.down.Up.Len() > 0 {
		return 0, false // a memory fill would be consumed
	}
	// Upstream head request.
	if req, ok := d.up.Down.Peek(); ok {
		line := req.Addr.Line(d.cfg.Bank.BlockBytes)
		if req.Kind == mem.Read {
			switch m := d.mshr.Lookup(line); {
			case d.wbuf.Contains(line):
				return 0, false
			case m != nil:
				if d.mshr.CanMerge(m) {
					return 0, false
				}
				// The blocked head re-runs acceptRead every cycle:
				// Reads++ then a rejected Merge.
				d.skipMergeRejects++
				d.skipBlockedReads++
			case d.mshr.Full():
				// Stalled until a fill frees an entry (external), but the
				// retried acceptRead still counts a read per cycle.
				d.skipBlockedReads++
			default:
				return 0, false // would allocate and launch a search
			}
		} else {
			if d.wbuf.Contains(line) || !d.wbuf.Full() {
				return 0, false
			}
			d.skipWBufRejects++ // wbuf.Add rejected every cycle
		}
	}
	// Buffered-write head.
	if e, ok := d.wbuf.Peek(); ok {
		switch m := d.mshr.Lookup(e.Line); {
		case m != nil:
			if d.mshr.CanMerge(m) {
				return 0, false
			}
			d.skipMergeRejects++
		case d.searches[e.Line] != nil:
			// A write search is already out: wait for it (its traffic is
			// covered by the mesh/bank checks above).
		case !d.mshr.Full():
			return 0, false // would allocate and launch
		}
	}
	if d.memQ.Len() > 0 && d.down.Down.CanPush() {
		return 0, false
	}
	if d.pendingResp.Len() > 0 && d.up.Up.CanPush() {
		return 0, false
	}
	return wake, true
}

// SkipTo implements sim.Quiescent: replay the mesh's round-robin
// rotation over the skipped cycles and apply per-cycle reject counters.
func (d *DNUCA) SkipTo(now, target sim.Cycle) {
	delta := target - now
	d.mesh.SkipIdle(delta)
	d.mshr.MergeRejects += d.skipMergeRejects * delta
	d.wbuf.FullRejects += d.skipWBufRejects * delta
	d.Reads += d.skipBlockedReads * delta
}

// Mesh exposes the network (stats/energy).
func (d *DNUCA) Mesh() *noc.Mesh { return d.mesh }

// MSHROccupancy returns live MSHR entries (tests).
func (d *DNUCA) MSHROccupancy() int { return d.mshr.Len() }

// BankArray exposes bank (col,row) for tests.
func (d *DNUCA) BankArray(col, row int) *cache.Bank { return d.bankAt(col, row).arr }

// AvgSearchLatency returns mean cycles from search injection to hit.
func (d *DNUCA) AvgSearchLatency() float64 {
	if d.SearchesResolved == 0 {
		return 0
	}
	return float64(d.SearchLatencySum) / float64(d.SearchesResolved)
}

// Collect adds counters to s under prefix.
func (d *DNUCA) Collect(prefix string, s *stats.Set) {
	s.Add(prefix+".reads", d.Reads)
	s.Add(prefix+".writes", d.Writes)
	s.Add(prefix+".global_misses", d.GlobalMisses)
	s.Add(prefix+".fills", d.Fills)
	s.Add(prefix+".writebacks", d.Writebacks)
	s.Add(prefix+".bank_accesses", d.BankAccesses)
	s.Add(prefix+".promotions", d.Promotions)
	s.Add(prefix+".demotions", d.Demotions)
	s.Add(prefix+".net_flit_hops", d.mesh.FlitHops)
	s.Add(prefix+".net_msgs", d.mesh.MsgsDelivered)
	for r := 0; r < d.cfg.Rows; r++ {
		s.Add(fmt.Sprintf("%s.hits_row%d", prefix, r), d.HitsByRow[r])
	}
	s.SetScalar(prefix+".avg_search_latency", d.AvgSearchLatency())
}
