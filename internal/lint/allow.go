package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// AllowName is the synthetic analyzer name under which malformed
// //lnuca:allow directives are reported. It is always a known name, so
// a directive can even suppress directive-syntax findings — which the
// driver has no reason to ever do, but keeps the model uniform.
const AllowName = "allow"

// allowPrefix introduces a suppression directive comment.
const allowPrefix = "//lnuca:allow"

// allowRe parses "//lnuca:allow(name) reason": one analyzer name in
// parentheses, then a mandatory free-text reason.
var allowRe = regexp.MustCompile(`^//lnuca:allow\(([A-Za-z0-9_-]+)\)\s*(.*)$`)

// allowDirective is one parsed suppression: the analyzer it silences
// and the source span it covers. A directive written on (or directly
// above) a statement covers that line; written on the line of a func
// declaration — or in its doc comment — it covers the whole function.
type allowDirective struct {
	analyzer string
	file     string
	line     int // line the directive suppresses (the one after a standalone comment)
	funcSpan [2]int
}

type allowSet struct {
	directives []allowDirective
}

func (s *allowSet) covers(d Diagnostic) bool {
	for _, a := range s.directives {
		if a.analyzer != d.Analyzer || a.file != d.Pos.Filename {
			continue
		}
		if a.funcSpan[1] != 0 {
			if d.Pos.Line >= a.funcSpan[0] && d.Pos.Line <= a.funcSpan[1] {
				return true
			}
			continue
		}
		if d.Pos.Line == a.line {
			return true
		}
	}
	return false
}

// collectAllows parses every //lnuca:allow directive in the package.
// Malformed directives (missing reason, unknown analyzer name) become
// diagnostics of the "allow" analyzer: a suppression that cannot be
// trusted is itself a finding, so an unexplained allow can never hide
// anything.
func collectAllows(pkg *Package, known map[string]bool) (*allowSet, []Diagnostic) {
	set := &allowSet{}
	var diags []Diagnostic
	report := func(pos token.Position, format string, args ...any) {
		diags = append(diags, Diagnostic{Pos: pos, Analyzer: AllowName, Message: fmt.Sprintf(format, args...)})
	}
	for _, file := range pkg.Files {
		// Map comment positions to the functions that enclose them (or
		// that they document), for function-scoped suppression.
		funcSpans := map[*ast.CommentGroup][2]int{}
		inlineSpan := func(c *ast.Comment) [2]int {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fnLine := pkg.Fset.Position(fd.Pos()).Line
				if pkg.Fset.Position(c.Pos()).Line == fnLine {
					return [2]int{fnLine, pkg.Fset.Position(fd.End()).Line}
				}
			}
			return [2]int{}
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil && fd.Body != nil {
				funcSpans[fd.Doc] = [2]int{
					pkg.Fset.Position(fd.Pos()).Line,
					pkg.Fset.Position(fd.End()).Line,
				}
			}
		}
		for _, group := range file.Comments {
			span, isDoc := funcSpans[group]
			for _, c := range group.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					report(pos, "malformed suppression %q: want //lnuca:allow(analyzer) reason", text)
					continue
				}
				name, reason := m[1], strings.TrimSpace(m[2])
				if !known[name] {
					report(pos, "suppression names unknown analyzer %q", name)
					continue
				}
				if reason == "" {
					report(pos, "suppression of %q has no reason: every allow must say why", name)
					continue
				}
				d := allowDirective{analyzer: name, file: pos.Filename, line: pos.Line}
				if isDoc {
					d.funcSpan = span
				} else if fs := inlineSpan(c); fs[1] != 0 {
					// Directive written at the end of the func ... line:
					// scoped to the whole function.
					d.funcSpan = fs
				} else if standalone(pkg.Fset, file, c) {
					// A comment alone on its line suppresses the line below.
					d.line = pos.Line + 1
				}
				set.directives = append(set.directives, d)
			}
		}
	}
	return set, diags
}

// standalone reports whether comment c is the only thing on its line
// (no code shares the line), in which case it applies to the next line.
func standalone(fset *token.FileSet, file *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		// Only leaf-ish nodes matter; any node starting on the comment's
		// line before the comment's column means code shares the line.
		if fset.Position(n.Pos()).Line == line && n.Pos() < c.Pos() {
			found = true
			return false
		}
		return true
	})
	return !found
}
