package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// ObsNames returns the analyzer that enforces the observability layer's
// naming and cardinality contract at every internal/obs registry call
// site:
//
//   - metric names must be compile-time constants (a dynamic name
//     defeats grep, dashboards, and this very check),
//   - names match lnuca_[a-z0-9_]+ snake_case,
//   - counters end in _total; histograms end in a unit suffix
//     (_seconds, _bytes, _cycles, _ops, _total, _mips, _ratio),
//   - label names are literal snake_case, at most 4 per metric, and
//     never one of the unbounded-cardinality names (id, key, path,
//     url, ... — use a normalizer like orchestrator.RouteLabel).
//
// The same contract extends to the tracing layer's span taxonomy at
// every internal/obs/tracez call site:
//
//   - span names (Tracer.Start/StartAt, tracez.StartSpan/StartSpanAt)
//     must be compile-time constants matching lnuca(.segment)+ dotted
//     lowercase, so the taxonomy in DESIGN.md stays greppable and the
//     lnuca_spans_recorded_total{name} label set stays bounded,
//   - Span.SetAttr keys are literal snake_case and never one of the
//     unbounded-cardinality names — a job ID or content key in an attr
//     key would defeat the recorder's aggregation exactly like a
//     metric label would.
func ObsNames() *Analyzer {
	return &Analyzer{
		Name: "obsnames",
		Doc:  "enforce lnuca_* metric names, lnuca. span names, and label/attr cardinality rules at obs and tracez call sites",
		Run:  runObsNames,
	}
}

// obsRegistryMethods maps registry method names to the argument index
// of the metric name and the index where label names start (-1: none).
var obsRegistryMethods = map[string]struct {
	kind       string
	labelStart int
}{
	"Counter":      {"counter", -1},
	"CounterFunc":  {"counter", -1},
	"CounterVec":   {"counter", 2},
	"Gauge":        {"gauge", -1},
	"GaugeFunc":    {"gauge", -1},
	"Histogram":    {"histogram", -1},
	"HistogramVec": {"histogram", 3},
}

// spanStartFuncs are the tracez entry points whose second argument is a
// span name (methods on *tracez.Tracer and the ambient-context package
// functions share the (ctx, name, ...) shape).
var spanStartFuncs = map[string]bool{
	"Start": true, "StartAt": true, "StartSpan": true, "StartSpanAt": true,
}

var metricNameRe = regexp.MustCompile(`^lnuca(_[a-z0-9]+)+$`)
var labelNameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)
var spanNameRe = regexp.MustCompile(`^lnuca(\.[a-z0-9_]+)+$`)

// histogramUnits are accepted terminal suffixes for histogram names.
var histogramUnits = []string{"_seconds", "_bytes", "_cycles", "_ops", "_total", "_mips", "_ratio"}

// highCardinalityLabels are label names that in practice carry
// unbounded value sets; each series is a new timeseries, so these melt
// scrapes. Route-like values must pass through a normalizer first.
var highCardinalityLabels = map[string]bool{
	"id": true, "job_id": true, "key": true, "request_id": true,
	"path": true, "url": true, "query": true, "remote_addr": true,
	"addr": true, "user_agent": true, "trace": true, "trace_id": true,
}

// maxMetricLabels bounds the label schema: k labels with v values each
// is v^k series per family.
const maxMetricLabels = 4

func runObsNames(pass *Pass) error {
	// tracez's own trampolines (Start → StartAt, StartSpan → Start)
	// forward a caller-supplied name variable; the rule applies at the
	// instrumentation sites, not inside the tracing package itself.
	inTracez := isTracezPath(pass.Pkg.Path())
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if spanStartFuncs[sel.Sel.Name] && !inTracez && isTracezFunc(pass, sel) && len(call.Args) >= 2 {
				checkSpanName(pass, call.Args[1])
				return true
			}
			if sel.Sel.Name == "SetAttr" && !inTracez && isTracezFunc(pass, sel) && len(call.Args) >= 1 {
				checkSpanAttrKey(pass, call.Args[0])
				return true
			}
			spec, ok := obsRegistryMethods[sel.Sel.Name]
			if !ok || !isObsRegistryMethod(pass, sel) || len(call.Args) == 0 {
				return true
			}
			checkMetricName(pass, call, spec.kind)
			if spec.labelStart >= 0 {
				checkMetricLabels(pass, call, spec.labelStart)
			}
			return true
		})
	}
	return nil
}

// isObsRegistryMethod reports whether the selector resolves to a method
// of the obs metrics registry (matched by package: import path suffix
// "internal/obs", or a package simply named obs in golden tests).
func isObsRegistryMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return strings.HasSuffix(path, "internal/obs") || path == "obs"
}

// isTracezFunc reports whether the selector resolves to a function or
// method of the tracing package (import path suffix
// "internal/obs/tracez", or a package simply named tracez in golden
// tests).
func isTracezFunc(pass *Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return isTracezPath(fn.Pkg().Path())
}

// isTracezPath matches the tracing package by import path (or bare
// "tracez" for the golden-test stand-in).
func isTracezPath(path string) bool {
	return strings.HasSuffix(path, "internal/obs/tracez") || path == "tracez"
}

func checkSpanName(pass *Pass, arg ast.Expr) {
	name, ok := constString(pass, arg)
	if !ok {
		pass.Report(arg.Pos(), "span name must be a compile-time string constant so the taxonomy is greppable")
		return
	}
	if !spanNameRe.MatchString(name) {
		pass.Report(arg.Pos(), "span name %q must be lnuca.-prefixed dotted lowercase (lnuca(.[a-z0-9_]+)+)", name)
	}
}

func checkSpanAttrKey(pass *Pass, arg ast.Expr) {
	key, ok := constString(pass, arg)
	if !ok {
		pass.Report(arg.Pos(), "span attribute key must be a compile-time string constant")
		return
	}
	if !labelNameRe.MatchString(key) {
		pass.Report(arg.Pos(), "span attribute key %q must be lower snake_case", key)
		return
	}
	if highCardinalityLabels[key] {
		pass.Report(arg.Pos(), "span attribute key %q is unbounded-cardinality; the flight recorder already correlates spans by trace ID — drop the attr or rename it", key)
	}
}

// constString resolves an argument to its compile-time string value.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func checkMetricName(pass *Pass, call *ast.CallExpr, kind string) {
	arg := call.Args[0]
	name, ok := constString(pass, arg)
	if !ok {
		pass.Report(arg.Pos(), "metric name must be a compile-time string constant so the catalog is greppable")
		return
	}
	if !metricNameRe.MatchString(name) {
		pass.Report(arg.Pos(), "metric name %q must be lnuca_-prefixed snake_case (lnuca_[a-z0-9_]+)", name)
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Report(arg.Pos(), "counter %q must end in _total", name)
		}
	case "histogram":
		ok := false
		for _, u := range histogramUnits {
			if strings.HasSuffix(name, u) {
				ok = true
				break
			}
		}
		if !ok {
			pass.Report(arg.Pos(), "histogram %q must end in a unit suffix (%s)", name, strings.Join(histogramUnits, ", "))
		}
	}
}

func checkMetricLabels(pass *Pass, call *ast.CallExpr, start int) {
	if len(call.Args) <= start {
		return
	}
	labels := call.Args[start:]
	if len(labels) > maxMetricLabels {
		pass.Report(labels[maxMetricLabels].Pos(), "metric declares %d labels; more than %d multiplies series count beyond what a scrape can hold", len(labels), maxMetricLabels)
	}
	for _, l := range labels {
		name, ok := constString(pass, l)
		if !ok {
			pass.Report(l.Pos(), "label name must be a compile-time string constant")
			continue
		}
		if !labelNameRe.MatchString(name) {
			pass.Report(l.Pos(), "label name %q must be lower snake_case", name)
			continue
		}
		if highCardinalityLabels[name] {
			pass.Report(l.Pos(), "label %q is unbounded-cardinality; aggregate or normalize the value (e.g. orchestrator.RouteLabel) and rename the label", name)
		}
	}
}
