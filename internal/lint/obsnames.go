package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// ObsNames returns the analyzer that enforces the observability layer's
// naming and cardinality contract at every internal/obs registry call
// site:
//
//   - metric names must be compile-time constants (a dynamic name
//     defeats grep, dashboards, and this very check),
//   - names match lnuca_[a-z0-9_]+ snake_case,
//   - counters end in _total; histograms end in a unit suffix
//     (_seconds, _bytes, _cycles, _ops, _total, _mips, _ratio),
//   - label names are literal snake_case, at most 4 per metric, and
//     never one of the unbounded-cardinality names (id, key, path,
//     url, ... — use a normalizer like orchestrator.RouteLabel).
func ObsNames() *Analyzer {
	return &Analyzer{
		Name: "obsnames",
		Doc:  "enforce lnuca_* snake_case metric names and label-cardinality rules at obs registry call sites",
		Run:  runObsNames,
	}
}

// obsRegistryMethods maps registry method names to the argument index
// of the metric name and the index where label names start (-1: none).
var obsRegistryMethods = map[string]struct {
	kind       string
	labelStart int
}{
	"Counter":      {"counter", -1},
	"CounterFunc":  {"counter", -1},
	"CounterVec":   {"counter", 2},
	"Gauge":        {"gauge", -1},
	"GaugeFunc":    {"gauge", -1},
	"Histogram":    {"histogram", -1},
	"HistogramVec": {"histogram", 3},
}

var metricNameRe = regexp.MustCompile(`^lnuca(_[a-z0-9]+)+$`)
var labelNameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// histogramUnits are accepted terminal suffixes for histogram names.
var histogramUnits = []string{"_seconds", "_bytes", "_cycles", "_ops", "_total", "_mips", "_ratio"}

// highCardinalityLabels are label names that in practice carry
// unbounded value sets; each series is a new timeseries, so these melt
// scrapes. Route-like values must pass through a normalizer first.
var highCardinalityLabels = map[string]bool{
	"id": true, "job_id": true, "key": true, "request_id": true,
	"path": true, "url": true, "query": true, "remote_addr": true,
	"addr": true, "user_agent": true, "trace": true, "trace_id": true,
}

// maxMetricLabels bounds the label schema: k labels with v values each
// is v^k series per family.
const maxMetricLabels = 4

func runObsNames(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			spec, ok := obsRegistryMethods[sel.Sel.Name]
			if !ok || !isObsRegistryMethod(pass, sel) || len(call.Args) == 0 {
				return true
			}
			checkMetricName(pass, call, spec.kind)
			if spec.labelStart >= 0 {
				checkMetricLabels(pass, call, spec.labelStart)
			}
			return true
		})
	}
	return nil
}

// isObsRegistryMethod reports whether the selector resolves to a method
// of the obs metrics registry (matched by package: import path suffix
// "internal/obs", or a package simply named obs in golden tests).
func isObsRegistryMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return strings.HasSuffix(path, "internal/obs") || path == "obs"
}

// constString resolves an argument to its compile-time string value.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func checkMetricName(pass *Pass, call *ast.CallExpr, kind string) {
	arg := call.Args[0]
	name, ok := constString(pass, arg)
	if !ok {
		pass.Report(arg.Pos(), "metric name must be a compile-time string constant so the catalog is greppable")
		return
	}
	if !metricNameRe.MatchString(name) {
		pass.Report(arg.Pos(), "metric name %q must be lnuca_-prefixed snake_case (lnuca_[a-z0-9_]+)", name)
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Report(arg.Pos(), "counter %q must end in _total", name)
		}
	case "histogram":
		ok := false
		for _, u := range histogramUnits {
			if strings.HasSuffix(name, u) {
				ok = true
				break
			}
		}
		if !ok {
			pass.Report(arg.Pos(), "histogram %q must end in a unit suffix (%s)", name, strings.Join(histogramUnits, ", "))
		}
	}
}

func checkMetricLabels(pass *Pass, call *ast.CallExpr, start int) {
	if len(call.Args) <= start {
		return
	}
	labels := call.Args[start:]
	if len(labels) > maxMetricLabels {
		pass.Report(labels[maxMetricLabels].Pos(), "metric declares %d labels; more than %d multiplies series count beyond what a scrape can hold", len(labels), maxMetricLabels)
	}
	for _, l := range labels {
		name, ok := constString(pass, l)
		if !ok {
			pass.Report(l.Pos(), "label name must be a compile-time string constant")
			continue
		}
		if !labelNameRe.MatchString(name) {
			pass.Report(l.Pos(), "label name %q must be lower snake_case", name)
			continue
		}
		if highCardinalityLabels[name] {
			pass.Report(l.Pos(), "label %q is unbounded-cardinality; aggregate or normalize the value (e.g. orchestrator.RouteLabel) and rename the label", name)
		}
	}
}
