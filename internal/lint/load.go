package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// newInfo returns a types.Info with every map analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -e -deps -export -json` over patterns in dir and
// decodes the package stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := []string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,Module,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		q := p
		pkgs = append(pkgs, &q)
	}
	return pkgs, nil
}

// exportImporter satisfies go/types importing through the compiler's
// export data files discovered by `go list -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Load resolves patterns (e.g. "./...") relative to dir, type-checking
// each matched module package from source while importing dependencies
// from export data. Packages outside the main module (stdlib) are
// loaded as dependencies only, never analyzed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	// The -deps stream lists dependencies first and the named packages
	// last; module membership tells the analysis targets apart.
	exports := make(map[string]string, len(listed))
	var targets []*listedPkg
	for _, p := range listed {
		if p.Error != nil && p.Error.Err != "" {
			return nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
		}
		out = append(out, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return out, nil
}

// LoadVetPackage type-checks one package the way `go vet -vettool`
// describes it: an explicit file list plus an import-path→export-file
// map supplied by cmd/go's vet config.
func LoadVetPackage(importPath string, goFiles []string, packageFile map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	imp := exportImporter(fset, packageFile)
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: package %s has no Go files", importPath)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// stdExports memoizes the stdlib export-data map used by LoadDir (the
// testdata loader). It is built once per process by listing the
// standard library packages testdata is allowed to import, plus their
// transitive dependencies.
var stdExports struct {
	once sync.Once
	m    map[string]string
	err  error
}

// testdataStdlib is the stdlib surface available to testdata packages.
// Extend as golden files need more; `go list -deps` pulls transitive
// dependencies in automatically.
var testdataStdlib = []string{
	"fmt", "sort", "strings", "time", "math/rand", "strconv", "errors",
	"os", "encoding/json", "crypto/sha256", "encoding/hex", "context",
}

func loadStdExports() (map[string]string, error) {
	stdExports.once.Do(func() {
		listed, err := goList(".", testdataStdlib)
		if err != nil {
			stdExports.err = err
			return
		}
		m := make(map[string]string, len(listed))
		for _, p := range listed {
			if p.Export != "" {
				m[p.ImportPath] = p.Export
			}
		}
		stdExports.m = m
	})
	return stdExports.m, stdExports.err
}

// dirImporter type-checks testdata packages: an import path resolves
// first against root (GOPATH-style testdata/src layout, so golden
// packages can import fake "sim"/"obs" stand-ins), then against the
// stdlib export data.
type dirImporter struct {
	root  string
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*Package
}

func (di *dirImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(di.root, path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := di.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return di.std.Import(path)
}

func (di *dirImporter) load(importPath, dir string) (*Package, error) {
	if p, ok := di.cache[importPath]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(di.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := newInfo()
	conf := types.Config{Importer: di}
	tpkg, err := conf.Check(importPath, di.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &Package{Path: importPath, Dir: dir, Fset: di.fset, Files: files, Types: tpkg, Info: info}
	di.cache[importPath] = p
	return p, nil
}

// LoadDir type-checks one directory of Go files as a package named by
// importPath, resolving imports GOPATH-style against root (so testdata
// packages can import sibling stand-ins) and falling back to the
// standard library. This is the golden-test loader.
func LoadDir(root, importPath string) (*Package, error) {
	std, err := loadStdExports()
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	di := &dirImporter{
		root:  root,
		fset:  fset,
		std:   exportImporter(fset, std),
		cache: map[string]*Package{},
	}
	return di.load(importPath, filepath.Join(root, importPath))
}
