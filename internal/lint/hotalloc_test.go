package lint

import "testing"

func TestHotAllocGolden(t *testing.T) {
	RunGolden(t, "hot", HotAlloc())
}
