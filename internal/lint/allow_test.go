package lint

import (
	"strings"
	"testing"
)

// TestAllowGolden: well-formed directives silence exactly the named
// analyzer on exactly the covered span. HotAlloc is in the run so that
// "hotalloc" is a known name for the wrong-analyzer case.
func TestAllowGolden(t *testing.T) {
	RunGolden(t, "allowok", Determinism(), HotAlloc())
}

// TestAllowBad: a directive with a missing reason, an unknown analyzer
// name, or no parseable shape at all is itself a finding — and never
// suppresses the violation beneath it. (Asserted programmatically: a
// "// want" comment appended to a directive line would be captured as
// the directive's reason and change what is under test.)
func TestAllowBad(t *testing.T) {
	pkg, err := LoadDir("testdata/src", "allowbad")
	if err != nil {
		t.Fatalf("loading allowbad: %v", err)
	}
	diags, suppressed, err := Run([]*Package{pkg}, []*Analyzer{Determinism()})
	if err != nil {
		t.Fatal(err)
	}
	if suppressed != 0 {
		t.Errorf("broken directives suppressed %d finding(s), want 0", suppressed)
	}
	var allowMsgs, detCount int
	wantAllow := []string{
		`suppression of "determinism" has no reason`,
		`suppression names unknown analyzer "determinisim"`,
		`malformed suppression`,
	}
	seen := map[string]bool{}
	for _, d := range diags {
		switch d.Analyzer {
		case AllowName:
			allowMsgs++
			for _, w := range wantAllow {
				if strings.Contains(d.Message, w) {
					seen[w] = true
				}
			}
		case "determinism":
			detCount++
		}
	}
	if allowMsgs != len(wantAllow) {
		t.Errorf("got %d allow diagnostics, want %d: %v", allowMsgs, len(wantAllow), diags)
	}
	for _, w := range wantAllow {
		if !seen[w] {
			t.Errorf("no allow diagnostic matching %q", w)
		}
	}
	// All three time.Now reads must survive their broken directives.
	if detCount != 3 {
		t.Errorf("got %d determinism findings, want 3 (broken directives must not suppress)", detCount)
	}
}

// TestRepoAnalyzers: the configured suite constructs (manifest parses,
// all four analyzers present, names unique and usable in directives).
func TestRepoAnalyzers(t *testing.T) {
	as, err := RepoAnalyzers()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"hotalloc": true, "determinism": true, "schemastable": true, "obsnames": true}
	for _, a := range as {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		delete(want, a.Name)
	}
	for name := range want {
		t.Errorf("suite missing analyzer %q", name)
	}
}
