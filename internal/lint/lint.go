// Package lint is the repository's static-analysis suite: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis that
// machine-checks the invariants the simulator's tests only catch after
// the fact — the 0 allocs/cycle hot loop (PR 4), bit-identical
// determinism for content-addressed caching and trace replay (PRs 3/5),
// the frozen lnuca-run-v1 / lnuca-job-v2 / lnuca-trace-v1 schemas, and
// the lnuca_* metric naming rules of the observability layer.
//
// The API mirrors go/analysis on purpose (Analyzer, Pass, Diagnostic,
// "// want" golden tests) so that, should the x/tools dependency ever
// become available, the analyzers port mechanically. Packages are
// loaded with `go list -export -json`: the target package is
// type-checked from source while its dependencies are imported from the
// compiler's export data, exactly the unitchecker split — fast, and
// fully offline.
//
// Findings are suppressed, never silently, with
//
//	//lnuca:allow(analyzer) reason
//
// directives (see allow.go). A directive with a missing reason or an
// unknown analyzer name is itself a lint error.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. Run inspects a single type-checked
// package through the Pass and reports findings via Pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lnuca:allow(name) suppressions. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check. A non-nil error aborts the whole lint run
	// (it means the analyzer itself failed, not that code is bad).
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Report records a finding. The driver attributes it to
	// Pass.Analyzer and applies //lnuca:allow suppression afterwards.
	Report func(pos token.Pos, format string, args ...any)
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics, sorted by position: suppression directives have been
// applied, and any malformed directive (missing reason, unknown
// analyzer) has been converted into a diagnostic of the synthetic
// "allow" analyzer. Suppressed counts the findings silenced by valid
// directives, so callers can surface how much is being allowed.
func Run(pkgs []*Package, analyzers []*Analyzer) (diags []Diagnostic, suppressed int, err error) {
	known := make(map[string]bool, len(analyzers)+1)
	known[AllowName] = true
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			a := a
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.Report = func(pos token.Pos, format string, args ...any) {
				raw = append(raw, Diagnostic{
					Pos:      pkg.Fset.Position(pos),
					Analyzer: a.Name,
					Message:  fmt.Sprintf(format, args...),
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, 0, fmt.Errorf("lint: analyzer %s failed on %s: %w", a.Name, pkg.Path, err)
			}
		}
		allows, allowDiags := collectAllows(pkg, known)
		diags = append(diags, allowDiags...)
		for _, d := range raw {
			if allows.covers(d) {
				suppressed++
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, suppressed, nil
}
