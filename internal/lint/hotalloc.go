package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// HotAlloc returns the analyzer that statically backs the
// hier.BenchmarkStepAllocs 0 allocs/cycle pin: inside any function
// reachable from the sim.Component / sim.Quiescent hot path (Eval,
// Commit, NextEvent, SkipTo, and the kernel's Step/Run), it flags the
// constructs that heap-allocate or hash on every cycle — make/new,
// append growth, reference composite literals, closures, fmt calls,
// interface boxing conversions, string concatenation, and map
// iteration.
//
// Hot roots are recognized structurally, not by import: a method named
// Eval/Commit/NextEvent/SkipTo whose receiver also declares both Eval
// and Commit (i.e. is Component-shaped), or a Step/Run method on a type
// named Kernel. Reachability is the static call graph within the
// package, with interface calls resolved to every local implementation.
func HotAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "forbid per-cycle heap allocations and map hashing in functions reachable from the simulation hot path",
		Run:  runHotAlloc,
	}
}

// hotRootNames are the hot-path entry methods of the kernel protocol.
var hotRootNames = map[string]bool{
	"Eval": true, "Commit": true, "NextEvent": true, "SkipTo": true,
}

func runHotAlloc(pass *Pass) error {
	decls := packageFuncDecls(pass)

	// Seed the worklist with the hot roots.
	type item struct {
		fn   *types.Func
		root string // display name of the root that made it hot
	}
	var work []item
	for fn := range decls {
		recv := recvNamed(fn)
		if recv == nil {
			continue
		}
		switch {
		case hotRootNames[fn.Name()] && componentShaped(recv):
			work = append(work, item{fn, recv.Obj().Name() + "." + fn.Name()})
		case (fn.Name() == "Step" || fn.Name() == "Run") && recv.Obj().Name() == "Kernel":
			work = append(work, item{fn, recv.Obj().Name() + "." + fn.Name()})
		}
	}
	sort.Slice(work, func(i, j int) bool { return work[i].root < work[j].root })

	// Breadth-first closure over package-local static calls, keeping the
	// first root that reached each function for the diagnostic text.
	rootOf := map[*types.Func]string{}
	for len(work) > 0 {
		it := work[0]
		work = work[1:]
		if _, seen := rootOf[it.fn]; seen {
			continue
		}
		rootOf[it.fn] = it.root
		for _, callee := range localCallees(pass, decls[it.fn], decls) {
			if _, seen := rootOf[callee]; !seen {
				work = append(work, item{callee, it.root})
			}
		}
	}

	for fn, decl := range decls {
		root, hot := rootOf[fn]
		if !hot {
			continue
		}
		checkHotBody(pass, decl, fn, root)
	}
	return nil
}

// packageFuncDecls maps every function object defined in the package to
// its declaration.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// recvNamed returns the named receiver type of a method (nil for plain
// functions), unwrapping a pointer receiver.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// componentShaped reports whether the type's method set contains both
// Eval and Commit — the structural signature of a sim.Component.
func componentShaped(named *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	return ms.Lookup(named.Obj().Pkg(), "Eval") != nil && ms.Lookup(named.Obj().Pkg(), "Commit") != nil
}

// localCallees resolves the static callees of decl that are defined in
// this package. Calls through interface methods fan out to every local
// concrete method implementing them.
func localCallees(pass *Pass, decl *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) []*types.Func {
	var out []*types.Func
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var obj types.Object
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			obj = pass.Info.Uses[fun]
		case *ast.SelectorExpr:
			obj = pass.Info.Uses[fun.Sel]
		}
		fn, ok := obj.(*types.Func)
		if !ok {
			return true
		}
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			if iface, ok := recv.Type().Underlying().(*types.Interface); ok {
				// Dynamic dispatch: every local method with this name on
				// a type implementing the interface is a possible callee.
				for cand := range decls {
					if cand.Name() != fn.Name() {
						continue
					}
					named := recvNamed(cand)
					if named == nil {
						continue
					}
					if types.Implements(types.NewPointer(named), iface) || types.Implements(named, iface) {
						out = append(out, cand)
					}
				}
				return true
			}
		}
		if fn.Pkg() == pass.Pkg {
			if _, local := decls[fn]; local {
				out = append(out, fn)
			}
		}
		return true
	})
	return out
}

// checkHotBody flags every allocation-shaped construct in one hot
// function.
func checkHotBody(pass *Pass, decl *ast.FuncDecl, fn *types.Func, root string) {
	where := fmt.Sprintf("%s (hot: reachable from %s)", fn.Name(), root)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			pass.Report(node.Pos(), "closure literal in %s allocates per construction", where)
			return false // the closure body runs elsewhere
		case *ast.CallExpr:
			checkHotCall(pass, node, where)
		case *ast.CompositeLit:
			t := pass.Info.Types[node].Type
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Report(node.Pos(), "slice literal in %s allocates", where)
			case *types.Map:
				pass.Report(node.Pos(), "map literal in %s allocates", where)
			}
		case *ast.UnaryExpr:
			if node.Op.String() == "&" {
				if _, ok := node.X.(*ast.CompositeLit); ok {
					pass.Report(node.Pos(), "&composite literal in %s escapes to the heap", where)
				}
			}
		case *ast.RangeStmt:
			if t := pass.Info.Types[node.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Report(node.Pos(), "map iteration in %s hashes every cycle and has nondeterministic order", where)
				}
			}
		case *ast.BinaryExpr:
			if node.Op.String() == "+" {
				if t := pass.Info.Types[node].Type; t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Report(node.Pos(), "string concatenation in %s allocates", where)
					}
				}
			}
		case *ast.GoStmt:
			pass.Report(node.Pos(), "goroutine launch in %s allocates and breaks cycle determinism", where)
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr, where string) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Report(call.Pos(), "make in %s allocates", where)
			case "new":
				pass.Report(call.Pos(), "new in %s allocates", where)
			case "append":
				pass.Report(call.Pos(), "append in %s may grow its backing array", where)
			}
		}
	case *ast.SelectorExpr:
		obj := pass.Info.Uses[fun.Sel]
		if f, ok := obj.(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
			pass.Report(call.Pos(), "fmt.%s in %s allocates and boxes its arguments", f.Name(), where)
		}
	}
	// Explicit interface conversion: Iface(x) boxes x.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			if at := pass.Info.Types[call.Args[0]].Type; at != nil {
				if _, argIface := at.Underlying().(*types.Interface); !argIface {
					pass.Report(call.Pos(), "interface conversion in %s boxes its operand", where)
				}
			}
		}
	}
}
