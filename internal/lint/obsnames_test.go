package lint

import "testing"

func TestObsNamesGolden(t *testing.T) {
	RunGolden(t, "obsnames", ObsNames())
}

func TestSpanNamesGolden(t *testing.T) {
	RunGolden(t, "spannames", ObsNames())
}
