package lint

import "testing"

func TestObsNamesGolden(t *testing.T) {
	RunGolden(t, "obsnames", ObsNames())
}
