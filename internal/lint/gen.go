package lint

// Regenerate the committed schema manifest from the current source.
// Run after a *deliberate* schema change — one that also bumped the
// schema version string — never to make a red schemastable finding go
// away while keeping the old version name. CI re-runs this and fails
// if the committed schemas.json is stale.
//
//go:generate go run repro/cmd/lnucalint -write-schemas schemas.json
