// Package allowok proves the suppression grammar: a well-formed
// //lnuca:allow(analyzer) reason silences exactly the named analyzer on
// exactly the covered span — and nothing else.
package allowok

import "time"

// stampDoc shows func-scoped suppression from the doc comment: every
// finding of the named analyzer inside the function is covered.
//
//lnuca:allow(determinism) wall time feeds log output only, never results
func stampDoc() (int64, int64) {
	a := time.Now().Unix()
	b := time.Now().Unix()
	return a, b
}

func stampLine() int64 {
	//lnuca:allow(determinism) logged only, not part of any result
	return time.Now().Unix()
}

func stampInline() int64 {
	return time.Now().Unix() //lnuca:allow(determinism) logged only, not part of any result
}

// wrongAnalyzer carries a valid directive for a different analyzer: the
// determinism finding must survive.
func wrongAnalyzer() int64 {
	//lnuca:allow(hotalloc) this names the wrong analyzer on purpose
	return time.Now().Unix() // want `time.Now reads the wall clock`
}

// nextLineOnly: a standalone directive covers one line, not the whole
// block — the second read must survive.
func nextLineOnly() (int64, int64) {
	//lnuca:allow(determinism) first read is telemetry
	a := time.Now().Unix()
	b := time.Now().Unix() // want `time.Now reads the wall clock`
	return a, b
}
