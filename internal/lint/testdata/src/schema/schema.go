// Package schema exercises the schemastable analyzer against a
// manifest built in schemastable_test.go: Stable/Key/keySchema match
// the manifest, Drifted deliberately renames a keyed field, minor
// deliberately drifts a frozen constant, and the "test-missing" spec
// has no manifest entry at all (reported on the package clause below).
package schema // want `schema test-missing has no manifest entry`

import "fmt"

const keySchema = "test-v1"

const minor = 3 // want `const minor = 3 drifted from manifest value 2`

// Stable matches its committed fingerprint exactly.
type Stable struct {
	A int    `json:"a"`
	B string `json:"b"`
}

// Drifted renames the manifest's `B int json:"b"` field: the break the
// analyzer exists to catch.
type Drifted struct { // want `struct Drifted drifted from the committed manifest`
	A int `json:"a"`
	C int `json:"c"`
}

// Key's format literal is part of the fingerprint.
func Key(a int) string {
	return fmt.Sprintf("%s|a=%d", keySchema, a)
}
