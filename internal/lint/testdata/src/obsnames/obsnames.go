// Package obsnames exercises the obsnames analyzer against the obs
// stand-in registry.
package obsnames

import "obs"

var dynamic = "lnuca_dynamic_total"

func register(r *obs.Registry) {
	// Compliant declarations: no findings.
	r.Counter("lnuca_jobs_total", "jobs accepted")
	r.Gauge("lnuca_queue_depth", "queued jobs")
	r.Histogram("lnuca_run_seconds", "run latency", nil)
	r.CounterVec("lnuca_http_requests_total", "requests", "method", "route", "code")
	r.HistogramVec("lnuca_http_request_seconds", "latency", nil, "method", "route")

	r.Counter("jobs_total", "x")               // want `metric name "jobs_total" must be lnuca_-prefixed snake_case`
	r.Counter("lnuca_jobs", "x")               // want `counter "lnuca_jobs" must end in _total`
	r.Counter(dynamic, "x")                    // want `metric name must be a compile-time string constant`
	r.Gauge("lnuca_Queue", "x")                // want `must be lnuca_-prefixed snake_case`
	r.Histogram("lnuca_run_latency", "x", nil) // want `histogram "lnuca_run_latency" must end in a unit suffix`

	r.CounterVec("lnuca_a_total", "x", "job_id")                // want `label "job_id" is unbounded-cardinality`
	r.CounterVec("lnuca_b_total", "x", "Method")                // want `label name "Method" must be lower snake_case`
	r.CounterVec("lnuca_c_total", "x", "a", "b", "c", "d", "e") // want `metric declares 5 labels`
	r.HistogramVec("lnuca_d_seconds", "x", nil, "path")         // want `label "path" is unbounded-cardinality`
}
