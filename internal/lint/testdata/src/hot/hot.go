// Package hot exercises the hotalloc analyzer: Pump is
// Component-shaped (Eval+Commit), so everything reachable from its
// Eval/Commit/NextEvent/SkipTo — and from Kernel.Step/Run — is hot;
// Setup is cold and may allocate freely.
package hot

import "fmt"

type req struct{ id int }

type Pump struct {
	q    []int
	tick int
	m    map[int]int
	out  []*req
}

func (p *Pump) Eval() {
	p.q = append(p.q, p.tick) // want `append in Eval .* may grow its backing array`
	buf := make([]int, 4)     // want `make in Eval .* allocates`
	_ = buf
	p.fill()
}

func (p *Pump) Commit() {
	p.tick++
	f := func() int { return p.tick } // want `closure literal in Commit .* allocates per construction`
	_ = f
}

// fill is hot only transitively, through Eval's call.
func (p *Pump) fill() {
	p.out = append(p.out, &req{id: p.tick}) // want `append in fill .*` `&composite literal in fill .* escapes to the heap`
	for k := range p.m {                    // want `map iteration in fill .* hashes every cycle`
		_ = k
	}
}

// SkipTo is the Quiescent fast-forward hook: a deliberate break showing
// that allocations hiding in the skip path are caught too.
func (p *Pump) SkipTo(target int) {
	label := "skip" + fmt.Sprint(target) // want `string concatenation in SkipTo .* allocates` `fmt.Sprint in SkipTo .* allocates and boxes`
	_ = label
	p.tick = target
}

// Setup is cold: identical constructs, zero findings.
func Setup() *Pump {
	return &Pump{m: map[int]int{}, q: make([]int, 0, 8)}
}

type Kernel struct {
	comps []*Pump
}

func (k *Kernel) Step() {
	for _, c := range k.comps {
		c.Eval()
	}
	s := new(int) // want `new in Step .* allocates`
	_ = s
}

// Tuner has an Eval but no Commit: not Component-shaped, so its Eval is
// not a hot root and may allocate.
type Tuner struct{}

func (t *Tuner) Eval() []int {
	return make([]int, 16)
}
