// Package allowbad holds deliberately broken suppression directives.
// Checked programmatically (allow_test.go), not via // want
// annotations: a want comment appended to a directive line would become
// part of the directive's reason text and change what is under test.
package allowbad

import "time"

// missingReason: a bare directive must not suppress anything; both the
// directive and the finding it failed to cover are reported.
func missingReason() int64 {
	//lnuca:allow(determinism)
	return time.Now().Unix()
}

// unknownAnalyzer: a typo'd analyzer name is a finding, and the
// directive is inert.
func unknownAnalyzer() int64 {
	//lnuca:allow(determinisim) timestamps are fine here
	return time.Now().Unix()
}

// malformed: no parenthesized analyzer at all.
func malformed() int64 {
	//lnuca:allow determinism reason text
	return time.Now().Unix()
}
