// Package spannames exercises the obsnames analyzer's span-name and
// span-attribute rules against the tracez stand-in.
package spannames

import (
	"context"
	"time"
	"tracez"
)

var dynamicName = "lnuca.orch.run"

func spans(tr *tracez.Tracer, ctx context.Context) {
	// Compliant call sites: no findings.
	s, ctx := tr.Start(ctx, "lnuca.orch.submit")
	s.SetAttr("benchmark", "403.gcc")
	s.SetAttr("worker", "w1")
	s2, _ := tr.StartAt(ctx, "lnuca.worker.leasewait", time.Time{})
	s2.Finish()
	s3, _ := tracez.StartSpan(ctx, "lnuca.run.measure")
	s3.Finish()
	s4, _ := tracez.StartSpanAt(ctx, "lnuca.run.build", time.Time{})
	s4.Finish()

	tr.Start(ctx, "orch.submit")                           // want `span name "orch.submit" must be lnuca.-prefixed dotted lowercase`
	tr.Start(ctx, "lnuca")                                 // want `span name "lnuca" must be lnuca.-prefixed dotted lowercase`
	tr.Start(ctx, dynamicName)                             // want `span name must be a compile-time string constant`
	tracez.StartSpan(ctx, "lnuca.Orch.X")                  // want `must be lnuca.-prefixed dotted lowercase`
	tracez.StartSpanAt(ctx, "lnuca_orch_run", time.Time{}) // want `must be lnuca.-prefixed dotted lowercase`

	s.SetAttr("job_id", "job-000001") // want `span attribute key "job_id" is unbounded-cardinality`
	s.SetAttr("trace_id", "abc")      // want `span attribute key "trace_id" is unbounded-cardinality`
	s.SetAttr("Status", "ok")         // want `span attribute key "Status" must be lower snake_case`
	s.SetAttr(dynamicName, "v")       // want `span attribute key must be a compile-time string constant`
}
