// Package det exercises the determinism analyzer: wall-clock reads,
// global RNG draws, and order-dependent map iteration are findings;
// seeded generators and commutative loop bodies are not.
package det

import (
	"math/rand"
	"sort"
	"time"
)

func stamp() int64 {
	return time.Now().Unix() // want `time.Now reads the wall clock`
}

func pause() {
	t := time.NewTimer(0) // want `time.NewTimer reads the wall clock`
	_ = t
}

func draw() int {
	return rand.Int() // want `rand.Int draws from the global RNG`
}

// seeded is the approved pattern: a local generator with a fixed seed.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Int()
}

func keysUnsorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want `appends to out in iteration order without sorting`
		out = append(out, k)
	}
	return out
}

// keysSorted appends in map order but sorts before anyone can observe
// the order: clean.
func keysSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sum is commutative: compound numeric updates pass.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// copyInto writes through the loop's own key: commutes.
func copyInto(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

func first(m map[string]int) string {
	for k := range m { // want `returns early`
		return k
	}
	return ""
}

// anyKey is the fast-forward shape that motivated the check: whichever
// key the hash order serves last wins.
func anyKey(m map[string]int) (k string) {
	for key := range m { // want `overwrites k`
		k = key
	}
	return
}
