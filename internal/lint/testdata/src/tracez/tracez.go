// Package tracez is a minimal stand-in for repro/internal/obs/tracez
// so the spannames golden package can call span entry points with the
// real signatures. The analyzer matches it by package path ("tracez").
package tracez

import (
	"context"
	"time"
)

type Span struct{}

func (s *Span) SetAttr(key, value string) {}
func (s *Span) Finish()                   {}

type Tracer struct{}

func New() *Tracer { return &Tracer{} }

func (t *Tracer) Start(ctx context.Context, name string) (*Span, context.Context) {
	return &Span{}, ctx
}

func (t *Tracer) StartAt(ctx context.Context, name string, at time.Time) (*Span, context.Context) {
	return &Span{}, ctx
}

func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	return &Span{}, ctx
}

func StartSpanAt(ctx context.Context, name string, at time.Time) (*Span, context.Context) {
	return &Span{}, ctx
}
