// Package obs is a minimal stand-in for repro/internal/obs so the
// obsnames golden package can call registry methods with the real
// signatures. The analyzer matches it by package path ("obs").
package obs

type Counter struct{}

func (c *Counter) Add(n uint64) {}

type Registry struct{}

func New() *Registry { return &Registry{} }

func (r *Registry) Counter(name, help string) *Counter             { return &Counter{} }
func (r *Registry) CounterFunc(name, help string, f func() uint64) {}
func (r *Registry) CounterVec(name, help string, labels ...string) {}
func (r *Registry) Gauge(name, help string) *Counter               { return &Counter{} }
func (r *Registry) GaugeFunc(name, help string, f func() float64)  {}
func (r *Registry) Histogram(name, help string, buckets []float64) {}
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) {
}
