package lint

import (
	_ "embed"
)

// schemasJSON is the committed schema manifest. Regenerate with
// `go generate ./internal/lint` after a deliberate, version-bumped
// schema change.
//
//go:embed schemas.json
var schemasJSON []byte

// DeterminismPackages is the audited set: every package whose behaviour
// feeds simulation results, content-addressed keys (lnuca-job-v2),
// trace identities (lnuca-trace-v1), or stats that land in cache
// entries. Wall-clock telemetry in these packages must carry an
// explicit //lnuca:allow(determinism) with its reason.
func DeterminismPackages() []string {
	return []string{
		"repro/internal/sim",
		"repro/internal/cpu",
		"repro/internal/cache",
		"repro/internal/dnuca",
		"repro/internal/mem",
		"repro/internal/noc",
		"repro/internal/hier",
		"repro/internal/exp",
		"repro/internal/trace",
		"repro/internal/lnuca",
		"repro/internal/stats",
		"repro/internal/workload",
		"repro/internal/orchestrator",
		"repro/internal/power",
		"repro/internal/nocpower",
		"repro/internal/sram",
		"repro/internal/area",
		"repro/internal/tech",
		"repro/internal/timing",
		"repro/internal/fleet",
		"repro/internal/pqueue",
		"repro/internal/faultinject",
		"repro/internal/atomicfile",
	}
}

// RepoSchemaSpecs names the code behind the three frozen schemas.
func RepoSchemaSpecs() []SchemaSpec {
	return []SchemaSpec{
		{
			// The declarative run schema every front-end shares (PR 3).
			Schema:  "lnuca-run-v1",
			Pkg:     "repro/internal/orchestrator",
			Structs: []string{"Request", "SweepRequest"},
			Consts:  []string{"RequestSchema"},
		},
		{
			// The content-key schema of the result cache (PR 2): the Job
			// field set, the canon format strings in Job.Key, and the
			// JobResult shape stored in cache entries.
			Schema:  "lnuca-job-v2",
			Pkg:     "repro/internal/orchestrator",
			Structs: []string{"Job", "JobResult"},
			Funcs:   []string{"Job.Key"},
			Consts:  []string{"keySchema"},
		},
		{
			// The trace capture format (PR 5): header provenance fields,
			// the content-hash canon string, magic line and version.
			Schema:  "lnuca-trace-v1",
			Pkg:     "repro/internal/trace",
			Structs: []string{"Header"},
			Funcs:   []string{"contentHash"},
			Consts:  []string{"Schema", "magic"},
		},
	}
}

// RepoAnalyzers returns the full suite configured for this repository.
func RepoAnalyzers() ([]*Analyzer, error) {
	manifest, err := ParseManifest(schemasJSON)
	if err != nil {
		return nil, err
	}
	return []*Analyzer{
		HotAlloc(),
		Determinism(DeterminismPackages()...),
		SchemaStable(manifest, RepoSchemaSpecs()),
		ObsNames(),
	}, nil
}
