package lint

import "testing"

func TestDeterminismGolden(t *testing.T) {
	RunGolden(t, "det", Determinism("det"))
}

// TestDeterminismPathScope: a package outside the configured path set is
// never analyzed, however many violations it holds.
func TestDeterminismPathScope(t *testing.T) {
	pkg, err := LoadDir("testdata/src", "det")
	if err != nil {
		t.Fatalf("loading det: %v", err)
	}
	diags, _, err := Run([]*Package{pkg}, []*Analyzer{Determinism("somewhere/else")})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("determinism scoped to another path reported %d findings, want 0: %v", len(diags), diags)
	}
}
