package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// SchemaSpec names the code behind one frozen wire/key schema: the
// structs whose serialized shape, the functions whose key/format
// strings, and the constants whose values must not drift without a
// deliberate version bump.
type SchemaSpec struct {
	// Schema is the version string the fingerprint protects
	// ("lnuca-job-v2", ...). It is the manifest key.
	Schema string
	// Pkg is the import path (matched exactly or by suffix) of the
	// package defining the schema.
	Pkg string
	// Structs are type names whose field set, types, and json tags are
	// part of the schema.
	Structs []string
	// Funcs are functions ("Key") or methods ("Job.Key") whose
	// format/key string literals are part of the schema — any literal
	// in their bodies containing a '%' verb or a '|' separator.
	Funcs []string
	// Consts are package constants whose values are part of the schema.
	Consts []string
}

// SchemaFingerprint is the canonical shape of one schema, as stored in
// the manifest and as recomputed from source.
type SchemaFingerprint struct {
	Structs map[string][]string `json:"structs,omitempty"` // type -> field lines
	Formats map[string][]string `json:"formats,omitempty"` // func -> format literals, in source order
	Consts  map[string]string   `json:"consts,omitempty"`  // const -> value
}

// SchemaManifest maps schema names to committed fingerprints; it is the
// parsed form of internal/lint/schemas.json.
type SchemaManifest map[string]*SchemaFingerprint

// ParseManifest decodes a schemas.json document.
func ParseManifest(data []byte) (SchemaManifest, error) {
	var m SchemaManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("lint: parsing schema manifest: %w", err)
	}
	return m, nil
}

// SchemaStable returns the analyzer that recomputes every SchemaSpec
// fingerprint from the type-checked source and fails when it differs
// from the committed manifest: renaming a keyed field, changing a json
// tag, or editing a key format string is caught at vet time, before any
// stale cache entry or foreign decoder can misread it. Legitimate
// changes bump the schema version and regenerate the manifest
// (go generate ./internal/lint).
func SchemaStable(manifest SchemaManifest, specs []SchemaSpec) *Analyzer {
	return &Analyzer{
		Name: "schemastable",
		Doc:  "freeze the serialized shape of versioned schemas against the committed manifest",
		Run: func(pass *Pass) error {
			for _, spec := range specs {
				if !pathMatches(pass.Pkg.Path(), []string{spec.Pkg}) {
					continue
				}
				checkSchema(pass, spec, manifest[spec.Schema])
			}
			return nil
		},
	}
}

// Fingerprint computes the current fingerprint of one spec from a
// loaded package. Shared by the analyzer and the -write-schemas
// generator.
func Fingerprint(pkg *Package, spec SchemaSpec) (*SchemaFingerprint, error) {
	pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info}
	fp := &SchemaFingerprint{
		Structs: map[string][]string{},
		Formats: map[string][]string{},
		Consts:  map[string]string{},
	}
	for _, name := range spec.Structs {
		lines, _, err := structLines(pass, name)
		if err != nil {
			return nil, err
		}
		fp.Structs[name] = lines
	}
	for _, name := range spec.Funcs {
		lits, _, err := formatLiterals(pass, name)
		if err != nil {
			return nil, err
		}
		fp.Formats[name] = lits
	}
	for _, name := range spec.Consts {
		v, _, err := constValue(pass, name)
		if err != nil {
			return nil, err
		}
		fp.Consts[name] = v
	}
	return fp, nil
}

// checkSchema compares the recomputed fingerprint against the manifest
// entry, reporting one precise diagnostic per drifted element.
func checkSchema(pass *Pass, spec SchemaSpec, want *SchemaFingerprint) {
	pos := func(p token.Pos) token.Pos {
		if p != token.NoPos {
			return p
		}
		if len(pass.Files) > 0 {
			return pass.Files[0].Pos()
		}
		return token.NoPos
	}
	if want == nil {
		pass.Report(pos(token.NoPos), "schema %s has no manifest entry; regenerate with `go generate ./internal/lint`", spec.Schema)
		return
	}
	for _, name := range spec.Structs {
		lines, at, err := structLines(pass, name)
		if err != nil {
			pass.Report(pos(at), "schema %s: %v (renamed or removed? bump the schema version and regenerate the manifest)", spec.Schema, err)
			continue
		}
		reportDrift(pass, pos(at), spec.Schema, "struct "+name, want.Structs[name], lines)
	}
	for _, name := range spec.Funcs {
		lits, at, err := formatLiterals(pass, name)
		if err != nil {
			pass.Report(pos(at), "schema %s: %v", spec.Schema, err)
			continue
		}
		reportDrift(pass, pos(at), spec.Schema, "key/format strings of "+name, want.Formats[name], lits)
	}
	for _, name := range spec.Consts {
		v, at, err := constValue(pass, name)
		if err != nil {
			pass.Report(pos(at), "schema %s: %v", spec.Schema, err)
			continue
		}
		if w := want.Consts[name]; w != v {
			pass.Report(pos(at), "schema %s: const %s = %s drifted from manifest value %s; bump the schema version and regenerate the manifest", spec.Schema, name, v, w)
		}
	}
}

// reportDrift diffs two ordered line sets and reports what changed.
func reportDrift(pass *Pass, at token.Pos, schema, what string, want, got []string) {
	if reflect.DeepEqual(want, got) {
		return
	}
	wantSet := map[string]bool{}
	for _, w := range want {
		wantSet[w] = true
	}
	gotSet := map[string]bool{}
	for _, g := range got {
		gotSet[g] = true
	}
	var added, removed []string
	for _, g := range got {
		if !wantSet[g] {
			added = append(added, g)
		}
	}
	for _, w := range want {
		if !gotSet[w] {
			removed = append(removed, w)
		}
	}
	detail := ""
	switch {
	case len(added) > 0 && len(removed) > 0:
		detail = fmt.Sprintf(": +{%s} -{%s}", strings.Join(added, "; "), strings.Join(removed, "; "))
	case len(added) > 0:
		detail = fmt.Sprintf(": +{%s}", strings.Join(added, "; "))
	case len(removed) > 0:
		detail = fmt.Sprintf(": -{%s}", strings.Join(removed, "; "))
	default:
		detail = " (order changed)"
	}
	pass.Report(at, "schema %s: %s drifted from the committed manifest%s — bump the schema version or `go generate ./internal/lint`", schema, what, detail)
}

// structLines renders the serialized shape of a named struct: one line
// per field with name, type (package-qualified), and json tag.
func structLines(pass *Pass, name string) ([]string, token.Pos, error) {
	obj := pass.Pkg.Scope().Lookup(name)
	if obj == nil {
		return nil, token.NoPos, fmt.Errorf("struct %s not found in %s", name, pass.Pkg.Path())
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, obj.Pos(), fmt.Errorf("%s is not a struct", name)
	}
	qual := func(p *types.Package) string { return p.Name() }
	lines := make([]string, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		lines = append(lines, fmt.Sprintf("%s %s json:%q", f.Name(), types.TypeString(f.Type(), qual), tag))
	}
	return lines, obj.Pos(), nil
}

// formatLiterals collects, in source order, every string literal inside
// the named function's body that looks like a key or format string
// (contains a '%' verb or a '|' separator). name is "Func" or
// "Recv.Method".
func formatLiterals(pass *Pass, name string) ([]string, token.Pos, error) {
	recv, fname := "", name
	if i := strings.IndexByte(name, '.'); i >= 0 {
		recv, fname = name[:i], name[i+1:]
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != fname || fd.Body == nil {
				continue
			}
			if recv != "" {
				fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				named := recvNamed(fn)
				if named == nil || named.Obj().Name() != recv {
					continue
				}
			} else if fd.Recv != nil {
				continue
			}
			var lits []string
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				bl, ok := n.(*ast.BasicLit)
				if !ok || bl.Kind != token.STRING {
					return true
				}
				if tv, ok := pass.Info.Types[bl]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
					s := constant.StringVal(tv.Value)
					if strings.ContainsAny(s, "%|") {
						lits = append(lits, s)
					}
				}
				return true
			})
			return lits, fd.Pos(), nil
		}
	}
	return nil, token.NoPos, fmt.Errorf("function %s not found in %s", name, pass.Pkg.Path())
}

// constValue returns the value of a package constant as a string
// (exact: never the truncated display form).
func constValue(pass *Pass, name string) (string, token.Pos, error) {
	obj := pass.Pkg.Scope().Lookup(name)
	c, ok := obj.(*types.Const)
	if !ok {
		return "", token.NoPos, fmt.Errorf("const %s not found in %s", name, pass.Pkg.Path())
	}
	if c.Val().Kind() == constant.String {
		return constant.StringVal(c.Val()), obj.Pos(), nil
	}
	return c.Val().ExactString(), obj.Pos(), nil
}

// WriteManifest renders a manifest as stable, indented JSON (sorted
// keys via encoding/json's map ordering) for committing to
// internal/lint/schemas.json.
func WriteManifest(m SchemaManifest) ([]byte, error) {
	// Keep deterministic output: encoding/json sorts map keys.
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// BuildManifest computes the manifest for every spec from the loaded
// packages. A spec whose package is not among pkgs is an error — the
// generator must see everything it freezes.
func BuildManifest(pkgs []*Package, specs []SchemaSpec) (SchemaManifest, error) {
	m := SchemaManifest{}
	for _, spec := range specs {
		var pkg *Package
		for _, p := range pkgs {
			if pathMatches(p.Path, []string{spec.Pkg}) {
				pkg = p
				break
			}
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: schema %s: package %s not loaded", spec.Schema, spec.Pkg)
		}
		fp, err := Fingerprint(pkg, spec)
		if err != nil {
			return nil, fmt.Errorf("lint: schema %s: %w", spec.Schema, err)
		}
		if _, dup := m[spec.Schema]; dup {
			return nil, fmt.Errorf("lint: duplicate schema spec %s", spec.Schema)
		}
		m[spec.Schema] = fp
	}
	// Guard against accidentally empty fingerprints: a schema with no
	// structs, formats and consts protects nothing. (Field and literal
	// order is meaningful and kept as-is: reordering is drift.)
	for _, spec := range specs {
		fp := m[spec.Schema]
		if len(fp.Structs) == 0 && len(fp.Formats) == 0 && len(fp.Consts) == 0 {
			return nil, fmt.Errorf("lint: schema %s fingerprint is empty", spec.Schema)
		}
	}
	return m, nil
}
