package lint

import (
	"strings"
	"testing"
)

// goldenSchemaSpecs freeze the schema testdata package: "test-v1" has a
// committed fingerprint (with one field and one const deliberately
// drifted in source), "test-missing" has no manifest entry.
func goldenSchemaSpecs() (SchemaManifest, []SchemaSpec) {
	manifest := SchemaManifest{
		"test-v1": {
			Structs: map[string][]string{
				"Stable":  {`A int json:"a"`, `B string json:"b"`},
				"Drifted": {`A int json:"a"`, `B int json:"b"`},
			},
			Formats: map[string][]string{"Key": {"%s|a=%d"}},
			Consts:  map[string]string{"keySchema": "test-v1", "minor": "2"},
		},
	}
	specs := []SchemaSpec{
		{
			Schema:  "test-v1",
			Pkg:     "schema",
			Structs: []string{"Stable", "Drifted"},
			Funcs:   []string{"Key"},
			Consts:  []string{"keySchema", "minor"},
		},
		{
			Schema:  "test-missing",
			Pkg:     "schema",
			Structs: []string{"Stable"},
		},
	}
	return manifest, specs
}

func TestSchemaStableGolden(t *testing.T) {
	manifest, specs := goldenSchemaSpecs()
	RunGolden(t, "schema", SchemaStable(manifest, specs))
}

// TestSchemaFingerprintRoundTrip: a manifest generated from source is,
// by construction, drift-free for the specs it covers.
func TestSchemaFingerprintRoundTrip(t *testing.T) {
	pkg, err := LoadDir("testdata/src", "schema")
	if err != nil {
		t.Fatalf("loading schema testdata: %v", err)
	}
	_, specs := goldenSchemaSpecs()
	built, err := BuildManifest([]*Package{pkg}, specs)
	if err != nil {
		t.Fatalf("BuildManifest: %v", err)
	}
	diags, _, err := Run([]*Package{pkg}, []*Analyzer{SchemaStable(built, specs)})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("freshly generated manifest still drifts: %v", diags)
	}
	// And it survives a serialize/parse cycle.
	data, err := WriteManifest(built)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := ParseManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	diags, _, err = Run([]*Package{pkg}, []*Analyzer{SchemaStable(reparsed, specs)})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("round-tripped manifest drifts: %v", diags)
	}
}

// TestEmbeddedManifest: the committed schemas.json parses and covers
// exactly the three repo schemas the specs freeze.
func TestEmbeddedManifest(t *testing.T) {
	m, err := ParseManifest(schemasJSON)
	if err != nil {
		t.Fatalf("committed schemas.json does not parse: %v", err)
	}
	for _, spec := range RepoSchemaSpecs() {
		fp := m[spec.Schema]
		if fp == nil {
			t.Errorf("schemas.json missing entry for %s", spec.Schema)
			continue
		}
		if len(fp.Structs) == 0 && len(fp.Formats) == 0 && len(fp.Consts) == 0 {
			t.Errorf("schemas.json entry %s is empty", spec.Schema)
		}
	}
	// The long Job.Key canon string must be stored exactly, never in the
	// truncated display form go/constant produces via Value.String().
	for _, f := range m["lnuca-job-v2"].Formats["Job.Key"] {
		if strings.Contains(f, "...") {
			t.Errorf("Job.Key format stored truncated: %q", f)
		}
	}
}
