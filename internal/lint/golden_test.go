package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunGolden is the analysistest analogue: it loads
// testdata/src/<importPath> as a package (resolving imports against
// testdata/src first, then the standard library), runs the analyzers,
// and compares the surviving diagnostics against the package's
// "// want" annotations:
//
//	x := make([]int, 0) // want `make in .* allocates`
//
// Each quoted regexp on a line must be matched by exactly one
// diagnostic reported on that line, and every diagnostic must be
// expected. //lnuca:allow suppression runs first, so a golden file can
// also prove a finding is suppressible (annotate it and expect
// nothing).
func RunGolden(t *testing.T, importPath string, analyzers ...*Analyzer) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src"), importPath)
	if err != nil {
		t.Fatalf("loading testdata package %s: %v", importPath, err)
	}
	diags, _, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", importPath, err)
	}
	wants, err := collectWants(pkg.Dir)
	if err != nil {
		t.Fatalf("parsing want annotations in %s: %v", pkg.Dir, err)
	}
	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) || w.re.MatchString("["+d.Analyzer+"] "+d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}

type wantAnnotation struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantPatternRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants scans every Go file in dir for "// want" annotations.
// Patterns are quoted regexps (backquoted or double-quoted); several on
// one line expect several diagnostics.
func collectWants(dir string) ([]wantAnnotation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []wantAnnotation
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pats := wantPatternRe.FindAllString(m[1], -1)
			if len(pats) == 0 {
				return nil, fmt.Errorf("%s:%d: want annotation with no quoted pattern", name, i+1)
			}
			for _, p := range pats {
				var pat string
				if p[0] == '`' {
					pat = p[1 : len(p)-1]
				} else if u, err := strconv.Unquote(p); err == nil {
					pat = u
				} else {
					return nil, fmt.Errorf("%s:%d: bad want pattern %s", name, i+1, p)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", name, i+1, pat, err)
				}
				wants = append(wants, wantAnnotation{file: name, line: i + 1, re: re})
			}
		}
	}
	return wants, nil
}
