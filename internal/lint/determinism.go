package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism returns the analyzer that guards bit-identical results:
// simulation statistics feed content-addressed cache entries
// (lnuca-job-v2) and trace identities (lnuca-trace-v1), so any
// wall-clock read, global math/rand draw, or order-dependent map
// iteration in a result-visible path silently poisons caching and
// replay. The analyzer flags, in the packages it is configured for:
//
//   - time.Now / time.Since / time.After / time.Tick / time.NewTimer /
//     time.NewTicker (wall clock in a sim-visible path; wall time
//     belongs in Phases-style telemetry, which must be annotated),
//   - package-level math/rand functions (the unseeded global RNG;
//     seeded sim.Rand or rand.New(rand.NewSource(seed)) are fine),
//   - range over a map whose body has an order-dependent effect: an
//     append that is never sorted afterwards, a call with unknown
//     effects, an early exit, or a plain overwrite of an outer
//     variable. Commutative bodies (map-to-map copies, += reductions,
//     delete) pass.
//
// paths restricts the analyzer to packages whose import path matches
// one of the entries exactly or by suffix; nil means every package.
func Determinism(paths ...string) *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock, global RNG, and order-dependent map iteration in result-visible packages",
		Run: func(pass *Pass) error {
			if !pathMatches(pass.Pkg.Path(), paths) {
				return nil
			}
			return runDeterminism(pass)
		},
	}
}

func pathMatches(path string, paths []string) bool {
	if len(paths) == 0 {
		return true
	}
	for _, p := range paths {
		if path == p || strings.HasSuffix(path, "/"+strings.TrimPrefix(p, "/")) {
			return true
		}
	}
	return false
}

// wallClockFuncs are the time package functions that read the wall
// clock or schedule on it.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// randConstructors are the math/rand functions that build a seeded,
// local generator — the deterministic way to use the package.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func runDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		var funcStack []*ast.FuncDecl
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				funcStack = append(funcStack, node)
			case *ast.SelectorExpr:
				checkDetSelector(pass, node)
			case *ast.RangeStmt:
				var encl *ast.FuncDecl
				if len(funcStack) > 0 {
					encl = funcStack[len(funcStack)-1]
				}
				checkMapRange(pass, node, encl)
			}
			return true
		})
	}
	return nil
}

func checkDetSelector(pass *Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. time.Time.Sub) are reached only via already-flagged reads
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Report(sel.Pos(), "time.%s reads the wall clock in a determinism-audited package; results must be a pure function of the job key", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Report(sel.Pos(), "%s.%s draws from the global RNG; use a seeded sim.Rand (or rand.New with a fixed seed) so runs are reproducible", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange flags a range over a map whose body is order-dependent.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, encl *ast.FuncDecl) {
	t := pass.Info.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if reason := orderDependent(pass, rng, encl); reason != "" {
		pass.Report(rng.Pos(), "map iteration order is nondeterministic and the loop body %s; iterate sorted keys instead", reason)
	}
}

// orderDependent returns a non-empty human explanation when the range
// body observably depends on iteration order, "" when every effect in
// the body commutes.
func orderDependent(pass *Pass, rng *ast.RangeStmt, encl *ast.FuncDecl) (reason string) {
	var appended []*ast.Ident
	order := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if order != "" {
			return false
		}
		switch node := n.(type) {
		case *ast.FuncLit:
			return false // its body runs elsewhere; a call of it is caught below
		case *ast.ReturnStmt:
			order = "returns early (which element wins depends on order)"
		case *ast.BranchStmt:
			if node.Tok == token.BREAK || node.Tok == token.GOTO {
				order = "exits early (which element wins depends on order)"
			}
		case *ast.SendStmt:
			order = "sends elements to a channel in iteration order"
		case *ast.CallExpr:
			if id, ap := classifyRangeCall(pass, node); !ap {
				return true
			} else if id != nil {
				appended = append(appended, id)
				return true
			} else if id == nil {
				return true
			}
		case *ast.AssignStmt:
			if r := nonCommutativeAssign(pass, node, rng); r != "" {
				order = r
			}
		}
		return true
	})
	if order != "" {
		return order
	}
	for _, id := range appended {
		if !sortedAfter(pass, id, rng, encl) {
			return "appends to " + id.Name + " in iteration order without sorting it afterwards"
		}
	}
	// A second pass for calls with unknown effects (anything that is not
	// a builtin, a conversion, or a known-pure helper).
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if order != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, pure := impureRangeCall(pass, call); !pure {
			order = "calls " + name + ", whose effects may depend on iteration order"
		}
		return true
	})
	return order
}

// classifyRangeCall reports whether call is the append builtin, and if
// so which identifier receives the result (x = append(x, ...)).
func classifyRangeCall(pass *Pass, call *ast.CallExpr) (*ast.Ident, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil, false
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	if len(call.Args) > 0 {
		if target, ok := call.Args[0].(*ast.Ident); ok {
			return target, true
		}
	}
	return nil, true
}

// purePackages are packages whose exported functions cannot observe
// iteration order (no I/O, no shared state mutation through their
// arguments as used here).
var purePackages = map[string]bool{
	"strings": true, "math": true, "strconv": true, "unicode": true,
	"bytes": true, "sort": true, "slices": true, "maps": true, "cmp": true,
}

// impureRangeCall reports whether a call inside a map-range body has
// effects that could depend on iteration order. Builtins, conversions,
// and calls into pure stdlib packages pass.
func impureRangeCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return "", true // conversion
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	default:
		return "a function value", false
	}
	switch o := obj.(type) {
	case *types.Builtin:
		return "", true
	case *types.Func:
		if o.Pkg() == nil || purePackages[o.Pkg().Path()] {
			return "", true
		}
		return o.Pkg().Name() + "." + o.Name(), false
	case *types.TypeName:
		return "", true
	}
	return "an unresolved callee", false
}

// nonCommutativeAssign flags a plain overwrite of a variable declared
// outside the loop: `last = v` keeps whichever element the hash order
// served up. Writes into map indexes and compound numeric updates
// (+=, |=, ...) commute and pass; so do writes to the loop's own vars.
func nonCommutativeAssign(pass *Pass, as *ast.AssignStmt, rng *ast.RangeStmt) string {
	if as.Tok != token.ASSIGN {
		return "" // :=, +=, etc. — defines commute trivially; compound numeric ops commute
	}
	// x = append(x, ...) is handled by the append/sort check, not here.
	if len(as.Rhs) == 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			if _, isAppend := classifyRangeCall(pass, call); isAppend {
				return ""
			}
		}
	}
	for _, lhs := range as.Lhs {
		switch l := lhs.(type) {
		case *ast.IndexExpr:
			// m[k] = v commutes only when the index actually involves the
			// loop's own variables; m[0] = v keeps an arbitrary winner.
			if mentionsRangeVars(pass, l.Index, rng) {
				continue
			}
			return "writes a fixed index in iteration order (the surviving value depends on order)"
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			if obj := pass.Info.Uses[l]; obj != nil {
				if rng.Pos() <= obj.Pos() && obj.Pos() <= rng.End() {
					continue // declared inside the loop
				}
			}
			return "overwrites " + l.Name + " (the surviving value depends on order)"
		default:
			return "assigns through a compound lvalue whose final value depends on order"
		}
	}
	return ""
}

// mentionsRangeVars reports whether expr references the range
// statement's key or value variable.
func mentionsRangeVars(pass *Pass, expr ast.Expr, rng *ast.RangeStmt) bool {
	var vars []types.Object
	for _, v := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				vars = append(vars, obj)
			} else if obj := pass.Info.Uses[id]; obj != nil {
				vars = append(vars, obj)
			}
		}
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				for _, v := range vars {
					if obj == v {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// sortedAfter reports whether ident's slice is passed to a sort/slices
// call after the range statement within the enclosing function.
func sortedAfter(pass *Pass, id *ast.Ident, rng *ast.RangeStmt, encl *ast.FuncDecl) bool {
	if encl == nil || encl.Body == nil {
		return false
	}
	target := pass.Info.Uses[id]
	found := false
	ast.Inspect(encl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if ai, ok := a.(*ast.Ident); ok && (pass.Info.Uses[ai] == target || ai.Name == id.Name) {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}
