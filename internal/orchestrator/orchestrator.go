package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/hier"
	"repro/internal/obs"
	"repro/internal/obs/tracez"
	"repro/internal/pqueue"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the state can no longer change.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Timeline is a job's lifecycle history: when it entered each state
// and how long it spent there. Served inside every JobRecord (GET
// /v1/jobs/{id}) and summarized in the orchestrator metrics.
type Timeline struct {
	// SubmittedAt is when the orchestrator accepted the job.
	SubmittedAt time.Time `json:"submitted_at"`
	// StartedAt is when a worker picked the job up (unset while queued
	// and for cache hits, which never run).
	StartedAt *time.Time `json:"started_at,omitempty"`
	// FinishedAt is when the job reached a terminal state.
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// QueueSeconds is the time from submission to pickup — still
	// accruing for a queued job. RunSeconds is pickup to terminal —
	// still accruing for a running job.
	QueueSeconds float64 `json:"queue_seconds"`
	RunSeconds   float64 `json:"run_seconds,omitempty"`
}

// JobRecord is the externally visible snapshot of a submitted job.
type JobRecord struct {
	ID       string  `json:"id"`
	Key      string  `json:"key"`
	Job      Job     `json:"job"`
	Status   Status  `json:"status"`
	Progress float64 `json:"progress"` // 0..1 of the instruction budget
	// Cached means the job was satisfied from the result cache without
	// simulating; Coalesced means this submission was merged onto an
	// already in-flight identical job.
	Cached    bool       `json:"cached,omitempty"`
	Coalesced bool       `json:"coalesced,omitempty"`
	Error     string     `json:"error,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
	// Timeline records the submitted -> queued -> running -> terminal
	// lifecycle with durations.
	Timeline Timeline `json:"timeline"`
	// TraceID is the distributed trace this job's spans record under
	// (empty when tracing is off) — the handle for GET
	// /v1/traces/{jobid}/spans and /debug/tracez.
	TraceID string `json:"trace_id,omitempty"`
	// Worker names the fleet worker that executed (or is executing) the
	// job; empty for local pool runs and never-run jobs.
	Worker string `json:"worker,omitempty"`
}

// RunFunc executes one normalized job. The orchestrator cancels ctx to
// abort the run; progress receives (committed, total) instruction counts.
type RunFunc func(ctx context.Context, j Job, progress func(done, total uint64)) (*JobResult, error)

// SimRun is the production RunFunc for single-core jobs: it drives the
// exp harness. Mix jobs additionally need the result cache (for their
// single-core baselines); the orchestrator wires SimRunWith by default.
func SimRun(ctx context.Context, j Job, progress func(done, total uint64)) (*JobResult, error) {
	prof, ok := workload.ByName(j.Benchmark)
	if !ok {
		return nil, fmt.Errorf("orchestrator: unknown benchmark %q", j.Benchmark)
	}
	r := exp.RunOneCtx(ctx, j.Spec(), prof, j.Mode, j.Seed, progress)
	if r.Err != nil {
		return nil, r.Err
	}
	res := ResultOf(r)
	emitPhaseSpans(ctx, res.Phases)
	return res, nil
}

// emitPhaseSpans reconstructs the run's build/warmup/measure phases as
// spans ending now, from the durations the exp harness measured. The
// tracer is consulted strictly AFTER the run — the kernel hot loop
// never sees a span — and the reconstructed spans are children of
// whatever span ctx carries (the local run span, or a fleet worker's
// execute span).
func emitPhaseSpans(ctx context.Context, ph *exp.Phases) {
	if ph == nil || tracez.TracerFrom(ctx) == nil {
		return
	}
	//lnuca:allow(determinism) span timestamps reconstructed from measured phase durations; telemetry only, never in result content or keys
	end := time.Now()
	secs := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	mStart := end.Add(-secs(ph.MeasureSeconds))
	wStart := mStart.Add(-secs(ph.WarmupSeconds))
	bStart := wStart.Add(-secs(ph.BuildSeconds))
	b, _ := tracez.StartSpanAt(ctx, "lnuca.run.build", bStart)
	b.FinishAt(wStart)
	w, _ := tracez.StartSpanAt(ctx, "lnuca.run.warmup", wStart)
	w.FinishAt(mStart)
	m, _ := tracez.StartSpanAt(ctx, "lnuca.run.measure", mStart)
	m.FinishAt(end)
}

// SimRunWith is SimRunWithTraces without a trace store: trace jobs fail
// with a configuration error instead of replaying.
func SimRunWith(cache *Cache) RunFunc {
	return SimRunWithTraces(cache, nil)
}

// SimRunWithTraces returns the production RunFunc backed by a result
// cache and a trace store. Trace jobs resolve their recorded stream
// through the store and replay it; single-core jobs run directly; mix
// jobs run the CMP and then resolve
// their weighted-speedup baselines — one single-core run per distinct
// benchmark in the mix, under the same hierarchy, mode and seed —
// through the cache. A per-key singleflight inside the returned closure
// keeps concurrent workers whose mixes share a benchmark from
// simulating the same baseline twice: the loser waits for the winner's
// cache.Put and rereads. (This singleflight is scoped to baseline runs;
// a user-submitted single-core job racing a baseline with the same key
// can still compute it once more — the orchestrator's job-level
// coalescing cannot be consulted from here, and routing baselines
// through the job queue would deadlock a fully-occupied pool. The race
// costs at most one duplicate run and both sides publish identical
// results.) Progress budgets one single-core window per core plus one
// per distinct baseline, so a mix job keeps reporting honest progress
// while its baselines run.
func SimRunWithTraces(cache *Cache, traces *trace.Store) RunFunc {
	var mu sync.Mutex
	inflight := make(map[string]chan struct{})

	// baselineIPC resolves one benchmark's single-core IPC through the
	// cache, simulating on a miss (at most one simulation per key at a
	// time across workers).
	baselineIPC := func(ctx context.Context, single Job, progress func(done, total uint64)) (float64, error) {
		key := single.Key()
		for {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			if cached, ok := cache.Get(key); ok && cached.Valid() {
				return cached.IPC, nil
			}
			mu.Lock()
			if done, busy := inflight[key]; busy {
				mu.Unlock()
				// Another worker is simulating this baseline; wait for
				// it to publish (or fail), then reconsult the cache.
				select {
				case <-done:
				case <-ctx.Done():
					return 0, ctx.Err()
				}
				continue
			}
			done := make(chan struct{})
			inflight[key] = done
			mu.Unlock()

			res, err := SimRun(ctx, single, progress)
			if err == nil {
				cache.PutCtx(ctx, key, res)
			}
			mu.Lock()
			delete(inflight, key)
			mu.Unlock()
			close(done)
			if err != nil {
				return 0, fmt.Errorf("baseline %s: %w", single.Benchmark, err)
			}
			return res.IPC, nil
		}
	}

	return func(ctx context.Context, j Job, progress func(done, total uint64)) (*JobResult, error) {
		if j.Trace != "" {
			if traces == nil {
				return nil, fmt.Errorf("orchestrator: no trace store configured for trace run %s", j.Trace)
			}
			tr, err := traces.Get(j.Trace)
			if err != nil {
				return nil, err
			}
			r := exp.ReplayOneCtx(ctx, j.Spec(), tr, progress)
			if r.Err != nil {
				return nil, r.Err
			}
			res := ResultOf(r)
			emitPhaseSpans(ctx, res.Phases)
			return res, nil
		}
		if !j.IsMix() {
			return SimRun(ctx, j, progress)
		}
		// Distinct baselines, in mix order.
		var distinct []string
		seen := map[string]bool{}
		for _, b := range j.MixBenchmarks {
			if !seen[b] {
				seen[b] = true
				distinct = append(distinct, b)
			}
		}
		budget := j.Mode.Warmup + j.Mode.Measure
		mixUnits := uint64(j.Cores) * budget
		totalUnits := mixUnits + uint64(len(distinct))*budget
		stage := func(offset uint64) func(done, total uint64) {
			if progress == nil {
				return nil
			}
			return func(done, _ uint64) { progress(offset+done, totalUnits) }
		}

		r := exp.RunMixCtx(ctx, j.MixSpec(), j.Mode, j.Seed, stage(0))
		if r.Err != nil {
			return nil, r.Err
		}
		baselines := make(map[string]float64, len(distinct))
		for i, bench := range distinct {
			single, err := Job{
				Kind: j.Kind, Levels: j.Levels, Benchmark: bench,
				Mode: j.Mode, Seed: j.Seed,
			}.Normalize()
			if err != nil {
				return nil, err
			}
			ipc, err := baselineIPC(ctx, single, stage(mixUnits+uint64(i)*budget))
			if err != nil {
				return nil, err
			}
			baselines[bench] = ipc
		}
		if progress != nil {
			progress(totalUnits, totalUnits)
		}
		ws, err := exp.WeightedSpeedup(r.PerCore, baselines)
		if err != nil {
			return nil, err
		}
		res := MixResultOf(r, ws)
		emitPhaseSpans(ctx, res.Phases)
		return res, nil
	}
}

// Config tunes an Orchestrator.
type Config struct {
	// Workers bounds concurrent simulations (default: 2).
	Workers int
	// Cache memoizes results (default: a fresh memory-only cache).
	Cache *Cache
	// Traces is the content-addressed trace store that trace jobs
	// resolve their recorded streams through (default: a fresh
	// memory-only store).
	Traces *trace.Store
	// Run executes one job (default: SimRunWithTraces over Cache and
	// Traces). Tests inject stubs here.
	Run RunFunc
	// RecordCap bounds retained job records (default: 4096). Terminal
	// records beyond the cap are pruned oldest-first so a long-running
	// daemon's memory stays bounded; queued and running jobs are never
	// pruned.
	RecordCap int
	// Logger receives structured job-lifecycle events with per-job IDs
	// (default: discard).
	Logger *slog.Logger
	// Registry, when set, exports the orchestrator's operational
	// counters as Prometheus-style metrics: job totals, queue depth,
	// queue/run latency histograms, simulator throughput and kernel
	// activity (see DESIGN.md, "Observability", for the catalog).
	Registry *obs.Registry
	// QueueCap, when positive, bounds the number of queued jobs. Submit
	// returns ErrQueueFull once the queue is at capacity (coalesced and
	// cache-hit submissions are never rejected — they consume no queue
	// slot). The HTTP layer maps the error to 429 + Retry-After.
	QueueCap int
	// Journal, when set, records every queue transition so a restarted
	// daemon can resubmit the jobs that were queued or running when it
	// died (see Journal). The orchestrator appends to it; the owner
	// replays Pending() after construction and closes it on shutdown.
	Journal *Journal
	// Tracer, when set, opens spans for every submission's lifecycle
	// (submit/coalesce/cache-hit, then queue and run for jobs that
	// simulate) and threads the trace context into the RunFunc, so fleet
	// dispatch and worker execution parent under the job's trace. Nil
	// disables tracing at zero cost.
	Tracer *tracez.Tracer
	// Flight, when set, is the bounded in-memory store behind GET
	// /v1/traces/{jobid}/spans and /debug/tracez. It also receives
	// trace-correlated lifecycle events (coalesced submissions). Usually
	// the Tracer's recorder tees into it.
	Flight *tracez.FlightRecorder
}

// task is the internal mutable state behind a JobRecord.
type task struct {
	id       string
	key      string
	job      Job
	status   Status
	cached   bool
	errMsg   string
	result   *JobResult
	cancel   context.CancelFunc
	canceled bool // cancel requested while still queued
	seq      uint64
	heapIdx  int // -1 when not queued

	// Lifecycle timestamps; startedAt/finishedAt are zero until the
	// transition happens. For fleet-dispatched jobs startedAt is reset
	// at every lease grant (see RunStarted), so RunSeconds measures the
	// lease that actually produced the result, not dead leases.
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time

	// Tracing state (all nil/empty when tracing is off). jobSpan is the
	// job's root span, open from submission to terminal; queueSpan and
	// runSpan bound the two lifecycle phases. worker is the fleet worker
	// executing the current lease, reported by RunStarted. All span
	// mutations happen under the orchestrator's mu.
	traceID   string
	jobSpan   *tracez.Span
	queueSpan *tracez.Span
	runSpan   *tracez.Span
	worker    string

	progDone, progTotal atomic.Uint64
}

// Orchestrator owns the job queue, the worker pool, the result cache
// and the trace store.
type Orchestrator struct {
	cfg    Config
	cache  *Cache
	traces *trace.Store

	mu       sync.Mutex
	cond     *sync.Cond
	queue    *pqueue.Queue[*task]
	records  map[string]*task // by job ID
	byKey    map[string]*task // singleflight: content key -> live task
	sweeps   map[string][]string
	terminal []string // terminal record IDs, oldest first (pruning order)
	seq      uint64
	closed   bool
	wg       sync.WaitGroup

	started time.Time

	// Lifecycle counters, guarded by mu and updated in the same critical
	// section as the state transition they count, so any locked snapshot
	// satisfies submitted == coalesced + cached + executed + failed +
	// canceled + queueDepth + running exactly (the metrics-consistency
	// regression test pins this).
	submitted uint64
	coalesced uint64
	cached    uint64 // submissions served straight from the result cache
	executed  uint64 // simulations actually run to completion
	failed    uint64
	canceled  uint64

	log      *slog.Logger
	registry *obs.Registry

	// Registry-backed instruments (nil without a Config.Registry). The
	// Func-style counters read metricsSnap, refreshed once per scrape
	// via OnScrape, so one scrape is mutually consistent; histograms and
	// simulator totals are updated live at worker transitions.
	metricsSnap  atomic.Pointer[Metrics]
	queueSeconds *obs.Histogram
	runSeconds   *obs.Histogram
	runMIPS      *obs.Histogram
	simSteps     *obs.Counter
	simSkipped   *obs.Counter
	simInstr     *obs.Counter
}

// New starts an orchestrator and its worker pool.
func New(cfg Config) *Orchestrator {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Cache == nil {
		cfg.Cache = NewCache(0, "")
	}
	if cfg.Traces == nil {
		cfg.Traces = trace.NewStore("")
	}
	if cfg.Run == nil {
		cfg.Run = SimRunWithTraces(cfg.Cache, cfg.Traces)
	}
	if cfg.RecordCap <= 0 {
		cfg.RecordCap = 4096
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Discard()
	}
	o := &Orchestrator{
		cfg:     cfg,
		cache:   cfg.Cache,
		traces:  cfg.Traces,
		queue:   newTaskQueue(),
		records: make(map[string]*task),
		byKey:   make(map[string]*task),
		sweeps:  make(map[string][]string),
		//lnuca:allow(determinism) job lifecycle timestamp; telemetry only, never in result content or keys
		started: time.Now(),
		log:     cfg.Logger,
	}
	o.metricsSnap.Store(&Metrics{})
	o.cond = sync.NewCond(&o.mu)
	if cfg.Registry != nil {
		o.registry = cfg.Registry
		o.register(cfg.Registry)
	}
	for i := 0; i < cfg.Workers; i++ {
		o.wg.Add(1)
		go o.worker()
	}
	return o
}

// register exports the orchestrator's operational state on reg. Totals
// and gauges read a snapshot refreshed once per scrape (all counters in
// one scrape come from the same locked Metrics() call); latency
// histograms and simulator totals accumulate live at worker
// transitions. Registration is get-or-create, so two orchestrators must
// not share one registry — the second would silently read the first's
// instruments; lnucad wires exactly one.
func (o *Orchestrator) register(reg *obs.Registry) {
	reg.OnScrape(func() {
		m := o.Metrics()
		o.metricsSnap.Store(&m)
	})
	snap := func(f func(*Metrics) uint64) func() uint64 {
		return func() uint64 { return f(o.metricsSnap.Load()) }
	}
	gauge := func(f func(*Metrics) float64) func() float64 {
		return func() float64 { return f(o.metricsSnap.Load()) }
	}
	reg.CounterFunc("lnuca_jobs_submitted_total",
		"Jobs accepted by the orchestrator (coalesced and cached submissions included).",
		snap(func(m *Metrics) uint64 { return m.Submitted }))
	reg.CounterFunc("lnuca_jobs_coalesced_total",
		"Submissions merged onto an identical in-flight job.",
		snap(func(m *Metrics) uint64 { return m.Coalesced }))
	reg.CounterFunc("lnuca_jobs_cached_total",
		"Submissions served straight from the result cache.",
		snap(func(m *Metrics) uint64 { return m.Cached }))
	reg.CounterFunc("lnuca_jobs_completed_total",
		"Jobs that reached done: simulations executed plus cache hits.",
		snap(func(m *Metrics) uint64 { return m.Executed + m.Cached }))
	reg.CounterFunc("lnuca_runs_executed_total",
		"Simulations run to completion by the worker pool.",
		snap(func(m *Metrics) uint64 { return m.Executed }))
	reg.CounterFunc("lnuca_jobs_failed_total",
		"Jobs that ended in failure.",
		snap(func(m *Metrics) uint64 { return m.Failed }))
	reg.CounterFunc("lnuca_jobs_canceled_total",
		"Jobs canceled while queued or running.",
		snap(func(m *Metrics) uint64 { return m.Canceled }))
	reg.CounterFunc("lnuca_cache_hits_total",
		"Result-cache hits.",
		snap(func(m *Metrics) uint64 { return m.CacheHits }))
	reg.CounterFunc("lnuca_cache_misses_total",
		"Result-cache misses.",
		snap(func(m *Metrics) uint64 { return m.CacheMisses }))
	reg.GaugeFunc("lnuca_queue_depth",
		"Jobs waiting for a worker.",
		gauge(func(m *Metrics) float64 { return float64(m.QueueDepth) }))
	reg.GaugeFunc("lnuca_jobs_running",
		"Jobs currently simulating.",
		gauge(func(m *Metrics) float64 { return float64(m.Running) }))
	reg.GaugeFunc("lnuca_workers",
		"Size of the worker pool.",
		gauge(func(m *Metrics) float64 { return float64(m.Workers) }))
	reg.GaugeFunc("lnuca_fleet_degraded",
		"1 while persistent journal/store write failures hold the daemon read-only (submits answered 503), 0 otherwise.",
		gauge(func(m *Metrics) float64 {
			if m.Degraded {
				return 1
			}
			return 0
		}))
	reg.GaugeFunc("lnuca_uptime_seconds",
		"Seconds since the orchestrator started.",
		gauge(func(m *Metrics) float64 { return m.UptimeSeconds }))
	o.queueSeconds = reg.Histogram("lnuca_job_queue_seconds",
		"Time jobs spent queued before a worker picked them up.",
		[]float64{0.001, 0.01, 0.1, 0.5, 1, 5, 30, 120})
	o.runSeconds = reg.Histogram("lnuca_job_run_seconds",
		"Wall time jobs spent running on a worker.",
		[]float64{0.01, 0.1, 0.5, 1, 5, 30, 120, 600})
	o.runMIPS = reg.Histogram("lnuca_run_mips",
		"Simulator throughput per executed run, in million committed instructions per wall second.",
		[]float64{0.5, 1, 2.5, 5, 10, 25, 50, 100})
	o.simSteps = reg.Counter("lnuca_sim_cycles_total",
		"Kernel cycles actually executed across all completed runs.")
	o.simSkipped = reg.Counter("lnuca_sim_fastforwarded_cycles_total",
		"Kernel cycles skipped by quiescence fast-forwarding across all completed runs.")
	o.simInstr = reg.Counter("lnuca_sim_instructions_total",
		"Committed instructions measured across all completed runs.")
}

// Cache exposes the orchestrator's result cache (shared with CLIs).
func (o *Orchestrator) Cache() *Cache { return o.cache }

// Traces exposes the orchestrator's trace store (the /v1/traces ingest
// and listing surface).
func (o *Orchestrator) Traces() *trace.Store { return o.traces }

// Registry returns the metrics registry the orchestrator exports on, or
// nil when none was configured.
func (o *Orchestrator) Registry() *obs.Registry { return o.registry }

// Uptime reports how long the orchestrator has been running.
//
//lnuca:allow(determinism) operational uptime telemetry, not result content
func (o *Orchestrator) Uptime() time.Duration { return time.Since(o.started) }

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("orchestrator: closed")

// ErrQueueFull is returned by Submit when Config.QueueCap is set and
// the queue is at capacity. It signals backpressure, not failure: the
// HTTP layer maps it to 429 with a Retry-After hint, and clients retry
// with backoff. Coalesced and cache-hit submissions are never rejected.
var ErrQueueFull = errors.New("orchestrator: queue full")

// ErrDegraded is returned by Submit while the journal or result store
// is failing durable writes persistently: accepting a job whose
// submission cannot be journaled (or whose result cannot be stored)
// would silently break the restart and never-simulate-twice contracts,
// so the daemon goes read-only instead of wedging. The HTTP layer maps
// it to 503 with a Retry-After hint. Coalesced and cache-hit
// submissions are still served — reads stay up.
var ErrDegraded = errors.New("orchestrator: degraded (read-only): persistent journal/store write failures")

// Degraded reports whether the orchestrator is refusing new work
// because its journal or result store has hit persistent write errors.
// It clears itself: the next successful durable write resets the
// consecutive-failure count.
func (o *Orchestrator) Degraded() bool {
	if o.cache.Degraded() {
		return true
	}
	return o.cfg.Journal != nil && o.cfg.Journal.Degraded()
}

// probeDegraded pokes whichever store is sick with one durable write,
// so recovery is observed even when no in-flight job remains to reset
// the failure count through its own completion writes.
func (o *Orchestrator) probeDegraded() {
	if o.cfg.Journal != nil && o.cfg.Journal.Degraded() {
		o.cfg.Journal.probe()
	}
	if o.cache.Degraded() {
		o.cache.probe()
	}
}

// Submit enqueues a job. Identical content is never computed twice: a
// cache hit returns an already-done record; a submission identical to a
// queued or running job coalesces onto it (same ID, Coalesced set).
//
// The lifecycle counters are incremented inside the same critical
// section as the accept decision, so a locked Metrics snapshot always
// balances: every accepted submission is exactly one of coalesced,
// cached, queued (still in the queue), running, or terminal.
func (o *Orchestrator) Submit(j Job) (JobRecord, error) {
	return o.SubmitCtx(context.Background(), j)
}

// SubmitCtx is Submit carrying the caller's trace context: when the
// orchestrator has a Tracer, the submission's spans parent under ctx's
// span context (a client span, or just its trace ID), so the whole
// client→coordinator→worker story shares one trace. With no Tracer
// configured the context is ignored and SubmitCtx is exactly Submit.
func (o *Orchestrator) SubmitCtx(ctx context.Context, j Job) (JobRecord, error) {
	nj, err := j.Normalize()
	if err != nil {
		return JobRecord{}, err
	}
	span, sctx := o.cfg.Tracer.Start(ctx, "lnuca.orch.submit")
	rec, err := o.submit(sctx, nj)
	span.SetError(err)
	span.Finish()
	return rec, err
}

// submit accepts a pre-normalized job; ctx carries the submit span.
func (o *Orchestrator) submit(ctx context.Context, nj Job) (JobRecord, error) {
	key := nj.Key()

	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return JobRecord{}, ErrClosed
	}
	// Singleflight: merge onto the live task for this content — unless
	// its cancellation was already requested, in which case a fresh
	// submission must not inherit the pending cancel.
	if live, ok := o.byKey[key]; ok && !live.canceled {
		o.submitted++
		o.coalesced++
		rec := o.snapshot(live)
		rec.Coalesced = true
		o.mu.Unlock()
		o.traceCoalesced(ctx, live.traceID, rec.ID)
		o.log.Debug("job coalesced", "job_id", rec.ID, "key", key)
		return rec, nil
	}
	o.mu.Unlock()

	// Content-addressed memoization (outside the lock: may touch disk).
	if res, ok := o.cache.Get(key); ok {
		o.mu.Lock()
		if o.closed {
			o.mu.Unlock()
			return JobRecord{}, ErrClosed
		}
		o.submitted++
		o.cached++
		t := o.newTaskLocked(nj, key)
		t.status = StatusDone
		t.cached = true
		t.result = res
		t.traceID = tracez.TraceIDFrom(ctx)
		//lnuca:allow(determinism) job lifecycle timestamp; telemetry only, never in result content or keys
		now := time.Now()
		t.submittedAt = now
		t.finishedAt = now
		t.progDone.Store(1)
		t.progTotal.Store(1)
		rec := o.snapshot(t)
		o.markTerminalLocked(t)
		o.mu.Unlock()
		hit, _ := tracez.StartSpan(ctx, "lnuca.orch.cachehit")
		hit.Finish()
		// Balance a possibly replayed journal entry for this key: a
		// pending submission resubmitted after a restart may now be a
		// cache hit, and without an end event it would stay pending in
		// the journal forever. Unmatched end events are ignored on load.
		if o.cfg.Journal != nil {
			o.cfg.Journal.ended(t.id, key, StatusDone)
		}
		o.log.Info("job cached", "job_id", rec.ID, "key", key)
		return rec, nil
	}

	// The job will simulate: a trace run needs its recorded stream to
	// exist now, not fail in a worker minutes later. (Cache hits above
	// are still served even if the trace has since been deleted — the
	// result is content-addressed and remains valid.)
	if nj.Trace != "" && !o.traces.Has(nj.Trace) {
		return JobRecord{}, fmt.Errorf("orchestrator: unknown trace %s — upload it first (POST /v1/traces)", nj.Trace)
	}

	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return JobRecord{}, ErrClosed
	}
	// A concurrent identical submission may have won the race while the
	// cache was consulted; coalesce late rather than double-compute.
	if live, ok := o.byKey[key]; ok && !live.canceled {
		o.submitted++
		o.coalesced++
		rec := o.snapshot(live)
		rec.Coalesced = true
		o.mu.Unlock()
		o.traceCoalesced(ctx, live.traceID, rec.ID)
		o.log.Debug("job coalesced", "job_id", rec.ID, "key", key)
		return rec, nil
	}
	// Backpressure: a bounded queue rejects rather than buffers without
	// limit. Coalesced and cached submissions never reach this point.
	if o.cfg.QueueCap > 0 && o.queue.Len() >= o.cfg.QueueCap {
		o.mu.Unlock()
		return JobRecord{}, ErrQueueFull
	}
	// Read-only degraded mode: refuse work that could not be made
	// durable. Checked after the coalesce/cache paths above, so reads
	// and already-computed results keep flowing while the disk is sick.
	// The rejection stands, but each one probes the sick store: once the
	// disk heals, the probe succeeds, the failure count resets, and the
	// next submit is accepted — no operator intervention needed.
	if o.Degraded() {
		o.mu.Unlock()
		o.probeDegraded()
		return JobRecord{}, ErrDegraded
	}
	o.submitted++
	t := o.newTaskLocked(nj, key)
	t.status = StatusQueued
	//lnuca:allow(determinism) job lifecycle timestamp; telemetry only, never in result content or keys
	t.submittedAt = time.Now()
	// The job root span opens here and closes at the terminal
	// transition; queue and (later) run are its children. Children may
	// outlive the submit span that parents the root — that is normal
	// span semantics, not a leak.
	jobSpan, jctx := tracez.StartSpanAt(ctx, "lnuca.orch.job", t.submittedAt)
	if nj.Benchmark != "" {
		jobSpan.SetAttr("benchmark", nj.Benchmark)
	}
	jobSpan.SetAttr("hierarchy", nj.Hierarchy)
	t.jobSpan = jobSpan
	t.queueSpan, _ = tracez.StartSpanAt(jctx, "lnuca.orch.queue", t.submittedAt)
	t.traceID = tracez.TraceIDFrom(jctx)
	o.byKey[key] = t
	o.queue.Push(t)
	o.cond.Signal()
	rec := o.snapshot(t)
	o.mu.Unlock()
	if o.cfg.Journal != nil {
		o.cfg.Journal.submitted(t.id, key, RequestOf(nj))
	}
	o.log.Info("job submitted", "job_id", rec.ID, "key", key, "priority", nj.Priority)
	return rec, nil
}

// traceCoalesced records a coalesced submission in both places it is
// visible: an instant span on the SUBMITTER's trace (its story ends
// with "merged onto jobID") and an event on the WINNER's trace (other
// submissions piled onto it).
func (o *Orchestrator) traceCoalesced(ctx context.Context, winnerTraceID, jobID string) {
	cs, _ := tracez.StartSpan(ctx, "lnuca.orch.coalesce")
	cs.Finish()
	if winnerTraceID != "" {
		o.cfg.Flight.Event("coalesced", winnerTraceID, "submission "+tracez.TraceIDFrom(ctx)+" merged onto "+jobID)
	}
}

// runStartedKey carries the per-task run-(re)start callback through the
// RunFunc's context.
type runStartedKey struct{}

// RunStarted notifies the orchestrator that execution of the job behind
// ctx actually (re)started on the named worker. Fleet coordinators call
// it at every lease grant, so a dispatched job's Timeline splits queue
// vs run time at the moment a worker began executing — not when the
// dispatch was enqueued — and a job requeued after a lease expiry
// counts its dead first lease as queue time, never run time. No-op for
// contexts without the hook (local pool runs, tests, stub RunFuncs).
func RunStarted(ctx context.Context, worker string) {
	if fn, ok := ctx.Value(runStartedKey{}).(func(string)); ok {
		fn(worker)
	}
}

// withRunStarted arms RunStarted for one task's run context.
func (o *Orchestrator) withRunStarted(ctx context.Context, t *task) context.Context {
	return context.WithValue(ctx, runStartedKey{}, func(worker string) {
		//lnuca:allow(determinism) job lifecycle timestamp; telemetry only, never in result content or keys
		now := time.Now()
		o.mu.Lock()
		if t.status == StatusRunning {
			t.startedAt = now
			t.worker = worker
		}
		o.mu.Unlock()
	})
}

// Flight returns the flight recorder behind the span endpoints, or nil
// when tracing is off.
func (o *Orchestrator) Flight() *tracez.FlightRecorder { return o.cfg.Flight }

// SpanRecorder returns the sink remotely produced spans (client submit
// spans via POST /v1/spans) should land in — the same recorder local
// spans use — or nil when tracing is off.
func (o *Orchestrator) SpanRecorder() tracez.Recorder { return o.cfg.Tracer.Recorder() }

// TraceIDOf maps a job ID to its trace ID ("" when unknown or traced
// out of retention).
func (o *Orchestrator) TraceIDOf(jobID string) (string, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	t, ok := o.records[jobID]
	if !ok {
		return "", false
	}
	return t.traceID, true
}

func (o *Orchestrator) newTaskLocked(j Job, key string) *task {
	o.seq++
	t := &task{
		id:      fmt.Sprintf("job-%06d", o.seq),
		key:     key,
		job:     j,
		seq:     o.seq,
		heapIdx: -1,
	}
	o.records[t.id] = t
	return t
}

// markTerminalLocked registers a task that just reached a terminal
// state and prunes the oldest terminal records beyond the retention
// cap. Live (queued/running) records are never pruned.
func (o *Orchestrator) markTerminalLocked(t *task) {
	o.terminal = append(o.terminal, t.id)
	for len(o.terminal) > 0 && len(o.records) > o.cfg.RecordCap {
		oldest := o.terminal[0]
		o.terminal = o.terminal[1:]
		delete(o.records, oldest)
	}
}

// Get returns the record for a job ID.
func (o *Orchestrator) Get(id string) (JobRecord, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	t, ok := o.records[id]
	if !ok {
		return JobRecord{}, false
	}
	return o.snapshot(t), true
}

// Lookup consults the result cache directly by job content, without
// enqueuing anything. An invalid job is an error, distinct from a
// valid-but-uncached one (nil, false, nil).
func (o *Orchestrator) Lookup(j Job) (*JobResult, bool, error) {
	nj, err := j.Normalize()
	if err != nil {
		return nil, false, err
	}
	res, ok := o.cache.Get(nj.Key())
	return res, ok, nil
}

// List returns every record, optionally filtered by status.
func (o *Orchestrator) List(status Status) []JobRecord {
	o.mu.Lock()
	defer o.mu.Unlock()
	// Records live in a map; present them in submission order so
	// /v1/jobs listings are stable across calls.
	tasks := make([]*task, 0, len(o.records))
	for _, t := range o.records {
		if status != "" && t.status != status {
			continue
		}
		tasks = append(tasks, t)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].seq < tasks[j].seq })
	out := make([]JobRecord, 0, len(tasks))
	for _, t := range tasks {
		out = append(out, o.snapshot(t))
	}
	return out
}

// Cancel aborts a job: dequeued if still queued, its context cancelled
// if running. Terminal jobs are left untouched.
func (o *Orchestrator) Cancel(id string) (JobRecord, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	t, ok := o.records[id]
	if !ok {
		return JobRecord{}, false
	}
	switch t.status {
	case StatusQueued:
		if t.heapIdx >= 0 {
			o.queue.RemoveAt(t.heapIdx)
		}
		if o.byKey[t.key] == t {
			delete(o.byKey, t.key)
		}
		t.status = StatusCanceled
		t.canceled = true
		//lnuca:allow(determinism) job lifecycle timestamp; telemetry only, never in result content or keys
		t.finishedAt = time.Now()
		o.canceled++
		t.queueSpan.FinishAt(t.finishedAt)
		t.jobSpan.SetAttr("status", string(StatusCanceled))
		t.jobSpan.FinishAt(t.finishedAt)
		o.markTerminalLocked(t)
		// An explicit cancel is journaled (unlike the implicit ones during
		// Close): the user asked for the job not to run, so a restart must
		// not resurrect it.
		if o.cfg.Journal != nil {
			o.cfg.Journal.ended(t.id, t.key, StatusCanceled)
		}
		o.log.Info("job canceled", "job_id", t.id, "key", t.key, "while", "queued")
	case StatusRunning:
		t.canceled = true
		if t.cancel != nil {
			t.cancel()
		}
	}
	return o.snapshot(t), true
}

// SubmitSweep expands a benchmark x hierarchy matrix into jobs and
// submits each one, returning the sweep ID and the per-cell records.
// Every job is validated before any is enqueued, so an invalid cell
// rejects the whole sweep instead of leaving orphaned runs behind.
func (o *Orchestrator) SubmitSweep(jobs []Job) (string, []JobRecord, error) {
	if len(jobs) == 0 {
		return "", nil, errors.New("orchestrator: empty sweep")
	}
	normalized := make([]Job, len(jobs))
	for i, j := range jobs {
		nj, err := j.Normalize()
		if err != nil {
			return "", nil, fmt.Errorf("sweep cell %d: %w", i, err)
		}
		normalized[i] = nj
	}
	recs := make([]JobRecord, 0, len(normalized))
	ids := make([]string, 0, len(normalized))
	for _, j := range normalized {
		rec, err := o.Submit(j)
		if err != nil {
			return "", nil, err
		}
		recs = append(recs, rec)
		ids = append(ids, rec.ID)
	}
	o.mu.Lock()
	o.seq++
	sid := fmt.Sprintf("sweep-%04d", o.seq)
	o.sweeps[sid] = ids
	o.mu.Unlock()
	return sid, recs, nil
}

// SweepStatus summarizes one sweep.
type SweepStatus struct {
	ID      string         `json:"id"`
	Total   int            `json:"total"`
	ByState map[Status]int `json:"by_state"`
	// Pruned counts cells whose terminal records aged out of the
	// retention cap; they completed, but their snapshots are gone.
	Pruned int         `json:"pruned,omitempty"`
	Done   bool        `json:"done"` // every job terminal
	Jobs   []JobRecord `json:"jobs"`
}

// Sweep returns the aggregated status of a sweep.
func (o *Orchestrator) Sweep(id string) (SweepStatus, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ids, ok := o.sweeps[id]
	if !ok {
		return SweepStatus{}, false
	}
	st := SweepStatus{ID: id, Total: len(ids), ByState: map[Status]int{}, Done: true}
	for _, jid := range ids {
		t, ok := o.records[jid]
		if !ok {
			// Only terminal records are ever pruned.
			st.Pruned++
			continue
		}
		rec := o.snapshot(t)
		st.ByState[rec.Status]++
		if !rec.Status.Terminal() {
			st.Done = false
		}
		st.Jobs = append(st.Jobs, rec)
	}
	return st, true
}

// ExpandSweep builds the job list for hierarchies x benchmarks. Levels
// applies to hierarchies with an L-NUCA; an empty slice means the
// default depth 3. Non-L-NUCA hierarchies contribute one spec each.
func ExpandSweep(kinds []hier.Kind, levels []int, benchmarks []string, mode exp.Mode, seed uint64) []Job {
	if len(levels) == 0 {
		levels = []int{3}
	}
	var jobs []Job
	for _, k := range kinds {
		lvls := []int{0}
		if k == hier.LNUCAL3 || k == hier.LNUCADNUCA {
			lvls = levels
		}
		for _, lv := range lvls {
			for _, b := range benchmarks {
				jobs = append(jobs, Job{Kind: k, Levels: lv, Benchmark: b, Mode: mode, Seed: seed})
			}
		}
	}
	return jobs
}

// Metrics is the operational counter snapshot served at /metrics.
type Metrics struct {
	QueueDepth    int     `json:"queue_depth"`
	Running       int     `json:"running"`
	Workers       int     `json:"workers"`
	Submitted     uint64  `json:"jobs_submitted"`
	Coalesced     uint64  `json:"jobs_coalesced"`
	Cached        uint64  `json:"jobs_cached"`
	Executed      uint64  `json:"runs_executed"`
	Failed        uint64  `json:"runs_failed"`
	Canceled      uint64  `json:"jobs_canceled"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	RunsPerSecond float64 `json:"runs_per_second"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Degraded      bool    `json:"degraded"`
}

// Metrics snapshots the counters. Queue depth, the running count and
// every lifecycle counter are read inside one critical section — the
// same lock their transitions update them under — so the snapshot
// always balances: Submitted == Coalesced + Cached + Executed + Failed
// + Canceled + QueueDepth + Running.
func (o *Orchestrator) Metrics() Metrics {
	o.mu.Lock()
	running := 0
	for _, t := range o.records {
		if t.status == StatusRunning {
			running++
		}
	}
	m := Metrics{
		QueueDepth: o.queue.Len(),
		Running:    running,
		Workers:    o.cfg.Workers,
		Submitted:  o.submitted,
		Coalesced:  o.coalesced,
		Cached:     o.cached,
		Executed:   o.executed,
		Failed:     o.failed,
		Canceled:   o.canceled,
	}
	o.mu.Unlock()
	//lnuca:allow(determinism) operational uptime metric, not result content
	up := time.Since(o.started).Seconds()
	m.CacheHits = o.cache.Hits()
	m.CacheMisses = o.cache.Misses()
	m.CacheHitRate = o.cache.HitRate()
	m.UptimeSeconds = up
	m.Degraded = o.Degraded()
	if up > 0 {
		m.RunsPerSecond = float64(m.Executed) / up
	}
	return m
}

// Close stops accepting jobs, cancels running ones, and waits for the
// workers to exit. Queued jobs are marked canceled.
func (o *Orchestrator) Close() {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		o.wg.Wait()
		return
	}
	o.closed = true
	// Shutdown cancellations are deliberately NOT journaled: a drained
	// queue is exactly the state a restarted daemon must resubmit, so the
	// journal keeps these jobs pending.
	for o.queue.Len() > 0 {
		t, _ := o.queue.Pop()
		t.status = StatusCanceled
		//lnuca:allow(determinism) job lifecycle timestamp; telemetry only, never in result content or keys
		t.finishedAt = time.Now()
		if o.byKey[t.key] == t {
			delete(o.byKey, t.key)
		}
		o.canceled++
		t.queueSpan.FinishAt(t.finishedAt)
		t.jobSpan.SetAttr("status", string(StatusCanceled))
		t.jobSpan.FinishAt(t.finishedAt)
		o.markTerminalLocked(t)
	}
	//lnuca:allow(determinism) cancellation order is unobservable; every remaining task is canceled regardless of order
	for _, t := range o.records {
		if t.status == StatusRunning && t.cancel != nil {
			t.cancel()
		}
	}
	o.cond.Broadcast()
	o.mu.Unlock()
	o.wg.Wait()
}

// worker is one pool goroutine: pop the highest-priority task, run it,
// publish the result.
func (o *Orchestrator) worker() {
	defer o.wg.Done()
	for {
		o.mu.Lock()
		for o.queue.Len() == 0 && !o.closed {
			o.cond.Wait()
		}
		if o.closed {
			o.mu.Unlock()
			return
		}
		t, _ := o.queue.Pop()
		t.status = StatusRunning
		//lnuca:allow(determinism) job lifecycle timestamp; telemetry only, never in result content or keys
		t.startedAt = time.Now()
		queued := t.startedAt.Sub(t.submittedAt)
		t.queueSpan.FinishAt(t.startedAt)
		// The run context carries the tracer and the job span's identity,
		// so everything the RunFunc does — local phase spans, or a fleet
		// dispatch whose worker spans come back on complete — parents
		// under this job's trace; it also carries the RunStarted hook.
		base := tracez.WithTracer(context.Background(), o.cfg.Tracer)
		base = tracez.WithSpanContext(base, t.jobSpan.Context())
		runSpan, base := tracez.StartSpanAt(base, "lnuca.orch.run", t.startedAt)
		t.runSpan = runSpan
		ctx, cancel := context.WithCancel(o.withRunStarted(base, t))
		t.cancel = cancel
		o.mu.Unlock()

		if o.queueSeconds != nil {
			o.queueSeconds.Observe(queued.Seconds())
		}
		o.log.Info("job started", "job_id", t.id, "key", t.key,
			"queue_seconds", queued.Seconds())

		res, err := o.cfg.Run(ctx, t.job, func(done, total uint64) {
			t.progDone.Store(done)
			t.progTotal.Store(total)
		})
		cancel()

		// Publish the result before releasing the singleflight entry:
		// otherwise an identical submission landing in between would
		// neither coalesce nor hit the cache, and re-simulate. The run
		// context (canceled, but its values intact) attributes injected
		// persist faults to this job's trace.
		if err == nil {
			o.cache.PutCtx(ctx, t.key, res)
		}
		o.mu.Lock()
		// A cancel-then-resubmit may have replaced this key's live task;
		// only remove the entry if it is still ours.
		if o.byKey[t.key] == t {
			delete(o.byKey, t.key)
		}
		//lnuca:allow(determinism) job lifecycle timestamp; telemetry only, never in result content or keys
		t.finishedAt = time.Now()
		ran := t.finishedAt.Sub(t.startedAt)
		switch {
		case err != nil && (errors.Is(err, context.Canceled) || t.canceled):
			t.status = StatusCanceled
			t.errMsg = context.Canceled.Error()
			o.canceled++
		case err != nil:
			t.status = StatusFailed
			t.errMsg = err.Error()
			o.failed++
		default:
			t.status = StatusDone
			t.result = res
			o.executed++
		}
		status := t.status
		closing := o.closed
		if t.worker != "" {
			t.runSpan.SetAttr("worker", t.worker)
		}
		t.runSpan.SetAttr("status", string(status))
		t.runSpan.SetError(err)
		t.runSpan.FinishAt(t.finishedAt)
		t.jobSpan.SetAttr("status", string(status))
		t.jobSpan.SetError(err)
		t.jobSpan.FinishAt(t.finishedAt)
		o.markTerminalLocked(t)
		o.mu.Unlock()

		// Journal the terminal transition — except for jobs the shutdown
		// itself canceled, which must stay pending for the restart replay.
		if o.cfg.Journal != nil && !(closing && status == StatusCanceled) {
			o.cfg.Journal.ended(t.id, t.key, status)
		}

		if o.runSeconds != nil {
			o.runSeconds.Observe(ran.Seconds())
		}
		switch status {
		case StatusDone:
			o.observeRun(res)
			o.log.Info("job done", "job_id", t.id, "key", t.key,
				"run_seconds", ran.Seconds(), "mips", runMIPS(res))
		case StatusFailed:
			o.log.Warn("job failed", "job_id", t.id, "key", t.key,
				"run_seconds", ran.Seconds(), "error", err)
		default:
			o.log.Info("job canceled", "job_id", t.id, "key", t.key,
				"while", "running", "run_seconds", ran.Seconds())
		}
	}
}

// observeRun feeds one executed run's phase breakdown into the
// simulator metrics.
func (o *Orchestrator) observeRun(res *JobResult) {
	if res == nil || res.Phases == nil {
		return
	}
	ph := res.Phases
	if o.runMIPS != nil && ph.MIPS > 0 {
		o.runMIPS.Observe(ph.MIPS)
	}
	if o.simSteps != nil {
		o.simSteps.Add(ph.SteppedCycles)
		o.simSkipped.Add(ph.FastForwardedCycles)
		o.simInstr.Add(ph.Instructions)
	}
}

// runMIPS extracts a result's MIPS for logging (0 when unmeasured).
func runMIPS(res *JobResult) float64 {
	if res == nil || res.Phases == nil {
		return 0
	}
	return res.Phases.MIPS
}

// snapshot renders a task as a JobRecord; callers hold o.mu.
func (o *Orchestrator) snapshot(t *task) JobRecord {
	rec := JobRecord{
		ID:       t.id,
		Key:      t.key,
		Job:      t.job,
		Status:   t.status,
		Cached:   t.cached,
		Error:    t.errMsg,
		Timeline: t.timeline(),
		TraceID:  t.traceID,
		Worker:   t.worker,
	}
	if total := t.progTotal.Load(); total > 0 {
		p := float64(t.progDone.Load()) / float64(total)
		if p > 1 {
			p = 1
		}
		rec.Progress = p
	}
	if t.status == StatusDone {
		rec.Progress = 1
		rec.Result = t.result
	}
	return rec
}

// timeline renders the task's lifecycle history. Durations of phases
// still in progress accrue up to now: a queued job reports its current
// wait, a running job its current run time.
func (t *task) timeline() Timeline {
	tl := Timeline{SubmittedAt: t.submittedAt}
	if !t.startedAt.IsZero() {
		at := t.startedAt
		tl.StartedAt = &at
		tl.QueueSeconds = t.startedAt.Sub(t.submittedAt).Seconds()
	}
	if !t.finishedAt.IsZero() {
		at := t.finishedAt
		tl.FinishedAt = &at
		if !t.startedAt.IsZero() {
			tl.RunSeconds = t.finishedAt.Sub(t.startedAt).Seconds()
		} else {
			// Never ran: canceled while queued, or a cache hit.
			tl.QueueSeconds = t.finishedAt.Sub(t.submittedAt).Seconds()
		}
		return tl
	}
	switch {
	case t.status == StatusQueued:
		//lnuca:allow(determinism) live queue duration for status reporting, not result content
		tl.QueueSeconds = time.Since(t.submittedAt).Seconds()
	case t.status == StatusRunning:
		//lnuca:allow(determinism) live run duration for status reporting, not result content
		tl.RunSeconds = time.Since(t.startedAt).Seconds()
	}
	return tl
}
