package orchestrator

import (
	"sort"
	"time"
)

// SweepPoint is one sweep cell in the progress view: enough to plot a
// live dashboard without fetching every full JobRecord.
type SweepPoint struct {
	ID        string  `json:"id"`
	Benchmark string  `json:"benchmark,omitempty"`
	Hierarchy string  `json:"hierarchy,omitempty"`
	Status    Status  `json:"status"`
	Progress  float64 `json:"progress"`
	// QueueSeconds / RunSeconds mirror the point's Timeline, including
	// live accrual for queued/running points.
	QueueSeconds float64 `json:"queue_seconds"`
	RunSeconds   float64 `json:"run_seconds,omitempty"`
	// Worker names the fleet worker executing (or having executed) the
	// point; empty means the local pool.
	Worker  string `json:"worker,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	// Straggler marks a still-running point whose run time already
	// exceeds the p95 of the sweep's completed points.
	Straggler bool `json:"straggler,omitempty"`
}

// WorkerLoad aggregates one worker's share of a sweep.
type WorkerLoad struct {
	// Points is how many of the sweep's points this worker has touched
	// (running or finished); Done counts the finished ones.
	Points int `json:"points"`
	Done   int `json:"done"`
	// RunSeconds is total execution time attributed to this worker.
	RunSeconds float64 `json:"run_seconds"`
}

// SweepProgress is the sweep-level aggregation served at GET
// /v1/sweeps/{id}/progress: per-point states, throughput, ETA,
// straggler detection and per-worker attribution.
type SweepProgress struct {
	ID      string         `json:"id"`
	Total   int            `json:"total"`
	ByState map[Status]int `json:"by_state"`
	Pruned  int            `json:"pruned,omitempty"`
	Done    bool           `json:"done"`
	// ElapsedSeconds runs from the earliest submission to now (or to
	// the last finish once every point is terminal).
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// PointsPerSecond is terminal points over elapsed time; ETASeconds
	// extrapolates it over the remaining points (0 until at least one
	// point finished).
	PointsPerSecond float64 `json:"points_per_second"`
	ETASeconds      float64 `json:"eta_seconds,omitempty"`
	// P95RunSeconds is the 95th-percentile run time of completed
	// points; a running point past it is flagged a straggler (needs at
	// least minStragglerSamples completed points to mean anything).
	P95RunSeconds float64                `json:"p95_run_seconds,omitempty"`
	Stragglers    []string               `json:"stragglers,omitempty"`
	ByWorker      map[string]*WorkerLoad `json:"by_worker,omitempty"`
	Points        []SweepPoint           `json:"points"`
}

// minStragglerSamples is how many completed points a sweep needs before
// straggler detection turns on: a p95 over two or three samples flags
// noise, not stragglers.
const minStragglerSamples = 4

// Progress computes the sweep-level progress view for one sweep ID.
func (o *Orchestrator) Progress(id string) (SweepProgress, bool) {
	//lnuca:allow(determinism) live sweep progress accrual; telemetry only, never in result content or keys
	now := time.Now()
	o.mu.Lock()
	defer o.mu.Unlock()
	ids, ok := o.sweeps[id]
	if !ok {
		return SweepProgress{}, false
	}
	sp := SweepProgress{ID: id, Total: len(ids), ByState: map[Status]int{}, Done: true}
	var earliest, lastFinish time.Time
	var completedRuns []float64 // run seconds of done points that ran
	for _, jid := range ids {
		t, ok := o.records[jid]
		if !ok {
			// Only terminal records are ever pruned.
			sp.Pruned++
			continue
		}
		rec := o.snapshot(t)
		sp.ByState[rec.Status]++
		if !rec.Status.Terminal() {
			sp.Done = false
		}
		pt := SweepPoint{
			ID:           rec.ID,
			Benchmark:    rec.Job.Benchmark,
			Hierarchy:    rec.Job.Hierarchy,
			Status:       rec.Status,
			Progress:     rec.Progress,
			QueueSeconds: rec.Timeline.QueueSeconds,
			RunSeconds:   rec.Timeline.RunSeconds,
			Worker:       rec.Worker,
			TraceID:      rec.TraceID,
		}
		sp.Points = append(sp.Points, pt)
		if earliest.IsZero() || t.submittedAt.Before(earliest) {
			earliest = t.submittedAt
		}
		if !t.finishedAt.IsZero() && t.finishedAt.After(lastFinish) {
			lastFinish = t.finishedAt
		}
		if rec.Status == StatusDone && !t.cached && pt.RunSeconds > 0 {
			completedRuns = append(completedRuns, pt.RunSeconds)
		}
	}
	end := now
	if sp.Done && !lastFinish.IsZero() {
		end = lastFinish
	}
	if !earliest.IsZero() {
		sp.ElapsedSeconds = end.Sub(earliest).Seconds()
	}
	terminal := sp.ByState[StatusDone] + sp.ByState[StatusFailed] + sp.ByState[StatusCanceled] + sp.Pruned
	if sp.ElapsedSeconds > 0 {
		sp.PointsPerSecond = float64(terminal) / sp.ElapsedSeconds
	}
	if remaining := sp.Total - terminal; remaining > 0 && sp.PointsPerSecond > 0 {
		sp.ETASeconds = float64(remaining) / sp.PointsPerSecond
	}
	if len(completedRuns) >= minStragglerSamples {
		sort.Float64s(completedRuns)
		sp.P95RunSeconds = completedRuns[(len(completedRuns)*95+99)/100-1]
		for i := range sp.Points {
			pt := &sp.Points[i]
			if pt.Status == StatusRunning && pt.RunSeconds > sp.P95RunSeconds {
				pt.Straggler = true
				sp.Stragglers = append(sp.Stragglers, pt.ID)
			}
		}
	}
	byWorker := make(map[string]*WorkerLoad)
	for i := range sp.Points {
		pt := &sp.Points[i]
		if pt.Status == StatusQueued || (pt.Worker == "" && pt.RunSeconds == 0) {
			continue
		}
		name := pt.Worker
		if name == "" {
			name = "local"
		}
		wl := byWorker[name]
		if wl == nil {
			wl = &WorkerLoad{}
			byWorker[name] = wl
		}
		wl.Points++
		if pt.Status.Terminal() {
			wl.Done++
		}
		wl.RunSeconds += pt.RunSeconds
	}
	if len(byWorker) > 0 {
		sp.ByWorker = byWorker
	}
	return sp, true
}
