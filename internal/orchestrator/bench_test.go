package orchestrator

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/exp"
	"repro/internal/hier"
)

// BenchmarkSubmitWarmCache measures the service's steady-state submit
// path: every job answered from the content-addressed cache, the case a
// deployed lnucad should spend most of its time in.
func BenchmarkSubmitWarmCache(b *testing.B) {
	o := New(Config{Workers: 1, Run: func(ctx context.Context, j Job, _ func(uint64, uint64)) (*JobResult, error) {
		return &JobResult{Config: j.Hierarchy, Benchmark: j.Benchmark, IPC: 1}, nil
	}})
	defer o.Close()
	job := Job{Kind: hier.LNUCAL3, Levels: 3, Benchmark: "403.gcc", Mode: exp.Quick, Seed: 1}
	rec, err := o.Submit(job)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the cache: wait for the one real execution.
	for {
		r, _ := o.Get(rec.ID)
		if r.Status.Terminal() {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := o.Submit(job)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Cached {
			b.Fatal("warm submit missed the cache")
		}
	}
	b.ReportMetric(o.Cache().HitRate()*100, "hit_%")
}

// BenchmarkStatsSetJSONRoundTrip measures serializing and restoring a
// real run's statistics set, the payload every /v1/jobs poll carries.
func BenchmarkStatsSetJSONRoundTrip(b *testing.B) {
	res, err := SimRun(context.Background(), Job{
		Kind: hier.Conventional, Benchmark: "403.gcc",
		Mode: exp.Mode{Name: "bench", Warmup: 500, Measure: 3000}, Seed: 1,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := json.Marshal(res)
		if err != nil {
			b.Fatal(err)
		}
		var back JobResult
		if err := json.Unmarshal(data, &back); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
	}
}
