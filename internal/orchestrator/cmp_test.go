package orchestrator

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/hier"
)

// TestJobKeyGolden pins the content-key schema. These hashes are part of
// the on-disk cache contract: if this test fails, cached results written
// by other builds will not be found (or worse, the canon string became
// ambiguous). Bump keySchema and regenerate the constants deliberately —
// never let them drift as a side effect.
func TestJobKeyGolden(t *testing.T) {
	golden := []struct {
		job Job
		key string
	}{
		{Job{Kind: hier.Conventional, Benchmark: "403.gcc", Mode: exp.Quick, Seed: 1},
			"48935bf1d1b2baf8decb6842d930296ce3b75bd66e1341a12844b8f3805b5c92"},
		{Job{Kind: hier.LNUCAL3, Levels: 3, Benchmark: "429.mcf", Mode: exp.Full, Seed: 7},
			"464e0df0c607bfc6a98f8505c962de731e635220e6ab395d88c77144d0900b18"},
		{Job{Kind: hier.DNUCAOnly, Benchmark: "470.lbm", Mode: exp.Quick, Seed: 1},
			"e9c83daf6168f5d2d34e46473c05f454e9423fa48f3d7cb65780225dd1a4f879"},
		{Job{Kind: hier.LNUCADNUCA, Levels: 2, Benchmark: "482.sphinx3", Mode: exp.Quick, Seed: 3},
			"1321ee273aaafb89f24dee3a4c33b0d6e942fb7c1f01c2b52437b617043c6d96"},
		{Job{Kind: hier.LNUCAL3, Cores: 4, Mix: "mixed", Mode: exp.Quick, Seed: 1},
			"3c575e1a9e0f56338d13e47b6e52fa88cf3b1b12dbb4fa34665349dea87e052f"},
		{Job{Kind: hier.Conventional, Cores: 2, Mix: "403.gcc,470.lbm", Mode: exp.Quick, Seed: 5},
			"93405dc1294d2dc3221b3d6ce6419f6878bc572d1afcb6ac105d19e5f5fe32e9"},
	}
	for i, g := range golden {
		n, err := g.job.Normalize()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := n.Key(); got != g.key {
			t.Errorf("case %d (%s/%s): key drifted:\n got %s\nwant %s",
				i, n.Hierarchy, n.Benchmark+n.Mix, got, g.key)
		}
	}
}

// TestJobKeyUsesStableLabelNotEnum: the raw numeric hier.Kind must not
// appear in the canon — reordering the enum would silently alias cached
// results on disk.
func TestJobKeyUsesStableLabelNotEnum(t *testing.T) {
	kinds := map[hier.Kind]bool{}
	keys := map[string]hier.Kind{}
	for _, k := range []hier.Kind{hier.Conventional, hier.LNUCAL3, hier.DNUCAOnly, hier.LNUCADNUCA} {
		kinds[k] = true
		j, err := Job{Kind: k, Benchmark: "403.gcc"}.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		key := j.Key()
		if prev, dup := keys[key]; dup {
			t.Fatalf("kinds %v and %v share a key", prev, k)
		}
		keys[key] = k
	}
	// The schema version is a visible prefix of the canon, so a format
	// change that forgets to bump it is caught by the golden test above;
	// here we just pin the current version string.
	if keySchema != "lnuca-job-v2" {
		t.Fatalf("keySchema = %q — regenerate the golden keys when bumping", keySchema)
	}
}

func TestNormalizeMixJobs(t *testing.T) {
	j, err := Job{Kind: hier.LNUCAL3, Cores: 4, Mix: "mixed"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(j.MixBenchmarks) != 4 {
		t.Fatalf("resolved %v", j.MixBenchmarks)
	}
	if j.Hierarchy != "4x LN3-144KB" {
		t.Errorf("hierarchy label = %q", j.Hierarchy)
	}
	if j.Benchmark != "" {
		t.Errorf("mix job kept benchmark %q", j.Benchmark)
	}

	// A named mix and its explicit expansion are the same content.
	explicit, err := Job{Kind: hier.LNUCAL3, Cores: 4,
		Mix: "400.perlbench,410.bwaves,401.bzip2,416.gamess"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j.MixBenchmarks, explicit.MixBenchmarks) {
		t.Logf("mixed = %v, explicit = %v (update this test if the pools changed)",
			j.MixBenchmarks, explicit.MixBenchmarks)
	} else if j.Key() != explicit.Key() {
		t.Error("identical resolved mixes got distinct keys")
	}

	// Random draws are keyed on what they resolved to: same seed same
	// key, different seed different key.
	r1, err := Job{Kind: hier.Conventional, Cores: 4, Mix: "random", Seed: 9}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := Job{Kind: hier.Conventional, Cores: 4, Mix: "random", Seed: 9}.Normalize()
	r3, _ := Job{Kind: hier.Conventional, Cores: 4, Mix: "random", Seed: 10}.Normalize()
	if r1.Key() != r2.Key() {
		t.Error("same random draw, different keys")
	}
	if r1.Key() == r3.Key() {
		t.Error("different random draws share a key")
	}

	// Invalid combinations.
	if _, err := (Job{Kind: hier.LNUCAL3, Cores: 4, Mix: "mixed", Benchmark: "403.gcc"}).Normalize(); err == nil {
		t.Error("benchmark+mix accepted")
	}
	if _, err := (Job{Kind: hier.LNUCAL3, Cores: 1, Mix: "mixed"}).Normalize(); err == nil {
		t.Error("cores 1 accepted")
	}
	if _, err := (Job{Kind: hier.LNUCAL3, Mix: "mixed", Benchmark: "403.gcc"}).Normalize(); err == nil {
		t.Error("mix without cores accepted")
	}
	if _, err := (Job{Kind: hier.LNUCAL3, Cores: 99, Mix: "mixed"}).Normalize(); err == nil {
		t.Error("99 cores accepted")
	}
	if _, err := (Job{Kind: hier.LNUCAL3, Cores: 2, Mix: "no-such-mix"}).Normalize(); err == nil {
		t.Error("unknown mix accepted")
	}
	if _, err := (Job{Kind: hier.LNUCAL3, Cores: 2, Mix: "403.gcc,429.mcf,470.lbm"}).Normalize(); err == nil {
		t.Error("mix/cores length mismatch accepted")
	}
}

// TestCacheDiscardsCorruptEntry: a corrupt store file must degrade to a
// miss exactly once — the file is removed, the result recomputed and
// re-stored — not to a miss on every lookup forever.
func TestCacheDiscardsCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	for name, payload := range map[string]string{
		"truncated": `{"config":"L2-256KB","benchmark":"403.gcc","ipc":1.2`,
		"not-json":  "simulator crashed mid-write",
		// Parses, but is no JobResult: everything zero.
		"foreign": `{"hello":"world"}`,
	} {
		t.Run(name, func(t *testing.T) {
			c := NewCache(0, dir)
			key := "deadbeef-" + name
			path := filepath.Join(dir, key+".json")
			if err := os.WriteFile(path, []byte(payload), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get(key); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt file survived the miss (err=%v)", err)
			}
			// The key is clean again: a Put round-trips normally.
			c.Put(key, &JobResult{Config: "L2-256KB", Benchmark: "403.gcc", IPC: 1.2, Cycles: 10})
			c2 := NewCache(0, dir)
			if res, ok := c2.Get(key); !ok || res.IPC != 1.2 {
				t.Fatalf("recomputed result not served: ok=%v res=%+v", ok, res)
			}
		})
	}
}

// tinyMode keeps real CMP simulations in tests fast while still
// exercising warmup and measurement.
var tinyMode = exp.Mode{Name: "tiny", Warmup: 1_000, Measure: 4_000}

// TestMixJobEndToEnd runs a real 2-core mix through the default
// SimRunWith path: per-core results, throughput, weighted speedup from
// cached baselines, and a second submission served 100% from cache.
func TestMixJobEndToEnd(t *testing.T) {
	o := New(Config{Workers: 1})
	defer o.Close()

	mix := Job{Kind: hier.Conventional, Cores: 2, Mix: "403.gcc,456.hmmer", Mode: tinyMode, Seed: 1}
	rec, err := o.Submit(mix)
	if err != nil {
		t.Fatal(err)
	}
	done := waitDone(t, o, rec.ID)
	if done.Status != StatusDone {
		t.Fatalf("mix job failed: %+v", done)
	}
	res := done.Result
	if res.Cores != 2 || len(res.PerCore) != 2 {
		t.Fatalf("per-core results: %+v", res)
	}
	var sum float64
	for i, c := range res.PerCore {
		if c.IPC <= 0 {
			t.Fatalf("core %d IPC %v", i, c.IPC)
		}
		sum += c.IPC
	}
	if res.ThroughputIPC != sum {
		t.Fatalf("throughput %v != per-core sum %v", res.ThroughputIPC, sum)
	}
	// Two cores sharing one LLC: weighted speedup lands in (0, 2].
	if res.WeightedSpeedup <= 0 || res.WeightedSpeedup > 2.0001 {
		t.Fatalf("weighted speedup %v outside (0,2]", res.WeightedSpeedup)
	}

	// The baselines were memoized under their own single-core keys.
	for _, bench := range []string{"403.gcc", "456.hmmer"} {
		res, ok, err := o.Lookup(Job{Kind: hier.Conventional, Benchmark: bench, Mode: tinyMode, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !ok || res.IPC <= 0 {
			t.Fatalf("baseline %s not cached (ok=%v)", bench, ok)
		}
	}

	// Resubmission: pure cache hit, no new simulation.
	executedBefore := o.Metrics().Executed
	rec2, err := o.Submit(mix)
	if err != nil {
		t.Fatal(err)
	}
	if !rec2.Cached || rec2.Status != StatusDone {
		t.Fatalf("resubmitted mix not served from cache: %+v", rec2)
	}
	if got := o.Metrics().Executed; got != executedBefore {
		t.Fatalf("resubmission simulated again: executed %d -> %d", executedBefore, got)
	}

	// A baseline submitted as its own job is also a pure cache hit.
	recBase, err := o.Submit(Job{Kind: hier.Conventional, Benchmark: "403.gcc", Mode: tinyMode, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !recBase.Cached {
		t.Fatalf("baseline resubmission missed the cache: %+v", recBase)
	}
}

// TestMixBaselineSingleflight: two concurrent mix runs that share their
// baseline benchmarks must not duplicate baseline simulations — the
// per-key singleflight in SimRunWith serializes them through the cache.
// Run under -race in CI; the assertion here is that both runs complete,
// agree on the shared baselines, and leave exactly one cache entry per
// distinct computation.
func TestMixBaselineSingleflight(t *testing.T) {
	cache := NewCache(0, "")
	rf := SimRunWith(cache)

	mixes := []string{"403.gcc,456.hmmer", "456.hmmer,403.gcc"}
	results := make([]*JobResult, len(mixes))
	errs := make([]error, len(mixes))
	var wg sync.WaitGroup
	for i, m := range mixes {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			j, err := Job{Kind: hier.Conventional, Cores: 2, Mix: m, Mode: tinyMode, Seed: 1}.Normalize()
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = rf(context.Background(), j, nil)
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mix %d: %v", i, err)
		}
	}
	// 2 mix baselines cached (the mix results themselves are Put by the
	// orchestrator worker, which is not involved here).
	if got := cache.Len(); got != 2 {
		t.Fatalf("cache holds %d entries, want 2 baselines", got)
	}
	// Same per-benchmark baselines -> the reversed mix reports the same
	// weighted speedup (per-core IPCs are per-position deterministic).
	for i, r := range results {
		if r.WeightedSpeedup <= 0 {
			t.Fatalf("mix %d: weighted speedup %v", i, r.WeightedSpeedup)
		}
	}
}

// TestHTTPMixJob drives the cores/mix schema through the HTTP API with a
// stubbed runner, then reads the result back through /v1/results.
func TestHTTPMixJob(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})

	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]interface{}{
		"hierarchy": "ln+l3",
		"cores":     4,
		"mix":       "memory",
		"seed":      3,
	})
	var rec JobRecord
	decodeBody(t, resp, &rec)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST mix job: %d", resp.StatusCode)
	}
	if rec.Job.Cores != 4 || len(rec.Job.MixBenchmarks) != 4 {
		t.Fatalf("mix not resolved in record: %+v", rec.Job)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, r, &rec)
		if rec.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mix job stuck: %+v", rec)
		}
		time.Sleep(time.Millisecond)
	}
	if rec.Status != StatusDone {
		t.Fatalf("mix job: %+v", rec)
	}

	// Direct cache lookup with the cores/mix query schema.
	url := fmt.Sprintf("%s/v1/results?hierarchy=ln%%2bl3&cores=4&mix=memory&seed=3", ts.URL)
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	var res JobResult
	decodeBody(t, r, &res)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/results for mix: %d", r.StatusCode)
	}

	// An invalid mix is rejected up front.
	resp = postJSON(t, ts.URL+"/v1/jobs", map[string]interface{}{
		"hierarchy": "ln+l3",
		"cores":     3,
		"mix":       "403.gcc,429.mcf", // wrong length
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad mix: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestSweepStillSingleCore guards the existing sweep expansion against
// the new fields: expanded jobs are single-core.
func TestSweepStillSingleCore(t *testing.T) {
	jobs := ExpandSweep([]hier.Kind{hier.Conventional}, nil, []string{"403.gcc"}, exp.Quick, 1)
	for _, j := range jobs {
		if j.IsMix() {
			t.Fatalf("sweep produced a mix job: %+v", j)
		}
	}
}
