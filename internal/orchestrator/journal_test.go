package orchestrator

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// journalAt opens a journal or fails the test.
func journalAt(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestJournalRoundTrip drives jobs through an orchestrator with a
// journal and checks the pending set tracks the queue: completed jobs
// leave no residue, jobs alive at shutdown come back.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.journal")

	// Phase 1: run two jobs to completion. Nothing should be pending.
	j := journalAt(t, path)
	o := New(Config{Workers: 1, Journal: j, Run: countingRun(&sync.Mutex{}, new(int))})
	a, err := o.Submit(quickJob("403.gcc"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := o.Submit(quickJob("429.mcf"))
	waitDone(t, o, a.ID)
	waitDone(t, o, b.ID)
	o.Close()
	j.Close()

	if pend := journalAt(t, path).Pending(); len(pend) != 0 {
		t.Fatalf("pending after clean completion = %d, want 0", len(pend))
	}

	// Phase 2: jobs queued and running at shutdown must survive it.
	j2 := journalAt(t, path)
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	o2 := New(Config{Workers: 1, Journal: j2, Run: func(ctx context.Context, job Job, _ func(uint64, uint64)) (*JobResult, error) {
		once.Do(func() { close(started) })
		select {
		case <-release:
			return stubResult(job), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	running, _ := o2.Submit(quickJob("403.gcc"))
	<-started
	queued, _ := o2.Submit(quickJob("434.zeusmp"))
	o2.Close() // cancels both without journaling their cancellation
	close(release)
	j2.Close()

	j3 := journalAt(t, path)
	pend := j3.Pending()
	if len(pend) != 2 {
		t.Fatalf("pending after shutdown = %d, want 2 (running %s + queued %s)", len(pend), running.ID, queued.ID)
	}
	benches := map[string]bool{}
	for _, req := range pend {
		benches[req.Benchmark] = true
	}
	if !benches["403.gcc"] || !benches["434.zeusmp"] {
		t.Fatalf("pending requests = %+v, want the two interrupted jobs", pend)
	}

	// Phase 3: replay into a fresh orchestrator; once done, a reopened
	// journal is empty again.
	o3 := New(Config{Workers: 2, Journal: j3, Run: countingRun(&sync.Mutex{}, new(int))})
	for _, req := range j3.Pending() {
		job, err := req.Job()
		if err != nil {
			t.Fatal(err)
		}
		rec, err := o3.Submit(job)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, o3, rec.ID)
	}
	o3.Close()
	j3.Close()
	if pend := journalAt(t, path).Pending(); len(pend) != 0 {
		t.Fatalf("pending after replay = %d, want 0", len(pend))
	}
}

// TestJournalExplicitCancelNotResurrected: an API cancel is a user
// decision and must be journaled — the job stays gone after a restart.
func TestJournalExplicitCancelNotResurrected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.journal")
	j := journalAt(t, path)
	release := make(chan struct{})
	started := make(chan struct{})
	o := New(Config{Workers: 1, Journal: j, Run: func(ctx context.Context, job Job, _ func(uint64, uint64)) (*JobResult, error) {
		close(started)
		<-release
		return stubResult(job), nil
	}})
	blocker, _ := o.Submit(quickJob("403.gcc"))
	<-started
	victim, _ := o.Submit(quickJob("429.mcf"))
	if _, ok := o.Cancel(victim.ID); !ok {
		t.Fatal("cancel lost the job")
	}
	close(release)
	waitDone(t, o, blocker.ID)
	o.Close()
	j.Close()

	if pend := journalAt(t, path).Pending(); len(pend) != 0 {
		t.Fatalf("canceled job resurrected: pending = %+v", pend)
	}
}

// TestJournalCachedReplayBalances: a pending entry whose result landed
// in the cache before the restart is served as a cache hit on replay —
// and must still clear from the journal.
func TestJournalCachedReplayBalances(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "queue.journal")
	cache := NewCache(0, filepath.Join(dir, "cache"))

	// Seed a pending entry by hand, as if the daemon died mid-job...
	j := journalAt(t, path)
	job, err := quickJob("403.gcc").Normalize()
	if err != nil {
		t.Fatal(err)
	}
	j.submitted("job-000001", job.Key(), RequestOf(job))
	j.Close()
	// ...but its result had already been published.
	cache.Put(job.Key(), stubResult(job))

	j2 := journalAt(t, path)
	if len(j2.Pending()) != 1 {
		t.Fatalf("pending = %d, want 1", len(j2.Pending()))
	}
	o := New(Config{Workers: 1, Cache: cache, Journal: j2, Run: countingRun(&sync.Mutex{}, new(int))})
	rec, err := o.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Cached {
		t.Fatalf("replayed job not served from cache: %+v", rec)
	}
	o.Close()
	j2.Close()
	if pend := journalAt(t, path).Pending(); len(pend) != 0 {
		t.Fatalf("cache-hit replay left pending = %d, want 0", len(pend))
	}
}

// TestJournalToleratesTruncatedLine: a crash can cut the final append
// short; the loader must keep every intact line.
func TestJournalToleratesTruncatedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.journal")
	j := journalAt(t, path)
	job, _ := quickJob("403.gcc").Normalize()
	j.submitted("job-000001", job.Key(), RequestOf(job))
	j.Close()
	// Simulate a torn write: half a JSON object at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"end","key":"` + job.Key()[:12])
	f.Close()

	pend := journalAt(t, path).Pending()
	if len(pend) != 1 || pend[0].Benchmark != "403.gcc" {
		t.Fatalf("pending through torn tail = %+v, want the one intact submit", pend)
	}
}

// TestJournalCompaction: reopening shrinks the file to the pending set.
func TestJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.journal")
	j := journalAt(t, path)
	for i, bench := range []string{"403.gcc", "429.mcf", "434.zeusmp"} {
		job, _ := quickJob(bench).Normalize()
		id := "job-00000" + string(rune('1'+i))
		j.submitted(id, job.Key(), RequestOf(job))
		j.ended(id, job.Key(), StatusDone)
	}
	j.Close()
	grown, _ := os.Stat(path)

	j2 := journalAt(t, path)
	defer j2.Close()
	if len(j2.Pending()) != 0 {
		t.Fatalf("pending = %d, want 0", len(j2.Pending()))
	}
	compacted, _ := os.Stat(path)
	if compacted.Size() != 0 {
		t.Fatalf("compacted journal holds %d bytes (was %d), want 0", compacted.Size(), grown.Size())
	}
}

// TestQueueCapBackpressure: with QueueCap set, submissions beyond the
// cap fail fast with ErrQueueFull, while coalesced and cached
// submissions still land.
func TestQueueCapBackpressure(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	o := New(Config{Workers: 1, QueueCap: 2, Run: func(ctx context.Context, job Job, _ func(uint64, uint64)) (*JobResult, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return stubResult(job), nil
	}})
	defer func() { close(release); o.Close() }()

	running, err := o.Submit(quickJob("403.gcc"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := o.Submit(quickJob("429.mcf")); err != nil {
		t.Fatalf("queue slot 1: %v", err)
	}
	if _, err := o.Submit(quickJob("434.zeusmp")); err != nil {
		t.Fatalf("queue slot 2: %v", err)
	}
	if _, err := o.Submit(quickJob("482.sphinx3")); err != ErrQueueFull {
		t.Fatalf("over-cap submit err = %v, want ErrQueueFull", err)
	}
	// A duplicate of something in flight coalesces — no queue slot needed.
	dup, err := o.Submit(quickJob("403.gcc"))
	if err != nil || !dup.Coalesced || dup.ID != running.ID {
		t.Fatalf("coalesced submit over full queue: rec=%+v err=%v", dup, err)
	}
	// Counters still balance under rejection.
	m := o.Metrics()
	if m.Submitted != m.Coalesced+m.Cached+m.Executed+m.Failed+m.Canceled+uint64(m.QueueDepth)+uint64(m.Running) {
		t.Fatalf("counters out of balance: %+v", m)
	}
}

// TestRateLimiter pins the token-bucket arithmetic with a synthetic
// clock.
func TestRateLimiter(t *testing.T) {
	base := time.Unix(1000, 0)
	l := newRateLimiter(2, 3) // 2 tokens/s, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("a", base); !ok {
			t.Fatalf("burst request %d throttled", i)
		}
	}
	ok, wait := l.allow("a", base)
	if ok {
		t.Fatal("request beyond burst allowed")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry hint = %v, want (0, 1s]", wait)
	}
	// Other clients are independent.
	if ok, _ := l.allow("b", base); !ok {
		t.Fatal("fresh client throttled by a's bucket")
	}
	// Half a second refills one token at 2 rps.
	if ok, _ := l.allow("a", base.Add(500*time.Millisecond)); !ok {
		t.Fatal("refilled token not granted")
	}
	if ok, _ := l.allow("a", base.Add(500*time.Millisecond)); ok {
		t.Fatal("second request on one refilled token allowed")
	}
}

// TestServerQueueFullAnd429 drives backpressure end to end through the
// HTTP layer: a full queue answers 429 with a Retry-After hint.
func TestServerQueueFullAnd429(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	o := New(Config{Workers: 1, QueueCap: 1, Run: func(ctx context.Context, job Job, _ func(uint64, uint64)) (*JobResult, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return stubResult(job), nil
	}})
	defer func() { close(release); o.Close() }()
	srv := NewServer(o)

	post := func(bench string) (int, string) {
		body := strings.NewReader(`{"hierarchy":"conventional","benchmark":"` + bench + `","mode":"quick","seed":1}`)
		req := httptest.NewRequest("POST", "/v1/jobs", body)
		rw := httptest.NewRecorder()
		srv.ServeHTTP(rw, req)
		return rw.Code, rw.Header().Get("Retry-After")
	}
	if code, _ := post("403.gcc"); code != 202 {
		t.Fatalf("first submit = %d, want 202", code)
	}
	<-started
	if code, _ := post("429.mcf"); code != 202 {
		t.Fatalf("second submit (fills queue) = %d, want 202", code)
	}
	code, retry := post("434.zeusmp")
	if code != 429 {
		t.Fatalf("over-cap submit = %d, want 429", code)
	}
	if retry == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestServerSubmitRateLimit: the per-client limiter throttles POSTs but
// never reads.
func TestServerSubmitRateLimit(t *testing.T) {
	o := New(Config{Workers: 1, Run: countingRun(&sync.Mutex{}, new(int))})
	defer o.Close()
	srv := NewServer(o)
	srv.SetSubmitLimit(1, 2) // 1 rps, burst 2

	post := func() int {
		body := strings.NewReader(`{"hierarchy":"conventional","benchmark":"403.gcc","mode":"quick","seed":1}`)
		req := httptest.NewRequest("POST", "/v1/jobs", body)
		req.RemoteAddr = "192.0.2.1:50000"
		rw := httptest.NewRecorder()
		srv.ServeHTTP(rw, req)
		return rw.Code
	}
	first := post()
	if first != 202 && first != 200 {
		t.Fatalf("first submit = %d", first)
	}
	second := post()
	if second != 202 && second != 200 {
		t.Fatalf("second submit = %d", second)
	}
	if code := post(); code != 429 {
		t.Fatalf("third submit inside burst window = %d, want 429", code)
	}
	// Reads are unthrottled.
	req := httptest.NewRequest("GET", "/v1/jobs", nil)
	req.RemoteAddr = "192.0.2.1:50001"
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, req)
	if rw.Code != 200 {
		t.Fatalf("GET under rate limit = %d, want 200", rw.Code)
	}
}
