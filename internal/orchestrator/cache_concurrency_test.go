package orchestrator

import (
	"os"
	"strings"
	"sync"
	"testing"
)

// TestCacheConcurrentWritersSameKey emulates the fleet's shared result
// store: many writers (each with its own Cache over one directory,
// standing in for separate processes) persist the same key at once.
// The write path must tolerate the race — unique temp names, atomic
// rename — so every writer succeeds, the surviving file is intact, and
// no temp litter is left behind.
func TestCacheConcurrentWritersSameKey(t *testing.T) {
	dir := t.TempDir()
	res := &JobResult{Config: "LN3-144KB", Benchmark: "403.gcc",
		IPC: 1.25, Cycles: 800}
	const writers = 16
	const keys = 4
	var wg sync.WaitGroup
	errCh := make(chan error, writers*keys)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewCache(0, dir)
			for k := 0; k < keys; k++ {
				key := strings.Repeat("k", 8) + string(rune('a'+k))
				if err := c.save(key, res, ""); err != nil {
					errCh <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent save: %v", err)
	}

	// A fresh cache instance (cold memory) must read every key back.
	reader := NewCache(0, dir)
	for k := 0; k < keys; k++ {
		key := strings.Repeat("k", 8) + string(rune('a'+k))
		got, ok := reader.Get(key)
		if !ok {
			t.Fatalf("key %s missing after concurrent writes", key)
		}
		if got.IPC != res.IPC || got.Cycles != res.Cycles {
			t.Fatalf("key %s: stored result differs: %+v", key, got)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
	if len(entries) != keys {
		t.Fatalf("directory holds %d entries, want %d", len(entries), keys)
	}
}
