package orchestrator

// Request is the one declarative, versioned description of a run that
// every entry path shares: the lightnuca library (Runner.Run), the CLIs
// (flags parse into a Request), and the lnucad HTTP API (POST /v1/jobs
// decodes a Request verbatim). A Request is pure data — strings and
// numbers, JSON-marshalable — and Job is its normalization: whatever
// path a logical run arrives through, it parses into the same Job and
// therefore the same lnuca-job-v2 content key, so all front-ends share
// one result cache.

import (
	"errors"
	"fmt"

	"repro/internal/exp"
	"repro/internal/hier"
	"repro/internal/trace"
	"repro/internal/workload"
)

// RequestSchema versions the declarative run schema. Decoders accept an
// empty Schema (v1 is the only version); any other value is rejected so
// a future v2 consumer never silently misreads v1 producers or vice
// versa.
const RequestSchema = "lnuca-run-v1"

// Request declares one run. The zero value of every optional field
// selects the documented default; only Hierarchy plus either Benchmark
// or Cores+Mix are required.
type Request struct {
	// Schema is the request schema version; empty means RequestSchema.
	Schema string `json:"schema,omitempty"`
	// Hierarchy is one of the Fig. 1 organizations by paper label or
	// alias: "conventional", "ln+l3", "dn-4x8", "ln+dn-4x8".
	Hierarchy string `json:"hierarchy"`
	// Levels is the L-NUCA depth (2..6) where the hierarchy has one;
	// 0 defaults to 3.
	Levels int `json:"levels,omitempty"`
	// Benchmark names one catalog workload (single-core runs).
	Benchmark string `json:"benchmark,omitempty"`
	// Cores > 1 selects the multi-programmed CMP mode over the shared
	// LLC; Mix then replaces Benchmark.
	Cores int `json:"cores,omitempty"`
	// Mix is a named pool ("int", "fp", "mixed", "memory", "compute"),
	// "random" for a seeded draw, or an explicit comma-separated list.
	Mix string `json:"mix,omitempty"`
	// Trace names a recorded instruction stream by its lnuca-trace-v1
	// content hash: the run replays that trace against Hierarchy instead
	// of generating a synthetic stream. Mutually exclusive with
	// Benchmark and Cores/Mix; the trace itself pins the benchmark
	// provenance, the seed and the windows, so Mode/Warmup/Measure/Seed
	// must stay unset.
	Trace string `json:"trace,omitempty"`
	// Mode names the simulation window ("quick" or "full"; empty means
	// quick). Explicit Warmup/Measure windows override it.
	Mode    string `json:"mode,omitempty"`
	Warmup  uint64 `json:"warmup,omitempty"`
	Measure uint64 `json:"measure,omitempty"`
	// Seed fixes all randomness, including "random" mix draws (0 = 1).
	Seed uint64 `json:"seed,omitempty"`
	// Priority orders the service queue; it is not part of the content
	// key.
	Priority int `json:"priority,omitempty"`
}

// parse maps a Request onto the un-normalized job model: schema check,
// hierarchy and mode name resolution, window overrides. Validation that
// needs the workload catalog (benchmarks, mixes) happens in
// Job.Normalize.
func (r Request) parse() (Job, error) {
	if r.Schema != "" && r.Schema != RequestSchema {
		return Job{}, fmt.Errorf("orchestrator: unsupported request schema %q (want %q)", r.Schema, RequestSchema)
	}
	kind, err := ParseKind(r.Hierarchy)
	if err != nil {
		return Job{}, err
	}
	var mode exp.Mode
	if r.Trace != "" {
		// Everything a trace pins (workload, windows, seed) is rejected
		// up front when named alongside it, so a conflicting request
		// fails at parse time — before any queue or store is consulted —
		// with an error naming the conflict. The same checks live in
		// Job.normalizeTrace for callers that build Jobs directly.
		switch {
		case r.Benchmark != "":
			return Job{}, fmt.Errorf("orchestrator: a run replays either a trace or a benchmark, not both (trace %s, benchmark %q)", r.Trace, r.Benchmark)
		case r.Cores != 0 || r.Mix != "":
			return Job{}, fmt.Errorf("orchestrator: trace runs are single-core — drop cores/mix (trace %s)", r.Trace)
		case r.Mode != "" || r.Warmup != 0 || r.Measure != 0:
			// The trace content hash pins the windows; resolving a mode
			// here would make the defaulted window part of the request
			// and silently conflict with the trace's own.
			return Job{}, fmt.Errorf("orchestrator: a trace run replays the recorded windows — drop mode/warmup/measure (trace %s)", r.Trace)
		case r.Seed != 0:
			return Job{}, fmt.Errorf("orchestrator: the trace pins the seed — drop seed %d (trace %s)", r.Seed, r.Trace)
		case !trace.ValidID(r.Trace):
			return Job{}, fmt.Errorf("orchestrator: malformed trace id %q (want a 64-hex-digit lnuca-trace-v1 content hash)", r.Trace)
		}
	} else {
		if mode, err = ParseMode(r.Mode); err != nil {
			return Job{}, err
		}
		if r.Warmup != 0 || r.Measure != 0 {
			mode = exp.Mode{Name: "custom", Warmup: r.Warmup, Measure: r.Measure}
		}
	}
	return Job{
		Kind:      kind,
		Levels:    r.Levels,
		Benchmark: r.Benchmark,
		Cores:     r.Cores,
		Mix:       r.Mix,
		Trace:     r.Trace,
		Mode:      mode,
		Seed:      r.Seed,
		Priority:  r.Priority,
	}, nil
}

// Job parses and normalizes the request into the canonical job the
// orchestrator executes and keys. Every front-end funnels through this
// one path, which is what makes keys entry-point independent.
func (r Request) Job() (Job, error) {
	j, err := r.parse()
	if err != nil {
		return Job{}, err
	}
	return j.Normalize()
}

// Key returns the lnuca-job-v2 content address of the run the request
// describes — identical across library, CLI and HTTP submissions of the
// same logical run.
func (r Request) Key() (string, error) {
	j, err := r.Job()
	if err != nil {
		return "", err
	}
	return j.Key(), nil
}

// Normalize returns the canonical form of the request: schema stamped,
// hierarchy in canonical spelling, defaults applied. Two requests with
// the same normalized form are the same computation.
func (r Request) Normalize() (Request, error) {
	j, err := r.Job()
	if err != nil {
		return Request{}, err
	}
	return RequestOf(j), nil
}

// RequestOf renders a job back as a declarative request, inverse to
// Request.Job up to normalization: RequestOf(j).Job() has the same
// content key as j for any normalized j.
func RequestOf(j Job) Request {
	r := Request{
		Schema:    RequestSchema,
		Hierarchy: KindName(j.Kind),
		Levels:    j.Levels,
		Benchmark: j.Benchmark,
		Cores:     j.Cores,
		Mix:       j.Mix,
		Trace:     j.Trace,
		Seed:      j.Seed,
		Priority:  j.Priority,
	}
	if j.Trace != "" {
		// The trace pins seed and windows; a normalized trace job carries
		// neither.
		return r
	}
	switch j.Mode {
	case exp.Quick:
		r.Mode = exp.Quick.Name
	case exp.Full:
		r.Mode = exp.Full.Name
	default:
		r.Warmup, r.Measure = j.Mode.Warmup, j.Mode.Measure
	}
	return r
}

// KindName is the canonical request spelling of a hierarchy kind — the
// primary name ParseKind accepts.
func KindName(k hier.Kind) string {
	switch k {
	case hier.Conventional:
		return "conventional"
	case hier.LNUCAL3:
		return "ln+l3"
	case hier.DNUCAOnly:
		return "dn-4x8"
	case hier.LNUCADNUCA:
		return "ln+dn-4x8"
	}
	return k.String()
}

// SweepRequest declares a benchmark x hierarchy x levels matrix — the
// POST /v1/sweeps body, and the client-side fan-out unit. An empty
// Benchmarks list means the full 28-benchmark suite; Levels applies to
// hierarchies with an L-NUCA (empty = depth 3).
type SweepRequest struct {
	Schema      string   `json:"schema,omitempty"`
	Hierarchies []string `json:"hierarchies"`
	Levels      []int    `json:"levels,omitempty"`
	Benchmarks  []string `json:"benchmarks,omitempty"`
	Mode        string   `json:"mode,omitempty"`
	Warmup      uint64   `json:"warmup,omitempty"`
	Measure     uint64   `json:"measure,omitempty"`
	Seed        uint64   `json:"seed,omitempty"`
	Priority    int      `json:"priority,omitempty"`
}

// Expand fans the matrix out into one Request per cell. Expansion is
// deterministic, so submitting the expanded requests one by one is
// content-equivalent to submitting the sweep.
func (s SweepRequest) Expand() ([]Request, error) {
	if s.Schema != "" && s.Schema != RequestSchema {
		return nil, fmt.Errorf("orchestrator: unsupported sweep schema %q (want %q)", s.Schema, RequestSchema)
	}
	if len(s.Hierarchies) == 0 {
		return nil, errors.New("orchestrator: sweep needs at least one hierarchy")
	}
	kinds := make([]hier.Kind, len(s.Hierarchies))
	for i, h := range s.Hierarchies {
		k, err := ParseKind(h)
		if err != nil {
			return nil, err
		}
		kinds[i] = k
	}
	mode, err := ParseMode(s.Mode)
	if err != nil {
		return nil, err
	}
	if s.Warmup != 0 || s.Measure != 0 {
		mode = exp.Mode{Name: "custom", Warmup: s.Warmup, Measure: s.Measure}
	}
	benches := s.Benchmarks
	if len(benches) == 0 {
		benches = workload.Names()
	}
	jobs := ExpandSweep(kinds, s.Levels, benches, mode, s.Seed)
	out := make([]Request, len(jobs))
	for i, j := range jobs {
		r := RequestOf(j)
		r.Priority = s.Priority
		out[i] = r
	}
	return out, nil
}

// Jobs expands and parses the sweep into un-normalized jobs, ready for
// SubmitSweep (which normalizes and validates each cell).
func (s SweepRequest) Jobs() ([]Job, error) {
	reqs, err := s.Expand()
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, len(reqs))
	for i, r := range reqs {
		j, err := r.parse()
		if err != nil {
			return nil, fmt.Errorf("sweep cell %d: %w", i, err)
		}
		jobs[i] = j
	}
	return jobs, nil
}
