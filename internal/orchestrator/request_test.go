package orchestrator

import (
	"net/http"
	"reflect"
	"testing"

	"repro/internal/exp"
	"repro/internal/hier"
	"repro/internal/workload"
)

// TestRequestKeyMatchesJobGolden: the declarative Request path must
// resolve to byte-for-byte the same lnuca-job-v2 keys the Job path is
// pinned to in TestJobKeyGolden — the schema redesign must not move a
// single on-disk cache entry.
func TestRequestKeyMatchesJobGolden(t *testing.T) {
	golden := []struct {
		req Request
		key string
	}{
		{Request{Hierarchy: "conventional", Benchmark: "403.gcc", Mode: "quick", Seed: 1},
			"48935bf1d1b2baf8decb6842d930296ce3b75bd66e1341a12844b8f3805b5c92"},
		{Request{Hierarchy: "ln+l3", Levels: 3, Benchmark: "429.mcf", Mode: "full", Seed: 7},
			"464e0df0c607bfc6a98f8505c962de731e635220e6ab395d88c77144d0900b18"},
		{Request{Hierarchy: "dn-4x8", Benchmark: "470.lbm", Mode: "quick", Seed: 1},
			"e9c83daf6168f5d2d34e46473c05f454e9423fa48f3d7cb65780225dd1a4f879"},
		{Request{Hierarchy: "ln+dn-4x8", Levels: 2, Benchmark: "482.sphinx3", Mode: "quick", Seed: 3},
			"1321ee273aaafb89f24dee3a4c33b0d6e942fb7c1f01c2b52437b617043c6d96"},
		{Request{Hierarchy: "ln+l3", Cores: 4, Mix: "mixed", Mode: "quick", Seed: 1},
			"3c575e1a9e0f56338d13e47b6e52fa88cf3b1b12dbb4fa34665349dea87e052f"},
		{Request{Hierarchy: "conventional", Cores: 2, Mix: "403.gcc,470.lbm", Mode: "quick", Seed: 5},
			"93405dc1294d2dc3221b3d6ce6419f6878bc572d1afcb6ac105d19e5f5fe32e9"},
	}
	for i, g := range golden {
		got, err := g.req.Key()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != g.key {
			t.Errorf("case %d (%s): request key diverged from job golden:\n got %s\nwant %s",
				i, g.req.Hierarchy, got, g.key)
		}
		// Alias spellings and the stamped schema are the same content.
		withSchema := g.req
		withSchema.Schema = RequestSchema
		if k2, _ := withSchema.Key(); k2 != g.key {
			t.Errorf("case %d: explicit schema changed the key", i)
		}
	}
}

// TestRequestParseAliasesAndDefaults: alias hierarchy spellings, empty
// mode, and zero seed normalize onto the same content.
func TestRequestParseAliasesAndDefaults(t *testing.T) {
	base, err := Request{Hierarchy: "ln+l3", Benchmark: "403.gcc", Mode: "quick", Seed: 1}.Key()
	if err != nil {
		t.Fatal(err)
	}
	for _, alias := range []Request{
		{Hierarchy: "LNUCA", Benchmark: "403.gcc"},                               // alias, default mode+seed
		{Hierarchy: "ln", Benchmark: "403.gcc", Seed: 1},                         // short alias
		{Hierarchy: "ln+l3", Levels: 3, Benchmark: "403.gcc"},                    // explicit default depth
		{Hierarchy: "ln+l3", Benchmark: "403.gcc", Warmup: 4000, Measure: 20000}, // quick windows spelled out
	} {
		got, err := alias.Key()
		if err != nil {
			t.Fatalf("%+v: %v", alias, err)
		}
		if got != base {
			t.Errorf("%+v: key %s != base %s", alias, got, base)
		}
	}
}

// TestRequestSchemaVersioning: only lnuca-run-v1 (or empty) is decoded.
func TestRequestSchemaVersioning(t *testing.T) {
	bad := Request{Schema: "lnuca-run-v2", Hierarchy: "ln+l3", Benchmark: "403.gcc"}
	if _, err := bad.Job(); err == nil {
		t.Fatal("future schema version accepted")
	}
	if _, err := (SweepRequest{Schema: "nope", Hierarchies: []string{"ln+l3"}}).Expand(); err == nil {
		t.Fatal("bad sweep schema accepted")
	}
	n, err := Request{Hierarchy: "ln+l3", Benchmark: "403.gcc"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Schema != RequestSchema {
		t.Fatalf("Normalize stamped schema %q", n.Schema)
	}
	if n.Hierarchy != "ln+l3" || n.Mode != "quick" || n.Seed != 1 || n.Levels != 3 {
		t.Fatalf("normalized request %+v", n)
	}
}

// TestRequestOfRoundTrip: RequestOf(j).Job() must reproduce j's key for
// every golden job shape, including custom windows and resolved mixes.
func TestRequestOfRoundTrip(t *testing.T) {
	jobs := []Job{
		{Kind: hier.Conventional, Benchmark: "403.gcc", Mode: exp.Quick, Seed: 1},
		{Kind: hier.LNUCAL3, Levels: 4, Benchmark: "429.mcf", Mode: exp.Full, Seed: 7},
		{Kind: hier.LNUCAL3, Levels: 2, Benchmark: "470.lbm",
			Mode: exp.Mode{Name: "sweep", Measure: 30000}, Seed: 2},
		{Kind: hier.LNUCADNUCA, Cores: 4, Mix: "random", Mode: exp.Quick, Seed: 11},
	}
	for i, j := range jobs {
		nj, err := j.Normalize()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		back, err := RequestOf(nj).Job()
		if err != nil {
			t.Fatalf("case %d: round trip: %v", i, err)
		}
		if back.Key() != nj.Key() {
			t.Errorf("case %d: round-tripped key %s != %s", i, back.Key(), nj.Key())
		}
	}
}

// TestSweepRequestExpand: the declarative sweep expands to exactly what
// ExpandSweep produces, cell for cell, with priority fanned out.
func TestSweepRequestExpand(t *testing.T) {
	sw := SweepRequest{
		Hierarchies: []string{"conventional", "ln+l3"},
		Levels:      []int{2, 3},
		Benchmarks:  []string{"403.gcc", "429.mcf"},
		Mode:        "quick",
		Seed:        5,
		Priority:    9,
	}
	reqs, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// conventional contributes 1 level-config, ln+l3 two: (1+2)*2 cells.
	if len(reqs) != 6 {
		t.Fatalf("expanded %d cells, want 6", len(reqs))
	}
	want := ExpandSweep([]hier.Kind{hier.Conventional, hier.LNUCAL3}, []int{2, 3},
		[]string{"403.gcc", "429.mcf"}, exp.Quick, 5)
	for i, r := range reqs {
		if r.Priority != 9 {
			t.Errorf("cell %d: priority %d", i, r.Priority)
		}
		j, err := r.Job()
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		nw, err := want[i].Normalize()
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if j.Key() != nw.Key() {
			t.Errorf("cell %d: key %s != ExpandSweep key %s", i, j.Key(), nw.Key())
		}
	}

	// Empty benchmark list means the whole catalog.
	full, err := SweepRequest{Hierarchies: []string{"dn-4x8"}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(workload.Names()) {
		t.Fatalf("default sweep has %d cells, want %d", len(full), len(workload.Names()))
	}

	// Jobs() parses every cell.
	jobs, err := sw.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(reqs) {
		t.Fatalf("Jobs() returned %d, Expand() %d", len(jobs), len(reqs))
	}

	if _, err := (SweepRequest{}).Expand(); err == nil {
		t.Fatal("empty sweep accepted")
	}
	if _, err := (SweepRequest{Hierarchies: []string{"bogus"}}).Expand(); err == nil {
		t.Fatal("unknown hierarchy accepted")
	}
}

// TestServerRejectsForeignSchema: the HTTP decoder must refuse a body
// stamped with a schema version it does not speak.
func TestServerRejectsForeignSchema(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]interface{}{
		"schema":    "lnuca-run-v99",
		"hierarchy": "ln+l3",
		"benchmark": "403.gcc",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("foreign schema: got %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSON(t, ts.URL+"/v1/jobs", map[string]interface{}{
		"schema":    RequestSchema,
		"hierarchy": "ln+l3",
		"benchmark": "403.gcc",
	})
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 schema: got %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestRequestOfPreservesMixSpec: a random mix request round-trips with
// its spec and seed, so re-normalizing draws the same benchmarks.
func TestRequestOfPreservesMixSpec(t *testing.T) {
	j, err := Job{Kind: hier.Conventional, Cores: 4, Mix: "random", Mode: exp.Quick, Seed: 9}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	back, err := RequestOf(j).Job()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.MixBenchmarks, j.MixBenchmarks) {
		t.Fatalf("round trip drew %v, want %v", back.MixBenchmarks, j.MixBenchmarks)
	}
}
