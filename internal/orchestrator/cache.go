package orchestrator

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/faultinject"
	"repro/internal/obs/tracez"
)

// tmpOrphanGrace is how old a stray temp file in the cache directory
// must be before the open-time sweep deletes it. Anything younger may
// belong to a live writer in another process (fleet worker, CLI) that
// is about to rename it into place.
const tmpOrphanGrace = time.Hour

// Cache memoizes job results by content address: an in-memory LRU in
// front of an optional JSON file store, so identical runs are never
// recomputed — not within a process, and with a store directory not
// across processes either.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	cap     int
	dir     string // "" = memory only

	hits   atomic.Uint64
	misses atomic.Uint64

	// faults arms the disk paths (cache_write / cache_read injection
	// points); nil when chaos is off.
	faults atomic.Pointer[faultinject.Injector]

	// writeErrs counts consecutive file-store write failures; any
	// successful save resets it. At degradedAfter the cache reports
	// Degraded and the orchestrator goes read-only.
	writeErrs atomic.Int64
}

type cacheEntry struct {
	key string
	res *JobResult
}

// NewCache creates a cache holding up to capacity results in memory
// (capacity <= 0 selects a generous default). dir, when non-empty, is
// created on demand and used as a write-through JSON file store keyed by
// content address; corrupt or missing files degrade to cache misses.
func NewCache(capacity int, dir string) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	if dir != "" {
		// Sweep debris from writers killed between create and rename: a
		// crashed daemon or worker leaves .<key>.json.tmp-* files that
		// would otherwise accumulate forever. The grace window protects
		// live writers in sibling processes.
		if removed, err := atomicfile.SweepOrphans(dir, tmpOrphanGrace); err != nil {
			fmt.Fprintf(os.Stderr, "orchestrator: cache orphan sweep: %v\n", err)
		} else if len(removed) > 0 {
			fmt.Fprintf(os.Stderr, "orchestrator: cache %s: swept %d stale tmp orphan(s)\n", dir, len(removed))
		}
	}
	return &Cache{
		entries: make(map[string]*list.Element),
		order:   list.New(),
		cap:     capacity,
		dir:     dir,
	}
}

// SetFaults arms the cache's disk paths with a fault injector (nil
// disarms). Test and chaos-mode plumbing only.
func (c *Cache) SetFaults(in *faultinject.Injector) { c.faults.Store(in) }

// Degraded reports whether the file store has failed degradedAfter
// consecutive writes. A memory-only cache never degrades.
func (c *Cache) Degraded() bool {
	return c.dir != "" && c.writeErrs.Load() >= degradedAfter
}

// probe attempts one durable write so a degraded store can notice the
// disk healed. The marker name has no temp infix (the orphan sweep
// ignores it) and no .json suffix (no key ever resolves to it).
func (c *Cache) probe() {
	if c.dir == "" {
		return
	}
	err := atomicfile.Write(filepath.Join(c.dir, ".lnuca-write-probe"), []byte("probe\n"), atomicfile.Options{
		Faults: c.faults.Load(),
		Point:  faultinject.PointCacheWrite,
	})
	if err != nil {
		c.writeErrs.Add(1)
		return
	}
	c.writeErrs.Store(0)
}

// Get returns the memoized result for a content key, consulting the file
// store on an in-memory miss.
func (c *Cache) Get(key string) (*JobResult, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		res := el.Value.(*cacheEntry).res // read under the lock: install may overwrite it
		c.mu.Unlock()
		c.hits.Add(1)
		return res, true
	}
	c.mu.Unlock()
	if res, ok := c.load(key); ok {
		c.install(key, res)
		c.hits.Add(1)
		return res, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put memoizes a result, evicting the least recently used entry when the
// memory capacity is exceeded and writing through to the file store.
//
// Phases are stripped first: they describe one execution (wall times,
// gating counters), not the job's content, and storing them would make
// cache entries differ byte-for-byte between e.g. gated and ungated
// executions of the same job — breaking the determinism contract that
// identical jobs have identical cache files.
func (c *Cache) Put(key string, res *JobResult) {
	c.PutCtx(context.Background(), key, res)
}

// PutCtx is Put with the submitting request's context, so an injected
// persist failure is attributed to the job's trace in the fault-event
// stream. The trace context influences telemetry only — the stored
// bytes are identical with and without it.
func (c *Cache) PutCtx(ctx context.Context, key string, res *JobResult) {
	if res != nil && res.Phases != nil {
		cp := *res
		cp.Phases = nil
		res = &cp
	}
	c.install(key, res)
	if c.dir != "" {
		if err := c.save(key, res, tracez.TraceIDFrom(ctx)); err != nil {
			// The store is an optimization; a failed write only costs a
			// recomputation in a future process. But consecutive failures
			// are a sick disk, and feed Degraded.
			n := c.writeErrs.Add(1)
			fmt.Fprintf(os.Stderr, "orchestrator: cache store: %v (%d consecutive)\n", err, n)
			if n == degradedAfter {
				fmt.Fprintf(os.Stderr, "orchestrator: cache %s: %d consecutive write failures — entering degraded (read-only) mode\n", c.dir, n)
			}
		} else {
			c.writeErrs.Store(0)
		}
	}
}

func (c *Cache) install(key string, res *JobResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for len(c.entries) > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Hits and Misses report the lookup counters; HitRate is hits over
// lookups (zero when nothing was looked up yet).
func (c *Cache) Hits() uint64   { return c.hits.Load() }
func (c *Cache) Misses() uint64 { return c.misses.Load() }

// HitRate returns hits / (hits + misses).
func (c *Cache) HitRate() float64 {
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

func (c *Cache) load(key string) (*JobResult, bool) {
	if c.dir == "" {
		return nil, false
	}
	path := c.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if out := c.faults.Load().At(faultinject.PointCacheRead); out.Fired {
		if out.Tear > 0 {
			// Injected short read: the unmarshal below sees a prefix and
			// takes the discard-corrupt path, same as real tail loss.
			data = data[:int(out.Tear*float64(len(data)))]
		} else {
			return nil, false // injected read error: degrade to a miss
		}
	}
	var res JobResult
	if err := json.Unmarshal(data, &res); err != nil {
		// A corrupt store entry would otherwise degrade this key to a
		// miss on every future lookup (the recomputed result lands in
		// memory first, and a daemon restart re-reads the bad file).
		// Remove it so the result is recomputed and re-stored once.
		c.discardCorrupt(path, err)
		return nil, false
	}
	if !res.Valid() {
		c.discardCorrupt(path, fmt.Errorf("decoded result is structurally invalid"))
		return nil, false
	}
	return &res, true
}

func (c *Cache) discardCorrupt(path string, cause error) {
	fmt.Fprintf(os.Stderr, "orchestrator: removing corrupt cache entry %s: %v\n", path, cause)
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "orchestrator: cache remove: %v\n", err)
	}
}

func (c *Cache) save(key string, res *JobResult, traceID string) error {
	data, err := json.Marshal(res)
	if err != nil {
		return err
	}
	// Write-to-temp + atomic rename, with a unique temp name per writer:
	// concurrent processes (fleet workers, a coordinator, CLIs sharing
	// one cache dir) may persist the same key at once, and a shared temp
	// path would let one writer rename the other's half-written file.
	// Identical content makes the race benign — last rename wins with the
	// same bytes.
	return atomicfile.Write(c.path(key), data, atomicfile.Options{
		Faults:  c.faults.Load(),
		Point:   faultinject.PointCacheWrite,
		TraceID: traceID,
	})
}
