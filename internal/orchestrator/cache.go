package orchestrator

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Cache memoizes job results by content address: an in-memory LRU in
// front of an optional JSON file store, so identical runs are never
// recomputed — not within a process, and with a store directory not
// across processes either.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	cap     int
	dir     string // "" = memory only

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheEntry struct {
	key string
	res *JobResult
}

// NewCache creates a cache holding up to capacity results in memory
// (capacity <= 0 selects a generous default). dir, when non-empty, is
// created on demand and used as a write-through JSON file store keyed by
// content address; corrupt or missing files degrade to cache misses.
func NewCache(capacity int, dir string) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Cache{
		entries: make(map[string]*list.Element),
		order:   list.New(),
		cap:     capacity,
		dir:     dir,
	}
}

// Get returns the memoized result for a content key, consulting the file
// store on an in-memory miss.
func (c *Cache) Get(key string) (*JobResult, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		res := el.Value.(*cacheEntry).res // read under the lock: install may overwrite it
		c.mu.Unlock()
		c.hits.Add(1)
		return res, true
	}
	c.mu.Unlock()
	if res, ok := c.load(key); ok {
		c.install(key, res)
		c.hits.Add(1)
		return res, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put memoizes a result, evicting the least recently used entry when the
// memory capacity is exceeded and writing through to the file store.
//
// Phases are stripped first: they describe one execution (wall times,
// gating counters), not the job's content, and storing them would make
// cache entries differ byte-for-byte between e.g. gated and ungated
// executions of the same job — breaking the determinism contract that
// identical jobs have identical cache files.
func (c *Cache) Put(key string, res *JobResult) {
	if res != nil && res.Phases != nil {
		cp := *res
		cp.Phases = nil
		res = &cp
	}
	c.install(key, res)
	if c.dir != "" {
		if err := c.save(key, res); err != nil {
			// The store is an optimization; a failed write only costs a
			// recomputation in a future process.
			fmt.Fprintf(os.Stderr, "orchestrator: cache store: %v\n", err)
		}
	}
}

func (c *Cache) install(key string, res *JobResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for len(c.entries) > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Hits and Misses report the lookup counters; HitRate is hits over
// lookups (zero when nothing was looked up yet).
func (c *Cache) Hits() uint64   { return c.hits.Load() }
func (c *Cache) Misses() uint64 { return c.misses.Load() }

// HitRate returns hits / (hits + misses).
func (c *Cache) HitRate() float64 {
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

func (c *Cache) load(key string) (*JobResult, bool) {
	if c.dir == "" {
		return nil, false
	}
	path := c.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var res JobResult
	if err := json.Unmarshal(data, &res); err != nil {
		// A corrupt store entry would otherwise degrade this key to a
		// miss on every future lookup (the recomputed result lands in
		// memory first, and a daemon restart re-reads the bad file).
		// Remove it so the result is recomputed and re-stored once.
		c.discardCorrupt(path, err)
		return nil, false
	}
	if !res.Valid() {
		c.discardCorrupt(path, fmt.Errorf("decoded result is structurally invalid"))
		return nil, false
	}
	return &res, true
}

func (c *Cache) discardCorrupt(path string, cause error) {
	fmt.Fprintf(os.Stderr, "orchestrator: removing corrupt cache entry %s: %v\n", path, cause)
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "orchestrator: cache remove: %v\n", err)
	}
}

func (c *Cache) save(key string, res *JobResult) error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(res)
	if err != nil {
		return err
	}
	// Write-to-temp + atomic rename, with a unique temp name per writer:
	// concurrent processes (fleet workers, a coordinator, CLIs sharing
	// one cache dir) may persist the same key at once, and a shared temp
	// path would let one writer rename the other's half-written file.
	// Identical content makes the race benign — last rename wins with the
	// same bytes.
	tmp, err := os.CreateTemp(c.dir, "."+key+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
