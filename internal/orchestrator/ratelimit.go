package orchestrator

import (
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket guarding the public submit
// endpoints: each client refills at rps tokens per second up to burst,
// and a submission costs one token. It shields the daemon from a
// misbehaving client monopolizing the bounded queue — the complement of
// ErrQueueFull, which throttles aggregate load.
//
// The limiter takes the current time as an argument instead of reading
// a clock, so its arithmetic is deterministic and directly testable.
type rateLimiter struct {
	mu      sync.Mutex
	rps     float64
	burst   float64
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// maxRateBuckets bounds the per-client map; beyond it, idle (full)
// buckets are pruned. A full bucket carries no throttling state, so
// dropping it is behaviorally invisible to that client.
const maxRateBuckets = 4096

func newRateLimiter(rps float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rps:     rps,
		burst:   float64(burst),
		buckets: make(map[string]*tokenBucket),
	}
}

// allow reports whether client may submit at now; when throttled, wait
// is how long until one token is available (the Retry-After hint).
func (l *rateLimiter) allow(client string, now time.Time) (ok bool, wait time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[client]
	if b == nil {
		if len(l.buckets) >= maxRateBuckets {
			//lnuca:allow(determinism) pruning order is unobservable; any full bucket is equally droppable
			for k, old := range l.buckets {
				if old.tokens >= l.burst {
					delete(l.buckets, k)
				}
			}
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rps
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rps * float64(time.Second))
}
