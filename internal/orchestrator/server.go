package orchestrator

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracez"
	"repro/internal/workload"
)

// Server exposes an orchestrator as the lnucad HTTP JSON API:
//
//	POST   /v1/jobs        submit one job
//	GET    /v1/jobs        list jobs (?status=queued|running|done|failed|canceled)
//	GET    /v1/jobs/{id}   poll one job (result inlined when done)
//	DELETE /v1/jobs/{id}   cancel a queued or running job
//	POST   /v1/sweeps      submit a benchmark x hierarchy matrix
//	GET    /v1/sweeps/{id} aggregated sweep status
//	GET    /v1/sweeps/{id}/progress  per-point progress, ETA, stragglers
//	POST   /v1/traces      upload a recorded lnuca-trace-v1 stream
//	GET    /v1/traces      list stored traces
//	GET    /v1/traces/{id} one stored trace's provenance header
//	GET    /v1/traces/{jobid}/spans  the job's distributed trace
//	POST   /v1/spans       ingest client-side spans into the recorder
//	GET    /v1/results     direct cache lookup by job content
//	GET    /v1/benchmarks  the synthetic SPEC CPU2006 catalog
//	GET    /healthz        liveness + build info + uptime
//	GET    /metrics        JSON snapshot, or Prometheus text on request
//	GET    /debug/tracez   flight-recorder HTML summary (tracing on)
type Server struct {
	orch  *Orchestrator
	mux   *http.ServeMux
	build obs.BuildInfo
	limit *rateLimiter // nil = unlimited
}

// NewServer wraps an orchestrator in its HTTP API.
func NewServer(o *Orchestrator) *Server {
	s := &Server{orch: o, mux: http.NewServeMux(), build: obs.Build()}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/jobs/", s.handleJobByID)
	s.mux.HandleFunc("/v1/sweeps", s.handleSweeps)
	s.mux.HandleFunc("/v1/sweeps/", s.handleSweepByID)
	s.mux.HandleFunc("/v1/traces", s.handleTraces)
	s.mux.HandleFunc("/v1/traces/", s.handleTraceByID)
	s.mux.HandleFunc("/v1/results", s.handleResults)
	s.mux.HandleFunc("/v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("/v1/spans", s.handleSpans)
	if fr := o.Flight(); fr != nil {
		s.mux.Handle("/debug/tracez", fr.Handler())
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SetSubmitLimit installs a per-client token-bucket rate limit on the
// submit endpoints (POST /v1/jobs and /v1/sweeps): each client address
// refills at rps submissions per second up to burst. Zero or negative
// rps removes the limit. Reads (polling, metrics) are never limited.
func (s *Server) SetSubmitLimit(rps float64, burst int) {
	if rps <= 0 {
		s.limit = nil
		return
	}
	s.limit = newRateLimiter(rps, burst)
}

// throttleSubmit enforces the per-client submit limit; it reports
// whether the request was rejected (response already written).
func (s *Server) throttleSubmit(w http.ResponseWriter, r *http.Request) bool {
	if s.limit == nil {
		return false
	}
	client := r.RemoteAddr
	if host, _, err := net.SplitHostPort(client); err == nil {
		client = host
	}
	//lnuca:allow(determinism) rate limiting is wall-clock behavior by definition; never result content
	ok, wait := s.limit.allow(client, time.Now())
	if ok {
		return false
	}
	writeThrottled(w, wait, "rate limit exceeded for %s — retry after %.1fs", client, wait.Seconds())
	return true
}

// writeThrottled answers 429 with a Retry-After hint, the backpressure
// contract Client's retry loop honors.
func writeThrottled(w http.ResponseWriter, wait time.Duration, format string, args ...interface{}) {
	secs := int(wait/time.Second) + 1 // round up; Retry-After takes whole seconds
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, format, args...)
}

// writeDegraded answers 503 with a Retry-After hint: the daemon is
// read-only while its journal/store cannot make accepted work durable.
// Unlike the 429 backpressure path this is not the client's fault, and
// the hint is longer — disks do not heal in a second.
func writeDegraded(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "10")
	writeError(w, http.StatusServiceUnavailable, "%v", err)
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":         "ok",
		"version":        s.build.Version,
		"commit":         s.build.Commit,
		"go_version":     s.build.GoVersion,
		"uptime_seconds": s.orch.Uptime().Seconds(),
	})
}

// handleMetrics serves the orchestrator's operational counters. The
// JSON snapshot is the default (and what Client.Metrics decodes);
// Prometheus text is selected by ?format=prometheus or an Accept header
// naming text/plain or openmetrics — which is what an actual Prometheus
// scraper sends.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	if wantsPrometheus(r) {
		reg := s.orch.Registry()
		if reg == nil {
			writeError(w, http.StatusNotAcceptable, "no metrics registry configured; only the JSON snapshot is available")
			return
		}
		w.Header().Set("Content-Type", obs.ContentType)
		_ = reg.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.orch.Metrics())
}

// wantsPrometheus decides the /metrics representation: an explicit
// ?format= always wins, otherwise the Accept header chooses. A browser
// or bare curl (Accept: */*) keeps getting JSON.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// RouteLabel collapses a request path onto the API's route patterns so
// per-job IDs never explode metric label cardinality; unknown paths all
// share the "other" label. It is the route normalizer lnucad passes to
// obs.Middleware.
func RouteLabel(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case "/healthz", "/metrics", "/v1/jobs", "/v1/sweeps", "/v1/traces",
		"/v1/results", "/v1/benchmarks", "/v1/spans", "/debug/tracez":
		return p
	// The fleet lease protocol mounts next to this API; its three POST
	// routes are fixed strings, and the trace fetch embeds a content
	// hash that must not become a label.
	case "/fleet/v1/lease", "/fleet/v1/heartbeat", "/fleet/v1/complete":
		return p
	}
	switch {
	case strings.HasPrefix(p, "/v1/jobs/"):
		return "/v1/jobs/{id}"
	case strings.HasPrefix(p, "/v1/sweeps/"):
		if strings.HasSuffix(p, "/progress") {
			return "/v1/sweeps/{id}/progress"
		}
		return "/v1/sweeps/{id}"
	case strings.HasPrefix(p, "/v1/traces/"):
		if strings.HasSuffix(p, "/spans") {
			return "/v1/traces/{id}/spans"
		}
		return "/v1/traces/{id}"
	case strings.HasPrefix(p, "/fleet/v1/traces/"):
		return "/fleet/v1/traces/{id}"
	case strings.HasPrefix(p, "/fleet/v1/"):
		return "/fleet/v1/other"
	}
	return "other"
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		if s.throttleSubmit(w, r) {
			return
		}
		// The body is the declarative run schema (lnuca-run-v1) — the
		// same Request the library and CLI front-ends build, so any
		// entry path yields the same content key.
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad job body: %v", err)
			return
		}
		job, err := req.parse()
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// A submitted traceparent ties this job's spans to the caller's
		// trace (Client sends one); absent, the job roots a fresh trace.
		rec, err := s.orch.SubmitCtx(tracez.Extract(r.Context(), r.Header.Get(tracez.HeaderName)), job)
		if errors.Is(err, ErrQueueFull) {
			writeThrottled(w, time.Second, "%v", err)
			return
		}
		if errors.Is(err, ErrDegraded) {
			writeDegraded(w, err)
			return
		}
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		code := http.StatusAccepted
		if rec.Status == StatusDone {
			code = http.StatusOK // served straight from the cache
		}
		writeJSON(w, code, rec)
	case http.MethodGet:
		status := Status(r.URL.Query().Get("status"))
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"jobs": s.orch.List(status),
		})
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "bad job path %q", r.URL.Path)
		return
	}
	switch r.Method {
	case http.MethodGet:
		rec, ok := s.orch.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job %q", id)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	case http.MethodDelete:
		rec, ok := s.orch.Cancel(id)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job %q", id)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	if s.throttleSubmit(w, r) {
		return
	}
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad sweep body: %v", err)
		return
	}
	jobs, err := req.Jobs()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sid, recs, err := s.orch.SubmitSweep(jobs)
	if errors.Is(err, ErrQueueFull) {
		// Cells accepted before the queue filled keep running; retrying
		// the sweep later re-dedups them via coalescing and the cache.
		writeThrottled(w, time.Second, "%v", err)
		return
	}
	if errors.Is(err, ErrDegraded) {
		// Same partial-acceptance semantics as a filled queue: the sweep
		// retried after recovery re-dedups already-accepted cells.
		writeDegraded(w, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]interface{}{
		"id":   sid,
		"jobs": recs,
	})
}

func (s *Server) handleSweepByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/sweeps/")
	if sid, ok := strings.CutSuffix(id, "/progress"); ok {
		prog, ok := s.orch.Progress(sid)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown sweep %q", sid)
			return
		}
		writeJSON(w, http.StatusOK, prog)
		return
	}
	st, ok := s.orch.Sweep(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// maxTraceBytes bounds a trace upload; the full-mode window encodes to
// well under a megabyte, so this is orders of magnitude of headroom.
const maxTraceBytes = 64 << 20

// handleTraces ingests (POST, body = raw lnuca-trace-v1 bytes) and
// lists (GET) the content-addressed trace store. An upload answers with
// the decoded provenance header — including the content hash to name in
// Request.Trace — and re-uploading the same trace is idempotent.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		data, err := io.ReadAll(io.LimitReader(r.Body, maxTraceBytes+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading trace body: %v", err)
			return
		}
		if len(data) > maxTraceBytes {
			writeError(w, http.StatusRequestEntityTooLarge, "trace exceeds %d bytes", maxTraceBytes)
			return
		}
		hdr, err := s.orch.Traces().PutBytes(data)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusCreated, hdr)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"traces": s.orch.Traces().List(),
		})
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

// handleTraceByID answers GET /v1/traces/{id} with the stored trace's
// provenance header, and GET /v1/traces/{jobid}/spans with the job's
// distributed trace from the flight recorder.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/traces/")
	if jid, ok := strings.CutSuffix(id, "/spans"); ok {
		s.serveSpans(w, jid)
		return
	}
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "bad trace path %q", r.URL.Path)
		return
	}
	hdr, err := s.orch.Traces().Header(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, hdr)
}

// serveSpans resolves a job ID (or, as a fallback, a raw 32-hex trace
// ID) to its recorded spans and correlated lifecycle events.
func (s *Server) serveSpans(w http.ResponseWriter, id string) {
	fr := s.orch.Flight()
	if fr == nil {
		writeError(w, http.StatusNotFound, "tracing is not enabled on this daemon")
		return
	}
	jobID := ""
	traceID, ok := s.orch.TraceIDOf(id)
	if ok {
		jobID = id
	} else {
		// Not a live job ID; accept a raw trace ID so traces of pruned
		// jobs stay reachable while the recorder retains them.
		traceID = id
	}
	if traceID == "" {
		writeError(w, http.StatusNotFound, "job %q has no recorded trace", id)
		return
	}
	spans := fr.Spans(traceID)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "no spans recorded for %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"job_id":   jobID,
		"trace_id": traceID,
		"spans":    spans,
		"events":   fr.Events(traceID),
	})
}

// maxSpanBatch bounds one POST /v1/spans body; a client ships a handful
// of spans per job, so this is generous.
const maxSpanBatch = 512

// handleSpans ingests client-produced spans (the submit-side view of a
// distributed trace) into the daemon's span recorder. Spans are
// validated and must carry lnuca.-dotted names; the endpoint is
// telemetry-only and never affects job state.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	rec := s.orch.SpanRecorder()
	if rec == nil {
		writeError(w, http.StatusNotFound, "tracing is not enabled on this daemon")
		return
	}
	var body struct {
		Spans []tracez.Span `json:"spans"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad span body: %v", err)
		return
	}
	if len(body.Spans) > maxSpanBatch {
		writeError(w, http.StatusRequestEntityTooLarge, "span batch exceeds %d spans", maxSpanBatch)
		return
	}
	accepted := 0
	for _, sp := range body.Spans {
		if err := tracez.ValidSpan(sp); err != nil {
			continue
		}
		if !strings.HasPrefix(sp.Name, "lnuca.") {
			continue
		}
		rec.Record(sp)
		accepted++
	}
	writeJSON(w, http.StatusAccepted, map[string]interface{}{
		"accepted": accepted,
		"dropped":  len(body.Spans) - accepted,
	})
}

// handleResults answers GET /v1/results?hierarchy=&levels=&benchmark=
// &cores=&mix=&trace=&mode=&warmup=&measure=&seed= straight from the result
// cache: 200 with the result on a hit, 404 on a miss. It never enqueues
// work.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	q := r.URL.Query()
	req := Request{
		Hierarchy: q.Get("hierarchy"),
		Benchmark: q.Get("benchmark"),
		Mix:       q.Get("mix"),
		Trace:     q.Get("trace"),
		Mode:      q.Get("mode"),
	}
	var err error
	for _, f := range []struct {
		name string
		dst  *uint64
	}{{"warmup", &req.Warmup}, {"measure", &req.Measure}, {"seed", &req.Seed}} {
		if v := q.Get(f.name); v != "" {
			if *f.dst, err = strconv.ParseUint(v, 10, 64); err != nil {
				writeError(w, http.StatusBadRequest, "bad %s: %v", f.name, err)
				return
			}
		}
	}
	for _, f := range []struct {
		name string
		dst  *int
	}{{"levels", &req.Levels}, {"cores", &req.Cores}} {
		if v := q.Get(f.name); v != "" {
			if *f.dst, err = strconv.Atoi(v); err != nil {
				writeError(w, http.StatusBadRequest, "bad %s: %v", f.name, err)
				return
			}
		}
	}
	job, err := req.parse()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, ok, err := s.orch.Lookup(job)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for this configuration")
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"benchmarks": workload.Names(),
		"mixes":      append(workload.MixNames(), workload.RandomMixName),
	})
}
