package orchestrator

import "repro/internal/pqueue"

// newTaskQueue builds the job queue: a priority heap ordered by
// priority (higher first), then by submission order (earlier first).
// Index tracking through task.heapIdx lets Cancel remove a queued task
// without searching the heap.
func newTaskQueue() *pqueue.Queue[*task] {
	return pqueue.New(
		func(a, b *task) bool {
			if a.job.Priority != b.job.Priority {
				return a.job.Priority > b.job.Priority
			}
			return a.seq < b.seq
		},
		func(t *task, idx int) { t.heapIdx = idx },
	)
}
