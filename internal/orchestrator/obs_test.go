package orchestrator

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// checkBalance asserts the metrics-consistency invariant: because every
// lifecycle counter is updated in the same critical section as its
// state transition, any snapshot must balance exactly — no submission
// is ever double-counted or in flight between states.
func checkBalance(t *testing.T, m Metrics) {
	t.Helper()
	accounted := m.Coalesced + m.Cached + m.Executed + m.Failed + m.Canceled +
		uint64(m.QueueDepth) + uint64(m.Running)
	if m.Submitted != accounted {
		t.Errorf("metrics snapshot unbalanced: submitted=%d but coalesced=%d + cached=%d + executed=%d + failed=%d + canceled=%d + queued=%d + running=%d = %d",
			m.Submitted, m.Coalesced, m.Cached, m.Executed, m.Failed, m.Canceled,
			m.QueueDepth, m.Running, accounted)
	}
}

// TestMetricsSnapshotConsistency is the regression test for the
// non-atomic sampling bug: queue depth and the in-flight count used to
// be read under the lock while the lifecycle counters were separate
// atomics bumped outside it, so a scrape racing Submit could see
// submitted jobs that were in no state at all. Hammer the orchestrator
// with submissions (fresh, coalescing and cached) while concurrently
// snapshotting, and require every single snapshot to balance.
func TestMetricsSnapshotConsistency(t *testing.T) {
	release := make(chan struct{})
	o := New(Config{
		Workers: 3,
		Run: func(ctx context.Context, j Job, progress func(done, total uint64)) (*JobResult, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return stubResult(j), nil
		},
	})

	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			checkBalance(t, o.Metrics())
		}
	}()

	var wg sync.WaitGroup
	benches := []string{"429.mcf", "482.sphinx3", "403.gcc", "470.lbm"}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Seeds collide across workers on purpose: coalescing and
				// cache-hit paths must keep the books balanced too.
				j := quickJob(benches[i%len(benches)])
				j.Seed = uint64(i%5 + 1)
				if _, err := o.Submit(j); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(release)

	// Drain: every accepted submission must end up terminal, and the
	// final snapshot must still balance with queue and running at zero.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := o.Metrics()
		checkBalance(t, m)
		if m.QueueDepth == 0 && m.Running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never drained: %+v", m)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-scraperDone
	o.Close()
	m := o.Metrics()
	checkBalance(t, m)
	if m.Submitted != 400 {
		t.Errorf("submitted = %d, want 400", m.Submitted)
	}
	if m.Cached+m.Coalesced == 0 {
		t.Error("test exercised no dedup paths; tighten the job matrix")
	}
}

// TestJobTimeline: a simulated job's record carries the full
// submitted -> started -> finished history with consistent durations,
// and a cache hit finishes instantly without ever starting.
func TestJobTimeline(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	o := New(Config{
		Workers: 1,
		Run: func(ctx context.Context, j Job, progress func(done, total uint64)) (*JobResult, error) {
			started <- struct{}{}
			<-release
			return stubResult(j), nil
		},
	})
	defer o.Close()

	rec, err := o.Submit(quickJob("429.mcf"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Timeline.SubmittedAt.IsZero() {
		t.Error("queued record has no SubmittedAt")
	}
	<-started
	// Running: StartedAt set, FinishedAt not, RunSeconds accruing.
	time.Sleep(5 * time.Millisecond)
	mid, _ := o.Get(rec.ID)
	if mid.Status != StatusRunning {
		t.Fatalf("status = %s, want running", mid.Status)
	}
	if mid.Timeline.StartedAt == nil || mid.Timeline.FinishedAt != nil {
		t.Errorf("running timeline wrong: %+v", mid.Timeline)
	}
	if mid.Timeline.RunSeconds <= 0 {
		t.Errorf("running job reports RunSeconds = %v, want accruing", mid.Timeline.RunSeconds)
	}
	close(release)
	done := waitDone(t, o, rec.ID)
	tl := done.Timeline
	if tl.StartedAt == nil || tl.FinishedAt == nil {
		t.Fatalf("terminal timeline incomplete: %+v", tl)
	}
	if tl.QueueSeconds < 0 || tl.RunSeconds <= 0 {
		t.Errorf("durations = queue %v run %v, want run positive", tl.QueueSeconds, tl.RunSeconds)
	}
	if got := tl.StartedAt.Sub(tl.SubmittedAt).Seconds(); got != tl.QueueSeconds {
		t.Errorf("QueueSeconds %v != StartedAt-SubmittedAt %v", tl.QueueSeconds, got)
	}
	if got := tl.FinishedAt.Sub(*tl.StartedAt).Seconds(); got != tl.RunSeconds {
		t.Errorf("RunSeconds %v != FinishedAt-StartedAt %v", tl.RunSeconds, got)
	}

	// A cache hit finishes at submission: no StartedAt, zero run time.
	hit, err := o.Submit(quickJob("429.mcf"))
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.Status != StatusDone {
		t.Fatalf("resubmission not served from cache: %+v", hit)
	}
	if hit.Timeline.StartedAt != nil || hit.Timeline.FinishedAt == nil {
		t.Errorf("cache-hit timeline wrong: %+v", hit.Timeline)
	}
	if hit.Timeline.RunSeconds != 0 {
		t.Errorf("cache hit reports RunSeconds = %v, want 0", hit.Timeline.RunSeconds)
	}
}

// TestRegistryExport: with a Registry configured, the orchestrator's
// Prometheus scrape reports job totals consistent with the JSON
// snapshot, including the lnuca_jobs_completed_total counter the CI
// smoke test asserts on.
func TestRegistryExport(t *testing.T) {
	reg := obs.NewRegistry()
	var mu sync.Mutex
	n := 0
	o := New(Config{Workers: 1, Registry: reg, Run: countingRun(&mu, &n)})
	defer o.Close()

	rec, err := o.Submit(quickJob("429.mcf"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, o, rec.ID)
	if _, err := o.Submit(quickJob("429.mcf")); err != nil { // cache hit
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	wantSamples := map[string]float64{
		"lnuca_jobs_submitted_total": 2,
		"lnuca_jobs_completed_total": 2, // 1 executed + 1 cached
		"lnuca_runs_executed_total":  1,
		"lnuca_jobs_cached_total":    1,
		"lnuca_queue_depth":          0,
		"lnuca_jobs_running":         0,
		"lnuca_workers":              1,
	}
	for name, want := range wantSamples {
		var got float64
		found := false
		for _, line := range strings.Split(text, "\n") {
			var v float64
			if n, _ := fmt.Sscanf(line, name+" %g", &v); n == 1 && !strings.Contains(line, "#") {
				got, found = v, true
				break
			}
		}
		if !found || got != want {
			t.Errorf("scrape sample %s = %v (found %v), want %v\nscrape:\n%s", name, got, found, want, text)
		}
	}
	for _, h := range []string{"lnuca_job_queue_seconds", "lnuca_job_run_seconds"} {
		if !strings.Contains(text, h+"_count 1") {
			t.Errorf("scrape missing %s_count 1:\n%s", h, text)
		}
	}
}

// TestLifecycleLogging: the configured logger receives submitted /
// started / done events carrying the job ID.
func TestLifecycleLogging(t *testing.T) {
	var buf strings.Builder
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	var mu sync.Mutex
	n := 0
	o := New(Config{Workers: 1, Logger: logger, Run: countingRun(&mu, &n)})
	defer o.Close()
	rec, err := o.Submit(quickJob("429.mcf"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, o, rec.ID)
	out := buf.String()
	for _, want := range []string{"job submitted", "job started", "job done", "job_id=" + rec.ID} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}
