package orchestrator

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// Journal is the orchestrator's append-only queue-state log: one JSON
// line per job-lifecycle event, written next to the result cache. It is
// what makes sweeps survive a coordinator restart — on reopen, every
// job that was submitted but never reached a terminal state is pending
// again, and resubmitting it re-dedups against the content-addressed
// store (already-computed points are cache hits, never re-simulated).
//
// Two event shapes share the file:
//
//	{"op":"submit","id":"job-000123","key":"<sha256>","request":{...}}  // lnuca-run-v1
//	{"op":"end","id":"job-000123","key":"<sha256>","status":"done"}
//
// Events are matched by content key, counting submits against ends, so
// the journal is insensitive to append interleaving (a stub job can
// reach its terminal state before the submit append lands) and to a
// cancel-then-resubmit reusing a key. A crash-truncated final line is
// skipped on load, costing at worst one duplicate resubmission — which
// the orchestrator's coalescing and cache make free.
//
// Graceful shutdown (Orchestrator.Close) deliberately does not write
// end events for the jobs it cancels: a drained queue is exactly what
// must come back after a restart. Only API cancels and real
// done/failed/canceled transitions end a journal entry.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	pending []Request // loaded at open, in first-submission order

	// credit holds one token per key the open-time compaction kept a
	// submit line for. The first resubmission of such a key consumes the
	// token instead of appending a second submit line — the compacted
	// line already represents it — so replaying Pending() does not
	// double-count. An unconsumed token means the owner never replayed
	// that key, and its compacted line rightly keeps it pending.
	credit map[string]int

	// faults, when armed at faultinject.PointJournalAppend, makes
	// appends fail the way a full or dying disk would.
	faults *faultinject.Injector

	// writeErrs counts consecutive append failures; any successful
	// append resets it. At degradedAfter the journal reports Degraded
	// and the orchestrator stops accepting work it could not make
	// durable.
	writeErrs atomic.Int64
}

// degradedAfter is how many consecutive durable-write failures flip a
// store (journal or result cache) into the degraded state that sends
// the daemon read-only. One failure can be a blip; three in a row with
// no intervening success is a sick disk.
const degradedAfter = 3

// journalEvent is one line of the journal file.
type journalEvent struct {
	Op      string   `json:"op"` // "submit" or "end"
	ID      string   `json:"id,omitempty"`
	Key     string   `json:"key"`
	Status  Status   `json:"status,omitempty"`
	Request *Request `json:"request,omitempty"`
}

// OpenJournal opens (creating if needed) the journal at path, loads the
// still-pending submissions, and compacts the file down to exactly
// those — so the journal's size tracks the live queue, not the
// service's whole history. The caller resubmits Pending() through
// Orchestrator.Submit, which re-journals each one.
func OpenJournal(path string) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("orchestrator: journal dir: %w", err)
	}
	pending, torn, err := loadPending(path)
	if err != nil {
		return nil, err
	}
	if torn >= 0 {
		// A crash tore the final append mid-line. Physically truncate the
		// file back to its last intact record before anything else: even
		// if the compaction below fails, the journal on disk is valid
		// JSONL again, and the cost is bounded by the journal's own
		// contract — at worst one duplicate resubmission, which coalescing
		// and the content-addressed cache make free.
		fmt.Fprintf(os.Stderr, "orchestrator: journal %s: torn final line, truncating to %d bytes and continuing\n", path, torn)
		if terr := os.Truncate(path, torn); terr != nil {
			return nil, fmt.Errorf("orchestrator: journal truncate torn tail: %w", terr)
		}
	}
	// Compact: rewrite the file with one submit line per pending key,
	// atomically, before any new event is appended.
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".compact-*")
	if err != nil {
		return nil, fmt.Errorf("orchestrator: journal compact: %w", err)
	}
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	for i := range pending {
		req := pending[i]
		key, kerr := req.Key()
		if kerr != nil {
			continue // a request the current schema no longer accepts
		}
		if err := enc.Encode(journalEvent{Op: "submit", Key: key, Request: &req}); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return nil, fmt.Errorf("orchestrator: journal compact: %w", err)
		}
	}
	if err := w.Flush(); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("orchestrator: journal compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("orchestrator: journal compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("orchestrator: journal compact: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("orchestrator: journal open: %w", err)
	}
	credit := make(map[string]int, len(pending))
	for i := range pending {
		if key, err := pending[i].Key(); err == nil {
			credit[key]++
		}
	}
	return &Journal{f: f, path: path, pending: pending, credit: credit}, nil
}

// loadPending replays the journal file and returns the requests whose
// submit count exceeds their end count, in first-submission order,
// plus the byte offset of a torn final line (-1 when the tail is
// intact). A missing file is an empty journal.
//
// Every complete append ends with '\n', so a final segment without one
// is a torn write — a crash mid-append — whatever its bytes happen to
// parse as. Tail damage of any size (including a torn line far larger
// than any scanner buffer, which used to fail the whole open) is
// reported for truncation, never an error: losing the newest record is
// the journal's documented worst case, losing the whole queue is not.
// Complete-but-unparseable lines elsewhere are foreign and skipped.
func loadPending(path string) ([]Request, int64, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, -1, nil
	}
	if err != nil {
		return nil, -1, fmt.Errorf("orchestrator: journal load: %w", err)
	}
	type entry struct {
		open  int // submits minus ends
		first int // line of first submission, for stable ordering
		req   Request
	}
	entries := map[string]*entry{}
	torn := int64(-1)
	line := 0
	for off := 0; off < len(raw); {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			// No terminator: the append that wrote this was cut short.
			torn = int64(off)
			break
		}
		rec := raw[off : off+nl]
		off += nl + 1
		line++
		if len(rec) == 0 {
			continue
		}
		var ev journalEvent
		if err := json.Unmarshal(rec, &ev); err != nil || ev.Key == "" {
			continue // foreign line
		}
		e := entries[ev.Key]
		switch ev.Op {
		case "submit":
			if ev.Request == nil {
				continue
			}
			if e == nil {
				e = &entry{first: line, req: *ev.Request}
				entries[ev.Key] = e
			}
			e.open++
		case "end":
			if e != nil && e.open > 0 {
				e.open--
			}
		}
	}
	var open []*entry
	for _, e := range entries {
		if e.open > 0 {
			open = append(open, e)
		}
	}
	sort.Slice(open, func(i, j int) bool { return open[i].first < open[j].first })
	out := make([]Request, len(open))
	for i, e := range open {
		out[i] = e.req
	}
	return out, torn, nil
}

// Pending returns the requests that were submitted but not terminal
// when the journal was opened — the queue a restarted coordinator must
// resubmit. The slice is a copy.
func (j *Journal) Pending() []Request {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Request(nil), j.pending...)
}

// Path returns the journal file's location.
func (j *Journal) Path() string { return j.path }

// SetFaults arms the journal's append path with a fault injector (nil
// disarms). Test and chaos-mode plumbing only.
func (j *Journal) SetFaults(in *faultinject.Injector) {
	j.mu.Lock()
	j.faults = in
	j.mu.Unlock()
}

// Degraded reports whether the journal has failed degradedAfter
// consecutive appends — the signal that sends the orchestrator
// read-only, because accepted work would not survive a restart.
func (j *Journal) Degraded() bool {
	return j.writeErrs.Load() >= degradedAfter
}

// probe attempts one durable write so a degraded journal can notice
// the disk healed. The probe line has no key, so replay skips it as
// foreign and the next compaction drops it. Called by the orchestrator
// when it rejects a submit in degraded mode: the rejection stands, but
// a successful probe resets the failure count and the next submit is
// accepted again.
func (j *Journal) probe() {
	j.append(journalEvent{Op: "probe"})
}

// Close releases the journal file. Pending state stays on disk.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// submitted records a job entering the queue. A key the open-time
// compaction already wrote a line for consumes its replay credit
// instead of appending a duplicate.
func (j *Journal) submitted(id, key string, req Request) {
	j.mu.Lock()
	if j.credit[key] > 0 {
		j.credit[key]--
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()
	j.append(journalEvent{Op: "submit", ID: id, Key: key, Request: &req})
}

// ended records a job reaching a terminal state.
func (j *Journal) ended(id, key string, status Status) {
	j.append(journalEvent{Op: "end", ID: id, Key: key, Status: status})
}

// append writes one event line and syncs it: the journal exists to
// survive crashes, so an event the orchestrator acted on must be on
// disk before the next one. Event volume is one line per job lifecycle
// transition — far off any hot path.
func (j *Journal) append(ev journalEvent) {
	data, err := json.Marshal(ev)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orchestrator: journal marshal: %v\n", err)
		return
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	if out := j.faults.At(faultinject.PointJournalAppend); out.Fired {
		j.noteAppendError(fmt.Errorf("journal append %s/%s: %w", ev.Op, ev.Key, out.ErrOrDefault()))
		return
	}
	if _, err := j.f.Write(data); err != nil {
		j.noteAppendError(fmt.Errorf("journal append: %w", err))
		return
	}
	if err := j.f.Sync(); err != nil {
		j.noteAppendError(fmt.Errorf("journal sync: %w", err))
		return
	}
	j.writeErrs.Store(0)
}

// noteAppendError logs a failed durable write and advances the
// consecutive-failure count that feeds Degraded.
func (j *Journal) noteAppendError(err error) {
	n := j.writeErrs.Add(1)
	fmt.Fprintf(os.Stderr, "orchestrator: %v (%d consecutive)\n", err, n)
	if n == degradedAfter {
		fmt.Fprintf(os.Stderr, "orchestrator: journal %s: %d consecutive write failures — entering degraded (read-only) mode\n", j.path, n)
	}
}
