package orchestrator

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/hier"
)

// quickJob is a small valid job for tests.
func quickJob(bench string) Job {
	return Job{Kind: hier.Conventional, Benchmark: bench, Mode: exp.Quick, Seed: 1}
}

// stubResult fabricates a result without simulating.
func stubResult(j Job) *JobResult {
	return &JobResult{Config: j.Spec().Label(), Benchmark: j.Benchmark, IPC: 1.5, Cycles: 1000}
}

// countingRun returns a RunFunc that counts executions.
func countingRun(mu *sync.Mutex, n *int) RunFunc {
	return func(ctx context.Context, j Job, progress func(done, total uint64)) (*JobResult, error) {
		mu.Lock()
		*n++
		mu.Unlock()
		return stubResult(j), nil
	}
}

// waitDone polls a job to a terminal state.
func waitDone(t *testing.T, o *Orchestrator, id string) JobRecord {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rec, ok := o.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if rec.Status.Terminal() {
			return rec
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobRecord{}
}

func TestNormalizeAndKey(t *testing.T) {
	// Equivalent submissions collapse onto one key.
	a, err := Job{Kind: hier.LNUCAL3, Benchmark: "403.gcc"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Job{Kind: hier.LNUCAL3, Levels: 3, Benchmark: "403.gcc",
		Mode: exp.Quick, Seed: 1, Priority: 9}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Error("defaulted and explicit jobs should share a key")
	}
	if a.Hierarchy != "LN3-144KB" {
		t.Errorf("hierarchy label = %q", a.Hierarchy)
	}
	// Levels must not leak into non-L-NUCA keys.
	c, _ := Job{Kind: hier.Conventional, Levels: 4, Benchmark: "403.gcc"}.Normalize()
	d, _ := Job{Kind: hier.Conventional, Benchmark: "403.gcc"}.Normalize()
	if c.Key() != d.Key() {
		t.Error("levels changed a conventional hierarchy's key")
	}
	// Distinct content means distinct keys.
	e, _ := Job{Kind: hier.Conventional, Benchmark: "403.gcc", Seed: 2}.Normalize()
	if e.Key() == d.Key() {
		t.Error("seed change kept the same key")
	}
	if _, err := (Job{Kind: hier.Conventional, Benchmark: "no.such"}).Normalize(); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestCacheHitMissAndLRU(t *testing.T) {
	c := NewCache(2, "")
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", &JobResult{IPC: 1})
	c.Put("b", &JobResult{IPC: 2})
	if r, ok := c.Get("a"); !ok || r.IPC != 1 {
		t.Fatal("miss after Put")
	}
	// Capacity 2: inserting c evicts the least recently used (b).
	c.Put("c", &JobResult{IPC: 3})
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used entry evicted")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", c.Hits(), c.Misses())
	}
}

// TestCacheConcurrentGetPut exercises the Get hot path against
// concurrent overwriting Puts on the same key; run with -race.
func TestCacheConcurrentGetPut(t *testing.T) {
	c := NewCache(4, "")
	c.Put("k", &JobResult{IPC: 1})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 1000; n++ {
				c.Put("k", &JobResult{IPC: float64(n)})
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 1000; n++ {
				if r, ok := c.Get("k"); !ok || r == nil {
					t.Error("entry vanished")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestLookupRejectsInvalidJob(t *testing.T) {
	o := New(Config{Workers: 1})
	defer o.Close()
	bad := quickJob("403.gcc")
	bad.Kind = 3 // LNUCADNUCA
	bad.Levels = 9
	if _, _, err := o.Lookup(bad); err == nil {
		t.Error("invalid job did not error")
	}
}

func TestCacheFileStoreRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	c := NewCache(0, dir)
	job, _ := quickJob("403.gcc").Normalize()
	c.Put(job.Key(), &JobResult{Config: "L2-256KB", Benchmark: "403.gcc", IPC: 1.25, Cycles: 42})

	// A fresh cache over the same directory serves the stored result.
	c2 := NewCache(0, dir)
	res, ok := c2.Get(job.Key())
	if !ok {
		t.Fatal("file store miss after Put")
	}
	if res.IPC != 1.25 || res.Cycles != 42 || res.Benchmark != "403.gcc" {
		t.Errorf("round-tripped result corrupted: %+v", res)
	}
}

func TestSubmitMemoizesByContent(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	o := New(Config{Workers: 2, Run: countingRun(&mu, &runs)})
	defer o.Close()

	rec1, err := o.Submit(quickJob("403.gcc"))
	if err != nil {
		t.Fatal(err)
	}
	done1 := waitDone(t, o, rec1.ID)
	if done1.Status != StatusDone || done1.Result == nil {
		t.Fatalf("first run: %+v", done1)
	}

	// Identical content: answered from cache, no second simulation.
	rec2, err := o.Submit(quickJob("403.gcc"))
	if err != nil {
		t.Fatal(err)
	}
	if !rec2.Cached || rec2.Status != StatusDone || rec2.Result == nil {
		t.Fatalf("resubmission not served from cache: %+v", rec2)
	}
	// Different content still simulates.
	rec3, _ := o.Submit(quickJob("429.mcf"))
	waitDone(t, o, rec3.ID)

	mu.Lock()
	defer mu.Unlock()
	if runs != 2 {
		t.Errorf("runs = %d, want 2", runs)
	}
}

func TestSingleflightCoalescing(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	release := make(chan struct{})
	o := New(Config{Workers: 1, Run: func(ctx context.Context, j Job, _ func(uint64, uint64)) (*JobResult, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		<-release
		return stubResult(j), nil
	}})
	defer o.Close()

	first, err := o.Submit(quickJob("403.gcc"))
	if err != nil {
		t.Fatal(err)
	}
	// While the first is in flight, identical submissions coalesce onto
	// its ID instead of queuing duplicate work.
	for i := 0; i < 5; i++ {
		dup, err := o.Submit(quickJob("403.gcc"))
		if err != nil {
			t.Fatal(err)
		}
		if dup.ID != first.ID || !dup.Coalesced {
			t.Fatalf("duplicate %d not coalesced: %+v", i, dup)
		}
	}
	close(release)
	waitDone(t, o, first.ID)

	mu.Lock()
	defer mu.Unlock()
	if runs != 1 {
		t.Errorf("coalesced submissions ran %d times, want 1", runs)
	}
	if m := o.Metrics(); m.Coalesced != 5 {
		t.Errorf("coalesced counter = %d, want 5", m.Coalesced)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	o := New(Config{Workers: 1, Run: func(ctx context.Context, j Job, _ func(uint64, uint64)) (*JobResult, error) {
		close(started)
		<-ctx.Done() // simulate a long run honoring cancellation
		return nil, ctx.Err()
	}})
	defer o.Close()

	rec, err := o.Submit(quickJob("403.gcc"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok := o.Cancel(rec.ID); !ok {
		t.Fatal("cancel lost the job")
	}
	final := waitDone(t, o, rec.ID)
	if final.Status != StatusCanceled {
		t.Fatalf("status = %s, want canceled", final.Status)
	}
	// A canceled run must not poison the cache.
	if _, ok, err := o.Lookup(quickJob("403.gcc")); ok || err != nil {
		t.Errorf("canceled job cache state: ok=%v err=%v", ok, err)
	}
}

func TestCancelQueuedJobAndPriority(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	o := New(Config{Workers: 1, Run: func(ctx context.Context, j Job, _ func(uint64, uint64)) (*JobResult, error) {
		<-release
		mu.Lock()
		order = append(order, j.Benchmark)
		mu.Unlock()
		return stubResult(j), nil
	}})
	defer o.Close()

	// Occupy the single worker, then queue three more.
	blocker, _ := o.Submit(quickJob("403.gcc"))
	time.Sleep(10 * time.Millisecond) // let the worker pick it up
	low, _ := o.Submit(quickJob("429.mcf"))
	victim, _ := o.Submit(quickJob("434.zeusmp"))
	hi := quickJob("482.sphinx3")
	hi.Priority = 10
	urgent, _ := o.Submit(hi)

	if rec, ok := o.Cancel(victim.ID); !ok || rec.Status != StatusCanceled {
		t.Fatalf("queued cancel: %+v", rec)
	}
	close(release)
	for _, id := range []string{blocker.ID, low.ID, urgent.ID} {
		if rec := waitDone(t, o, id); rec.Status != StatusDone {
			t.Fatalf("job %s: %s", id, rec.Status)
		}
	}
	if rec, _ := o.Get(victim.ID); rec.Status != StatusCanceled {
		t.Errorf("victim status = %s", rec.Status)
	}
	mu.Lock()
	defer mu.Unlock()
	// The priority-10 job must overtake the earlier-queued default one.
	if len(order) != 3 || order[1] != "482.sphinx3" || order[2] != "429.mcf" {
		t.Errorf("execution order = %v", order)
	}
}

func TestFailedRunReported(t *testing.T) {
	boom := errors.New("bank exploded")
	o := New(Config{Workers: 1, Run: func(ctx context.Context, j Job, _ func(uint64, uint64)) (*JobResult, error) {
		return nil, boom
	}})
	defer o.Close()
	rec, _ := o.Submit(quickJob("403.gcc"))
	final := waitDone(t, o, rec.ID)
	if final.Status != StatusFailed || final.Error != boom.Error() {
		t.Fatalf("final = %+v", final)
	}
	if m := o.Metrics(); m.Failed != 1 {
		t.Errorf("failed counter = %d", m.Failed)
	}
}

func TestSweepExpansionAndStatus(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	o := New(Config{Workers: 4, Run: countingRun(&mu, &runs)})
	defer o.Close()

	jobs := ExpandSweep(
		[]hier.Kind{hier.Conventional, hier.LNUCAL3},
		[]int{2, 3},
		[]string{"403.gcc", "429.mcf"},
		exp.Quick, 1)
	// conventional contributes 1 spec, LN contributes 2 levels: 3 specs x 2 benches.
	if len(jobs) != 6 {
		t.Fatalf("expanded %d jobs, want 6", len(jobs))
	}
	sid, recs, err := o.SubmitSweep(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("submitted %d, want 6", len(recs))
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := o.Sweep(sid)
		if !ok {
			t.Fatal("sweep lost")
		}
		if st.Done {
			if st.ByState[StatusDone] != 6 {
				t.Fatalf("by_state = %v", st.ByState)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never completed")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSimRunEndToEnd exercises the production RunFunc against the real
// simulator, including progress reporting and mid-run cancellation.
func TestSimRunEndToEnd(t *testing.T) {
	job, err := Job{Kind: hier.Conventional, Benchmark: "403.gcc",
		Mode: exp.Mode{Name: "tiny", Warmup: 500, Measure: 3000}, Seed: 1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	var progressed bool
	res, err := SimRun(context.Background(), job, func(done, total uint64) {
		if total != 3500 {
			t.Errorf("progress total = %d, want 3500", total)
		}
		progressed = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Cycles == 0 || res.Stats == nil {
		t.Fatalf("implausible result: %+v", res)
	}
	if !progressed {
		t.Error("no progress reported")
	}

	// Cancellation mid-run: a pre-cancelled context must abort promptly
	// with context.Canceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SimRun(ctx, job, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
}

func TestJobResultJSONRoundTrip(t *testing.T) {
	res, err := SimRun(context.Background(), Job{Kind: hier.Conventional,
		Benchmark: "403.gcc", Mode: exp.Mode{Name: "tiny", Warmup: 200, Measure: 2000}, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back JobResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.IPC != res.IPC || back.Cycles != res.Cycles {
		t.Error("scalar fields lost in round trip")
	}
	if back.Stats == nil {
		t.Fatal("stats lost in round trip")
	}
	for _, k := range res.Stats.Names() {
		if back.Stats.Counter(k) != res.Stats.Counter(k) {
			t.Fatalf("counter %s: %d != %d", k, back.Stats.Counter(k), res.Stats.Counter(k))
		}
	}
	for _, k := range res.Stats.ScalarNames() {
		if back.Stats.Scalar(k) != res.Stats.Scalar(k) {
			t.Fatalf("scalar %s mismatch", k)
		}
	}
}

func TestParseKind(t *testing.T) {
	for name, want := range map[string]hier.Kind{
		"conventional": hier.Conventional,
		"L2-256KB":     hier.Conventional,
		"ln+l3":        hier.LNUCAL3,
		"DN-4x8":       hier.DNUCAOnly,
		"LN+DN-4x8":    hier.LNUCADNUCA,
	} {
		got, err := ParseKind(name)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseKind("l4-extreme"); err == nil {
		t.Error("bogus hierarchy accepted")
	}
}

func TestMetricsShape(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	o := New(Config{Workers: 3, Run: countingRun(&mu, &runs)})
	defer o.Close()
	rec, _ := o.Submit(quickJob("403.gcc"))
	waitDone(t, o, rec.ID)
	o.Submit(quickJob("403.gcc")) // cache hit
	m := o.Metrics()
	if m.Workers != 3 || m.Executed != 1 || m.Submitted != 2 {
		t.Errorf("metrics = %+v", m)
	}
	if m.CacheHits != 1 || m.CacheMisses != 1 || m.CacheHitRate != 0.5 {
		t.Errorf("cache metrics = %+v", m)
	}
	// Metrics must serve as JSON for /metrics.
	if _, err := json.Marshal(m); err != nil {
		t.Fatal(err)
	}
}

func TestCloseRejectsAndDrains(t *testing.T) {
	release := make(chan struct{})
	o := New(Config{Workers: 1, Run: func(ctx context.Context, j Job, _ func(uint64, uint64)) (*JobResult, error) {
		select {
		case <-release:
			return stubResult(j), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	rec, _ := o.Submit(quickJob("403.gcc"))
	time.Sleep(10 * time.Millisecond)
	queued, _ := o.Submit(quickJob("429.mcf"))
	done := make(chan struct{})
	go func() { o.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung")
	}
	if _, err := o.Submit(quickJob("434.zeusmp")); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v", err)
	}
	if r, _ := o.Get(queued.ID); r.Status != StatusCanceled {
		t.Errorf("queued job after Close = %s", r.Status)
	}
	if r, _ := o.Get(rec.ID); !r.Status.Terminal() {
		t.Errorf("running job after Close = %s", r.Status)
	}
	close(release)
}

// Ensure the example in the package doc stays true: submitting the same
// matrix twice executes each cell exactly once.
func TestSweepResubmissionHitsCache(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	o := New(Config{Workers: 4, Run: countingRun(&mu, &runs)})
	defer o.Close()
	jobs := ExpandSweep([]hier.Kind{hier.Conventional, hier.LNUCAL3, hier.DNUCAOnly},
		nil, []string{"403.gcc", "429.mcf", "434.zeusmp", "482.sphinx3"}, exp.Quick, 1)
	if len(jobs) != 12 {
		t.Fatalf("expanded %d jobs, want 12", len(jobs))
	}
	sid, _, err := o.SubmitSweep(jobs)
	if err != nil {
		t.Fatal(err)
	}
	waitSweep(t, o, sid)
	sid2, recs, err := o.SubmitSweep(jobs)
	if err != nil {
		t.Fatal(err)
	}
	waitSweep(t, o, sid2)
	for _, r := range recs {
		if !r.Cached {
			t.Errorf("cell %s/%s not served from cache", r.Job.Hierarchy, r.Job.Benchmark)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if runs != 12 {
		t.Errorf("matrix of 12 ran %d simulations", runs)
	}
}

// TestResubmitAfterCancelRuns ensures a fresh submission does not
// coalesce onto a running job whose cancellation was already requested:
// the new client must get a job that actually computes.
func TestResubmitAfterCancelRuns(t *testing.T) {
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	o := New(Config{Workers: 2, Run: func(ctx context.Context, j Job, _ func(uint64, uint64)) (*JobResult, error) {
		started <- struct{}{}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return stubResult(j), nil
		}
	}})
	defer o.Close()

	first, _ := o.Submit(quickJob("403.gcc"))
	<-started
	if _, ok := o.Cancel(first.ID); !ok {
		t.Fatal("cancel lost the job")
	}
	// The cancel is requested but the worker may not have observed it
	// yet; an identical resubmission must become a NEW job.
	second, err := o.Submit(quickJob("403.gcc"))
	if err != nil {
		t.Fatal(err)
	}
	if second.ID == first.ID || second.Coalesced {
		t.Fatalf("resubmission inherited the dying job: %+v", second)
	}
	<-started
	// The original must land canceled before release opens, so its
	// worker can only have exited via ctx.Done.
	if rec := waitDone(t, o, first.ID); rec.Status != StatusCanceled {
		t.Fatalf("original ended %s", rec.Status)
	}
	close(release)
	if rec := waitDone(t, o, second.ID); rec.Status != StatusDone {
		t.Fatalf("resubmission ended %s (%s)", rec.Status, rec.Error)
	}
}

// TestSweepValidatesBeforeEnqueue ensures one bad cell rejects the whole
// sweep without leaving orphaned jobs running.
func TestSweepValidatesBeforeEnqueue(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	o := New(Config{Workers: 2, Run: countingRun(&mu, &runs)})
	defer o.Close()
	jobs := []Job{quickJob("403.gcc"), quickJob("no.such"), quickJob("429.mcf")}
	if _, _, err := o.SubmitSweep(jobs); err == nil {
		t.Fatal("invalid sweep accepted")
	}
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if runs != 0 {
		t.Errorf("invalid sweep still enqueued %d runs", runs)
	}
	if n := len(o.List("")); n != 0 {
		t.Errorf("invalid sweep left %d records", n)
	}
}

// TestRecordRetentionBounded ensures terminal records are pruned past
// RecordCap so a long-running daemon does not grow without bound.
func TestRecordRetentionBounded(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	o := New(Config{Workers: 1, RecordCap: 8, Run: countingRun(&mu, &runs)})
	defer o.Close()
	var last JobRecord
	for i := 0; i < 40; i++ {
		// Distinct seeds make distinct content; each run completes and
		// each subsequent cache-hit submission also creates a record.
		j := quickJob("403.gcc")
		j.Seed = uint64(i + 1)
		rec, err := o.Submit(j)
		if err != nil {
			t.Fatal(err)
		}
		last = waitDone(t, o, rec.ID)
	}
	if n := len(o.List("")); n > 8 {
		t.Errorf("retained %d records, cap 8", n)
	}
	// The most recent record must survive pruning.
	if _, ok := o.Get(last.ID); !ok {
		t.Error("newest record pruned")
	}
}

func waitSweep(t *testing.T, o *Orchestrator, sid string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := o.Sweep(sid); ok && st.Done {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("sweep %s never completed", sid)
}
